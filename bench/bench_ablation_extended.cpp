// Extension ablation (Section 6's noted limitation): the paper's tuner caps
// block height at 4 and loses the Dense matrix to clSpMV's 2x8 BCSR; with
// the widened block menu (up to 8x8) and finer thread tiles (incl. 40),
// yaSpMV should recover Dense while leaving the other matrices unchanged.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto dev = bench::device_from_args(args);
  std::vector<std::string> names =
      args.has("matrix") ? std::vector<std::string>{args.get("matrix")}
                         : std::vector<std::string>{"Dense", "Protein",
                                                    "FEM/Cantilever", "LP"};
  const double mult = args.get_double("scale", 0.5);

  std::cout << "=== Extended block menu ablation (" << dev.name
            << " model) ===\n\n";
  TablePrinter t({"Name", "best single", "paper menu", "paper cfg",
                  "extended menu", "extended cfg"});
  for (const auto& name : names) {
    const auto& e = gen::suite_entry(name);
    const auto A = e.make(e.bench_scale * mult);
    const auto x = bench::random_x(A.cols);
    std::vector<real_t> y(static_cast<std::size_t>(A.rows));
    const auto single = baseline::best_single(A, dev, x, y);

    const auto paper = bench::run_yaspmv(A, dev);
    tune::TuneOptions ext;
    ext.extended_blocks = true;
    const auto extended = bench::run_yaspmv(A, dev, ext);

    t.add_row({name, TablePrinter::fmt(single.gflops, 1) + " (" +
                         single.name + ")",
               TablePrinter::fmt(paper.gflops, 1),
               paper.tuned.best.format.to_string(),
               TablePrinter::fmt(extended.gflops, 1),
               extended.tuned.best.format.to_string()});
  }
  t.print();
  std::cout << "\n(paper: Dense prefers a 2x8 block shape that the Table 1 "
               "menu cannot express)\n";
  return 0;
}
