// Ablation over the DESIGN.md-called-out format/kernel choices on a suite
// subset: block-size sweep, strategy 1 vs 2, texture on/off, column
// compression variants, and the BCCOO vs BCCOO+ slice sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto dev = bench::device_from_args(args);
  // Subset: one matrix per structure class unless --matrix given.
  std::vector<std::string> names =
      args.has("matrix")
          ? std::vector<std::string>{args.get("matrix")}
          : std::vector<std::string>{"Protein", "Epidemiology", "Webbase",
                                     "LP", "mip1"};
  const double mult = args.get_double("scale", 0.5);

  for (const auto& name : names) {
    const auto& e = gen::suite_entry(name);
    const auto A = e.make(e.bench_scale * mult);
    const auto x = bench::random_x(A.cols);
    std::vector<real_t> y(static_cast<std::size_t>(A.rows));
    std::cout << "=== " << name << " (" << A.nnz() << " nnz, " << dev.name
              << " model) ===\n";

    auto run_cfg = [&](core::FormatConfig fc, core::ExecConfig ec) {
      try {
        core::SpmvEngine eng(A, fc, ec, dev);
        const auto r = eng.run(x, y);
        return perf::spmv_gflops(dev, r.stats, A.nnz());
      } catch (const sim::SimError&) {
        return 0.0;
      }
    };

    // Block-size sweep (strategy 2 defaults).
    {
      TablePrinter t({"block", "GFLOPS", "footprint MB"});
      for (index_t bw : {1, 2, 4}) {
        for (index_t bh : {1, 2, 3, 4}) {
          core::FormatConfig fc;
          fc.block_w = bw;
          fc.block_h = bh;
          core::ExecConfig ec;
          const double g = run_cfg(fc, ec);
          core::SpmvEngine eng(A, fc, ec, dev);
          t.add_row({std::to_string(bw) + "x" + std::to_string(bh),
                     TablePrinter::fmt(g, 1),
                     bench::mb(eng.footprint_bytes())});
        }
      }
      std::cout << "-- block-size sweep --\n";
      t.print();
    }

    // Strategy 1 vs strategy 2 across thread tiles.
    {
      TablePrinter t({"tile", "strategy 1", "strategy 2"});
      for (int tile : {4, 8, 16, 32}) {
        core::FormatConfig fc;
        core::ExecConfig e1;
        e1.strategy = core::Strategy::kIntermediateSums;
        e1.thread_tile = tile;
        core::ExecConfig e2;
        e2.strategy = core::Strategy::kResultCache;
        e2.thread_tile = tile;
        t.add_row({std::to_string(tile),
                   TablePrinter::fmt(run_cfg(fc, e1), 1),
                   TablePrinter::fmt(run_cfg(fc, e2), 1)});
      }
      std::cout << "-- strategy 1 vs 2 --\n";
      t.print();
    }

    // Texture, transpose and column-compression toggles.
    {
      TablePrinter t({"variant", "GFLOPS"});
      core::FormatConfig fc;
      core::ExecConfig base;
      t.add_row({"baseline (tex, offline, u16 col)",
                 TablePrinter::fmt(run_cfg(fc, base), 1)});
      core::ExecConfig notex = base;
      notex.use_texture = false;
      t.add_row({"no texture", TablePrinter::fmt(run_cfg(fc, notex), 1)});
      core::ExecConfig online = base;
      online.strategy = core::Strategy::kIntermediateSums;
      online.transpose = core::Transpose::kOnline;
      t.add_row({"online transpose (s1)",
                 TablePrinter::fmt(run_cfg(fc, online), 1)});
      core::ExecConfig intcol = base;
      intcol.short_col_index = false;
      t.add_row({"int32 col idx", TablePrinter::fmt(run_cfg(fc, intcol), 1)});
      core::ExecConfig dcol = base;
      dcol.compress_col_delta = true;
      t.add_row({"int16 delta col idx",
                 TablePrinter::fmt(run_cfg(fc, dcol), 1)});
      std::cout << "-- toggles --\n";
      t.print();
    }

    // BCCOO vs BCCOO+ slice sweep (Section 2.3: more slices = better vector
    // locality but a bigger temp buffer + combine kernel).
    {
      TablePrinter t({"slices", "GFLOPS", "vector hit rate"});
      for (index_t s : {1, 2, 4, 8, 16, 32}) {
        core::FormatConfig fc;
        fc.slices = s;
        if (ceil_div(A.cols, fc.block_w) < s) continue;
        core::ExecConfig ec;
        double g = 0, hit = 0;
        try {
          core::SpmvEngine eng(A, fc, ec, dev);
          const auto r = eng.run(x, y);
          g = perf::spmv_gflops(dev, r.stats, A.nnz());
          hit = r.stats.vector_hit_rate();
        } catch (const sim::SimError&) {
        }
        t.add_row({std::to_string(s), TablePrinter::fmt(g, 1),
                   TablePrinter::fmt(hit * 100, 1) + "%"});
      }
      std::cout << "-- BCCOO+ slice sweep --\n";
      t.print();
    }
    std::cout << "\n";
  }
  return 0;
}
