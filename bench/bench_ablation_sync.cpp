// Ablation (Sections 3.2.4 and text): synchronization variants.
//   * adjacent synchronization vs the two-kernel global synchronization
//   * logical workgroup ids via global atomics (paper: < 2% overhead)
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto dev = bench::device_from_args(args);
  const auto cases = bench::load_cases(args);
  bench::print_banner("Ablation: synchronization variants (" + dev.name +
                          " model)",
                      cases);

  TablePrinter t({"Name", "Global sync", "Adjacent sync", "Adj+logical ids",
                  "Logical-id overhead %"});
  std::vector<double> overheads;
  for (const auto& c : cases) {
    const auto& A = c.matrix;
    const auto x = bench::random_x(A.cols);
    std::vector<real_t> y(static_cast<std::size_t>(A.rows));
    const auto tuned = tune::tune(A, dev).best;

    auto run_cfg = [&](bool adjacent, bool logical) {
      core::ExecConfig ec = tuned.exec;
      ec.adjacent_sync = adjacent;
      ec.logical_ids = logical;
      core::SpmvEngine eng(A, tuned.format, ec, dev);
      const auto r = eng.run(x, y);
      return perf::spmv_gflops(dev, r.stats, A.nnz());
    };
    const double g_global = run_cfg(false, false);
    const double g_adj = run_cfg(true, false);
    const double g_logical = run_cfg(true, true);
    const double ovh = (g_adj / std::max(g_logical, 1e-12) - 1.0) * 100.0;
    overheads.push_back(ovh);
    t.add_row({c.name, TablePrinter::fmt(g_global, 1),
               TablePrinter::fmt(g_adj, 1), TablePrinter::fmt(g_logical, 1),
               TablePrinter::fmt(ovh, 2)});
  }
  t.print();
  double worst = 0;
  for (double o : overheads) worst = std::max(worst, o);
  std::cout << "\nWorst logical-workgroup-id overhead: "
            << TablePrinter::fmt(worst, 2) << "% (paper: < 2%)\n";
  return 0;
}
