// Reproduces the Section 4 auto-tuning evaluation: tuning time per matrix
// with the pruned search (paper: 12.8 s average on a Core2 Quad + GTX680)
// and the pruned-vs-exhaustive quality comparison (paper: identical on
// GTX680; two matrices ~10% off on GTX480).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto dev = bench::device_from_args(args);
  const auto cases = bench::load_cases(args);
  const bool with_exhaustive = args.has("exhaustive");
  bench::print_banner("Section 4: auto-tuning cost and quality (" + dev.name +
                          " model)" +
                          (with_exhaustive ? "" :
                               "  [pass --exhaustive for the pruned-vs-"
                               "exhaustive comparison]"),
                      cases);

  TablePrinter t({"Name", "Tune time (s)", "Evaluated", "Skipped",
                  "Best GFLOPS", "Exhaustive GFLOPS", "Gap %",
                  "Best config"});
  double total_time = 0, worst_gap = 0;
  for (const auto& c : cases) {
    const auto r = tune::tune(c.matrix, dev);
    total_time += r.tuning_seconds;
    double ex_g = 0, gap = 0;
    if (with_exhaustive) {
      tune::TuneOptions opt;
      opt.exhaustive = true;
      const auto rx = tune::tune(c.matrix, dev, opt);
      ex_g = rx.best.gflops;
      gap = (ex_g / std::max(r.best.gflops, 1e-12) - 1.0) * 100.0;
      worst_gap = std::max(worst_gap, gap);
    }
    t.add_row({c.name, TablePrinter::fmt(r.tuning_seconds, 2),
               std::to_string(r.evaluated), std::to_string(r.skipped),
               TablePrinter::fmt(r.best.gflops, 1),
               with_exhaustive ? TablePrinter::fmt(ex_g, 1) : "-",
               with_exhaustive ? TablePrinter::fmt(gap, 1) : "-",
               r.best.format.to_string() + " " + r.best.exec.to_string()});
  }
  t.print();
  std::cout << "\nAverage tuning time: "
            << TablePrinter::fmt(total_time / static_cast<double>(cases.size()),
                                 2)
            << " s (paper: 12.8 s on their testbed)\n";
  if (with_exhaustive) {
    std::cout << "Worst pruned-vs-exhaustive gap: "
              << TablePrinter::fmt(worst_gap, 1)
              << "% (paper: 0% on GTX680; <= 11.1% on GTX480)\n";
  }
  return 0;
}
