// Shared helpers for the paper-reproduction bench harness.
//
// Every bench binary accepts:
//   --matrix=<Table 2 name>   run a single matrix (default: all 20)
//   --scale=<f>               multiply the per-matrix default scale by f
//                             (--scale=1 keeps defaults; larger = bigger
//                             instances; the per-matrix defaults target a
//                             1-core CI machine)
//   --device=gtx680|gtx480    device model where applicable
//   --mtx=<path>              load a Matrix Market file instead of the suite
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "yaspmv/baselines/clspmv.hpp"
#include "yaspmv/baselines/coo_cusp.hpp"
#include "yaspmv/core/engine.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/io/matrix_market.hpp"
#include "yaspmv/perf/model.hpp"
#include "yaspmv/tune/tuner.hpp"
#include "yaspmv/util/args.hpp"
#include "yaspmv/util/rng.hpp"
#include "yaspmv/util/stopwatch.hpp"
#include "yaspmv/util/table.hpp"

namespace yaspmv::bench {

struct MatrixCase {
  std::string name;
  fmt::Coo matrix;
};

inline sim::DeviceSpec device_from_args(const Args& args) {
  const std::string d = args.get("device", "gtx680");
  if (d == "gtx480") return sim::gtx480();
  if (d == "gtx680") return sim::gtx680();
  throw std::invalid_argument("unknown device: " + d);
}

/// Loads the requested matrices: a single --mtx file, a single --matrix
/// suite entry, or the full 20-matrix Table 2 suite at bench scale.
inline std::vector<MatrixCase> load_cases(const Args& args) {
  std::vector<MatrixCase> out;
  if (args.has("mtx")) {
    out.push_back({args.get("mtx"),
                   io::read_matrix_market_file(args.get("mtx"))});
    return out;
  }
  const double mult = args.get_double("scale", 0.5);
  const std::string only = args.get("matrix", "");
  for (const auto& e : gen::suite()) {
    if (!only.empty() && e.name != only) continue;
    out.push_back({e.name, e.make(e.bench_scale * mult)});
  }
  require(!out.empty(), "no matrix selected (check --matrix spelling)");
  return out;
}

inline std::vector<real_t> random_x(index_t cols, std::uint64_t seed = 0x5eed) {
  SplitMix64 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  return x;
}

/// Tunes and runs yaSpMV on one matrix; returns (gflops, tune result).
struct YaspmvRun {
  tune::TuneResult tuned;
  double gflops = 0;
  std::size_t footprint = 0;
};

inline YaspmvRun run_yaspmv(const fmt::Coo& a, const sim::DeviceSpec& dev,
                            const tune::TuneOptions& topt = {}) {
  YaspmvRun out;
  out.tuned = tune::tune(a, dev, topt);
  core::SpmvEngine eng(a, out.tuned.best.format, out.tuned.best.exec, dev);
  const auto x = random_x(a.cols);
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  const auto run = eng.run(x, y);
  out.gflops = perf::spmv_gflops(dev, run.stats, a.nnz());
  out.footprint = eng.footprint_bytes();
  return out;
}

inline std::string mb(std::size_t bytes) {
  if (bytes == std::numeric_limits<std::size_t>::max()) return "N/A";
  return TablePrinter::fmt(static_cast<double>(bytes) / 1e6, 1);
}

/// Prints the standard bench banner with the effective matrix sizes so the
/// reader can relate scaled instances to the paper's Table 2.
inline void print_banner(const std::string& what,
                         const std::vector<MatrixCase>& cases) {
  std::cout << "=== " << what << " ===\n"
            << "(synthetic Table 2 suite; instances are scaled-down with "
               "preserved per-row statistics — pass --scale=2 or more for "
               "bigger instances, --mtx=<file> for real matrices)\n"
            << cases.size() << " matrices\n\n";
}

}  // namespace yaspmv::bench
