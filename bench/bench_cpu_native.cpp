// Native CPU wall-clock benchmark: the BCCOO segmented-sum SpMV running on
// real threads vs parallel CSR, over a suite subset.  This is *measured*
// host time (not the device model).  Note the paper's argument is about
// GPU bandwidth/balance; on a cache-based CPU the CSR row loop is already
// well matched to the hardware, so BCCOO is not expected to dominate here —
// the bench documents the native backend's real cost honestly.
//
// Besides the human-readable table, the run is written as machine-readable
// JSON (default BENCH_cpu.json, override with --json=<path>; --json=-
// disables the file) covering, per matrix: CSR-parallel, BCCOO scalar
// (1x1), BCCOO blocked, and fused SpMM GFLOPS, plus auto-tuning seconds
// with the serial and the pooled candidate sweep (--tune=0 skips tuning).
// The scalar BCCOO kernel is additionally timed on each materialized column
// stream (raw 4-byte / u16 short / int16 delta), with bytes-moved, GB/s and
// the modeled-vs-measured byte comparison per stream (--no-delta-decode
// skips the compressed runs).  A single-thread ABFT series times the
// checksum-verified apply against the raw apply on the same engine and
// records `verified_gflops` + `verify_overhead` per matrix plus the
// `verify_overhead_geomean` across the suite (tools/bench_compare gates
// overhead growth the same way it gates GFLOPS regressions).  A
// `thread_scaling` series per matrix (--scaling=0 skips it) times the
// legacy serial-carry-fold path against the speculative parallel fix-up
// across a thread ladder {1,2,4,8,16,hw}, recording GFLOPS, speedup and
// parallel efficiency per count plus `speedup_16t` /
// `parallel_efficiency_16t`, and a suite-level
// `segsum_speedup_16t_geomean` over the long-segment matrices
// (mean nnz/row >= 16).  A `specialized_vs_generic` series per matrix
// times the compile-time specialized grid kernel (cpu/kernels_grid.hpp)
// against the pinned-generic interpreter on the same small-block format
// (bw*bh <= 4, raw stream) at 1 and 16 requested threads, recording GFLOPS
// and speedup per count plus suite-level `specialized_speedup_1t_geomean`
// / `specialized_speedup_16t_geomean` (gated relatively by
// tools/bench_compare like every other GFLOPS series).  The binary
// re-validates its own JSON before
// exiting and fails the run if the report does not parse — this is what the
// bench-smoke CI test asserts.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/cpu/stream_spmv.hpp"
#include "yaspmv/io/binary.hpp"
#include "yaspmv/io/stream.hpp"
#include "yaspmv/perf/model.hpp"
#include "yaspmv/util/json.hpp"
#include "yaspmv/util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto threads = static_cast<unsigned>(
      args.get_int("threads", static_cast<long>(default_workers())));
  const long reps = args.get_int("reps", 10);
  std::vector<std::string> names =
      args.has("matrix")
          ? std::vector<std::string>{args.get("matrix")}
          : std::vector<std::string>{"Protein", "QCD", "Economics",
                                     "Webbase", "mip1", "Dense"};
  const double mult = args.get_double("scale", 0.5);
  const bool do_tune = args.get_int("tune", 1) != 0;
  const bool no_compressed = args.has("no-delta-decode");
  const bool do_scaling = args.get_int("scaling", 1) != 0;
  const std::string json_path = args.get("json", "BENCH_cpu.json");
  const index_t spmm_k = 8;

  std::cout << "=== Native CPU SpMV (wall clock, " << threads
            << " thread(s), " << reps << " reps, simd="
            << cpu::simd::to_string(cpu::simd::active()) << ") ===\n\n";
  TablePrinter t({"Name", "NNZ", "CSR", "1x1 raw", "1x1 short", "1x1 delta",
                  "ver 1T", "blocked", "SpMM k=8", "seg x16T", "spec x1T",
                  "tune ser(s)", "tune pool(s)"});

  // Thread counts for the segmented-sum scaling series: the fixed ladder
  // the report is gated on, plus the machine's hardware concurrency.
  std::vector<unsigned> scale_threads{1, 2, 4, 8, 16};
  {
    const unsigned hw = default_workers();
    if (std::find(scale_threads.begin(), scale_threads.end(), hw) ==
        scale_threads.end()) {
      scale_threads.push_back(hw);
      std::sort(scale_threads.begin(), scale_threads.end());
    }
  }

  json::Writer w;
  w.begin_object();
  w.key("bench").value("cpu_native");
  w.key("threads").value(threads);
  w.key("reps").value(static_cast<long long>(reps));
  w.key("scale").value(mult);
  w.key("simd").value(cpu::simd::to_string(cpu::simd::active()));
  w.key("spmm_k").value(spmm_k);
  w.key("matrices").begin_array();

  auto time_ms = [&](auto&& fn) {
    fn();  // warm up
    Stopwatch sw;
    for (long r = 0; r < reps; ++r) fn();
    return sw.elapsed_ms() / static_cast<double>(reps);
  };

  double overhead_log_sum = 0.0;  // geomean of verified/raw time ratios
  int overhead_count = 0;
  // Geomean of the 16-thread speculative-over-serial-fold speedup across
  // the long-segment matrices (mean nnz/row >= 16) — the shapes whose
  // carry chains the parallel fix-up is supposed to shorten.
  double segsum_log_sum = 0.0;
  int segsum_count = 0;
  // Geomeans of the specialized-over-generic apply speedup on the
  // small-block grid configs, at 1 and 16 requested threads.
  double spec_log_1t = 0.0, spec_log_16t = 0.0;
  int spec_count = 0;
  // Geomean of the 2-shard-over-1-shard speedup at the fixed shard-series
  // thread count.  On a single-node host sharding is placement-only, so
  // this is expected to sit at ~1.0x — the series documents that honestly;
  // the win needs real cross-node bandwidth asymmetry.
  double shard_log_sum = 0.0;
  int shard_count_n = 0;
  const std::vector<unsigned> shard_counts{1, 2, 4};
  // Fixed thread count for the series, capped at the hardware so the ratio
  // measures placement and not oversubscription-scheduler noise.
  const unsigned shard_threads = std::min(4u, default_workers());

  for (const auto& name : names) {
    const auto& e = gen::suite_entry(name);
    const auto A = e.make(e.bench_scale * mult);
    const auto csr = fmt::Csr::from_coo(A);
    const auto x = bench::random_x(A.cols);
    std::vector<real_t> y(static_cast<std::size_t>(A.rows));
    const double flops = 2.0 * static_cast<double>(A.nnz());

    // Scalar-block (1x1) BCCOO — the segmented-sum fast path — on each
    // materialized column stream (one shared format, three executors).
    core::FormatConfig fc_scalar;
    auto m_scalar =
        std::make_shared<const core::Bccoo>(core::Bccoo::build(A, fc_scalar));
    cpu::CpuSpmv scalar(m_scalar, threads, core::ColStream::kRaw);
    cpu::CpuSpmv scalar_short(m_scalar, threads, core::ColStream::kShort);
    cpu::CpuSpmv scalar_delta(m_scalar, threads, core::ColStream::kDelta);
    // Blocked BCCOO: smallest-footprint non-scalar block dims.
    core::FormatConfig fc_blk;
    fc_blk.block_w = 2;
    fc_blk.block_h = 2;
    for (const auto& [bw, bh] : tune::pruned_block_dims(A)) {
      if (bw * bh > 1) {
        fc_blk.block_w = bw;
        fc_blk.block_h = std::min<index_t>(bh, 4);
        break;
      }
    }
    cpu::CpuSpmv blocked(
        std::make_shared<const core::Bccoo>(core::Bccoo::build(A, fc_blk)),
        threads);
    cpu::CpuSpmm spmm(m_scalar, threads);
    const auto X = bench::random_x(A.cols * spmm_k);
    std::vector<real_t> Y(static_cast<std::size_t>(A.rows) *
                          static_cast<std::size_t>(spmm_k));

    const double t_csr =
        time_ms([&] { cpu::spmv_csr_parallel(csr, x, y, threads); });
    const double t_scalar = time_ms([&] { scalar.spmv(x, y); });
    const double t_short =
        no_compressed ? 0.0 : time_ms([&] { scalar_short.spmv(x, y); });
    const double t_delta =
        no_compressed ? 0.0 : time_ms([&] { scalar_delta.spmv(x, y); });
    const double t_blk = time_ms([&] { blocked.spmv(x, y); });
    const double t_spmm = time_ms([&] { spmm.spmm(X, Y, spmm_k); });

    // ABFT overhead series, pinned to one thread so raw and verified see
    // the identical kernel schedule: the verified apply adds sum(y) plus a
    // checksum_w . x dot product on top of the same SpMV.
    cpu::CpuSpmv scalar_1t(m_scalar, 1, core::ColStream::kRaw);
    const double t_raw_1t = time_ms([&] { scalar_1t.spmv(x, y); });
    const double t_ver_1t = time_ms([&] { scalar_1t.spmv_verified(x, y); });
    const double gf_ver = flops / (t_ver_1t * 1e6);
    const double verify_overhead =
        t_raw_1t > 0 ? t_ver_1t / t_raw_1t - 1.0 : 0.0;
    if (t_raw_1t > 0 && t_ver_1t > 0) {
      overhead_log_sum += std::log(t_ver_1t / t_raw_1t);
      ++overhead_count;
    }

    const double gf_csr = flops / (t_csr * 1e6);
    const double gf_scalar = flops / (t_scalar * 1e6);
    const double gf_short = t_short > 0 ? flops / (t_short * 1e6) : 0.0;
    const double gf_delta = t_delta > 0 ? flops / (t_delta * 1e6) : 0.0;
    const double gf_blk = flops / (t_blk * 1e6);
    const double gf_spmm =
        flops * static_cast<double>(spmm_k) / (t_spmm * 1e6);

    // Compile-time specialization series: the dispatched grid kernel
    // against the pinned-generic interpreter on the SAME format — the
    // smallest in-grid small-block dims (bw*bh <= 4) the pruned tuner menu
    // offers for this matrix, raw stream, at 1 and 16 requested threads.
    // Bitwise output parity between the two engines is a tested invariant
    // (kernel_grid_test); this series prices the dispatch win.
    core::FormatConfig fc_sg;
    fc_sg.block_w = 2;
    fc_sg.block_h = 1;
    for (const auto& [bw, bh] : tune::pruned_block_dims(A)) {
      if (bw * bh > 1 && bw * bh <= 4 &&
          cpu::grid::find(static_cast<int>(bw), static_cast<int>(bh),
                          core::ColStream::kRaw) != nullptr) {
        fc_sg.block_w = bw;
        fc_sg.block_h = bh;
        break;
      }
    }
    auto m_sg =
        std::make_shared<const core::Bccoo>(core::Bccoo::build(A, fc_sg));
    double sg_spec_1t, sg_gen_1t, sg_spec_16t, sg_gen_16t;
    std::string sg_kernel;
    {
      cpu::CpuSpmv spec1(m_sg, 1, core::ColStream::kRaw);
      cpu::CpuSpmv gen1(m_sg, 1, core::ColStream::kRaw,
                        cpu::default_segsum_mode(),
                        cpu::grid::KernelDispatch::kGeneric);
      cpu::CpuSpmv spec16(m_sg, 16, core::ColStream::kRaw);
      cpu::CpuSpmv gen16(m_sg, 16, core::ColStream::kRaw,
                         cpu::default_segsum_mode(),
                         cpu::grid::KernelDispatch::kGeneric);
      sg_kernel = spec1.kernel_id();
      sg_spec_1t = flops / (time_ms([&] { spec1.spmv(x, y); }) * 1e6);
      sg_gen_1t = flops / (time_ms([&] { gen1.spmv(x, y); }) * 1e6);
      sg_spec_16t = flops / (time_ms([&] { spec16.spmv(x, y); }) * 1e6);
      sg_gen_16t = flops / (time_ms([&] { gen16.spmv(x, y); }) * 1e6);
    }
    const double sg_speedup_1t = sg_gen_1t > 0 ? sg_spec_1t / sg_gen_1t : 0.0;
    const double sg_speedup_16t =
        sg_gen_16t > 0 ? sg_spec_16t / sg_gen_16t : 0.0;
    if (sg_speedup_1t > 0 && sg_speedup_16t > 0) {
      spec_log_1t += std::log(sg_speedup_1t);
      spec_log_16t += std::log(sg_speedup_16t);
      ++spec_count;
    }

    // Segmented-sum thread-scaling series: the pre-change execution
    // (serial carry fold + AVX2 dispatch, exactly the bits the legacy path
    // produced) against the speculative fix-up at its default dispatch
    // level, across the thread ladder.  Engines are rebuilt per thread
    // count because the chunk decomposition derives from it.
    std::vector<double> sc_serial_gf, sc_spec_gf, sc_speedup, sc_eff;
    double speedup_16t = 0.0, eff_16t = 0.0;
    if (do_scaling) {
      const auto legacy_level = cpu::simd::cpu_has_avx2()
                                    ? cpu::simd::Level::kAvx2
                                    : cpu::simd::Level::kPortable;
      for (const unsigned T : scale_threads) {
        double t_ser, t_spec;
        {
          cpu::CpuSpmv e(m_scalar, T, core::ColStream::kRaw,
                         cpu::SegSumMode::kSerialFold);
          const auto saved = cpu::simd::active();
          cpu::simd::set_level(legacy_level);
          t_ser = time_ms([&] { e.spmv(x, y); });
          cpu::simd::set_level(saved);
        }
        {
          cpu::CpuSpmv e(m_scalar, T, core::ColStream::kRaw,
                         cpu::SegSumMode::kSpeculative);
          t_spec = time_ms([&] { e.spmv(x, y); });
        }
        sc_serial_gf.push_back(flops / (t_ser * 1e6));
        sc_spec_gf.push_back(flops / (t_spec * 1e6));
        sc_speedup.push_back(t_spec > 0 ? t_ser / t_spec : 0.0);
        sc_eff.push_back(sc_spec_gf.front() > 0
                             ? sc_spec_gf.back() /
                                   (sc_spec_gf.front() *
                                    static_cast<double>(T))
                             : 0.0);
        if (T == 16) {
          speedup_16t = sc_speedup.back();
          eff_16t = sc_eff.back();
        }
      }
      const double nnz_per_row =
          static_cast<double>(A.nnz()) / std::max<index_t>(1, A.rows);
      if (nnz_per_row >= 16.0 && speedup_16t > 0) {
        segsum_log_sum += std::log(speedup_16t);
        ++segsum_count;
      }
    }

    // Shard-scaling series: the same speculative engine at a fixed thread
    // count, with shard counts {1,2,4}.  Sharding changes placement and
    // claim order only (the chunk grid, fix-up tree and combine order are
    // shard-invariant — shard_test asserts bitwise equality), so any delta
    // here is pure memory locality.
    std::vector<double> sh_gf, sh_speedup;
    double shard_speedup_2s = 0.0;
    if (do_scaling) {
      double t_1shard = 0.0;
      for (const unsigned S : shard_counts) {
        cpu::CpuSpmv e(m_scalar, shard_threads, core::ColStream::kRaw,
                       cpu::SegSumMode::kSpeculative,
                       cpu::grid::KernelDispatch::kAuto, S);
        const double t_s = time_ms([&] { e.spmv(x, y); });
        if (S == 1) t_1shard = t_s;
        sh_gf.push_back(flops / (t_s * 1e6));
        sh_speedup.push_back(t_s > 0 ? t_1shard / t_s : 0.0);
        if (S == 2) shard_speedup_2s = sh_speedup.back();
      }
      if (shard_speedup_2s > 0) {
        shard_log_sum += std::log(shard_speedup_2s);
        ++shard_count_n;
      }
    }

    // Auto-tuning time: the identical pruned sweep, candidates evaluated
    // serially vs concurrently on the WorkPool (results are defined to be
    // identical — see TuneOptions::tune_workers).
    double tune_serial = 0.0, tune_pooled = 0.0;
    if (do_tune) {
      const auto dev = bench::device_from_args(args);
      tune::TuneOptions topt;
      topt.tune_workers = 1;
      tune_serial = tune::tune(A, dev, topt).tuning_seconds;
      topt.tune_workers = 0;  // hardware concurrency
      tune_pooled = tune::tune(A, dev, topt).tuning_seconds;
    }

    t.add_row({name, std::to_string(A.nnz()), TablePrinter::fmt(gf_csr, 2),
               TablePrinter::fmt(gf_scalar, 2),
               no_compressed ? "-" : TablePrinter::fmt(gf_short, 2),
               no_compressed ? "-" : TablePrinter::fmt(gf_delta, 2),
               TablePrinter::fmt(verify_overhead * 100.0, 1) + "%",
               TablePrinter::fmt(gf_blk, 2), TablePrinter::fmt(gf_spmm, 2),
               do_scaling ? TablePrinter::fmt(speedup_16t, 2) + "x" : "-",
               TablePrinter::fmt(sg_speedup_1t, 2) + "x",
               do_tune ? TablePrinter::fmt(tune_serial, 2) : "-",
               do_tune ? TablePrinter::fmt(tune_pooled, 2) : "-"});

    w.begin_object();
    w.key("name").value(name);
    w.key("rows").value(static_cast<long long>(A.rows));
    w.key("cols").value(static_cast<long long>(A.cols));
    w.key("nnz").value(static_cast<unsigned long long>(A.nnz()));
    w.key("csr_gflops").value(gf_csr);
    w.key("bccoo_scalar_gflops").value(gf_scalar);
    // Per column stream: throughput, exact bytes the kernel reads from the
    // stored format per SpMV, delivered GB/s, and the footprint model's
    // prediction for the same stream (device widths — see perf/model).
    const core::Bccoo& mf = *m_scalar;
    const std::size_t esc = mf.delta_escapes.size();
    w.key("col_streams").begin_object();
    const auto stream_obj = [&](const char* key, core::ColStream cs,
                                double gf, double ms, bool short_col,
                                bool delta_col) {
      w.key(key).begin_object();
      const auto cmp = perf::compare_bytes(
          mf.footprint_bytes(short_col, delta_col, delta_col ? esc : 0),
          mf.traffic_bytes(cs));
      // A request the format cannot serve (short columns past u16 range)
      // degrades to raw; record what actually ran.
      w.key("resolved").value(core::to_string(mf.resolve_col_stream(cs)));
      w.key("gflops").value(gf);
      w.key("bytes_measured").value(
          static_cast<unsigned long long>(cmp.measured));
      w.key("bytes_modeled").value(
          static_cast<unsigned long long>(cmp.modeled));
      w.key("bytes_ratio").value(cmp.ratio);
      w.key("gbps").value(ms > 0 ? static_cast<double>(cmp.measured) /
                                       (ms * 1e-3) / 1e9
                                 : 0.0);
      w.end_object();
    };
    stream_obj("raw", core::ColStream::kRaw, gf_scalar, t_scalar, false,
               false);
    if (!no_compressed) {
      stream_obj("short", core::ColStream::kShort, gf_short, t_short, true,
                 false);
      stream_obj("delta", core::ColStream::kDelta, gf_delta, t_delta, false,
                 true);
      w.key("delta_escapes").value(static_cast<unsigned long long>(esc));
      w.key("delta_escapes_per_tile")
          .value(mf.num_col_tiles() > 0
                     ? static_cast<double>(esc) /
                           static_cast<double>(mf.num_col_tiles())
                     : 0.0);
    }
    w.end_object();
    w.key("bccoo_blocked_gflops").value(gf_blk);
    w.key("blocked_dims").begin_array();
    w.value(static_cast<long long>(fc_blk.block_w));
    w.value(static_cast<long long>(fc_blk.block_h));
    w.end_array();
    w.key("spmm_gflops").value(gf_spmm);
    // ABFT checksum verification, single thread (see the 1T series above).
    w.key("verified_gflops").value(gf_ver);
    w.key("verify_overhead").value(verify_overhead);
    // Specialized-grid vs generic apply on the small-block format.
    w.key("specialized_vs_generic").begin_object();
    w.key("dims").begin_array();
    w.value(static_cast<long long>(fc_sg.block_w));
    w.value(static_cast<long long>(fc_sg.block_h));
    w.end_array();
    w.key("kernel").value(sg_kernel);
    w.key("generic_gflops_1t").value(sg_gen_1t);
    w.key("specialized_gflops_1t").value(sg_spec_1t);
    w.key("speedup_1t").value(sg_speedup_1t);
    w.key("generic_gflops_16t").value(sg_gen_16t);
    w.key("specialized_gflops_16t").value(sg_spec_16t);
    w.key("speedup_16t").value(sg_speedup_16t);
    w.end_object();
    if (do_scaling) {
      // serial_fold = the pre-change path (serial carry fold, AVX2);
      // speculative = the parallel fix-up at the default dispatch level.
      // speedup[i] = serial_fold time / speculative time at threads[i];
      // parallel_efficiency[i] = speculative scaling vs perfect linear.
      w.key("thread_scaling").begin_object();
      w.key("threads").begin_array();
      for (const unsigned T : scale_threads) {
        w.value(static_cast<long long>(T));
      }
      w.end_array();
      const auto num_array = [&](const char* key,
                                 const std::vector<double>& v) {
        w.key(key).begin_array();
        for (const double d : v) w.value(d);
        w.end_array();
      };
      num_array("serial_fold_gflops", sc_serial_gf);
      num_array("speculative_gflops", sc_spec_gf);
      num_array("speedup", sc_speedup);
      num_array("parallel_efficiency", sc_eff);
      w.key("speedup_16t").value(speedup_16t);
      w.key("parallel_efficiency_16t").value(eff_16t);
      w.end_object();
    }
    if (do_scaling) {
      w.key("shard_scaling").begin_object();
      w.key("threads").value(static_cast<long long>(shard_threads));
      w.key("shards").begin_array();
      for (const unsigned S : shard_counts) {
        w.value(static_cast<long long>(S));
      }
      w.end_array();
      w.key("gflops").begin_array();
      for (const double d : sh_gf) w.value(d);
      w.end_array();
      w.key("speedup").begin_array();
      for (const double d : sh_speedup) w.value(d);
      w.end_array();
      w.key("speedup_2s").value(shard_speedup_2s);
      w.end_object();
    }
    if (do_tune) {
      w.key("tune_seconds_serial").value(tune_serial);
      w.key("tune_seconds_pooled").value(tune_pooled);
    }
    w.end_object();
  }
  w.end_array();
  const double overhead_geomean =
      overhead_count > 0
          ? std::exp(overhead_log_sum / static_cast<double>(overhead_count)) -
                1.0
          : 0.0;
  w.key("verify_overhead_geomean").value(overhead_geomean);
  const double segsum_geomean =
      segsum_count > 0
          ? std::exp(segsum_log_sum / static_cast<double>(segsum_count))
          : 0.0;
  if (do_scaling) {
    w.key("segsum_speedup_16t_geomean").value(segsum_geomean);
    w.key("segsum_long_segment_count")
        .value(static_cast<long long>(segsum_count));
  }
  const double spec_geo_1t =
      spec_count > 0
          ? std::exp(spec_log_1t / static_cast<double>(spec_count))
          : 0.0;
  const double spec_geo_16t =
      spec_count > 0
          ? std::exp(spec_log_16t / static_cast<double>(spec_count))
          : 0.0;
  w.key("specialized_speedup_1t_geomean").value(spec_geo_1t);
  w.key("specialized_speedup_16t_geomean").value(spec_geo_16t);
  const double shard_geomean =
      shard_count_n > 0
          ? std::exp(shard_log_sum / static_cast<double>(shard_count_n))
          : 0.0;
  if (do_scaling) {
    w.key("shard_speedup_2s_geomean").value(shard_geomean);
    // 1 = single NUMA node: sharding is placement-only on this host and
    // the geomean above is expected (and gated) to be ~1.0x, not a win.
    w.key("shard_domains").value(static_cast<long long>(default_shards()));
  }

  // Out-of-core streaming series: one representative matrix written to a
  // .bccoo container, applied through the mmapped tile-streaming engine,
  // against a plain sequential read() sweep of the same file under the same
  // page-cache conditions.  `bandwidth_fraction` is the acceptance metric:
  // the streamed apply should deliver at least half the bandwidth a dumb
  // sequential read of the file gets.
  double oo_disk_gbps = 0.0, oo_stream_gbps = 0.0;
  std::uint64_t oo_bytes = 0;
  {
    const auto& e = gen::suite_entry("Protein");
    const auto A = e.make(e.bench_scale * mult);
    core::FormatConfig fc;
    const auto f = core::Bccoo::build(A, fc);
    const std::string path = json_path == "-" ? "BENCH_oocore_tmp.bccoo"
                                              : json_path + ".oocore_tmp";
    io::save_bccoo_file(path, f);

    // Sequential-read baseline: same file, same cache state (both runs are
    // warm — the comparison is apples-to-apples, not a cold-disk number).
    {
      const int fd = ::open(path.c_str(), O_RDONLY);
      if (fd >= 0) {
        std::vector<char> buf(1 << 20);
        std::uint64_t total = 0;
        const auto sweep = [&] {
          ::lseek(fd, 0, SEEK_SET);
          total = 0;
          for (;;) {
            const ssize_t n = ::read(fd, buf.data(), buf.size());
            if (n <= 0) break;
            total += static_cast<std::uint64_t>(n);
          }
        };
        const double ms = time_ms(sweep);
        if (ms > 0) {
          oo_disk_gbps = static_cast<double>(total) / (ms * 1e-3) / 1e9;
        }
        ::close(fd);
      }
    }

    auto mapped = std::make_shared<const io::MappedBccoo>(path);
    cpu::CpuStreamSpmv streamer(mapped);
    const auto sx = bench::random_x(A.cols);
    std::vector<real_t> sy(static_cast<std::size_t>(A.rows));
    const double ms = time_ms([&] { streamer.spmv(sx, sy); });
    oo_bytes = streamer.streamed_bytes();
    if (ms > 0) {
      oo_stream_gbps = static_cast<double>(oo_bytes) / (ms * 1e-3) / 1e9;
    }
    // Unlinking a live mapping is fine on POSIX; the pages go with the
    // last reference when `mapped` leaves scope.
    std::remove(path.c_str());
  }
  w.key("out_of_core").begin_object();
  w.key("matrix").value("Protein");
  w.key("bytes_per_apply").value(static_cast<unsigned long long>(oo_bytes));
  w.key("sequential_read_gbps").value(oo_disk_gbps);
  w.key("stream_gbps").value(oo_stream_gbps);
  w.key("bandwidth_fraction")
      .value(oo_disk_gbps > 0 ? oo_stream_gbps / oo_disk_gbps : 0.0);
  w.end_object();
  w.end_object();

  t.print();
  std::cout << "\n(GFLOPS columns; SpMM counts 2*nnz*k flops; 'ver 1T' is\n"
               " the single-thread ABFT checksum-verified apply overhead;\n"
               " 'seg x16T' is the 16-thread speculative-over-serial-fold\n"
               " segmented-sum speedup; 'spec x1T' is the single-thread\n"
               " specialized-grid-over-generic apply speedup)\n"
            << "verified-apply overhead geomean (1 thread): "
            << overhead_geomean * 100.0 << "%\n"
            << "specialized-kernel speedup geomean (small-block, " << spec_count
            << " matrices): " << spec_geo_1t << "x at 1T, " << spec_geo_16t
            << "x at 16T\n";
  if (do_scaling) {
    std::cout << "segmented-sum 16T speedup geomean (long-segment suite, "
              << segsum_count << " matrices): " << segsum_geomean << "x\n"
              << "2-shard speedup geomean at " << shard_threads
              << "T (placement-only on " << default_shards()
              << " NUMA domain(s)): " << shard_geomean << "x\n";
  }
  std::cout << "out-of-core stream: " << oo_stream_gbps << " GB/s vs "
            << oo_disk_gbps << " GB/s sequential read ("
            << (oo_disk_gbps > 0 ? oo_stream_gbps / oo_disk_gbps * 100.0
                                 : 0.0)
            << "% of file bandwidth, " << oo_bytes << " bytes/apply)\n";

  const std::string report = w.take();
  if (!json::valid(report)) {
    std::cerr << "bench_cpu_native: generated JSON failed validation\n";
    return 1;
  }
  if (json_path != "-") {
    std::ofstream out(json_path);
    out << report << "\n";
    if (!out) {
      std::cerr << "bench_cpu_native: cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
