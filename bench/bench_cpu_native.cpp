// Native CPU wall-clock benchmark: the BCCOO segmented-sum SpMV running on
// real threads vs parallel CSR, over a suite subset.  This is *measured*
// host time (not the device model).  Note the paper's argument is about
// GPU bandwidth/balance; on a cache-based CPU the CSR row loop is already
// well matched to the hardware, so BCCOO is not expected to dominate here —
// the bench documents the native backend's real cost honestly.
#include "bench_common.hpp"

#include "yaspmv/cpu/spmv.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto threads = static_cast<unsigned>(
      args.get_int("threads", static_cast<long>(default_workers())));
  const long reps = args.get_int("reps", 10);
  std::vector<std::string> names =
      args.has("matrix")
          ? std::vector<std::string>{args.get("matrix")}
          : std::vector<std::string>{"Protein", "QCD", "Economics",
                                     "Webbase", "mip1"};
  const double mult = args.get_double("scale", 0.5);

  std::cout << "=== Native CPU SpMV (wall clock, " << threads
            << " thread(s), " << reps << " reps) ===\n\n";
  TablePrinter t({"Name", "NNZ", "CSR par (ms)", "BCCOO (ms)", "speedup",
                  "CSR GFLOPS", "BCCOO GFLOPS"});
  for (const auto& name : names) {
    const auto& e = gen::suite_entry(name);
    const auto A = e.make(e.bench_scale * mult);
    const auto csr = fmt::Csr::from_coo(A);
    const auto x = bench::random_x(A.cols);
    std::vector<real_t> y(static_cast<std::size_t>(A.rows));

    // Tuned-ish BCCOO: pick the smallest-footprint block dims.
    core::FormatConfig fc;
    const auto dims = tune::pruned_block_dims(A);
    fc.block_w = dims.front().first;
    fc.block_h = std::min<index_t>(dims.front().second, 4);
    cpu::CpuSpmv eng(
        std::make_shared<const core::Bccoo>(core::Bccoo::build(A, fc)),
        threads);

    auto time_ms = [&](auto&& fn) {
      fn();  // warm up
      Stopwatch sw;
      for (long r = 0; r < reps; ++r) fn();
      return sw.elapsed_ms() / static_cast<double>(reps);
    };
    const double t_csr =
        time_ms([&] { cpu::spmv_csr_parallel(csr, x, y, threads); });
    const double t_bccoo = time_ms([&] { eng.spmv(x, y); });
    const double gf_csr =
        2.0 * static_cast<double>(A.nnz()) / (t_csr * 1e6);
    const double gf_bccoo =
        2.0 * static_cast<double>(A.nnz()) / (t_bccoo * 1e6);
    t.add_row({name, std::to_string(A.nnz()), TablePrinter::fmt(t_csr, 3),
               TablePrinter::fmt(t_bccoo, 3),
               TablePrinter::fmt(t_csr / t_bccoo, 2) + "x",
               TablePrinter::fmt(gf_csr, 2), TablePrinter::fmt(gf_bccoo, 2)});
  }
  t.print();
  return 0;
}
