// Reproduces Figure 13: yaSpMV vs CUSPARSE V5.0, CUSP, clSpMV best-single
// and clSpMV COCKTAIL on the GTX680 model.
#include "bench_figure_perf.hpp"

int main(int argc, char** argv) {
  return yaspmv::bench::run_figure_perf(argc, argv, yaspmv::sim::gtx680(),
                                        "Figure 13", 65, 70, 88, 150);
}
