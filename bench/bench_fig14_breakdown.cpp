// Reproduces Figure 14: performance contribution of each optimization on
// the GTX680 model.  Stages (cumulative):
//   1. "COO"        — COO format + tree-based segmented sum (two kernels)
//   2. "BCCOO"      — BCCOO/BCCOO+ format, still tree-based scan
//   3. "Efficient segmented sum/scan" — the paper's matrix-based kernel,
//                      but a second kernel for cross-workgroup sums
//   4. "Adjacent synchronization"     — single kernel, Grp_sum chain
//   5. "Fine-grain optimizations"     — short col indices + skip-scan check
// Shape target: monotone non-decreasing means, with the biggest jumps from
// stages 2 and 3.
#include "bench_common.hpp"

#include "yaspmv/core/kernels_tree.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto dev = bench::device_from_args(args);
  const auto cases = bench::load_cases(args);
  bench::print_banner(
      "Figure 14: performance contributions of the optimizations (" +
          dev.name + " model)",
      cases);

  TablePrinter t({"Name", "COO", "BCCOO", "Eff. segsum", "Adj. sync",
                  "Fine-grain"});
  std::vector<double> g1, g2, g3, g4, g5;
  for (const auto& c : cases) {
    const auto& A = c.matrix;
    const auto x = bench::random_x(A.cols);
    std::vector<real_t> y(static_cast<std::size_t>(A.rows));

    // Stage 1: COO + tree-based segmented sum.
    const auto coo = baseline::run_coo_tree(A, dev, x, y);
    const double s1 = perf::spmv_gflops(dev, coo.stats, A.nnz());

    // Tune once; later stages reuse the tuned format/exec.
    const auto tuned = tune::tune(A, dev).best;

    // Stage 2: BCCOO format + tree-based scan (thread_tile = 1) + carry
    // kernel.
    double s2 = 0;
    {
      auto m = std::make_shared<const core::Bccoo>(
          core::Bccoo::build(A, tuned.format));
      core::ExecConfig ec;
      ec.thread_tile = 1;
      ec.workgroup_size = 256;
      ec.short_col_index = false;
      const auto p = core::BccooPlan::build(*m, ec);
      std::vector<real_t> xp(
          static_cast<std::size_t>(m->block_cols) *
              static_cast<std::size_t>(m->cfg.block_w),
          0.0);
      std::copy(x.begin(), x.end(), xp.begin());
      std::vector<real_t> res(
          static_cast<std::size_t>(m->stacked_block_rows) *
              static_cast<std::size_t>(m->cfg.block_h),
          0.0);
      core::WgTails tails;
      auto st = core::run_spmv_bccoo_tree(p, dev, xp, res, &tails);
      st += core::run_carry_kernel(p, dev, tails, res);
      if (m->cfg.slices > 1) {
        std::vector<real_t> yy(static_cast<std::size_t>(A.rows));
        st += core::run_combine_kernel(*m, dev, ec, res, yy);
      }
      s2 = perf::spmv_gflops(dev, st, A.nnz());
    }

    auto run_with = [&](bool adjacent, bool fine_grain) {
      core::ExecConfig ec = tuned.exec;
      ec.adjacent_sync = adjacent;
      ec.skip_scan_opt = fine_grain;
      ec.short_col_index = fine_grain;
      if (!fine_grain) ec.compress_col_delta = false;
      core::SpmvEngine eng(A, tuned.format, ec, dev);
      const auto r = eng.run(x, y);
      return perf::spmv_gflops(dev, r.stats, A.nnz());
    };
    const double s3 = run_with(false, false);
    const double s4 = run_with(true, false);
    const double s5 = run_with(true, true);

    t.add_row({c.name, TablePrinter::fmt(s1, 1), TablePrinter::fmt(s2, 1),
               TablePrinter::fmt(s3, 1), TablePrinter::fmt(s4, 1),
               TablePrinter::fmt(s5, 1)});
    g1.push_back(s1);
    g2.push_back(s2);
    g3.push_back(s3);
    g4.push_back(s4);
    g5.push_back(s5);
  }
  t.print();

  auto hm = [](const std::vector<double>& v) {
    return perf::harmonic_mean(v.data(), v.size());
  };
  std::cout << "\nH-mean GFLOPS by stage: COO="
            << TablePrinter::fmt(hm(g1), 1)
            << "  +BCCOO=" << TablePrinter::fmt(hm(g2), 1)
            << "  +efficient segsum=" << TablePrinter::fmt(hm(g3), 1)
            << "  +adjacent sync=" << TablePrinter::fmt(hm(g4), 1)
            << "  +fine-grain=" << TablePrinter::fmt(hm(g5), 1) << "\n"
            << "(paper shape: each stage >= previous; largest gains from "
               "BCCOO format and the efficient segmented sum/scan)\n";
  return 0;
}
