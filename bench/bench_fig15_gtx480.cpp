// Reproduces Figure 15: the Figure 13 comparison on the GTX480 model.
#include "bench_figure_perf.hpp"

int main(int argc, char** argv) {
  return yaspmv::bench::run_figure_perf(argc, argv, yaspmv::sim::gtx480(),
                                        "Figure 15", 42, 40, 60, 74);
}
