// Shared driver for Figures 13 and 15: modeled GFLOPS of yaSpMV vs
// CUSPARSE / CUSP / clSpMV best-single / clSpMV COCKTAIL over the suite on
// one device, with the paper's harmonic-mean summary.
#pragma once

#include "bench_common.hpp"

namespace yaspmv::bench {

inline int run_figure_perf(int argc, char** argv, sim::DeviceSpec dev,
                           const std::string& figure,
                           double paper_vs_cusparse_pct,
                           double paper_vs_cocktail_pct,
                           double paper_vs_single_pct,
                           double paper_vs_cusp_pct) {
  const Args args(argc, argv);
  if (args.has("device")) dev = device_from_args(args);
  const auto cases = load_cases(args);
  print_banner(figure + ": SpMV throughput (modeled GFLOPS, " + dev.name +
                   " model)",
               cases);

  TablePrinter t({"Name", "CUSPARSE", "CUSP", "clSpMV single",
                  "clSpMV COCKTAIL", "yaSpMV", "best config"});
  std::vector<double> g_cusparse, g_cusp, g_single, g_cocktail, g_ya;
  std::size_t ya_wins = 0;
  std::vector<std::string> losses;
  for (const auto& c : cases) {
    const auto& A = c.matrix;
    const auto x = random_x(A.cols);
    std::vector<real_t> y(static_cast<std::size_t>(A.rows));

    const auto cusparse = baseline::run_cusparse(A, dev, x, y);
    const auto cusp = baseline::run_coo_tree(A, dev, x, y, 256, 1,
                                             /*tree_scan=*/false);
    const double cusp_g = perf::spmv_gflops(dev, cusp.stats, A.nnz());
    const auto single = baseline::best_single(A, dev, x, y);
    const auto cocktail = baseline::run_cocktail(A, dev, x, y);
    const auto ya = run_yaspmv(A, dev);

    t.add_row({c.name, TablePrinter::fmt(cusparse.gflops, 1),
               TablePrinter::fmt(cusp_g, 1),
               TablePrinter::fmt(single.gflops, 1),
               TablePrinter::fmt(cocktail.gflops, 1),
               TablePrinter::fmt(ya.gflops, 1),
               ya.tuned.best.format.to_string() + " " +
                   ya.tuned.best.exec.to_string()});
    g_cusparse.push_back(cusparse.gflops);
    g_cusp.push_back(cusp_g);
    g_single.push_back(single.gflops);
    g_cocktail.push_back(cocktail.gflops);
    g_ya.push_back(ya.gflops);
    const double best_other = std::max(
        {cusparse.gflops, cusp_g, single.gflops, cocktail.gflops});
    if (ya.gflops >= best_other) {
      ++ya_wins;
    } else {
      losses.push_back(c.name);
    }
  }
  t.print();

  auto hm = [](const std::vector<double>& v) {
    return perf::harmonic_mean(v.data(), v.size());
  };
  const double h_ya = hm(g_ya);
  std::cout << "\nH-mean GFLOPS: CUSPARSE=" << TablePrinter::fmt(hm(g_cusparse), 1)
            << " CUSP=" << TablePrinter::fmt(hm(g_cusp), 1)
            << " single=" << TablePrinter::fmt(hm(g_single), 1)
            << " COCKTAIL=" << TablePrinter::fmt(hm(g_cocktail), 1)
            << " yaSpMV=" << TablePrinter::fmt(h_ya, 1) << "\n";
  std::cout << "yaSpMV h-mean improvement: vs CUSPARSE "
            << TablePrinter::fmt((h_ya / hm(g_cusparse) - 1) * 100, 0)
            << "% (paper: " << paper_vs_cusparse_pct << "%), vs COCKTAIL "
            << TablePrinter::fmt((h_ya / hm(g_cocktail) - 1) * 100, 0)
            << "% (paper: " << paper_vs_cocktail_pct << "%), vs best single "
            << TablePrinter::fmt((h_ya / hm(g_single) - 1) * 100, 0)
            << "% (paper: " << paper_vs_single_pct << "%), vs CUSP "
            << TablePrinter::fmt((h_ya / hm(g_cusp) - 1) * 100, 0)
            << "% (paper: " << paper_vs_cusp_pct << "%)\n";
  std::cout << "yaSpMV fastest on " << ya_wins << "/" << g_ya.size()
            << " matrices";
  if (!losses.empty()) {
    std::cout << " (loses on:";
    for (const auto& l : losses) std::cout << ' ' << l;
    std::cout << ")";
  }
  std::cout << "\n(paper: wins all but Dense on GTX680 / all but "
               "Epidemiology on GTX480)\n";
  return 0;
}

}  // namespace yaspmv::bench
