// google-benchmark microbenchmarks of the host-side primitives: format
// construction, plan building, the simulated kernels and the scan
// substrate.  These measure *real CPU time* of this implementation (unlike
// the figure benches, which report modeled device time).
#include <benchmark/benchmark.h>

#include "yaspmv/baselines/baselines.hpp"
#include "yaspmv/baselines/coo_cusp.hpp"
#include "yaspmv/core/engine.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/scan/scan.hpp"
#include "yaspmv/util/rng.hpp"

namespace {

using namespace yaspmv;

const fmt::Coo& test_matrix() {
  static const fmt::Coo m = gen::fem_mesh(12000, 54, 3, 0.02, 0xBE);
  return m;
}

void BM_BccooBuild(benchmark::State& state) {
  const auto& A = test_matrix();
  core::FormatConfig fc;
  fc.block_w = static_cast<index_t>(state.range(0));
  fc.block_h = static_cast<index_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Bccoo::build(A, fc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(A.nnz()));
}
BENCHMARK(BM_BccooBuild)->Args({1, 1})->Args({2, 2})->Args({4, 4});

void BM_PlanBuild(benchmark::State& state) {
  const auto& A = test_matrix();
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  const auto m = core::Bccoo::build(A, fc);
  core::ExecConfig ec;
  ec.thread_tile = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BccooPlan::build(m, ec));
  }
}
BENCHMARK(BM_PlanBuild)->Arg(4)->Arg(16);

void BM_SimulatedSpmv(benchmark::State& state) {
  const auto& A = test_matrix();
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  core::ExecConfig ec;
  ec.strategy = state.range(0) == 1 ? core::Strategy::kIntermediateSums
                                    : core::Strategy::kResultCache;
  core::SpmvEngine eng(A, fc, ec, sim::gtx680());
  std::vector<real_t> x(static_cast<std::size_t>(A.cols), 1.0);
  std::vector<real_t> y(static_cast<std::size_t>(A.rows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(A.nnz()));
}
BENCHMARK(BM_SimulatedSpmv)->Arg(1)->Arg(2);

void BM_HostCsrSpmv(benchmark::State& state) {
  const auto csr = fmt::Csr::from_coo(test_matrix());
  std::vector<real_t> x(static_cast<std::size_t>(csr.cols), 1.0);
  std::vector<real_t> y(static_cast<std::size_t>(csr.rows));
  for (auto _ : state) {
    csr.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csr.nnz()));
}
BENCHMARK(BM_HostCsrSpmv);

void BM_HostBccooReferenceSpmv(benchmark::State& state) {
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  const auto m = core::Bccoo::build(test_matrix(), fc);
  std::vector<real_t> x(static_cast<std::size_t>(m.cols), 1.0);
  std::vector<real_t> y(static_cast<std::size_t>(m.rows));
  for (auto _ : state) {
    m.spmv_reference(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test_matrix().nnz()));
}
BENCHMARK(BM_HostBccooReferenceSpmv);

void BM_SegmentedScanSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SplitMix64 rng(1);
  std::vector<double> in(n), out(n);
  std::vector<std::uint8_t> heads(n);
  for (auto& v : in) v = rng.next_double(-1, 1);
  for (auto& h : heads) h = rng.next_double() < 0.1 ? 1 : 0;
  for (auto _ : state) {
    scan::segmented_inclusive_scan<double>(in, heads, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SegmentedScanSerial)->Arg(1 << 16)->Arg(1 << 20);

void BM_CooTreeBaseline(benchmark::State& state) {
  const auto& A = test_matrix();
  std::vector<real_t> x(static_cast<std::size_t>(A.cols), 1.0);
  std::vector<real_t> y(static_cast<std::size_t>(A.rows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::run_coo_tree(A, sim::gtx680(), x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(A.nnz()));
}
BENCHMARK(BM_CooTreeBaseline);

}  // namespace

BENCHMARK_MAIN();
