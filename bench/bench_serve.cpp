// Serving-daemon benchmark: end-to-end request latency and throughput of
// the Unix-socket SpMV server (serve::Server) under increasing client
// counts, plus the cold-vs-warm registration cost of the durable plan
// cache (paper §5 persists tuned plans precisely so a restart never pays
// the tuning sweep again).
//
// The server runs in-process on a private socket; every client is a real
// serve::Client speaking the framed protocol over its own connection, so
// the measured latency includes framing, checksumming, admission control
// and dispatch — everything but the network.  Per client count the JSON
// (default BENCH_serve.json, --json=<path>, --json=- disables the file)
// records p50/p99 request latency and aggregate requests/s; the
// registration section records the cold tuning time, the warm
// cache-restore time on a fresh server over the same cache directory, and
// the resulting speedup.  The binary re-validates its own JSON and fails
// the run if it does not parse — the bench_smoke_serve CI test asserts
// exactly that.
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include <unistd.h>

#include "yaspmv/serve/client.hpp"
#include "yaspmv/serve/server.hpp"
#include "yaspmv/util/json.hpp"

namespace {

using namespace yaspmv;

struct LoadPoint {
  int clients = 0;
  long requests = 0;  ///< total completed across all clients
  double seconds = 0;
  double rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  long admission_retries = 0;  ///< kOverloaded bounces absorbed by backoff
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// JSON guard: the report must stay parseable even if a rate degenerates.
double fin(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const double mult = args.get_double("scale", 1.0);
  const long per_client = args.get_int("requests", 40);
  const long max_clients = args.get_int("max-clients", 16);
  const std::string json_path = args.get("json", "BENCH_serve.json");

  const auto dim = [&](index_t d) {
    return std::max<index_t>(16, static_cast<index_t>(
                                     static_cast<double>(d) * std::sqrt(mult)));
  };
  const auto a = gen::fem_mesh(dim(96) * dim(96), 24, 3, 0.02, 0xbe6c);

  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() /
                        ("yaspmv-bench-serve-" + std::to_string(getpid()));
  fs::create_directories(root);

  serve::ServerOptions opt;
  opt.socket_path = (root / "serve.sock").string();
  opt.plan_cache_dir = (root / "plans").string();
  opt.journal_dir = (root / "journal").string();
  opt.queue_capacity = 256;
  opt.max_inflight = 64;
  opt.tune_on_register = true;

  std::cout << "=== Serving daemon: latency/throughput vs clients, "
               "cold vs warm plan cache (rows=" << a.rows
            << ", nnz=" << a.nnz() << ") ===\n\n";

  // --- Registration: cold (full tuning sweep) vs warm (durable cache). ---
  double cold_s = 0, warm_s = 0;
  bool warm_hit = false;
  std::uint64_t matrix_id = 0;
  {
    auto server = std::make_unique<serve::Server>(opt);
    server->start();
    serve::Client c(opt.socket_path);
    const auto cold = c.register_matrix(a);
    require(cold.status.status == serve::ServeStatus::kOk,
            "cold registration failed: " + cold.status.detail);
    cold_s = cold.register_seconds;
    matrix_id = cold.matrix_id;
    server->stop();
  }
  {
    // A fresh server over the same cache directory: the restart path.
    auto server = std::make_unique<serve::Server>(opt);
    server->start();
    serve::Client c(opt.socket_path);
    const auto warm = c.register_matrix(a);
    require(warm.status.status == serve::ServeStatus::kOk,
            "warm registration failed: " + warm.status.detail);
    warm_s = warm.register_seconds;
    warm_hit = warm.warm;
    server->stop();
  }
  const double reg_speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
  std::cout << "registration: cold " << TablePrinter::fmt(cold_s * 1e3, 2)
            << " ms, warm " << TablePrinter::fmt(warm_s * 1e3, 2)
            << " ms (cache " << (warm_hit ? "hit" : "MISS") << ", "
            << TablePrinter::fmt(reg_speedup, 1) << "x faster)\n\n";

  // --- Load: c concurrent clients, each issuing per_client requests. ---
  auto server = std::make_unique<serve::Server>(opt);
  server->start();
  {
    serve::Client c(opt.socket_path);
    const auto reg = c.register_matrix(a);
    require(reg.status.status == serve::ServeStatus::kOk,
            "registration failed: " + reg.status.detail);
    matrix_id = reg.matrix_id;
  }
  const auto x = bench::random_x(a.cols);

  std::vector<LoadPoint> points;
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    std::vector<std::vector<double>> lat(
        static_cast<std::size_t>(clients));
    std::atomic<long> retries{0};
    std::atomic<long> failed{0};
    std::vector<std::thread> pool;
    Stopwatch sw;
    for (int t = 0; t < clients; ++t) {
      pool.emplace_back([&, t] {
        serve::Client c(opt.socket_path);
        serve::RequestOptions ropt;
        ropt.retries = 100;
        ropt.backoff_ms = 1;
        auto& mine = lat[static_cast<std::size_t>(t)];
        mine.reserve(static_cast<std::size_t>(per_client));
        for (long i = 0; i < per_client; ++i) {
          Stopwatch req;
          const auto r = c.spmv(matrix_id, x, ropt);
          if (r.ok()) {
            mine.push_back(req.elapsed_seconds() * 1e3);
          } else {
            failed.fetch_add(1);
          }
          retries.fetch_add(r.admission_attempts - 1);
        }
      });
    }
    for (auto& th : pool) th.join();
    const double seconds = sw.elapsed_seconds();
    require(failed.load() == 0, "load phase saw failed requests");

    LoadPoint p;
    p.clients = clients;
    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    p.requests = static_cast<long>(all.size());
    p.seconds = seconds;
    p.rps = seconds > 0 ? static_cast<double>(p.requests) / seconds : 0.0;
    p.p50_ms = percentile(all, 0.50);
    p.p99_ms = percentile(all, 0.99);
    p.admission_retries = retries.load();
    points.push_back(p);
  }
  server->stop();
  server.reset();
  std::error_code ec;
  fs::remove_all(root, ec);

  TablePrinter t({"Clients", "Requests", "req/s", "p50 ms", "p99 ms",
                  "Retries"});
  for (const auto& p : points) {
    t.add_row({std::to_string(p.clients), std::to_string(p.requests),
               TablePrinter::fmt(p.rps, 0), TablePrinter::fmt(p.p50_ms, 3),
               TablePrinter::fmt(p.p99_ms, 3),
               std::to_string(p.admission_retries)});
  }
  t.print();

  json::Writer w;
  w.begin_object();
  w.key("bench").value("serve");
  w.key("rows").value(static_cast<long long>(a.rows));
  w.key("nnz").value(static_cast<unsigned long long>(a.nnz()));
  w.key("requests_per_client").value(static_cast<long long>(per_client));
  w.key("registration").begin_object();
  w.key("cold_seconds").value(fin(cold_s));
  w.key("warm_seconds").value(fin(warm_s));
  w.key("warm_hit").value(warm_hit);
  w.key("warm_speedup").value(fin(reg_speedup));
  w.end_object();
  w.key("load").begin_array();
  for (const auto& p : points) {
    w.begin_object();
    w.key("clients").value(static_cast<long long>(p.clients));
    w.key("requests").value(static_cast<long long>(p.requests));
    w.key("seconds").value(fin(p.seconds));
    w.key("requests_per_s").value(fin(p.rps));
    w.key("p50_ms").value(fin(p.p50_ms));
    w.key("p99_ms").value(fin(p.p99_ms));
    w.key("admission_retries")
        .value(static_cast<long long>(p.admission_retries));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string report = w.take();
  if (!json::valid(report)) {
    std::cerr << "bench_serve: generated JSON failed validation\n";
    return 1;
  }
  if (json_path != "-") {
    std::ofstream out(json_path);
    out << report << "\n";
    if (!out) {
      std::cerr << "bench_serve: cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
