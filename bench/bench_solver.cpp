// Iterative-solver wall-clock benchmark: the fused pooled solver loops
// (cpu/vecops.hpp + zero-copy CpuSpmv apply) against the preserved
// pre-fusion reference loops (solver::serial) driving an operator that
// reproduces the pre-change apply's data movement (padded x copy, full
// result clear, separate combine), on generated SPD systems.
// Both sides run with tolerance 0 up to a fixed iteration cap, and every
// rate is normalized by the run's *actual* iteration count (an early
// BiCGStab breakdown on an already-converged system must not skew the
// comparison), so the measured quantity is iterations/second of the same
// numerical algorithm.
//
// Per matrix and solver the JSON (default BENCH_solver.json, --json=<path>,
// --json=- disables the file) records iterations/s serial vs fused, the
// speedup, the time split between the SpMV applies and the vector ops of
// the fused run, and an effective-bandwidth figure from the per-iteration
// bytes the loop touches (format traffic + the vector sweeps).  The binary
// re-validates its own JSON and fails the run if it does not parse — the
// bench-smoke-solver CI test asserts exactly that.
#include "bench_common.hpp"

#include <cmath>
#include <fstream>

#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/solvers/solvers.hpp"
#include "yaspmv/util/json.hpp"

namespace {

using namespace yaspmv;

/// 5-point Poisson on an nx x ny grid: the canonical SPD solver workload
/// (the paper's intro names exactly this class of system).
fmt::Coo poisson2d(index_t nx, index_t ny) {
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const auto at = [&](index_t i, index_t j) { return i * ny + j; };
  for (index_t i = 0; i < nx; ++i) {
    for (index_t j = 0; j < ny; ++j) {
      const index_t r = at(i, j);
      ri.push_back(r), ci.push_back(r), v.push_back(4.0);
      if (i > 0) ri.push_back(r), ci.push_back(at(i - 1, j)), v.push_back(-1.0);
      if (i + 1 < nx)
        ri.push_back(r), ci.push_back(at(i + 1, j)), v.push_back(-1.0);
      if (j > 0) ri.push_back(r), ci.push_back(at(i, j - 1)), v.push_back(-1.0);
      if (j + 1 < ny)
        ri.push_back(r), ci.push_back(at(i, j + 1)), v.push_back(-1.0);
    }
  }
  return fmt::Coo::from_triplets(nx * ny, nx * ny, ri, ci, v);
}

using gen::make_spd;

/// CpuOperator wrapper that wall-clocks its applies, so a solve's time can
/// be split into SpMV vs vector ops.
class TimedOp {
 public:
  TimedOp(const fmt::Coo& a, unsigned threads) : op_(a, {}, threads) {}
  index_t rows() const { return op_.rows(); }
  index_t cols() const { return op_.cols(); }
  unsigned threads() const { return op_.threads(); }
  void apply(std::span<const real_t> x, std::span<real_t> y) {
    Stopwatch sw;
    op_.apply(x, y);
    spmv_seconds_ += sw.elapsed_seconds();
  }
  double take_spmv_seconds() {
    const double s = spmv_seconds_;
    spmv_seconds_ = 0.0;
    return s;
  }

 private:
  solver::CpuOperator op_;
  double spmv_seconds_ = 0.0;
};

/// The serial reference's operator: reproduces the pre-change apply's data
/// movement around the same kernel — the padded copy of x into scratch, the
/// unconditional full clear of the result buffer, and the separate combine
/// pass into y that CpuSpmv::spmv performed on every call before the
/// zero-copy apply — so the baseline measures the true pre-change
/// iteration cost.
class LegacyOp {
 public:
  LegacyOp(const fmt::Coo& a, unsigned threads)
      : op_(a, {}, threads),
        xp_(static_cast<std::size_t>(a.cols), 0.0),
        res_(static_cast<std::size_t>(a.rows), 0.0) {}
  index_t rows() const { return op_.rows(); }
  index_t cols() const { return op_.cols(); }
  unsigned threads() const { return op_.threads(); }
  void apply(std::span<const real_t> x, std::span<real_t> y) {
    std::copy(x.begin(), x.end(), xp_.begin());
    std::fill(res_.begin(), res_.end(), 0.0);
    op_.apply(xp_, res_);
    std::copy(res_.begin(), res_.end(), y.begin());
  }

 private:
  solver::CpuOperator op_;
  std::vector<real_t> xp_;
  std::vector<real_t> res_;
};

struct SolverRun {
  long iters_serial = 0;
  long iters_fused = 0;
  double seconds_serial = 0;
  double seconds_fused = 0;
  double spmv_seconds = 0;  ///< SpMV share of the fused run
  double gbps = 0;          ///< effective bandwidth of the fused run
  double sol_rel_diff = 0;  ///< fused vs serial solution agreement
  double ips_serial = 0;
  double ips_fused = 0;
  double speedup = 0;
};

double rel_diff(std::span<const real_t> a, std::span<const real_t> b) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num = std::max(num, std::abs(a[i] - b[i]));
    den = std::max(den, std::abs(b[i]));
  }
  return den > 0 ? num / den : num;
}

/// JSON guard: the report must stay parseable even if a rate degenerates.
double fin(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto threads = static_cast<unsigned>(
      args.get_int("threads", static_cast<long>(default_workers())));
  const long iters = args.get_int("iters", 200);
  const double mult = args.get_double("scale", 1.0);
  const std::string only = args.get("matrix", "");
  const std::string json_path = args.get("json", "BENCH_solver.json");

  // The generated SPD suite.  Both solvers run on every matrix (BiCGStab is
  // simply pessimal on SPD systems — the measurement is iterations/s of a
  // fixed algorithm, not convergence).
  const auto dim = [&](index_t d) {
    return std::max<index_t>(8, static_cast<index_t>(
                                    static_cast<double>(d) * std::sqrt(mult)));
  };
  std::vector<bench::MatrixCase> cases;
  cases.push_back({"Poisson2D-64", poisson2d(dim(64), dim(64))});
  cases.push_back({"Poisson2D-128", poisson2d(dim(128), dim(128))});
  cases.push_back(
      {"FEM-SPD",
       make_spd(gen::fem_mesh(dim(96) * dim(96), 24, 3, 0.02, 0xfe31))});
  cases.push_back(
      {"Scatter-SPD",
       make_spd(gen::random_scattered(dim(80) * dim(80), dim(80) * dim(80), 8,
                                      0x5ca7))});
  if (!only.empty()) {
    std::erase_if(cases,
                  [&](const bench::MatrixCase& c) { return c.name != only; });
    require(!cases.empty(), "no matrix selected (check --matrix spelling)");
  }

  std::cout << "=== Iterative solvers: fused pooled loops vs serial "
               "reference (wall clock, "
            << threads << " thread(s), " << iters << " iteration cap, simd="
            << cpu::simd::to_string(cpu::simd::active()) << ") ===\n\n";
  TablePrinter t({"Name", "n", "NNZ", "CG ser it/s", "CG fus it/s", "CG x",
                  "BiCG ser it/s", "BiCG fus it/s", "BiCG x"});

  json::Writer w;
  w.begin_object();
  w.key("bench").value("solver");
  w.key("threads").value(threads);
  w.key("iters").value(static_cast<long long>(iters));
  w.key("scale").value(mult);
  w.key("simd").value(cpu::simd::to_string(cpu::simd::active()));
  w.key("matrices").begin_array();

  // Tolerance 0: no run stops on convergence (an exact zero residual still
  // can), every measured iteration does identical work.
  solver::SolveOptions opt;
  opt.tolerance = 0.0;
  opt.max_iterations = iters;

  double log_speedup_cg = 0.0, log_speedup_bicg = 0.0;
  std::size_t n_cases = 0;

  for (const auto& [name, A] : cases) {
    const auto n = static_cast<std::size_t>(A.rows);
    TimedOp op(A, threads);
    LegacyOp legacy(A, threads);
    const auto b = bench::random_x(A.rows);
    std::vector<real_t> x_serial(n, 0.0), x_fused(n, 0.0);

    // Per-iteration vector-element traffic of the fused loops (doubles
    // read+written by the dot / fused-update / direction sweeps), used for
    // the effective-bandwidth figure: CG touches ~11n, BiCGStab ~19n.
    const auto fmt_built = core::Bccoo::build(A, {}, threads);
    const double spmv_bytes =
        static_cast<double>(fmt_built.traffic_bytes(core::ColStream::kAuto)) +
        16.0 * static_cast<double>(n);  // + x read + y write

    const auto run_solver = [&](auto&& serial_fn, auto&& fused_fn,
                                double spmvs_per_iter, double vec_elems) {
      SolverRun out;
      std::fill(x_serial.begin(), x_serial.end(), 0.0);
      std::fill(x_fused.begin(), x_fused.end(), 0.0);
      serial_fn();  // warm-up (pool, caches); result discarded
      std::fill(x_serial.begin(), x_serial.end(), 0.0);
      op.take_spmv_seconds();
      {
        Stopwatch sw;
        out.iters_serial = serial_fn().iterations;
        out.seconds_serial = sw.elapsed_seconds();
      }
      op.take_spmv_seconds();
      {
        Stopwatch sw;
        out.iters_fused = fused_fn().iterations;
        out.seconds_fused = sw.elapsed_seconds();
      }
      out.spmv_seconds = op.take_spmv_seconds();
      out.ips_serial =
          out.seconds_serial > 0
              ? static_cast<double>(out.iters_serial) / out.seconds_serial
              : 0.0;
      out.ips_fused =
          out.seconds_fused > 0
              ? static_cast<double>(out.iters_fused) / out.seconds_fused
              : 0.0;
      out.speedup = out.ips_serial > 0 ? out.ips_fused / out.ips_serial : 0.0;
      const double bytes_per_iter =
          spmvs_per_iter * spmv_bytes + vec_elems * 8.0;
      out.gbps = out.seconds_fused > 0
                     ? bytes_per_iter * static_cast<double>(out.iters_fused) /
                           out.seconds_fused / 1e9
                     : 0.0;
      out.sol_rel_diff = fin(rel_diff(x_fused, x_serial));
      return out;
    };

    const SolverRun cg_run = run_solver(
        [&] { return solver::serial::cg(legacy, b, x_serial, opt); },
        [&] { return solver::cg(op, b, x_fused, opt); }, 1.0,
        11.0 * static_cast<double>(n));
    const SolverRun bicg_run = run_solver(
        [&] { return solver::serial::bicgstab(legacy, b, x_serial, opt); },
        [&] { return solver::bicgstab(op, b, x_fused, opt); }, 2.0,
        19.0 * static_cast<double>(n));

    log_speedup_cg += std::log(std::max(cg_run.speedup, 1e-12));
    log_speedup_bicg += std::log(std::max(bicg_run.speedup, 1e-12));
    n_cases++;

    t.add_row({name, std::to_string(A.rows), std::to_string(A.nnz()),
               TablePrinter::fmt(cg_run.ips_serial, 0),
               TablePrinter::fmt(cg_run.ips_fused, 0),
               TablePrinter::fmt(cg_run.speedup, 2),
               TablePrinter::fmt(bicg_run.ips_serial, 0),
               TablePrinter::fmt(bicg_run.ips_fused, 0),
               TablePrinter::fmt(bicg_run.speedup, 2)});

    const auto solver_obj = [&](const char* key, const SolverRun& r) {
      w.key(key).begin_object();
      w.key("iters_serial").value(static_cast<long long>(r.iters_serial));
      w.key("iters_fused").value(static_cast<long long>(r.iters_fused));
      w.key("seconds_serial").value(fin(r.seconds_serial));
      w.key("seconds_fused").value(fin(r.seconds_fused));
      w.key("iters_per_s_serial").value(fin(r.ips_serial));
      w.key("iters_per_s_fused").value(fin(r.ips_fused));
      w.key("speedup").value(fin(r.speedup));
      w.key("spmv_seconds").value(fin(r.spmv_seconds));
      w.key("vec_seconds")
          .value(fin(std::max(0.0, r.seconds_fused - r.spmv_seconds)));
      w.key("gbps").value(fin(r.gbps));
      w.key("solution_rel_diff").value(r.sol_rel_diff);
      w.end_object();
    };
    w.begin_object();
    w.key("name").value(name);
    w.key("rows").value(static_cast<long long>(A.rows));
    w.key("nnz").value(static_cast<unsigned long long>(A.nnz()));
    w.key("solvers").begin_object();
    solver_obj("cg", cg_run);
    solver_obj("bicgstab", bicg_run);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  const double geo_cg =
      n_cases > 0 ? std::exp(log_speedup_cg / static_cast<double>(n_cases))
                  : 0.0;
  const double geo_bicg =
      n_cases > 0 ? std::exp(log_speedup_bicg / static_cast<double>(n_cases))
                  : 0.0;
  w.key("geomean_cg_speedup").value(fin(geo_cg));
  w.key("geomean_bicgstab_speedup").value(fin(geo_bicg));
  w.end_object();

  t.print();
  std::cout << "\n(tolerance-0 runs capped at " << iters
            << " iterations; 'x' = fused/serial iterations-per-second "
               "ratio)\n"
            << "geomean speedup: CG " << TablePrinter::fmt(geo_cg, 2)
            << "x, BiCGStab " << TablePrinter::fmt(geo_bicg, 2) << "x\n";

  const std::string report = w.take();
  if (!json::valid(report)) {
    std::cerr << "bench_solver: generated JSON failed validation\n";
    return 1;
  }
  if (json_path != "-") {
    std::ofstream out(json_path);
    out << report << "\n";
    if (!out) {
      std::cerr << "bench_solver: cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
