// Reproduces Table 2: the evaluation suite and its statistics.  Prints both
// the paper's full-size numbers and the statistics of the generated
// (scaled) instances used by the rest of the harness.
#include "bench_common.hpp"

#include "yaspmv/formats/csr.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto cases = bench::load_cases(args);
  bench::print_banner("Table 2: sparse matrix suite", cases);

  TablePrinter t({"Name", "Paper size", "Paper NNZ", "Paper NNZ/row",
                  "Gen size", "Gen NNZ", "Gen NNZ/row"});
  for (const auto& c : cases) {
    const auto* e = [&]() -> const gen::SuiteEntry* {
      for (const auto& s : gen::suite()) {
        if (s.name == c.name) return &s;
      }
      return nullptr;
    }();
    const double npr =
        c.matrix.rows
            ? static_cast<double>(c.matrix.nnz()) /
                  static_cast<double>(c.matrix.rows)
            : 0.0;
    t.add_row({c.name,
               e ? std::to_string(e->full_rows) + "x" +
                       std::to_string(e->full_cols)
                 : "-",
               e ? std::to_string(e->full_nnz) : "-",
               e ? TablePrinter::fmt(e->full_nnz_per_row, 0) : "-",
               std::to_string(c.matrix.rows) + "x" +
                   std::to_string(c.matrix.cols),
               std::to_string(c.matrix.nnz()), TablePrinter::fmt(npr, 1)});
  }
  t.print();
  return 0;
}
