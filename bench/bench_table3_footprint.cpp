// Reproduces Table 3: memory footprint (MB) of COO, ELL, the clSpMV best
// single format, the COCKTAIL format, and BCCOO per matrix, plus the
// averages.  Shape targets (paper, full size): BCCOO smallest on almost all
// matrices; averages ordered COO > BCCOO-less-singles > COCKTAIL > BCCOO
// (122 / 106 / 93 / 73 MB at paper scale).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto dev = bench::device_from_args(args);
  const auto cases = bench::load_cases(args);
  bench::print_banner("Table 3: memory footprint (MB) per format", cases);

  TablePrinter t({"Name", "COO", "ELL", "Cocktail Single", "COCKTAIL",
                  "BCCOO"});
  double sum_coo = 0, sum_single = 0, sum_cocktail = 0, sum_bccoo = 0;
  std::size_t n = 0, bccoo_wins = 0;
  for (const auto& c : cases) {
    const auto& A = c.matrix;
    const auto x = bench::random_x(A.cols);
    std::vector<real_t> y(static_cast<std::size_t>(A.rows));

    const std::size_t coo_fp = A.footprint_bytes();
    const std::size_t ell_fp = baseline::ell_footprint_analytic(A);
    const auto single = baseline::best_single(A, dev, x, y);
    const auto cocktail = baseline::run_cocktail(A, dev, x, y);
    const auto ya = bench::run_yaspmv(A, dev);

    t.add_row({c.name, bench::mb(coo_fp), bench::mb(ell_fp),
               bench::mb(single.footprint), bench::mb(cocktail.footprint),
               bench::mb(ya.footprint)});
    sum_coo += static_cast<double>(coo_fp);
    sum_single += static_cast<double>(single.footprint);
    sum_cocktail += static_cast<double>(cocktail.footprint);
    sum_bccoo += static_cast<double>(ya.footprint);
    ++n;
    if (ya.footprint <= single.footprint &&
        ya.footprint <= cocktail.footprint) {
      ++bccoo_wins;
    }
  }
  const auto dn = static_cast<double>(n);
  t.add_row({"Average", bench::mb(static_cast<std::size_t>(sum_coo / dn)),
             "N/A", bench::mb(static_cast<std::size_t>(sum_single / dn)),
             bench::mb(static_cast<std::size_t>(sum_cocktail / dn)),
             bench::mb(static_cast<std::size_t>(sum_bccoo / dn))});
  t.print();

  std::cout << "\nBCCOO storage reduction vs COO: "
            << TablePrinter::fmt((1.0 - sum_bccoo / sum_coo) * 100, 1)
            << "% (paper: 40%)\n"
            << "BCCOO storage reduction vs best single: "
            << TablePrinter::fmt((1.0 - sum_bccoo / sum_single) * 100, 1)
            << "% (paper: 31%)\n"
            << "BCCOO storage reduction vs COCKTAIL: "
            << TablePrinter::fmt((1.0 - sum_bccoo / sum_cocktail) * 100, 1)
            << "% (paper: 21%)\n"
            << "BCCOO smallest on " << bccoo_wins << "/" << n
            << " matrices\n";
  return 0;
}
