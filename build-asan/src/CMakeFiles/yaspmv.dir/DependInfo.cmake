
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yaspmv/baselines/cocktail.cpp" "src/CMakeFiles/yaspmv.dir/yaspmv/baselines/cocktail.cpp.o" "gcc" "src/CMakeFiles/yaspmv.dir/yaspmv/baselines/cocktail.cpp.o.d"
  "/root/repo/src/yaspmv/codegen/opencl.cpp" "src/CMakeFiles/yaspmv.dir/yaspmv/codegen/opencl.cpp.o" "gcc" "src/CMakeFiles/yaspmv.dir/yaspmv/codegen/opencl.cpp.o.d"
  "/root/repo/src/yaspmv/gen/suite.cpp" "src/CMakeFiles/yaspmv.dir/yaspmv/gen/suite.cpp.o" "gcc" "src/CMakeFiles/yaspmv.dir/yaspmv/gen/suite.cpp.o.d"
  "/root/repo/src/yaspmv/io/binary.cpp" "src/CMakeFiles/yaspmv.dir/yaspmv/io/binary.cpp.o" "gcc" "src/CMakeFiles/yaspmv.dir/yaspmv/io/binary.cpp.o.d"
  "/root/repo/src/yaspmv/io/matrix_market.cpp" "src/CMakeFiles/yaspmv.dir/yaspmv/io/matrix_market.cpp.o" "gcc" "src/CMakeFiles/yaspmv.dir/yaspmv/io/matrix_market.cpp.o.d"
  "/root/repo/src/yaspmv/perf/model.cpp" "src/CMakeFiles/yaspmv.dir/yaspmv/perf/model.cpp.o" "gcc" "src/CMakeFiles/yaspmv.dir/yaspmv/perf/model.cpp.o.d"
  "/root/repo/src/yaspmv/tune/tuner.cpp" "src/CMakeFiles/yaspmv.dir/yaspmv/tune/tuner.cpp.o" "gcc" "src/CMakeFiles/yaspmv.dir/yaspmv/tune/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
