file(REMOVE_RECURSE
  "CMakeFiles/yaspmv.dir/yaspmv/baselines/cocktail.cpp.o"
  "CMakeFiles/yaspmv.dir/yaspmv/baselines/cocktail.cpp.o.d"
  "CMakeFiles/yaspmv.dir/yaspmv/codegen/opencl.cpp.o"
  "CMakeFiles/yaspmv.dir/yaspmv/codegen/opencl.cpp.o.d"
  "CMakeFiles/yaspmv.dir/yaspmv/gen/suite.cpp.o"
  "CMakeFiles/yaspmv.dir/yaspmv/gen/suite.cpp.o.d"
  "CMakeFiles/yaspmv.dir/yaspmv/io/binary.cpp.o"
  "CMakeFiles/yaspmv.dir/yaspmv/io/binary.cpp.o.d"
  "CMakeFiles/yaspmv.dir/yaspmv/io/matrix_market.cpp.o"
  "CMakeFiles/yaspmv.dir/yaspmv/io/matrix_market.cpp.o.d"
  "CMakeFiles/yaspmv.dir/yaspmv/perf/model.cpp.o"
  "CMakeFiles/yaspmv.dir/yaspmv/perf/model.cpp.o.d"
  "CMakeFiles/yaspmv.dir/yaspmv/tune/tuner.cpp.o"
  "CMakeFiles/yaspmv.dir/yaspmv/tune/tuner.cpp.o.d"
  "libyaspmv.a"
  "libyaspmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yaspmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
