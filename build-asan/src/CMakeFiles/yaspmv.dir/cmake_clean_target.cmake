file(REMOVE_RECURSE
  "libyaspmv.a"
)
