# Empty compiler generated dependencies file for yaspmv.
# This may be replaced when dependencies are built.
