file(REMOVE_RECURSE
  "CMakeFiles/bccoo_test.dir/bccoo_test.cpp.o"
  "CMakeFiles/bccoo_test.dir/bccoo_test.cpp.o.d"
  "bccoo_test"
  "bccoo_test.pdb"
  "bccoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bccoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
