# Empty compiler generated dependencies file for bccoo_test.
# This may be replaced when dependencies are built.
