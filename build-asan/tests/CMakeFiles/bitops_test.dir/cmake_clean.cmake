file(REMOVE_RECURSE
  "CMakeFiles/bitops_test.dir/bitops_test.cpp.o"
  "CMakeFiles/bitops_test.dir/bitops_test.cpp.o.d"
  "bitops_test"
  "bitops_test.pdb"
  "bitops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
