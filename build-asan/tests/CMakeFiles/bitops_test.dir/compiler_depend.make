# Empty compiler generated dependencies file for bitops_test.
# This may be replaced when dependencies are built.
