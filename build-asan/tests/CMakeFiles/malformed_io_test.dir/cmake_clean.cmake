file(REMOVE_RECURSE
  "CMakeFiles/malformed_io_test.dir/malformed_io_test.cpp.o"
  "CMakeFiles/malformed_io_test.dir/malformed_io_test.cpp.o.d"
  "malformed_io_test"
  "malformed_io_test.pdb"
  "malformed_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malformed_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
