# Empty dependencies file for malformed_io_test.
# This may be replaced when dependencies are built.
