# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/bitops_test[1]_include.cmake")
include("/root/repo/build-asan/tests/scan_test[1]_include.cmake")
include("/root/repo/build-asan/tests/formats_test[1]_include.cmake")
include("/root/repo/build-asan/tests/bccoo_test[1]_include.cmake")
include("/root/repo/build-asan/tests/plan_test[1]_include.cmake")
include("/root/repo/build-asan/tests/engine_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-asan/tests/gen_test[1]_include.cmake")
include("/root/repo/build-asan/tests/io_test[1]_include.cmake")
include("/root/repo/build-asan/tests/tuner_test[1]_include.cmake")
include("/root/repo/build-asan/tests/perf_test[1]_include.cmake")
include("/root/repo/build-asan/tests/property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/cpu_test[1]_include.cmake")
include("/root/repo/build-asan/tests/solvers_test[1]_include.cmake")
include("/root/repo/build-asan/tests/binary_io_test[1]_include.cmake")
include("/root/repo/build-asan/tests/stats_test[1]_include.cmake")
include("/root/repo/build-asan/tests/codegen_test[1]_include.cmake")
include("/root/repo/build-asan/tests/semiring_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build-asan/tests/util_test[1]_include.cmake")
include("/root/repo/build-asan/tests/chaos_test[1]_include.cmake")
include("/root/repo/build-asan/tests/malformed_io_test[1]_include.cmake")
