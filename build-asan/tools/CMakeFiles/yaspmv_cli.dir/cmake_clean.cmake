file(REMOVE_RECURSE
  "CMakeFiles/yaspmv_cli.dir/yaspmv_cli.cpp.o"
  "CMakeFiles/yaspmv_cli.dir/yaspmv_cli.cpp.o.d"
  "yaspmv_cli"
  "yaspmv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yaspmv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
