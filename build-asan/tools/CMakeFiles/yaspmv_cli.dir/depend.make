# Empty dependencies file for yaspmv_cli.
# This may be replaced when dependencies are built.
