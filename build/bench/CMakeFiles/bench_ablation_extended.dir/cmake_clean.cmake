file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extended.dir/bench_ablation_extended.cpp.o"
  "CMakeFiles/bench_ablation_extended.dir/bench_ablation_extended.cpp.o.d"
  "bench_ablation_extended"
  "bench_ablation_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
