# Empty compiler generated dependencies file for bench_ablation_extended.
# This may be replaced when dependencies are built.
