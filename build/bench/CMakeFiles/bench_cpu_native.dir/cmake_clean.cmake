file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_native.dir/bench_cpu_native.cpp.o"
  "CMakeFiles/bench_cpu_native.dir/bench_cpu_native.cpp.o.d"
  "bench_cpu_native"
  "bench_cpu_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
