# Empty compiler generated dependencies file for bench_cpu_native.
# This may be replaced when dependencies are built.
