file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_gtx680.dir/bench_fig13_gtx680.cpp.o"
  "CMakeFiles/bench_fig13_gtx680.dir/bench_fig13_gtx680.cpp.o.d"
  "bench_fig13_gtx680"
  "bench_fig13_gtx680.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_gtx680.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
