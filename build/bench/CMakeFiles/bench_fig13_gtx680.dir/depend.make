# Empty dependencies file for bench_fig13_gtx680.
# This may be replaced when dependencies are built.
