file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_gtx480.dir/bench_fig15_gtx480.cpp.o"
  "CMakeFiles/bench_fig15_gtx480.dir/bench_fig15_gtx480.cpp.o.d"
  "bench_fig15_gtx480"
  "bench_fig15_gtx480.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_gtx480.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
