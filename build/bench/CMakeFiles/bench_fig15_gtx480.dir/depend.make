# Empty dependencies file for bench_fig15_gtx480.
# This may be replaced when dependencies are built.
