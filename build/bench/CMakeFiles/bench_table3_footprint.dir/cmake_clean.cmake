file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_footprint.dir/bench_table3_footprint.cpp.o"
  "CMakeFiles/bench_table3_footprint.dir/bench_table3_footprint.cpp.o.d"
  "bench_table3_footprint"
  "bench_table3_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
