# Empty dependencies file for bench_table3_footprint.
# This may be replaced when dependencies are built.
