# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bitops_test[1]_include.cmake")
include("/root/repo/build/tests/scan_test[1]_include.cmake")
include("/root/repo/build/tests/formats_test[1]_include.cmake")
include("/root/repo/build/tests/bccoo_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/solvers_test[1]_include.cmake")
include("/root/repo/build/tests/binary_io_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/semiring_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/malformed_io_test[1]_include.cmake")
