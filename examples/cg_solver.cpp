// Conjugate-gradient solver on a 2D Poisson problem, with the SpMV step
// running through the auto-tuned yaSpMV pipeline — the iterative-solver
// use case that motivates SpMV optimization in the paper's introduction.
//
//   ./cg_solver [--n=128] [--tol=1e-8] [--max-iters=2000]
//               [--device=gtx680|gtx480]
#include <cmath>
#include <iostream>

#include "yaspmv/core/engine.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/perf/model.hpp"
#include "yaspmv/tune/tuner.hpp"
#include "yaspmv/util/args.hpp"
#include "yaspmv/util/stopwatch.hpp"

namespace {

using namespace yaspmv;

/// 5-point Laplacian on an n x n grid (SPD).
fmt::Coo laplacian2d(index_t n) {
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  auto at = [n](index_t x, index_t y) { return y * n + x; };
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < n; ++x) {
      const index_t r = at(x, y);
      auto push = [&](index_t c, real_t val) {
        ri.push_back(r);
        ci.push_back(c);
        v.push_back(val);
      };
      push(r, 4.0);
      if (x > 0) push(at(x - 1, y), -1.0);
      if (x + 1 < n) push(at(x + 1, y), -1.0);
      if (y > 0) push(at(x, y - 1), -1.0);
      if (y + 1 < n) push(at(x, y + 1), -1.0);
    }
  }
  return fmt::Coo::from_triplets(n * n, n * n, std::move(ri), std::move(ci),
                                 std::move(v));
}

double dot(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto grid = static_cast<index_t>(args.get_int("n", 128));
  const double tol = args.get_double("tol", 1e-8);
  const long max_iters = args.get_int("max-iters", 2000);
  const auto dev =
      args.get("device", "gtx680") == "gtx480" ? sim::gtx480() : sim::gtx680();

  const auto A = laplacian2d(grid);
  const auto N = static_cast<std::size_t>(A.rows);
  std::cout << "CG on 2D Poisson: " << grid << "x" << grid << " grid, "
            << A.nnz() << " non-zeros\n";

  Stopwatch tune_sw;
  const auto tuned = tune::tune(A, dev);
  std::cout << "tuned " << tuned.best.format.to_string() << " | "
            << tuned.best.exec.to_string() << " in "
            << tune_sw.elapsed_seconds() << " s\n";
  core::SpmvEngine eng(A, tuned.best.format, tuned.best.exec, dev);

  // Solve A u = b with b = A * ones (so the exact solution is ones).
  std::vector<real_t> ones(N, 1.0), b(N);
  fmt::Csr::from_coo(A).spmv(ones, b);

  std::vector<real_t> u(N, 0.0), r(b), p(b), Ap(N);
  double rr = dot(r, r);
  const double rr0 = rr;
  long iters = 0;
  sim::KernelStats total_stats;
  while (iters < max_iters && rr > tol * tol * rr0) {
    total_stats += eng.run(p, Ap).stats;  // the SpMV under test
    const double alpha = rr / dot(p, Ap);
    for (std::size_t i = 0; i < N; ++i) {
      u[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < N; ++i) p[i] = r[i] + beta * p[i];
    ++iters;
    if (iters % 100 == 0) {
      std::cout << "  iter " << iters << "  residual "
                << std::sqrt(rr / rr0) << "\n";
    }
  }

  double max_err = 0;
  for (std::size_t i = 0; i < N; ++i) {
    max_err = std::max(max_err, std::abs(u[i] - 1.0));
  }
  std::cout << "converged in " << iters << " iterations, relative residual "
            << std::sqrt(rr / rr0) << ", max |u - 1| = " << max_err << "\n"
            << "modeled SpMV throughput across the solve: "
            << perf::spmv_gflops(dev, total_stats,
                                 A.nnz() * static_cast<std::size_t>(iters))
            << " GFLOPS on " << dev.name << "\n";
  return (iters < max_iters && max_err < 1e-4) ? 0 : 1;
}
