// Format explorer: inspect any matrix (a Table 2 suite entry or a Matrix
// Market file) — structure statistics, the footprint of every format in the
// library, the clSpMV/CUSPARSE proxy choices, and the auto-tuned yaSpMV
// configuration for both device models.
//
//   ./format_explorer --matrix=Protein
//   ./format_explorer --mtx=/path/to/matrix.mtx [--scale=0.5]
#include <iostream>

#include "yaspmv/baselines/clspmv.hpp"
#include "yaspmv/core/engine.hpp"
#include "yaspmv/formats/blocked.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/formats/dia.hpp"
#include "yaspmv/formats/ell.hpp"
#include "yaspmv/formats/hyb.hpp"
#include "yaspmv/formats/sell.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/io/matrix_market.hpp"
#include "yaspmv/tune/tuner.hpp"
#include "yaspmv/util/args.hpp"
#include "yaspmv/util/rng.hpp"
#include "yaspmv/util/table.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);

  fmt::Coo A;
  std::string name;
  if (args.has("mtx")) {
    name = args.get("mtx");
    A = io::read_matrix_market_file(name);
  } else {
    name = args.get("matrix", "Protein");
    const auto& e = gen::suite_entry(name);
    A = e.make(e.bench_scale * args.get_double("scale", 0.5));
  }
  const auto csr = fmt::Csr::from_coo(A);

  std::cout << "=== " << name << " ===\n"
            << A.rows << " x " << A.cols << ", " << A.nnz() << " non-zeros, "
            << (A.rows ? static_cast<double>(A.nnz()) /
                             static_cast<double>(A.rows)
                       : 0)
            << " nnz/row (max row " << csr.max_row_len() << ")\n"
            << "occupied diagonals: " << fmt::Dia::count_diagonals(csr)
            << ", ELL padding ratio: " << fmt::Ell::padding_ratio(csr) << "\n";

  std::cout << "\nBlock fill ratios (stored values / non-zeros):\n";
  {
    TablePrinter t({"block", "fill", "blocks"});
    for (index_t bw : {1, 2, 4}) {
      for (index_t bh : {1, 2, 3, 4}) {
        t.add_row({std::to_string(bw) + "x" + std::to_string(bh),
                   TablePrinter::fmt(
                       fmt::BlockDecomposition::fill_ratio(A, bw, bh), 3),
                   std::to_string(
                       fmt::BlockDecomposition::count_blocks(A, bw, bh))});
      }
    }
    t.print();
  }

  std::cout << "\nFormat footprints:\n";
  {
    TablePrinter t({"format", "bytes", "vs COO"});
    const double coo_fp = static_cast<double>(A.footprint_bytes());
    auto row = [&](const std::string& n2, std::size_t fp) {
      t.add_row({n2, std::to_string(fp),
                 TablePrinter::fmt(static_cast<double>(fp) / coo_fp, 2) +
                     "x"});
    };
    row("COO", A.footprint_bytes());
    row("CSR", csr.footprint_bytes());
    const auto ell_fp = baseline::ell_footprint_analytic(A);
    if (ell_fp != std::numeric_limits<std::size_t>::max()) {
      row("ELL", ell_fp);
    } else {
      t.add_row({"ELL", "N/A", "-"});
    }
    row("SELL(32)", fmt::SEll::from_csr(csr, 32).footprint_bytes());
    row("HYB", fmt::Hyb::from_csr(csr).footprint_bytes());
    if (fmt::Dia::count_diagonals(csr) <= 512) {
      row("DIA", fmt::Dia::from_csr(csr).footprint_bytes());
    }
    for (auto [bw, bh] : {std::pair<index_t, index_t>{2, 2}, {4, 4}}) {
      if (fmt::BlockDecomposition::fill_ratio(A, bw, bh) < 2.0) {
        row("BCSR(" + std::to_string(bw) + "x" + std::to_string(bh) + ")",
            fmt::Bcsr::from_coo(A, bw, bh).footprint_bytes());
      }
    }
    for (index_t slices : {1, 4}) {
      core::FormatConfig fc;
      fc.slices = slices;
      const auto m = core::Bccoo::build(A, fc);
      row(slices == 1 ? "BCCOO(1x1)" : "BCCOO+(1x1, 4 slices)",
          m.footprint_bytes(m.block_cols <= 65535));
    }
    t.print();
  }

  for (const auto& dev : {sim::gtx680(), sim::gtx480()}) {
    const auto r = tune::tune(A, dev);
    std::cout << "\nAuto-tuned for " << dev.name << " ("
              << TablePrinter::fmt(r.tuning_seconds, 2) << " s, "
              << r.evaluated << " configs, " << r.skipped << " skipped):\n"
              << "  " << r.best.format.to_string() << " | "
              << r.best.exec.to_string() << "\n"
              << "  modeled " << TablePrinter::fmt(r.best.gflops, 1)
              << " GFLOPS, footprint " << r.best.footprint << " bytes\n";
    std::cout << "  runners-up:\n";
    for (std::size_t i = 1; i < std::min<std::size_t>(r.top.size(), 4); ++i) {
      std::cout << "    " << TablePrinter::fmt(r.top[i].gflops, 1) << "  "
                << r.top[i].format.to_string() << " | "
                << r.top[i].exec.to_string() << "\n";
    }
  }
  return 0;
}
