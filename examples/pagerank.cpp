// PageRank on a synthetic power-law web graph (Webbase/eu-2005 territory),
// with the rank propagation step y = M^T * r running through yaSpMV.
// Power-law matrices are exactly where row-based GPU kernels collapse and
// the paper's load-balanced segmented-sum approach shines.
//
//   ./pagerank [--nodes=50000] [--damping=0.85] [--iters=50]
//              [--device=gtx680|gtx480]
#include <algorithm>
#include <iostream>

#include "yaspmv/core/engine.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/perf/model.hpp"
#include "yaspmv/tune/tuner.hpp"
#include "yaspmv/util/args.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto nodes = static_cast<index_t>(args.get_int("nodes", 50000));
  const double damping = args.get_double("damping", 0.85);
  const long iters = args.get_int("iters", 50);
  const auto dev =
      args.get("device", "gtx680") == "gtx480" ? sim::gtx480() : sim::gtx680();

  // Adjacency of a power-law graph; transpose-and-normalize it into the
  // column-stochastic propagation matrix M (edge u->v contributes
  // M[v][u] = 1/outdeg(u)).
  const auto adj = gen::powerlaw(nodes, nodes, 6.0, 2.15, 0.3, 0x9A6E);
  std::vector<index_t> outdeg(static_cast<std::size_t>(nodes), 0);
  for (std::size_t i = 0; i < adj.nnz(); ++i) {
    outdeg[static_cast<std::size_t>(adj.row_idx[i])]++;
  }
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  ri.reserve(adj.nnz());
  ci.reserve(adj.nnz());
  v.reserve(adj.nnz());
  for (std::size_t i = 0; i < adj.nnz(); ++i) {
    ri.push_back(adj.col_idx[i]);  // transpose
    ci.push_back(adj.row_idx[i]);
    v.push_back(1.0 /
                static_cast<double>(
                    outdeg[static_cast<std::size_t>(adj.row_idx[i])]));
  }
  const auto M = fmt::Coo::from_triplets(nodes, nodes, std::move(ri),
                                         std::move(ci), std::move(v));
  std::cout << "PageRank: " << nodes << " nodes, " << M.nnz() << " edges\n";

  const auto tuned = tune::tune(M, dev);
  std::cout << "tuned " << tuned.best.format.to_string() << " | "
            << tuned.best.exec.to_string() << "\n";
  core::SpmvEngine eng(M, tuned.best.format, tuned.best.exec, dev);

  const auto N = static_cast<std::size_t>(nodes);
  std::vector<real_t> rank(N, 1.0 / static_cast<double>(nodes)), next(N);
  sim::KernelStats total;
  double delta = 0;
  for (long it = 0; it < iters; ++it) {
    total += eng.run(rank, next).stats;
    // Dangling mass + teleport.
    double dangling = 0;
    for (std::size_t i = 0; i < N; ++i) {
      if (outdeg[i] == 0) dangling += rank[i];
    }
    const double base = (1.0 - damping + damping * dangling) /
                        static_cast<double>(nodes);
    delta = 0;
    for (std::size_t i = 0; i < N; ++i) {
      const double nv = base + damping * next[i];
      delta += std::abs(nv - rank[i]);
      rank[i] = nv;
    }
    if (it % 10 == 9) {
      std::cout << "  iter " << (it + 1) << "  L1 delta " << delta << "\n";
    }
  }

  // Sanity: ranks are a probability distribution.
  double sum = 0;
  for (double rv : rank) sum += rv;
  std::vector<std::size_t> order(N);
  for (std::size_t i = 0; i < N; ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return rank[a] > rank[b];
                    });
  std::cout << "rank mass: " << sum << " (expect ~1)\nTop 5 nodes:";
  for (int i = 0; i < 5; ++i) {
    std::cout << "  #" << order[static_cast<std::size_t>(i)] << "="
              << rank[order[static_cast<std::size_t>(i)]];
  }
  std::cout << "\nmodeled SpMV throughput: "
            << perf::spmv_gflops(dev, total,
                                 M.nnz() * static_cast<std::size_t>(iters))
            << " GFLOPS on " << dev.name << "\n";
  return std::abs(sum - 1.0) < 1e-6 ? 0 : 1;
}
