// Quickstart: build a sparse matrix, auto-tune the BCCOO format for a
// device, and run y = A*x through the yaSpMV pipeline.
//
//   ./quickstart [--device=gtx680|gtx480]
#include <iostream>

#include "yaspmv/core/engine.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/perf/model.hpp"
#include "yaspmv/tune/tuner.hpp"
#include "yaspmv/util/args.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto dev =
      args.get("device", "gtx680") == "gtx480" ? sim::gtx480() : sim::gtx680();

  // 1. Assemble a matrix in COO (triplets in any order; duplicates summed).
  //    Here: a 1D Poisson operator [-1, 2, -1] on 10k unknowns.
  const index_t n = 10000;
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) {
      ri.push_back(i);
      ci.push_back(i - 1);
      v.push_back(-1.0);
    }
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(2.0);
    if (i + 1 < n) {
      ri.push_back(i);
      ci.push_back(i + 1);
      v.push_back(-1.0);
    }
  }
  const auto A = fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                         std::move(v));
  std::cout << "Matrix: " << A.rows << "x" << A.cols << ", " << A.nnz()
            << " non-zeros\n";

  // 2. Auto-tune the BCCOO/BCCOO+ format + kernel for the device model.
  const auto tuned = tune::tune(A, dev);
  std::cout << "Auto-tuned in " << tuned.tuning_seconds << " s over "
            << tuned.evaluated << " configurations\n"
            << "  format: " << tuned.best.format.to_string() << "\n"
            << "  kernel: " << tuned.best.exec.to_string() << "\n"
            << "  footprint: " << tuned.best.footprint << " bytes vs COO "
            << A.footprint_bytes() << " bytes\n";

  // 3. Run SpMV.
  core::SpmvEngine eng(A, tuned.best.format, tuned.best.exec, dev);
  std::vector<real_t> x(static_cast<std::size_t>(n), 1.0);
  std::vector<real_t> y(static_cast<std::size_t>(n));
  const auto run = eng.run(x, y);

  // 4. Verify against the serial CSR reference and report the model.
  std::vector<real_t> want(static_cast<std::size_t>(n));
  fmt::Csr::from_coo(A).spmv(x, want);
  double max_err = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    max_err = std::max(max_err, std::abs(y[i] - want[i]));
  }
  std::cout << "y[0]=" << y[0] << " y[1]=" << y[1]
            << " (expect 1 and 0 for the Poisson operator on ones)\n"
            << "max |err| vs CSR reference: " << max_err << "\n"
            << "kernel launches: " << run.launches << "\n"
            << "modeled throughput on " << dev.name << ": "
            << perf::spmv_gflops(dev, run.stats, A.nnz()) << " GFLOPS\n";
  return max_err < 1e-9 ? 0 : 1;
}
