// Single-source shortest paths via min-plus semiring SpMV (Bellman-Ford
// relaxations) over a synthetic road-network-like graph — a GraphBLAS-style
// use of the BCCOO kernel beyond the numeric ring.
//
//   ./sssp [--nodes=20000] [--degree=4] [--source=0] [--threads=N]
#include <cmath>
#include <iostream>

#include "yaspmv/cpu/semiring.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/args.hpp"
#include "yaspmv/util/rng.hpp"
#include "yaspmv/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace yaspmv;
  const Args args(argc, argv);
  const auto n = static_cast<index_t>(args.get_int("nodes", 20000));
  const auto degree = static_cast<index_t>(args.get_int("degree", 4));
  const auto source = static_cast<index_t>(args.get_int("source", 0));
  const auto threads = static_cast<unsigned>(args.get_int("threads", 0));

  // Mostly-local digraph with positive weights (road-network flavor).
  SplitMix64 rng(0x5555);
  std::vector<index_t> src, dst;
  std::vector<real_t> w;
  for (index_t u = 0; u < n; ++u) {
    for (index_t k = 0; k < degree; ++k) {
      index_t v;
      if (rng.next_double() < 0.8) {
        const auto off = static_cast<index_t>(
            1 + rng.next_below(32));  // local link
        v = (u + off) % n;
      } else {
        v = static_cast<index_t>(rng.next_below(
            static_cast<std::uint64_t>(n)));  // shortcut
      }
      if (v == u) continue;
      src.push_back(u);
      dst.push_back(v);
      w.push_back(rng.next_double(0.5, 3.0));
    }
  }
  // Relaxation matrix is A^T: edge u->v stored at (v, u).
  const auto At = fmt::Coo::from_triplets(n, n, std::move(dst),
                                          std::move(src), std::move(w));
  const auto m = core::Bccoo::build(At, {});
  std::cout << "SSSP: " << n << " nodes, " << At.nnz() << " edges, source "
            << source << "\n";

  const real_t inf = std::numeric_limits<real_t>::infinity();
  std::vector<real_t> d(static_cast<std::size_t>(n), inf),
      nd(static_cast<std::size_t>(n));
  d[static_cast<std::size_t>(source)] = 0.0;

  Stopwatch sw;
  long rounds = 0;
  for (; rounds < n; ++rounds) {
    cpu::spmv_semiring<cpu::MinPlus>(m, d, nd, threads);
    bool changed = false;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (nd[i] < d[i]) {
        d[i] = nd[i];
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::size_t reached = 0;
  double max_d = 0, sum_d = 0;
  for (double v : d) {
    if (!std::isinf(v)) {
      ++reached;
      sum_d += v;
      max_d = std::max(max_d, v);
    }
  }
  std::cout << "converged after " << (rounds + 1) << " relaxation rounds in "
            << sw.elapsed_ms() << " ms\n"
            << "reached " << reached << "/" << n
            << " nodes; eccentricity(source) = " << max_d
            << ", mean distance = "
            << (reached ? sum_d / static_cast<double>(reached) : 0.0) << "\n";
  return reached > static_cast<std::size_t>(n) / 2 ? 0 : 1;
}
