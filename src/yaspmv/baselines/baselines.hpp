// Baseline SpMV kernels on the simulated device — the comparators of
// Figures 13/15 re-implemented from scratch on the same substrate:
//
//   csr_scalar  — one thread per row (naive CSR; heavy divergence and
//                 uncoalesced access)
//   csr_vector  — one warp per row (CUSPARSE CSR proxy)
//   ell / ellr  — one thread per row over the padded column-major arrays
//   sell        — sliced ELL (Monakov et al.)
//   dia         — one thread per row over dense diagonals
//   hyb         — ELL part + COO remainder (CUSPARSE HYB proxy)
//   bcsr / bell — blocked variants (Choi et al.; CUSPARSE BSR proxy)
//
// Each kernel computes the true y (validated against the CSR reference in
// the tests) while filling KernelStats with its memory/compute/divergence
// profile for the performance model.  Traversal visits warps in the order
// the hardware would issue them so the vector-cache simulation sees a
// realistic access stream.
#pragma once

#include <algorithm>
#include <vector>

#include "yaspmv/formats/bdia.hpp"
#include "yaspmv/formats/blocked.hpp"
#include "yaspmv/formats/coo.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/formats/dia.hpp"
#include "yaspmv/formats/ell.hpp"
#include "yaspmv/formats/hyb.hpp"
#include "yaspmv/formats/sbell.hpp"
#include "yaspmv/formats/sell.hpp"
#include "yaspmv/sim/coalescing.hpp"
#include "yaspmv/sim/counters.hpp"
#include "yaspmv/sim/device.hpp"

namespace yaspmv::baseline {

struct BaselineRun {
  sim::KernelStats stats;
};

namespace detail {

inline sim::VectorCacheSim make_vcache(const sim::DeviceSpec& dev) {
  return sim::VectorCacheSim(dev.vector_cache_bytes(true),
                             dev.cache_line_bytes, bytes::kValue);
}

}  // namespace detail

/// One thread per row.  Lanes of a warp stream *different* rows, so value /
/// column loads are uncoalesced (strided by the row length) and warp time is
/// the longest row in the warp.
inline BaselineRun run_csr_scalar(const fmt::Csr& m,
                                  const sim::DeviceSpec& dev,
                                  std::span<const real_t> x,
                                  std::span<real_t> y) {
  BaselineRun r;
  auto& st = r.stats;
  st.kernel_launches = 1;
  auto vc = detail::make_vcache(dev);
  const int warp = dev.warp_size;
  std::vector<std::size_t> lane_work(static_cast<std::size_t>(warp));
  std::vector<std::size_t> val_addr(static_cast<std::size_t>(warp));
  std::vector<std::size_t> col_addr(static_cast<std::size_t>(warp));
  for (index_t w0 = 0; w0 < m.rows; w0 += warp) {
    const index_t w1 = std::min<index_t>(m.rows, w0 + warp);
    index_t maxlen = 0;
    for (index_t r2 = w0; r2 < w1; ++r2) {
      lane_work[static_cast<std::size_t>(r2 - w0)] =
          static_cast<std::size_t>(m.row_len(r2));
      maxlen = std::max(maxlen, m.row_len(r2));
    }
    for (index_t lane = w1 - w0; lane < warp; ++lane) {
      lane_work[static_cast<std::size_t>(lane)] = 0;
    }
    st.add_warp_work(lane_work.data(), warp);
    // Lockstep element steps: at step k lane r reads element k of its row;
    // exact transaction counting over the lanes' byte addresses (this is
    // CSR-scalar's uncoalesced-access cost).
    for (index_t k = 0; k < maxlen; ++k) {
      for (index_t r2 = w0; r2 < w1; ++r2) {
        const std::size_t lane = static_cast<std::size_t>(r2 - w0);
        if (k < m.row_len(r2)) {
          const auto p = static_cast<std::size_t>(
              m.row_ptr[static_cast<std::size_t>(r2)] + k);
          vc.access(static_cast<std::size_t>(m.col_idx[p]), st);
          val_addr[lane] = p * bytes::kValue;
          col_addr[lane] = p * bytes::kIndex;
        } else {
          val_addr[lane] = sim::kInactiveLane;
          col_addr[lane] = sim::kInactiveLane;
        }
      }
      for (index_t lane = w1 - w0; lane < warp; ++lane) {
        val_addr[static_cast<std::size_t>(lane)] = sim::kInactiveLane;
        col_addr[static_cast<std::size_t>(lane)] = sim::kInactiveLane;
      }
      sim::charge_warp_load(st, val_addr);
      sim::charge_warp_load(st, col_addr);
    }
    for (index_t r2 = w0; r2 < w1; ++r2) {
      real_t acc = 0.0;
      for (index_t p = m.row_ptr[static_cast<std::size_t>(r2)];
           p < m.row_ptr[static_cast<std::size_t>(r2) + 1]; ++p) {
        acc += m.vals[static_cast<std::size_t>(p)] *
               x[static_cast<std::size_t>(m.col_idx[static_cast<std::size_t>(p)])];
      }
      y[static_cast<std::size_t>(r2)] = acc;
      st.flops += 2 * static_cast<std::size_t>(m.row_len(r2));
    }
  }
  st.add_coalesced_load(static_cast<std::size_t>(m.rows) + 1, bytes::kIndex);
  st.add_coalesced_store(static_cast<std::size_t>(m.rows), bytes::kValue);
  return r;
}

/// One warp per row (CUSPARSE csrmv proxy): coalesced within the row, lanes
/// idle when the row is shorter than the warp, log-step shuffle reduction.
inline BaselineRun run_csr_vector(const fmt::Csr& m,
                                  const sim::DeviceSpec& dev,
                                  std::span<const real_t> x,
                                  std::span<real_t> y) {
  BaselineRun r;
  auto& st = r.stats;
  st.kernel_launches = 1;
  auto vc = detail::make_vcache(dev);
  const int warp = dev.warp_size;
  std::vector<std::size_t> lane_work(static_cast<std::size_t>(warp));
  for (index_t row = 0; row < m.rows; ++row) {
    const index_t len = m.row_len(row);
    const index_t steps = ceil_div(len, static_cast<index_t>(warp));
    for (int lane = 0; lane < warp; ++lane) {
      lane_work[static_cast<std::size_t>(lane)] =
          static_cast<std::size_t>(std::max<index_t>(
              0, std::min<index_t>(steps,
                                   ceil_div(len - lane, warp))));
    }
    st.add_warp_work(lane_work.data(), warp);
    real_t acc = 0.0;
    for (index_t p = m.row_ptr[static_cast<std::size_t>(row)];
         p < m.row_ptr[static_cast<std::size_t>(row) + 1]; ++p) {
      const auto c =
          static_cast<std::size_t>(m.col_idx[static_cast<std::size_t>(p)]);
      vc.access(c, st);
      acc += m.vals[static_cast<std::size_t>(p)] * x[c];
    }
    y[static_cast<std::size_t>(row)] = acc;
    st.flops += 2 * static_cast<std::size_t>(len) +
                5 /* warp shuffle reduction */;
  }
  st.add_coalesced_load(m.nnz(), bytes::kValue);
  st.add_coalesced_load(m.nnz(), bytes::kIndex);
  st.add_coalesced_load(static_cast<std::size_t>(m.rows) + 1, bytes::kIndex);
  st.add_coalesced_store(static_cast<std::size_t>(m.rows), bytes::kValue);
  return r;
}

/// One thread per row over the padded column-major ELL arrays: perfectly
/// coalesced and balanced, but reads the padding too.
inline BaselineRun run_ell(const fmt::Ell& e, const sim::DeviceSpec& dev,
                           std::span<const real_t> x, std::span<real_t> y) {
  BaselineRun r;
  auto& st = r.stats;
  st.kernel_launches = 1;
  auto vc = detail::make_vcache(dev);
  for (index_t k = 0; k < e.width; ++k) {
    for (index_t row = 0; row < e.rows; ++row) {
      const std::size_t slot = static_cast<std::size_t>(k) *
                                   static_cast<std::size_t>(e.rows) +
                               static_cast<std::size_t>(row);
      const index_t c = e.col_idx[slot];
      if (c >= 0) {
        vc.access(static_cast<std::size_t>(c), st);
        y[static_cast<std::size_t>(row)] =
            (k == 0 ? 0.0 : y[static_cast<std::size_t>(row)]) +
            e.vals[slot] * x[static_cast<std::size_t>(c)];
        st.flops += 2;
      } else if (k == 0) {
        y[static_cast<std::size_t>(row)] = 0.0;
      }
    }
  }
  if (e.width == 0) std::fill(y.begin(), y.end(), 0.0);
  st.add_coalesced_load(e.nnz_stored(), bytes::kValue);
  st.add_coalesced_load(e.nnz_stored(), bytes::kIndex);
  st.add_coalesced_store(static_cast<std::size_t>(e.rows), bytes::kValue);
  return r;
}

/// SELL: like ELL but per-slice widths; work within a warp is balanced by
/// the slice's max row, across slices it varies (no global padding).
inline BaselineRun run_sell(const fmt::SEll& s, const sim::DeviceSpec& dev,
                            std::span<const real_t> x, std::span<real_t> y) {
  BaselineRun r;
  auto& st = r.stats;
  st.kernel_launches = 1;
  auto vc = detail::make_vcache(dev);
  s.spmv(x, y);
  for (index_t sl = 0; sl < s.num_slices(); ++sl) {
    const std::size_t base = s.slice_ptr[static_cast<std::size_t>(sl)];
    const std::size_t count =
        s.slice_ptr[static_cast<std::size_t>(sl) + 1] - base;
    st.add_coalesced_load(count, bytes::kValue);
    st.add_coalesced_load(count, bytes::kIndex);
    for (std::size_t i = 0; i < count; ++i) {
      const index_t c = s.col_idx[base + i];
      if (c >= 0) {
        vc.access(static_cast<std::size_t>(c), st);
        st.flops += 2;
      }
    }
  }
  st.add_coalesced_load(s.slice_width.size() * 2, bytes::kIndex);
  st.add_coalesced_store(static_cast<std::size_t>(s.rows), bytes::kValue);
  return r;
}

/// DIA: dense diagonals, contiguous vector access (cache-friendly).
inline BaselineRun run_dia(const fmt::Dia& d, const sim::DeviceSpec& dev,
                           std::span<const real_t> x, std::span<real_t> y) {
  BaselineRun r;
  auto& st = r.stats;
  st.kernel_launches = 1;
  auto vc = detail::make_vcache(dev);
  d.spmv(x, y);
  for (std::size_t s = 0; s < d.offsets.size(); ++s) {
    const index_t off = d.offsets[s];
    for (index_t row = 0; row < d.rows; ++row) {
      const index_t c = row + off;
      if (c >= 0 && c < d.cols) {
        vc.access(static_cast<std::size_t>(c), st);
        st.flops += 2;
      }
    }
  }
  st.add_coalesced_load(d.vals.size(), bytes::kValue);
  st.add_coalesced_load(d.offsets.size(), bytes::kIndex);
  st.add_coalesced_store(static_cast<std::size_t>(d.rows), bytes::kValue);
  return r;
}

/// HYB = ELL kernel + a COO segmented-reduction pass for the spill
/// (CUSPARSE HYB proxy; two launches).  The COO part streams
/// row/column/value triples once and writes one read-modify-write
/// transaction per *spill row* (segmented reduction), not per element.
inline BaselineRun run_hyb(const fmt::Hyb& h, const sim::DeviceSpec& dev,
                           std::span<const real_t> x, std::span<real_t> y) {
  BaselineRun r = run_ell(h.ell, dev, x, y);
  auto& st = r.stats;
  st.kernel_launches += 1;
  auto vc = detail::make_vcache(dev);
  std::size_t spill_rows = 0;
  index_t prev_row = -1;
  for (std::size_t i = 0; i < h.coo.nnz(); ++i) {
    const auto c = static_cast<std::size_t>(h.coo.col_idx[i]);
    vc.access(c, st);
    y[static_cast<std::size_t>(h.coo.row_idx[i])] += h.coo.vals[i] * x[c];
    st.flops += 2;
    if (h.coo.row_idx[i] != prev_row) {
      prev_row = h.coo.row_idx[i];
      ++spill_rows;
    }
  }
  st.add_coalesced_load(h.coo.nnz(), bytes::kValue);
  st.add_coalesced_load(h.coo.nnz(), 2 * bytes::kIndex);  // row + col
  // One scattered RMW (32B load + 32B store) per spill row.
  st.global_load_bytes += spill_rows * 32;
  st.global_store_bytes += spill_rows * 32;
  return r;
}

/// BCSR: one warp per block-row (CUSPARSE bsrmv proxy).
inline BaselineRun run_bcsr(const fmt::Bcsr& m, const sim::DeviceSpec& dev,
                            std::span<const real_t> x, std::span<real_t> y) {
  BaselineRun r;
  auto& st = r.stats;
  st.kernel_launches = 1;
  auto vc = detail::make_vcache(dev);
  m.spmv(x, y);
  const int warp = dev.warp_size;
  std::vector<std::size_t> lane_work(static_cast<std::size_t>(warp));
  const std::size_t bsz = static_cast<std::size_t>(m.block_w) *
                          static_cast<std::size_t>(m.block_h);
  for (index_t br = 0; br < m.block_rows; ++br) {
    const index_t len = m.block_row_ptr[static_cast<std::size_t>(br) + 1] -
                        m.block_row_ptr[static_cast<std::size_t>(br)];
    const index_t steps = ceil_div(len, static_cast<index_t>(warp));
    for (int lane = 0; lane < warp; ++lane) {
      lane_work[static_cast<std::size_t>(lane)] =
          static_cast<std::size_t>(std::max<index_t>(
              0, std::min<index_t>(steps, ceil_div(len - lane, warp))));
    }
    st.add_warp_work(lane_work.data(), warp);
    for (index_t p = m.block_row_ptr[static_cast<std::size_t>(br)];
         p < m.block_row_ptr[static_cast<std::size_t>(br) + 1]; ++p) {
      const index_t bc = m.block_col[static_cast<std::size_t>(p)];
      for (index_t lc = 0; lc < m.block_w; ++lc) {
        vc.access(static_cast<std::size_t>(bc * m.block_w + lc), st);
      }
      st.flops += 2 * bsz;
    }
  }
  st.add_coalesced_load(m.num_blocks() * bsz, bytes::kValue);
  st.add_coalesced_load(m.num_blocks(), bytes::kIndex);
  st.add_coalesced_load(static_cast<std::size_t>(m.block_rows) + 1,
                        bytes::kIndex);
  st.add_coalesced_store(static_cast<std::size_t>(m.rows), bytes::kValue);
  return r;
}

/// SBELL: sliced blocked ELL — BELL traffic profile with per-slice widths.
inline BaselineRun run_sbell(const fmt::SBell& m, const sim::DeviceSpec& dev,
                             std::span<const real_t> x,
                             std::span<real_t> y) {
  BaselineRun r;
  auto& st = r.stats;
  st.kernel_launches = 1;
  auto vc = detail::make_vcache(dev);
  m.spmv(x, y);
  const std::size_t bsz = static_cast<std::size_t>(m.block_w) *
                          static_cast<std::size_t>(m.block_h);
  for (std::size_t slot = 0; slot < m.block_col.size(); ++slot) {
    const index_t bc = m.block_col[slot];
    if (bc >= 0) {
      for (index_t lc = 0; lc < m.block_w; ++lc) {
        vc.access(static_cast<std::size_t>(bc * m.block_w + lc), st);
      }
      st.flops += 2 * bsz;
    }
  }
  st.add_coalesced_load(m.block_col.size() * bsz, bytes::kValue);
  st.add_coalesced_load(m.block_col.size(), bytes::kIndex);
  st.add_coalesced_load(m.slice_width.size() * 2, bytes::kIndex);
  st.add_coalesced_store(static_cast<std::size_t>(m.rows), bytes::kValue);
  return r;
}

/// BDIA: dense bands, contiguous vector windows (DIA traffic profile with
/// fewer per-diagonal offsets).
inline BaselineRun run_bdia(const fmt::Bdia& b, const sim::DeviceSpec& dev,
                            std::span<const real_t> x, std::span<real_t> y) {
  BaselineRun r;
  auto& st = r.stats;
  st.kernel_launches = 1;
  auto vc = detail::make_vcache(dev);
  b.spmv(x, y);
  for (index_t band = 0; band < b.num_bands(); ++band) {
    const auto bz = static_cast<std::size_t>(band);
    for (index_t row = 0; row < b.rows; ++row) {
      for (index_t d = 0; d < b.band_width[bz]; ++d) {
        const index_t c = row + b.band_offset[bz] + d;
        if (c >= 0 && c < b.cols) {
          vc.access(static_cast<std::size_t>(c), st);
          st.flops += 2;
        }
      }
    }
  }
  st.add_coalesced_load(b.vals.size(), bytes::kValue);
  st.add_coalesced_load(b.band_offset.size() * 2, bytes::kIndex);
  st.add_coalesced_store(static_cast<std::size_t>(b.rows), bytes::kValue);
  return r;
}

/// BELL: blocked ELL, balanced/coalesced with block padding.
inline BaselineRun run_bell(const fmt::Bell& m, const sim::DeviceSpec& dev,
                            std::span<const real_t> x, std::span<real_t> y) {
  BaselineRun r;
  auto& st = r.stats;
  st.kernel_launches = 1;
  auto vc = detail::make_vcache(dev);
  m.spmv(x, y);
  const std::size_t bsz = static_cast<std::size_t>(m.block_w) *
                          static_cast<std::size_t>(m.block_h);
  std::size_t live = 0;
  for (std::size_t slot = 0; slot < m.block_col.size(); ++slot) {
    const index_t bc = m.block_col[slot];
    if (bc >= 0) {
      ++live;
      for (index_t lc = 0; lc < m.block_w; ++lc) {
        vc.access(static_cast<std::size_t>(bc * m.block_w + lc), st);
      }
    }
  }
  st.flops += 2 * bsz * live;
  st.add_coalesced_load(m.block_col.size() * bsz, bytes::kValue);
  st.add_coalesced_load(m.block_col.size(), bytes::kIndex);
  st.add_coalesced_store(static_cast<std::size_t>(m.rows), bytes::kValue);
  return r;
}

}  // namespace yaspmv::baseline
