// clSpMV and CUSPARSE comparator proxies (Section 5).
//
// clSpMV evaluates 9 single formats and a COCKTAIL combination; CUSPARSE
// offers CSR / HYB / BCSR with manually searched parameters ("we manually
// searched the row length in a wide range and use the best performing one").
// We reproduce both selection procedures on our substrate: every candidate
// runs on the simulator, is validated against the CSR reference (in tests),
// and the proxy reports the best modeled-time candidate.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "yaspmv/formats/coo.hpp"
#include "yaspmv/sim/counters.hpp"
#include "yaspmv/sim/device.hpp"

namespace yaspmv::baseline {

struct CandidateResult {
  std::string name;             ///< e.g. "ELL", "HYB(K=12)", "BCSR(2x2)"
  double gflops = 0;            ///< modeled throughput
  std::size_t footprint = 0;    ///< stored bytes (Table 3 accounting)
  sim::KernelStats stats;
};

/// Evaluates every applicable single format (COO, CSR-scalar, CSR-vector,
/// ELL, ELL-R, SELL, DIA, HYB, BCSR, BELL) and returns them sorted by
/// descending modeled GFLOPS.  `y` receives the result of the *best*
/// candidate (all candidates are re-validated in the test suite).
std::vector<CandidateResult> evaluate_singles(const fmt::Coo& a,
                                              const sim::DeviceSpec& dev,
                                              std::span<const real_t> x,
                                              std::span<real_t> y);

/// clSpMV best-single proxy: the top entry of evaluate_singles.
CandidateResult best_single(const fmt::Coo& a, const sim::DeviceSpec& dev,
                            std::span<const real_t> x, std::span<real_t> y);

/// clSpMV COCKTAIL proxy: partitioned combinations (HYB splits over a swept
/// ELL width, blocked formats when the fill ratio allows) competing against
/// the best single; returns the winner.
CandidateResult run_cocktail(const fmt::Coo& a, const sim::DeviceSpec& dev,
                             std::span<const real_t> x, std::span<real_t> y);

/// CUSPARSE proxy: best of CSR-vector, HYB (ELL width swept like the paper's
/// manual search), and BCSR (block size swept).
CandidateResult run_cusparse(const fmt::Coo& a, const sim::DeviceSpec& dev,
                             std::span<const real_t> x, std::span<real_t> y);

/// Analytic ELL footprint (bytes) without materializing the format; returns
/// SIZE_MAX when the format is not applicable (exceeds device memory) —
/// Table 3's "N/A" entries.
std::size_t ell_footprint_analytic(const fmt::Coo& a,
                                   std::size_t limit_bytes = std::size_t{2}
                                                             << 30);

}  // namespace yaspmv::baseline
