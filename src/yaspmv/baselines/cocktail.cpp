#include "yaspmv/baselines/clspmv.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "yaspmv/baselines/baselines.hpp"
#include "yaspmv/baselines/coo_cusp.hpp"
#include "yaspmv/perf/model.hpp"

namespace yaspmv::baseline {

namespace {

/// Row-length percentile (0..100) of a CSR matrix.
index_t row_len_percentile(const fmt::Csr& m, int pct) {
  if (m.rows == 0) return 0;
  std::vector<index_t> lens(static_cast<std::size_t>(m.rows));
  for (index_t r = 0; r < m.rows; ++r) {
    lens[static_cast<std::size_t>(r)] = m.row_len(r);
  }
  const auto k = static_cast<std::size_t>(
      static_cast<double>(pct) / 100.0 *
      static_cast<double>(lens.size() - 1));
  std::nth_element(lens.begin(),
                   lens.begin() + static_cast<std::ptrdiff_t>(k), lens.end());
  return lens[k];
}

CandidateResult make_result(std::string name, const sim::DeviceSpec& dev,
                            const sim::KernelStats& st, std::size_t nnz,
                            std::size_t footprint) {
  CandidateResult r;
  r.name = std::move(name);
  r.stats = st;
  r.gflops = perf::spmv_gflops(dev, st, nnz);
  r.footprint = footprint;
  return r;
}

/// Keeps `best` pointing at the faster candidate and mirrors the winning
/// y-vector.
void consider(CandidateResult&& cand, std::vector<real_t>&& cand_y,
              CandidateResult& best, std::vector<real_t>& best_y) {
  if (best.name.empty() || cand.gflops > best.gflops) {
    best = std::move(cand);
    best_y = std::move(cand_y);
  }
}

constexpr std::size_t kMaxEllSlots = std::size_t{1} << 26;  // 64M entries
constexpr index_t kMaxDiagonals = 512;
constexpr double kMaxBlockFill = 1.6;

}  // namespace

std::size_t ell_footprint_analytic(const fmt::Coo& a,
                                   std::size_t limit_bytes) {
  const fmt::Csr m = fmt::Csr::from_coo(a);
  const std::size_t slots = static_cast<std::size_t>(m.max_row_len()) *
                            static_cast<std::size_t>(m.rows);
  const std::size_t fp = slots * (bytes::kIndex + bytes::kValue);
  if (fp > limit_bytes || m.rows == 0) {
    return std::numeric_limits<std::size_t>::max();
  }
  return fp;
}

std::vector<CandidateResult> evaluate_singles(const fmt::Coo& a,
                                              const sim::DeviceSpec& dev,
                                              std::span<const real_t> x,
                                              std::span<real_t> y) {
  const fmt::Csr csr = fmt::Csr::from_coo(a);
  const std::size_t nnz = a.nnz();
  std::vector<CandidateResult> out;
  std::vector<real_t> tmp(y.size());

  // COO + segmented reduction (clSpMV's COO single format uses the
  // efficient balanced scan, not the tree variant).
  {
    auto r = run_coo_tree(a, dev, x, tmp, 256, 1, /*tree_scan=*/false);
    out.push_back(make_result("COO", dev, r.stats, nnz, a.footprint_bytes()));
  }
  // CSR scalar & vector.
  {
    auto r = run_csr_scalar(csr, dev, x, tmp);
    out.push_back(
        make_result("CSR-scalar", dev, r.stats, nnz, csr.footprint_bytes()));
  }
  {
    auto r = run_csr_vector(csr, dev, x, tmp);
    out.push_back(
        make_result("CSR-vector", dev, r.stats, nnz, csr.footprint_bytes()));
  }
  // ELL family (guarded against padding explosion).
  const std::size_t ell_slots = static_cast<std::size_t>(csr.max_row_len()) *
                                static_cast<std::size_t>(csr.rows);
  if (ell_slots > 0 && ell_slots <= kMaxEllSlots) {
    const fmt::Ell ell = fmt::Ell::from_csr(csr);
    {
      auto r = run_ell(ell, dev, x, tmp);
      out.push_back(
          make_result("ELL", dev, r.stats, nnz, ell.footprint_bytes()));
    }
    {
      fmt::EllR ellr = fmt::EllR::from_csr(csr);
      auto r = run_ell(ellr.ell, dev, x, tmp);  // same traffic profile
      r.stats.add_coalesced_load(static_cast<std::size_t>(csr.rows),
                                 bytes::kIndex);
      // ELL-R skips padded arithmetic but still stores the padding.
      out.push_back(
          make_result("ELL-R", dev, r.stats, nnz, ellr.footprint_bytes()));
    }
  }
  // SELL.
  {
    const fmt::SEll sell = fmt::SEll::from_csr(csr, 32);
    if (sell.vals.size() <= kMaxEllSlots) {
      auto r = run_sell(sell, dev, x, tmp);
      out.push_back(
          make_result("SELL", dev, r.stats, nnz, sell.footprint_bytes()));
    }
  }
  // DIA / BDIA.
  if (fmt::Dia::count_diagonals(csr) <= kMaxDiagonals) {
    const fmt::Dia dia = fmt::Dia::from_csr(csr);
    auto r = run_dia(dia, dev, x, tmp);
    out.push_back(
        make_result("DIA", dev, r.stats, nnz, dia.footprint_bytes()));
    const fmt::Bdia bdia = fmt::Bdia::from_csr(csr);
    if (bdia.vals.size() <= kMaxEllSlots) {
      auto r2 = run_bdia(bdia, dev, x, tmp);
      out.push_back(
          make_result("BDIA", dev, r2.stats, nnz, bdia.footprint_bytes()));
    }
  }
  // HYB with the default heuristic width.
  {
    const fmt::Hyb hyb = fmt::Hyb::from_csr(csr);
    if (hyb.ell.nnz_stored() <= kMaxEllSlots) {
      auto r = run_hyb(hyb, dev, x, tmp);
      out.push_back(make_result("HYB", dev, r.stats, nnz,
                                hyb.footprint_bytes()));
    }
  }
  // Blocked formats over the Table 1 block menu.
  for (auto [bw, bh] : {std::pair<index_t, index_t>{2, 2},
                        {4, 2},
                        {2, 4},
                        {4, 4}}) {
    if (fmt::BlockDecomposition::fill_ratio(a, bw, bh) > kMaxBlockFill) {
      continue;
    }
    const fmt::Bcsr b = fmt::Bcsr::from_coo(a, bw, bh);
    auto r = run_bcsr(b, dev, x, tmp);
    out.push_back(make_result(
        "BCSR(" + std::to_string(bw) + "x" + std::to_string(bh) + ")", dev,
        r.stats, nnz, b.footprint_bytes()));
    const fmt::Bell be = fmt::Bell::from_coo(a, bw, bh);
    if (be.block_col.size() * static_cast<std::size_t>(bw * bh) <=
        kMaxEllSlots) {
      auto r2 = run_bell(be, dev, x, tmp);
      out.push_back(make_result(
          "BELL(" + std::to_string(bw) + "x" + std::to_string(bh) + ")", dev,
          r2.stats, nnz, be.footprint_bytes()));
    }
    const fmt::SBell sb = fmt::SBell::from_coo(a, bw, bh, 8);
    if (sb.block_col.size() * static_cast<std::size_t>(bw * bh) <=
        kMaxEllSlots) {
      auto r3 = run_sbell(sb, dev, x, tmp);
      out.push_back(make_result(
          "SBELL(" + std::to_string(bw) + "x" + std::to_string(bh) + ")",
          dev, r3.stats, nnz, sb.footprint_bytes()));
    }
  }

  std::sort(out.begin(), out.end(),
            [](const CandidateResult& l, const CandidateResult& r) {
              return l.gflops > r.gflops;
            });
  // Recompute y with the winner (candidates were validated individually in
  // the tests; here we only need the best one's output).
  if (!out.empty()) {
    csr.spmv(x, y);  // all formats compute the same sums (tests verify each)
  }
  return out;
}

CandidateResult best_single(const fmt::Coo& a, const sim::DeviceSpec& dev,
                            std::span<const real_t> x, std::span<real_t> y) {
  auto all = evaluate_singles(a, dev, x, y);
  require(!all.empty(), "no applicable single format");
  return all.front();
}

CandidateResult run_cocktail(const fmt::Coo& a, const sim::DeviceSpec& dev,
                             std::span<const real_t> x, std::span<real_t> y) {
  const fmt::Csr csr = fmt::Csr::from_coo(a);
  const std::size_t nnz = a.nnz();
  CandidateResult best;
  std::vector<real_t> best_y(y.size());

  // Partitioned candidates: HYB across swept ELL widths (2-way ELL+COO
  // cocktail — the dominant combination clSpMV picks for irregular
  // matrices).
  for (int pct : {50, 65, 80, 90}) {
    const index_t k = std::max<index_t>(1, row_len_percentile(csr, pct));
    const std::size_t slots = static_cast<std::size_t>(k) *
                              static_cast<std::size_t>(csr.rows);
    if (slots > kMaxEllSlots) continue;
    const fmt::Hyb hyb = fmt::Hyb::from_csr(csr, k);
    std::vector<real_t> tmp(y.size());
    auto r = run_hyb(hyb, dev, x, tmp);
    consider(make_result("COCKTAIL[ELL(K=" + std::to_string(k) + ")+COO]",
                         dev, r.stats, nnz, hyb.footprint_bytes()),
             std::move(tmp), best, best_y);
  }
  // Blocked partition candidate (whole-matrix BCSR when blocks are dense).
  for (auto [bw, bh] : {std::pair<index_t, index_t>{2, 2}, {4, 4}}) {
    if (fmt::BlockDecomposition::fill_ratio(a, bw, bh) > kMaxBlockFill) {
      continue;
    }
    const fmt::Bcsr b = fmt::Bcsr::from_coo(a, bw, bh);
    std::vector<real_t> tmp(y.size());
    auto r = run_bcsr(b, dev, x, tmp);
    consider(make_result("COCKTAIL[BCSR(" + std::to_string(bw) + "x" +
                             std::to_string(bh) + ")]",
                         dev, r.stats, nnz, b.footprint_bytes()),
             std::move(tmp), best, best_y);
  }
  // The best single format always competes (a one-partition cocktail).
  {
    std::vector<real_t> tmp(y.size());
    auto s = best_single(a, dev, x, tmp);
    consider(std::move(s), std::move(tmp), best, best_y);
  }
  std::copy(best_y.begin(), best_y.end(), y.begin());
  return best;
}

CandidateResult run_cusparse(const fmt::Coo& a, const sim::DeviceSpec& dev,
                             std::span<const real_t> x, std::span<real_t> y) {
  const fmt::Csr csr = fmt::Csr::from_coo(a);
  const std::size_t nnz = a.nnz();
  CandidateResult best;
  std::vector<real_t> best_y(y.size());

  {
    std::vector<real_t> tmp(y.size());
    auto r = run_csr_vector(csr, dev, x, tmp);
    consider(make_result("CUSPARSE-CSR", dev, r.stats, nnz,
                         csr.footprint_bytes()),
             std::move(tmp), best, best_y);
  }
  for (int pct : {25, 50, 65, 80, 90, 100}) {
    const index_t k = std::max<index_t>(1, row_len_percentile(csr, pct));
    const std::size_t slots = static_cast<std::size_t>(k) *
                              static_cast<std::size_t>(csr.rows);
    if (slots > kMaxEllSlots) continue;
    const fmt::Hyb hyb = fmt::Hyb::from_csr(csr, k);
    std::vector<real_t> tmp(y.size());
    auto r = run_hyb(hyb, dev, x, tmp);
    consider(make_result("CUSPARSE-HYB(K=" + std::to_string(k) + ")", dev,
                         r.stats, nnz, hyb.footprint_bytes()),
             std::move(tmp), best, best_y);
  }
  for (auto [bw, bh] : {std::pair<index_t, index_t>{2, 2},
                        {4, 2},
                        {2, 4},
                        {4, 4}}) {
    if (fmt::BlockDecomposition::fill_ratio(a, bw, bh) > kMaxBlockFill) {
      continue;
    }
    const fmt::Bcsr b = fmt::Bcsr::from_coo(a, bw, bh);
    std::vector<real_t> tmp(y.size());
    auto r = run_bcsr(b, dev, x, tmp);
    consider(make_result("CUSPARSE-BCSR(" + std::to_string(bw) + "x" +
                             std::to_string(bh) + ")",
                         dev, r.stats, nnz, b.footprint_bytes()),
             std::move(tmp), best, best_y);
  }
  std::copy(best_y.begin(), best_y.end(), y.begin());
  return best;
}

}  // namespace yaspmv::baseline
