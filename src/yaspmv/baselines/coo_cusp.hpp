// COO SpMV via tree-based segmented scan — the CUSP proxy and the "COO"
// stage of Figure 14.
//
// Bell & Garland's COO kernel: one element per thread, per-workgroup
// segmented scan (here the tree-based Blelloch variant the paper criticizes),
// completed segments written directly, the first (possibly continuing)
// segment of each workgroup patched by a *second kernel* that serially
// propagates carries — the two-kernel structure whose launch overhead the
// paper's adjacent synchronization eliminates.
#pragma once

#include <span>
#include <vector>

#include "yaspmv/formats/coo.hpp"
#include "yaspmv/scan/segscan_tree.hpp"
#include "yaspmv/scan/wg_scan.hpp"
#include "yaspmv/sim/dispatch.hpp"

namespace yaspmv::baseline {

struct CooTreeRun {
  sim::KernelStats stats;
};

/// `tree_scan` selects the intra-workgroup scan algorithm:
///   true  — Blelloch tree scan with idle-lane divergence (Figure 14's
///           "COO" stage, the configuration the paper criticizes);
///   false — balanced Hillis-Steele segmented scan (models CUSP's
///           warp-efficient segmented reduction for the Figure 13/15 bars).
inline CooTreeRun run_coo_tree(const fmt::Coo& m, const sim::DeviceSpec& dev,
                               std::span<const real_t> x,
                               std::span<real_t> y, int workgroup_size = 256,
                               unsigned workers = 1, bool tree_scan = true) {
  CooTreeRun out;
  const int W = workgroup_size;
  const std::size_t n = m.nnz();
  const auto num_wgs =
      static_cast<int>(n == 0 ? 1 : ceil_div(n, static_cast<std::size_t>(W)));

  std::fill(y.begin(), y.end(), 0.0);
  out.stats.global_store_bytes += y.size() * bytes::kValue;  // y memset

  // Per-workgroup carry metadata produced by kernel 1.
  std::vector<real_t> tails(static_cast<std::size_t>(num_wgs), 0.0);
  std::vector<std::uint8_t> has_stop(static_cast<std::size_t>(num_wgs), 0);
  std::vector<index_t> pending_row(static_cast<std::size_t>(num_wgs), -1);
  std::vector<real_t> pending_val(static_cast<std::size_t>(num_wgs), 0.0);

  sim::LaunchConfig lc;
  lc.num_workgroups = num_wgs;
  lc.workgroup_size = W;
  lc.workers = workers;
  lc.use_texture = true;

  auto row_at = [&](std::size_t i) {
    return i < n ? m.row_idx[i] : (n ? m.row_idx[n - 1] : 0);
  };

  auto kernel1 = [&](sim::WorkgroupCtx& wg) {
    sim::KernelStats& st = wg.stats();
    const std::size_t base =
        static_cast<std::size_t>(wg.wg_id()) * static_cast<std::size_t>(W);
    auto prod = wg.shared_array<real_t>(static_cast<std::size_t>(W),
                                        bytes::kValue);
    auto heads = wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W), 1);
    auto real_head =
        wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W), 1);
    auto wflags = wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W), 1);
    auto icopy = wg.shared_array<real_t>(static_cast<std::size_t>(W),
                                         bytes::kValue);
    auto heads_scan =
        wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W), 1);

    wg.phase([&](int t) {
      const std::size_t i = base + static_cast<std::size_t>(t);
      if (i < n) {
        const auto c = static_cast<std::size_t>(m.col_idx[i]);
        wg.touch_vector(c);
        prod[static_cast<std::size_t>(t)] = m.vals[i] * x[c];
        st.flops += 2;
      } else {
        prod[static_cast<std::size_t>(t)] = 0.0;  // padding joins last row
      }
      const bool rh = i < n && i > 0 && row_at(i) != row_at(i - 1);
      real_head[static_cast<std::size_t>(t)] = (i == 0 || rh) ? 1 : 0;
      heads[static_cast<std::size_t>(t)] =
          (t == 0 || rh) ? 1 : 0;  // forced head at block start
    });
    // Element loads: row + col + val per non-zero (the COO footprint cost).
    st.add_coalesced_load(static_cast<std::size_t>(W),
                          2 * bytes::kIndex + bytes::kValue);

    if (tree_scan) {
      scan::wg_tree_segscan_inclusive(wg, prod, heads, wflags, icopy);
      // Credit the balanced product phase so the divergence factor reflects
      // the whole kernel, not just the tree stages.
      st.ideal_lanes += static_cast<std::size_t>(W);
      st.serialized_lanes += static_cast<std::size_t>(W);
    } else {
      // Balanced Hillis-Steele segmented scan (heads preserved via copy).
      wg.phase([&](int t) {
        heads_scan[static_cast<std::size_t>(t)] =
            heads[static_cast<std::size_t>(t)];
      });
      scan::wg_segmented_scan_hvec(wg, prod, heads_scan, icopy, wflags, 1);
    }

    // Position of the block's first real (global) segment head; stops before
    // it belong to a segment continuing from the previous block.
    int first_rh = W;
    wg.phase([&](int t) {
      if (t == 0) {
        for (int u = 0; u < W; ++u) {
          if (real_head[static_cast<std::size_t>(u)]) {
            first_rh = u;
            break;
          }
        }
      }
    });

    wg.phase([&](int t) {
      const std::size_t i = base + static_cast<std::size_t>(t);
      if (i >= n) return;
      const bool is_stop = (i + 1 == n) || row_at(i) != row_at(i + 1);
      if (!is_stop) return;
      // The segment ending at t started at the last real head <= t; if no
      // real head exists in [0, t] it continues from the previous block and
      // its scanned value (sum from the forced block-start head) must be
      // patched with the incoming carry by kernel 2.
      const bool continuing = t < first_rh;
      const std::size_t wgi = static_cast<std::size_t>(wg.wg_id());
      if (continuing) {
        pending_row[wgi] = row_at(i);
        pending_val[wgi] = prod[static_cast<std::size_t>(t)];
        st.global_store_bytes += bytes::kValue + bytes::kIndex;
      } else {
        y[static_cast<std::size_t>(row_at(i))] =
            prod[static_cast<std::size_t>(t)];
        st.global_store_bytes += 32;  // scattered single-value store
      }
    });

    // Tail and stop flag for the carry chain.  A block whose last element
    // ends a row has an *empty* trailing segment: its carry out is 0, not
    // the (finished) scanned value at W-1.
    {
      const std::size_t wgi = static_cast<std::size_t>(wg.wg_id());
      const std::size_t last = base + static_cast<std::size_t>(W - 1);
      const bool ends_at_stop =
          last < n && ((last + 1 == n) || row_at(last) != row_at(last + 1));
      tails[wgi] = ends_at_stop ? 0.0 : prod[static_cast<std::size_t>(W - 1)];
      for (int t = 0; t < W; ++t) {
        const std::size_t i = base + static_cast<std::size_t>(t);
        if (i < n &&
            ((i + 1 == n) || row_at(i) != row_at(i + 1))) {
          has_stop[wgi] = 1;
        }
      }
      st.global_store_bytes += bytes::kValue + 1;
    }
  };
  out.stats += sim::launch(dev, lc, kernel1);

  // Kernel 2: serial carry propagation (the global-synchronization pass).
  sim::LaunchConfig lc2;
  lc2.num_workgroups = 1;
  lc2.workgroup_size = 1;
  lc2.workers = 1;
  lc2.use_texture = false;
  auto kernel2 = [&](sim::WorkgroupCtx& wg) {
    sim::KernelStats& st = wg.stats();
    wg.phase([&](int t) {
      if (t != 0) return;
      real_t carry = 0.0;
      for (int b = 0; b < num_wgs; ++b) {
        const auto bz = static_cast<std::size_t>(b);
        st.add_coalesced_load(1, 2 * bytes::kValue + bytes::kIndex + 1);
        if (pending_row[bz] >= 0) {
          y[static_cast<std::size_t>(pending_row[bz])] =
              pending_val[bz] + carry;
          st.flops += 1;
          st.global_store_bytes += 32;
        }
        carry = has_stop[bz] ? tails[bz] : carry + tails[bz];
        st.flops += 1;
      }
    });
  };
  out.stats += sim::launch(dev, lc2, kernel2);
  return out;
}

}  // namespace yaspmv::baseline
