// OpenCL C source generation (Section 4: "the OpenCL code is generated
// according to the selected parameters from this auto-tuning framework").
//
// Given a tuned (FormatConfig, ExecConfig) pair, this module emits the
// kernel sources a GPU deployment would compile: the single SpMV kernel
// (strategy 1 or 2, with or without adjacent synchronization), plus the
// carry kernel (global-sync configuration) and the BCCOO+ combine kernel
// when the configuration needs them.  All tunables are baked in as
// compile-time macros, exactly how the paper's framework specializes its
// kernels, and `cache_key` is the hash-table key for the compiled-kernel
// cache.
//
// The host in this repository executes the simulator instead of OpenCL, so
// the generated source is exercised by structural tests (parameter macros,
// barrier placement, brace balance) rather than a driver compile; it is
// written to be compilable by a conformant OpenCL 1.2 compiler.
#pragma once

#include <string>
#include <vector>

#include "yaspmv/core/config.hpp"
#include "yaspmv/sim/device.hpp"

namespace yaspmv::codegen {

struct KernelSource {
  std::string name;    ///< kernel entry point
  std::string source;  ///< OpenCL C translation unit
};

/// Emits every kernel required by the configuration, in launch order.
std::vector<KernelSource> generate_opencl(const core::FormatConfig& fc,
                                          const core::ExecConfig& ec,
                                          const sim::DeviceSpec& dev);

/// Key for the compiled-kernel cache: two configurations share a compiled
/// binary iff their keys are equal.
std::string cache_key(const core::FormatConfig& fc,
                      const core::ExecConfig& ec);

/// CUDA C translation of the generated kernels (the paper's framework
/// shipped both OpenCL and CUDA back ends).  Produced by a deterministic
/// token-level translation of the OpenCL source: address-space qualifiers,
/// barriers/fences, work-item builtins and atomics are rewritten; the
/// kernel logic is character-identical.
std::vector<KernelSource> generate_cuda(const core::FormatConfig& fc,
                                        const core::ExecConfig& ec,
                                        const sim::DeviceSpec& dev);

/// The translation pass itself (exposed for testing).
std::string opencl_to_cuda(const std::string& opencl_source);

}  // namespace yaspmv::codegen
