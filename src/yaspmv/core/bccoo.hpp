// The BCCOO / BCCOO+ sparse-matrix format (Sections 2.2 and 2.3).
//
// BCCOO extends blocked COO by replacing the per-block row-index array with
// a bit-flag array: bit i is 0 iff block i is the last non-zero block of its
// block-row ("row stop").  The compression is lossless — row indices are the
// running count of row stops — and shrinks the row-index storage by the
// word-width factor (32x for int indices).
//
// BCCOO+ additionally partitions the matrix into vertical slices stacked
// top-down before blocking, which concentrates the column range touched by
// consecutive blocks and therefore the multiplied-vector cache locality.
// Column indices remain *original-matrix* block coordinates so the kernel
// can index the multiplied vector directly; a combine kernel later sums the
// per-slice partial results (Figure 5).
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <vector>

#include "yaspmv/core/config.hpp"
#include "yaspmv/core/status.hpp"
#include "yaspmv/formats/coo.hpp"
#include "yaspmv/util/bitops.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::core {

struct Bccoo {
  // Original matrix shape.
  index_t rows = 0;
  index_t cols = 0;

  FormatConfig cfg;

  index_t block_rows = 0;    ///< ceil(rows / block_h) (per slice-stacked row)
  index_t block_cols = 0;    ///< ceil(cols / block_w), original coordinates
  index_t stacked_block_rows = 0;  ///< block-rows of the slice-stacked matrix

  std::size_t num_blocks = 0;  ///< non-zero blocks (before kernel padding)

  /// Bit i = 0 iff block i ends its block-row (row stop).  Length num_blocks.
  BitArray bit_flags;

  /// Block-column index per block, in *original matrix* coordinates (so
  /// y-block = col_index[i] * block_w works for both BCCOO and BCCOO+).
  std::vector<index_t> col_index;

  /// block_h value arrays; value_rows[r][i*block_w + c] is element (r, c) of
  /// block i (Figure 3's two value arrays for a 2x2 block size).
  std::vector<std::vector<real_t>> value_rows;

  /// segment ordinal -> block-row in the slice-stacked matrix.  The paper's
  /// matrices have no empty rows so this is the identity there; we
  /// materialize it to support arbitrary inputs (DESIGN.md "Known
  /// deviations").  Size = number of segments (= row stops).
  std::vector<index_t> seg_to_block_row;

  /// True when seg_to_block_row is the identity (no empty block-rows).
  bool identity_segments = true;

  std::size_t num_segments() const { return seg_to_block_row.size(); }

  /// Builds BCCOO (cfg.slices == 1) or BCCOO+ (cfg.slices > 1) from a
  /// canonical COO matrix.
  static Bccoo build(const fmt::Coo& a, const FormatConfig& cfg) {
    require(cfg.block_w > 0 && cfg.block_h > 0, "BCCOO: bad block dims");
    require(cfg.slices >= 1, "BCCOO: slices must be >= 1");
    Bccoo m;
    m.rows = a.rows;
    m.cols = a.cols;
    m.cfg = cfg;
    m.block_rows = ceil_div(a.rows, cfg.block_h);
    m.block_cols = ceil_div(a.cols, cfg.block_w);
    m.stacked_block_rows = m.block_rows * cfg.slices;

    // Slice width in block-columns: slices are aligned to block boundaries
    // so every block falls into exactly one slice.
    const index_t slice_bcols = ceil_div(m.block_cols, cfg.slices);

    // Bucket non-zeros by (slice, block_row, block_col).  COO is canonical
    // (row-major), so one pass with an ordered map keyed by the stacked
    // block-row produces blocks in stacked order.
    std::map<std::pair<index_t, index_t>, std::vector<real_t>> blocks;
    const std::size_t bsz = static_cast<std::size_t>(cfg.block_w) *
                            static_cast<std::size_t>(cfg.block_h);
    for (std::size_t i = 0; i < a.nnz(); ++i) {
      const index_t brow = a.row_idx[i] / cfg.block_h;
      const index_t bcol = a.col_idx[i] / cfg.block_w;
      const index_t slice = bcol / slice_bcols;
      const index_t stacked_brow = slice * m.block_rows + brow;
      auto& blk = blocks[{stacked_brow, bcol}];
      if (blk.empty()) blk.assign(bsz, 0.0);
      const index_t lr = a.row_idx[i] - brow * cfg.block_h;
      const index_t lc = a.col_idx[i] - bcol * cfg.block_w;
      blk[static_cast<std::size_t>(lr) * static_cast<std::size_t>(cfg.block_w) +
          static_cast<std::size_t>(lc)] = a.vals[i];
    }

    m.num_blocks = blocks.size();
    m.bit_flags = BitArray(m.num_blocks, true);
    m.col_index.reserve(m.num_blocks);
    m.value_rows.assign(static_cast<std::size_t>(cfg.block_h), {});
    for (auto& vr : m.value_rows) {
      vr.reserve(m.num_blocks * static_cast<std::size_t>(cfg.block_w));
    }

    index_t prev_stacked_brow = -1;
    std::size_t blk_i = 0;
    for (auto& [key, blk] : blocks) {
      const auto [stacked_brow, bcol] = key;
      if (stacked_brow != prev_stacked_brow) {
        // Previous block (if any) closed its block-row: mark row stop.
        if (blk_i > 0) m.bit_flags.set(blk_i - 1, false);
        m.seg_to_block_row.push_back(stacked_brow);
        if (stacked_brow !=
            static_cast<index_t>(m.seg_to_block_row.size()) - 1) {
          m.identity_segments = false;
        }
        prev_stacked_brow = stacked_brow;
      }
      m.col_index.push_back(bcol);
      for (index_t lr = 0; lr < cfg.block_h; ++lr) {
        const auto lrz = static_cast<std::size_t>(lr);
        m.value_rows[lrz].insert(
            m.value_rows[lrz].end(),
            blk.begin() + static_cast<std::ptrdiff_t>(
                              lrz * static_cast<std::size_t>(cfg.block_w)),
            blk.begin() + static_cast<std::ptrdiff_t>(
                              (lrz + 1) * static_cast<std::size_t>(cfg.block_w)));
      }
      ++blk_i;
    }
    if (blk_i > 0) m.bit_flags.set(blk_i - 1, false);  // final row stop
    return m;
  }

  /// Structural invariant checker, run before planning (ResilientEngine) and
  /// after deserialization (load_bccoo): every relation the kernels assume
  /// between the arrays must hold, otherwise the SpMV would read out of
  /// bounds or scatter results to the wrong rows.  Throws FormatInvalid with
  /// the violated invariant; NaN/Inf values are rejected unless
  /// `allow_nonfinite` (they would silently poison every segment downstream
  /// of theirs).
  void validate(bool allow_nonfinite = false) const {
    const auto check = [](bool ok, const std::string& what) {
      if (!ok) throw FormatInvalid("Bccoo: " + what);
    };
    check(rows >= 0 && cols >= 0, "negative matrix shape");
    check(cfg.block_w >= 1 && cfg.block_h >= 1, "block dims must be >= 1");
    check(cfg.slices >= 1, "slice count must be >= 1");
    check(block_rows == ceil_div(rows, cfg.block_h),
          "block_rows inconsistent with rows/block_h");
    check(block_cols == ceil_div(cols, cfg.block_w),
          "block_cols inconsistent with cols/block_w");
    check(stacked_block_rows == block_rows * cfg.slices,
          "stacked_block_rows != block_rows * slices");
    check(bit_flags.size() == num_blocks, "bit-flag length != block count");
    check(col_index.size() == num_blocks, "col-index length != block count");
    check(value_rows.size() == static_cast<std::size_t>(cfg.block_h),
          "value-array count != block height");
    const std::size_t row_len =
        num_blocks * static_cast<std::size_t>(cfg.block_w);
    for (const auto& vr : value_rows) {
      check(vr.size() == row_len, "per-row value-array length mismatch");
    }
    // Bit-flag <-> segment relation: row stops (0-bits) enumerate exactly
    // the non-empty block-rows, and the last block always closes its row.
    check(bit_flags.count_zeros() == seg_to_block_row.size(),
          "row-stop count != segment-map length");
    if (num_blocks > 0) {
      check(!bit_flags.get(num_blocks - 1),
            "final block does not terminate its block-row");
    }
    index_t prev = -1;
    for (std::size_t s = 0; s < seg_to_block_row.size(); ++s) {
      const index_t b = seg_to_block_row[s];
      check(b > prev, "segment map not strictly increasing");
      check(b >= 0 && b < stacked_block_rows,
            "segment map entry out of range");
      prev = b;
    }
    if (identity_segments) {
      for (std::size_t s = 0; s < seg_to_block_row.size(); ++s) {
        check(seg_to_block_row[s] == static_cast<index_t>(s),
              "identity_segments set but segment map is not the identity");
      }
    }
    for (const index_t c : col_index) {
      check(c >= 0 && c < block_cols, "block-column index out of range");
    }
    if (!allow_nonfinite) {
      for (const auto& vr : value_rows) {
        for (const real_t v : vr) {
          check(std::isfinite(v), "non-finite block value");
        }
      }
    }
  }

  /// Table 3 footprint model of the stored arrays: packed bit flags +
  /// column indices + zero-filled block values.  `short_col` selects the
  /// Section 4 unsigned-short column-index optimization; `delta_col` the
  /// Section 2.2 int16 delta compression (escapes charged 4 bytes each —
  /// `delta_escapes` of them, computed against a thread-tile segmentation by
  /// the plan; pass 0 to cost pure formats).
  std::size_t footprint_bytes(bool short_col = false, bool delta_col = false,
                              std::size_t delta_escapes = 0) const {
    const std::size_t bf = bit_flags.footprint_bytes(cfg.bf_word);
    std::size_t col;
    if (delta_col) {
      col = num_blocks * bytes::kShortIndex + delta_escapes * bytes::kIndex;
    } else if (short_col) {
      col = num_blocks * bytes::kShortIndex;
    } else {
      col = num_blocks * bytes::kIndex;
    }
    const std::size_t vals = num_blocks *
                             static_cast<std::size_t>(cfg.block_w) *
                             static_cast<std::size_t>(cfg.block_h) *
                             bytes::kValue;
    std::size_t seg = 0;
    if (!identity_segments) seg = seg_to_block_row.size() * bytes::kIndex;
    return bf + col + vals + seg;
  }

  /// Decodes the format back to canonical COO (drops the zero fill inside
  /// blocks).  Together with `build`, proves the whole encoding — bit
  /// flags, slice stacking, column coordinates, per-row value arrays — is
  /// lossless.
  fmt::Coo to_coo() const {
    std::vector<index_t> ri, ci;
    std::vector<real_t> v;
    std::size_t seg = 0;
    index_t stacked_brow =
        num_blocks == 0 ? 0 : seg_to_block_row[0];
    for (std::size_t i = 0; i < num_blocks; ++i) {
      const index_t brow = stacked_brow % block_rows;  // undo slice stack
      for (index_t lr = 0; lr < cfg.block_h; ++lr) {
        const index_t r = brow * cfg.block_h + lr;
        if (r >= rows) continue;
        for (index_t lc = 0; lc < cfg.block_w; ++lc) {
          const index_t c = col_index[i] * cfg.block_w + lc;
          if (c >= cols) continue;
          const real_t x =
              value_rows[static_cast<std::size_t>(lr)]
                        [i * static_cast<std::size_t>(cfg.block_w) +
                         static_cast<std::size_t>(lc)];
          if (x != 0.0) {
            ri.push_back(r);
            ci.push_back(c);
            v.push_back(x);
          }
        }
      }
      if (!bit_flags.get(i) && seg + 1 < seg_to_block_row.size()) {
        stacked_brow = seg_to_block_row[++seg];
      }
    }
    return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                   std::move(v));
  }

  /// Reference SpMV straight off the format (host, serial) — used to verify
  /// the format builder independently of the simulated kernels.
  void spmv_reference(std::span<const real_t> x, std::span<real_t> y) const {
    require(x.size() == static_cast<std::size_t>(cols) &&
                y.size() == static_cast<std::size_t>(rows),
            "BCCOO spmv: vector size mismatch");
    std::fill(y.begin(), y.end(), 0.0);
    std::vector<real_t> acc(static_cast<std::size_t>(cfg.block_h), 0.0);
    std::size_t seg = 0;
    for (std::size_t i = 0; i < num_blocks; ++i) {
      const index_t bcol = col_index[i];
      for (index_t lr = 0; lr < cfg.block_h; ++lr) {
        real_t s = 0.0;
        for (index_t lc = 0; lc < cfg.block_w; ++lc) {
          const index_t c = bcol * cfg.block_w + lc;
          if (c < cols) {
            s += value_rows[static_cast<std::size_t>(lr)]
                           [i * static_cast<std::size_t>(cfg.block_w) +
                            static_cast<std::size_t>(lc)] *
                 x[static_cast<std::size_t>(c)];
          }
        }
        acc[static_cast<std::size_t>(lr)] += s;
      }
      if (!bit_flags.get(i)) {
        const index_t stacked_brow = seg_to_block_row[seg++];
        const index_t brow = stacked_brow % block_rows;  // undo slice stack
        for (index_t lr = 0; lr < cfg.block_h; ++lr) {
          const index_t r = brow * cfg.block_h + lr;
          if (r < rows) {
            y[static_cast<std::size_t>(r)] +=
                acc[static_cast<std::size_t>(lr)];
          }
          acc[static_cast<std::size_t>(lr)] = 0.0;
        }
      }
    }
  }
};

}  // namespace yaspmv::core
