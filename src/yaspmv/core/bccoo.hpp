// The BCCOO / BCCOO+ sparse-matrix format (Sections 2.2 and 2.3).
//
// BCCOO extends blocked COO by replacing the per-block row-index array with
// a bit-flag array: bit i is 0 iff block i is the last non-zero block of its
// block-row ("row stop").  The compression is lossless — row indices are the
// running count of row stops — and shrinks the row-index storage by the
// word-width factor (32x for int indices).
//
// BCCOO+ additionally partitions the matrix into vertical slices stacked
// top-down before blocking, which concentrates the column range touched by
// consecutive blocks and therefore the multiplied-vector cache locality.
// Column indices remain *original-matrix* block coordinates so the kernel
// can index the multiplied vector directly; a combine kernel later sums the
// per-slice partial results (Figure 5).
//
// Column-index compression (Sections 2.2 and 4) is *materialized* here, not
// just charged by the footprint model:
//
//   * `delta_cols` — per-tile int16 deltas (tile = kColTile blocks, the CPU
//     analog of the paper's per-thread tile).  The first entry of a tile is
//     a delta from 0; an entry whose delta does not fit (or equals -1, the
//     escape sentinel) stores kDeltaEscape and reads its absolute column
//     from the 4-byte `delta_escapes` side array.  `delta_escape_start`
//     maps a tile to its first escape ordinal so tiles decode independently.
//   * `short_cols` — absolute u16 columns, present iff block_cols fits.
//
// The streams are derived data: `build` materializes them (in parallel on
// the shared WorkPool) and deserialization rebuilds them, so the binary
// format is unchanged.  The builder itself is also parallel — sort-based
// bucketing over (stacked block-row, block-col) keys with a total order, so
// the output is byte-identical for every worker count.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "yaspmv/core/config.hpp"
#include "yaspmv/core/status.hpp"
#include "yaspmv/formats/coo.hpp"
#include "yaspmv/util/bitops.hpp"
#include "yaspmv/util/common.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv::core {

/// Which materialized column stream a native kernel reads.  kAuto resolves
/// to the smallest stream available (short when block_cols fits, else delta,
/// else the raw 4-byte array).
enum class ColStream : std::uint8_t { kAuto = 0, kRaw = 1, kShort = 2, kDelta = 3 };

inline const char* to_string(ColStream cs) {
  switch (cs) {
    case ColStream::kRaw: return "raw";
    case ColStream::kShort: return "short";
    case ColStream::kDelta: return "delta";
    default: return "auto";
  }
}

struct Bccoo {
  /// Decode-tile size in blocks for the materialized column streams.  CPU
  /// kernel chunks align to this boundary so every tile decodes
  /// independently (its first entry is a delta from 0), and segment pieces
  /// split at tile boundaries in *every* column mode so results are bitwise
  /// identical across raw/short/delta.
  static constexpr std::size_t kColTile = 512;

  // Original matrix shape.
  index_t rows = 0;
  index_t cols = 0;

  FormatConfig cfg;

  index_t block_rows = 0;    ///< ceil(rows / block_h) (per slice-stacked row)
  index_t block_cols = 0;    ///< ceil(cols / block_w), original coordinates
  index_t stacked_block_rows = 0;  ///< block-rows of the slice-stacked matrix

  std::size_t num_blocks = 0;  ///< non-zero blocks (before kernel padding)

  /// Bit i = 0 iff block i ends its block-row (row stop).  Length num_blocks.
  BitArray bit_flags;

  /// Block-column index per block, in *original matrix* coordinates (so
  /// y-block = col_index[i] * block_w works for both BCCOO and BCCOO+).
  std::vector<index_t> col_index;

  /// block_h value arrays; value_rows[r][i*block_w + c] is element (r, c) of
  /// block i (Figure 3's two value arrays for a 2x2 block size).
  std::vector<std::vector<real_t>> value_rows;

  /// segment ordinal -> block-row in the slice-stacked matrix.  The paper's
  /// matrices have no empty rows so this is the identity there; we
  /// materialize it to support arbitrary inputs (DESIGN.md "Known
  /// deviations").  Size = number of segments (= row stops).
  std::vector<index_t> seg_to_block_row;

  /// True when seg_to_block_row is the identity (no empty block-rows).
  bool identity_segments = true;

  // --- materialized compressed column streams (Sections 2.2 and 4) --------
  /// Per-tile int16 deltas; kDeltaEscape entries read `delta_escapes`.
  std::vector<std::int16_t> delta_cols;
  /// Absolute columns of the escaped entries, in stream order.
  std::vector<index_t> delta_escapes;
  /// Per-tile first escape ordinal (length num_col_tiles() + 1), so a tile
  /// decodes without scanning its predecessors.
  std::vector<std::uint32_t> delta_escape_start;
  /// Absolute u16 columns; empty unless block_cols <= 65535.
  std::vector<std::uint16_t> short_cols;
  /// True once the streams above were materialized (build / rebuild).
  bool col_streams_built = false;

  // --- ABFT column-checksum plan (data integrity) -------------------------
  // The classic column-checksum invariant: for any x,
  //     sum(y) == (A^T 1)^T x            (within a computed rounding bound)
  // so a verified apply needs one dot against `checksum_w` plus one sum over
  // y.  `checksum_wabs` = |A|^T 1 feeds the bound (sum of |a_ij| |x_j|), and
  // `checksum_depth` is the longest rounding path any single term can take
  // through either side of the comparison — see core/checksum.hpp for the
  // derivation.  Per-slice checksums are free: slices partition the
  // block-columns contiguously, so slice s's checksum is the dot of
  // `checksum_w` restricted to slice_col_range(s).
  std::vector<real_t> checksum_w;     ///< A^T 1, length cols
  std::vector<real_t> checksum_wabs;  ///< |A|^T 1, length cols
  std::uint64_t checksum_depth = 0;   ///< rounding-path depth for the bound
  bool checksums_built = false;

  bool operator==(const Bccoo&) const = default;

  std::size_t num_segments() const { return seg_to_block_row.size(); }

  std::size_t num_col_tiles() const {
    return num_blocks == 0 ? 0 : ceil_div(num_blocks, kColTile);
  }

  /// Resolves kAuto to the cheapest materialized stream; a concrete request
  /// degrades to kRaw only when the stream is unavailable (short columns on
  /// a matrix wider than 65535 block-columns, or streams not built).
  ColStream resolve_col_stream(ColStream req) const {
    const bool short_ok = col_streams_built && !short_cols.empty();
    const bool delta_ok = col_streams_built && num_blocks > 0;
    switch (req) {
      case ColStream::kRaw: return ColStream::kRaw;
      case ColStream::kShort:
        return short_ok ? ColStream::kShort : ColStream::kRaw;
      case ColStream::kDelta:
        return delta_ok ? ColStream::kDelta : ColStream::kRaw;
      default:
        if (short_ok) return ColStream::kShort;
        if (delta_ok) return ColStream::kDelta;
        return ColStream::kRaw;
    }
  }

  /// Builds BCCOO (cfg.slices == 1) or BCCOO+ (cfg.slices > 1) from a
  /// canonical COO matrix.  `workers` bounds the WorkPool parallelism of the
  /// sort/scatter passes (0 = hardware concurrency); the result is
  /// byte-identical for every value because each pass either writes disjoint
  /// slots or reduces in a fixed enumeration order.
  static Bccoo build(const fmt::Coo& a, const FormatConfig& cfg,
                     unsigned workers = 0) {
    require(cfg.block_w > 0 && cfg.block_h > 0, "BCCOO: bad block dims");
    require(cfg.slices >= 1, "BCCOO: slices must be >= 1");
    if (workers == 0) workers = default_workers();
    Bccoo m;
    m.rows = a.rows;
    m.cols = a.cols;
    m.cfg = cfg;
    m.block_rows = ceil_div(a.rows, cfg.block_h);
    m.block_cols = ceil_div(a.cols, cfg.block_w);
    m.stacked_block_rows = m.block_rows * cfg.slices;

    // Slice width in block-columns: slices are aligned to block boundaries
    // so every block falls into exactly one slice.
    const index_t slice_bcols = ceil_div(m.block_cols, cfg.slices);

    const std::size_t n = a.nnz();
    require(n < (1ull << 32), "BCCOO: nnz exceeds the 32-bit builder limit");
    const std::size_t par_chunks =
        std::max<std::size_t>(1, std::min<std::size_t>(workers * 4, n));

    // ---- pass 1: per-nonzero (stacked block-row, block-col) keys ---------
    std::vector<std::uint64_t> key(n);
    parallel_for_ordered(par_chunks, workers, [&](unsigned, std::size_t c) {
      const std::size_t lo = c * n / par_chunks;
      const std::size_t hi = (c + 1) * n / par_chunks;
      for (std::size_t i = lo; i < hi; ++i) {
        const index_t brow = a.row_idx[i] / cfg.block_h;
        const index_t bcol = a.col_idx[i] / cfg.block_w;
        const index_t slice = bcol / slice_bcols;
        const index_t stacked_brow = slice * m.block_rows + brow;
        key[i] = (static_cast<std::uint64_t>(stacked_brow) << 32) |
                 static_cast<std::uint32_t>(bcol);
      }
    });

    // ---- pass 2: sort non-zeros by key (ties by original index, so the
    // permutation is a total order and therefore unique) -------------------
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
    const auto less = [&](std::uint32_t l, std::uint32_t r) {
      return key[l] != key[r] ? key[l] < key[r] : l < r;
    };
    {
      // Chunked sort + pairwise merges on the pool.  The merge tree shape
      // depends only on `sort_chunks`, and the sorted result is unique under
      // the total order anyway, so any worker count gives the same bytes.
      std::size_t sort_chunks = 1;
      while (sort_chunks < std::min<std::size_t>(workers, 64)) sort_chunks *= 2;
      if (n < 2 * sort_chunks) sort_chunks = 1;
      std::vector<std::size_t> bound(sort_chunks + 1);
      for (std::size_t c = 0; c <= sort_chunks; ++c) {
        bound[c] = c * n / sort_chunks;
      }
      parallel_for_ordered(sort_chunks, workers, [&](unsigned, std::size_t c) {
        std::sort(order.begin() + static_cast<std::ptrdiff_t>(bound[c]),
                  order.begin() + static_cast<std::ptrdiff_t>(bound[c + 1]),
                  less);
      });
      for (std::size_t width = 1; width < sort_chunks; width *= 2) {
        const std::size_t pairs = sort_chunks / (2 * width);
        parallel_for_ordered(pairs, workers, [&](unsigned, std::size_t p) {
          const std::size_t lo = bound[p * 2 * width];
          const std::size_t mid = bound[p * 2 * width + width];
          const std::size_t hi = bound[(p + 1) * 2 * width];
          std::inplace_merge(order.begin() + static_cast<std::ptrdiff_t>(lo),
                             order.begin() + static_cast<std::ptrdiff_t>(mid),
                             order.begin() + static_cast<std::ptrdiff_t>(hi),
                             less);
        });
      }
    }

    // ---- pass 3: block boundaries + block ordinals -----------------------
    // head[i] = 1 iff sorted position i starts a new block; block_of[i] is
    // the running head count (exclusive prefix), computed chunk-local then
    // shifted by a serial O(chunks) prefix.
    std::vector<std::uint32_t> block_of(n);
    std::vector<std::size_t> chunk_heads(par_chunks + 1, 0);
    parallel_for_ordered(par_chunks, workers, [&](unsigned, std::size_t c) {
      const std::size_t lo = c * n / par_chunks;
      const std::size_t hi = (c + 1) * n / par_chunks;
      std::size_t heads = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        if (i == 0 || key[order[i]] != key[order[i - 1]]) ++heads;
        block_of[i] = static_cast<std::uint32_t>(heads);  // 1-based for now
      }
      chunk_heads[c + 1] = heads;
    });
    for (std::size_t c = 0; c < par_chunks; ++c) {
      chunk_heads[c + 1] += chunk_heads[c];
    }
    parallel_for_ordered(par_chunks, workers, [&](unsigned, std::size_t c) {
      const std::size_t lo = c * n / par_chunks;
      const std::size_t hi = (c + 1) * n / par_chunks;
      const auto base = static_cast<std::uint32_t>(chunk_heads[c]);
      for (std::size_t i = lo; i < hi; ++i) block_of[i] += base - 1;
    });
    m.num_blocks = chunk_heads[par_chunks];

    // ---- pass 4: per-block column / stacked block-row, value scatter -----
    const std::size_t nb = m.num_blocks;
    m.col_index.assign(nb, 0);
    std::vector<index_t> sbrow(nb);
    const auto bwz = static_cast<std::size_t>(cfg.block_w);
    m.value_rows.assign(static_cast<std::size_t>(cfg.block_h), {});
    for (auto& vr : m.value_rows) vr.assign(nb * bwz, 0.0);
    parallel_for_ordered(par_chunks, workers, [&](unsigned, std::size_t c) {
      const std::size_t lo = c * n / par_chunks;
      const std::size_t hi = (c + 1) * n / par_chunks;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t src = order[i];
        const std::size_t b = block_of[i];
        if (i == 0 || key[order[i]] != key[order[i - 1]]) {
          m.col_index[b] = static_cast<index_t>(key[src] & 0xFFFFFFFFu);
          sbrow[b] = static_cast<index_t>(key[src] >> 32);
        }
        const index_t lr = a.row_idx[src] % cfg.block_h;
        const index_t lc = a.col_idx[src] % cfg.block_w;
        m.value_rows[static_cast<std::size_t>(lr)]
                    [b * bwz + static_cast<std::size_t>(lc)] = a.vals[src];
      }
    });

    // ---- pass 5: bit flags (word-parallel) + segment map -----------------
    // Block b is a row stop iff the next block starts a new block-row.  Each
    // worker range covers whole 32-bit words, so writes never share a word.
    const std::size_t nwords = (nb + 31) / 32;
    std::vector<std::uint32_t> words(nwords, 0);
    const std::size_t word_chunks =
        std::max<std::size_t>(1, std::min<std::size_t>(workers * 4, nwords));
    parallel_for_ordered(word_chunks, workers, [&](unsigned, std::size_t c) {
      const std::size_t w0 = c * nwords / word_chunks;
      const std::size_t w1 = (c + 1) * nwords / word_chunks;
      for (std::size_t w = w0; w < w1; ++w) {
        std::uint32_t v = 0;
        const std::size_t b0 = w << 5;
        const std::size_t b1 = std::min(b0 + 32, nb);
        for (std::size_t b = b0; b < b1; ++b) {
          const bool stop = (b + 1 == nb) || sbrow[b + 1] != sbrow[b];
          if (!stop) v |= 1u << (b - b0);
        }
        words[w] = v;
      }
    });
    m.bit_flags = BitArray::from_words(nb, std::move(words));

    // Segment map: the stacked block-row of every row stop, in block order.
    m.seg_to_block_row.reserve(nb == 0 ? 0 : 16);
    for (std::size_t b = 0; b < nb; ++b) {
      if (b == 0 || sbrow[b] != sbrow[b - 1]) {
        m.seg_to_block_row.push_back(sbrow[b]);
      }
    }
    m.identity_segments = true;
    for (std::size_t s = 0; s < m.seg_to_block_row.size(); ++s) {
      if (m.seg_to_block_row[s] != static_cast<index_t>(s)) {
        m.identity_segments = false;
        break;
      }
    }

    m.build_col_streams(workers);
    m.build_checksums();
    return m;
  }

  /// Slice width in block-columns (slices partition the block-columns
  /// contiguously; the last slice may be narrower).
  index_t slice_block_cols() const { return ceil_div(block_cols, cfg.slices); }

  /// Original-column half-open range [lo, hi) covered by slice s.  Because
  /// the slices partition the columns, the per-slice checksum dots over
  /// these ranges sum to the global checksum dot.
  std::pair<index_t, index_t> slice_col_range(index_t s) const {
    const auto sb = static_cast<std::int64_t>(slice_block_cols());
    const auto bw = static_cast<std::int64_t>(cfg.block_w);
    const std::int64_t lo = std::min<std::int64_t>(cols, s * sb * bw);
    const std::int64_t hi = std::min<std::int64_t>(cols, (s + 1) * sb * bw);
    return {static_cast<index_t>(lo), static_cast<index_t>(hi)};
  }

  /// Contiguous shard boundaries over the block stream for `nshards`
  /// locality domains: nshards + 1 monotone block indices, interior ones
  /// rounded down to the decode-tile granularity exactly like the executor's
  /// chunk grid.  Blocks are stored slice-major (the vertical slices are
  /// stacked top-down), so equal block ranges are equal *slice-group*
  /// ranges up to one slice of skew — the shard decomposition is a pure
  /// function of the format, never of live thread count, which is what
  /// keeps sharded execution a scheduling-only choice.
  std::vector<std::size_t> shard_block_starts(unsigned nshards) const {
    if (nshards == 0) nshards = 1;
    std::vector<std::size_t> starts(static_cast<std::size_t>(nshards) + 1);
    for (unsigned s = 0; s <= nshards; ++s) {
      std::size_t b = static_cast<std::size_t>(s) * num_blocks / nshards;
      if (s != 0 && s != nshards) b = b / kColTile * kColTile;
      starts[s] = b;
    }
    return starts;
  }

  /// Half-open original-column range [lo, hi) the blocks of [b0, b1) read
  /// from x — a shard's halo.  One scan of the column stream; callers cache
  /// the result (CpuSpmv computes it once per engine for its shard grid).
  std::pair<index_t, index_t> block_col_range(std::size_t b0,
                                              std::size_t b1) const {
    b1 = std::min(b1, num_blocks);
    if (b0 >= b1) return {0, 0};
    index_t bc_lo = col_index[b0], bc_hi = col_index[b0];
    for (std::size_t i = b0 + 1; i < b1; ++i) {
      bc_lo = std::min(bc_lo, col_index[i]);
      bc_hi = std::max(bc_hi, col_index[i]);
    }
    const auto bw = static_cast<std::int64_t>(cfg.block_w);
    const auto lo = static_cast<std::int64_t>(bc_lo) * bw;
    const auto hi =
        std::min<std::int64_t>(cols, (static_cast<std::int64_t>(bc_hi) + 1) * bw);
    return {static_cast<index_t>(std::min<std::int64_t>(lo, cols)),
            static_cast<index_t>(hi)};
  }

  /// Materializes the ABFT column checksums from the stored blocks.  The
  /// accumulation is serial in block order, so the plan is byte-identical
  /// for *every* worker count (stronger than the builder's per-worker-count
  /// contract, and cheap next to the build's sorts: one O(nnz) pass).
  /// Re-running it reproduces the same bytes, which validate() exploits to
  /// localize value-stream corruption.
  void build_checksums() {
    compute_checksums(checksum_w, checksum_wabs, checksum_depth);
    checksums_built = true;
  }

  /// Materializes the compressed column streams from `col_index` (also used
  /// after deserialization — the streams are derived data and are not part
  /// of the binary format).  Tiles encode independently: escape counts per
  /// tile, a serial O(tiles) prefix, then a parallel fill at fixed offsets,
  /// so the streams are byte-identical for every worker count.
  void build_col_streams(unsigned workers = 0) {
    if (workers == 0) workers = default_workers();
    const std::size_t nb = num_blocks;
    const std::size_t nt = num_col_tiles();
    delta_cols.assign(nb, 0);
    delta_escape_start.assign(nt + 1, 0);
    delta_escapes.clear();
    short_cols.clear();

    const auto delta_of = [&](std::size_t i, std::size_t t0) -> std::int64_t {
      const std::int64_t prev =
          i == t0 ? 0 : static_cast<std::int64_t>(col_index[i - 1]);
      return static_cast<std::int64_t>(col_index[i]) - prev;
    };
    parallel_for_ordered(nt, workers, [&](unsigned, std::size_t t) {
      const std::size_t t0 = t * kColTile;
      const std::size_t t1 = std::min(t0 + kColTile, nb);
      std::uint32_t esc = 0;
      for (std::size_t i = t0; i < t1; ++i) {
        const std::int64_t d = delta_of(i, t0);
        if (!fits_short_delta(d) || d == -1) ++esc;
      }
      delta_escape_start[t + 1] = esc;
    });
    for (std::size_t t = 0; t < nt; ++t) {
      delta_escape_start[t + 1] += delta_escape_start[t];
    }
    delta_escapes.assign(delta_escape_start[nt], 0);
    parallel_for_ordered(nt, workers, [&](unsigned, std::size_t t) {
      const std::size_t t0 = t * kColTile;
      const std::size_t t1 = std::min(t0 + kColTile, nb);
      std::size_t e = delta_escape_start[t];
      for (std::size_t i = t0; i < t1; ++i) {
        const std::int64_t d = delta_of(i, t0);
        if (!fits_short_delta(d) || d == -1) {
          delta_cols[i] = kDeltaEscape;
          delta_escapes[e++] = col_index[i];
        } else {
          delta_cols[i] = static_cast<std::int16_t>(d);
        }
      }
    });

    if (block_cols <= 65535) {
      short_cols.resize(nb);
      const std::size_t chunks =
          std::max<std::size_t>(1, std::min<std::size_t>(workers * 4, nb));
      parallel_for_ordered(chunks, workers, [&](unsigned, std::size_t c) {
        const std::size_t lo = c * nb / chunks;
        const std::size_t hi = (c + 1) * nb / chunks;
        for (std::size_t i = lo; i < hi; ++i) {
          short_cols[i] = static_cast<std::uint16_t>(col_index[i]);
        }
      });
    }
    col_streams_built = true;
  }

  /// Structural invariant checker, run before planning (ResilientEngine) and
  /// after deserialization (load_bccoo): every relation the kernels assume
  /// between the arrays must hold, otherwise the SpMV would read out of
  /// bounds or scatter results to the wrong rows.  Throws FormatInvalid with
  /// the violated invariant; NaN/Inf values are rejected unless
  /// `allow_nonfinite` (they would silently poison every segment downstream
  /// of theirs).
  void validate(bool allow_nonfinite = false) const {
    const auto check = [](bool ok, const std::string& what) {
      if (!ok) throw FormatInvalid("Bccoo: " + what);
    };
    check(rows >= 0 && cols >= 0, "negative matrix shape");
    check(cfg.block_w >= 1 && cfg.block_h >= 1, "block dims must be >= 1");
    check(cfg.slices >= 1, "slice count must be >= 1");
    check(block_rows == ceil_div(rows, cfg.block_h),
          "block_rows inconsistent with rows/block_h");
    check(block_cols == ceil_div(cols, cfg.block_w),
          "block_cols inconsistent with cols/block_w");
    check(stacked_block_rows == block_rows * cfg.slices,
          "stacked_block_rows != block_rows * slices");
    check(bit_flags.size() == num_blocks, "bit-flag length != block count");
    check(col_index.size() == num_blocks, "col-index length != block count");
    check(value_rows.size() == static_cast<std::size_t>(cfg.block_h),
          "value-array count != block height");
    const std::size_t row_len =
        num_blocks * static_cast<std::size_t>(cfg.block_w);
    for (const auto& vr : value_rows) {
      check(vr.size() == row_len, "per-row value-array length mismatch");
    }
    // Bit-flag <-> segment relation: row stops (0-bits) enumerate exactly
    // the non-empty block-rows, and the last block always closes its row.
    check(bit_flags.count_zeros() == seg_to_block_row.size(),
          "row-stop count != segment-map length");
    if (num_blocks > 0) {
      check(!bit_flags.get(num_blocks - 1),
            "final block does not terminate its block-row");
    }
    index_t prev = -1;
    for (std::size_t s = 0; s < seg_to_block_row.size(); ++s) {
      const index_t b = seg_to_block_row[s];
      check(b > prev, "segment map not strictly increasing");
      check(b >= 0 && b < stacked_block_rows,
            "segment map entry out of range");
      prev = b;
    }
    if (identity_segments) {
      for (std::size_t s = 0; s < seg_to_block_row.size(); ++s) {
        check(seg_to_block_row[s] == static_cast<index_t>(s),
              "identity_segments set but segment map is not the identity");
      }
    }
    for (const index_t c : col_index) {
      check(c >= 0 && c < block_cols, "block-column index out of range");
    }
    if (col_streams_built) validate_col_streams(check);
    if (checksums_built) validate_checksums(check);
    if (!allow_nonfinite) {
      for (const auto& vr : value_rows) {
        for (const real_t v : vr) {
          check(std::isfinite(v), "non-finite block value");
        }
      }
    }
  }

  /// Exact bytes a native kernel loads from the stored format per SpMV under
  /// column stream `cs` (host-side widths: 8-byte values, 4-byte indices,
  /// the physical u32 bit-flag words).  This is the *measured* side of the
  /// modeled-vs-measured comparison — escapes counted from the materialized
  /// stream, not estimated.
  std::size_t traffic_bytes(ColStream cs) const {
    const ColStream r = resolve_col_stream(cs);
    std::size_t col;
    if (r == ColStream::kDelta) {
      col = num_blocks * sizeof(std::int16_t) +
            delta_escapes.size() * sizeof(index_t) +
            delta_escape_start.size() * sizeof(std::uint32_t);
    } else if (r == ColStream::kShort) {
      col = num_blocks * sizeof(std::uint16_t);
    } else {
      col = num_blocks * sizeof(index_t);
    }
    const std::size_t vals = num_blocks *
                             static_cast<std::size_t>(cfg.block_w) *
                             static_cast<std::size_t>(cfg.block_h) *
                             sizeof(real_t);
    std::size_t seg = 0;
    if (!identity_segments) seg = seg_to_block_row.size() * sizeof(index_t);
    return bit_flags.words().size() * sizeof(std::uint32_t) + col + vals + seg;
  }

  /// Table 3 footprint model of the stored arrays: packed bit flags +
  /// column indices + zero-filled block values.  `short_col` selects the
  /// Section 4 unsigned-short column-index optimization; `delta_col` the
  /// Section 2.2 int16 delta compression (escapes charged 4 bytes each —
  /// `delta_escapes` of them, computed against a thread-tile segmentation by
  /// the plan; pass 0 to cost pure formats).
  std::size_t footprint_bytes(bool short_col = false, bool delta_col = false,
                              std::size_t model_escapes = 0) const {
    const std::size_t bf = bit_flags.footprint_bytes(cfg.bf_word);
    std::size_t col;
    if (delta_col) {
      col = num_blocks * bytes::kShortIndex + model_escapes * bytes::kIndex;
    } else if (short_col) {
      col = num_blocks * bytes::kShortIndex;
    } else {
      col = num_blocks * bytes::kIndex;
    }
    const std::size_t vals = num_blocks *
                             static_cast<std::size_t>(cfg.block_w) *
                             static_cast<std::size_t>(cfg.block_h) *
                             bytes::kValue;
    std::size_t seg = 0;
    if (!identity_segments) seg = seg_to_block_row.size() * bytes::kIndex;
    return bf + col + vals + seg;
  }

  /// Decodes the format back to canonical COO (drops the zero fill inside
  /// blocks).  Together with `build`, proves the whole encoding — bit
  /// flags, slice stacking, column coordinates, per-row value arrays — is
  /// lossless.
  fmt::Coo to_coo() const {
    std::vector<index_t> ri, ci;
    std::vector<real_t> v;
    std::size_t seg = 0;
    index_t stacked_brow =
        num_blocks == 0 ? 0 : seg_to_block_row[0];
    for (std::size_t i = 0; i < num_blocks; ++i) {
      const index_t brow = stacked_brow % block_rows;  // undo slice stack
      for (index_t lr = 0; lr < cfg.block_h; ++lr) {
        const index_t r = brow * cfg.block_h + lr;
        if (r >= rows) continue;
        for (index_t lc = 0; lc < cfg.block_w; ++lc) {
          const index_t c = col_index[i] * cfg.block_w + lc;
          if (c >= cols) continue;
          const real_t x =
              value_rows[static_cast<std::size_t>(lr)]
                        [i * static_cast<std::size_t>(cfg.block_w) +
                         static_cast<std::size_t>(lc)];
          if (x != 0.0) {
            ri.push_back(r);
            ci.push_back(c);
            v.push_back(x);
          }
        }
      }
      if (!bit_flags.get(i) && seg + 1 < seg_to_block_row.size()) {
        stacked_brow = seg_to_block_row[++seg];
      }
    }
    return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                   std::move(v));
  }

  /// Reference SpMV straight off the format (host, serial) — used to verify
  /// the format builder independently of the simulated kernels.
  void spmv_reference(std::span<const real_t> x, std::span<real_t> y) const {
    require(x.size() == static_cast<std::size_t>(cols) &&
                y.size() == static_cast<std::size_t>(rows),
            "BCCOO spmv: vector size mismatch");
    std::fill(y.begin(), y.end(), 0.0);
    std::vector<real_t> acc(static_cast<std::size_t>(cfg.block_h), 0.0);
    std::size_t seg = 0;
    for (std::size_t i = 0; i < num_blocks; ++i) {
      const index_t bcol = col_index[i];
      for (index_t lr = 0; lr < cfg.block_h; ++lr) {
        real_t s = 0.0;
        for (index_t lc = 0; lc < cfg.block_w; ++lc) {
          const index_t c = bcol * cfg.block_w + lc;
          if (c < cols) {
            s += value_rows[static_cast<std::size_t>(lr)]
                           [i * static_cast<std::size_t>(cfg.block_w) +
                            static_cast<std::size_t>(lc)] *
                 x[static_cast<std::size_t>(c)];
          }
        }
        acc[static_cast<std::size_t>(lr)] += s;
      }
      if (!bit_flags.get(i)) {
        const index_t stacked_brow = seg_to_block_row[seg++];
        const index_t brow = stacked_brow % block_rows;  // undo slice stack
        for (index_t lr = 0; lr < cfg.block_h; ++lr) {
          const index_t r = brow * cfg.block_h + lr;
          if (r < rows) {
            y[static_cast<std::size_t>(r)] +=
                acc[static_cast<std::size_t>(lr)];
          }
          acc[static_cast<std::size_t>(lr)] = 0.0;
        }
      }
    }
  }

 private:
  /// Serial checksum accumulation in block order — the one definition both
  /// build_checksums and validate_checksums run, so a revalidation must
  /// reproduce the stored plan bit for bit.
  void compute_checksums(std::vector<real_t>& w, std::vector<real_t>& wabs,
                         std::uint64_t& depth) const {
    const auto nc = static_cast<std::size_t>(cols);
    w.assign(nc, 0.0);
    wabs.assign(nc, 0.0);
    std::vector<std::uint32_t> col_nnz(nc, 0);
    const auto bw = static_cast<std::size_t>(cfg.block_w);
    for (std::size_t i = 0; i < num_blocks; ++i) {
      const std::size_t cbase = static_cast<std::size_t>(col_index[i]) * bw;
      for (std::size_t lc = 0; lc < bw && cbase + lc < nc; ++lc) {
        const std::size_t c = cbase + lc;
        for (const auto& vr : value_rows) {
          const real_t v = vr[i * bw + lc];
          if (v != 0.0) {
            w[c] += v;
            wabs[c] += std::abs(v);
            ++col_nnz[c];
          }
        }
      }
    }
    // Longest rounding path of any single term: the longest segmented-sum
    // run (in scalar slots) on the apply side, the fullest column on the
    // checksum side, plus the final reductions over y (rows) and the
    // checksum dot (cols).  Upper bounds throughout — the bound consumer
    // multiplies by eps, so slack here only loosens, never tightens.
    const auto bh = static_cast<std::uint64_t>(cfg.block_h);
    std::uint64_t max_seg_blocks = 0, run = 0;
    for (std::size_t i = 0; i < num_blocks; ++i) {
      ++run;
      if (!bit_flags.get(i)) {
        max_seg_blocks = std::max(max_seg_blocks, run);
        run = 0;
      }
    }
    std::uint64_t max_col = 0;
    for (const std::uint32_t n : col_nnz) {
      max_col = std::max<std::uint64_t>(max_col, n);
    }
    depth = max_seg_blocks * bw * bh + max_col +
            static_cast<std::uint64_t>(rows) +
            static_cast<std::uint64_t>(cols) + 16;
  }

  /// Recomputes the checksum plan (serial, same order as build_checksums, so
  /// the bytes must match exactly — including NaN payloads, hence memcmp)
  /// and compares.  A mismatch means either the value stream or the stored
  /// checksums were corrupted after the build; either way the format cannot
  /// be trusted and the caller rebuilds from source.
  template <class Check>
  void validate_checksums(const Check& check) const {
    const auto nc = static_cast<std::size_t>(cols);
    check(checksum_w.size() == nc, "checksum plan length != cols");
    check(checksum_wabs.size() == nc, "checksum |A| plan length != cols");
    std::vector<real_t> w, wabs;
    std::uint64_t depth = 0;
    compute_checksums(w, wabs, depth);
    const auto same = [](const std::vector<real_t>& a,
                         const std::vector<real_t>& b) {
      return a.size() == b.size() &&
             (a.empty() ||
              std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
    };
    check(same(w, checksum_w),
          "column checksum w does not match the value stream");
    check(same(wabs, checksum_wabs),
          "column checksum |w| does not match the value stream");
    check(depth == checksum_depth,
          "checksum rounding depth does not match the format");
  }

  template <class Check>
  void validate_col_streams(const Check& check) const {
    const std::size_t nb = num_blocks;
    const std::size_t nt = num_col_tiles();
    check(delta_cols.size() == nb, "delta stream length != block count");
    check(delta_escape_start.size() == nt + 1,
          "delta escape index not aligned to the col tiles");
    check(nt == 0 || delta_escape_start.front() == 0,
          "delta escape index does not start at 0");
    for (std::size_t t = 0; t < nt; ++t) {
      check(delta_escape_start[t] <= delta_escape_start[t + 1],
            "delta escape index not monotone");
    }
    check((nt == 0 ? 0 : delta_escape_start.back()) == delta_escapes.size(),
          "delta escape count != side-array length");
    for (const index_t c : delta_escapes) {
      check(c >= 0 && c < block_cols, "delta escape column out of range");
    }
    // Per-tile reconstruction: decoding every tile through the same rule the
    // kernels use must reproduce col_index exactly, consuming exactly the
    // tile's escape range.
    for (std::size_t t = 0; t < nt; ++t) {
      const std::size_t t0 = t * kColTile;
      const std::size_t t1 = std::min(t0 + kColTile, nb);
      index_t prev = 0;
      std::size_t e = delta_escape_start[t];
      for (std::size_t i = t0; i < t1; ++i) {
        const std::int16_t d = delta_cols[i];
        if (d == kDeltaEscape) {
          check(e < delta_escape_start[t + 1],
                "delta escape overruns its tile's side-array range");
          prev = delta_escapes[e++];
        } else {
          prev += static_cast<index_t>(d);
        }
        check(prev == col_index[i],
              "delta reconstruction mismatch at block " + std::to_string(i));
      }
      check(e == delta_escape_start[t + 1],
            "tile consumed fewer escapes than its side-array range");
    }
    if (block_cols <= 65535) {
      check(short_cols.size() == nb,
            "short-column stream missing though block_cols fits u16");
      for (std::size_t i = 0; i < nb; ++i) {
        check(static_cast<index_t>(short_cols[i]) == col_index[i],
              "short-column stream mismatch at block " + std::to_string(i));
      }
    } else {
      check(short_cols.empty(),
            "short-column stream present though block_cols exceeds u16");
    }
  }
};

}  // namespace yaspmv::core
