// ABFT checksum verification for BCCOO applies (data-integrity subsystem).
//
// The invariant: for y = A x, the column-checksum identity
//
//     sum(y) == (A^T 1)^T x == checksum_w . x
//
// holds exactly in real arithmetic.  In floating point the two sides differ
// by rounding, so the verified apply compares them against a *computed*
// bound, never a magic epsilon:
//
//     |sum(y) - checksum_w . x| <= kChecksumSlack * depth * eps * Babs
//
// where Babs = checksum_wabs . |x| = sum_ij |a_ij| |x_j| and `depth` is the
// longest rounding path any single term a_ij * x_j can take through either
// side of the comparison — NOT the total flop count.  Standard forward error
// analysis of summation gives |fl(sum) - sum| <= (n-1) * eps * sum|terms| at
// first order, where n is the number of additions a term passes through; the
// format's stored `checksum_depth` adds the worst such n on the apply side
// (longest segmented-sum run), the checksum side (fullest column), and the
// final reductions over y and the checksum dot.  kChecksumSlack absorbs the
// second-order terms, FMA/lane-order differences between kernels, and the
// combine pass.  Everything on the right-hand side is deterministic for a
// fixed format + x, so the bound is bitwise reproducible like the apply.
//
// A single flipped bit that perturbs the result by *less* than this bound is
// indistinguishable from legal rounding — and, by the same inequality,
// harmless at the accuracy the apply promises.  Flips above the bound (high
// mantissa, exponent, sign bits) are detected; tests/integrity_test.cpp
// measures the coverage.
//
// The comparison is written `!(delta <= bound)` so NaN/Inf corruption (which
// makes delta NaN) also detects.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/core/status.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::core {

/// Slack multiplier on the first-order rounding bound (second-order terms,
/// kernel lane-order variation, the slice-combine pass).
inline constexpr double kChecksumSlack = 8.0;

struct ChecksumReport {
  double lhs = 0.0;    ///< sum(y)
  double rhs = 0.0;    ///< checksum_w . x
  double delta = 0.0;  ///< |lhs - rhs|; NaN when either side is non-finite
  double bound = 0.0;  ///< computed rounding bound for this (format, x)
  int slice = -1;      ///< slice whose partial tripped, when attributable

  /// NaN-safe acceptance: a NaN delta never passes.
  bool ok() const { return delta <= bound; }

  std::string message() const {
    std::string m = "checksum delta " + std::to_string(delta) +
                    " exceeds bound " + std::to_string(bound) + " (sum(y)=" +
                    std::to_string(lhs) + ", w.x=" + std::to_string(rhs) + ")";
    if (slice >= 0) m += " in slice " + std::to_string(slice);
    return m;
  }
};

/// The rounding bound for an apply of `f` whose absolute term mass is
/// `babs` = sum_ij |a_ij| |x_j|.
inline double checksum_bound(const Bccoo& f, double babs) {
  return kChecksumSlack * static_cast<double>(f.checksum_depth) *
         std::numeric_limits<real_t>::epsilon() * babs;
}

/// The x-side half of a verification, reusable across repeated checks of
/// the same (format, x) pair: the checksum dot w.x and the bound mass
/// |w|.|x| depend only on the format's plan and x, not on y — a retrying
/// caller (ResilientEngine) computes them once per x and re-verifies each
/// attempt's y against the cached pair at O(rows) instead of O(rows+cols).
struct ChecksumDots {
  double rhs = 0.0;   ///< checksum_w . x
  double babs = 0.0;  ///< checksum_wabs . |x|
};

/// Computes the x-side dots (same serial loop order as verify_apply, so a
/// cached-dots verification is bitwise identical to the one-shot form).
inline ChecksumDots checksum_dots(const Bccoo& f, std::span<const real_t> x) {
  require(f.checksums_built, "checksum verify: plan not built");
  require(x.size() == static_cast<std::size_t>(f.cols),
          "checksum verify: vector size mismatch");
  ChecksumDots d;
  for (std::size_t j = 0; j < x.size(); ++j) {
    d.rhs += f.checksum_w[j] * x[j];
    d.babs += f.checksum_wabs[j] * std::abs(x[j]);
  }
  return d;
}

/// Verification of y against precomputed x-side dots (the y-side half of
/// verify_apply).  `x` is still needed for the failure-path slice
/// attribution; the fault-free path never touches it.
inline ChecksumReport verify_apply_with(const Bccoo& f,
                                        const ChecksumDots& dots,
                                        std::span<const real_t> x,
                                        std::span<const real_t> y,
                                        std::span<const real_t> partials = {}) {
  require(f.checksums_built, "checksum verify: plan not built");
  require(x.size() == static_cast<std::size_t>(f.cols) &&
              y.size() == static_cast<std::size_t>(f.rows),
          "checksum verify: vector size mismatch");
  ChecksumReport rep;
  double s = 0.0;
  for (const real_t v : y) s += v;
  rep.lhs = s;
  rep.rhs = dots.rhs;
  rep.delta = std::abs(s - dots.rhs);
  rep.bound = checksum_bound(f, dots.babs);
  const auto bh = static_cast<std::size_t>(f.cfg.block_h);
  const std::size_t slice_rows = static_cast<std::size_t>(f.block_rows) * bh;
  if (!rep.ok() && f.cfg.slices > 1 &&
      partials.size() ==
          static_cast<std::size_t>(f.stacked_block_rows) * bh) {
    double worst = 0.0;
    for (index_t sl = 0; sl < f.cfg.slices; ++sl) {
      double ps = 0.0;
      const std::size_t lo = static_cast<std::size_t>(sl) * slice_rows;
      for (std::size_t r = lo; r < lo + slice_rows; ++r) ps += partials[r];
      const auto [clo, chi] = f.slice_col_range(sl);
      double pc = 0.0, pb = 0.0;
      for (index_t j = clo; j < chi; ++j) {
        const auto jj = static_cast<std::size_t>(j);
        pc += f.checksum_w[jj] * x[jj];
        pb += f.checksum_wabs[jj] * std::abs(x[jj]);
      }
      const double d = std::abs(ps - pc);
      const double excess = d - checksum_bound(f, pb);
      if (!(excess <= worst)) {  // NaN-safe: a NaN excess wins
        worst = excess;
        rep.slice = static_cast<int>(sl);
      }
    }
  }
  return rep;
}

/// Serial reference verification of y against the checksum plan (the CPU
/// backend carries a SIMD twin inside CpuSpmv::spmv_verified; this one
/// serves the resilient engine, the server and the tests).  Composed from
/// checksum_dots + verify_apply_with, so a caller caching the dots gets
/// bit-identical reports.  When the caller can supply the pre-combine
/// per-slice partial results (length stacked_block_rows * block_h, e.g.
/// SpmvEngine::partials()), a failed check is attributed to the slice whose
/// partial sum disagrees most with its per-slice checksum — free, because
/// the slices partition the columns.
inline ChecksumReport verify_apply(const Bccoo& f, std::span<const real_t> x,
                                   std::span<const real_t> y,
                                   std::span<const real_t> partials = {}) {
  return verify_apply_with(f, checksum_dots(f, x), x, y, partials);
}

/// Convenience: verify and throw IntegrityFault on mismatch.
inline ChecksumReport verify_apply_or_throw(
    const Bccoo& f, std::span<const real_t> x, std::span<const real_t> y,
    std::span<const real_t> partials = {}, const std::string& context = "") {
  ChecksumReport rep = verify_apply(f, x, y, partials);
  if (!rep.ok()) {
    throw IntegrityFault(context.empty() ? rep.message()
                                         : context + ": " + rep.message());
  }
  return rep;
}

}  // namespace yaspmv::core
