// Configuration records for the BCCOO/BCCOO+ SpMV pipeline — together these
// are exactly the tunable-parameter space of Table 1.
#pragma once

#include <cstdint>
#include <string>

#include "yaspmv/util/bitops.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::core {

/// Which intra-workgroup partial-sum strategy to run (Section 3.2.2).
enum class Strategy : std::uint8_t {
  kIntermediateSums = 1,  ///< strategy 1: per-thread intermediate_sums buffer
  kResultCache = 2,       ///< strategy 2: per-workgroup result cache
};

/// When the transpose of the value/col arrays happens (Section 3.2.2).
enum class Transpose : std::uint8_t {
  kOffline,  ///< arrays pre-transposed on the host: coalesced global loads
  kOnline,   ///< kernel stages tiles through shared memory
};

/// Format-construction parameters (the part of Table 1 that changes the
/// stored bytes).
struct FormatConfig {
  index_t block_w = 1;  ///< Table 1: 1, 2, 4
  index_t block_h = 1;  ///< Table 1: 1, 2, 3, 4
  BitFlagWord bf_word = BitFlagWord::kU16;
  index_t slices = 1;   ///< 1 = BCCOO; >1 = BCCOO+ vertical slices

  bool is_plus() const { return slices > 1; }

  bool operator==(const FormatConfig&) const = default;

  std::string to_string() const {
    return "bw=" + std::to_string(block_w) + " bh=" + std::to_string(block_h) +
           " bf=u" + std::to_string(static_cast<int>(bf_word)) +
           " slices=" + std::to_string(slices);
  }
};

/// Kernel-execution parameters (the rest of Table 1 plus the staging flags
/// used by the Figure 14 breakdown).
struct ExecConfig {
  Strategy strategy = Strategy::kResultCache;
  int workgroup_size = 64;   ///< Table 1: 64, 128, 256, 512
  int thread_tile = 8;       ///< non-zero blocks per thread; strategy 1:
                             ///< Reg_size + ShM_size
  int shm_tile = 0;          ///< strategy 1: portion of the tile kept in
                             ///< shared memory (rest in registers)
  int result_cache_multiple = 1;  ///< strategy 2: cache entries / wg size
  Transpose transpose = Transpose::kOffline;
  bool use_texture = true;
  bool compress_col_delta = false;  ///< Section 2.2 int16 delta compression
  bool short_col_index = true;      ///< Section 4: u16 col idx if cols<65535
  bool adjacent_sync = true;  ///< false = two-kernel global synchronization
  bool skip_scan_opt = true;  ///< fine-grain opt (b): skip the parallel scan
  bool logical_ids = false;   ///< fetch workgroup ids via global atomic
  unsigned workers = 1;       ///< simulator dispatch threads

  bool operator==(const ExecConfig&) const = default;

  /// Non-zero blocks processed per workgroup.
  std::size_t workgroup_tile() const {
    return static_cast<std::size_t>(workgroup_size) *
           static_cast<std::size_t>(thread_tile);
  }

  std::string to_string() const {
    return std::string("s") +
           (strategy == Strategy::kIntermediateSums ? "1" : "2") +
           " wg=" + std::to_string(workgroup_size) +
           " tile=" + std::to_string(thread_tile) +
           (strategy == Strategy::kResultCache
                ? " cache=" + std::to_string(result_cache_multiple)
                : " shm=" + std::to_string(shm_tile)) +
           (transpose == Transpose::kOffline ? " offT" : " onT") +
           (use_texture ? " tex" : " notex") +
           (compress_col_delta ? " dcol" : "") + (short_col_index ? " scol" : "");
  }
};

}  // namespace yaspmv::core
