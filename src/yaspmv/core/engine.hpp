// SpmvEngine — the public entry point of the yaSpMV pipeline.
//
//   fmt::Coo a = ...;
//   core::SpmvEngine eng(a, format_cfg, exec_cfg, sim::gtx680());
//   auto r = eng.run(x, y);            // y = A*x, r.stats has the counters
//
// The engine owns the BCCOO/BCCOO+ format and its execution plan, manages
// the padded device buffers, launches the main kernel (plus the carry kernel
// under global synchronization and the combine kernel for BCCOO+), and
// aggregates the per-launch statistics for the performance model.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/core/config.hpp"
#include "yaspmv/core/kernels.hpp"
#include "yaspmv/core/plan.hpp"
#include "yaspmv/sim/adjacent.hpp"
#include "yaspmv/sim/device.hpp"
#include "yaspmv/sim/fault.hpp"

namespace yaspmv::core {

struct SpmvRun {
  sim::KernelStats stats;   ///< aggregated over all launches
  int launches = 0;         ///< kernel count (1 with adjacent sync, BCCOO)
};

class SpmvEngine {
 public:
  SpmvEngine(const fmt::Coo& a, const FormatConfig& fc, const ExecConfig& ec,
             sim::DeviceSpec dev)
      : SpmvEngine(std::make_shared<const Bccoo>(Bccoo::build(a, fc)), ec,
                   std::move(dev)) {}

  /// Uses a pre-built (possibly cached) format — the auto-tuner shares one
  /// Bccoo across every ExecConfig it evaluates.
  SpmvEngine(std::shared_ptr<const Bccoo> fmt_in, const ExecConfig& ec,
             sim::DeviceSpec dev)
      : dev_(std::move(dev)),
        fmt_ptr_(std::move(fmt_in)),
        plan_(BccooPlan::build(*fmt_ptr_, ec)) {
    const Bccoo& f = *fmt_ptr_;
    const auto bw = static_cast<std::size_t>(f.cfg.block_w);
    xp_.resize(static_cast<std::size_t>(f.block_cols) * bw, 0.0);
    res_.resize(static_cast<std::size_t>(f.stacked_block_rows) *
                    static_cast<std::size_t>(f.cfg.block_h),
                0.0);
  }

  const Bccoo& format() const { return *fmt_ptr_; }
  const BccooPlan& plan() const { return plan_; }
  const sim::DeviceSpec& device() const { return dev_; }

  /// Attaches a fault injector (nullptr detaches).  The engine does not own
  /// it; the fault-free path stays a single null check per injection site.
  void set_fault_injector(sim::FaultInjector* fault) { fault_ = fault; }
  sim::FaultInjector* fault_injector() const { return fault_; }

  /// Attaches a flight recorder (nullptr detaches).  Non-owning, same
  /// pattern as the fault injector: every simulator site (dispatch tickets,
  /// phases, Grp_sum publish/wait) journals through it, and an attached
  /// ReplayCoordinator turns those sites into schedule gates.
  void set_recorder(sim::FlightRecorder* recorder) { recorder_ = recorder; }
  sim::FlightRecorder* recorder() const { return recorder_; }

  /// Total bytes the kernel streams once per SpMV (Table 3 accounting).
  std::size_t footprint_bytes() const { return plan_.footprint_bytes(); }

  /// Stacked per-slice partial results of the most recent run (the combine
  /// kernel's input).  The checksum verifier reads them to attribute an
  /// integrity fault to the slice whose partial sums tripped the bound.
  std::span<const real_t> partials() const { return res_; }

  /// y = A * x through the simulated pipeline.
  SpmvRun run(std::span<const real_t> x, std::span<real_t> y) {
    require(x.size() == static_cast<std::size_t>(fmt().cols) &&
                y.size() == static_cast<std::size_t>(fmt().rows),
            "SpmvEngine::run: vector size mismatch");
    std::copy(x.begin(), x.end(), xp_.begin());
    std::fill(xp_.begin() + static_cast<std::ptrdiff_t>(x.size()), xp_.end(),
              0.0);

    SpmvRun out;
    const bool need_zero_init =
        fmt().cfg.slices > 1 || !fmt().identity_segments;
    if (need_zero_init) {
      std::fill(res_.begin(), res_.end(), 0.0);
      // Device memset of the temporary result buffer.
      out.stats.global_store_bytes += res_.size() * bytes::kValue;
    }

    if (plan_.exec.adjacent_sync) {
      sim::AdjacentBuffer grp(static_cast<std::size_t>(plan_.num_workgroups),
                              fmt().cfg.block_h, plan_.exec.workers > 1,
                              fault_, recorder_, sim::LaunchKind::kMain);
      out.stats += run_spmv_kernel(plan_, dev_, xp_, res_, &grp, nullptr,
                                   fault_, recorder_);
      out.launches += 1;
    } else {
      WgTails tails;
      out.stats += run_spmv_kernel(plan_, dev_, xp_, res_, nullptr, &tails,
                                   fault_, recorder_);
      out.stats += run_carry_kernel(plan_, dev_, tails, res_, fault_,
                                    recorder_);
      out.launches += 2;
    }

    // In-flight adversary: a transient single-bit flip in the stacked
    // partial sums, right where they sit in device memory between the main
    // kernel and the combine/copy-out — silent by construction (no kernel
    // rereads them against anything), so only the checksum catches it.
    if (fault_) fault_->flip_partial(res_);

    if (fmt().cfg.slices > 1) {
      out.stats += run_combine_kernel(fmt(), dev_, plan_.exec, res_, y,
                                      fault_, recorder_);
      out.launches += 1;
    } else {
      // One slice: the stacked result *is* y (modulo block padding); on the
      // device the kernel would write y directly, so no extra traffic.
      for (index_t r = 0; r < fmt().rows; ++r) {
        y[static_cast<std::size_t>(r)] = res_[static_cast<std::size_t>(r)];
      }
    }
    return out;
  }

 private:
  const Bccoo& fmt() const { return *fmt_ptr_; }

  sim::DeviceSpec dev_;
  std::shared_ptr<const Bccoo> fmt_ptr_;
  sim::FaultInjector* fault_ = nullptr;        ///< non-owning fault hook
  sim::FlightRecorder* recorder_ = nullptr;    ///< non-owning recorder hook
  BccooPlan plan_;
  std::vector<real_t> xp_;   ///< padded multiplied vector
  std::vector<real_t> res_;  ///< per-segment results (stacked block-rows)
};

}  // namespace yaspmv::core
