// Simulated SpMV kernels for the BCCOO/BCCOO+ format (Section 3).
//
// One launch implements the paper's single-kernel pipeline:
//   phase A  — per-thread sequential segmented sum/scan over its tile
//              (strategy 1 keeps every intermediate sum, strategy 2 writes
//              finished segment sums into the per-workgroup result cache);
//   barrier  — last_partial_sums + start flags are complete;
//   phase B  — parallel segmented scan over last_partial_sums (skipped when
//              the Section 2.4 quick check proves every segment has size 1);
//   phase C  — combine per-thread results with the scanned partial sums and
//              the previous workgroup's carry (adjacent synchronization) and
//              write final segment sums;
//   phase D  — (strategy 2) coalesced writeback of the result cache.
//
// When exec.adjacent_sync is false the kernel instead exports per-workgroup
// tails and a second kernel (run_carry_kernel) resolves cross-workgroup
// segments — the "global synchronization" configuration of Figure 14.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "yaspmv/core/plan.hpp"
#include "yaspmv/scan/segscan_tree.hpp"
#include "yaspmv/scan/wg_scan.hpp"
#include "yaspmv/sim/adjacent.hpp"
#include "yaspmv/sim/dispatch.hpp"

namespace yaspmv::core {

/// Scattered store of one segment result (h consecutive device floats):
/// charged as one 32-byte-minimum transaction.
inline void charge_scattered_store(sim::KernelStats& st, int h) {
  st.global_store_bytes +=
      std::max<std::size_t>(static_cast<std::size_t>(h) * bytes::kValue, 32);
}

/// Output of the main kernel when running without adjacent synchronization:
/// per-workgroup tail sums (h values each), consumed by run_carry_kernel.
struct WgTails {
  std::vector<real_t> tails;  ///< num_workgroups * h
};

/// Main BCCOO SpMV kernel.  `xp` is the multiplied vector padded to
/// block_cols*block_w; `res` (stacked_block_rows*block_h, zero-initialized)
/// receives one h-vector per segment.  Exactly one of `grp` (adjacent sync)
/// or `tails_out` (global sync) must be non-null.  `fault` is the optional
/// fault-injection hook and `recorder` the optional flight recorder (null =
/// zero-cost idle path for both).
inline sim::KernelStats run_spmv_kernel(const BccooPlan& p,
                                        const sim::DeviceSpec& dev,
                                        std::span<const real_t> xp,
                                        std::span<real_t> res,
                                        sim::AdjacentBuffer* grp,
                                        WgTails* tails_out,
                                        sim::FaultInjector* fault = nullptr,
                                        sim::FlightRecorder* recorder = nullptr) {
  const Bccoo& m = *p.fmt;
  const ExecConfig& ex = p.exec;
  const int W = ex.workgroup_size;
  const int T = ex.thread_tile;
  const int h = m.cfg.block_h;
  const int bw = m.cfg.block_w;
  const auto hz = static_cast<std::size_t>(h);
  const auto bwz = static_cast<std::size_t>(bw);
  const bool use_adjacent = grp != nullptr;
  require(use_adjacent != (tails_out != nullptr),
          "exactly one synchronization mode must be selected");
  if (tails_out) {
    tails_out->tails.assign(
        static_cast<std::size_t>(p.num_workgroups) * hz, 0.0);
  }

  const std::size_t bf_word_bytes = bits_per_word(m.cfg.bf_word) / 8;
  const std::size_t bf_bytes_per_tile =
      ceil_div(static_cast<std::size_t>(T), bits_per_word(m.cfg.bf_word)) *
      bf_word_bytes;

  // Strategy 1 register budget: the per-thread intermediate_sums portion not
  // in shared memory must fit the register file (we allow 128 values/thread,
  // roughly half a Kepler thread's architectural limit).
  if (ex.strategy == Strategy::kIntermediateSums) {
    const int reg_vals = (T - ex.shm_tile) * h;
    if (reg_vals > 128) {
      throw sim::SimError("strategy 1 register budget exceeded: " +
                          std::to_string(reg_vals) + " values/thread");
    }
  }

  sim::LaunchConfig lc;
  lc.num_workgroups = p.num_workgroups;
  lc.workgroup_size = W;
  lc.workers = ex.workers;
  lc.use_texture = ex.use_texture;
  lc.logical_ids = ex.logical_ids;
  lc.fault = fault;
  lc.kind = sim::LaunchKind::kMain;
  lc.recorder = recorder;

  auto kernel = [&](sim::WorkgroupCtx& wg) {
    const int wid = wg.wg_id();
    sim::KernelStats& st = wg.stats();
    const std::size_t wg_tile = ex.workgroup_tile();
    const std::size_t wg_start = static_cast<std::size_t>(wid) * wg_tile;
    const index_t wg_first = p.wg_first_entry[static_cast<std::size_t>(wid)];
    const index_t wg_next =
        p.wg_first_entry[static_cast<std::size_t>(wid) + 1];
    const bool wg_has_stop = wg_next > wg_first;

    // ---- shared memory ---------------------------------------------------
    auto lps = wg.shared_array<real_t>(static_cast<std::size_t>(W) * hz,
                                       bytes::kValue);
    auto lps_tmp = wg.shared_array<real_t>(static_cast<std::size_t>(W) * hz,
                                           bytes::kValue);
    auto flags = wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W), 1);
    auto flags_tmp =
        wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W), 1);
    // The parallel scan propagates `flags` in place; the combine phase needs
    // the original per-thread "tile contains a row stop" predicate.
    auto flags_orig =
        wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W), 1);
    // Prefix "any stop in threads 0..t-1" used to find the workgroup's first
    // row-stop owner.
    auto any_stop_before =
        wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W) + 1, 1);

    // Strategy 1: intermediate sums, split register/shared.  The register
    // part costs no shared capacity; the host backing store is one arena
    // array either way.
    std::span<real_t> inter;
    if (ex.strategy == Strategy::kIntermediateSums) {
      const std::size_t n = static_cast<std::size_t>(W) *
                            static_cast<std::size_t>(T) * hz;
      inter = wg.shared_array<real_t>(
          n, 0);  // register portion: no shared charge ...
      // ... then charge the explicit shared-memory portion.
      if (ex.shm_tile > 0) {
        (void)wg.shared_array<real_t>(
            static_cast<std::size_t>(W) *
                static_cast<std::size_t>(ex.shm_tile) * hz,
            bytes::kValue);
      }
    }

    // Strategy 2: per-workgroup result cache.
    std::span<real_t> cache;
    std::size_t cache_entries = 0;
    if (ex.strategy == Strategy::kResultCache) {
      cache_entries = static_cast<std::size_t>(ex.result_cache_multiple) *
                      static_cast<std::size_t>(W);
      cache = wg.shared_array<real_t>(cache_entries * hz, bytes::kValue);
    }

    // Online transpose: staged per-block products (h values per block).
    std::span<real_t> staged;
    if (ex.transpose == Transpose::kOnline) {
      staged = wg.shared_array<real_t>(wg_tile * hz, bytes::kValue);
    }

    const std::size_t esc_bytes = ex.compress_col_delta ? bytes::kIndex : 0;

    // Computes the h product values of block index `i` into out[0..h) and
    // accounts value/vector traffic.  `touch` controls whether the vector
    // cache is probed (the online staging phase probes in row-based order).
    auto block_product = [&](std::size_t i, index_t bcol, real_t* out,
                             bool touch) {
      for (int lr = 0; lr < h; ++lr) {
        real_t s = 0.0;
        const auto& vr = (ex.transpose == Transpose::kOffline)
                             ? p.value_rows_t[static_cast<std::size_t>(lr)]
                             : p.value_rows[static_cast<std::size_t>(lr)];
        for (int lcidx = 0; lcidx < bw; ++lcidx) {
          std::size_t src;
          if (ex.transpose == Transpose::kOffline) {
            // element e of this thread's tile lives at wg_elem_base+e*W+t.
            const std::size_t th = (i - wg_start) / static_cast<std::size_t>(T);
            const std::size_t j = (i - wg_start) % static_cast<std::size_t>(T);
            const std::size_t e =
                j * bwz + static_cast<std::size_t>(lcidx);
            src = wg_start * bwz + e * static_cast<std::size_t>(W) + th;
          } else {
            src = i * bwz + static_cast<std::size_t>(lcidx);
          }
          const std::size_t xi = static_cast<std::size_t>(bcol) * bwz +
                                 static_cast<std::size_t>(lcidx);
          if (touch && lr == 0) wg.touch_vector(xi);
          s += vr[src] * xp[xi];
        }
        out[lr] = s;
        st.flops += 2 * static_cast<std::size_t>(bw);
      }
    };

    // ---- online transpose staging phase (row-based access order) --------
    if (ex.transpose == Transpose::kOnline) {
      // Threads cooperatively read tile elements in row-based (coalesced)
      // order: step j touches block j of every thread in lane order.
      for (int j = 0; j < T; ++j) {
        wg.phase([&](int t) {
          const std::size_t i = wg_start +
                                static_cast<std::size_t>(t) *
                                    static_cast<std::size_t>(T) +
                                static_cast<std::size_t>(j);
          index_t prev = 0;
          index_t bcol;
          if (ex.compress_col_delta) {
            // Delta decode is per-thread sequential; staging re-derives the
            // absolute column (device keeps it in a register across steps;
            // we recompute from the escape-free invariant).
            bcol = p.col_abs[i];  // value identical to the decoded one
          } else {
            bcol = p.decode_col(i, j, prev);
          }
          block_product(i, bcol, &staged[(i - wg_start) * hz], true);
        });
      }
      st.add_coalesced_load(wg_tile * bwz * hz, bytes::kValue);
      st.add_coalesced_load(wg_tile, p.col_bytes_per_block());
    }

    // ---- phase A: per-thread sequential segmented sum/scan ---------------
    wg.phase([&](int t) {
      const std::size_t tz = static_cast<std::size_t>(t);
      const std::size_t tile0 = wg_start + tz * static_cast<std::size_t>(T);
      real_t acc[sim::AdjacentBuffer::kMaxH] = {0, 0, 0, 0};
      real_t prod[sim::AdjacentBuffer::kMaxH];
      bool saw_stop = false;
      index_t prev_col = 0;
      index_t entry =
          p.first_result_entry[static_cast<std::size_t>(wid) *
                                   static_cast<std::size_t>(W) +
                               tz];

      // Bit-flag load for the whole tile.
      st.add_coalesced_load(1, bf_bytes_per_tile);
      // first_result_entry auxiliary load.
      st.add_coalesced_load(1, bytes::kIndex);

      for (int j = 0; j < T; ++j) {
        const std::size_t i = tile0 + static_cast<std::size_t>(j);
        index_t bcol = p.decode_col(i, j, prev_col);
        if (ex.compress_col_delta && p.col_delta[i] == -1) {
          st.add_coalesced_load(1, esc_bytes);  // escape: extra int32 read
        }
        prev_col = bcol;

        if (ex.transpose == Transpose::kOnline) {
          for (int lr = 0; lr < h; ++lr) {
            prod[lr] = staged[(i - wg_start) * hz + static_cast<std::size_t>(lr)];
          }
        } else {
          block_product(i, bcol, prod, true);
        }
        for (int lr = 0; lr < h; ++lr) {
          acc[lr] += prod[lr];
          st.flops += 1;
        }
        if (ex.strategy == Strategy::kIntermediateSums) {
          for (int lr = 0; lr < h; ++lr) {
            inter[(tz * static_cast<std::size_t>(T) +
                   static_cast<std::size_t>(j)) *
                      hz +
                  static_cast<std::size_t>(lr)] = acc[lr];
          }
        }
        if (!p.bit_flags.get(i)) {  // row stop
          if (ex.strategy == Strategy::kResultCache) {
            const auto e_local =
                static_cast<std::size_t>(entry - wg_first);
            if (e_local < cache_entries) {
              for (int lr = 0; lr < h; ++lr) {
                cache[e_local * hz + static_cast<std::size_t>(lr)] = acc[lr];
              }
            } else {
              // Result-cache overflow: write straight to global memory.
              const index_t sbrow =
                  m.seg_to_block_row[static_cast<std::size_t>(entry)];
              for (int lr = 0; lr < h; ++lr) {
                res[static_cast<std::size_t>(sbrow) * hz +
                    static_cast<std::size_t>(lr)] = acc[lr];
              }
              charge_scattered_store(st, h);
            }
          }
          ++entry;
          saw_stop = true;
          for (int lr = 0; lr < h; ++lr) acc[lr] = 0.0;
        }
      }
      for (int lr = 0; lr < h; ++lr) {
        lps[tz * hz + static_cast<std::size_t>(lr)] = acc[lr];
      }
      flags[tz] = saw_stop ? 1 : 0;
      flags_orig[tz] = flags[tz];
      if (ex.transpose == Transpose::kOffline) {
        st.add_coalesced_load(static_cast<std::size_t>(T) * bwz * hz,
                              bytes::kValue);
        st.add_coalesced_load(static_cast<std::size_t>(T),
                              p.col_bytes_per_block());
      }
    });

    // Fault-injection site: a kCorruptCache plan perturbs this workgroup's
    // result cache after phase A computed it (models a silent shared-memory
    // bit error; only a residual check can see it).
    if (fault && ex.strategy == Strategy::kResultCache) {
      fault->corrupt_result_cache(static_cast<std::size_t>(wid), cache);
    }

    // ---- prefix of start flags (for first-stop ownership) ---------------
    wg.phase([&](int t) {
      if (t == 0) {
        any_stop_before[0] = 0;
        for (int u = 0; u < W; ++u) {
          any_stop_before[static_cast<std::size_t>(u) + 1] =
              any_stop_before[static_cast<std::size_t>(u)] |
              flags_orig[static_cast<std::size_t>(u)];
        }
      }
    });

    // ---- phase B: parallel segmented scan over last_partial_sums ---------
    const bool skip =
        ex.skip_scan_opt && p.skip_scan[static_cast<std::size_t>(wid)] != 0;
    if (!skip) {
      scan::wg_segmented_scan_hvec(wg, lps, flags, lps_tmp, flags_tmp, h);
    }
    st.add_coalesced_load(1, 1);  // skip_scan flag byte

    // ---- publish Grp_sum (adjacent sync) or export tails ----------------
    // Tail of this workgroup = scanned lps of the last thread.
    real_t tail[sim::AdjacentBuffer::kMaxH];
    for (int lr = 0; lr < h; ++lr) {
      tail[lr] = lps[static_cast<std::size_t>(W - 1) * hz +
                     static_cast<std::size_t>(lr)];
    }
    real_t carry_in[sim::AdjacentBuffer::kMaxH] = {0, 0, 0, 0};
    if (use_adjacent) {
      if (wg_has_stop) {
        // Chain broken here: publish immediately to unblock successors,
        // then fetch the carry for our first segment.
        grp->publish(static_cast<std::size_t>(wid), std::span<const real_t>(tail, hz));
        st.global_store_bytes += hz * bytes::kValue + 4;
        if (wid > 0) {
          grp->wait(static_cast<std::size_t>(wid) - 1,
                    std::span<real_t>(carry_in, hz), st, wid);
          st.add_coalesced_load(1, hz * bytes::kValue + 4);
        }
      } else {
        if (wid > 0) {
          grp->wait(static_cast<std::size_t>(wid) - 1,
                    std::span<real_t>(carry_in, hz), st, wid);
          st.add_coalesced_load(1, hz * bytes::kValue + 4);
        }
        real_t chained[sim::AdjacentBuffer::kMaxH];
        for (int lr = 0; lr < h; ++lr) chained[lr] = carry_in[lr] + tail[lr];
        grp->publish(static_cast<std::size_t>(wid),
                     std::span<const real_t>(chained, hz));
        st.global_store_bytes += hz * bytes::kValue + 4;
      }
    } else {
      for (int lr = 0; lr < h; ++lr) {
        tails_out->tails[static_cast<std::size_t>(wid) * hz +
                         static_cast<std::size_t>(lr)] = tail[lr];
      }
      st.global_store_bytes += hz * bytes::kValue;
    }

    // ---- phase C: combine and write results ------------------------------
    if (ex.strategy == Strategy::kIntermediateSums) {
      wg.phase([&](int t) {
        const std::size_t tz = static_cast<std::size_t>(t);
        const std::size_t tile0 = wg_start + tz * static_cast<std::size_t>(T);
        index_t entry =
            p.first_result_entry[static_cast<std::size_t>(wid) *
                                     static_cast<std::size_t>(W) +
                                 tz];
        bool first_stop = true;
        for (int j = 0; j < T; ++j) {
          const std::size_t i = tile0 + static_cast<std::size_t>(j);
          if (p.bit_flags.get(i)) continue;  // not a row stop
          real_t v[sim::AdjacentBuffer::kMaxH];
          for (int lr = 0; lr < h; ++lr) {
            v[lr] = inter[(tz * static_cast<std::size_t>(T) +
                           static_cast<std::size_t>(j)) *
                              hz +
                          static_cast<std::size_t>(lr)];
          }
          if (first_stop) {
            if (t > 0) {
              // Segment may span threads: the scanned last_partial_sums of
              // the previous thread accumulates all unterminated tails.
              for (int lr = 0; lr < h; ++lr) {
                v[lr] += lps[(tz - 1) * hz + static_cast<std::size_t>(lr)];
                st.flops += 1;
              }
            }
            if (!any_stop_before[tz] && wid >= 0) {
              // This is the workgroup's very first row stop: absorb the
              // carry from preceding workgroups (adjacent sync); under
              // global sync the carry kernel patches it afterwards.
              for (int lr = 0; lr < h; ++lr) {
                v[lr] += carry_in[lr];
                st.flops += 1;
              }
            }
            first_stop = false;
          }
          const index_t sbrow =
              m.seg_to_block_row[static_cast<std::size_t>(entry)];
          for (int lr = 0; lr < h; ++lr) {
            res[static_cast<std::size_t>(sbrow) * hz +
                static_cast<std::size_t>(lr)] = v[lr];
          }
          charge_scattered_store(st, h);
          ++entry;
        }
      });
    } else {
      // Strategy 2: patch the cache, then write it back coalesced.
      wg.phase([&](int t) {
        const std::size_t tz = static_cast<std::size_t>(t);
        if (t == 0) {
          // Thread 0 folds the previous workgroup's carry into result-cache
          // entry 0 (the workgroup's first segment), Figure 12.
          if (wg_has_stop && wid > 0) {
            for (int lr = 0; lr < h; ++lr) {
              cache[static_cast<std::size_t>(lr)] += carry_in[lr];
              st.flops += 1;
            }
          }
          return;
        }
        if (!flags_orig[tz]) return;  // no row stop in this thread's tile
        // The thread's first row stop may belong to a segment spanning
        // previous threads: add the scanned last partial sum of thread t-1.
        const index_t entry =
            p.first_result_entry[static_cast<std::size_t>(wid) *
                                     static_cast<std::size_t>(W) +
                                 tz];
        const auto e_local = static_cast<std::size_t>(entry - wg_first);
        if (e_local < cache_entries) {
          for (int lr = 0; lr < h; ++lr) {
            cache[e_local * hz + static_cast<std::size_t>(lr)] +=
                lps[(tz - 1) * hz + static_cast<std::size_t>(lr)];
            st.flops += 1;
          }
        } else {
          const index_t sbrow =
              m.seg_to_block_row[static_cast<std::size_t>(entry)];
          for (int lr = 0; lr < h; ++lr) {
            res[static_cast<std::size_t>(sbrow) * hz +
                static_cast<std::size_t>(lr)] +=
                lps[(tz - 1) * hz + static_cast<std::size_t>(lr)];
            st.flops += 1;
          }
          charge_scattered_store(st, h);
          st.add_coalesced_load(1, hz * bytes::kValue);
        }
      });
      // ---- phase D: coalesced writeback of the result cache -------------
      const auto wg_stops = static_cast<std::size_t>(wg_next - wg_first);
      const std::size_t to_write = std::min(wg_stops, cache_entries);
      wg.phase([&](int t) {
        for (std::size_t e = static_cast<std::size_t>(t); e < to_write;
             e += static_cast<std::size_t>(W)) {
          const index_t sbrow = m.seg_to_block_row[static_cast<std::size_t>(
              wg_first + static_cast<index_t>(e))];
          for (int lr = 0; lr < h; ++lr) {
            res[static_cast<std::size_t>(sbrow) * hz +
                static_cast<std::size_t>(lr)] =
                cache[e * hz + static_cast<std::size_t>(lr)];
          }
        }
      });
      st.add_coalesced_store(to_write * hz, bytes::kValue);
      // seg_to_block_row lookups for the writeback (identity on the paper's
      // matrices; counted only when materialized).
      if (!m.identity_segments) {
        st.add_coalesced_load(to_write, bytes::kIndex);
      }
    }
  };

  return sim::launch(dev, lc, kernel);
}

/// Second kernel for the global-synchronization configuration: resolves the
/// cross-workgroup carry chain serially and patches each workgroup's first
/// segment.  One workgroup; thread 0 walks the chain (this models the extra
/// launch + traffic the paper's adjacent synchronization removes).
inline sim::KernelStats run_carry_kernel(const BccooPlan& p,
                                         const sim::DeviceSpec& dev,
                                         const WgTails& tails,
                                         std::span<real_t> res,
                                         sim::FaultInjector* fault = nullptr,
                                         sim::FlightRecorder* recorder = nullptr) {
  const Bccoo& m = *p.fmt;
  const int h = m.cfg.block_h;
  const auto hz = static_cast<std::size_t>(h);

  sim::LaunchConfig lc;
  lc.num_workgroups = 1;
  lc.workgroup_size = 1;
  lc.workers = 1;
  lc.use_texture = false;
  lc.fault = fault;
  lc.kind = sim::LaunchKind::kCarry;
  lc.recorder = recorder;

  auto kernel = [&](sim::WorkgroupCtx& wg) {
    sim::KernelStats& st = wg.stats();
    wg.phase([&](int t) {
      if (t != 0) return;
      std::vector<real_t> carry(hz, 0.0);
      for (int w = 0; w < p.num_workgroups; ++w) {
        const index_t first = p.wg_first_entry[static_cast<std::size_t>(w)];
        const index_t next =
            p.wg_first_entry[static_cast<std::size_t>(w) + 1];
        const bool has_stop = next > first;
        st.add_coalesced_load(1, hz * bytes::kValue + bytes::kIndex);
        if (has_stop) {
          const index_t sbrow =
              m.seg_to_block_row[static_cast<std::size_t>(first)];
          for (int lr = 0; lr < h; ++lr) {
            res[static_cast<std::size_t>(sbrow) * hz +
                static_cast<std::size_t>(lr)] +=
                carry[static_cast<std::size_t>(lr)];
            st.flops += 1;
          }
          st.add_coalesced_load(1, hz * bytes::kValue);
          charge_scattered_store(st, h);
          for (int lr = 0; lr < h; ++lr) {
            carry[static_cast<std::size_t>(lr)] =
                tails.tails[static_cast<std::size_t>(w) * hz +
                            static_cast<std::size_t>(lr)];
          }
        } else {
          for (int lr = 0; lr < h; ++lr) {
            carry[static_cast<std::size_t>(lr)] +=
                tails.tails[static_cast<std::size_t>(w) * hz +
                            static_cast<std::size_t>(lr)];
            st.flops += 1;
          }
        }
      }
    });
  };
  return sim::launch(dev, lc, kernel);
}

/// BCCOO+ combine kernel (Figure 5): y[r] = sum over slices s of the slice
/// partial result.  `res` is indexed by stacked block-row; `y` has `rows`
/// entries.
inline sim::KernelStats run_combine_kernel(const Bccoo& m,
                                           const sim::DeviceSpec& dev,
                                           const ExecConfig& ex,
                                           std::span<const real_t> res,
                                           std::span<real_t> y,
                                           sim::FaultInjector* fault = nullptr,
                                           sim::FlightRecorder* recorder = nullptr) {
  const int h = m.cfg.block_h;
  const auto hz = static_cast<std::size_t>(h);
  const int W = 256;
  const index_t rows = m.rows;

  sim::LaunchConfig lc;
  lc.num_workgroups = static_cast<int>(ceil_div<index_t>(rows, W));
  lc.workgroup_size = W;
  lc.workers = ex.workers;
  lc.use_texture = false;
  lc.fault = fault;
  lc.kind = sim::LaunchKind::kCombine;
  lc.recorder = recorder;

  auto kernel = [&](sim::WorkgroupCtx& wg) {
    sim::KernelStats& st = wg.stats();
    wg.phase([&](int t) {
      const index_t r = static_cast<index_t>(wg.wg_id()) * W + t;
      if (r >= rows) return;
      real_t s = 0.0;
      for (index_t sl = 0; sl < m.cfg.slices; ++sl) {
        const index_t sbrow = sl * m.block_rows + r / m.cfg.block_h;
        s += res[static_cast<std::size_t>(sbrow) * hz +
                 static_cast<std::size_t>(r % m.cfg.block_h)];
        st.flops += 1;
      }
      y[static_cast<std::size_t>(r)] = s;
    });
    st.add_coalesced_load(static_cast<std::size_t>(W) *
                              static_cast<std::size_t>(m.cfg.slices),
                          bytes::kValue);
    st.add_coalesced_store(static_cast<std::size_t>(W), bytes::kValue);
  };
  return sim::launch(dev, lc, kernel);
}

}  // namespace yaspmv::core
