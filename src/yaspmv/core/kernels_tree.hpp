// BCCOO + tree-based segmented scan — the intermediate configuration of the
// Figure 14 breakdown ("BCCOO" stage): the new format's footprint savings
// *without* the paper's efficient matrix-based segmented sum/scan.
//
// One non-zero block per thread (build the plan with thread_tile == 1), a
// Blelloch tree scan per block-row-height lane inside each workgroup, and
// the serial carry kernel (run_carry_kernel) to resolve cross-workgroup
// segments — i.e., the old algorithm running on the new format.
#pragma once

#include <span>

#include "yaspmv/core/kernels.hpp"
#include "yaspmv/core/plan.hpp"
#include "yaspmv/scan/segscan_tree.hpp"
#include "yaspmv/sim/dispatch.hpp"

namespace yaspmv::core {

/// Requires p.exec.thread_tile == 1 and fills `tails_out` for the carry
/// kernel.  `res` must be zero-initialized by the caller when the matrix has
/// empty block rows.
inline sim::KernelStats run_spmv_bccoo_tree(const BccooPlan& p,
                                            const sim::DeviceSpec& dev,
                                            std::span<const real_t> xp,
                                            std::span<real_t> res,
                                            WgTails* tails_out) {
  const Bccoo& m = *p.fmt;
  const ExecConfig& ex = p.exec;
  require(ex.thread_tile == 1, "tree stage requires thread_tile == 1");
  const int W = ex.workgroup_size;
  const int h = m.cfg.block_h;
  const int bw = m.cfg.block_w;
  const auto hz = static_cast<std::size_t>(h);
  const auto bwz = static_cast<std::size_t>(bw);
  tails_out->tails.assign(static_cast<std::size_t>(p.num_workgroups) * hz,
                          0.0);

  sim::LaunchConfig lc;
  lc.num_workgroups = p.num_workgroups;
  lc.workgroup_size = W;
  lc.workers = ex.workers;
  lc.use_texture = ex.use_texture;

  auto kernel = [&](sim::WorkgroupCtx& wg) {
    sim::KernelStats& st = wg.stats();
    const int wid = wg.wg_id();
    const std::size_t base =
        static_cast<std::size_t>(wid) * static_cast<std::size_t>(W);
    const index_t wg_first = p.wg_first_entry[static_cast<std::size_t>(wid)];

    auto heads = wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W), 1);
    auto wflags = wg.shared_array<std::uint8_t>(static_cast<std::size_t>(W), 1);
    auto icopy = wg.shared_array<real_t>(static_cast<std::size_t>(W),
                                         bytes::kValue);
    // One scan buffer per block-row lane (tree scan is scalar).
    auto prods = wg.shared_array<real_t>(
        static_cast<std::size_t>(W) * hz, bytes::kValue);

    wg.phase([&](int t) {
      const std::size_t i = base + static_cast<std::size_t>(t);
      const index_t bcol = p.col_abs[i];
      for (int lr = 0; lr < h; ++lr) {
        real_t s = 0.0;
        for (int lcidx = 0; lcidx < bw; ++lcidx) {
          const std::size_t xi = static_cast<std::size_t>(bcol) * bwz +
                                 static_cast<std::size_t>(lcidx);
          if (lr == 0) wg.touch_vector(xi);
          s += p.value_rows[static_cast<std::size_t>(lr)]
                           [i * bwz + static_cast<std::size_t>(lcidx)] *
               xp[xi];
        }
        prods[static_cast<std::size_t>(lr) * static_cast<std::size_t>(W) +
              static_cast<std::size_t>(t)] = s;
        st.flops += 2 * static_cast<std::size_t>(bw);
      }
      heads[static_cast<std::size_t>(t)] =
          (t == 0 || !p.bit_flags.get(i - 1)) ? 1 : 0;
    });
    st.add_coalesced_load(static_cast<std::size_t>(W) * bwz * hz,
                          bytes::kValue);
    st.add_coalesced_load(static_cast<std::size_t>(W), bytes::kIndex);
    st.add_coalesced_load(
        1, ceil_div(static_cast<std::size_t>(W),
                    bits_per_word(m.cfg.bf_word)) *
               (bits_per_word(m.cfg.bf_word) / 8));

    // h independent tree scans (the naive port of the scalar algorithm).
    for (int lr = 0; lr < h; ++lr) {
      scan::wg_tree_segscan_inclusive(
          wg,
          prods.subspan(
              static_cast<std::size_t>(lr) * static_cast<std::size_t>(W),
              static_cast<std::size_t>(W)),
          heads, wflags, icopy);
    }

    // Per-thread segment ordinal: workgroup base + stops before the thread's
    // block inside this workgroup (prefix computed serially by thread 0, the
    // same scan-of-inverted-bit-flags idea as Section 2.4).
    auto stops_before =
        wg.shared_array<index_t>(static_cast<std::size_t>(W), bytes::kIndex);
    wg.phase([&](int t) {
      if (t != 0) return;
      index_t c = 0;
      for (int u = 0; u < W; ++u) {
        stops_before[static_cast<std::size_t>(u)] = c;
        if (!p.bit_flags.get(base + static_cast<std::size_t>(u))) ++c;
      }
    });

    wg.phase([&](int t) {
      const std::size_t i = base + static_cast<std::size_t>(t);
      if (p.bit_flags.get(i)) return;  // not a row stop
      const index_t entry =
          wg_first + stops_before[static_cast<std::size_t>(t)];
      const index_t sbrow =
          m.seg_to_block_row[static_cast<std::size_t>(entry)];
      for (int lr = 0; lr < h; ++lr) {
        res[static_cast<std::size_t>(sbrow) * hz +
            static_cast<std::size_t>(lr)] =
            prods[static_cast<std::size_t>(lr) * static_cast<std::size_t>(W) +
                  static_cast<std::size_t>(t)];
      }
      charge_scattered_store(st, h);
    });

    // Export the workgroup tail for the carry kernel.  When the last block
    // is itself a row stop the trailing open segment is empty: the scanned
    // value at W-1 is a *finished* segment sum and the carry out must be 0.
    const bool ends_at_stop =
        !p.bit_flags.get(base + static_cast<std::size_t>(W - 1));
    for (int lr = 0; lr < h; ++lr) {
      tails_out->tails[static_cast<std::size_t>(wid) * hz +
                       static_cast<std::size_t>(lr)] =
          ends_at_stop
              ? 0.0
              : prods[static_cast<std::size_t>(lr) *
                          static_cast<std::size_t>(W) +
                      static_cast<std::size_t>(W - 1)];
    }
    st.global_store_bytes += hz * bytes::kValue;
  };

  return sim::launch(dev, lc, kernel);
}

}  // namespace yaspmv::core
