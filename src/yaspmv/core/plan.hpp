// Execution plan: everything derived from (Bccoo format, ExecConfig) that
// the kernels consume.
//
//  * Padding (Section 2.2): the bit-flag array is padded with 1-bits to a
//    multiple of the workgroup working set, so kernels need no end-of-array
//    checks; padded blocks carry zero values and a safe column index.
//  * Auxiliary information (Section 2.4): per-thread first-result entries
//    (a scan over the bitwise inverse of the bit flags) and the
//    skip-parallel-scan flag per workgroup.
//  * Column-index compression (Sections 2.2 and 4): either the u16 absolute
//    index (when cols fit), or per-thread-tile int16 deltas with the -1
//    escape to the uncompressed array.
//  * Offline transpose (Section 3.2.2): value/column arrays rearranged so
//    that lane accesses within a warp are unit-stride.
#pragma once

#include <cstdint>
#include <vector>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/core/config.hpp"
#include "yaspmv/core/status.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::core {

struct BccooPlan {
  const Bccoo* fmt = nullptr;  ///< non-owning; outlives the plan
  ExecConfig exec;

  std::size_t padded_blocks = 0;
  int num_workgroups = 0;

  /// Padded bit flags (1-bits appended: padding extends the final segment
  /// with zero-valued blocks, which is harmless).
  BitArray bit_flags;

  /// Padded column indices (absolute, int32 — the escape target).
  std::vector<index_t> col_abs;

  /// Section 4 optimization: absolute u16 column indices (cols < 65535).
  std::vector<std::uint16_t> col_u16;
  bool col_u16_valid = false;

  /// Section 2.2 compression: per-thread-tile int16 deltas, -1 = escape.
  std::vector<std::int16_t> col_delta;
  std::size_t delta_escapes = 0;

  /// Padded per-row value arrays (logical layout, block-major).
  std::vector<std::vector<real_t>> value_rows;

  /// Offline-transposed layout (only built when exec.transpose == kOffline):
  /// within each workgroup tile, element e of thread t lives at
  /// wg_base + e*W + t.
  std::vector<std::vector<real_t>> value_rows_t;
  std::vector<index_t> col_abs_t;

  /// first_result_entry[g]: segment ordinal of the first result produced by
  /// global thread g (count of row stops before its tile).
  std::vector<index_t> first_result_entry;

  /// wg_first_entry[w] = first_result_entry of workgroup w's thread 0;
  /// one extra tail entry = total segments, so wg w owns entries
  /// [wg_first_entry[w], wg_first_entry[w+1]).
  std::vector<index_t> wg_first_entry;

  /// Section 2.4 quick check: every thread tile in workgroup w contains a
  /// row stop, so all segments in last_partial_sums have size 1 and the
  /// parallel scan can be skipped.
  std::vector<std::uint8_t> skip_scan;

  int total_threads() const {
    return num_workgroups * exec.workgroup_size;
  }

  /// Decodes the column index of block i for thread-tile-local position j,
  /// given the running previous column `prev` (tile-start resets handled by
  /// the caller passing j==0).  Mirrors the device decode path.
  index_t decode_col(std::size_t i, int j, index_t prev) const {
    if (exec.compress_col_delta) {
      const std::int16_t d = col_delta[i];
      if (d == -1) return col_abs[i];  // escape: read uncompressed array
      return (j == 0 ? 0 : prev) + static_cast<index_t>(d);
    }
    if (col_u16_valid && exec.short_col_index) {
      return static_cast<index_t>(col_u16[i]);
    }
    return col_abs[i];
  }

  /// Bytes loaded per block for the column index under the active encoding.
  std::size_t col_bytes_per_block() const {
    if (exec.compress_col_delta) return bytes::kShortIndex;
    if (col_u16_valid && exec.short_col_index) return bytes::kShortIndex;
    return bytes::kIndex;
  }

  static BccooPlan build(const Bccoo& m, const ExecConfig& exec) {
    require(exec.workgroup_size > 0 &&
                (exec.workgroup_size & (exec.workgroup_size - 1)) == 0,
            "workgroup size must be a power of two");
    require(exec.thread_tile > 0, "thread tile must be positive");
    require(exec.shm_tile >= 0 && exec.shm_tile <= exec.thread_tile,
            "shm_tile must be within the thread tile");
    require(!(exec.strategy == Strategy::kResultCache &&
              exec.transpose == Transpose::kOnline),
            "strategy 2 requires the offline transpose (Section 3.2.2)");
    BccooPlan p;
    p.fmt = &m;
    p.exec = exec;

    const std::size_t wg_tile = exec.workgroup_tile();
    p.padded_blocks =
        m.num_blocks == 0 ? wg_tile : round_up(m.num_blocks, wg_tile);
    p.num_workgroups = static_cast<int>(p.padded_blocks / wg_tile);

    // --- padded bit flags & columns & values -----------------------------
    p.bit_flags = m.bit_flags;
    p.bit_flags.append(p.padded_blocks - m.num_blocks, true);

    p.col_abs = m.col_index;
    const index_t pad_col = m.col_index.empty() ? 0 : m.col_index.back();
    p.col_abs.resize(p.padded_blocks, pad_col);

    const auto bw = static_cast<std::size_t>(m.cfg.block_w);
    p.value_rows.assign(m.value_rows.begin(), m.value_rows.end());
    if (p.value_rows.empty()) {
      p.value_rows.assign(static_cast<std::size_t>(m.cfg.block_h), {});
    }
    for (auto& vr : p.value_rows) vr.resize(p.padded_blocks * bw, 0.0);

    // --- u16 column indices (Section 4) ----------------------------------
    if (m.block_cols <= 65535) {
      p.col_u16_valid = true;
      p.col_u16.resize(p.padded_blocks);
      for (std::size_t i = 0; i < p.padded_blocks; ++i) {
        p.col_u16[i] = static_cast<std::uint16_t>(p.col_abs[i]);
      }
    }

    // --- int16 delta compression (Section 2.2) ---------------------------
    if (exec.compress_col_delta) {
      p.col_delta.resize(p.padded_blocks);
      const auto tile = static_cast<std::size_t>(exec.thread_tile);
      for (std::size_t i = 0; i < p.padded_blocks; ++i) {
        const bool tile_start = (i % tile) == 0;
        const std::int64_t prev =
            tile_start ? 0 : static_cast<std::int64_t>(p.col_abs[i - 1]);
        const std::int64_t d = static_cast<std::int64_t>(p.col_abs[i]) - prev;
        if (fits_short_delta(d) && d != -1) {
          p.col_delta[i] = static_cast<std::int16_t>(d);
        } else {
          p.col_delta[i] = -1;  // escape to the uncompressed array
          p.delta_escapes++;
        }
      }
      // Round-trip self-check: decoding every delta (through the same path
      // the kernel uses) must reproduce the absolute column exactly — a
      // mismatch means the compression lost information and the SpMV would
      // silently gather from the wrong vector elements.
      index_t prev = 0;
      for (std::size_t i = 0; i < p.padded_blocks; ++i) {
        const int j = static_cast<int>(i % tile);
        const index_t dec = p.decode_col(i, j, prev);
        if (dec != p.col_abs[i]) {
          throw FormatInvalid(
              "column delta compression round-trip failed at block " +
              std::to_string(i));
        }
        prev = dec;
      }
    }

    // --- auxiliary information (Section 2.4) ------------------------------
    const int threads = p.total_threads();
    const auto tt = static_cast<std::size_t>(exec.thread_tile);
    p.first_result_entry.resize(static_cast<std::size_t>(threads));
    {
      // Single pass: running count of row stops, sampled at tile starts.
      index_t stops = 0;
      std::size_t next_tile = 0;
      int g = 0;
      for (std::size_t i = 0; i <= p.padded_blocks; ++i) {
        if (i == next_tile && g < threads) {
          p.first_result_entry[static_cast<std::size_t>(g++)] = stops;
          next_tile += tt;
        }
        if (i < p.padded_blocks && !p.bit_flags.get(i)) ++stops;
      }
    }
    p.wg_first_entry.resize(static_cast<std::size_t>(p.num_workgroups) + 1);
    for (int w = 0; w < p.num_workgroups; ++w) {
      p.wg_first_entry[static_cast<std::size_t>(w)] =
          p.first_result_entry[static_cast<std::size_t>(w) *
                               static_cast<std::size_t>(exec.workgroup_size)];
    }
    p.wg_first_entry[static_cast<std::size_t>(p.num_workgroups)] =
        static_cast<index_t>(m.num_segments());

    p.skip_scan.assign(static_cast<std::size_t>(p.num_workgroups), 1);
    for (int w = 0; w < p.num_workgroups; ++w) {
      const std::size_t wg_start =
          static_cast<std::size_t>(w) * wg_tile;
      for (int t = 0; t < exec.workgroup_size; ++t) {
        const std::size_t ts = wg_start + static_cast<std::size_t>(t) * tt;
        if (!p.bit_flags.has_zero_in(ts, ts + tt)) {
          p.skip_scan[static_cast<std::size_t>(w)] = 0;
          break;
        }
      }
    }

    // --- offline transpose -------------------------------------------------
    if (exec.transpose == Transpose::kOffline) {
      const auto W = static_cast<std::size_t>(exec.workgroup_size);
      p.value_rows_t.assign(p.value_rows.size(), {});
      for (std::size_t lr = 0; lr < p.value_rows.size(); ++lr) {
        p.value_rows_t[lr].resize(p.padded_blocks * bw);
      }
      p.col_abs_t.resize(p.padded_blocks);
      const std::size_t elems_per_thread = tt * bw;
      for (int w = 0; w < p.num_workgroups; ++w) {
        const std::size_t wg_start = static_cast<std::size_t>(w) * wg_tile;
        const std::size_t wg_elem_base = wg_start * bw;
        for (std::size_t t = 0; t < W; ++t) {
          const std::size_t th_block0 = wg_start + t * tt;
          for (std::size_t e = 0; e < elems_per_thread; ++e) {
            const std::size_t src = th_block0 * bw + e;
            const std::size_t dst = wg_elem_base + e * W + t;
            for (std::size_t lr = 0; lr < p.value_rows.size(); ++lr) {
              p.value_rows_t[lr][dst] = p.value_rows[lr][src];
            }
          }
          for (std::size_t j = 0; j < tt; ++j) {
            p.col_abs_t[wg_start + j * W + t] = p.col_abs[th_block0 + j];
          }
        }
      }
    }
    return p;
  }

  /// Footprint of the format plus the plan's auxiliary arrays, matching the
  /// Table 3 accounting ("all the information, including ... the auxiliary
  /// information described in Section 2.4").
  std::size_t footprint_bytes() const {
    return fmt->footprint_bytes(col_u16_valid && exec.short_col_index,
                                exec.compress_col_delta, delta_escapes) +
           first_result_entry.size() * bytes::kIndex +
           skip_scan.size();
  }
};

}  // namespace yaspmv::core
