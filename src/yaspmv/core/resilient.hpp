// ResilientEngine — verify-and-fallback execution on top of SpmvEngine.
//
// The paper's fast path is fragile by construction: adjacent synchronization
// hangs if one workgroup dies, the strategy-2 result cache can be silently
// corrupted, and a failed carry/combine launch loses results.  Following the
// speculative-segmented-sum pattern (Liu & Vinter, PAPERS.md) we run the
// fast path, *detect* that it went wrong — a classified SpmvError or a
// sampled-row residual check against the CPU reference — and recover through
// a bounded degradation ladder:
//
//   step 0  the configured fast path
//   step 1  flip the synchronization mode (adjacent spin chain <-> two-kernel
//           global-sync carry propagation)
//   step 2  strategy 2 result cache -> strategy 1 intermediate sums
//   step 3  BCCOO+ -> BCCOO (slices = 1, drops the combine kernel)
//   step 4  COO baseline on the CPU reference path (cannot fail)
//
// Degradations are cumulative: once a mechanism is implicated it stays off
// for the rest of the run.  Faults are recorded per attempt so callers (the
// chaos tests, yaspmv_cli --inject) can report what happened and where the
// ladder stopped.
//
// Every simulated attempt runs under the engine's flight recorder (owned
// here): the adjacent-sync watchdog gets its progress table, and when an
// attempt fails its journal is captured — and, with `journal_prefix` set,
// dumped to disk — before the ladder moves on, so the exact interleaving
// that failed is available for --replay / --minimize.
#pragma once

#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "yaspmv/core/checksum.hpp"
#include "yaspmv/core/engine.hpp"
#include "yaspmv/core/status.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/io/journal_io.hpp"
#include "yaspmv/sim/fault.hpp"
#include "yaspmv/sim/journal.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv::core {

struct ResilientOptions {
  /// Run the sampled-row residual check after every simulated attempt (the
  /// only way to catch *silent* corruption; classified errors are always
  /// detected).
  bool verify = false;
  int sample_rows = 16;      ///< rows compared against the CPU reference
  double tolerance = 1e-6;   ///< relative residual bound per sampled row
  /// Run the ABFT checksum check (sum(y) against the format's column
  /// checksums, O(rows + cols)) after every attempt.  Unlike sampled
  /// residuals this covers *every* row, at a cost independent of nnz, and a
  /// mismatch is handled as a transient first: retry the rung once, then
  /// validate + rebuild its format from source, then degrade.
  bool verify_checksum = false;
  int max_attempts = 8;      ///< hard bound on engine runs before giving up
  /// When non-empty, every failed attempt's journal is written to
  /// `<prefix>.<pid>.<seq>` where `seq` is a process-wide counter: dump
  /// names are unique per attempt even when several engines share a prefix
  /// and fail concurrently (the serving daemon does exactly that).  The
  /// actual path of each dump is reported in FaultRecord::journal_file.
  std::string journal_prefix;
};

/// One failed attempt: which rung, how it failed.
struct FaultRecord {
  std::string path;     ///< label of the rung that failed
  Status status = Status::kOk;
  std::string detail;   ///< diagnostic (exception what(), residual info)
  std::string journal_file;  ///< on-disk journal dump ("" unless requested)
};

/// Outcome of a resilient run.  `run` holds the stats of the attempt that
/// produced `y`; `faults` holds everything that went wrong on the way there.
struct ResilientRun {
  SpmvRun run;
  int attempts = 0;      ///< engine runs performed (>= 1)
  int ladder_step = 0;   ///< rung index that finally succeeded
  bool recovered = false;  ///< true when any fallback was needed
  bool verified = false;   ///< sampled-row residual check passed (or CPU path)
  std::string path;        ///< label of the successful rung
  std::vector<FaultRecord> faults;

  int retries() const { return attempts > 0 ? attempts - 1 : 0; }
};

class ResilientEngine {
 public:
  ResilientEngine(const fmt::Coo& a, const FormatConfig& fc,
                  const ExecConfig& ec, sim::DeviceSpec dev,
                  ResilientOptions opt = {})
      : a_(a),
        csr_(fmt::Csr::from_coo(a)),
        dev_(std::move(dev)),
        opt_(opt) {
    build_ladder(fc, ec);
  }

  /// Attaches the fault injector forwarded to every simulated attempt.
  void set_fault_injector(sim::FaultInjector* fault) { fault_ = fault; }

  /// The engine-owned flight recorder (attached to every simulated attempt).
  sim::FlightRecorder& recorder() { return recorder_; }

  /// Journal of the most recent *failed* attempt (valid when
  /// has_last_failure(); overwritten by each new failure).
  bool has_last_failure() const { return has_last_failure_; }
  const sim::RecordedRun& last_failure() const { return last_failure_; }

  /// Journal of the most recent attempt, failed or not (e.g. to record a
  /// healthy run's schedule for later comparison).
  sim::RecordedRun capture_last_run() const {
    sim::RecordedRun run;
    if (last_rung_ && last_rung_->engine) {
      run.num_workgroups = last_rung_->engine->plan().num_workgroups;
      run.workgroup_size = last_rung_->ec.workgroup_size;
      run.workers = last_rung_->ec.workers;
    }
    if (fault_) {
      run.fault = fault_->plan();
      run.spin_budget_override = fault_->spin_budget_override;
    }
    run.events = recorder_.journal().snapshot();
    return run;
  }

  /// Rung labels, fast path first, CPU baseline last (for reporting/tests).
  std::vector<std::string> ladder() const {
    std::vector<std::string> out;
    out.reserve(rungs_.size() + 1);
    for (const auto& r : rungs_) out.push_back(r.label);
    out.push_back(kCpuLabel);
    return out;
  }

  ResilientRun run(std::span<const real_t> x, std::span<real_t> y) {
    return run(x, y, opt_.verify_checksum);
  }

  /// Per-call checksum-verification override: the serving daemon flips this
  /// per request (protocol `verified` flag) on a shared engine whose
  /// ResilientOptions are fixed at registration time.
  ResilientRun run(std::span<const real_t> x, std::span<real_t> y,
                   bool verify_checksum) {
    require(x.size() == static_cast<std::size_t>(a_.cols) &&
                y.size() == static_cast<std::size_t>(a_.rows),
            "ResilientEngine::run: vector size mismatch");
    ResilientRun out;
    // The x-side checksum dots (w.x, |w|.|x|) depend only on (format, x),
    // so within this run() they are computed once per format and reused
    // across integrity retries — a retried --verify attempt costs O(rows),
    // not O(rows + cols).  Keyed by format pointer: a rebuilt format gets a
    // fresh shared_ptr, which naturally invalidates its cached dots.
    const Bccoo* dots_key = nullptr;
    ChecksumDots dots;
    const auto dots_for = [&](const Bccoo& f) -> const ChecksumDots& {
      if (dots_key != &f) {
        dots = checksum_dots(f, x);
        dots_key = &f;
      }
      return dots;
    };
    for (std::size_t step = 0; step < rungs_.size(); ++step) {
      Rung& rung = rungs_[step];
      // Integrity faults get up to three shots at one rung before the ladder
      // moves on: the original attempt, a bare retry (a *transient* flip —
      // the common soft error — leaves nothing behind), and a retry after
      // validating + rebuilding the rung's format from source (persistent
      // at-rest corruption).  Every other SpmvError degrades immediately,
      // as before: those implicate a mechanism, not a bit.
      int integrity_retries = 0;
      bool rebuilt = false;
      while (out.attempts < opt_.max_attempts) {
        try {
          if (!rung.engine) {
            // Validate the format's invariants *before* planning: a
            // corrupted format must surface as FormatInvalid here, not as a
            // bad scatter inside the kernel.
            if (!rung.format) {
              rung.format = std::make_shared<const Bccoo>(
                  Bccoo::build(a_, rung.fc));
            }
            rung.format->validate();
            rung.engine = std::make_unique<SpmvEngine>(rung.format, rung.ec,
                                                       dev_);
          }
          rung.engine->set_fault_injector(fault_);
          rung.engine->set_recorder(&recorder_);
          recorder_.reset();
          last_rung_ = &rung;
          out.attempts++;
          SpmvRun r = rung.engine->run(x, y);
          if (verify_checksum) {
            const ChecksumReport rep =
                verify_apply_with(*rung.format, dots_for(*rung.format), x, y,
                                  rung.engine->partials());
            if (!rep.ok()) {
              throw IntegrityFault("checksum-verified apply: " +
                                   rep.message());
            }
            out.verified = true;
          }
          if (opt_.verify) {
            std::string residual;
            if (!sampled_residual_ok(x, y, residual)) {
              throw DataCorruption("sampled-row residual check failed: " +
                                   residual);
            }
            out.verified = true;
          }
          out.run = r;
          out.ladder_step = static_cast<int>(step);
          out.recovered = step > 0 || !out.faults.empty();
          out.path = rung.label;
          return out;
        } catch (const IntegrityFault& e) {
          FaultRecord rec{rung.label, e.code(), e.what(), ""};
          capture_failure(rung, rec);
          out.faults.push_back(std::move(rec));
          if (integrity_retries++ == 0) continue;  // transient? bare retry
          if (!rebuilt) {
            // Retry did not clear it: suspect the stored format.  validate()
            // re-derives the checksum plan bit-for-bit, so value-stream
            // corruption surfaces here as FormatInvalid; either way the rung
            // gets a fresh format rebuilt from the source matrix.
            std::string verdict = "format revalidated clean";
            try {
              if (rung.format) rung.format->validate();
            } catch (const SpmvError& ve) {
              verdict = std::string("format validation failed: ") + ve.what();
            }
            rung.format =
                std::make_shared<const Bccoo>(Bccoo::build(a_, rung.fc));
            rung.engine.reset();
            rebuilt = true;
            out.faults.back().detail += " [" + verdict + "; rebuilt from source]";
            continue;
          }
          break;  // rebuilt and still tripping: implicate the rung, degrade
        } catch (const SpmvError& e) {
          FaultRecord rec{rung.label, e.code(), e.what(), ""};
          capture_failure(rung, rec);
          out.faults.push_back(std::move(rec));
          break;
        }
      }
      if (out.attempts >= opt_.max_attempts) break;
    }
    // Terminal rung: the CPU COO/CSR reference path.  No simulated kernels,
    // no synchronization, no cache — it cannot fail, and it *is* the
    // reference, so the run is verified by definition.
    csr_.spmv(x, y);
    out.attempts++;
    out.ladder_step = static_cast<int>(rungs_.size());
    out.recovered = !rungs_.empty();
    out.verified = true;
    out.path = kCpuLabel;
    return out;
  }

 private:
  static constexpr const char* kCpuLabel = "coo-cpu-baseline";

  struct Rung {
    FormatConfig fc;
    ExecConfig ec;
    std::string label;
    std::shared_ptr<const Bccoo> format;   ///< built lazily, shared per fc
    std::unique_ptr<SpmvEngine> engine;    ///< built lazily
  };

  void build_ladder(const FormatConfig& fc0, const ExecConfig& ec0) {
    FormatConfig fc = fc0;
    ExecConfig ec = ec0;
    add_rung(fc, ec, std::string("fast-path (") + fc.to_string() + " | " +
                         ec.to_string() + ")");
    // Step 1: flip the synchronization mode.  adjacent -> global-sync routes
    // around a dead spin chain; global -> adjacent routes around a failing
    // carry-kernel launch.
    ec.adjacent_sync = !ec.adjacent_sync;
    add_rung(fc, ec, ec.adjacent_sync
                         ? "sync-fallback: adjacent-sync single kernel"
                         : "sync-fallback: global-sync carry kernel");
    // Step 2: abandon the strategy-2 result cache for strategy 1
    // intermediate sums (routes around shared-memory cache corruption).
    if (ec.strategy == Strategy::kResultCache) {
      ec.strategy = Strategy::kIntermediateSums;
      ec.shm_tile = 0;
      const int max_tile =
          std::max(1, 128 / std::max<index_t>(fc.block_h, 1));
      ec.thread_tile = std::min(ec.thread_tile, max_tile);
      add_rung(fc, ec, "strategy-fallback: result cache -> intermediate sums");
    }
    // Step 3: BCCOO+ -> BCCOO (drops the combine kernel entirely).
    if (fc.slices > 1) {
      fc.slices = 1;
      add_rung(fc, ec, "format-fallback: BCCOO+ -> BCCOO (slices=1)");
    }
    // Share the built format between rungs with an identical FormatConfig
    // (the expensive part of a rung is Bccoo::build).
    for (std::size_t i = 1; i < rungs_.size(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (rungs_[i].fc.block_w == rungs_[j].fc.block_w &&
            rungs_[i].fc.block_h == rungs_[j].fc.block_h &&
            rungs_[i].fc.slices == rungs_[j].fc.slices &&
            rungs_[i].fc.bf_word == rungs_[j].fc.bf_word) {
          rungs_[i].format = rungs_[j].format;  // may still be null (lazy)
        }
      }
    }
  }

  /// Freezes the failed attempt's journal into a RecordedRun (and dumps it
  /// when journal_prefix asks for files).  The geometry comes from the
  /// rung's plan when the engine got far enough to build one.
  void capture_failure(const Rung& rung, FaultRecord& rec) {
    sim::RecordedRun run;
    if (rung.engine) {
      run.num_workgroups = rung.engine->plan().num_workgroups;
      run.workgroup_size = rung.ec.workgroup_size;
      run.workers = rung.ec.workers;
    }
    if (fault_) {
      run.fault = fault_->plan();
      run.spin_budget_override = fault_->spin_budget_override;
    }
    run.events = recorder_.journal().snapshot();
    last_failure_ = run;
    has_last_failure_ = true;
    failure_count_++;
    if (!opt_.journal_prefix.empty()) {
      // pid + process-wide sequence => unique per attempt, across engines
      // and across daemon restarts sharing a journal directory.  A plain
      // per-engine counter collides as soon as two concurrent requests to
      // the same prefix both fail their first attempt.
      static std::atomic<std::uint64_t> dump_seq{0};
      const std::string path =
          opt_.journal_prefix + "." + std::to_string(::getpid()) + "." +
          std::to_string(dump_seq.fetch_add(1, std::memory_order_relaxed));
      io::save_journal_file(path, run);
      rec.journal_file = path;
    }
  }

  void add_rung(const FormatConfig& fc, const ExecConfig& ec,
                std::string label) {
    Rung r;
    r.fc = fc;
    r.ec = ec;
    r.label = std::move(label);
    rungs_.push_back(std::move(r));
  }

  /// Compares a deterministic sample of rows of `y` against the serial CSR
  /// reference.  O(sample_rows * nnz/row) — cheap relative to the SpMV.
  bool sampled_residual_ok(std::span<const real_t> x,
                           std::span<const real_t> y,
                           std::string& detail) const {
    const auto rows = static_cast<std::uint64_t>(a_.rows);
    if (rows == 0) return true;
    // sample_rows >= rows upgrades to an exhaustive check (deterministic
    // detection — random sampling with replacement can miss a single
    // corrupted row no matter how many samples are drawn).
    const bool full = static_cast<std::uint64_t>(
                          std::max(0, opt_.sample_rows)) >= rows;
    const auto n = full ? rows
                        : static_cast<std::uint64_t>(std::min<std::int64_t>(
                              opt_.sample_rows, a_.rows));
    SplitMix64 rng(0xC0FFEE);
    for (std::uint64_t k = 0; k < n; ++k) {
      // Cover the matrix ends (first/last rows hold the carry chain's
      // boundary cases), fill the rest with seeded samples.
      std::uint64_t r;
      if (full) {
        r = k;
      } else if (k == 0) {
        r = 0;
      } else if (k == 1) {
        r = rows - 1;
      } else {
        r = rng.next_below(rows);
      }
      real_t ref = 0.0;
      for (index_t e = csr_.row_ptr[r]; e < csr_.row_ptr[r + 1]; ++e) {
        ref += csr_.vals[static_cast<std::size_t>(e)] *
               x[static_cast<std::size_t>(
                   csr_.col_idx[static_cast<std::size_t>(e)])];
      }
      const real_t got = y[static_cast<std::size_t>(r)];
      const double scale = std::max(1.0, std::abs(ref));
      if (!(std::abs(got - ref) <= opt_.tolerance * scale)) {
        detail = "row " + std::to_string(r) + ": got " + std::to_string(got) +
                 ", reference " + std::to_string(ref);
        return false;
      }
    }
    return true;
  }

  fmt::Coo a_;          ///< kept for format rebuilds on format-fallback rungs
  fmt::Csr csr_;        ///< CPU reference: sampling + the terminal rung
  sim::DeviceSpec dev_;
  ResilientOptions opt_;
  sim::FaultInjector* fault_ = nullptr;
  sim::FlightRecorder recorder_;      ///< watchdog + journal for every attempt
  sim::RecordedRun last_failure_;     ///< journal of the latest failed attempt
  bool has_last_failure_ = false;
  int failure_count_ = 0;             ///< across run() calls, names the dumps
  const Rung* last_rung_ = nullptr;   ///< rung of the most recent attempt
  std::vector<Rung> rungs_;
};

}  // namespace yaspmv::core
