// Structured error taxonomy for the whole pipeline.
//
// Every runtime failure the engine, simulator, tuner or I/O layer can hit is
// classified by a Status code and raised as a subclass of SpmvError, so
// callers (most importantly core::ResilientEngine and tune::tune) can react
// per failure class instead of string-matching what() of an ad-hoc
// std::runtime_error.  Argument-contract violations keep throwing
// std::invalid_argument via require() — those are caller bugs, not runtime
// faults, and must not trigger the degradation ladder.
#pragma once

#include <stdexcept>
#include <string>

namespace yaspmv {

/// Failure classes, ordered roughly by where in the pipeline they surface.
enum class Status {
  kOk = 0,
  kSyncTimeout,       ///< adjacent-sync wait exceeded its spin budget / chain broke
  kLaunchFailure,     ///< a kernel launch failed (device rejected or injected)
  kDataCorruption,    ///< results or payload failed a verification check
  kFormatInvalid,     ///< a format's structural invariants do not hold
  kResourceExceeded,  ///< device resource limits (shared memory, registers, ...)
  kIoError,           ///< file/stream level failure (open, read, write)
  kScheduleDiverged,  ///< a replayed interleaving no longer matches reality
  kIntegrityFault,    ///< a checksum-verified apply detected silent corruption
};

inline const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kSyncTimeout: return "sync-timeout";
    case Status::kLaunchFailure: return "launch-failure";
    case Status::kDataCorruption: return "data-corruption";
    case Status::kFormatInvalid: return "format-invalid";
    case Status::kResourceExceeded: return "resource-exceeded";
    case Status::kIoError: return "io-error";
    case Status::kScheduleDiverged: return "schedule-diverged";
    case Status::kIntegrityFault: return "integrity-fault";
  }
  return "unknown";
}

/// Base of the failure hierarchy.  what() is "<status>: <detail>".
class SpmvError : public std::runtime_error {
 public:
  SpmvError(Status code, const std::string& msg)
      : std::runtime_error(std::string(to_string(code)) + ": " + msg),
        code_(code) {}

  Status code() const { return code_; }

 private:
  Status code_;
};

/// An adjacent-synchronization wait gave up: the predecessor workgroup never
/// published its Grp_sum entry (dead, stalled, or dropped by fault injection).
class SyncTimeout : public SpmvError {
 public:
  explicit SyncTimeout(const std::string& msg)
      : SpmvError(Status::kSyncTimeout, msg) {}
};

/// A kernel launch failed before any workgroup ran.
class LaunchFailure : public SpmvError {
 public:
  explicit LaunchFailure(const std::string& msg)
      : SpmvError(Status::kLaunchFailure, msg) {}
};

/// Computed or stored data failed an integrity check (sampled-row residual,
/// payload checksum, round-trip mismatch).
class DataCorruption : public SpmvError {
 public:
  explicit DataCorruption(const std::string& msg)
      : SpmvError(Status::kDataCorruption, msg) {}
};

/// A format object violates its structural invariants (Bccoo::validate, the
/// binary loader's cross-checks, a malformed Matrix Market stream).
class FormatInvalid : public SpmvError {
 public:
  explicit FormatInvalid(const std::string& msg)
      : SpmvError(Status::kFormatInvalid, msg) {}
};

/// Stream/file level failure: cannot open, short read/write.
class IoError : public SpmvError {
 public:
  explicit IoError(const std::string& msg)
      : SpmvError(Status::kIoError, msg) {}
};

/// A replayed schedule stopped matching the re-executed run: the recorded
/// step and the operation the kernel actually performed disagree (different
/// fault plan, different matrix/config, or a schedule edited into
/// inconsistency).  Distinct from SyncTimeout so replay tooling can tell "the
/// bug reproduced" from "the repro is stale".
class ScheduleDiverged : public SpmvError {
 public:
  explicit ScheduleDiverged(const std::string& msg)
      : SpmvError(Status::kScheduleDiverged, msg) {}
};

/// An ABFT checksum-verified apply caught silent corruption: sum(y) and the
/// precomputed column-checksum dot (A^T 1)^T x disagree beyond the computed
/// rounding bound.  Distinct from DataCorruption (which covers loud payload
/// failures like sampled-residual mismatches on known-bad data) so the
/// degradation ladder can apply its retry -> validate+rebuild -> degrade
/// policy only to faults that plausibly came from a transient bit flip.
class IntegrityFault : public SpmvError {
 public:
  explicit IntegrityFault(const std::string& msg)
      : SpmvError(Status::kIntegrityFault, msg) {}
};

}  // namespace yaspmv
