// Compile-time kernel specialization grid for the native BCCOO apply.
//
// The tuner prunes the block-dimension space to a handful of configs
// (tune/tuner.cpp: pruned_block_dims, the paper's Section 5 pruning) but the
// generic CpuSpmv executes every one of them through a single chunk kernel
// with runtime `block_w`/`block_h` loop bounds, an indirect dense-dot call
// per block row, and a column-stream switch per decode tile.  On the
// small-block configs that win on short-row matrices those branches ARE the
// inner loop.  This header instantiates one specialized chunk kernel per
// point of the grid
//
//     block_w in {1, 2, 4, 8}  x  block_h in {1, 2, 4}  x
//     ColStream in {raw, short, delta}
//
// with the block loops fully unrolled at compile time: a fixed
// `block_h`-row accumulator tile, width-`block_w` x-gathers feeding the
// fixed-width dense dots of simd.hpp (simd::dot_dense_fixed), and no
// runtime dims anywhere in the hot loop.  The dispatch layer in
// cpu/spmv.hpp routes an exact (bw, bh, stream) match here and falls back
// to the generic kernel otherwise — configs outside the grid and
// SegSumMode::kSerialFold keep the generic path.
//
// Bitwise-parity contract: every kernel in the grid mirrors the generic
// `CpuSpmv::process_chunk` *operation for operation* — same accumulation
// order, same short-segment heuristic on the scalar path, same tile
// splits, same dispatched SIMD primitives wherever the levels'
// expressions differ (see dot_dense_fixed's W=8 note).  At a fixed
// (threads, simd level, segsum mode) a specialized kernel produces bits
// identical to the generic one; kernel_grid_test sweeps every
// instantiation to enforce this.  Do not "optimise" a kernel body here in
// a way that reassociates floating-point work — that forks the
// determinism contract this grid extends.
//
// The grid is also the staging point for later emitting the same
// instantiations through codegen/opencl: each GridEntry's id names the
// kernel a code generator would emit.
//
// Budget note: tools/check_kernel_grid.sh counts YASPMV_GRID_ENTRY /
// YASPMV_SPMM_GRID_ENTRY occurrences and the stripped yaspmv_cli size.
// Grow the grid deliberately (and bump the budget there), not by accident.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/cpu/segfix.hpp"
#include "yaspmv/cpu/simd.hpp"

namespace yaspmv::cpu::grid {

/// Dispatch knob for CpuSpmv/CpuSpmm: kAuto routes exact grid matches to
/// their specialized instantiation, kGeneric pins the generic kernel (the
/// bench baseline and the parity test's reference).
enum class KernelDispatch : std::uint8_t { kAuto = 0, kGeneric = 1 };

/// Everything a specialized chunk kernel needs from the engine, bundled so
/// the kernels stay free functions (function-pointer table entries) instead
/// of members.  Built per apply by CpuSpmv::spmv — pointers into the
/// engine's per-call state, never owned here.
struct ChunkCtx {
  const core::Bccoo* fmt;
  const std::size_t* chunk_start;   ///< nchunks+1 block boundaries
  const index_t* chunk_first_seg;   ///< nchunks+1 first-segment ordinals
  real_t* firsts;                   ///< per chunk x block_h deferred firsts
  real_t* carries;                  ///< per chunk x block_h trailing carries
  std::size_t pad_bcol;             ///< padded last block column (or -1)
  const real_t* xtail;              ///< tail-redirect scratch (pad case only)
};

using ChunkKernelFn = void (*)(const ChunkCtx&, std::size_t c,
                               const real_t* x, real_t* out);

/// Column source of decode tile [t0, t1) with the stream fixed at compile
/// time — the `if constexpr` twin of CpuSpmv::tile_cols.  Raw mode returns
/// a pointer straight into col_index (buf and the decode kernels unused);
/// compressed modes expand into `buf` exactly like the generic path.
template <core::ColStream CS>
inline const index_t* tile_cols_fixed(const core::Bccoo& f, std::size_t t0,
                                      std::size_t t1, index_t* buf,
                                      simd::DecodeShortFn dshort,
                                      simd::DecodeDeltaFn ddelta) {
  if constexpr (CS == core::ColStream::kShort) {
    (void)ddelta;
    dshort(f.short_cols.data() + t0, buf, t1 - t0);
    return buf;
  } else if constexpr (CS == core::ColStream::kDelta) {
    (void)dshort;
    const std::size_t t = t0 / core::Bccoo::kColTile;
    ddelta(f.delta_cols.data() + t0, t1 - t0,
           f.delta_escapes.data() + f.delta_escape_start[t], buf);
    return buf;
  } else {
    (void)buf;
    (void)dshort;
    (void)ddelta;
    return f.col_index.data() + t0;
  }
}

/// One specialized chunk kernel: CpuSpmv::process_chunk with (block_w,
/// block_h, stream) burned in.  Every branch of the generic body is
/// mirrored — including the scalar path's short-segment heuristic, whose
/// two loops produce DIFFERENT bits (single-pass accumulates per non-zero,
/// the piece loop reduces per piece through the SIMD dot), so the
/// specialized kernel must take the same branch the generic one would.
template <int BW, int BH, core::ColStream CS>
void run_chunk(const ChunkCtx& ctx, std::size_t c, const real_t* x,
               real_t* out) {
  static_assert((BW == 1 || BW == 2 || BW == 4 || BW == 8) &&
                    (BH == 1 || BH == 2 || BH == 4),
                "outside the tuner's pruned grid — extend deliberately");
  const core::Bccoo& f = *ctx.fmt;
  const std::size_t b0 = ctx.chunk_start[c];
  const std::size_t b1 = ctx.chunk_start[c + 1];
  index_t seg = ctx.chunk_first_seg[c];
  const std::uint32_t* words = f.bit_flags.words().data();
  simd::DecodeShortFn dshort = nullptr;
  simd::DecodeDeltaFn ddelta = nullptr;
  if constexpr (CS == core::ColStream::kShort) dshort = simd::decode_short();
  if constexpr (CS == core::ColStream::kDelta) ddelta = simd::decode_delta();
  index_t buf[core::Bccoo::kColTile];
  constexpr std::size_t kTile = core::Bccoo::kColTile;
  if constexpr (BW == 1 && BH == 1) {
    const real_t* vals = f.value_rows[0].data();
    // Same chunk-shape heuristic as the generic scalar path: short average
    // segments take the single-pass loop, long ones the piece loop.  The
    // branch depends only on the format and the chunk decomposition, so
    // specialized and generic always agree on it.
    const std::size_t stops_c =
        static_cast<std::size_t>(ctx.chunk_first_seg[c + 1]) -
        static_cast<std::size_t>(ctx.chunk_first_seg[c]);
    if (stops_c * simd::kShortSegment > b1 - b0) {
      real_t acc = 0.0;
      bool fs = true;
      for (std::size_t t0 = b0; t0 < b1; t0 += kTile) {
        const std::size_t t1 = std::min(t0 + kTile, b1);
        const index_t* tc = tile_cols_fixed<CS>(f, t0, t1, buf, dshort, ddelta);
        for (std::size_t i = t0; i < t1; ++i) {
          acc += vals[i] * x[static_cast<std::size_t>(tc[i - t0])];
          if (!((words[i >> 5] >> (i & 31u)) & 1u)) {  // row stop
            if (fs) {
              ctx.firsts[c] = acc;
              fs = false;
            } else {
              out[static_cast<std::size_t>(
                  f.seg_to_block_row[static_cast<std::size_t>(seg)])] = acc;
            }
            acc = 0.0;
            ++seg;
          }
        }
      }
      ctx.carries[c] = acc;
      return;
    }
    const simd::DotRangeFn dot = simd::dot_range();
    real_t part = 0.0;
    bool first_stop = true;
    for (std::size_t t0 = b0; t0 < b1; t0 += kTile) {
      const std::size_t t1 = std::min(t0 + kTile, b1);
      const index_t* tc = tile_cols_fixed<CS>(f, t0, t1, buf, dshort, ddelta);
      const real_t* tv = vals + t0;
      const std::size_t tn = t1 - t0;
      std::size_t i = t0;
      for (;;) {
        const std::size_t stop = simd::next_row_stop(words, i, t1);
        if (stop == t1) {  // open piece continues into the next tile
          if (i < t1) {
            part += simd::dot_piece(dot, tv, tc, x, i - t0, tn, tn);
          }
          break;
        }
        const real_t s =
            part + simd::dot_piece(dot, tv, tc, x, i - t0, stop + 1 - t0, tn);
        part = 0.0;
        if (first_stop) {
          ctx.firsts[c] = s;
          first_stop = false;
        } else {
          out[static_cast<std::size_t>(
              f.seg_to_block_row[static_cast<std::size_t>(seg)])] = s;
        }
        ++seg;
        i = stop + 1;
      }
    }
    ctx.carries[c] = part;
    return;
  } else {
    // Blocked body: the value-row base pointers are hoisted out of the
    // block loop (the generic kernel re-derives f.value_rows[k].data()
    // per block per row) and both the k-loop trip count and the dense-dot
    // width are compile-time constants, so the whole accumulator update
    // flattens into straight-line multiply-adds.
    simd::DotDenseFn bdot = nullptr;
    if constexpr (BW == 2 || BW == 8) bdot = simd::dot_dense();
    const real_t* vrow[BH];
    for (int k = 0; k < BH; ++k) vrow[k] = f.value_rows[k].data();
    real_t acc[BH] = {};
    bool first_stop = true;
    for (std::size_t t0 = b0; t0 < b1; t0 += kTile) {
      const std::size_t t1 = std::min(t0 + kTile, b1);
      const index_t* tc = tile_cols_fixed<CS>(f, t0, t1, buf, dshort, ddelta);
      for (std::size_t i = t0; i < t1; ++i) {
        const auto bcol = static_cast<std::size_t>(tc[i - t0]);
        const real_t* xv =
            bcol == ctx.pad_bcol ? ctx.xtail : x + bcol * BW;
        if (i + 4 < t1) {
          __builtin_prefetch(x + static_cast<std::size_t>(tc[i + 4 - t0]) * BW);
        }
        for (int k = 0; k < BH; ++k) {
          acc[k] += simd::dot_dense_fixed<BW>(
              vrow[k] + i * static_cast<std::size_t>(BW), xv, bdot);
        }
        if (!f.bit_flags.get(i)) {  // row stop
          if (first_stop) {
            for (int k = 0; k < BH; ++k) {
              ctx.firsts[c * BH + static_cast<std::size_t>(k)] = acc[k];
              acc[k] = 0.0;
            }
            first_stop = false;
          } else {
            const auto sbrow = static_cast<std::size_t>(
                f.seg_to_block_row[static_cast<std::size_t>(seg)]);
            for (int k = 0; k < BH; ++k) {
              out[sbrow * BH + static_cast<std::size_t>(k)] = acc[k];
              acc[k] = 0.0;
            }
          }
          ++seg;
        }
      }
    }
    for (int k = 0; k < BH; ++k) {
      ctx.carries[c * BH + static_cast<std::size_t>(k)] = acc[k];
    }
  }
}

/// One point of the specialization grid.  `id` is the stable kernel name
/// recorded by the tuner / plan cache and reported by serve's kStats
/// ("generic" everywhere the grid does not apply).
struct GridEntry {
  int bw;
  int bh;
  core::ColStream cs;
  ChunkKernelFn fn;
  const char* id;
};

// The instantiation table.  Every entry goes through this macro so
// tools/check_kernel_grid.sh can count instantiations by grepping the
// source — add entries deliberately and bump the budget there.
#define YASPMV_GRID_ENTRY(W, H, STREAM, SLUG)                     \
  GridEntry {                                                     \
    W, H, core::ColStream::STREAM,                                \
        &run_chunk<W, H, core::ColStream::STREAM>,                \
        "grid/w" #W "h" #H "/" SLUG                               \
  }

inline constexpr GridEntry kGrid[] = {
    YASPMV_GRID_ENTRY(1, 1, kRaw, "raw"),
    YASPMV_GRID_ENTRY(1, 1, kShort, "short"),
    YASPMV_GRID_ENTRY(1, 1, kDelta, "delta"),
    YASPMV_GRID_ENTRY(2, 1, kRaw, "raw"),
    YASPMV_GRID_ENTRY(2, 1, kShort, "short"),
    YASPMV_GRID_ENTRY(2, 1, kDelta, "delta"),
    YASPMV_GRID_ENTRY(4, 1, kRaw, "raw"),
    YASPMV_GRID_ENTRY(4, 1, kShort, "short"),
    YASPMV_GRID_ENTRY(4, 1, kDelta, "delta"),
    YASPMV_GRID_ENTRY(8, 1, kRaw, "raw"),
    YASPMV_GRID_ENTRY(8, 1, kShort, "short"),
    YASPMV_GRID_ENTRY(8, 1, kDelta, "delta"),
    YASPMV_GRID_ENTRY(1, 2, kRaw, "raw"),
    YASPMV_GRID_ENTRY(1, 2, kShort, "short"),
    YASPMV_GRID_ENTRY(1, 2, kDelta, "delta"),
    YASPMV_GRID_ENTRY(2, 2, kRaw, "raw"),
    YASPMV_GRID_ENTRY(2, 2, kShort, "short"),
    YASPMV_GRID_ENTRY(2, 2, kDelta, "delta"),
    YASPMV_GRID_ENTRY(4, 2, kRaw, "raw"),
    YASPMV_GRID_ENTRY(4, 2, kShort, "short"),
    YASPMV_GRID_ENTRY(4, 2, kDelta, "delta"),
    YASPMV_GRID_ENTRY(8, 2, kRaw, "raw"),
    YASPMV_GRID_ENTRY(8, 2, kShort, "short"),
    YASPMV_GRID_ENTRY(8, 2, kDelta, "delta"),
    YASPMV_GRID_ENTRY(1, 4, kRaw, "raw"),
    YASPMV_GRID_ENTRY(1, 4, kShort, "short"),
    YASPMV_GRID_ENTRY(1, 4, kDelta, "delta"),
    YASPMV_GRID_ENTRY(2, 4, kRaw, "raw"),
    YASPMV_GRID_ENTRY(2, 4, kShort, "short"),
    YASPMV_GRID_ENTRY(2, 4, kDelta, "delta"),
    YASPMV_GRID_ENTRY(4, 4, kRaw, "raw"),
    YASPMV_GRID_ENTRY(4, 4, kShort, "short"),
    YASPMV_GRID_ENTRY(4, 4, kDelta, "delta"),
    YASPMV_GRID_ENTRY(8, 4, kRaw, "raw"),
    YASPMV_GRID_ENTRY(8, 4, kShort, "short"),
    YASPMV_GRID_ENTRY(8, 4, kDelta, "delta"),
};

#undef YASPMV_GRID_ENTRY

/// Exact-match lookup; nullptr for configs outside the grid (the caller
/// keeps the generic kernel).  The table is 36 entries — a linear scan at
/// engine-construction time, never in the hot loop.
inline const GridEntry* find(int bw, int bh, core::ColStream cs) {
  for (const GridEntry& e : kGrid) {
    if (e.bw == bw && e.bh == bh && e.cs == cs) return &e;
  }
  return nullptr;
}

/// The kernel id a CpuSpmv built with kAuto dispatch would report for this
/// config, without building one.  Pure function of its arguments — the
/// tuner and serve use it to record/attribute plans, and plan replay
/// depends on it matching the engine's actual dispatch.
inline const char* dispatch_kernel_id(int bw, int bh, core::ColStream cs,
                                      SegSumMode mode) {
  if (mode == SegSumMode::kSerialFold) return "generic";
  const GridEntry* e = find(bw, bh, cs);
  return e ? e->id : "generic";
}

// ---------------------------------------------------------------------------
// SpMM panel grid: CpuSpmm::fused_scalar's chunk body specialized over the
// column stream (its block dims are fixed 1x1 by construction).  The panel
// width k stays a runtime parameter — it is workload, not format.
// ---------------------------------------------------------------------------

struct SpmmCtx {
  const core::Bccoo* fmt;
  const std::size_t* starts;
  const index_t* first_seg;
  real_t* firsts;
  real_t* carries;
  real_t* acc_panel;
};

using SpmmKernelFn = void (*)(const SpmmCtx&, std::size_t c, const real_t* X,
                              real_t* Y, std::size_t kz, std::size_t colsz,
                              std::size_t rowsz);

/// CpuSpmm::fused_scalar's chunk body with the column stream burned in —
/// same accumulation order, same panel assignment, bitwise identical to the
/// generic fused pass at a fixed (threads, simd level, segsum mode).
template <core::ColStream CS>
void run_spmm_chunk(const SpmmCtx& ctx, std::size_t c, const real_t* X,
                    real_t* Y, std::size_t kz, std::size_t colsz,
                    std::size_t rowsz) {
  const core::Bccoo& f = *ctx.fmt;
  const real_t* vals = f.value_rows[0].data();
  simd::DecodeShortFn dshort = nullptr;
  simd::DecodeDeltaFn ddelta = nullptr;
  if constexpr (CS == core::ColStream::kShort) dshort = simd::decode_short();
  if constexpr (CS == core::ColStream::kDelta) ddelta = simd::decode_delta();
  real_t* acc = ctx.acc_panel + c * kz;
  std::fill(acc, acc + kz, 0.0);
  index_t seg = ctx.first_seg[c];
  bool first_stop = true;
  index_t buf[core::Bccoo::kColTile];
  constexpr std::size_t kTile = core::Bccoo::kColTile;
  for (std::size_t t0 = ctx.starts[c]; t0 < ctx.starts[c + 1]; t0 += kTile) {
    const std::size_t t1 = std::min(t0 + kTile, ctx.starts[c + 1]);
    const index_t* tc = tile_cols_fixed<CS>(f, t0, t1, buf, dshort, ddelta);
    for (std::size_t i = t0; i < t1; ++i) {
      const real_t v = vals[i];
      const auto col = static_cast<std::size_t>(tc[i - t0]);
      if (i + 8 < t1) {
        __builtin_prefetch(X + static_cast<std::size_t>(tc[i + 8 - t0]));
      }
      for (std::size_t j = 0; j < kz; ++j) {
        acc[j] += v * X[j * colsz + col];  // one decode, k FMAs
      }
      if (!f.bit_flags.get(i)) {
        if (first_stop) {
          std::copy(acc, acc + kz, ctx.firsts + c * kz);
          first_stop = false;
        } else {
          const auto row = static_cast<std::size_t>(
              f.seg_to_block_row[static_cast<std::size_t>(seg)]);
          for (std::size_t j = 0; j < kz; ++j) Y[j * rowsz + row] = acc[j];
        }
        std::fill(acc, acc + kz, 0.0);
        ++seg;
      }
    }
  }
  std::copy(acc, acc + kz, ctx.carries + c * kz);
}

struct SpmmGridEntry {
  core::ColStream cs;
  SpmmKernelFn fn;
  const char* id;
};

#define YASPMV_SPMM_GRID_ENTRY(STREAM, SLUG)                       \
  SpmmGridEntry {                                                  \
    core::ColStream::STREAM, &run_spmm_chunk<core::ColStream::STREAM>, \
        "grid/spmm/" SLUG                                          \
  }

inline constexpr SpmmGridEntry kSpmmGrid[] = {
    YASPMV_SPMM_GRID_ENTRY(kRaw, "raw"),
    YASPMV_SPMM_GRID_ENTRY(kShort, "short"),
    YASPMV_SPMM_GRID_ENTRY(kDelta, "delta"),
};

#undef YASPMV_SPMM_GRID_ENTRY

inline const SpmmGridEntry* find_spmm(core::ColStream cs) {
  for (const SpmmGridEntry& e : kSpmmGrid) {
    if (e.cs == cs) return &e;
  }
  return nullptr;
}

}  // namespace yaspmv::cpu::grid
