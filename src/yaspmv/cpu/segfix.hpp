// Carry-chain-free segmented-sum fix-up (Liu & Vinter, "Speculative
// Segmented Sum for Sparse Matrix-Vector Multiplication on Heterogeneous
// Processors", arXiv 1504.06474).
//
// The chunk pass of the native backend computes, per chunk c, the sum of
// its *first* open segment (`firsts[c]`) and the running sum of its last
// open segment (`carries[c]`), speculatively assuming a zero incoming
// carry.  The legacy repair was a serial left fold over all chunks — an
// O(nchunks) sequential tail executed after every parallel apply, which is
// the Amdahl term that capped many-thread scaling.  This header replaces it
// with a three-pass fix-up whose only serial step is O(threads):
//
//   A. per-group fold     groups = min(threads, nchunks) contiguous chunk
//                         ranges; each group left-folds its chunks into a
//                         (has_stop, carry[lanes]) summary.  Parallel,
//                         disjoint writes.
//   B. exclusive scan     a Blelloch up/down sweep over the group summaries
//                         computes each group's incoming carry.  Serial —
//                         but over <= threads elements, and the *pairwise
//                         association* is fixed by npow2 = bit_ceil(groups),
//                         i.e. by the chunk grid alone, never by execution
//                         order.
//   C. per-group apply    each group walks its chunks with its incoming
//                         carry: chunks that close a segment get their
//                         first-segment slot written (out = carry + firsts)
//                         and reset the running carry; open chunks fold
//                         their panel into it.  Parallel, disjoint writes.
//
// Determinism: every FP operation's operand pairing is a pure function of
// (nchunks, lanes, threads) — the group bounds, the tree shape, and the
// in-group fold order do not depend on which worker ran what or when.  So
// ordered and unordered scheduling produce bitwise-identical results, and a
// fixed (threads, level) is bitwise reproducible run-to-run.  The tree
// association differs from the legacy serial fold's (FP addition is not
// associative), so SegSumMode::kSerialFold is kept to reproduce the
// pre-speculative bits exactly — benches use it as the baseline arm.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "yaspmv/util/common.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv::cpu {

/// How the segmented sum schedules its chunk pass and repairs carries.
enum class SegSumMode : int {
  kSpeculative = 0,         ///< unordered range claims + parallel tree fix-up
  kSpeculativeOrdered = 1,  ///< ordered ticket claims + the same fix-up
                            ///  (bitwise equal to kSpeculative)
  kSerialFold = 2,          ///< ordered claims + legacy serial carry fold
                            ///  (pre-speculative bits, bench baseline)
};

inline const char* to_string(SegSumMode m) {
  switch (m) {
    case SegSumMode::kSerialFold: return "serial";
    case SegSumMode::kSpeculativeOrdered: return "ordered";
    default: return "speculative";
  }
}

/// Process-wide default, overridable via YASPMV_SEGSUM=speculative|ordered|
/// serial (mirrors the YASPMV_SIMD escape hatch: one knob to reproduce the
/// legacy execution on a machine where the new path misbehaves).
inline SegSumMode default_segsum_mode() {
  if (const char* env = std::getenv("YASPMV_SEGSUM")) {
    if (std::strcmp(env, "serial") == 0) return SegSumMode::kSerialFold;
    if (std::strcmp(env, "ordered") == 0) {
      return SegSumMode::kSpeculativeOrdered;
    }
  }
  return SegSumMode::kSpeculative;
}

/// Scratch for speculative_fixup, held by the engine so the hot apply path
/// allocates nothing after the first call.  `group` holds npow2 lane panels
/// (group summaries, swept in place by the Blelloch scan, then reused as
/// each group's running carry in pass C); `has` the matching stop flags.
struct FixupScratch {
  std::vector<real_t> group;
  std::vector<unsigned char> has;
  std::vector<real_t> tmp;  ///< scan scratch panel (lanes elements)
};

/// Below this many total fix-up elements (nchunks * lanes) passes A and C
/// run inline: the whole repair is a few cache lines and a pool launch
/// costs more than the loop.  Purely a scheduling choice — inline and
/// pooled execution are bitwise identical (disjoint writes, fixed folds).
inline constexpr std::size_t kParallelFixupGrain = 4096;

/// Repairs speculative per-chunk segmented sums.  Generic over the additive
/// monoid so the FP path (SIMD-accelerated lane panels) and the semiring
/// path share one structure:
///
///   first_seg[c]      first open segment of chunk c; chunk c closes a
///                     segment iff first_seg[c + 1] > first_seg[c]
///   firsts, carries   lane panels [nchunks x lanes], chunk-major
///   zero              additive identity (0.0, or Semiring::zero())
///   acc(dst, src)     lane-panel fold: dst[k] = add(dst[k], src[k]) for
///                     all k < lanes (dst and src are lane panels)
///   apply(c, inc)     writes chunk c's first-segment output from the
///                     incoming carry panel `inc` (caller owns the output
///                     layout: strided SpMM panels, semiring y, ...)
///   unordered         scheduling mode for passes A and C (results are
///                     identical either way; see the file comment)
///   shard_chunk_start optional shard-affinity hint: nshards + 1 monotone
///                     chunk boundaries (CpuSpmv's shard grid).  Passes A
///                     and C then claim groups shard-first via run_sharded
///                     so each NUMA group repairs the carry panels it wrote
///                     in the chunk pass.  Scheduling only — the group
///                     bounds and the scan tree are untouched, so results
///                     stay bitwise identical with or without the hint.
template <class AccFn, class ApplyFn>
void speculative_fixup(std::size_t nchunks, std::size_t lanes,
                       unsigned threads, bool unordered,
                       const index_t* first_seg, const real_t* firsts,
                       const real_t* carries, real_t zero, AccFn&& acc,
                       ApplyFn&& apply, FixupScratch& s,
                       const std::size_t* shard_chunk_start = nullptr,
                       unsigned nshards = 1) {
  (void)firsts;  // applied by the caller's `apply`; kept for symmetry
  if (nchunks == 0) return;
  const std::size_t ngroups =
      std::min<std::size_t>(threads == 0 ? 1 : threads, nchunks);
  const std::size_t npow2 = std::bit_ceil(ngroups);
  s.group.assign(npow2 * lanes, zero);
  s.has.assign(npow2, 0);
  const auto group_lo = [nchunks, ngroups](std::size_t g) {
    return g * nchunks / ngroups;
  };
  const bool parallel =
      ngroups > 1 && nchunks * lanes >= kParallelFixupGrain;
  // Shard boundaries mapped from chunk indices to group indices (group g
  // covers chunks [group_lo(g), group_lo(g+1))): group-shard s starts at
  // the first group whose chunk range begins at or after the shard's first
  // chunk.  Derived from the shard grid alone, like everything else here.
  std::size_t group_shard[kMaxShards + 1];
  const bool sharded = shard_chunk_start != nullptr && nshards > 1 &&
                       nshards <= kMaxShards && parallel && unordered;
  if (sharded) {
    group_shard[0] = 0;
    group_shard[nshards] = ngroups;
    for (unsigned sh = 1; sh < nshards; ++sh) {
      std::size_t g = group_shard[sh - 1];
      while (g < ngroups && group_lo(g) < shard_chunk_start[sh]) ++g;
      group_shard[sh] = g;
    }
  }
  const auto dispatch = [&](auto&& body) {
    if (!parallel) {
      for (std::size_t g = 0; g < ngroups; ++g) body(0u, g);
    } else if (sharded) {
      parallel_for_sharded(ngroups, group_shard, nshards, threads, body);
    } else if (unordered) {
      parallel_for_unordered(ngroups, threads, body);
    } else {
      parallel_for_ordered(ngroups, threads, body);
    }
  };

  // Pass A: fold each group's chunks into a summary panel.
  dispatch([&](unsigned, std::size_t g) {
    real_t* gc = s.group.data() + g * lanes;  // pre-filled with `zero`
    bool has = false;
    for (std::size_t c = group_lo(g); c < group_lo(g + 1); ++c) {
      if (first_seg[c + 1] > first_seg[c]) {
        std::copy(carries + c * lanes, carries + (c + 1) * lanes, gc);
        has = true;
      } else {
        acc(gc, carries + c * lanes);
      }
    }
    s.has[g] = has ? 1 : 0;
  });

  // Pass B: in-place exclusive Blelloch scan over the npow2 summaries with
  // combine(A, B) = B.has ? B : (A.has, add(A.carry, B.carry)) — "state
  // after running A then B".  Padding slots hold the identity (no stop,
  // zero carry), which is absorbed exactly by min/or semirings and matches
  // the FP path's zero-initialized running carry.
  s.tmp.resize(lanes);
  std::vector<real_t>& tmp_panel = s.tmp;
  for (std::size_t d = 1; d < npow2; d *= 2) {  // up-sweep
    for (std::size_t i = 2 * d - 1; i < npow2; i += 2 * d) {
      // s.group[i] = combine(s.group[i - d], s.group[i])
      if (s.has[i]) continue;
      real_t* node = s.group.data() + i * lanes;
      const real_t* left = s.group.data() + (i - d) * lanes;
      // Preserve the A-then-B operand order: fold node onto a copy of left.
      std::copy(left, left + lanes, tmp_panel.data());
      acc(tmp_panel.data(), node);
      std::copy(tmp_panel.begin(), tmp_panel.end(), node);
      s.has[i] = s.has[i - d];
    }
  }
  std::fill(s.group.begin() + (npow2 - 1) * lanes, s.group.end(), zero);
  s.has[npow2 - 1] = 0;
  for (std::size_t d = npow2 / 2; d >= 1; d /= 2) {  // down-sweep
    for (std::size_t i = 2 * d - 1; i < npow2; i += 2 * d) {
      real_t* left = s.group.data() + (i - d) * lanes;
      real_t* node = s.group.data() + i * lanes;
      // t = left-subtree sum; left = parent prefix;
      // node = combine(parent prefix, t)
      std::copy(left, left + lanes, tmp_panel.data());
      const unsigned char t_has = s.has[i - d];
      std::copy(node, node + lanes, left);
      s.has[i - d] = s.has[i];
      if (t_has) {
        std::copy(tmp_panel.begin(), tmp_panel.end(), node);
        s.has[i] = 1;
      } else {
        // node already holds the parent prefix P; fold t in: add(P, t).
        acc(node, tmp_panel.data());
      }
    }
  }

  // Pass C: walk each group with its incoming carry (now sitting in its
  // leaf slot), writing first-segment outputs and updating the running
  // panel in place.
  dispatch([&](unsigned, std::size_t g) {
    real_t* run = s.group.data() + g * lanes;
    for (std::size_t c = group_lo(g); c < group_lo(g + 1); ++c) {
      if (first_seg[c + 1] > first_seg[c]) {
        apply(c, run);
        std::copy(carries + c * lanes, carries + (c + 1) * lanes, run);
      } else {
        acc(run, carries + c * lanes);
      }
    }
  });
}

}  // namespace yaspmv::cpu
