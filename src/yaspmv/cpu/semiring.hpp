// Semiring-generalized SpMV over BCCOO (GraphBLAS-style): replaces
// (+, *, 0) with a user semiring, turning the segmented-sum kernel into a
// graph primitive — min-plus gives one Bellman-Ford relaxation step,
// or-and gives BFS frontiers, max-times gives Viterbi-style propagation.
//
// Restriction: semirings other than plus-times require 1x1 blocks, because
// blocked formats zero-fill partially occupied blocks and a structural
// zero is only neutral under the standard ring (in min-plus a stored 0.0
// would be a real zero-weight edge).  The entry point enforces this.
#pragma once

#include <limits>
#include <span>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/cpu/segfix.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv::cpu {

/// (min, +) semiring: shortest-path relaxation.
struct MinPlus {
  static constexpr bool is_plus_times = false;
  static real_t zero() { return std::numeric_limits<real_t>::infinity(); }
  static real_t add(real_t a, real_t b) { return a < b ? a : b; }
  static real_t mul(real_t a, real_t b) { return a + b; }
};

/// (max, *) semiring: most-probable-path propagation.
struct MaxTimes {
  static constexpr bool is_plus_times = false;
  static real_t zero() { return 0.0; }
  static real_t add(real_t a, real_t b) { return a > b ? a : b; }
  static real_t mul(real_t a, real_t b) { return a * b; }
};

/// (or, and) over {0,1}: BFS reachability.
struct OrAnd {
  static constexpr bool is_plus_times = false;
  static real_t zero() { return 0.0; }
  static real_t add(real_t a, real_t b) { return (a != 0.0 || b != 0.0) ? 1.0 : 0.0; }
  static real_t mul(real_t a, real_t b) { return (a != 0.0 && b != 0.0) ? 1.0 : 0.0; }
};

/// The standard ring (for testing the generalized path against spmv).
struct PlusTimes {
  static constexpr bool is_plus_times = true;
  static real_t zero() { return 0.0; }
  static real_t add(real_t a, real_t b) { return a + b; }
  static real_t mul(real_t a, real_t b) { return a * b; }
};

/// y = A (x) under the semiring, parallel over block chunks with the same
/// carry-resolution structure as CpuSpmv (the semiring `add` must be
/// associative for the split to be valid; all of the above are): unordered
/// chunk claims plus the speculative fix-up of segfix.hpp by default, with
/// the same kSerialFold escape hatch.  For the exact-absorbing semirings
/// (min/max/or) the tree combine is not merely deterministic but equal to
/// the serial fold — add(zero(), v) == v holds exactly.
template <class Semiring>
void spmv_semiring(const core::Bccoo& f, std::span<const real_t> x,
                   std::span<real_t> y, unsigned threads = 1,
                   SegSumMode mode = default_segsum_mode()) {
  require(x.size() == static_cast<std::size_t>(f.cols) &&
              y.size() == static_cast<std::size_t>(f.rows),
          "spmv_semiring: vector size mismatch");
  require(Semiring::is_plus_times ||
              (f.cfg.block_w == 1 && f.cfg.block_h == 1 && f.cfg.slices == 1),
          "spmv_semiring: non-standard semirings require 1x1 blocks / 1 "
          "slice (block zero-fill is only neutral under plus-times)");
  require(f.cfg.block_w == 1 && f.cfg.block_h == 1,
          "spmv_semiring: implemented for 1x1 blocks");

  std::fill(y.begin(), y.end(), Semiring::zero());
  const std::size_t nb = f.num_blocks;
  if (nb == 0) return;
  const std::size_t nchunks =
      std::max<std::size_t>(1, std::min<std::size_t>(threads * 4, nb));

  std::vector<real_t> firsts(nchunks, Semiring::zero());
  std::vector<real_t> carries(nchunks, Semiring::zero());
  std::vector<index_t> first_seg(nchunks + 1);
  std::vector<std::size_t> starts(nchunks + 1);
  for (std::size_t c = 0; c <= nchunks; ++c) {
    starts[c] = c * nb / nchunks;
    first_seg[c] =
        static_cast<index_t>(f.bit_flags.count_zeros_before(starts[c]));
  }

  const bool unordered = mode == SegSumMode::kSpeculative;
  const auto chunk_body = [&](unsigned, std::size_t c) {
    real_t acc = Semiring::zero();
    index_t seg = first_seg[c];
    bool first_stop = true;
    for (std::size_t i = starts[c]; i < starts[c + 1]; ++i) {
      acc = Semiring::add(
          acc, Semiring::mul(f.value_rows[0][i],
                             x[static_cast<std::size_t>(f.col_index[i])]));
      if (!f.bit_flags.get(i)) {
        if (first_stop) {
          firsts[c] = acc;
          first_stop = false;
        } else {
          y[static_cast<std::size_t>(
              f.seg_to_block_row[static_cast<std::size_t>(seg)])] = acc;
        }
        acc = Semiring::zero();
        ++seg;
      }
    }
    carries[c] = acc;
  };
  if (unordered) {
    parallel_for_unordered(nchunks, threads, chunk_body);
  } else {
    parallel_for_ordered(nchunks, threads, chunk_body);
  }

  if (mode == SegSumMode::kSerialFold) {
    real_t carry = Semiring::zero();
    for (std::size_t c = 0; c < nchunks; ++c) {
      if (first_seg[c + 1] > first_seg[c]) {
        const auto row = static_cast<std::size_t>(
            f.seg_to_block_row[static_cast<std::size_t>(first_seg[c])]);
        y[row] = Semiring::add(y[row], Semiring::add(carry, firsts[c]));
        carry = carries[c];
      } else {
        carry = Semiring::add(carry, carries[c]);
      }
    }
  } else {
    FixupScratch scratch;
    speculative_fixup(
        nchunks, 1, threads, unordered, first_seg.data(), firsts.data(),
        carries.data(), Semiring::zero(),
        [](real_t* dst, const real_t* src) { *dst = Semiring::add(*dst, *src); },
        [&](std::size_t c, const real_t* inc) {
          const auto row = static_cast<std::size_t>(
              f.seg_to_block_row[static_cast<std::size_t>(first_seg[c])]);
          y[row] = Semiring::add(y[row], Semiring::add(*inc, firsts[c]));
        },
        scratch);
  }
}

}  // namespace yaspmv::cpu
