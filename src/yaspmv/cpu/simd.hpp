// SIMD-vectorized segmented-sum primitives for the native CPU backend.
//
// The hot loop of the BCCOO segmented sum is a sparse dot product between
// two row stops: sum of vals[p] * x[cols[p]] over a contiguous range of
// non-zero blocks.  This header provides that primitive in three
// implementations selected by runtime dispatch:
//
//   * portable  — four independent scalar accumulators (breaks the
//     single-accumulator FP-add dependency chain that limits the naive loop
//     to one non-zero per add latency),
//   * AVX2/FMA  — 256-bit lanes with vgatherdpd for x[cols[p]] and fused
//     multiply-add, compiled with a per-function target attribute so the
//     library itself needs no -march flags, plus software prefetch of the
//     gather targets one tile ahead,
//   * AVX-512   — 512-bit lanes with the same gather/FMA structure *and a
//     masked tail*: the sub-8 remainder of a segment piece is handled by one
//     masked load/gather/FMA instead of a scalar epilogue, which is where
//     the win on medium-length segments (nnz/row 30-160) comes from — those
//     pieces spend a third of their length in the epilogue at 256 bits.
//
// Determinism contract: every kernel uses a *fixed* reduction order —
// element p accumulates into lane (p - lo) % W, lanes reduce in a fixed
// tree ((l0 + l2) + (l1 + l3) at W=4), and the tail is folded in a fixed
// position — so for a fixed dispatch level results are bitwise reproducible
// run-to-run, and the levels agree pairwise to FMA rounding (tested at a
// 1-ulp-scaled tolerance).  The dispatch level is fixed at first use (or
// via YASPMV_SIMD / set_level), so a process never mixes kernels across
// repeated runs.
//
// Also here: next_row_stop, a word-at-a-time scan of the packed bit-flag
// array that replaces the per-non-zero branch of the scalar loop with one
// countr_zero per segment piece.
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "yaspmv/util/common.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define YASPMV_SIMD_X86 1
#include <immintrin.h>
#else
#define YASPMV_SIMD_X86 0
#endif

namespace yaspmv::cpu::simd {

/// Dispatch levels.  kPortable is always available; kAvx2 requires x86-64
/// with AVX2+FMA at runtime; kAvx512 additionally requires AVX-512 F+VL
/// (VL for the masked 256-bit index loads in the tail path).  Levels other
/// than the dot/dense kernels treat kAvx512 as kAvx2 — widening them was
/// measured gather-throughput-neutral, so only the dot kernels carry a
/// 512-bit implementation.
enum class Level : int { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

inline const char* to_string(Level l) {
  switch (l) {
    case Level::kAvx512: return "avx512";
    case Level::kAvx2: return "avx2";
    default: return "portable";
  }
}

inline bool cpu_has_avx2() {
#if YASPMV_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

inline bool cpu_has_avx512() {
#if YASPMV_SIMD_X86
  return cpu_has_avx2() && __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

namespace detail {
inline std::atomic<int>& level_storage() {
  static std::atomic<int> level{[] {
    Level l = cpu_has_avx512()  ? Level::kAvx512
              : cpu_has_avx2() ? Level::kAvx2
                               : Level::kPortable;
    if (const char* env = std::getenv("YASPMV_SIMD")) {
      if (std::strcmp(env, "portable") == 0) l = Level::kPortable;
      if (std::strcmp(env, "avx2") == 0 && cpu_has_avx2()) l = Level::kAvx2;
      if (std::strcmp(env, "avx512") == 0 && cpu_has_avx512()) {
        l = Level::kAvx512;
      }
    }
    return static_cast<int>(l);
  }()};
  return level;
}
}  // namespace detail

/// The active dispatch level (initialized once from the CPU probe, or the
/// YASPMV_SIMD=portable|avx2|avx512 environment override).
inline Level active() {
  return static_cast<Level>(detail::level_storage().load(std::memory_order_relaxed));
}

/// Test hook: force a dispatch level (ignored if the machine lacks it).
/// Not intended for concurrent use with running kernels — tests switch
/// levels between runs.
inline void set_level(Level l) {
  if (l == Level::kAvx2 && !cpu_has_avx2()) return;
  if (l == Level::kAvx512 && !cpu_has_avx512()) return;
  detail::level_storage().store(static_cast<int>(l), std::memory_order_relaxed);
}

/// Position of the next row stop (0-bit) at index >= i in the packed
/// bit-flag words, or `end` if none before it.  One countr_zero per word
/// instead of one shift+mask branch per non-zero.
inline std::size_t next_row_stop(const std::uint32_t* words, std::size_t i,
                                 std::size_t end) {
  if (i >= end) return end;
  std::size_t word = i >> 5;
  std::uint32_t zeros = ~words[word] & (~0u << (i & 31u));
  for (;;) {
    if (zeros != 0) {
      const std::size_t pos = (word << 5) + std::countr_zero(zeros);
      return pos < end ? pos : end;
    }
    ++word;
    if ((word << 5) >= end) return end;
    zeros = ~words[word];
  }
}

/// How far ahead (in non-zeros) the gather targets are prefetched.
inline constexpr std::size_t kPrefetchDistance = 16;

/// Gathered sparse dot over [lo, hi): sum of vals[p] * x[cols[p]], portable
/// four-accumulator kernel (the fixed reduction order documented above).
inline real_t dot_range_portable(const real_t* vals, const index_t* cols,
                                 const real_t* x, std::size_t lo,
                                 std::size_t hi) {
  real_t a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t p = lo;
  for (; p + 4 <= hi; p += 4) {
    if (p + kPrefetchDistance + 3 < hi) {
      __builtin_prefetch(x + cols[p + kPrefetchDistance]);
      __builtin_prefetch(x + cols[p + kPrefetchDistance + 3]);
    }
    a0 += vals[p] * x[static_cast<std::size_t>(cols[p])];
    a1 += vals[p + 1] * x[static_cast<std::size_t>(cols[p + 1])];
    a2 += vals[p + 2] * x[static_cast<std::size_t>(cols[p + 2])];
    a3 += vals[p + 3] * x[static_cast<std::size_t>(cols[p + 3])];
  }
  real_t s = (a0 + a2) + (a1 + a3);
  for (; p < hi; ++p) s += vals[p] * x[static_cast<std::size_t>(cols[p])];
  return s;
}

#if YASPMV_SIMD_X86
/// AVX2/FMA twin of dot_range_portable: same lane assignment, same
/// reduction order; products are fused (no intermediate rounding).
__attribute__((target("avx2,fma"))) inline real_t dot_range_avx2(
    const real_t* vals, const index_t* cols, const real_t* x, std::size_t lo,
    std::size_t hi) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t p = lo;
  for (; p + 4 <= hi; p += 4) {
    if (p + kPrefetchDistance + 3 < hi) {
      _mm_prefetch(reinterpret_cast<const char*>(
                       x + cols[p + kPrefetchDistance]),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(
                       x + cols[p + kPrefetchDistance + 3]),
                   _MM_HINT_T0);
    }
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + p));
    // Masked gather with an all-ones mask: same as the plain gather but
    // GCC's plain-form intrinsic expands through an undefined source
    // vector, which trips -Wmaybe-uninitialized.
    const __m256d xv = _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), x, idx,
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
    const __m256d v = _mm256_loadu_pd(vals + p);
    acc = _mm256_fmadd_pd(v, xv, acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  real_t s = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; p < hi; ++p) s += vals[p] * x[static_cast<std::size_t>(cols[p])];
  return s;
}
/// AVX-512 dot kernel: 8-wide gather/FMA with a *masked* tail — the sub-8
/// remainder is one maskz index load + masked gather + maskz value load +
/// FMA (masked-off lanes contribute fma(0, 0, acc) = acc exactly), so there
/// is no scalar epilogue at all.  Lane (p - lo) % 8, fixed reduce
/// ((l0 + l4) + (l2 + l6)) + ((l1 + l5) + (l3 + l7)).
__attribute__((target("avx512f,avx512vl"))) inline real_t dot_range_avx512(
    const real_t* vals, const index_t* cols, const real_t* x, std::size_t lo,
    std::size_t hi) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t p = lo;
  for (; p + 8 <= hi; p += 8) {
    if (p + kPrefetchDistance + 7 < hi) {
      _mm_prefetch(reinterpret_cast<const char*>(
                       x + cols[p + kPrefetchDistance]),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(
                       x + cols[p + kPrefetchDistance + 7]),
                   _MM_HINT_T0);
    }
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + p));
    const __m512d xv = _mm512_i32gather_pd(idx, x, 8);
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(vals + p), xv, acc);
  }
  if (p < hi) {
    const __mmask8 m = static_cast<__mmask8>((1u << (hi - p)) - 1u);
    const __m256i idx = _mm256_maskz_loadu_epi32(m, cols + p);
    const __m512d xv =
        _mm512_mask_i32gather_pd(_mm512_setzero_pd(), m, idx, x, 8);
    acc = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(m, vals + p), xv, acc);
  }
  alignas(64) double l[8];
  _mm512_store_pd(l, acc);
  return ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
}
#else
inline real_t dot_range_avx2(const real_t* vals, const index_t* cols,
                             const real_t* x, std::size_t lo, std::size_t hi) {
  return dot_range_portable(vals, cols, x, lo, hi);
}
inline real_t dot_range_avx512(const real_t* vals, const index_t* cols,
                               const real_t* x, std::size_t lo,
                               std::size_t hi) {
  return dot_range_portable(vals, cols, x, lo, hi);
}
#endif

using DotRangeFn = real_t (*)(const real_t*, const index_t*, const real_t*,
                              std::size_t, std::size_t);

/// The dot kernel for the active dispatch level.  Callers fetch the pointer
/// once per launch so the level check is out of the per-segment loop.
inline DotRangeFn dot_range() {
  switch (active()) {
    case Level::kAvx512: return &dot_range_avx512;
    case Level::kAvx2: return &dot_range_avx2;
    default: return &dot_range_portable;
  }
}

/// Below this length a segment piece is summed by the inline sequential
/// loop instead of the SIMD kernel: one gather quad plus the reduce costs
/// more than a handful of scalar multiply-adds, and short rows dominate the
/// power-law matrices.  The threshold is part of the fixed reduction order
/// (identical on every dispatch level), so short pieces are bitwise equal
/// across levels.
inline constexpr std::size_t kShortSegment = 8;

/// Segment-piece dot with the short/long split.  `pf_bound` is the caller's
/// valid range for prefetch lookahead in `cols` (typically the chunk end),
/// letting short pieces prefetch *across* upcoming segment boundaries —
/// that cross-row lookahead is where the memory-level parallelism on
/// scattered matrices comes from.
inline real_t dot_piece(DotRangeFn fn, const real_t* vals, const index_t* cols,
                        const real_t* x, std::size_t lo, std::size_t hi,
                        std::size_t pf_bound) {
  if (hi - lo < kShortSegment) {
    real_t s = 0.0;
    for (std::size_t p = lo; p < hi; ++p) {
      s += vals[p] * x[static_cast<std::size_t>(cols[p])];
    }
    (void)pf_bound;
    return s;
  }
  return fn(vals, cols, x, lo, hi);
}

// ---- compressed column-stream decode (Sections 2.2 and 4) ----------------
//
// The native kernels never read the 4-byte col_index array when a compressed
// stream is selected: each decode tile (Bccoo::kColTile blocks) is expanded
// into a small L1-resident scratch buffer and the segmented sum indexes that.
// Decode is pure integer arithmetic, so the AVX2 and portable kernels produce
// *identical* buffers — the FP determinism contract is untouched by the
// column mode.

/// Portable u16 -> i32 widen (Section 4 short columns).
inline void decode_short_portable(const std::uint16_t* src, index_t* dst,
                                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<index_t>(src[i]);
  }
}

/// Portable int16 delta decode of one tile (Section 2.2): a running prefix
/// sum starting from 0, where a kDeltaEscape entry reloads the absolute
/// column from the 4-byte side array.  Returns the number of escapes
/// consumed (callers check it against the tile's side-array range).
inline std::size_t decode_delta_portable(const std::int16_t* d, std::size_t n,
                                         const index_t* escapes, index_t* dst) {
  index_t prev = 0;
  std::size_t e = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int16_t di = d[i];
    prev = di == kDeltaEscape ? escapes[e++] : prev + di;
    dst[i] = prev;
  }
  return e;
}

#if YASPMV_SIMD_X86
/// AVX2 twin of decode_short_portable: 8-wide vpmovzxwd.
__attribute__((target("avx2"))) inline void decode_short_avx2(
    const std::uint16_t* src, index_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_cvtepu16_epi32(s));
  }
  for (; i < n; ++i) dst[i] = static_cast<index_t>(src[i]);
}

/// AVX2 twin of decode_delta_portable.  Groups of 8 deltas are checked for
/// escapes with one compare+movemask; escape-free groups take the vector
/// path — sign-extend to i32, in-lane prefix add (shift by 4 then 8 bytes),
/// cross-lane fix-up, broadcast-add the running prefix — and groups with an
/// escape fall back to the scalar loop.  A two-phase variant that breaks
/// the group-to-group latency chain was tried and measured *slower* here:
/// the decode competes with the dot product for issue slots, so total uops
/// matter more than the ~7-cycle carry (EXPERIMENTS.md).  Integer-exact,
/// so the output is bit-identical to the portable kernel.
__attribute__((target("avx2"))) inline std::size_t decode_delta_avx2(
    const std::int16_t* d, std::size_t n, const index_t* escapes,
    index_t* dst) {
  index_t prev = 0;
  std::size_t e = 0;
  std::size_t i = 0;
  const __m128i esc16 = _mm_set1_epi16(kDeltaEscape);
  for (; i + 8 <= n; i += 8) {
    const __m128i d16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi16(d16, esc16)) != 0) {
      for (std::size_t j = 0; j < 8; ++j) {
        const std::int16_t dj = d[i + j];
        prev = dj == kDeltaEscape ? escapes[e++] : prev + dj;
        dst[i + j] = prev;
      }
      continue;
    }
    __m256i v = _mm256_cvtepi16_epi32(d16);
    v = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));
    v = _mm256_add_epi32(v, _mm256_slli_si256(v, 8));
    __m128i lo = _mm256_castsi256_si128(v);
    __m128i hi = _mm256_extracti128_si256(v, 1);
    hi = _mm_add_epi32(hi, _mm_shuffle_epi32(lo, _MM_SHUFFLE(3, 3, 3, 3)));
    const __m128i pv = _mm_set1_epi32(prev);
    lo = _mm_add_epi32(lo, pv);
    hi = _mm_add_epi32(hi, pv);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 4), hi);
    prev = static_cast<index_t>(_mm_extract_epi32(hi, 3));
  }
  for (; i < n; ++i) {
    const std::int16_t di = d[i];
    prev = di == kDeltaEscape ? escapes[e++] : prev + di;
    dst[i] = prev;
  }
  return e;
}
#else
inline void decode_short_avx2(const std::uint16_t* src, index_t* dst,
                              std::size_t n) {
  decode_short_portable(src, dst, n);
}
inline std::size_t decode_delta_avx2(const std::int16_t* d, std::size_t n,
                                     const index_t* escapes, index_t* dst) {
  return decode_delta_portable(d, n, escapes, dst);
}
#endif

using DecodeShortFn = void (*)(const std::uint16_t*, index_t*, std::size_t);
using DecodeDeltaFn = std::size_t (*)(const std::int16_t*, std::size_t,
                                      const index_t*, index_t*);

// Decode is integer-exact, so kAvx512 shares the AVX2 kernels (widening
// them buys nothing — the decode is issue-bound, not width-bound).
inline DecodeShortFn decode_short() {
  return active() != Level::kPortable ? &decode_short_avx2
                                      : &decode_short_portable;
}

inline DecodeDeltaFn decode_delta() {
  return active() != Level::kPortable ? &decode_delta_avx2
                                      : &decode_delta_portable;
}

/// Contiguous dense dot of width w <= 8 (one block row against the padded
/// slice of x), portable kernel with the same lane order as the vector one.
inline real_t dot_dense_portable(const real_t* a, const real_t* b,
                                 std::size_t w) {
  if (w == 1) return a[0] * b[0];
  if (w == 2) return a[0] * b[0] + a[1] * b[1];
  real_t l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t p = 0;
  for (; p + 4 <= w; p += 4) {
    l0 += a[p] * b[p];
    l1 += a[p + 1] * b[p + 1];
    l2 += a[p + 2] * b[p + 2];
    l3 += a[p + 3] * b[p + 3];
  }
  real_t s = (l0 + l2) + (l1 + l3);
  for (; p < w; ++p) s += a[p] * b[p];
  return s;
}

#if YASPMV_SIMD_X86
/// AVX2/FMA twin of dot_dense_portable for the blocked fast path (block
/// widths 4 and 8 take the vector route; narrower widths are scalar).
__attribute__((target("avx2,fma"))) inline real_t dot_dense_avx2(
    const real_t* a, const real_t* b, std::size_t w) {
  if (w < 4) return dot_dense_portable(a, b, w);
  __m256d acc = _mm256_mul_pd(_mm256_loadu_pd(a), _mm256_loadu_pd(b));
  std::size_t p = 4;
  for (; p + 4 <= w; p += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + p), _mm256_loadu_pd(b + p), acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  real_t s = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; p < w; ++p) s += a[p] * b[p];
  return s;
}
/// AVX-512 dense dot: the full-width w == 8 case (the blocked fast path's
/// widest block) is one 512-bit multiply plus the fixed 8-lane reduce;
/// narrower widths share the AVX2 kernel.
__attribute__((target("avx512f,avx512vl"))) inline real_t dot_dense_avx512(
    const real_t* a, const real_t* b, std::size_t w) {
  if (w != 8) return dot_dense_avx2(a, b, w);
  const __m512d prod = _mm512_mul_pd(_mm512_loadu_pd(a), _mm512_loadu_pd(b));
  alignas(64) double l[8];
  _mm512_store_pd(l, prod);
  return ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
}
#else
inline real_t dot_dense_avx2(const real_t* a, const real_t* b, std::size_t w) {
  return dot_dense_portable(a, b, w);
}
inline real_t dot_dense_avx512(const real_t* a, const real_t* b,
                               std::size_t w) {
  return dot_dense_portable(a, b, w);
}
#endif

using DotDenseFn = real_t (*)(const real_t*, const real_t*, std::size_t);

inline DotDenseFn dot_dense() {
  switch (active()) {
    case Level::kAvx512: return &dot_dense_avx512;
    case Level::kAvx2: return &dot_dense_avx2;
    default: return &dot_dense_portable;
  }
}

/// Compile-time-width dense dot for the specialized kernel grid
/// (cpu/kernels_grid.hpp).  The expression MUST be bitwise identical to
/// what `dot_dense()(a, b, W)` produces at every dispatch level, because
/// the grid kernels extend the generic path's determinism contract instead
/// of forking it.  Width by width:
///
///   W=1: every level takes dot_dense_portable's `w == 1` branch
///        (avx2 falls through at w < 4, avx512 at w != 8) -> a0*b0, a
///        single product no contraction can touch -> inline it.
///   W=2: NOT inlinable.  The source expression a0*b0 + a1*b1 is shared by
///        all levels, but when dot_dense_avx2 (target("avx2,fma")) inlines
///        the portable branch, GCC's default -ffp-contract=fast fuses it
///        into fma(a1, b1, a0*b0) — FMA is available there, and is not in
///        the baseline-ISA portable build.  Same expression, different
///        bits per level -> must call the *dispatched* kernel.
///   W=4: portable runs one 4-lane iteration and reduces
///        (l0 + l2) + (l1 + l3); avx2 is one _mm256_mul_pd (no FMA — the
///        first quad seeds the accumulator) with the SAME lane reduce, and
///        the scalar reduce adds already-stored lanes (no mul feeding an
///        add, so contraction cannot kick in) -> inline it.
///   W=8: portable folds the second quad with separately-rounded mul+add
///        while avx2 uses one FMA (unrounded product) — the levels
///        legitimately differ, so the grid must call the *dispatched*
///        kernel rather than pick one expression.  (avx512's 8-lane tree
///        ((l0+l4)+(l2+l6))+((l1+l5)+(l3+l7)) regroups to portable's
///        two-quad fold exactly, but avx2 does not.)
///
/// `bdot` is the dispatched dot_dense() pointer; W=2 and W=8 reach it.
/// kernel_grid_test sweeps every width x level against the generic kernel
/// bitwise — it is the guard that keeps this table honest.
template <int W>
inline real_t dot_dense_fixed(const real_t* a, const real_t* b,
                              DotDenseFn bdot) {
  static_assert(W == 1 || W == 2 || W == 4 || W == 8,
                "grid widths are 1/2/4/8");
  if constexpr (W == 1) {
    return a[0] * b[0];
  } else if constexpr (W == 2) {
    return bdot(a, b, 2);
  } else if constexpr (W == 4) {
    return (a[0] * b[0] + a[2] * b[2]) + (a[1] * b[1] + a[3] * b[3]);
  } else {
    return bdot(a, b, static_cast<std::size_t>(W));
  }
}

// ---- ABFT checksum-verify kernels ----------------------------------------
//
// The verified apply (CpuSpmv::spmv_verified) compares sum(y) against the
// precomputed column-checksum dot; to keep its overhead a single-digit
// percentage even on nnz/row ~ 3 matrices the three extra passes collapse
// into two vectorized ones: `sum` over y, and `checksum_dot` — one fused
// pass over (w, wabs, x) producing both the checksum dot w.x and the bound
// mass sum(wabs * |x|).  Same fixed lane/reduction order as the kernels
// above, so both are bitwise reproducible per dispatch level.

/// The two accumulations of the fused checksum pass.
struct CheckDotResult {
  real_t wx = 0.0;    ///< sum of w[j] * x[j]
  real_t babs = 0.0;  ///< sum of wabs[j] * |x[j]|
};

/// Fixed-order vector sum (lane i % 4, (l0 + l2) + (l1 + l3), serial tail).
inline real_t sum_portable(const real_t* a, std::size_t n) {
  real_t l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    l0 += a[p];
    l1 += a[p + 1];
    l2 += a[p + 2];
    l3 += a[p + 3];
  }
  real_t s = (l0 + l2) + (l1 + l3);
  for (; p < n; ++p) s += a[p];
  return s;
}

/// Fused checksum pass, portable kernel.
inline CheckDotResult checksum_dot_portable(const real_t* w,
                                            const real_t* wabs,
                                            const real_t* x, std::size_t n) {
  real_t c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  real_t b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    c0 += w[p] * x[p];
    c1 += w[p + 1] * x[p + 1];
    c2 += w[p + 2] * x[p + 2];
    c3 += w[p + 3] * x[p + 3];
    b0 += wabs[p] * std::abs(x[p]);
    b1 += wabs[p + 1] * std::abs(x[p + 1]);
    b2 += wabs[p + 2] * std::abs(x[p + 2]);
    b3 += wabs[p + 3] * std::abs(x[p + 3]);
  }
  CheckDotResult r;
  r.wx = (c0 + c2) + (c1 + c3);
  r.babs = (b0 + b2) + (b1 + b3);
  for (; p < n; ++p) {
    r.wx += w[p] * x[p];
    r.babs += wabs[p] * std::abs(x[p]);
  }
  return r;
}

#if YASPMV_SIMD_X86
/// AVX2 twin of sum_portable: same lane assignment and reduce order.
__attribute__((target("avx2"))) inline real_t sum_avx2(const real_t* a,
                                                       std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + p));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  real_t s = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; p < n; ++p) s += a[p];
  return s;
}

/// AVX2/FMA twin of checksum_dot_portable (|x| via an andnot of the sign
/// bit; products fused, so the two levels agree to FMA rounding — inside
/// the verify bound by construction).
__attribute__((target("avx2,fma"))) inline CheckDotResult checksum_dot_avx2(
    const real_t* w, const real_t* wabs, const real_t* x, std::size_t n) {
  __m256d cacc = _mm256_setzero_pd();
  __m256d bacc = _mm256_setzero_pd();
  const __m256d signmask = _mm256_set1_pd(-0.0);
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d xv = _mm256_loadu_pd(x + p);
    cacc = _mm256_fmadd_pd(_mm256_loadu_pd(w + p), xv, cacc);
    bacc = _mm256_fmadd_pd(_mm256_loadu_pd(wabs + p),
                           _mm256_andnot_pd(signmask, xv), bacc);
  }
  alignas(32) double cl[4], bl[4];
  _mm256_store_pd(cl, cacc);
  _mm256_store_pd(bl, bacc);
  CheckDotResult r;
  r.wx = (cl[0] + cl[2]) + (cl[1] + cl[3]);
  r.babs = (bl[0] + bl[2]) + (bl[1] + bl[3]);
  for (; p < n; ++p) {
    r.wx += w[p] * x[p];
    r.babs += wabs[p] * std::abs(x[p]);
  }
  return r;
}
#else
inline real_t sum_avx2(const real_t* a, std::size_t n) {
  return sum_portable(a, n);
}
inline CheckDotResult checksum_dot_avx2(const real_t* w, const real_t* wabs,
                                        const real_t* x, std::size_t n) {
  return checksum_dot_portable(w, wabs, x, n);
}
#endif

using SumFn = real_t (*)(const real_t*, std::size_t);
using CheckDotFn = CheckDotResult (*)(const real_t*, const real_t*,
                                      const real_t*, std::size_t);

// kAvx512 shares the AVX2 verify kernels: both passes are stream-bound.
inline SumFn sum() {
  return active() != Level::kPortable ? &sum_avx2 : &sum_portable;
}

inline CheckDotFn checksum_dot() {
  return active() != Level::kPortable ? &checksum_dot_avx2
                                      : &checksum_dot_portable;
}

// ---- speculative carry fix-up kernels -------------------------------------
//
// The carry-chain-free segmented sum (cpu/segfix.hpp) repairs speculative
// per-chunk sums with two short lane-panel operations: apply an incoming
// carry to a chunk's first-segment slots (out = carry + firsts) and fold a
// chunk's carry panel into a running state (acc += src).  Both are purely
// elementwise over independent lanes — no reduction order exists — so every
// dispatch level produces bit-identical results; the per-(threads, level)
// reproducibility contract is carried entirely by the dot/decode kernels.

inline void carry_apply_portable(real_t* out, const real_t* carry,
                                 const real_t* firsts, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = carry[i] + firsts[i];
}

inline void acc_add_portable(real_t* acc, const real_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += src[i];
}

#if YASPMV_SIMD_X86
__attribute__((target("avx2"))) inline void carry_apply_avx2(
    real_t* out, const real_t* carry, const real_t* firsts, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(carry + i),
                                            _mm256_loadu_pd(firsts + i)));
  }
  for (; i < n; ++i) out[i] = carry[i] + firsts[i];
}

__attribute__((target("avx2"))) inline void acc_add_avx2(real_t* acc,
                                                         const real_t* src,
                                                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) acc[i] += src[i];
}
#else
inline void carry_apply_avx2(real_t* out, const real_t* carry,
                             const real_t* firsts, std::size_t n) {
  carry_apply_portable(out, carry, firsts, n);
}
inline void acc_add_avx2(real_t* acc, const real_t* src, std::size_t n) {
  acc_add_portable(acc, src, n);
}
#endif

using CarryApplyFn = void (*)(real_t*, const real_t*, const real_t*,
                              std::size_t);
using AccAddFn = void (*)(real_t*, const real_t*, std::size_t);

inline CarryApplyFn carry_apply() {
  return active() != Level::kPortable ? &carry_apply_avx2
                                      : &carry_apply_portable;
}

inline AccAddFn acc_add() {
  return active() != Level::kPortable ? &acc_add_avx2 : &acc_add_portable;
}

}  // namespace yaspmv::cpu::simd
