// Native CPU-parallel SpMV over the BCCOO/BCCOO+ format.
//
// The GPU pipeline in yaspmv/core runs on a simulator for evaluation
// purposes; this backend runs the *same algorithm* natively with OS
// threads, so the library is directly usable for real workloads:
//
//   * the non-zero blocks are divided into equal contiguous chunks (the
//     thread-level tiles of Section 3.2, scaled to CPU cores),
//   * each thread performs the sequential segmented sum over its chunk,
//     writing every *interior* segment directly (those are complete) and
//     recording its first partial sum and trailing carry,
//   * a serial O(threads) fix-up pass resolves segments spanning chunk
//     boundaries — the CPU analog of the adjacent-synchronization chain.
//
// Determinism: for a fixed thread count the summation order is fixed, so
// results are bitwise reproducible run-to-run.
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv::cpu {

/// Reusable parallel SpMV executor for one BCCOO matrix.
class CpuSpmv {
 public:
  /// `threads == 0` uses the hardware concurrency.
  explicit CpuSpmv(std::shared_ptr<const core::Bccoo> m, unsigned threads = 0)
      : fmt_(std::move(m)),
        threads_(threads == 0 ? default_workers() : threads) {
    const core::Bccoo& f = *fmt_;
    require(f.cfg.block_h >= 1 && f.cfg.block_h <= 8,
            "CpuSpmv: block height must be in [1, 8]");
    const auto h = static_cast<std::size_t>(f.cfg.block_h);
    // Chunk boundaries over blocks (even distribution; at least one block
    // per chunk).
    const std::size_t nb = f.num_blocks;
    const std::size_t nchunks =
        nb == 0 ? 1 : std::min<std::size_t>(threads_ * 4, nb);
    chunk_start_.reserve(nchunks + 1);
    for (std::size_t c = 0; c <= nchunks; ++c) {
      chunk_start_.push_back(c * nb / nchunks);
    }
    // Per-chunk first segment ordinal (count of row stops before the
    // chunk), Section 2.4's first-result-entry at chunk granularity.
    chunk_first_seg_.resize(chunk_start_.size());
    for (std::size_t c = 0; c < chunk_start_.size(); ++c) {
      chunk_first_seg_[c] = f.bit_flags.count_zeros_before(chunk_start_[c]);
    }
    carries_.resize((chunk_start_.size() - 1) * h, 0.0);
    firsts_.resize((chunk_start_.size() - 1) * h, 0.0);
    xp_.resize(static_cast<std::size_t>(f.block_cols) *
                   static_cast<std::size_t>(f.cfg.block_w),
               0.0);
    res_.resize(static_cast<std::size_t>(f.stacked_block_rows) * h, 0.0);
  }

  const core::Bccoo& format() const { return *fmt_; }
  unsigned threads() const { return threads_; }

  /// y = A * x (parallel, deterministic for a fixed thread count).
  void spmv(std::span<const real_t> x, std::span<real_t> y) {
    const core::Bccoo& f = *fmt_;
    require(x.size() == static_cast<std::size_t>(f.cols) &&
                y.size() == static_cast<std::size_t>(f.rows),
            "CpuSpmv: vector size mismatch");
    const auto h = static_cast<std::size_t>(f.cfg.block_h);
    const auto bw = static_cast<std::size_t>(f.cfg.block_w);

    std::copy(x.begin(), x.end(), xp_.begin());
    std::fill(xp_.begin() + static_cast<std::ptrdiff_t>(x.size()), xp_.end(),
              0.0);
    std::fill(res_.begin(), res_.end(), 0.0);

    const std::size_t nchunks = chunk_start_.size() - 1;
    parallel_for_ordered(nchunks, threads_, [&](unsigned, std::size_t c) {
      process_chunk(c, h, bw);
    });

    // Serial fix-up: resolve segments spanning chunk boundaries (the
    // adjacent-synchronization chain, folded).
    std::vector<real_t> carry(h, 0.0);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const index_t first = chunk_first_seg_[c];
      const index_t next = chunk_first_seg_[c + 1];
      const bool has_stop = next > first;
      if (has_stop) {
        const auto sbrow = static_cast<std::size_t>(
            f.seg_to_block_row[static_cast<std::size_t>(first)]);
        for (std::size_t k = 0; k < h; ++k) {
          res_[sbrow * h + k] += carry[k] + firsts_[c * h + k];
        }
        for (std::size_t k = 0; k < h; ++k) carry[k] = carries_[c * h + k];
      } else {
        for (std::size_t k = 0; k < h; ++k) carry[k] += carries_[c * h + k];
      }
    }

    // Gather y from the (slice-stacked) result buffer.
    const auto bh = static_cast<std::size_t>(f.cfg.block_h);
    for (index_t r = 0; r < f.rows; ++r) {
      const auto rz = static_cast<std::size_t>(r);
      real_t s = 0.0;
      for (index_t sl = 0; sl < f.cfg.slices; ++sl) {
        const std::size_t sbrow =
            static_cast<std::size_t>(sl) *
                static_cast<std::size_t>(f.block_rows) +
            rz / bh;
        s += res_[sbrow * h + rz % bh];
      }
      y[rz] = s;
    }
  }

 private:
  void process_chunk(std::size_t c, std::size_t h, std::size_t bw) {
    const core::Bccoo& f = *fmt_;
    const std::size_t b0 = chunk_start_[c];
    const std::size_t b1 = chunk_start_[c + 1];
    index_t seg = chunk_first_seg_[c];
    real_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    bool first_stop = true;
    if (h == 1 && bw == 1) {
      // Fast path for scalar blocks (the tuner's most common choice): one
      // multiply-add + one packed-bit test per non-zero.
      const real_t* vals = f.value_rows[0].data();
      const index_t* cols = f.col_index.data();
      const std::uint32_t* words = f.bit_flags.words().data();
      real_t a0 = 0.0;
      for (std::size_t i = b0; i < b1; ++i) {
        a0 += vals[i] * xp_[static_cast<std::size_t>(cols[i])];
        if (((words[i >> 5] >> (i & 31u)) & 1u) == 0u) {  // row stop
          if (first_stop) {
            firsts_[c] = a0;
            first_stop = false;
          } else {
            res_[static_cast<std::size_t>(
                f.seg_to_block_row[static_cast<std::size_t>(seg)])] = a0;
          }
          a0 = 0.0;
          ++seg;
        }
      }
      carries_[c] = a0;
      return;
    }
    for (std::size_t i = b0; i < b1; ++i) {
      const auto bcol = static_cast<std::size_t>(f.col_index[i]);
      for (std::size_t k = 0; k < h; ++k) {
        const real_t* row = f.value_rows[k].data() + i * bw;
        const real_t* xv = xp_.data() + bcol * bw;
        real_t s = 0.0;
        for (std::size_t lc = 0; lc < bw; ++lc) s += row[lc] * xv[lc];
        acc[k] += s;
      }
      if (!f.bit_flags.get(i)) {  // row stop
        if (first_stop) {
          // May continue from the previous chunk: defer to the fix-up.
          for (std::size_t k = 0; k < h; ++k) {
            firsts_[c * h + k] = acc[k];
            acc[k] = 0.0;
          }
          first_stop = false;
        } else {
          const auto sbrow = static_cast<std::size_t>(
              f.seg_to_block_row[static_cast<std::size_t>(seg)]);
          for (std::size_t k = 0; k < h; ++k) {
            res_[sbrow * h + k] = acc[k];
            acc[k] = 0.0;
          }
        }
        ++seg;
      }
    }
    for (std::size_t k = 0; k < h; ++k) carries_[c * h + k] = acc[k];
  }

  std::shared_ptr<const core::Bccoo> fmt_;
  unsigned threads_;
  std::vector<std::size_t> chunk_start_;
  std::vector<index_t> chunk_first_seg_;
  std::vector<real_t> carries_;  ///< per chunk: trailing open-segment sum
  std::vector<real_t> firsts_;   ///< per chunk: first (possibly partial) sum
  std::vector<real_t> xp_;       ///< padded multiplied vector
  std::vector<real_t> res_;      ///< per-segment results (slice-stacked)
};

/// Multi-vector product Y = A * X (SpMM) on the BCCOO format: X and Y are
/// column-major n x k panels.  For scalar (1x1) blocks — the tuner's common
/// choice — a fused pass reads each non-zero (value, column, bit flag)
/// once and accumulates all k right-hand sides together, which is the
/// classic SpMM win over k SpMV calls; blocked formats fall back to the
/// per-vector path.
class CpuSpmm {
 public:
  explicit CpuSpmm(std::shared_ptr<const core::Bccoo> m, unsigned threads = 0)
      : fmt_(std::move(m)),
        eng_(fmt_, threads),
        threads_(threads == 0 ? default_workers() : threads) {}

  const core::Bccoo& format() const { return *fmt_; }

  /// X: cols x k column-major, Y: rows x k column-major.
  void spmm(std::span<const real_t> X, std::span<real_t> Y, index_t k) {
    const auto& f = *fmt_;
    require(k > 0, "CpuSpmm: k must be positive");
    require(X.size() == static_cast<std::size_t>(f.cols) *
                            static_cast<std::size_t>(k) &&
                Y.size() == static_cast<std::size_t>(f.rows) *
                                static_cast<std::size_t>(k),
            "CpuSpmm: panel size mismatch");
    if (f.cfg.block_w == 1 && f.cfg.block_h == 1 && f.cfg.slices == 1) {
      fused_scalar(X, Y, k);
      return;
    }
    for (index_t j = 0; j < k; ++j) {
      eng_.spmv(X.subspan(static_cast<std::size_t>(j) *
                              static_cast<std::size_t>(f.cols),
                          static_cast<std::size_t>(f.cols)),
                Y.subspan(static_cast<std::size_t>(j) *
                              static_cast<std::size_t>(f.rows),
                          static_cast<std::size_t>(f.rows)));
    }
  }

 private:
  void fused_scalar(std::span<const real_t> X, std::span<real_t> Y,
                    index_t k) {
    const auto& f = *fmt_;
    const auto kz = static_cast<std::size_t>(k);
    const auto colsz = static_cast<std::size_t>(f.cols);
    const auto rowsz = static_cast<std::size_t>(f.rows);
    std::fill(Y.begin(), Y.end(), 0.0);
    const std::size_t nb = f.num_blocks;
    if (nb == 0) return;
    const std::size_t nchunks =
        std::max<std::size_t>(1, std::min<std::size_t>(threads_ * 4, nb));
    std::vector<std::size_t> starts(nchunks + 1);
    std::vector<index_t> first_seg(nchunks + 1);
    for (std::size_t c = 0; c <= nchunks; ++c) {
      starts[c] = c * nb / nchunks;
      first_seg[c] =
          static_cast<index_t>(f.bit_flags.count_zeros_before(starts[c]));
    }
    // Per-chunk first/carry panels (k values each).
    std::vector<real_t> firsts(nchunks * kz, 0.0), carries(nchunks * kz, 0.0);
    const real_t* vals = f.value_rows[0].data();
    const index_t* cols = f.col_index.data();

    parallel_for_ordered(nchunks, threads_, [&](unsigned, std::size_t c) {
      std::vector<real_t> acc(kz, 0.0);
      index_t seg = first_seg[c];
      bool first_stop = true;
      for (std::size_t i = starts[c]; i < starts[c + 1]; ++i) {
        const real_t v = vals[i];
        const auto col = static_cast<std::size_t>(cols[i]);
        for (std::size_t j = 0; j < kz; ++j) {
          acc[j] += v * X[j * colsz + col];  // one decode, k FMAs
        }
        if (!f.bit_flags.get(i)) {
          real_t* out = first_stop
                            ? &firsts[c * kz]
                            : nullptr;
          if (out != nullptr) {
            std::copy(acc.begin(), acc.end(), out);
            first_stop = false;
          } else {
            const auto row = static_cast<std::size_t>(
                f.seg_to_block_row[static_cast<std::size_t>(seg)]);
            for (std::size_t j = 0; j < kz; ++j) Y[j * rowsz + row] = acc[j];
          }
          std::fill(acc.begin(), acc.end(), 0.0);
          ++seg;
        }
      }
      std::copy(acc.begin(), acc.end(), &carries[c * kz]);
    });

    std::vector<real_t> carry(kz, 0.0);
    for (std::size_t c = 0; c < nchunks; ++c) {
      if (first_seg[c + 1] > first_seg[c]) {
        const auto row = static_cast<std::size_t>(
            f.seg_to_block_row[static_cast<std::size_t>(first_seg[c])]);
        for (std::size_t j = 0; j < kz; ++j) {
          Y[j * rowsz + row] += carry[j] + firsts[c * kz + j];
          carry[j] = carries[c * kz + j];
        }
      } else {
        for (std::size_t j = 0; j < kz; ++j) carry[j] += carries[c * kz + j];
      }
    }
  }

  std::shared_ptr<const core::Bccoo> fmt_;
  CpuSpmv eng_;
  unsigned threads_;
};

/// Parallel CSR SpMV baseline (row-range partitioning) for the CPU benches.
inline void spmv_csr_parallel(const fmt::Csr& m, std::span<const real_t> x,
                              std::span<real_t> y, unsigned threads = 0) {
  require(x.size() == static_cast<std::size_t>(m.cols) &&
              y.size() == static_cast<std::size_t>(m.rows),
          "spmv_csr_parallel: vector size mismatch");
  if (threads == 0) threads = default_workers();
  const std::size_t chunks = std::min<std::size_t>(
      threads * 4, std::max<std::size_t>(1, static_cast<std::size_t>(m.rows)));
  parallel_for_ordered(chunks, threads, [&](unsigned, std::size_t c) {
    const auto r0 = static_cast<index_t>(
        c * static_cast<std::size_t>(m.rows) / chunks);
    const auto r1 = static_cast<index_t>(
        (c + 1) * static_cast<std::size_t>(m.rows) / chunks);
    for (index_t r = r0; r < r1; ++r) {
      real_t acc = 0.0;
      for (index_t p = m.row_ptr[static_cast<std::size_t>(r)];
           p < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        acc += m.vals[static_cast<std::size_t>(p)] *
               x[static_cast<std::size_t>(
                   m.col_idx[static_cast<std::size_t>(p)])];
      }
      y[static_cast<std::size_t>(r)] = acc;
    }
  });
}

}  // namespace yaspmv::cpu
