// Native CPU-parallel SpMV over the BCCOO/BCCOO+ format.
//
// The GPU pipeline in yaspmv/core runs on a simulator for evaluation
// purposes; this backend runs the *same algorithm* natively with OS
// threads, so the library is directly usable for real workloads:
//
//   * the non-zero blocks are divided into equal contiguous chunks (the
//     thread-level tiles of Section 3.2, scaled to CPU cores),
//   * each thread performs the sequential segmented sum over its chunk,
//     writing every *interior* segment directly (those are complete) and
//     recording its first partial sum and trailing carry — *speculatively*,
//     assuming a zero incoming carry,
//   * the speculative sums are repaired by the carry-chain-free fix-up of
//     cpu/segfix.hpp (per-group folds, a grid-shaped Blelloch scan, and a
//     parallel apply), replacing both the paper's adjacent-synchronization
//     chain and this backend's former serial O(nchunks) carry fold.  The
//     legacy fold survives as SegSumMode::kSerialFold (bench baseline /
//     escape hatch); the default mode also claims chunks *unordered* so no
//     global in-order ticket is contended.
//
// Execution substrate: chunks run on the shared persistent WorkPool
// (util/thread_pool.hpp) — no thread spawn/join per call — and the
// per-chunk segmented sum uses the runtime-dispatched SIMD kernels of
// cpu/simd.hpp (AVX2/FMA with a portable multi-accumulator fallback).
//
// Zero-copy apply (the iterative-solver fast path): `spmv` reads the
// caller's `x` directly — there is no padded copy.  Scalar-width blocks
// never need padding; blocked formats whose last block column hangs past
// `cols` redirect only that one block to a small ctor-zeroed tail buffer
// (`xtail_`, the pad filled once, only the live tail elements copied per
// call).  Nor is there a full result-buffer clear: every segment maps to
// exactly one block row (each non-empty block row has exactly one row
// stop), so workers and the fix-up pass *assign* complete segment sums,
// and only rows no segment covers ever need explicit zeroing.  With one
// slice and an unpadded row dimension the workers write straight into `y`
// (`res_` is not even allocated) and the combine pass disappears — a
// solver iteration touches each vector once.  Because `x` is read while
// `y` is written, `spmv` rejects overlapping x/y.
//
// Determinism: the chunk decomposition depends only on the *requested*
// thread count, the intra-chunk reduction order is fixed by the kernels'
// shared lane/reduction scheme, and the fix-up's combine tree is shaped by
// the chunk grid alone (see segfix.hpp), so for a fixed thread count and
// dispatch level results are bitwise reproducible run-to-run — and
// identical whether chunks were claimed in order or not.
//
// Compressed column streams (Sections 2.2 and 4): the executor reads the
// format's materialized int16-delta or u16 stream instead of the 4-byte
// col_index array when a ColStream other than kRaw is selected (kAuto picks
// the smallest available).  Each decode tile (Bccoo::kColTile blocks) is
// expanded by the runtime-dispatched decode kernel into a 2 KB stack scratch
// that stays L1-resident, so the DRAM column traffic really is ~2 bytes per
// block.  Chunk starts are rounded down to tile boundaries and segment
// pieces split at tile boundaries in *every* column mode (raw included, at
// zero decode cost), so raw/short/delta results are bitwise identical at a
// fixed (thread count, dispatch level).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/core/checksum.hpp"
#include "yaspmv/cpu/kernels_grid.hpp"
#include "yaspmv/cpu/segfix.hpp"
#include "yaspmv/cpu/simd.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/sim/fault.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv::cpu {

/// Reusable parallel SpMV executor for one BCCOO matrix.
class CpuSpmv {
 public:
  /// `threads == 0` uses the hardware concurrency.  `cs` selects the column
  /// stream the hot loop reads (kAuto = smallest materialized one; a request
  /// the format cannot serve degrades to kRaw).  `mode` picks the segmented
  /// sum's scheduling/fix-up strategy (segfix.hpp); the default speculative
  /// mode is the fast path, kSerialFold reproduces the legacy bits.  `kd`
  /// controls kernel dispatch: kAuto routes an exact (block_w, block_h,
  /// stream) match to its specialized grid instantiation
  /// (cpu/kernels_grid.hpp) — bitwise identical to the generic kernel at a
  /// fixed (threads, simd level, segsum mode) — while kGeneric pins the
  /// generic kernel (parity reference / bench baseline).  Out-of-grid
  /// configs and kSerialFold always run generic.  `shards` partitions the
  /// chunk grid into contiguous locality domains (NUMA shard groups): the
  /// default 1 keeps today's single-domain execution, 0 probes the machine
  /// (default_shards(): libnuma node count, YASPMV_NUMA override), and an
  /// explicit N pins the domain count.  Sharding is scheduling + placement
  /// only — the chunk grid, fix-up tree and combine order are untouched, so
  /// any shard count is bitwise identical to shards == 1 at a fixed
  /// (threads, level, segsum mode).
  explicit CpuSpmv(std::shared_ptr<const core::Bccoo> m, unsigned threads = 0,
                   core::ColStream cs = core::ColStream::kAuto,
                   SegSumMode mode = default_segsum_mode(),
                   grid::KernelDispatch kd = grid::KernelDispatch::kAuto,
                   unsigned shards = 1)
      : fmt_(std::move(m)),
        threads_(threads == 0 ? default_workers() : threads),
        cs_(fmt_->resolve_col_stream(cs)),
        mode_(mode),
        shards_(std::min(shards == 0 ? default_shards() : shards,
                         kMaxShards)) {
    const core::Bccoo& f = *fmt_;
    require(f.cfg.block_h >= 1 && f.cfg.block_h <= 8,
            "CpuSpmv[" + config_name() + "]: block height " +
                std::to_string(f.cfg.block_h) +
                " outside the accepted range [1, 8]");
    if (kd == grid::KernelDispatch::kAuto &&
        mode_ != SegSumMode::kSerialFold) {
      if (const grid::GridEntry* e =
              grid::find(static_cast<int>(f.cfg.block_w),
                         static_cast<int>(f.cfg.block_h), cs_)) {
        grid_fn_ = e->fn;
        kernel_id_ = e->id;
      }
    }
    const auto h = static_cast<std::size_t>(f.cfg.block_h);
    const auto bw = static_cast<std::size_t>(f.cfg.block_w);
    // Chunk boundaries over blocks (even distribution, rounded down to the
    // decode-tile granularity so every chunk decodes whole tiles; rounding
    // can make small leading chunks empty — harmless).
    const std::size_t nb = f.num_blocks;
    const std::size_t nchunks =
        nb == 0 ? 1 : std::min<std::size_t>(threads_ * 4, nb);
    chunk_start_.reserve(nchunks + 1);
    for (std::size_t c = 0; c <= nchunks; ++c) {
      std::size_t s = c * nb / nchunks;
      if (c != 0 && c != nchunks) {
        s = s / core::Bccoo::kColTile * core::Bccoo::kColTile;
      }
      chunk_start_.push_back(s);
    }
    // Per-chunk first segment ordinal (count of row stops before the
    // chunk), Section 2.4's first-result-entry at chunk granularity.
    chunk_first_seg_.resize(chunk_start_.size());
    for (std::size_t c = 0; c < chunk_start_.size(); ++c) {
      chunk_first_seg_[c] = f.bit_flags.count_zeros_before(chunk_start_[c]);
    }
    // Shard grid: the format's tile-rounded block boundaries
    // (shard_block_starts — a pure function of the format and the shard
    // count, never the live thread count) mapped onto the chunk grid.  The
    // map is monotone, so the shard chunk ranges partition [0, nchunks).
    const std::size_t nchunks_built = chunk_start_.size() - 1;
    shard_chunk_start_.assign(static_cast<std::size_t>(shards_) + 1, 0);
    shard_chunk_start_[shards_] = nchunks_built;
    if (shards_ > 1) {
      const std::vector<std::size_t> sb = f.shard_block_starts(shards_);
      for (unsigned s = 1; s < shards_; ++s) {
        const auto it =
            std::lower_bound(chunk_start_.begin(), chunk_start_.end(), sb[s]);
        shard_chunk_start_[s] = std::min<std::size_t>(
            static_cast<std::size_t>(it - chunk_start_.begin()),
            nchunks_built);
      }
      // Halo metadata: the x sub-range each shard's blocks actually read
      // (the cross-domain x traffic the perf model charges).
      shard_col_range_.resize(shards_);
      for (unsigned s = 0; s < shards_; ++s) {
        shard_col_range_[s] =
            f.block_col_range(chunk_start_[shard_chunk_start_[s]],
                              chunk_start_[shard_chunk_start_[s + 1]]);
      }
    }
    // First-touch the carry/first panels shard by shard so each domain's
    // fix-up pages are local to the workers that write them.  One shard
    // degrades to a plain serial fill — bit-for-bit the old vectors.
    std::size_t panel_shard[kMaxShards + 1];
    for (unsigned s = 0; s <= shards_; ++s) {
      panel_shard[s] = shard_chunk_start_[s] * h;
    }
    carries_.init(nchunks_built * h, 0.0, panel_shard, shards_, threads_);
    firsts_.init(nchunks_built * h, 0.0, panel_shard, shards_, threads_);
    // Zero-copy tail redirect: only a padded last block column needs
    // scratch.  The pad beyond `cols` is zeroed once, here; spmv copies
    // just the live tail elements per call.
    const auto colsz = static_cast<std::size_t>(f.cols);
    if (bw > 1 && colsz % bw != 0) {
      pad_bcol_ = static_cast<std::size_t>(f.block_cols) - 1;
      tail_n_ = colsz - pad_bcol_ * bw;
      xtail_.assign(bw, 0.0);
    }
    // Workers write straight into y when the stacked result layout IS the
    // output layout: one slice and no padded rows.
    direct_y_ = f.cfg.slices == 1 &&
                static_cast<std::size_t>(f.block_rows) * h ==
                    static_cast<std::size_t>(f.rows);
    const auto stacked = static_cast<std::size_t>(f.stacked_block_rows);
    if (!direct_y_) {
      // Slice-stacked result buffer.  Zeroed once: covered rows are
      // *assigned* every call, uncovered rows are never touched and stay
      // zero forever.  First-touched along the shard grid — each shard's
      // boundary is the stacked row its first complete segment lands on
      // (clamped monotone), so workers fault the y-partial pages they will
      // assign in the chunk pass.
      std::size_t res_shard[kMaxShards + 1];
      res_shard[0] = 0;
      res_shard[shards_] = stacked * h;
      for (unsigned s = 1; s < shards_; ++s) {
        const auto seg =
            static_cast<std::size_t>(chunk_first_seg_[shard_chunk_start_[s]]);
        std::size_t b = seg < f.seg_to_block_row.size()
                            ? static_cast<std::size_t>(
                                  f.seg_to_block_row[seg]) * h
                            : stacked * h;
        res_shard[s] = std::clamp(b, res_shard[s - 1], stacked * h);
      }
      res_.init(stacked * h, 0.0, res_shard, shards_, threads_);
    } else {
      // Direct-y mode writes into the caller's buffer, so the rows no
      // segment covers must be cleared per call — precompute them.
      std::vector<bool> covered(stacked, false);
      for (const index_t sbrow : f.seg_to_block_row) {
        covered[static_cast<std::size_t>(sbrow)] = true;
      }
      for (std::size_t r = 0; r < stacked; ++r) {
        if (!covered[r]) zero_rows_.push_back(r);
      }
    }
    if (shards_ > 1 && !direct_y_) {
      // Combine pass shard grid: rows partition evenly across domains.
      // The per-row slice fold itself is untouched (fixed slice order), so
      // sharding the row ranges is a disjoint merge, not an FP reduction.
      const auto rowsz = static_cast<std::size_t>(f.rows);
      const std::size_t rchunks =
          std::max<std::size_t>(1, std::min<std::size_t>(threads_ * 4, rowsz));
      combine_shard_start_.resize(static_cast<std::size_t>(shards_) + 1);
      for (unsigned s = 0; s <= shards_; ++s) {
        combine_shard_start_[s] = s * rchunks / shards_;
      }
    }
  }

  const core::Bccoo& format() const { return *fmt_; }
  unsigned threads() const { return threads_; }
  /// Locality domains the chunk and combine passes are sharded across
  /// (1 = today's single-domain execution).
  unsigned shard_count() const { return shards_; }
  /// The x sub-range shard s's blocks read — its halo view.  Everything
  /// outside [lo, hi) is another domain's x; the full span when unsharded
  /// or when the shard holds no blocks.
  std::pair<index_t, index_t> shard_col_range(unsigned s) const {
    if (s >= shard_col_range_.size()) return {0, fmt_->cols};
    return shard_col_range_[s];
  }
  /// The resolved column stream the hot loop actually reads.
  core::ColStream col_stream() const { return cs_; }
  /// The segmented-sum scheduling/fix-up mode this engine runs.
  SegSumMode segsum_mode() const { return mode_; }
  /// Stable id of the chunk kernel this engine dispatches to: a grid id
  /// like "grid/w2h2/short" when a specialized instantiation matched,
  /// "generic" otherwise.  Recorded by the tuner / plan cache and reported
  /// by serve's kStats.
  const char* kernel_id() const { return kernel_id_; }
  /// True when the engine runs a specialized grid kernel.
  bool specialized() const { return grid_fn_ != nullptr; }

  /// Fault-injection hook (tests/chaos tooling): when set, the armed
  /// kFlipPartial plan can flip one bit of one per-chunk partial sum
  /// between the parallel pass and the serial fix-up — one null check per
  /// apply on the fault-free path.
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
  }

  /// y = A * x (parallel, deterministic for a fixed thread count).
  /// Zero-copy: x is read in place while y is written, so the spans must
  /// not overlap.
  void spmv(std::span<const real_t> x, std::span<real_t> y) {
    const core::Bccoo& f = *fmt_;
    if (x.size() != static_cast<std::size_t>(f.cols) ||
        y.size() != static_cast<std::size_t>(f.rows)) {
      // Built only on failure — names the config so tuner skip-and-record
      // logs are actionable without replaying the candidate.
      require(false, "CpuSpmv[" + config_name() + "]: vector size mismatch: "
                         "got x[" + std::to_string(x.size()) + "] y[" +
                         std::to_string(y.size()) + "], need x[" +
                         std::to_string(f.cols) + "] y[" +
                         std::to_string(f.rows) + "]");
    }
    const auto xb = reinterpret_cast<std::uintptr_t>(x.data());
    const auto yb = reinterpret_cast<std::uintptr_t>(y.data());
    require(xb + x.size() * sizeof(real_t) <= yb ||
                yb + y.size() * sizeof(real_t) <= xb,
            "CpuSpmv: x and y must not overlap (zero-copy apply)");
    const auto h = static_cast<std::size_t>(f.cfg.block_h);
    const auto bw = static_cast<std::size_t>(f.cfg.block_w);

    if (tail_n_ != 0) {
      // Only the live tail elements move; the pad stays ctor-zeroed.
      std::copy(x.end() - static_cast<std::ptrdiff_t>(tail_n_), x.end(),
                xtail_.begin());
    }
    real_t* const out = direct_y_ ? y.data() : res_.data();
    for (const std::size_t r : zero_rows_) {
      for (std::size_t k = 0; k < h; ++k) out[r * h + k] = 0.0;
    }

    const real_t* const xd = x.data();
    const std::size_t nchunks = chunk_start_.size() - 1;
    const bool unordered = mode_ == SegSumMode::kSpeculative;
    // Specialized dispatch resolved once at construction; the branch here
    // is once per chunk, never inside a block loop.
    const grid::ChunkCtx gctx{fmt_.get(),          chunk_start_.data(),
                              chunk_first_seg_.data(), firsts_.data(),
                              carries_.data(),     pad_bcol_,
                              xtail_.data()};
    const grid::ChunkKernelFn gfn = grid_fn_;
    const auto chunk_body = [&](unsigned, std::size_t c) {
      if (gfn) {
        gfn(gctx, c, xd, out);
      } else {
        process_chunk(c, h, bw, xd, out);
      }
    };
    if (shards_ > 1 && unordered) {
      // Shard-affine scheduling: each worker group claims only its domain's
      // chunk range (spilling to other domains once its own drains), so the
      // panels and res_ pages it first-touched stay local.  The chunk grid
      // is the same one the unsharded path walks — bitwise identical.
      parallel_for_sharded(nchunks, shard_chunk_start_.data(), shards_,
                           threads_, chunk_body);
    } else if (unordered) {
      parallel_for_unordered(nchunks, threads_, chunk_body);
    } else {
      parallel_for_ordered(nchunks, threads_, chunk_body);
    }
    if (injector_) {
      injector_->flip_partial(
          std::span<real_t>(carries_.data(), carries_.size()));
    }

    // Fix-up: resolve segments spanning chunk boundaries.  Each chunk's
    // first stop closes a segment no worker assigned (they defer it to
    // firsts_), and the segment -> block-row map is injective, so plain
    // assignment is complete — no prior clear needed.
    if (mode_ == SegSumMode::kSerialFold) {
      // Legacy serial carry fold (the adjacent-synchronization chain,
      // folded): the O(nchunks) sequential tail the speculative path
      // removes, kept bit-for-bit as baseline and escape hatch.
      real_t carry[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (std::size_t c = 0; c < nchunks; ++c) {
        const index_t first = chunk_first_seg_[c];
        const index_t next = chunk_first_seg_[c + 1];
        if (next > first) {
          const auto sbrow = static_cast<std::size_t>(
              f.seg_to_block_row[static_cast<std::size_t>(first)]);
          for (std::size_t k = 0; k < h; ++k) {
            out[sbrow * h + k] = carry[k] + firsts_[c * h + k];
          }
          for (std::size_t k = 0; k < h; ++k) carry[k] = carries_[c * h + k];
        } else {
          for (std::size_t k = 0; k < h; ++k) carry[k] += carries_[c * h + k];
        }
      }
    } else {
      const simd::AccAddFn aadd = simd::acc_add();
      const simd::CarryApplyFn capply = simd::carry_apply();
      speculative_fixup(
          nchunks, h, threads_, unordered, chunk_first_seg_.data(),
          firsts_.data(), carries_.data(), 0.0,
          [aadd, h](real_t* dst, const real_t* src) { aadd(dst, src, h); },
          [&](std::size_t c, const real_t* inc) {
            const auto sbrow = static_cast<std::size_t>(
                f.seg_to_block_row[static_cast<std::size_t>(
                    chunk_first_seg_[c])]);
            capply(out + sbrow * h, inc, firsts_.data() + c * h, h);
          },
          fix_, shards_ > 1 ? shard_chunk_start_.data() : nullptr, shards_);
    }
    if (direct_y_) return;  // workers already produced y

    // Combine y from the (slice-stacked) result buffer — the CPU analog of
    // the Figure 5 combine kernel.  Rows are independent (the per-row slice
    // sum runs in fixed slice order), so the pooled row-chunked version is
    // bitwise identical to the serial one; small matrices stay serial to
    // dodge the dispatch overhead.
    const auto bh = static_cast<std::size_t>(f.cfg.block_h);
    const auto combine_rows = [&](index_t r0, index_t r1) {
      for (index_t r = r0; r < r1; ++r) {
        const auto rz = static_cast<std::size_t>(r);
        real_t s = 0.0;
        for (index_t sl = 0; sl < f.cfg.slices; ++sl) {
          const std::size_t sbrow =
              static_cast<std::size_t>(sl) *
                  static_cast<std::size_t>(f.block_rows) +
              rz / bh;
          s += res_[sbrow * h + rz % bh];
        }
        y[rz] = s;
      }
    };
    constexpr index_t kParCombineRows = 4096;
    if (threads_ > 1 && f.rows >= kParCombineRows) {
      const auto rowsz = static_cast<std::size_t>(f.rows);
      const std::size_t rchunks = std::min<std::size_t>(threads_ * 4, rowsz);
      const auto combine_body = [&](unsigned, std::size_t rc) {
        combine_rows(static_cast<index_t>(rc * rowsz / rchunks),
                     static_cast<index_t>((rc + 1) * rowsz / rchunks));
      };
      if (shards_ > 1 && unordered) {
        // Shard-local combine: each domain folds the rows whose res_ pages
        // it placed, then the disjoint row ranges ARE the cross-shard
        // merge — no second reduction and no reassociation.
        parallel_for_sharded(rchunks, combine_shard_start_.data(), shards_,
                             threads_, combine_body);
      } else if (unordered) {
        parallel_for_unordered(rchunks, threads_, combine_body);
      } else {
        parallel_for_ordered(rchunks, threads_, combine_body);
      }
    } else {
      combine_rows(0, f.rows);
    }
  }

  /// ABFT-verified apply: y = A x, then sum(y) is compared against the
  /// format's column-checksum dot within the computed rounding bound (see
  /// core/checksum.hpp).  The check is two vectorized passes — sum over y
  /// and the fused (w.x, |w|.|x|) dot — so the overhead stays single-digit
  /// even at nnz/row ~ 3.  Throws IntegrityFault on mismatch (with the
  /// tripping slice attributed via the pre-combine partials when sliced);
  /// returns the report (delta, bound) on success.
  core::ChecksumReport spmv_verified(std::span<const real_t> x,
                                     std::span<real_t> y) {
    spmv(x, y);
    core::ChecksumReport rep = verify_output(x, y);
    if (!rep.ok()) {
      throw IntegrityFault("cpu verified apply: " + rep.message());
    }
    return rep;
  }

  /// The verification half of spmv_verified, usable on its own against an
  /// already-computed y (must be the output of this engine's spmv for the
  /// slice attribution to mean anything).
  core::ChecksumReport verify_output(std::span<const real_t> x,
                                     std::span<const real_t> y) const {
    const core::Bccoo& f = *fmt_;
    require(f.checksums_built,
            "CpuSpmv: verified apply needs the format's checksum plan");
    core::ChecksumReport rep;
    rep.lhs = simd::sum()(y.data(), y.size());
    const simd::CheckDotResult cd = simd::checksum_dot()(
        f.checksum_w.data(), f.checksum_wabs.data(), x.data(), x.size());
    rep.rhs = cd.wx;
    rep.delta = std::abs(rep.lhs - rep.rhs);
    rep.bound = core::checksum_bound(f, cd.babs);
    if (!rep.ok() && f.cfg.slices > 1 && !res_.empty()) {
      // Failure path only: serial per-slice attribution off the stacked
      // partial results the workers just produced.
      rep.slice = core::verify_apply(
                      f, x, y, std::span<const real_t>(res_.data(),
                                                       res_.size()))
                      .slice;
    }
    return rep;
  }

 private:
  /// "2x4/short" — the (block_w x block_h / stream) label dims-check and
  /// range errors carry so tuner skip-and-record logs name the candidate.
  std::string config_name() const {
    return std::to_string(fmt_->cfg.block_w) + "x" +
           std::to_string(fmt_->cfg.block_h) + "/" + core::to_string(cs_);
  }

  /// Column source of decode tile [t0, t1) (t0 tile-aligned): raw mode
  /// returns a pointer straight into col_index; compressed modes expand the
  /// int16/u16 stream into `buf` (tile-local indexing either way — caller
  /// reads tc[i - t0]).
  const index_t* tile_cols(std::size_t t0, std::size_t t1, index_t* buf,
                           simd::DecodeShortFn dshort,
                           simd::DecodeDeltaFn ddelta) const {
    const core::Bccoo& f = *fmt_;
    switch (cs_) {
      case core::ColStream::kShort:
        dshort(f.short_cols.data() + t0, buf, t1 - t0);
        return buf;
      case core::ColStream::kDelta: {
        const std::size_t t = t0 / core::Bccoo::kColTile;
        ddelta(f.delta_cols.data() + t0, t1 - t0,
               f.delta_escapes.data() + f.delta_escape_start[t], buf);
        return buf;
      }
      default:
        return f.col_index.data() + t0;
    }
  }

  void process_chunk(std::size_t c, std::size_t h, std::size_t bw,
                     const real_t* x, real_t* out) {
    const core::Bccoo& f = *fmt_;
    const std::size_t b0 = chunk_start_[c];
    const std::size_t b1 = chunk_start_[c + 1];
    index_t seg = chunk_first_seg_[c];
    const std::uint32_t* words = f.bit_flags.words().data();
    const simd::DecodeShortFn dshort = simd::decode_short();
    const simd::DecodeDeltaFn ddelta = simd::decode_delta();
    // Per-tile decode scratch: 2 KB on the worker's stack, L1-resident.
    index_t buf[core::Bccoo::kColTile];
    constexpr std::size_t kTile = core::Bccoo::kColTile;
    if (h == 1 && bw == 1) {
      // Fast path for scalar blocks (the tuner's most common choice): walk
      // the chunk decode tile by decode tile, and within a tile segment
      // piece by segment piece — the packed bit flags are scanned a word at
      // a time for the next row stop, and each piece is a gathered dot
      // product on the SIMD kernel.  Scalar blocks are never padded, so x
      // is read in place.
      const real_t* vals = f.value_rows[0].data();
      // Chunks whose *average* segment is short (power-law matrices) take a
      // single-pass loop — one bit test per non-zero beats a per-segment
      // word scan + kernel call when segments hold only a few non-zeros.
      // The choice depends only on the format and the chunk decomposition
      // (i.e. the requested thread count), so determinism is unaffected.
      const std::size_t stops_c =
          static_cast<std::size_t>(chunk_first_seg_[c + 1]) -
          static_cast<std::size_t>(chunk_first_seg_[c]);
      if (stops_c * simd::kShortSegment > b1 - b0) {
        real_t acc = 0.0;
        bool fs = true;
        for (std::size_t t0 = b0; t0 < b1; t0 += kTile) {
          const std::size_t t1 = std::min(t0 + kTile, b1);
          const index_t* tc = tile_cols(t0, t1, buf, dshort, ddelta);
          for (std::size_t i = t0; i < t1; ++i) {
            acc += vals[i] * x[static_cast<std::size_t>(tc[i - t0])];
            if (!((words[i >> 5] >> (i & 31u)) & 1u)) {  // row stop
              if (fs) {
                firsts_[c] = acc;
                fs = false;
              } else {
                out[static_cast<std::size_t>(
                    f.seg_to_block_row[static_cast<std::size_t>(seg)])] = acc;
              }
              acc = 0.0;
              ++seg;
            }
          }
        }
        carries_[c] = acc;
        return;
      }
      // Piece-based loop.  A segment piece crossing a tile boundary is split
      // there and accumulated sequentially (part += dot(subpiece)); the
      // split points depend only on the format and the chunk decomposition,
      // never the column mode, which is what keeps raw/short/delta bitwise
      // identical.
      const simd::DotRangeFn dot = simd::dot_range();
      real_t part = 0.0;  // running sum of the currently open piece
      bool first_stop = true;
      for (std::size_t t0 = b0; t0 < b1; t0 += kTile) {
        const std::size_t t1 = std::min(t0 + kTile, b1);
        const index_t* tc = tile_cols(t0, t1, buf, dshort, ddelta);
        const real_t* tv = vals + t0;
        const std::size_t tn = t1 - t0;
        std::size_t i = t0;
        for (;;) {
          const std::size_t stop = simd::next_row_stop(words, i, t1);
          if (stop == t1) {  // open piece continues into the next tile
            if (i < t1) {
              part += simd::dot_piece(dot, tv, tc, x, i - t0, tn, tn);
            }
            break;
          }
          const real_t s =
              part + simd::dot_piece(dot, tv, tc, x, i - t0, stop + 1 - t0, tn);
          part = 0.0;
          if (first_stop) {
            // May continue from the previous chunk: defer to the fix-up.
            firsts_[c] = s;
            first_stop = false;
          } else {
            out[static_cast<std::size_t>(
                f.seg_to_block_row[static_cast<std::size_t>(seg)])] = s;
          }
          ++seg;
          i = stop + 1;
        }
      }
      carries_[c] = part;
      return;
    }
    const simd::DotDenseFn bdot = simd::dot_dense();
    real_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    bool first_stop = true;
    for (std::size_t t0 = b0; t0 < b1; t0 += kTile) {
      const std::size_t t1 = std::min(t0 + kTile, b1);
      const index_t* tc = tile_cols(t0, t1, buf, dshort, ddelta);
      for (std::size_t i = t0; i < t1; ++i) {
        const auto bcol = static_cast<std::size_t>(tc[i - t0]);
        // Zero-copy with a tail redirect: every block column starts in
        // bounds; only the (rare) padded last block column reads the
        // ctor-padded xtail_ scratch instead of x.
        const real_t* xv =
            bcol == pad_bcol_ ? xtail_.data() : x + bcol * bw;
        if (i + 4 < t1) {
          __builtin_prefetch(x + static_cast<std::size_t>(tc[i + 4 - t0]) * bw);
        }
        for (std::size_t k = 0; k < h; ++k) {
          acc[k] += bdot(f.value_rows[k].data() + i * bw, xv, bw);
        }
        if (!f.bit_flags.get(i)) {  // row stop
          if (first_stop) {
            // May continue from the previous chunk: defer to the fix-up.
            for (std::size_t k = 0; k < h; ++k) {
              firsts_[c * h + k] = acc[k];
              acc[k] = 0.0;
            }
            first_stop = false;
          } else {
            const auto sbrow = static_cast<std::size_t>(
                f.seg_to_block_row[static_cast<std::size_t>(seg)]);
            for (std::size_t k = 0; k < h; ++k) {
              out[sbrow * h + k] = acc[k];
              acc[k] = 0.0;
            }
          }
          ++seg;
        }
      }
    }
    for (std::size_t k = 0; k < h; ++k) carries_[c * h + k] = acc[k];
  }

  std::shared_ptr<const core::Bccoo> fmt_;
  unsigned threads_;
  core::ColStream cs_;
  SegSumMode mode_;
  grid::ChunkKernelFn grid_fn_ = nullptr;  ///< specialized kernel, or null
  const char* kernel_id_ = "generic";      ///< stable dispatch id
  FixupScratch fix_;  ///< speculative fix-up scratch (segfix.hpp)
  sim::FaultInjector* injector_ = nullptr;  ///< nullable kFlipPartial site
  bool direct_y_ = false;  ///< workers write y in place (1 slice, no row pad)
  unsigned shards_ = 1;  ///< locality domains (NUMA shard groups)
  std::vector<std::size_t> chunk_start_;
  std::vector<index_t> chunk_first_seg_;
  /// shards_ + 1 chunk boundaries (from the format's block shard grid).
  std::vector<std::size_t> shard_chunk_start_;
  /// shards_ + 1 row-chunk boundaries for the sharded combine pass.
  std::vector<std::size_t> combine_shard_start_;
  /// Per-shard x halo [lo, hi) — empty when unsharded.
  std::vector<std::pair<index_t, index_t>> shard_col_range_;
  FirstTouchBuffer<real_t> carries_;  ///< per chunk: trailing open-seg sum
  FirstTouchBuffer<real_t> firsts_;   ///< per chunk: first (partial) sum
  // Tail redirect for padded blocked formats (empty / never-matching when
  // cols divide evenly — the common case reads x with zero copies).
  std::size_t pad_bcol_ = static_cast<std::size_t>(-1);
  std::size_t tail_n_ = 0;       ///< live elements in the padded last block
  std::vector<real_t> xtail_;    ///< last block column, pad zeroed once
  FirstTouchBuffer<real_t> res_;  ///< slice-stacked results (!direct_y_)
  std::vector<std::size_t> zero_rows_;  ///< uncovered rows (direct_y_ only)
};

/// Multi-vector product Y = A * X (SpMM) on the BCCOO format: X and Y are
/// column-major n x k panels.  For scalar (1x1) blocks — the tuner's common
/// choice — a fused pass reads each non-zero (value, column, bit flag)
/// once and accumulates all k right-hand sides together, which is the
/// classic SpMM win over k SpMV calls; blocked formats fall back to the
/// per-vector path.  The fused path's chunk decomposition, row-stop scans
/// and uncovered-row list are precomputed in the constructor (next to the
/// CpuSpmv precomputation); the first/carry panels are cached across calls
/// and only reallocated when k changes.  Like CpuSpmv, covered rows are
/// assigned (not accumulated), so no full panel clear happens per call.
class CpuSpmm {
 public:
  explicit CpuSpmm(std::shared_ptr<const core::Bccoo> m, unsigned threads = 0,
                   core::ColStream cs = core::ColStream::kAuto,
                   SegSumMode mode = default_segsum_mode(),
                   grid::KernelDispatch kd = grid::KernelDispatch::kAuto)
      : fmt_(std::move(m)),
        eng_(fmt_, threads, cs, mode, kd),
        threads_(threads == 0 ? default_workers() : threads),
        cs_(fmt_->resolve_col_stream(cs)),
        mode_(mode) {
    const auto& f = *fmt_;
    if (f.cfg.block_w == 1 && f.cfg.block_h == 1 && f.cfg.slices == 1) {
      // The fused panel pass reuses the specialization grid: its block dims
      // are 1x1 by construction, so only the column stream is burned in.
      // Same fallback rules as CpuSpmv (kGeneric / kSerialFold stay
      // generic).
      if (kd == grid::KernelDispatch::kAuto &&
          mode_ != SegSumMode::kSerialFold) {
        if (const grid::SpmmGridEntry* e = grid::find_spmm(cs_)) {
          spmm_fn_ = e->fn;
          kernel_id_ = e->id;
        }
      }
    } else {
      // Blocked/sliced formats run k per-vector applies through eng_.
      kernel_id_ = eng_.kernel_id();
    }
    if (f.cfg.block_w == 1 && f.cfg.block_h == 1 && f.cfg.slices == 1 &&
        f.num_blocks > 0) {
      // Hoisted per-call work of the fused pass: chunk boundaries (rounded
      // down to decode-tile granularity, like CpuSpmv) and the
      // count_zeros_before scans (O(num_blocks) each) happen once here.
      const std::size_t nb = f.num_blocks;
      const std::size_t nchunks =
          std::max<std::size_t>(1, std::min<std::size_t>(threads_ * 4, nb));
      starts_.resize(nchunks + 1);
      first_seg_.resize(nchunks + 1);
      for (std::size_t c = 0; c <= nchunks; ++c) {
        std::size_t s = c * nb / nchunks;
        if (c != 0 && c != nchunks) {
          s = s / core::Bccoo::kColTile * core::Bccoo::kColTile;
        }
        starts_[c] = s;
        first_seg_[c] =
            static_cast<index_t>(f.bit_flags.count_zeros_before(starts_[c]));
      }
      // Rows no segment covers: the only ones the fused pass must clear.
      std::vector<bool> covered(static_cast<std::size_t>(f.rows), false);
      for (const index_t r : f.seg_to_block_row) {
        covered[static_cast<std::size_t>(r)] = true;
      }
      for (std::size_t r = 0; r < covered.size(); ++r) {
        if (!covered[r]) zero_rows_.push_back(r);
      }
    }
  }

  const core::Bccoo& format() const { return *fmt_; }
  /// Stable id of the kernel the fused panel pass dispatches to
  /// ("grid/spmm/<stream>" or "generic"); blocked/sliced formats report the
  /// per-vector engine's id.
  const char* kernel_id() const { return kernel_id_; }

  /// X: cols x k column-major, Y: rows x k column-major.
  void spmm(std::span<const real_t> X, std::span<real_t> Y, index_t k) {
    const auto& f = *fmt_;
    require(k > 0, "CpuSpmm: k must be positive");
    if (X.size() != static_cast<std::size_t>(f.cols) *
                        static_cast<std::size_t>(k) ||
        Y.size() != static_cast<std::size_t>(f.rows) *
                        static_cast<std::size_t>(k)) {
      require(false, "CpuSpmm[" + std::to_string(f.cfg.block_w) + "x" +
                         std::to_string(f.cfg.block_h) + "/" +
                         core::to_string(cs_) + "]: panel size mismatch: "
                         "got X[" + std::to_string(X.size()) + "] Y[" +
                         std::to_string(Y.size()) + "], need X[" +
                         std::to_string(static_cast<std::size_t>(f.cols) *
                                        static_cast<std::size_t>(k)) +
                         "] Y[" +
                         std::to_string(static_cast<std::size_t>(f.rows) *
                                        static_cast<std::size_t>(k)) +
                         "] for k=" + std::to_string(k));
    }
    if (f.cfg.block_w == 1 && f.cfg.block_h == 1 && f.cfg.slices == 1) {
      fused_scalar(X, Y, k);
      return;
    }
    for (index_t j = 0; j < k; ++j) {
      eng_.spmv(X.subspan(static_cast<std::size_t>(j) *
                              static_cast<std::size_t>(f.cols),
                          static_cast<std::size_t>(f.cols)),
                Y.subspan(static_cast<std::size_t>(j) *
                              static_cast<std::size_t>(f.rows),
                          static_cast<std::size_t>(f.rows)));
    }
  }

 private:
  void fused_scalar(std::span<const real_t> X, std::span<real_t> Y,
                    index_t k) {
    const auto& f = *fmt_;
    const auto kz = static_cast<std::size_t>(k);
    const auto colsz = static_cast<std::size_t>(f.cols);
    const auto rowsz = static_cast<std::size_t>(f.rows);
    if (f.num_blocks == 0) {
      std::fill(Y.begin(), Y.end(), 0.0);
      return;
    }
    for (const std::size_t r : zero_rows_) {
      for (std::size_t j = 0; j < kz; ++j) Y[j * rowsz + r] = 0.0;
    }
    const std::size_t nchunks = starts_.size() - 1;
    // Panel scratch (k values per chunk) is cached across calls; the per
    // chunk accumulator panel lives here too so the workers allocate
    // nothing.
    if (panels_k_ != kz) {
      firsts_.assign(nchunks * kz, 0.0);
      carries_.assign(nchunks * kz, 0.0);
      acc_panel_.assign(nchunks * kz, 0.0);
      panels_k_ = kz;
    }
    const real_t* vals = f.value_rows[0].data();
    const simd::DecodeShortFn dshort = simd::decode_short();
    const simd::DecodeDeltaFn ddelta = simd::decode_delta();

    const bool unordered = mode_ == SegSumMode::kSpeculative;
    // Specialized dispatch (stream burned in), same shape as CpuSpmv::spmv:
    // resolved at construction, branched once per chunk.
    const grid::SpmmCtx gctx{fmt_.get(),      starts_.data(),
                             first_seg_.data(), firsts_.data(),
                             carries_.data(), acc_panel_.data()};
    const grid::SpmmKernelFn gfn = spmm_fn_;
    const auto chunk_body = [&](unsigned, std::size_t c) {
      if (gfn) {
        gfn(gctx, c, X.data(), Y.data(), kz, colsz, rowsz);
        return;
      }
      real_t* acc = acc_panel_.data() + c * kz;
      std::fill(acc, acc + kz, 0.0);
      index_t seg = first_seg_[c];
      bool first_stop = true;
      index_t buf[core::Bccoo::kColTile];
      constexpr std::size_t kTile = core::Bccoo::kColTile;
      for (std::size_t t0 = starts_[c]; t0 < starts_[c + 1]; t0 += kTile) {
        const std::size_t t1 = std::min(t0 + kTile, starts_[c + 1]);
        const index_t* tc;
        if (cs_ == core::ColStream::kShort) {
          dshort(f.short_cols.data() + t0, buf, t1 - t0);
          tc = buf;
        } else if (cs_ == core::ColStream::kDelta) {
          const std::size_t t = t0 / kTile;
          ddelta(f.delta_cols.data() + t0, t1 - t0,
                 f.delta_escapes.data() + f.delta_escape_start[t], buf);
          tc = buf;
        } else {
          tc = f.col_index.data() + t0;
        }
        for (std::size_t i = t0; i < t1; ++i) {
          const real_t v = vals[i];
          const auto col = static_cast<std::size_t>(tc[i - t0]);
          if (i + 8 < t1) {
            __builtin_prefetch(&X[static_cast<std::size_t>(tc[i + 8 - t0])]);
          }
          for (std::size_t j = 0; j < kz; ++j) {
            acc[j] += v * X[j * colsz + col];  // one decode, k FMAs
          }
          if (!f.bit_flags.get(i)) {
            if (first_stop) {
              std::copy(acc, acc + kz, &firsts_[c * kz]);
              first_stop = false;
            } else {
              const auto row = static_cast<std::size_t>(
                  f.seg_to_block_row[static_cast<std::size_t>(seg)]);
              for (std::size_t j = 0; j < kz; ++j) Y[j * rowsz + row] = acc[j];
            }
            std::fill(acc, acc + kz, 0.0);
            ++seg;
          }
        }
      }
      std::copy(acc, acc + kz, &carries_[c * kz]);
    };
    if (unordered) {
      parallel_for_unordered(nchunks, threads_, chunk_body);
    } else {
      parallel_for_ordered(nchunks, threads_, chunk_body);
    }

    // Fix-up assigns, same injectivity argument as CpuSpmv::spmv.
    if (mode_ == SegSumMode::kSerialFold) {
      std::vector<real_t> carry(kz, 0.0);
      for (std::size_t c = 0; c < nchunks; ++c) {
        if (first_seg_[c + 1] > first_seg_[c]) {
          const auto row = static_cast<std::size_t>(
              f.seg_to_block_row[static_cast<std::size_t>(first_seg_[c])]);
          for (std::size_t j = 0; j < kz; ++j) {
            Y[j * rowsz + row] = carry[j] + firsts_[c * kz + j];
            carry[j] = carries_[c * kz + j];
          }
        } else {
          for (std::size_t j = 0; j < kz; ++j) {
            carry[j] += carries_[c * kz + j];
          }
        }
      }
    } else {
      const simd::AccAddFn aadd = simd::acc_add();
      speculative_fixup(
          nchunks, kz, threads_, unordered, first_seg_.data(),
          firsts_.data(), carries_.data(), 0.0,
          [aadd, kz](real_t* dst, const real_t* src) { aadd(dst, src, kz); },
          [&](std::size_t c, const real_t* inc) {
            // Y panels are column-major, so the chunk's first-segment row is
            // strided — apply lane by lane.
            const auto row = static_cast<std::size_t>(
                f.seg_to_block_row[static_cast<std::size_t>(first_seg_[c])]);
            const real_t* fi = firsts_.data() + c * kz;
            for (std::size_t j = 0; j < kz; ++j) {
              Y[j * rowsz + row] = inc[j] + fi[j];
            }
          },
          fix_);
    }
  }

  std::shared_ptr<const core::Bccoo> fmt_;
  CpuSpmv eng_;
  unsigned threads_;
  core::ColStream cs_;
  SegSumMode mode_;
  grid::SpmmKernelFn spmm_fn_ = nullptr;  ///< specialized fused pass, or null
  const char* kernel_id_ = "generic";     ///< stable dispatch id
  FixupScratch fix_;
  // Fused-path precomputation (1x1 blocks, 1 slice): chunk starts and the
  // first-segment ordinals, plus the cached per-chunk panels.
  std::vector<std::size_t> starts_;
  std::vector<index_t> first_seg_;
  std::vector<real_t> firsts_;
  std::vector<real_t> carries_;
  std::vector<real_t> acc_panel_;
  std::vector<std::size_t> zero_rows_;
  std::size_t panels_k_ = 0;
};

/// Parallel CSR SpMV baseline (row-range partitioning) for the CPU benches.
/// The row dot products run on the same SIMD dot kernel as the BCCOO path
/// (CSR rows are exactly stop-free segment pieces).
inline void spmv_csr_parallel(const fmt::Csr& m, std::span<const real_t> x,
                              std::span<real_t> y, unsigned threads = 0) {
  require(x.size() == static_cast<std::size_t>(m.cols) &&
              y.size() == static_cast<std::size_t>(m.rows),
          "spmv_csr_parallel: vector size mismatch");
  if (threads == 0) threads = default_workers();
  const std::size_t chunks = std::min<std::size_t>(
      threads * 4, std::max<std::size_t>(1, static_cast<std::size_t>(m.rows)));
  const simd::DotRangeFn dot = simd::dot_range();
  // Row ranges are independent (disjoint y writes, no carries), so the
  // unordered claim is bitwise identical and skips the per-range ticket.
  parallel_for_unordered(chunks, threads, [&](unsigned, std::size_t c) {
    const auto r0 = static_cast<index_t>(
        c * static_cast<std::size_t>(m.rows) / chunks);
    const auto r1 = static_cast<index_t>(
        (c + 1) * static_cast<std::size_t>(m.rows) / chunks);
    const real_t* vals = m.vals.data();
    const index_t* cols = m.col_idx.data();
    const real_t* xv = x.data();
    const auto pf_bound = static_cast<std::size_t>(
        m.row_ptr[static_cast<std::size_t>(r1)]);
    for (index_t r = r0; r < r1; ++r) {
      y[static_cast<std::size_t>(r)] = simd::dot_piece(
          dot, vals, cols, xv,
          static_cast<std::size_t>(m.row_ptr[static_cast<std::size_t>(r)]),
          static_cast<std::size_t>(m.row_ptr[static_cast<std::size_t>(r) + 1]),
          pf_bound);
    }
  });
}

}  // namespace yaspmv::cpu
