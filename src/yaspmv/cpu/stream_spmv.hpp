// Out-of-core streaming SpMV over a memory-mapped BCCOO container
// (io/stream.hpp): the apply walks the file tile by tile (one decode tile
// = Bccoo::kColTile blocks), copying each tile's column indices, bit-flag
// words and value rows into preallocated aligned scratch and running the
// serial segmented sum over it.  Nothing proportional to the matrix is
// ever resident: the working set is two tiles (the one being processed
// and the one being prefetched), so a matrix far larger than RAM streams
// at disk bandwidth.
//
// Prefetch is a double-buffered madvise window: while tile window w is
// processed, window w+1 is advised kWillNeed (the kernel reads ahead) and
// window w-1 kDontNeed (its pages are dropped, bounding residency).
//
// Determinism/correctness contract: the walk is the exact loop of
// Bccoo::spmv_reference — same block order, same per-block accumulation
// order, same guarded column/row bounds — so a streamed apply is bitwise
// identical to the in-memory reference apply of the same format.  Tiles
// impose no restart semantics on this walk (the raw column index decodes
// tile-independently; the open segment accumulator carries across tile
// boundaries in scratch), which is what lets the engine pick any tile
// size without changing a bit of the result.
//
// Faults: every apply runs under the SIGBUS guard, so a file truncated or
// replaced underneath the mapping surfaces as a typed IoError — a serving
// daemon degrades the request instead of dying.  The apply path performs
// no heap allocation (scratch is ctor-built), enforced by
// tools/check_stream_alloc.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/io/stream.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::cpu {

/// Reusable streaming SpMV executor over one mapped container.
class CpuStreamSpmv {
 public:
  /// Decode-tile granularity of the streamed walk (shared with the
  /// in-memory kernels' column-decode tiling).
  static constexpr std::size_t kTileBlocks = core::Bccoo::kColTile;
  /// Tiles per madvise window: prefetch/drop in ~this many tiles' worth
  /// of bytes so the advisory syscalls amortize over real I/O.
  static constexpr std::size_t kWindowTiles = 16;

  explicit CpuStreamSpmv(std::shared_ptr<const io::MappedBccoo> m)
      : m_(std::move(m)) {
    require(m_ != nullptr, "CpuStreamSpmv: null mapping");
    const auto h = static_cast<std::size_t>(m_->block_h());
    const auto bw = static_cast<std::size_t>(m_->block_w());
    require(h >= 1 && h <= 8,
            "CpuStreamSpmv: block height " + std::to_string(h) +
                " outside the accepted range [1, 8]");
    cols_tile_.resize(kTileBlocks);
    bits_tile_.resize(kTileBlocks / 32);
    vals_tile_.resize(h);
    for (auto& v : vals_tile_) v.resize(kTileBlocks * bw);
  }

  const io::MappedBccoo& mapped() const { return *m_; }
  index_t rows() const { return m_->rows(); }
  index_t cols() const { return m_->cols(); }
  /// Bytes one apply streams off the file (the GB/s numerator).
  std::uint64_t streamed_bytes() const { return m_->streamed_bytes(); }

  /// y = A * x, streamed off the mapping.  Serial (the walk is bandwidth-
  /// bound on the file, not compute-bound); bitwise identical to
  /// Bccoo::spmv_reference on the same format.  Throws IoError when the
  /// mapped file vanishes mid-apply (SIGBUS converted), never faults the
  /// process.
  void spmv(std::span<const real_t> x, std::span<real_t> y) {
    require(x.size() == static_cast<std::size_t>(m_->cols()) &&
                y.size() == static_cast<std::size_t>(m_->rows()),
            "CpuStreamSpmv: vector size mismatch");
    io::with_sigbus_guard("stream spmv", [&] { run(x.data(), y); });
  }

 private:
  void run(const real_t* x, std::span<real_t> y) {
    const auto h = static_cast<std::size_t>(m_->block_h());
    const auto bw = static_cast<std::size_t>(m_->block_w());
    const index_t ncols = m_->cols();
    const index_t nrows = m_->rows();
    const index_t block_rows = m_->block_rows();
    const std::uint64_t nb = m_->num_blocks();
    std::fill(y.begin(), y.end(), 0.0);
    if (nb == 0) return;
    m_->advise_segmap(io::Advice::kWillNeed);

    real_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t seg = 0;
    constexpr std::size_t kWin = kTileBlocks * kWindowTiles;
    m_->advise_blocks(0, std::min<std::uint64_t>(kWin, nb),
                      io::Advice::kWillNeed);
    for (std::size_t b0 = 0; b0 < nb; b0 += kTileBlocks) {
      const std::size_t b1 = std::min<std::uint64_t>(b0 + kTileBlocks, nb);
      if (b0 % kWin == 0) {
        // Double-buffered window: read ahead one window, drop the one
        // before the window just finished.
        m_->advise_blocks(b0 + kWin, std::min<std::uint64_t>(b0 + 2 * kWin, nb),
                          io::Advice::kWillNeed);
        if (b0 >= 2 * kWin) {
          m_->advise_blocks(b0 - 2 * kWin, b0 - kWin, io::Advice::kDontNeed);
        }
      }
      m_->copy_cols(b0, b1, cols_tile_.data());
      m_->copy_bit_words(b0 / 32, (b1 + 31) / 32, bits_tile_.data());
      for (std::size_t k = 0; k < h; ++k) {
        m_->copy_vals(k, b0, b1, vals_tile_[k].data());
      }
      for (std::size_t i = b0; i < b1; ++i) {
        const std::size_t ti = i - b0;
        const index_t bcol = cols_tile_[ti];
        for (std::size_t lr = 0; lr < h; ++lr) {
          real_t s = 0.0;
          for (std::size_t lc = 0; lc < bw; ++lc) {
            const index_t c =
                bcol * static_cast<index_t>(bw) + static_cast<index_t>(lc);
            if (c < ncols) {
              s += vals_tile_[lr][ti * bw + lc] *
                   x[static_cast<std::size_t>(c)];
            }
          }
          acc[lr] += s;
        }
        if (!((bits_tile_[ti >> 5] >> (ti & 31u)) & 1u)) {  // row stop
          const index_t stacked_brow = m_->seg_row(seg++);
          const index_t brow = stacked_brow % block_rows;
          for (std::size_t lr = 0; lr < h; ++lr) {
            const index_t r =
                brow * static_cast<index_t>(h) + static_cast<index_t>(lr);
            if (r < nrows) y[static_cast<std::size_t>(r)] += acc[lr];
            acc[lr] = 0.0;
          }
        }
      }
    }
  }

  std::shared_ptr<const io::MappedBccoo> m_;
  std::vector<index_t> cols_tile_;         ///< tile column scratch
  std::vector<std::uint32_t> bits_tile_;   ///< tile bit-flag words
  std::vector<std::vector<real_t>> vals_tile_;  ///< per value row
};

}  // namespace yaspmv::cpu
