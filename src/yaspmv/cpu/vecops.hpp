// Pooled, SIMD-dispatched dense vector kernels for the iterative solvers —
// the other half of a solver iteration (Section 1 of the paper motivates
// SpMV with exactly these Krylov loops; Liu & Vinter's observation that
// cross-call setup dominates repeated SpMV applies just as much to the
// dot/axpy sweeps between the multiplies).
//
// Each primitive (dot, nrm2, axpy, xpay, and the fused solver updates that
// collapse adjacent sweeps into one pass) is provided in two runtime-
// dispatched implementations — AVX2/FMA and a portable four-accumulator
// fallback — sharing the dispatch level of cpu/simd.hpp, and runs on the
// shared WorkPool.
//
// Determinism contract (stronger than the SpMV kernels'): the chunk grid is
// a pure function of the vector length (fixed kChunk elements per chunk,
// never the thread count), every reduction uses the kernels' fixed lane
// order (element p of a chunk accumulates into lane (p - lo) % 4, lanes
// reduce as (l0 + l2) + (l1 + l3), tails are sequential), and per-chunk
// partials are combined serially in chunk order.  Results are therefore
// bitwise identical for ANY requested thread count at a fixed dispatch
// level; across levels fused multiply-add changes results by rounding only
// (tested at a 1-ulp-scaled tolerance, like the SpMV kernels).  Fused
// kernels apply the same per-element expressions as their unfused
// equivalents, so fusion never changes the updated vectors at a fixed
// level.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "yaspmv/cpu/simd.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv::cpu {

/// Two dot products accumulated in one pass.
struct DotPair {
  double ab = 0.0;
  double ac = 0.0;
};

namespace vk {

// ---- portable kernels (four-accumulator lane order) -----------------------

inline double dot_portable(const real_t* a, const real_t* b, std::size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    l0 += a[p] * b[p];
    l1 += a[p + 1] * b[p + 1];
    l2 += a[p + 2] * b[p + 2];
    l3 += a[p + 3] * b[p + 3];
  }
  double s = (l0 + l2) + (l1 + l3);
  for (; p < n; ++p) s += a[p] * b[p];
  return s;
}

inline void dot2_portable(const real_t* a, const real_t* b, const real_t* c,
                          std::size_t n, double out[2]) {
  double x0 = 0, x1 = 0, x2 = 0, x3 = 0;
  double y0 = 0, y1 = 0, y2 = 0, y3 = 0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    x0 += a[p] * b[p];
    x1 += a[p + 1] * b[p + 1];
    x2 += a[p + 2] * b[p + 2];
    x3 += a[p + 3] * b[p + 3];
    y0 += a[p] * c[p];
    y1 += a[p + 1] * c[p + 1];
    y2 += a[p + 2] * c[p + 2];
    y3 += a[p + 3] * c[p + 3];
  }
  double sx = (x0 + x2) + (x1 + x3);
  double sy = (y0 + y2) + (y1 + y3);
  for (; p < n; ++p) {
    sx += a[p] * b[p];
    sy += a[p] * c[p];
  }
  out[0] = sx;
  out[1] = sy;
}

inline void axpy_portable(double alpha, const real_t* x, real_t* y,
                          std::size_t n) {
  for (std::size_t p = 0; p < n; ++p) y[p] += alpha * x[p];
}

inline void xpay_portable(const real_t* x, double alpha, real_t* y,
                          std::size_t n) {
  for (std::size_t p = 0; p < n; ++p) y[p] = x[p] + alpha * y[p];
}

/// y += alpha * x, returning the chunk's y . y after the update.
inline double axpy_dot_portable(double alpha, const real_t* x, real_t* y,
                                std::size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    y[p] += alpha * x[p];
    y[p + 1] += alpha * x[p + 1];
    y[p + 2] += alpha * x[p + 2];
    y[p + 3] += alpha * x[p + 3];
    l0 += y[p] * y[p];
    l1 += y[p + 1] * y[p + 1];
    l2 += y[p + 2] * y[p + 2];
    l3 += y[p + 3] * y[p + 3];
  }
  double s = (l0 + l2) + (l1 + l3);
  for (; p < n; ++p) {
    y[p] += alpha * x[p];
    s += y[p] * y[p];
  }
  return s;
}

/// CG inner update: x += alpha p, r -= alpha q, returns the chunk's r . r.
inline double cg_update_portable(double alpha, const real_t* p_,
                                 const real_t* q, real_t* x, real_t* r,
                                 std::size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      x[p + j] += alpha * p_[p + j];
      r[p + j] -= alpha * q[p + j];
    }
    l0 += r[p] * r[p];
    l1 += r[p + 1] * r[p + 1];
    l2 += r[p + 2] * r[p + 2];
    l3 += r[p + 3] * r[p + 3];
  }
  double s = (l0 + l2) + (l1 + l3);
  for (; p < n; ++p) {
    x[p] += alpha * p_[p];
    r[p] -= alpha * q[p];
    s += r[p] * r[p];
  }
  return s;
}

/// BiCGStab tail update: x += alpha p + omega s, r = s - omega t,
/// accumulating r . r (out[0], next residual) and r0 . r (out[1], the next
/// iteration's rho) in the same pass.
inline void bicg_xr_portable(double alpha, const real_t* p_, double omega,
                             const real_t* s, const real_t* t,
                             const real_t* r0, real_t* x, real_t* r,
                             std::size_t n, double out[2]) {
  double x0 = 0, x1 = 0, x2 = 0, x3 = 0;
  double y0 = 0, y1 = 0, y2 = 0, y3 = 0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      x[p + j] += alpha * p_[p + j] + omega * s[p + j];
      r[p + j] = s[p + j] - omega * t[p + j];
    }
    x0 += r[p] * r[p];
    x1 += r[p + 1] * r[p + 1];
    x2 += r[p + 2] * r[p + 2];
    x3 += r[p + 3] * r[p + 3];
    y0 += r0[p] * r[p];
    y1 += r0[p + 1] * r[p + 1];
    y2 += r0[p + 2] * r[p + 2];
    y3 += r0[p + 3] * r[p + 3];
  }
  double sx = (x0 + x2) + (x1 + x3);
  double sy = (y0 + y2) + (y1 + y3);
  for (; p < n; ++p) {
    x[p] += alpha * p_[p] + omega * s[p];
    r[p] = s[p] - omega * t[p];
    sx += r[p] * r[p];
    sy += r0[p] * r[p];
  }
  out[0] = sx;
  out[1] = sy;
}

/// BiCGStab search-direction update: p = r + beta * (p - omega * v).
inline void bicg_p_portable(const real_t* r, double beta, double omega,
                            const real_t* v, real_t* p_, std::size_t n) {
  for (std::size_t p = 0; p < n; ++p) {
    p_[p] = r[p] + beta * (p_[p] - omega * v[p]);
  }
}

/// s = r - alpha * v (also r = b - q with alpha = 1).
inline void sub_scaled_portable(const real_t* r, double alpha, const real_t* v,
                                real_t* s, std::size_t n) {
  for (std::size_t p = 0; p < n; ++p) s[p] = r[p] - alpha * v[p];
}

inline void scale_store_portable(double alpha, const real_t* w, real_t* v,
                                 std::size_t n) {
  for (std::size_t p = 0; p < n; ++p) v[p] = alpha * w[p];
}

inline void scale_portable(double alpha, real_t* v, std::size_t n) {
  for (std::size_t p = 0; p < n; ++p) v[p] *= alpha;
}

/// Jacobi preconditioner apply z = r / d fused with the r . z reduction.
/// Division-bound; kept portable-only (both dispatch levels run this
/// kernel, so it is trivially level-invariant).
inline double precond_dot_portable(const real_t* r, const real_t* d, real_t* z,
                                   std::size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    z[p] = r[p] / d[p];
    z[p + 1] = r[p + 1] / d[p + 1];
    z[p + 2] = r[p + 2] / d[p + 2];
    z[p + 3] = r[p + 3] / d[p + 3];
    l0 += r[p] * z[p];
    l1 += r[p + 1] * z[p + 1];
    l2 += r[p + 2] * z[p + 2];
    l3 += r[p + 3] * z[p + 3];
  }
  double s = (l0 + l2) + (l1 + l3);
  for (; p < n; ++p) {
    z[p] = r[p] / d[p];
    s += r[p] * z[p];
  }
  return s;
}

/// Weighted Jacobi sweep: x += weight * (b - Ax) / d, returning the chunk's
/// squared residual norm.  Portable-only, like precond_dot.
inline double jacobi_portable(const real_t* b, const real_t* Ax,
                              const real_t* d, double weight, real_t* x,
                              std::size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      const double r = b[p + j] - Ax[p + j];
      x[p + j] += weight * r / d[p + j];
      (j == 0 ? l0 : j == 1 ? l1 : j == 2 ? l2 : l3) += r * r;
    }
  }
  double s = (l0 + l2) + (l1 + l3);
  for (; p < n; ++p) {
    const double r = b[p] - Ax[p];
    x[p] += weight * r / d[p];
    s += r * r;
  }
  return s;
}

// ---- AVX2/FMA twins -------------------------------------------------------
//
// Same lane assignment and reduction order as the portable kernels;
// products are fused where the portable kernel has a multiply-add, which
// is the documented cross-level rounding difference.

#if YASPMV_SIMD_X86

__attribute__((target("avx2,fma"))) inline double dot_avx2(const real_t* a,
                                                           const real_t* b,
                                                           std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + p), _mm256_loadu_pd(b + p), acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double s = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; p < n; ++p) s += a[p] * b[p];
  return s;
}

__attribute__((target("avx2,fma"))) inline void dot2_avx2(
    const real_t* a, const real_t* b, const real_t* c, std::size_t n,
    double out[2]) {
  __m256d ab = _mm256_setzero_pd();
  __m256d ac = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d av = _mm256_loadu_pd(a + p);
    ab = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + p), ab);
    ac = _mm256_fmadd_pd(av, _mm256_loadu_pd(c + p), ac);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, ab);
  double sx = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  _mm256_store_pd(lane, ac);
  double sy = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; p < n; ++p) {
    sx += a[p] * b[p];
    sy += a[p] * c[p];
  }
  out[0] = sx;
  out[1] = sy;
}

__attribute__((target("avx2,fma"))) inline void axpy_avx2(double alpha,
                                                          const real_t* x,
                                                          real_t* y,
                                                          std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    _mm256_storeu_pd(
        y + p,
        _mm256_fmadd_pd(av, _mm256_loadu_pd(x + p), _mm256_loadu_pd(y + p)));
  }
  for (; p < n; ++p) y[p] += alpha * x[p];
}

__attribute__((target("avx2,fma"))) inline void xpay_avx2(const real_t* x,
                                                          double alpha,
                                                          real_t* y,
                                                          std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    _mm256_storeu_pd(
        y + p,
        _mm256_fmadd_pd(av, _mm256_loadu_pd(y + p), _mm256_loadu_pd(x + p)));
  }
  for (; p < n; ++p) y[p] = x[p] + alpha * y[p];
}

__attribute__((target("avx2,fma"))) inline double axpy_dot_avx2(
    double alpha, const real_t* x, real_t* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  __m256d acc = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d yv =
        _mm256_fmadd_pd(av, _mm256_loadu_pd(x + p), _mm256_loadu_pd(y + p));
    _mm256_storeu_pd(y + p, yv);
    acc = _mm256_fmadd_pd(yv, yv, acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double s = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; p < n; ++p) {
    y[p] += alpha * x[p];
    s += y[p] * y[p];
  }
  return s;
}

__attribute__((target("avx2,fma"))) inline double cg_update_avx2(
    double alpha, const real_t* p_, const real_t* q, real_t* x, real_t* r,
    std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  const __m256d nav = _mm256_set1_pd(-alpha);
  __m256d acc = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    _mm256_storeu_pd(
        x + p,
        _mm256_fmadd_pd(av, _mm256_loadu_pd(p_ + p), _mm256_loadu_pd(x + p)));
    const __m256d rv =
        _mm256_fmadd_pd(nav, _mm256_loadu_pd(q + p), _mm256_loadu_pd(r + p));
    _mm256_storeu_pd(r + p, rv);
    acc = _mm256_fmadd_pd(rv, rv, acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double s = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; p < n; ++p) {
    x[p] += alpha * p_[p];
    r[p] -= alpha * q[p];
    s += r[p] * r[p];
  }
  return s;
}

__attribute__((target("avx2,fma"))) inline void bicg_xr_avx2(
    double alpha, const real_t* p_, double omega, const real_t* s,
    const real_t* t, const real_t* r0, real_t* x, real_t* r, std::size_t n,
    double out[2]) {
  const __m256d av = _mm256_set1_pd(alpha);
  const __m256d ov = _mm256_set1_pd(omega);
  const __m256d nov = _mm256_set1_pd(-omega);
  __m256d rr = _mm256_setzero_pd();
  __m256d r0r = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d sv = _mm256_loadu_pd(s + p);
    __m256d xv = _mm256_fmadd_pd(av, _mm256_loadu_pd(p_ + p),
                                 _mm256_loadu_pd(x + p));
    xv = _mm256_fmadd_pd(ov, sv, xv);
    _mm256_storeu_pd(x + p, xv);
    const __m256d rv = _mm256_fmadd_pd(nov, _mm256_loadu_pd(t + p), sv);
    _mm256_storeu_pd(r + p, rv);
    rr = _mm256_fmadd_pd(rv, rv, rr);
    r0r = _mm256_fmadd_pd(_mm256_loadu_pd(r0 + p), rv, r0r);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, rr);
  double sx = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  _mm256_store_pd(lane, r0r);
  double sy = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; p < n; ++p) {
    x[p] += alpha * p_[p] + omega * s[p];
    r[p] = s[p] - omega * t[p];
    sx += r[p] * r[p];
    sy += r0[p] * r[p];
  }
  out[0] = sx;
  out[1] = sy;
}

__attribute__((target("avx2,fma"))) inline void bicg_p_avx2(
    const real_t* r, double beta, double omega, const real_t* v, real_t* p_,
    std::size_t n) {
  const __m256d bv = _mm256_set1_pd(beta);
  const __m256d nov = _mm256_set1_pd(-omega);
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d inner =
        _mm256_fmadd_pd(nov, _mm256_loadu_pd(v + p), _mm256_loadu_pd(p_ + p));
    _mm256_storeu_pd(p_ + p,
                     _mm256_fmadd_pd(bv, inner, _mm256_loadu_pd(r + p)));
  }
  for (; p < n; ++p) p_[p] = r[p] + beta * (p_[p] - omega * v[p]);
}

__attribute__((target("avx2,fma"))) inline void sub_scaled_avx2(
    const real_t* r, double alpha, const real_t* v, real_t* s, std::size_t n) {
  const __m256d nav = _mm256_set1_pd(-alpha);
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    _mm256_storeu_pd(
        s + p,
        _mm256_fmadd_pd(nav, _mm256_loadu_pd(v + p), _mm256_loadu_pd(r + p)));
  }
  for (; p < n; ++p) s[p] = r[p] - alpha * v[p];
}

__attribute__((target("avx2"))) inline void scale_store_avx2(double alpha,
                                                             const real_t* w,
                                                             real_t* v,
                                                             std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    _mm256_storeu_pd(v + p, _mm256_mul_pd(av, _mm256_loadu_pd(w + p)));
  }
  for (; p < n; ++p) v[p] = alpha * w[p];
}

__attribute__((target("avx2"))) inline void scale_avx2(double alpha, real_t* v,
                                                       std::size_t n) {
  scale_store_avx2(alpha, v, v, n);
}

#else

inline double dot_avx2(const real_t* a, const real_t* b, std::size_t n) {
  return dot_portable(a, b, n);
}
inline void dot2_avx2(const real_t* a, const real_t* b, const real_t* c,
                      std::size_t n, double out[2]) {
  dot2_portable(a, b, c, n, out);
}
inline void axpy_avx2(double alpha, const real_t* x, real_t* y,
                      std::size_t n) {
  axpy_portable(alpha, x, y, n);
}
inline void xpay_avx2(const real_t* x, double alpha, real_t* y,
                      std::size_t n) {
  xpay_portable(x, alpha, y, n);
}
inline double axpy_dot_avx2(double alpha, const real_t* x, real_t* y,
                            std::size_t n) {
  return axpy_dot_portable(alpha, x, y, n);
}
inline double cg_update_avx2(double alpha, const real_t* p_, const real_t* q,
                             real_t* x, real_t* r, std::size_t n) {
  return cg_update_portable(alpha, p_, q, x, r, n);
}
inline void bicg_xr_avx2(double alpha, const real_t* p_, double omega,
                         const real_t* s, const real_t* t, const real_t* r0,
                         real_t* x, real_t* r, std::size_t n, double out[2]) {
  bicg_xr_portable(alpha, p_, omega, s, t, r0, x, r, n, out);
}
inline void bicg_p_avx2(const real_t* r, double beta, double omega,
                        const real_t* v, real_t* p_, std::size_t n) {
  bicg_p_portable(r, beta, omega, v, p_, n);
}
inline void sub_scaled_avx2(const real_t* r, double alpha, const real_t* v,
                            real_t* s, std::size_t n) {
  sub_scaled_portable(r, alpha, v, s, n);
}
inline void scale_store_avx2(double alpha, const real_t* w, real_t* v,
                             std::size_t n) {
  scale_store_portable(alpha, w, v, n);
}
inline void scale_avx2(double alpha, real_t* v, std::size_t n) {
  scale_portable(alpha, v, n);
}

#endif  // YASPMV_SIMD_X86

/// One dispatch table per level; fetched once per VecOps call so the level
/// check stays out of the chunk loop (same pattern as simd::dot_range).
struct Kernels {
  double (*dot)(const real_t*, const real_t*, std::size_t);
  void (*dot2)(const real_t*, const real_t*, const real_t*, std::size_t,
               double[2]);
  void (*axpy)(double, const real_t*, real_t*, std::size_t);
  void (*xpay)(const real_t*, double, real_t*, std::size_t);
  double (*axpy_dot)(double, const real_t*, real_t*, std::size_t);
  double (*cg_update)(double, const real_t*, const real_t*, real_t*, real_t*,
                      std::size_t);
  void (*bicg_xr)(double, const real_t*, double, const real_t*, const real_t*,
                  const real_t*, real_t*, real_t*, std::size_t, double[2]);
  void (*bicg_p)(const real_t*, double, double, const real_t*, real_t*,
                 std::size_t);
  void (*sub_scaled)(const real_t*, double, const real_t*, real_t*,
                     std::size_t);
  void (*scale_store)(double, const real_t*, real_t*, std::size_t);
  void (*scale)(double, real_t*, std::size_t);
  double (*precond_dot)(const real_t*, const real_t*, real_t*, std::size_t);
  double (*jacobi)(const real_t*, const real_t*, const real_t*, double,
                   real_t*, std::size_t);
};

inline const Kernels& table() {
  static const Kernels portable{
      &dot_portable,      &dot2_portable,  &axpy_portable,
      &xpay_portable,     &axpy_dot_portable, &cg_update_portable,
      &bicg_xr_portable,  &bicg_p_portable,   &sub_scaled_portable,
      &scale_store_portable, &scale_portable, &precond_dot_portable,
      &jacobi_portable};
  static const Kernels avx2{
      &dot_avx2,      &dot2_avx2,  &axpy_avx2,
      &xpay_avx2,     &axpy_dot_avx2, &cg_update_avx2,
      &bicg_xr_avx2,  &bicg_p_avx2,   &sub_scaled_avx2,
      &scale_store_avx2, &scale_avx2, &precond_dot_portable,
      &jacobi_portable};
  // kAvx512 shares the AVX2 vector kernels (stream-bound, width-neutral).
  return simd::active() != simd::Level::kPortable ? avx2 : portable;
}

}  // namespace vk

/// Reusable pooled vector-kernel executor.  Holds the per-chunk partial
/// scratch so the hot solver loop allocates nothing; like CpuSpmv, one
/// instance is not meant to be driven from two threads at once.
class VecOps {
 public:
  /// Elements per chunk.  Pure function of nothing — the chunk grid depends
  /// only on the vector length, which is what makes every reduction
  /// thread-count invariant (see the header comment).
  static constexpr std::size_t kChunk = 8192;

  /// `threads == 0` uses the hardware concurrency.
  explicit VecOps(unsigned threads = 0)
      : threads_(threads == 0 ? default_workers() : threads) {}

  unsigned threads() const { return threads_; }

  double dot(std::span<const real_t> a, std::span<const real_t> b) {
    require(a.size() == b.size(), "VecOps::dot: size mismatch");
    const vk::Kernels& k = vk::table();
    return reduce1(a.size(), [&](std::size_t lo, std::size_t hi) {
      return k.dot(a.data() + lo, b.data() + lo, hi - lo);
    });
  }

  double nrm2(std::span<const real_t> a) { return std::sqrt(dot(a, a)); }

  /// (a . b, a . c) in one pass.
  DotPair dot2(std::span<const real_t> a, std::span<const real_t> b,
               std::span<const real_t> c) {
    require(a.size() == b.size() && a.size() == c.size(),
            "VecOps::dot2: size mismatch");
    const vk::Kernels& k = vk::table();
    return reduce2(a.size(), [&](std::size_t lo, std::size_t hi, double* out) {
      k.dot2(a.data() + lo, b.data() + lo, c.data() + lo, hi - lo, out);
    });
  }

  /// y += alpha * x.
  void axpy(double alpha, std::span<const real_t> x, std::span<real_t> y) {
    require(x.size() == y.size(), "VecOps::axpy: size mismatch");
    const vk::Kernels& k = vk::table();
    launch(x.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
      k.axpy(alpha, x.data() + lo, y.data() + lo, hi - lo);
    });
  }

  /// y = x + alpha * y (the CG search-direction update).
  void xpay(std::span<const real_t> x, double alpha, std::span<real_t> y) {
    require(x.size() == y.size(), "VecOps::xpay: size mismatch");
    const vk::Kernels& k = vk::table();
    launch(x.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
      k.xpay(x.data() + lo, alpha, y.data() + lo, hi - lo);
    });
  }

  /// y += alpha * x, returning y . y after the update in the same pass.
  double axpy_dot(double alpha, std::span<const real_t> x,
                  std::span<real_t> y) {
    require(x.size() == y.size(), "VecOps::axpy_dot: size mismatch");
    const vk::Kernels& k = vk::table();
    return reduce1(x.size(), [&](std::size_t lo, std::size_t hi) {
      return k.axpy_dot(alpha, x.data() + lo, y.data() + lo, hi - lo);
    });
  }

  /// Fused CG inner update: x += alpha p, r -= alpha q; returns r . r.
  double cg_fused_update(double alpha, std::span<const real_t> p,
                         std::span<const real_t> q, std::span<real_t> x,
                         std::span<real_t> r) {
    require(p.size() == q.size() && p.size() == x.size() &&
                p.size() == r.size(),
            "VecOps::cg_fused_update: size mismatch");
    const vk::Kernels& k = vk::table();
    return reduce1(p.size(), [&](std::size_t lo, std::size_t hi) {
      return k.cg_update(alpha, p.data() + lo, q.data() + lo, x.data() + lo,
                         r.data() + lo, hi - lo);
    });
  }

  /// Fused BiCGStab tail: x += alpha p + omega s, r = s - omega t; returns
  /// {r . r, r0 . r} — the next residual and the next iteration's rho.
  DotPair bicg_fused_update(double alpha, std::span<const real_t> p,
                            double omega, std::span<const real_t> s,
                            std::span<const real_t> t,
                            std::span<const real_t> r0, std::span<real_t> x,
                            std::span<real_t> r) {
    require(p.size() == s.size() && p.size() == t.size() &&
                p.size() == r0.size() && p.size() == x.size() &&
                p.size() == r.size(),
            "VecOps::bicg_fused_update: size mismatch");
    const vk::Kernels& k = vk::table();
    return reduce2(p.size(), [&](std::size_t lo, std::size_t hi, double* out) {
      k.bicg_xr(alpha, p.data() + lo, omega, s.data() + lo, t.data() + lo,
                r0.data() + lo, x.data() + lo, r.data() + lo, hi - lo, out);
    });
  }

  /// p = r + beta * (p - omega * v).
  void bicg_p_update(std::span<const real_t> r, double beta, double omega,
                     std::span<const real_t> v, std::span<real_t> p) {
    require(r.size() == v.size() && r.size() == p.size(),
            "VecOps::bicg_p_update: size mismatch");
    const vk::Kernels& k = vk::table();
    launch(r.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
      k.bicg_p(r.data() + lo, beta, omega, v.data() + lo, p.data() + lo,
               hi - lo);
    });
  }

  /// s = r - alpha * v.
  void sub_scaled(std::span<const real_t> r, double alpha,
                  std::span<const real_t> v, std::span<real_t> s) {
    require(r.size() == v.size() && r.size() == s.size(),
            "VecOps::sub_scaled: size mismatch");
    const vk::Kernels& k = vk::table();
    launch(r.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
      k.sub_scaled(r.data() + lo, alpha, v.data() + lo, s.data() + lo,
                   hi - lo);
    });
  }

  /// v = alpha * w.
  void scale_store(double alpha, std::span<const real_t> w,
                   std::span<real_t> v) {
    require(w.size() == v.size(), "VecOps::scale_store: size mismatch");
    const vk::Kernels& k = vk::table();
    launch(w.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
      k.scale_store(alpha, w.data() + lo, v.data() + lo, hi - lo);
    });
  }

  /// v *= alpha.
  void scale(double alpha, std::span<real_t> v) {
    const vk::Kernels& k = vk::table();
    launch(v.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
      k.scale(alpha, v.data() + lo, hi - lo);
    });
  }

  /// z = r / d elementwise; returns r . z (the PCG rho).
  double precond_dot(std::span<const real_t> r, std::span<const real_t> d,
                     std::span<real_t> z) {
    require(r.size() == d.size() && r.size() == z.size(),
            "VecOps::precond_dot: size mismatch");
    const vk::Kernels& k = vk::table();
    return reduce1(r.size(), [&](std::size_t lo, std::size_t hi) {
      return k.precond_dot(r.data() + lo, d.data() + lo, z.data() + lo,
                           hi - lo);
    });
  }

  /// x += weight * (b - Ax) / d; returns ||b - Ax||^2.
  double jacobi_update(std::span<const real_t> b, std::span<const real_t> Ax,
                       std::span<const real_t> d, double weight,
                       std::span<real_t> x) {
    require(b.size() == Ax.size() && b.size() == d.size() &&
                b.size() == x.size(),
            "VecOps::jacobi_update: size mismatch");
    const vk::Kernels& k = vk::table();
    return reduce1(b.size(), [&](std::size_t lo, std::size_t hi) {
      return k.jacobi(b.data() + lo, Ax.data() + lo, d.data() + lo, weight,
                      x.data() + lo, hi - lo);
    });
  }

 private:
  static std::size_t chunk_count(std::size_t n) {
    return n == 0 ? 0 : (n + kChunk - 1) / kChunk;
  }

  template <class Body>
  void launch(std::size_t n, Body&& body) {
    const std::size_t nc = chunk_count(n);
    parallel_for_ordered(nc, threads_, [&](unsigned, std::size_t c) {
      const std::size_t lo = c * kChunk;
      body(c, lo, std::min(lo + kChunk, n));
    });
  }

  /// Chunked single reduction: workers fill disjoint partials, the submitter
  /// sums them serially in chunk order (the thread-count-invariant combine).
  template <class ChunkFn>
  double reduce1(std::size_t n, ChunkFn&& f) {
    const std::size_t nc = chunk_count(n);
    if (nc <= 1) return n == 0 ? 0.0 : f(std::size_t{0}, n);
    if (part_.size() < nc) part_.resize(nc);
    parallel_for_ordered(nc, threads_, [&](unsigned, std::size_t c) {
      const std::size_t lo = c * kChunk;
      part_[c] = f(lo, std::min(lo + kChunk, n));
    });
    double s = 0.0;
    for (std::size_t c = 0; c < nc; ++c) s += part_[c];
    return s;
  }

  /// Chunked pair reduction (dot2 / the fused BiCGStab tail).
  template <class ChunkFn>
  DotPair reduce2(std::size_t n, ChunkFn&& f) {
    const std::size_t nc = chunk_count(n);
    DotPair out;
    if (nc <= 1) {
      double two[2] = {0.0, 0.0};
      if (n != 0) f(std::size_t{0}, n, two);
      out.ab = two[0];
      out.ac = two[1];
      return out;
    }
    if (part_.size() < 2 * nc) part_.resize(2 * nc);
    parallel_for_ordered(nc, threads_, [&](unsigned, std::size_t c) {
      const std::size_t lo = c * kChunk;
      f(lo, std::min(lo + kChunk, n), &part_[2 * c]);
    });
    for (std::size_t c = 0; c < nc; ++c) {
      out.ab += part_[2 * c];
      out.ac += part_[2 * c + 1];
    }
    return out;
  }

  unsigned threads_;
  std::vector<double> part_;  ///< per-chunk partials (2 per chunk for pairs)
};

}  // namespace yaspmv::cpu
