// Banded diagonal (BDIA) — clSpMV's banded variant of DIA: maximal runs of
// *adjacent* occupied diagonals are stored as dense bands (rows x width),
// so one band offset is amortized over `width` diagonals and the vector is
// accessed in contiguous windows.
#pragma once

#include <span>
#include <vector>

#include "yaspmv/formats/csr.hpp"
#include "yaspmv/formats/dia.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::fmt {

struct Bdia {
  index_t rows = 0, cols = 0;
  std::vector<index_t> band_offset;  ///< first diagonal (col-row) of band
  std::vector<index_t> band_width;   ///< diagonals in the band
  std::vector<std::size_t> band_ptr; ///< value offset per band
  std::vector<real_t> vals;  ///< per band: rows x width, row-major windows

  index_t num_bands() const { return static_cast<index_t>(band_width.size()); }

  static Bdia from_csr(const Csr& m, index_t max_diagonals = 1 << 14) {
    // Find occupied diagonals, then coalesce adjacent ones into bands.
    require(Dia::count_diagonals(m) <= max_diagonals,
            "BDIA: too many occupied diagonals");
    std::vector<std::uint8_t> occupied(
        static_cast<std::size_t>(m.rows) + static_cast<std::size_t>(m.cols),
        0);
    for (index_t r = 0; r < m.rows; ++r) {
      for (index_t p = m.row_ptr[static_cast<std::size_t>(r)];
           p < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        occupied[static_cast<std::size_t>(
            m.col_idx[static_cast<std::size_t>(p)] - r + m.rows - 1)] = 1;
      }
    }
    Bdia b;
    b.rows = m.rows;
    b.cols = m.cols;
    b.band_ptr.push_back(0);
    const auto total = static_cast<index_t>(occupied.size());
    for (index_t k = 0; k < total;) {
      if (!occupied[static_cast<std::size_t>(k)]) {
        ++k;
        continue;
      }
      index_t end = k;
      while (end < total && occupied[static_cast<std::size_t>(end)]) ++end;
      b.band_offset.push_back(k - m.rows + 1);
      b.band_width.push_back(end - k);
      b.band_ptr.push_back(b.band_ptr.back() +
                           static_cast<std::size_t>(end - k) *
                               static_cast<std::size_t>(m.rows));
      k = end;
    }
    b.vals.assign(b.band_ptr.back(), 0.0);
    for (index_t r = 0; r < m.rows; ++r) {
      for (index_t p = m.row_ptr[static_cast<std::size_t>(r)];
           p < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        const index_t off = m.col_idx[static_cast<std::size_t>(p)] - r;
        // Find the band containing `off` (bands are sorted by offset).
        std::size_t lo = 0, hi = b.band_offset.size();
        while (lo + 1 < hi) {
          const std::size_t mid = (lo + hi) / 2;
          if (b.band_offset[mid] <= off) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        const index_t w = b.band_width[lo];
        const index_t d = off - b.band_offset[lo];
        require(d >= 0 && d < w, "BDIA: band lookup failed");
        // Row-major band window: element (r, d) of band lo.
        b.vals[b.band_ptr[lo] + static_cast<std::size_t>(r) *
                                    static_cast<std::size_t>(w) +
               static_cast<std::size_t>(d)] =
            m.vals[static_cast<std::size_t>(p)];
      }
    }
    return b;
  }

  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    std::fill(y.begin(), y.end(), 0.0);
    for (index_t band = 0; band < num_bands(); ++band) {
      const auto bz = static_cast<std::size_t>(band);
      const index_t off = band_offset[bz];
      const index_t w = band_width[bz];
      for (index_t r = 0; r < rows; ++r) {
        real_t acc = 0.0;
        for (index_t d = 0; d < w; ++d) {
          const index_t c = r + off + d;
          if (c >= 0 && c < cols) {
            acc += vals[band_ptr[bz] + static_cast<std::size_t>(r) *
                                           static_cast<std::size_t>(w) +
                        static_cast<std::size_t>(d)] *
                   x[static_cast<std::size_t>(c)];
          }
        }
        y[static_cast<std::size_t>(r)] += acc;
      }
    }
  }

  std::size_t footprint_bytes() const {
    return vals.size() * bytes::kValue +
           band_offset.size() * 2 * bytes::kIndex;
  }
};

}  // namespace yaspmv::fmt
