// Blocked formats: BCSR (blocked CSR) and BELL (blocked ELLPACK), as
// implemented on GPUs by Choi et al. [7].  Non-zeros are grouped into
// grid-aligned block_w x block_h tiles; each occupied tile stores all
// block_w*block_h values (zero-filled), so one block row/column index is
// amortized over the whole tile — the same storage trade-off BCCOO builds
// on.
#pragma once

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "yaspmv/formats/coo.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::fmt {

/// Shared block-extraction step: returns, per block-row, the sorted list of
/// (block_col, dense block values row-major bh x bw).
struct BlockDecomposition {
  index_t block_w = 1;
  index_t block_h = 1;
  index_t block_rows = 0;  ///< ceil(rows / block_h)
  index_t block_cols = 0;  ///< ceil(cols / block_w)
  std::vector<std::vector<std::pair<index_t, std::vector<real_t>>>> by_row;
  std::size_t num_blocks = 0;

  static BlockDecomposition build(const Coo& c, index_t bw, index_t bh) {
    require(bw > 0 && bh > 0, "block dims must be positive");
    BlockDecomposition d;
    d.block_w = bw;
    d.block_h = bh;
    d.block_rows = ceil_div(c.rows, bh);
    d.block_cols = ceil_div(c.cols, bw);
    d.by_row.resize(static_cast<std::size_t>(d.block_rows));
    // COO is canonical (row-major sorted), so blocks of one block-row arrive
    // over a window of bh consecutive rows; a per-block-row ordered map
    // collects them.
    std::map<index_t, std::vector<real_t>>* cur = nullptr;
    index_t cur_brow = -1;
    std::map<index_t, std::vector<real_t>> acc;
    auto flush = [&] {
      if (cur_brow >= 0) {
        auto& out = d.by_row[static_cast<std::size_t>(cur_brow)];
        for (auto& [bc, blk] : acc) out.emplace_back(bc, std::move(blk));
        d.num_blocks += acc.size();
        acc.clear();
      }
    };
    (void)cur;
    for (std::size_t i = 0; i < c.nnz(); ++i) {
      const index_t brow = c.row_idx[i] / bh;
      const index_t bcol = c.col_idx[i] / bw;
      if (brow != cur_brow) {
        flush();
        cur_brow = brow;
      }
      auto& blk = acc[bcol];
      if (blk.empty()) {
        blk.assign(static_cast<std::size_t>(bw) * static_cast<std::size_t>(bh),
                   0.0);
      }
      const index_t lr = c.row_idx[i] - brow * bh;
      const index_t lc = c.col_idx[i] - bcol * bw;
      blk[static_cast<std::size_t>(lr) * static_cast<std::size_t>(bw) +
          static_cast<std::size_t>(lc)] = c.vals[i];
    }
    flush();
    return d;
  }

  /// Counts occupied blocks without materializing values (O(nnz) with a
  /// per-block-column stamp array).
  static std::size_t count_blocks(const Coo& c, index_t bw, index_t bh) {
    std::vector<index_t> stamp(static_cast<std::size_t>(ceil_div(c.cols, bw)),
                               -1);
    std::size_t blocks = 0;
    for (std::size_t i = 0; i < c.nnz(); ++i) {
      const index_t brow = c.row_idx[i] / bh;
      const auto bcol = static_cast<std::size_t>(c.col_idx[i] / bw);
      if (stamp[bcol] != brow) {
        stamp[bcol] = brow;
        ++blocks;
      }
    }
    return blocks;
  }

  /// Fill-in factor: stored values / real non-zeros.
  static double fill_ratio(const Coo& c, index_t bw, index_t bh) {
    if (c.nnz() == 0) return 1.0;
    return static_cast<double>(count_blocks(c, bw, bh)) *
           static_cast<double>(bw) * static_cast<double>(bh) /
           static_cast<double>(c.nnz());
  }
};

struct Bcsr {
  index_t rows = 0, cols = 0;
  index_t block_w = 1, block_h = 1;
  index_t block_rows = 0;
  std::vector<index_t> block_row_ptr;  ///< block_rows + 1
  std::vector<index_t> block_col;      ///< per block
  std::vector<real_t> vals;            ///< per block: bh*bw row-major

  std::size_t num_blocks() const { return block_col.size(); }

  static Bcsr from_coo(const Coo& c, index_t bw, index_t bh) {
    auto d = BlockDecomposition::build(c, bw, bh);
    Bcsr m;
    m.rows = c.rows;
    m.cols = c.cols;
    m.block_w = bw;
    m.block_h = bh;
    m.block_rows = d.block_rows;
    m.block_row_ptr.reserve(static_cast<std::size_t>(d.block_rows) + 1);
    m.block_row_ptr.push_back(0);
    const std::size_t bsz = static_cast<std::size_t>(bw) *
                            static_cast<std::size_t>(bh);
    m.block_col.reserve(d.num_blocks);
    m.vals.reserve(d.num_blocks * bsz);
    for (auto& rowblocks : d.by_row) {
      for (auto& [bc, blk] : rowblocks) {
        m.block_col.push_back(bc);
        m.vals.insert(m.vals.end(), blk.begin(), blk.end());
      }
      m.block_row_ptr.push_back(static_cast<index_t>(m.block_col.size()));
    }
    return m;
  }

  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    const std::size_t bsz = static_cast<std::size_t>(block_w) *
                            static_cast<std::size_t>(block_h);
    for (index_t r = 0; r < rows; ++r) y[static_cast<std::size_t>(r)] = 0.0;
    for (index_t br = 0; br < block_rows; ++br) {
      for (index_t p = block_row_ptr[static_cast<std::size_t>(br)];
           p < block_row_ptr[static_cast<std::size_t>(br) + 1]; ++p) {
        const index_t bc = block_col[static_cast<std::size_t>(p)];
        const real_t* blk = &vals[static_cast<std::size_t>(p) * bsz];
        for (index_t lr = 0; lr < block_h; ++lr) {
          const index_t row = br * block_h + lr;
          if (row >= rows) break;
          real_t acc = 0.0;
          for (index_t lc = 0; lc < block_w; ++lc) {
            const index_t col = bc * block_w + lc;
            if (col < cols) {
              acc += blk[static_cast<std::size_t>(lr) *
                             static_cast<std::size_t>(block_w) +
                         static_cast<std::size_t>(lc)] *
                     x[static_cast<std::size_t>(col)];
            }
          }
          y[static_cast<std::size_t>(row)] += acc;
        }
      }
    }
  }

  std::size_t footprint_bytes() const {
    return (static_cast<std::size_t>(block_rows) + 1) * bytes::kIndex +
           num_blocks() * bytes::kIndex + vals.size() * bytes::kValue;
  }
};

struct Bell {
  index_t rows = 0, cols = 0;
  index_t block_w = 1, block_h = 1;
  index_t block_rows = 0;
  index_t width = 0;  ///< blocks stored per block-row
  std::vector<index_t> block_col;  ///< width * block_rows, block-column-major
  std::vector<real_t> vals;        ///< per slot: bh*bw

  static Bell from_coo(const Coo& c, index_t bw, index_t bh) {
    auto d = BlockDecomposition::build(c, bw, bh);
    Bell m;
    m.rows = c.rows;
    m.cols = c.cols;
    m.block_w = bw;
    m.block_h = bh;
    m.block_rows = d.block_rows;
    for (auto& rb : d.by_row) {
      m.width = std::max(m.width, static_cast<index_t>(rb.size()));
    }
    const std::size_t bsz = static_cast<std::size_t>(bw) *
                            static_cast<std::size_t>(bh);
    const std::size_t slots = static_cast<std::size_t>(m.width) *
                              static_cast<std::size_t>(m.block_rows);
    m.block_col.assign(slots, -1);
    m.vals.assign(slots * bsz, 0.0);
    for (index_t br = 0; br < d.block_rows; ++br) {
      const auto& rb = d.by_row[static_cast<std::size_t>(br)];
      for (std::size_t k = 0; k < rb.size(); ++k) {
        const std::size_t slot = k * static_cast<std::size_t>(m.block_rows) +
                                 static_cast<std::size_t>(br);
        m.block_col[slot] = rb[k].first;
        std::copy(rb[k].second.begin(), rb[k].second.end(),
                  m.vals.begin() + static_cast<std::ptrdiff_t>(slot * bsz));
      }
    }
    return m;
  }

  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    const std::size_t bsz = static_cast<std::size_t>(block_w) *
                            static_cast<std::size_t>(block_h);
    for (index_t r = 0; r < rows; ++r) y[static_cast<std::size_t>(r)] = 0.0;
    for (index_t br = 0; br < block_rows; ++br) {
      for (index_t k = 0; k < width; ++k) {
        const std::size_t slot = static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(block_rows) +
                                 static_cast<std::size_t>(br);
        const index_t bc = block_col[slot];
        if (bc < 0) continue;
        const real_t* blk = &vals[slot * bsz];
        for (index_t lr = 0; lr < block_h; ++lr) {
          const index_t row = br * block_h + lr;
          if (row >= rows) break;
          real_t acc = 0.0;
          for (index_t lc = 0; lc < block_w; ++lc) {
            const index_t col = bc * block_w + lc;
            if (col < cols) {
              acc += blk[static_cast<std::size_t>(lr) *
                             static_cast<std::size_t>(block_w) +
                         static_cast<std::size_t>(lc)] *
                     x[static_cast<std::size_t>(col)];
            }
          }
          y[static_cast<std::size_t>(row)] += acc;
        }
      }
    }
  }

  std::size_t footprint_bytes() const {
    const std::size_t bsz = static_cast<std::size_t>(block_w) *
                            static_cast<std::size_t>(block_h);
    return block_col.size() * bytes::kIndex +
           block_col.size() * bsz * bytes::kValue;
  }
};

}  // namespace yaspmv::fmt
