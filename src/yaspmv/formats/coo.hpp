// Common coordinate (COO) format — Section 2.1, Figure 1.
//
// COO is the exchange format of this library: every other format (including
// BCCOO/BCCOO+) is built from a canonical, row-major-sorted, deduplicated
// COO instance.  It also carries the exact Table 3 footprint model: explicit
// 4-byte row index + 4-byte column index + 4-byte value per non-zero.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "yaspmv/util/common.hpp"

namespace yaspmv::fmt {

struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_idx;
  std::vector<index_t> col_idx;
  std::vector<real_t> vals;

  std::size_t nnz() const { return vals.size(); }

  /// Builds a canonical COO (row-major sorted, duplicates summed, explicit
  /// zeros dropped) from arbitrary triplets.
  static Coo from_triplets(index_t rows, index_t cols,
                           std::vector<index_t> ri, std::vector<index_t> ci,
                           std::vector<real_t> v) {
    require(ri.size() == ci.size() && ci.size() == v.size(),
            "COO triplet arrays must have equal length");
    for (std::size_t i = 0; i < ri.size(); ++i) {
      require(ri[i] >= 0 && ri[i] < rows && ci[i] >= 0 && ci[i] < cols,
              "COO triplet index out of range");
    }
    std::vector<std::size_t> order(ri.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (ri[a] != ri[b]) return ri[a] < ri[b];
      return ci[a] < ci[b];
    });
    Coo out;
    out.rows = rows;
    out.cols = cols;
    out.row_idx.reserve(ri.size());
    out.col_idx.reserve(ri.size());
    out.vals.reserve(v.size());
    for (std::size_t k : order) {
      if (!out.vals.empty() && out.row_idx.back() == ri[k] &&
          out.col_idx.back() == ci[k]) {
        out.vals.back() += v[k];
      } else {
        out.row_idx.push_back(ri[k]);
        out.col_idx.push_back(ci[k]);
        out.vals.push_back(v[k]);
      }
    }
    // Drop entries that canceled to exactly zero during deduplication.
    std::size_t w = 0;
    for (std::size_t i = 0; i < out.vals.size(); ++i) {
      if (out.vals[i] != 0.0) {
        out.row_idx[w] = out.row_idx[i];
        out.col_idx[w] = out.col_idx[i];
        out.vals[w] = out.vals[i];
        ++w;
      }
    }
    out.row_idx.resize(w);
    out.col_idx.resize(w);
    out.vals.resize(w);
    return out;
  }

  /// True when triplets are row-major sorted with no duplicates (the
  /// canonical invariant every consumer relies on).
  bool is_canonical() const {
    for (std::size_t i = 1; i < nnz(); ++i) {
      if (row_idx[i] < row_idx[i - 1]) return false;
      if (row_idx[i] == row_idx[i - 1] && col_idx[i] <= col_idx[i - 1]) {
        return false;
      }
    }
    return true;
  }

  /// Serial reference SpMV: y = A * x.
  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    require(x.size() == static_cast<std::size_t>(cols) &&
                y.size() == static_cast<std::size_t>(rows),
            "COO spmv: vector size mismatch");
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t i = 0; i < nnz(); ++i) {
      y[static_cast<std::size_t>(row_idx[i])] +=
          vals[i] * x[static_cast<std::size_t>(col_idx[i])];
    }
  }

  /// Table 3 footprint: explicit row + column + value per non-zero.
  std::size_t footprint_bytes() const {
    return nnz() * (bytes::kIndex + bytes::kIndex + bytes::kValue);
  }

  /// Dense row-major expansion (tests only; guards against huge sizes).
  std::vector<real_t> to_dense() const {
    require(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) <=
                (std::size_t{1} << 26),
            "to_dense: matrix too large");
    std::vector<real_t> d(static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(cols));
    for (std::size_t i = 0; i < nnz(); ++i) {
      d[static_cast<std::size_t>(row_idx[i]) *
            static_cast<std::size_t>(cols) +
        static_cast<std::size_t>(col_idx[i])] = vals[i];
    }
    return d;
  }
};

}  // namespace yaspmv::fmt
