// Compressed sparse row (CSR) — the reference format.
//
// CSR serves two roles: (1) the golden serial SpMV every simulated kernel is
// validated against, and (2) the substrate for the CUSPARSE-style CSR-scalar
// and CSR-vector baseline kernels.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "yaspmv/formats/coo.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::fmt {

struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_ptr;  ///< size rows+1
  std::vector<index_t> col_idx;  ///< size nnz
  std::vector<real_t> vals;      ///< size nnz

  std::size_t nnz() const { return vals.size(); }

  static Csr from_coo(const Coo& c) {
    Csr m;
    m.rows = c.rows;
    m.cols = c.cols;
    m.row_ptr.assign(static_cast<std::size_t>(c.rows) + 1, 0);
    for (index_t r : c.row_idx) m.row_ptr[static_cast<std::size_t>(r) + 1]++;
    for (std::size_t r = 0; r < static_cast<std::size_t>(c.rows); ++r) {
      m.row_ptr[r + 1] += m.row_ptr[r];
    }
    m.col_idx = c.col_idx;
    m.vals = c.vals;
    return m;
  }

  Coo to_coo() const {
    Coo c;
    c.rows = rows;
    c.cols = cols;
    c.row_idx.reserve(nnz());
    for (index_t r = 0; r < rows; ++r) {
      for (index_t k = row_ptr[static_cast<std::size_t>(r)];
           k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        c.row_idx.push_back(r);
      }
    }
    c.col_idx = col_idx;
    c.vals = vals;
    return c;
  }

  index_t row_len(index_t r) const {
    return row_ptr[static_cast<std::size_t>(r) + 1] -
           row_ptr[static_cast<std::size_t>(r)];
  }

  index_t max_row_len() const {
    index_t mx = 0;
    for (index_t r = 0; r < rows; ++r) mx = std::max(mx, row_len(r));
    return mx;
  }

  /// Golden serial SpMV: y = A * x.
  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    require(x.size() == static_cast<std::size_t>(cols) &&
                y.size() == static_cast<std::size_t>(rows),
            "CSR spmv: vector size mismatch");
    for (index_t r = 0; r < rows; ++r) {
      real_t acc = 0.0;
      for (index_t k = row_ptr[static_cast<std::size_t>(r)];
           k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        acc += vals[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
      }
      y[static_cast<std::size_t>(r)] = acc;
    }
  }

  /// Footprint: row pointer + column index + value arrays.
  std::size_t footprint_bytes() const {
    return (static_cast<std::size_t>(rows) + 1) * bytes::kIndex +
           nnz() * (bytes::kIndex + bytes::kValue);
  }
};

}  // namespace yaspmv::fmt
