// Diagonal (DIA) format.
//
// Stores every occupied diagonal as a dense column of length `rows`.  Ideal
// for banded/stencil matrices (Epidemiology, QCD); useless when non-zeros
// scatter over many diagonals, so construction reports the diagonal count
// and the baseline selector rejects it when padding explodes.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "yaspmv/formats/csr.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::fmt {

struct Dia {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> offsets;  ///< diagonal offsets (col - row), ascending
  std::vector<real_t> vals;      ///< offsets.size() * rows, diagonal-major

  index_t num_diagonals() const {
    return static_cast<index_t>(offsets.size());
  }

  /// Number of occupied diagonals without materializing the format.
  static index_t count_diagonals(const Csr& m) {
    std::vector<std::uint8_t> seen(
        static_cast<std::size_t>(m.rows) + static_cast<std::size_t>(m.cols),
        0);
    for (index_t r = 0; r < m.rows; ++r) {
      for (index_t p = m.row_ptr[static_cast<std::size_t>(r)];
           p < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        seen[static_cast<std::size_t>(
            m.col_idx[static_cast<std::size_t>(p)] - r + m.rows - 1)] = 1;
      }
    }
    index_t n = 0;
    for (auto s : seen) n += s;
    return n;
  }

  static Dia from_csr(const Csr& m, index_t max_diagonals = 1 << 14) {
    Dia d;
    d.rows = m.rows;
    d.cols = m.cols;
    std::map<index_t, index_t> diag_slot;  // offset -> slot (ordered)
    for (index_t r = 0; r < m.rows; ++r) {
      for (index_t p = m.row_ptr[static_cast<std::size_t>(r)];
           p < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        diag_slot.emplace(m.col_idx[static_cast<std::size_t>(p)] - r, 0);
      }
    }
    require(static_cast<index_t>(diag_slot.size()) <= max_diagonals,
            "DIA: too many occupied diagonals");
    index_t slot = 0;
    for (auto& [off, s] : diag_slot) {
      s = slot++;
      d.offsets.push_back(off);
    }
    d.vals.assign(diag_slot.size() * static_cast<std::size_t>(m.rows), 0.0);
    for (index_t r = 0; r < m.rows; ++r) {
      for (index_t p = m.row_ptr[static_cast<std::size_t>(r)];
           p < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        const index_t off = m.col_idx[static_cast<std::size_t>(p)] - r;
        const std::size_t s = static_cast<std::size_t>(diag_slot[off]);
        d.vals[s * static_cast<std::size_t>(m.rows) +
               static_cast<std::size_t>(r)] =
            m.vals[static_cast<std::size_t>(p)];
      }
    }
    return d;
  }

  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    for (index_t r = 0; r < rows; ++r) y[static_cast<std::size_t>(r)] = 0.0;
    for (std::size_t s = 0; s < offsets.size(); ++s) {
      const index_t off = offsets[s];
      for (index_t r = 0; r < rows; ++r) {
        const index_t c = r + off;
        if (c >= 0 && c < cols) {
          y[static_cast<std::size_t>(r)] +=
              vals[s * static_cast<std::size_t>(rows) +
                   static_cast<std::size_t>(r)] *
              x[static_cast<std::size_t>(c)];
        }
      }
    }
  }

  std::size_t footprint_bytes() const {
    return vals.size() * bytes::kValue + offsets.size() * bytes::kIndex;
  }
};

}  // namespace yaspmv::fmt
