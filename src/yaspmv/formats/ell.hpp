// ELLPACK (ELL) and ELL-R formats.
//
// ELL pads every row to the maximum row length K and stores column-major
// (val[k*rows + r]), which gives perfectly coalesced loads with one thread
// per row — but explodes in size when row lengths vary (Table 3 labels such
// matrices N/A).  ELL-R (Vázquez et al. [21]) adds an explicit row-length
// array so threads stop early, removing the padding *compute* but not the
// padding *storage*.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "yaspmv/formats/csr.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::fmt {

struct Ell {
  index_t rows = 0;
  index_t cols = 0;
  index_t width = 0;              ///< K: entries stored per row
  std::vector<index_t> col_idx;   ///< K*rows, column-major, -1 = padding
  std::vector<real_t> vals;       ///< K*rows, column-major

  std::size_t nnz_stored() const { return vals.size(); }

  static Ell from_csr(const Csr& m, index_t width = -1) {
    Ell e;
    e.rows = m.rows;
    e.cols = m.cols;
    e.width = width < 0 ? m.max_row_len() : width;
    const std::size_t total = static_cast<std::size_t>(e.width) *
                              static_cast<std::size_t>(e.rows);
    e.col_idx.assign(total, -1);
    e.vals.assign(total, 0.0);
    for (index_t r = 0; r < m.rows; ++r) {
      index_t k = 0;
      for (index_t p = m.row_ptr[static_cast<std::size_t>(r)];
           p < m.row_ptr[static_cast<std::size_t>(r) + 1] && k < e.width;
           ++p, ++k) {
        const std::size_t slot = static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(e.rows) +
                                 static_cast<std::size_t>(r);
        e.col_idx[slot] = m.col_idx[static_cast<std::size_t>(p)];
        e.vals[slot] = m.vals[static_cast<std::size_t>(p)];
      }
    }
    return e;
  }

  /// Number of real (non-padding) entries dropped because width < row len.
  /// from_csr with default width never truncates; HYB uses explicit widths.
  std::size_t truncated_count(const Csr& m) const {
    std::size_t t = 0;
    for (index_t r = 0; r < m.rows; ++r) {
      const index_t len = m.row_len(r);
      if (len > width) t += static_cast<std::size_t>(len - width);
    }
    return t;
  }

  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    for (index_t r = 0; r < rows; ++r) {
      real_t acc = 0.0;
      for (index_t k = 0; k < width; ++k) {
        const std::size_t slot = static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(rows) +
                                 static_cast<std::size_t>(r);
        const index_t c = col_idx[slot];
        if (c >= 0) acc += vals[slot] * x[static_cast<std::size_t>(c)];
      }
      y[static_cast<std::size_t>(r)] = acc;  // width==0 -> zero fill
    }
  }

  std::size_t footprint_bytes() const {
    return nnz_stored() * (bytes::kIndex + bytes::kValue);
  }

  /// Padding ratio = stored slots / real non-zeros; Table 3's N/A entries are
  /// matrices where this explodes (power-law rows).
  static double padding_ratio(const Csr& m) {
    const double stored = static_cast<double>(m.max_row_len()) *
                          static_cast<double>(m.rows);
    return m.nnz() == 0 ? 1.0 : stored / static_cast<double>(m.nnz());
  }
};

struct EllR {
  Ell ell;
  std::vector<index_t> row_len;

  static EllR from_csr(const Csr& m) {
    EllR e;
    e.ell = Ell::from_csr(m);
    e.row_len.resize(static_cast<std::size_t>(m.rows));
    for (index_t r = 0; r < m.rows; ++r) {
      e.row_len[static_cast<std::size_t>(r)] = m.row_len(r);
    }
    return e;
  }

  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    for (index_t r = 0; r < ell.rows; ++r) {
      real_t acc = 0.0;
      for (index_t k = 0; k < row_len[static_cast<std::size_t>(r)]; ++k) {
        const std::size_t slot = static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(ell.rows) +
                                 static_cast<std::size_t>(r);
        acc += ell.vals[slot] *
               x[static_cast<std::size_t>(ell.col_idx[slot])];
      }
      y[static_cast<std::size_t>(r)] = acc;
    }
  }

  std::size_t footprint_bytes() const {
    return ell.footprint_bytes() +
           row_len.size() * bytes::kIndex;
  }
};

}  // namespace yaspmv::fmt
