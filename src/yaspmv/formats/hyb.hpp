// Hybrid (HYB) format — Bell & Garland [1], the format behind CUSPARSE's
// best average performance in the paper's comparison.
//
// Rows are split at a configurable ELL width K: the first K entries of each
// row go to an ELL part (coalesced, balanced), the remainder spills into a
// COO part (processed by segmented reduction).  The paper manually searched
// K per matrix; `choose_width` implements the standard heuristic (largest K
// such that at least `occupancy_threshold` of rows have >= K entries) and
// the bench additionally sweeps K like the authors did.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "yaspmv/formats/coo.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/formats/ell.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::fmt {

struct Hyb {
  Ell ell;
  Coo coo;

  static index_t choose_width(const Csr& m, double occupancy_threshold = 1.0 / 3.0) {
    // Histogram of row lengths -> pick max K with |{rows len >= K}| >=
    // threshold * rows (Bell & Garland's rule of thumb).
    const index_t maxlen = m.max_row_len();
    std::vector<std::size_t> ge(static_cast<std::size_t>(maxlen) + 2, 0);
    for (index_t r = 0; r < m.rows; ++r) {
      ge[static_cast<std::size_t>(m.row_len(r))]++;
    }
    // suffix-sum: ge[k] = #rows with len >= k
    for (index_t k = maxlen - 1; k >= 0; --k) {
      ge[static_cast<std::size_t>(k)] += ge[static_cast<std::size_t>(k) + 1];
    }
    const auto need = static_cast<std::size_t>(
        occupancy_threshold * static_cast<double>(m.rows));
    index_t best = 0;
    for (index_t k = 1; k <= maxlen; ++k) {
      if (ge[static_cast<std::size_t>(k)] >= std::max<std::size_t>(need, 1)) {
        best = k;
      }
    }
    return best;
  }

  static Hyb from_csr(const Csr& m, index_t width = -1) {
    if (width < 0) width = choose_width(m);
    Hyb h;
    h.ell = Ell::from_csr(m, width);
    std::vector<index_t> ri, ci;
    std::vector<real_t> v;
    for (index_t r = 0; r < m.rows; ++r) {
      index_t k = 0;
      for (index_t p = m.row_ptr[static_cast<std::size_t>(r)];
           p < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++p, ++k) {
        if (k >= width) {
          ri.push_back(r);
          ci.push_back(m.col_idx[static_cast<std::size_t>(p)]);
          v.push_back(m.vals[static_cast<std::size_t>(p)]);
        }
      }
    }
    h.coo = Coo::from_triplets(m.rows, m.cols, std::move(ri), std::move(ci),
                               std::move(v));
    return h;
  }

  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    ell.spmv(x, y);
    for (std::size_t i = 0; i < coo.nnz(); ++i) {
      y[static_cast<std::size_t>(coo.row_idx[i])] +=
          coo.vals[i] * x[static_cast<std::size_t>(coo.col_idx[i])];
    }
  }

  std::size_t footprint_bytes() const {
    return ell.footprint_bytes() + coo.footprint_bytes();
  }
};

}  // namespace yaspmv::fmt
