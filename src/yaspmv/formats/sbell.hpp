// Sliced blocked ELLPACK (SBELL) — one of clSpMV's single formats: the
// matrix is blocked (bw x bh), block-rows are grouped into slices, and each
// slice is stored in ELL layout with its own width, combining BELL's
// index amortization with SELL's padding reduction.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "yaspmv/formats/blocked.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::fmt {

struct SBell {
  index_t rows = 0, cols = 0;
  index_t block_w = 1, block_h = 1;
  index_t block_rows = 0;
  index_t slice_height = 8;  ///< block-rows per slice
  std::vector<std::size_t> slice_ptr;  ///< slot offset per slice
  std::vector<index_t> slice_width;    ///< blocks per block-row in slice
  std::vector<index_t> block_col;      ///< per slot, -1 = padding
  std::vector<real_t> vals;            ///< per slot: bh*bw

  index_t num_slices() const {
    return static_cast<index_t>(slice_width.size());
  }

  static SBell from_coo(const Coo& c, index_t bw, index_t bh,
                        index_t slice_height = 8) {
    require(slice_height > 0, "SBELL slice height must be positive");
    auto d = BlockDecomposition::build(c, bw, bh);
    SBell m;
    m.rows = c.rows;
    m.cols = c.cols;
    m.block_w = bw;
    m.block_h = bh;
    m.block_rows = d.block_rows;
    m.slice_height = slice_height;
    const index_t nslices = ceil_div(d.block_rows, slice_height);
    const std::size_t bsz = static_cast<std::size_t>(bw) *
                            static_cast<std::size_t>(bh);
    m.slice_ptr.push_back(0);
    for (index_t sl = 0; sl < nslices; ++sl) {
      const index_t r0 = sl * slice_height;
      const index_t r1 = std::min(d.block_rows, r0 + slice_height);
      index_t w = 0;
      for (index_t br = r0; br < r1; ++br) {
        w = std::max(w, static_cast<index_t>(
                            d.by_row[static_cast<std::size_t>(br)].size()));
      }
      m.slice_width.push_back(w);
      const std::size_t count = static_cast<std::size_t>(w) *
                                static_cast<std::size_t>(slice_height);
      const std::size_t base = m.slice_ptr.back();
      m.block_col.resize(base + count, -1);
      m.vals.resize((base + count) * bsz, 0.0);
      for (index_t br = r0; br < r1; ++br) {
        const auto& rowblocks = d.by_row[static_cast<std::size_t>(br)];
        for (std::size_t k = 0; k < rowblocks.size(); ++k) {
          // Column-major within the slice: slot = base + k*H + (br - r0).
          const std::size_t slot =
              base + k * static_cast<std::size_t>(slice_height) +
              static_cast<std::size_t>(br - r0);
          m.block_col[slot] = rowblocks[k].first;
          std::copy(rowblocks[k].second.begin(), rowblocks[k].second.end(),
                    m.vals.begin() + static_cast<std::ptrdiff_t>(slot * bsz));
        }
      }
      m.slice_ptr.push_back(base + count);
    }
    return m;
  }

  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    const std::size_t bsz = static_cast<std::size_t>(block_w) *
                            static_cast<std::size_t>(block_h);
    std::fill(y.begin(), y.end(), 0.0);
    for (index_t sl = 0; sl < num_slices(); ++sl) {
      const index_t r0 = sl * slice_height;
      const index_t r1 = std::min(block_rows, r0 + slice_height);
      const std::size_t base = slice_ptr[static_cast<std::size_t>(sl)];
      const index_t w = slice_width[static_cast<std::size_t>(sl)];
      for (index_t br = r0; br < r1; ++br) {
        for (index_t k = 0; k < w; ++k) {
          const std::size_t slot =
              base + static_cast<std::size_t>(k) *
                         static_cast<std::size_t>(slice_height) +
              static_cast<std::size_t>(br - r0);
          const index_t bc = block_col[slot];
          if (bc < 0) continue;
          const real_t* blk = &vals[slot * bsz];
          for (index_t lr = 0; lr < block_h; ++lr) {
            const index_t row = br * block_h + lr;
            if (row >= rows) break;
            real_t acc = 0.0;
            for (index_t lc = 0; lc < block_w; ++lc) {
              const index_t col = bc * block_w + lc;
              if (col < cols) {
                acc += blk[static_cast<std::size_t>(lr) *
                               static_cast<std::size_t>(block_w) +
                           static_cast<std::size_t>(lc)] *
                       x[static_cast<std::size_t>(col)];
              }
            }
            y[static_cast<std::size_t>(row)] += acc;
          }
        }
      }
    }
  }

  std::size_t footprint_bytes() const {
    const std::size_t bsz = static_cast<std::size_t>(block_w) *
                            static_cast<std::size_t>(block_h);
    return block_col.size() * bytes::kIndex +
           block_col.size() * bsz * bytes::kValue +
           slice_width.size() * bytes::kIndex +
           slice_ptr.size() * bytes::kIndex;
  }
};

}  // namespace yaspmv::fmt
