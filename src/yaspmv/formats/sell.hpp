// Sliced ELLPACK (SELL, Monakov et al. [12]).
//
// The matrix is cut horizontally into slices of `slice_height` rows; each
// slice is stored in ELL layout with its *own* width (the maximum row length
// inside the slice), which removes most of ELL's padding while keeping
// coalesced row-per-thread access inside a slice.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "yaspmv/formats/csr.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::fmt {

struct SEll {
  index_t rows = 0;
  index_t cols = 0;
  index_t slice_height = 32;
  std::vector<std::size_t> slice_ptr;  ///< start offset of each slice's data
  std::vector<index_t> slice_width;    ///< per-slice ELL width
  std::vector<index_t> col_idx;        ///< per slice: width*H, column-major
  std::vector<real_t> vals;

  index_t num_slices() const {
    return static_cast<index_t>(slice_width.size());
  }

  static SEll from_csr(const Csr& m, index_t slice_height = 32) {
    require(slice_height > 0, "SELL slice height must be positive");
    SEll s;
    s.rows = m.rows;
    s.cols = m.cols;
    s.slice_height = slice_height;
    const index_t nslices = ceil_div(m.rows, slice_height);
    s.slice_ptr.reserve(static_cast<std::size_t>(nslices) + 1);
    s.slice_ptr.push_back(0);
    s.slice_width.reserve(static_cast<std::size_t>(nslices));
    for (index_t sl = 0; sl < nslices; ++sl) {
      const index_t r0 = sl * slice_height;
      const index_t r1 = std::min(m.rows, r0 + slice_height);
      index_t w = 0;
      for (index_t r = r0; r < r1; ++r) w = std::max(w, m.row_len(r));
      s.slice_width.push_back(w);
      const std::size_t count = static_cast<std::size_t>(w) *
                                static_cast<std::size_t>(slice_height);
      const std::size_t base = s.slice_ptr.back();
      s.col_idx.resize(base + count, -1);
      s.vals.resize(base + count, 0.0);
      for (index_t r = r0; r < r1; ++r) {
        index_t k = 0;
        for (index_t p = m.row_ptr[static_cast<std::size_t>(r)];
             p < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++p, ++k) {
          const std::size_t slot =
              base +
              static_cast<std::size_t>(k) *
                  static_cast<std::size_t>(slice_height) +
              static_cast<std::size_t>(r - r0);
          s.col_idx[slot] = m.col_idx[static_cast<std::size_t>(p)];
          s.vals[slot] = m.vals[static_cast<std::size_t>(p)];
        }
      }
      s.slice_ptr.push_back(base + count);
    }
    return s;
  }

  void spmv(std::span<const real_t> x, std::span<real_t> y) const {
    for (index_t sl = 0; sl < num_slices(); ++sl) {
      const index_t r0 = sl * slice_height;
      const index_t r1 = std::min(rows, r0 + slice_height);
      const std::size_t base = slice_ptr[static_cast<std::size_t>(sl)];
      const index_t w = slice_width[static_cast<std::size_t>(sl)];
      for (index_t r = r0; r < r1; ++r) {
        real_t acc = 0.0;
        for (index_t k = 0; k < w; ++k) {
          const std::size_t slot =
              base +
              static_cast<std::size_t>(k) *
                  static_cast<std::size_t>(slice_height) +
              static_cast<std::size_t>(r - r0);
          const index_t c = col_idx[slot];
          if (c >= 0) acc += vals[slot] * x[static_cast<std::size_t>(c)];
        }
        y[static_cast<std::size_t>(r)] = acc;
      }
    }
  }

  std::size_t footprint_bytes() const {
    return vals.size() * (bytes::kIndex + bytes::kValue) +
           slice_width.size() * bytes::kIndex +
           slice_ptr.size() * bytes::kIndex;
  }
};

}  // namespace yaspmv::fmt
