#include "yaspmv/gen/suite.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "yaspmv/util/rng.hpp"

namespace yaspmv::gen {

namespace {

real_t val(SplitMix64& rng) { return rng.next_double(-1.0, 1.0); }

index_t scaled(index_t full, double scale) {
  const auto v = static_cast<index_t>(
      std::llround(static_cast<double>(full) * scale));
  return std::max<index_t>(v, 1);
}

/// Deduplicating column sampler for one row.
class RowCols {
 public:
  void reset() { cols_.clear(); }
  bool add(index_t c) { return cols_.insert(c).second; }
  template <class F>
  void emit(index_t row, F&& f) const {
    for (index_t c : cols_) f(row, c);
  }
  std::size_t size() const { return cols_.size(); }

 private:
  std::unordered_set<index_t> cols_;
};

}  // namespace

fmt::Coo dense(index_t rows, index_t cols, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const std::size_t n = static_cast<std::size_t>(rows) *
                        static_cast<std::size_t>(cols);
  ri.reserve(n);
  ci.reserve(n);
  v.reserve(n);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      ri.push_back(r);
      ci.push_back(c);
      v.push_back(val(rng));
    }
  }
  return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                 std::move(v));
}

fmt::Coo stencil2d(index_t nx, index_t ny, bool self, std::uint64_t seed) {
  SplitMix64 rng(seed);
  const index_t n = nx * ny;
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  ri.reserve(static_cast<std::size_t>(n) * 5);
  ci.reserve(static_cast<std::size_t>(n) * 5);
  v.reserve(static_cast<std::size_t>(n) * 5);
  auto at = [&](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t r = at(x, y);
      auto push = [&](index_t c) {
        ri.push_back(r);
        ci.push_back(c);
        v.push_back(val(rng));
      };
      if (self) push(r);
      if (x > 0) push(at(x - 1, y));
      if (x + 1 < nx) push(at(x + 1, y));
      if (y > 0) push(at(x, y - 1));
      if (y + 1 < ny) push(at(x, y + 1));
    }
  }
  return fmt::Coo::from_triplets(n, n, std::move(ri), std::move(ci),
                                 std::move(v));
}

fmt::Coo fem_mesh(index_t rows, index_t nnz_row, index_t dof,
                  double bandwidth_frac, std::uint64_t seed) {
  SplitMix64 rng(seed);
  const index_t nodes = ceil_div(rows, dof);
  rows = nodes * dof;
  const index_t nbr_blocks =
      std::max<index_t>(1, ceil_div(nnz_row, dof));
  const double band = std::max(
      2.0, bandwidth_frac * static_cast<double>(nodes));
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const std::size_t est = static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(nnz_row) * 11 / 10;
  ri.reserve(est);
  ci.reserve(est);
  v.reserve(est);
  RowCols blocks;  // block-column set per node row
  for (index_t node = 0; node < nodes; ++node) {
    blocks.reset();
    blocks.add(node);  // diagonal block always present
    int attempts = 0;
    while (static_cast<index_t>(blocks.size()) < nbr_blocks &&
           attempts < 8 * nbr_blocks) {
      ++attempts;
      // Gaussian-ish banded offset: sum of two uniforms, signed.
      const double u =
          (rng.next_double() + rng.next_double() - 1.0) * band;
      index_t nb = node + static_cast<index_t>(u);
      nb = std::clamp<index_t>(nb, 0, nodes - 1);
      blocks.add(nb);
    }
    blocks.emit(node, [&](index_t, index_t bc) {
      for (index_t lr = 0; lr < dof; ++lr) {
        for (index_t lc = 0; lc < dof; ++lc) {
          ri.push_back(node * dof + lr);
          ci.push_back(bc * dof + lc);
          v.push_back(val(rng));
        }
      }
    });
  }
  return fmt::Coo::from_triplets(rows, rows, std::move(ri), std::move(ci),
                                 std::move(v));
}

fmt::Coo powerlaw(index_t rows, index_t cols, double avg_nnz_row,
                  double alpha, double locality, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const std::size_t est = static_cast<std::size_t>(
      static_cast<double>(rows) * avg_nnz_row * 1.2);
  ri.reserve(est);
  ci.reserve(est);
  v.reserve(est);
  // Power-law lengths have mean ~ (alpha-1)/(alpha-2) for alpha>2; rescale
  // the draw so the empirical mean tracks avg_nnz_row.
  const double mean_raw =
      alpha > 2.0 ? (alpha - 1.0) / (alpha - 2.0) : 3.0;
  const double boost = avg_nnz_row / mean_raw;
  RowCols rc;
  for (index_t r = 0; r < rows; ++r) {
    const auto cap = static_cast<std::uint64_t>(cols);
    auto len = static_cast<index_t>(std::min<std::uint64_t>(
        cap, static_cast<std::uint64_t>(
                 std::llround(static_cast<double>(
                                  rng.next_powerlaw(alpha, cap)) *
                              boost))));
    len = std::max<index_t>(len, 1);
    rc.reset();
    int attempts = 0;
    while (static_cast<index_t>(rc.size()) < len && attempts < 4 * len) {
      ++attempts;
      index_t c;
      if (rng.next_double() < locality) {
        // near-diagonal (graph locality): small offset from r scaled to cols
        const double diag = static_cast<double>(r) /
                            static_cast<double>(rows) *
                            static_cast<double>(cols);
        const double off = (rng.next_double() + rng.next_double() - 1.0) *
                           0.01 * static_cast<double>(cols);
        c = static_cast<index_t>(diag + off);
      } else {
        c = static_cast<index_t>(rng.next_below(cap));
      }
      c = std::clamp<index_t>(c, 0, cols - 1);
      rc.add(c);
    }
    rc.emit(r, [&](index_t rr, index_t cc) {
      ri.push_back(rr);
      ci.push_back(cc);
      v.push_back(val(rng));
    });
  }
  return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                 std::move(v));
}

fmt::Coo wide_rows(index_t rows, index_t cols, index_t nnz_row,
                   std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const std::size_t est = static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(nnz_row);
  ri.reserve(est);
  ci.reserve(est);
  v.reserve(est);
  RowCols rc;
  for (index_t r = 0; r < rows; ++r) {
    rc.reset();
    // Clustered runs of ~32 consecutive columns (LP constraint structure).
    while (static_cast<index_t>(rc.size()) < nnz_row) {
      const auto start =
          static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(cols)));
      const index_t run = std::min<index_t>(
          32, std::min<index_t>(nnz_row - static_cast<index_t>(rc.size()),
                                cols - start));
      for (index_t k = 0; k < run; ++k) rc.add(start + k);
    }
    rc.emit(r, [&](index_t rr, index_t cc) {
      ri.push_back(rr);
      ci.push_back(cc);
      v.push_back(val(rng));
    });
  }
  return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                 std::move(v));
}

fmt::Coo random_scattered(index_t rows, index_t cols, index_t avg_nnz_row,
                          std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  RowCols rc;
  for (index_t r = 0; r < rows; ++r) {
    // Uniform length in [1, 2*avg-1]: mean = avg, high relative variance.
    const auto len = static_cast<index_t>(
        1 + rng.next_below(static_cast<std::uint64_t>(2 * avg_nnz_row - 1)));
    rc.reset();
    int attempts = 0;
    while (static_cast<index_t>(rc.size()) < len && attempts < 4 * len) {
      ++attempts;
      rc.add(static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(cols))));
    }
    rc.emit(r, [&](index_t rr, index_t cc) {
      ri.push_back(rr);
      ci.push_back(cc);
      v.push_back(val(rng));
    });
  }
  return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                 std::move(v));
}

fmt::Coo quantum_chem(index_t rows, index_t nnz_row, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  RowCols rc;
  for (index_t r = 0; r < rows; ++r) {
    // Lognormal-ish length around the mean.
    const double f = std::exp((rng.next_double() + rng.next_double() +
                               rng.next_double() - 1.5) *
                              0.6);
    auto len = static_cast<index_t>(
        std::max(1.0, static_cast<double>(nnz_row) * f));
    len = std::min(len, rows);
    rc.reset();
    // 70% clustered dense runs near the diagonal, 30% scattered far field.
    while (static_cast<index_t>(rc.size()) < len * 7 / 10 + 1) {
      const double off = (rng.next_double() + rng.next_double() - 1.0) *
                         static_cast<double>(nnz_row) * 4.0;
      const index_t start =
          std::clamp<index_t>(r + static_cast<index_t>(off), 0, rows - 1);
      const index_t run =
          std::min<index_t>(8, rows - start);
      for (index_t k = 0; k < run; ++k) rc.add(start + k);
    }
    int attempts = 0;
    while (static_cast<index_t>(rc.size()) < len && attempts < 4 * len) {
      ++attempts;
      rc.add(static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(rows))));
    }
    rc.emit(r, [&](index_t rr, index_t cc) {
      ri.push_back(rr);
      ci.push_back(cc);
      v.push_back(val(rng));
    });
  }
  return fmt::Coo::from_triplets(rows, rows, std::move(ri), std::move(ci),
                                 std::move(v));
}

fmt::Coo make_spd(const fmt::Coo& a) {
  require(a.rows == a.cols, "make_spd: matrix must be square");
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  std::vector<double> abs_row(static_cast<std::size_t>(a.rows), 0.0);
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    const real_t half = 0.5 * a.vals[k];
    ri.push_back(a.row_idx[k]), ci.push_back(a.col_idx[k]), v.push_back(half);
    ri.push_back(a.col_idx[k]), ci.push_back(a.row_idx[k]), v.push_back(half);
    abs_row[static_cast<std::size_t>(a.row_idx[k])] += std::abs(half);
    abs_row[static_cast<std::size_t>(a.col_idx[k])] += std::abs(half);
  }
  // Gershgorin: a diagonal above the largest absolute row sum of the
  // symmetric part keeps every eigenvalue positive (from_triplets sums the
  // duplicate diagonal contributions into it).
  double shift = 1.0;
  for (const double s : abs_row) shift = std::max(shift, s);
  for (index_t r = 0; r < a.rows; ++r) {
    ri.push_back(r), ci.push_back(r);
    v.push_back(1.25 * shift);
  }
  return fmt::Coo::from_triplets(a.rows, a.rows, std::move(ri), std::move(ci),
                                 std::move(v));
}

const std::vector<SuiteEntry>& suite() {
  static const std::vector<SuiteEntry> s = [] {
    std::vector<SuiteEntry> e;
    auto add = [&](std::string name, index_t fr, index_t fc, std::size_t fn,
                   double fpr, double bscale,
                   std::function<fmt::Coo(double)> make) {
      e.push_back({std::move(name), fr, fc, fn, fpr, bscale,
                   std::move(make)});
    };
    // Name, full rows/cols/nnz/nnz-row from Table 2; bench_scale keeps the
    // default instance around or below ~1.5M non-zeros.
    add("Dense", 2000, 2000, 4000000, 2000, 0.35, [](double sc) {
      const index_t n = scaled(2000, sc);
      return dense(n, n, 0xD5E5E);
    });
    add("Protein", 36000, 36000, 4344765, 119, 0.30, [](double sc) {
      return fem_mesh(scaled(36000, sc), 119, 3, 0.02, 0x9207E1);
    });
    add("FEM/Spheres", 83000, 83000, 6010480, 72, 0.25, [](double sc) {
      return fem_mesh(scaled(83000, sc), 72, 3, 0.01, 0x59E7E5);
    });
    add("FEM/Cantilever", 62000, 62000, 4007383, 65, 0.30, [](double sc) {
      return fem_mesh(scaled(62000, sc), 65, 2, 0.015, 0xCA47);
    });
    add("Wind Tunnel", 218000, 218000, 11634424, 53, 0.15, [](double sc) {
      return fem_mesh(scaled(218000, sc), 53, 3, 0.005, 0x817D);
    });
    add("FEM/Harbor", 47000, 47000, 2374001, 59, 0.40, [](double sc) {
      return fem_mesh(scaled(47000, sc), 59, 3, 0.02, 0x4A86);
    });
    add("QCD", 49000, 49000, 1916928, 39, 0.50, [](double sc) {
      return fem_mesh(scaled(49000, sc), 39, 3, 0.05, 0x9CD);
    });
    add("FEM/Ship", 141000, 141000, 7813404, 28, 0.25, [](double sc) {
      return fem_mesh(scaled(141000, sc), 28, 2, 0.01, 0x5817);
    });
    add("Economics", 207000, 207000, 1273389, 6, 0.60, [](double sc) {
      return random_scattered(scaled(207000, sc), scaled(207000, sc), 6,
                              0xEC0);
    });
    add("Epidemiology", 526000, 526000, 2100225, 4, 0.50, [](double sc) {
      const index_t nx = scaled(725, std::sqrt(sc));
      return stencil2d(nx, nx, false, 0xE81D);
    });
    add("FEM/Accelerator", 121000, 121000, 2620000, 22, 0.40, [](double sc) {
      return fem_mesh(scaled(121000, sc), 22, 1, 0.03, 0xACCE1);
    });
    add("Circuit", 171000, 171000, 958936, 6, 0.70, [](double sc) {
      const index_t n = scaled(171000, sc);
      return powerlaw(n, n, 5.6, 2.6, 0.5, 0xC12C);
    });
    add("Webbase", 1000000, 1000000, 3105536, 3, 0.40, [](double sc) {
      const index_t n = scaled(1000000, sc);
      return powerlaw(n, n, 3.1, 2.1, 0.3, 0x3EBBA);
    });
    add("LP", 4284, 1092610, 11279748, 2825, 0.12, [](double sc) {
      return wide_rows(scaled(4284, sc), scaled(1092610, sc),
                       std::min<index_t>(2825, scaled(1092610, sc)), 0x19);
    });
    add("Circuit5M", 5558326, 5558326, 59524291, 11, 0.025, [](double sc) {
      const index_t n = scaled(5558326, sc);
      return powerlaw(n, n, 10.7, 2.3, 0.4, 0xC125);
    });
    add("eu-2005", 862664, 862664, 19235140, 22, 0.07, [](double sc) {
      const index_t n = scaled(862664, sc);
      return powerlaw(n, n, 22.3, 2.2, 0.6, 0xE02005);
    });
    add("Ga41As41H72", 268096, 268096, 18488476, 67, 0.08, [](double sc) {
      return quantum_chem(scaled(268096, sc), 67, 0x6A41);
    });
    add("in-2004", 1382908, 1382908, 16917053, 12, 0.08, [](double sc) {
      const index_t n = scaled(1382908, sc);
      return powerlaw(n, n, 12.2, 2.15, 0.6, 0x12004);
    });
    add("mip1", 66463, 66463, 10352819, 152, 0.12, [](double sc) {
      return quantum_chem(scaled(66463, sc), 152, 0x3171);
    });
    add("Si41Ge41H72", 185639, 185639, 15011265, 81, 0.09, [](double sc) {
      return quantum_chem(scaled(185639, sc), 81, 0x5141);
    });
    return e;
  }();
  return s;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const auto& e : suite()) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument("unknown suite matrix: " + name);
}

}  // namespace yaspmv::gen
