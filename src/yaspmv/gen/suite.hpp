// Synthetic generators for the 20-matrix evaluation suite of Table 2.
//
// The real matrices come from the UF/SuiteSparse collection and the clSpMV
// set; what the paper's results depend on is their *pattern statistics* —
// dimensions, nnz/row mean, row-length variance, block density, bandwidth —
// which each generator reproduces (parameters documented per entry).  Every
// generator accepts a linear `scale` in (0, 1]: dimensions shrink by the
// factor while nnz/row statistics are preserved, so format footprints and
// kernel balance keep their relative shape on a small machine; scale=1
// regenerates paper-sized instances.  Real .mtx files can be substituted via
// yaspmv::io.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "yaspmv/formats/coo.hpp"

namespace yaspmv::gen {

// --- primitive generators --------------------------------------------------

/// Fully dense matrix ("Dense", 2K x 2K).
fmt::Coo dense(index_t rows, index_t cols, std::uint64_t seed);

/// 2D grid with a `points`-point neighbor stencil, no self loop when
/// `self` is false ("Epidemiology": 4 nnz/row).
fmt::Coo stencil2d(index_t nx, index_t ny, bool self, std::uint64_t seed);

/// FEM-style mesh matrix: dense dof x dof blocks (dof = block size) placed
/// at the diagonal and at ~(nnz_row/dof - 1) neighbor blocks drawn from a
/// banded Gaussian offset distribution.  Models Protein/FEM*/QCD.
fmt::Coo fem_mesh(index_t rows, index_t nnz_row, index_t dof,
                  double bandwidth_frac, std::uint64_t seed);

/// Power-law row lengths (alpha tail exponent, capped) with a mix of
/// near-diagonal and uniformly random columns.  Models the web/circuit
/// matrices (Webbase, eu-2005, in-2004, Circuit, Circuit5M).
fmt::Coo powerlaw(index_t rows, index_t cols, double avg_nnz_row,
                  double alpha, double locality, std::uint64_t seed);

/// Short wide matrix with heavy dense-ish rows ("LP": 4K x 1.1M,
/// 2825 nnz/row) — columns drawn in clustered runs.
fmt::Coo wide_rows(index_t rows, index_t cols, index_t nnz_row,
                   std::uint64_t seed);

/// Uniformly scattered small rows with high relative variance
/// ("Economics").
fmt::Coo random_scattered(index_t rows, index_t cols, index_t avg_nnz_row,
                          std::uint64_t seed);

/// Quantum-chemistry style (Ga41As41H72 / Si41Ge41H72 / mip1): clustered
/// dense row segments around the diagonal plus a scattered far field, row
/// lengths lognormal-ish around the mean.
fmt::Coo quantum_chem(index_t rows, index_t nnz_row, std::uint64_t seed);

/// SPD-izes a square pattern for the iterative solvers: (A + A^T)/2 plus a
/// diagonal shift that makes the result strictly diagonally dominant with a
/// positive diagonal.  Preserves the off-diagonal sparsity structure (plus
/// its transpose), so solver benchmarks stress the same SpMV access pattern
/// the source matrix has.
fmt::Coo make_spd(const fmt::Coo& a);

// --- the Table 2 suite ------------------------------------------------------

struct SuiteEntry {
  std::string name;          ///< Table 2 name
  index_t full_rows;         ///< paper-reported dimensions
  index_t full_cols;
  std::size_t full_nnz;      ///< paper-reported non-zeros
  double full_nnz_per_row;   ///< paper-reported nnz/row
  double bench_scale;        ///< default scale for the bench harness
  std::function<fmt::Coo(double scale)> make;
};

/// All 20 Table 2 entries, in paper order.
const std::vector<SuiteEntry>& suite();

/// Lookup by (case-sensitive) Table 2 name; throws if unknown.
const SuiteEntry& suite_entry(const std::string& name);

}  // namespace yaspmv::gen
