#include "yaspmv/io/binary.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "yaspmv/core/status.hpp"

namespace yaspmv::io {

namespace {

constexpr std::uint32_t kCooMagic = 0x4F4F4359;    // "YCOO"
constexpr std::uint32_t kBccooMagic = 0x4F434359;  // "YCCO"
// Version 2: payload is followed by a 64-bit FNV-1a checksum so truncation
// and bit rot are detected instead of deserialized.
constexpr std::uint32_t kVersion = 2;

[[noreturn]] void fail_io(const std::string& msg) {
  throw IoError("binary io: " + msg);
}

[[noreturn]] void fail_format(const std::string& msg) {
  throw FormatInvalid("binary io: " + msg);
}

/// FNV-1a 64-bit, accumulated over every payload byte between the header and
/// the trailing checksum field.
class Fnv1a {
 public:
  void update(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

template <class T>
void put(std::ostream& out, const T& v, Fnv1a& hash) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  if (!out) fail_io("write failed");
  hash.update(&v, sizeof(T));
}

template <class T>
T get(std::istream& in, Fnv1a& hash) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) fail_io("truncated stream");
  hash.update(&v, sizeof(T));
  return v;
}

template <class T>
void put_vec(std::ostream& out, const std::vector<T>& v, Fnv1a& hash) {
  put<std::uint64_t>(out, v.size(), hash);
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
    if (!out) fail_io("write failed");
    hash.update(v.data(), v.size() * sizeof(T));
  }
}

template <class T>
std::vector<T> get_vec(std::istream& in, Fnv1a& hash,
                       std::uint64_t limit = 1ull << 33) {
  const auto n = get<std::uint64_t>(in, hash);
  // Overflow-safe length validation: n * sizeof(T) must not wrap before the
  // comparison, and the total must stay under the plausibility limit.
  if (n > limit / sizeof(T)) fail_format("array size implausible (corrupt file?)");
  std::vector<T> v(n);
  if (n != 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    if (!in) fail_io("truncated stream");
    hash.update(v.data(), n * sizeof(T));
  }
  return v;
}

void write_header(std::ostream& out, std::uint32_t magic) {
  Fnv1a scratch;  // header is outside the checksum
  put(out, magic, scratch);
  put(out, kVersion, scratch);
}

void check_header(std::istream& in, std::uint32_t magic) {
  Fnv1a scratch;
  if (get<std::uint32_t>(in, scratch) != magic) fail_format("bad magic");
  if (get<std::uint32_t>(in, scratch) != kVersion) {
    fail_format("unsupported version");
  }
}

void write_checksum(std::ostream& out, const Fnv1a& hash) {
  const std::uint64_t d = hash.digest();
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  if (!out) fail_io("write failed");
}

void check_checksum(std::istream& in, const Fnv1a& hash) {
  std::uint64_t want = 0;
  in.read(reinterpret_cast<char*>(&want), sizeof(want));
  if (!in) fail_io("truncated stream (missing checksum)");
  if (want != hash.digest()) {
    throw DataCorruption("binary io: payload checksum mismatch");
  }
}

}  // namespace

void save_coo(std::ostream& out, const fmt::Coo& m) {
  write_header(out, kCooMagic);
  Fnv1a hash;
  put<std::int32_t>(out, m.rows, hash);
  put<std::int32_t>(out, m.cols, hash);
  put_vec(out, m.row_idx, hash);
  put_vec(out, m.col_idx, hash);
  put_vec(out, m.vals, hash);
  write_checksum(out, hash);
}

fmt::Coo load_coo(std::istream& in) {
  check_header(in, kCooMagic);
  Fnv1a hash;
  fmt::Coo m;
  m.rows = get<std::int32_t>(in, hash);
  m.cols = get<std::int32_t>(in, hash);
  if (m.rows < 0 || m.cols < 0) fail_format("negative matrix shape");
  m.row_idx = get_vec<index_t>(in, hash);
  m.col_idx = get_vec<index_t>(in, hash);
  m.vals = get_vec<real_t>(in, hash);
  check_checksum(in, hash);
  if (m.row_idx.size() != m.col_idx.size() ||
      m.col_idx.size() != m.vals.size()) {
    fail_format("inconsistent COO arrays");
  }
  if (!m.is_canonical()) fail_format("COO not canonical");
  for (std::size_t i = 0; i < m.nnz(); ++i) {
    if (m.row_idx[i] < 0 || m.row_idx[i] >= m.rows || m.col_idx[i] < 0 ||
        m.col_idx[i] >= m.cols) {
      fail_format("COO index out of range");
    }
  }
  return m;
}

void save_bccoo(std::ostream& out, const core::Bccoo& m) {
  write_header(out, kBccooMagic);
  Fnv1a hash;
  put<std::int32_t>(out, m.rows, hash);
  put<std::int32_t>(out, m.cols, hash);
  put<std::int32_t>(out, m.cfg.block_w, hash);
  put<std::int32_t>(out, m.cfg.block_h, hash);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(m.cfg.bf_word), hash);
  put<std::int32_t>(out, m.cfg.slices, hash);
  put<std::int32_t>(out, m.block_rows, hash);
  put<std::int32_t>(out, m.block_cols, hash);
  put<std::int32_t>(out, m.stacked_block_rows, hash);
  put<std::uint64_t>(out, m.num_blocks, hash);
  put<std::uint64_t>(out, m.bit_flags.size(), hash);
  put_vec(out, m.bit_flags.words(), hash);
  put_vec(out, m.col_index, hash);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(m.value_rows.size()),
                     hash);
  for (const auto& vr : m.value_rows) put_vec(out, vr, hash);
  put_vec(out, m.seg_to_block_row, hash);
  put<std::uint8_t>(out, m.identity_segments ? 1 : 0, hash);
  write_checksum(out, hash);
}

core::Bccoo load_bccoo(std::istream& in, bool rebuild_derived) {
  check_header(in, kBccooMagic);
  Fnv1a hash;
  core::Bccoo m;
  m.rows = get<std::int32_t>(in, hash);
  m.cols = get<std::int32_t>(in, hash);
  m.cfg.block_w = get<std::int32_t>(in, hash);
  m.cfg.block_h = get<std::int32_t>(in, hash);
  m.cfg.bf_word = static_cast<BitFlagWord>(get<std::uint8_t>(in, hash));
  m.cfg.slices = get<std::int32_t>(in, hash);
  m.block_rows = get<std::int32_t>(in, hash);
  m.block_cols = get<std::int32_t>(in, hash);
  m.stacked_block_rows = get<std::int32_t>(in, hash);
  if (m.cfg.block_h < 1 || m.cfg.block_h > 64 || m.cfg.block_w < 1 ||
      m.cfg.block_w > 64) {
    fail_format("implausible block dimensions");
  }
  m.num_blocks = get<std::uint64_t>(in, hash);
  const auto nbits = get<std::uint64_t>(in, hash);
  const auto words = get_vec<std::uint32_t>(in, hash);
  if (words.size() != (nbits + 31) / 32 || nbits != m.num_blocks) {
    fail_format("inconsistent bit-flag array");
  }
  m.bit_flags = BitArray(nbits);
  for (std::uint64_t i = 0; i < nbits; ++i) {
    m.bit_flags.set(i, (words[i >> 5] >> (i & 31u)) & 1u);
  }
  m.col_index = get_vec<index_t>(in, hash);
  const auto nrows_arrays = get<std::uint32_t>(in, hash);
  if (nrows_arrays != static_cast<std::uint32_t>(m.cfg.block_h)) {
    fail_format("value-array count != block height");
  }
  m.value_rows.resize(nrows_arrays);
  for (auto& vr : m.value_rows) {
    vr = get_vec<real_t>(in, hash);
    if (vr.size() != m.num_blocks * static_cast<std::size_t>(m.cfg.block_w)) {
      fail_format("value array size mismatch");
    }
  }
  m.seg_to_block_row = get_vec<index_t>(in, hash);
  m.identity_segments = get<std::uint8_t>(in, hash) != 0;
  check_checksum(in, hash);
  if (m.col_index.size() != m.num_blocks) fail_format("col array size mismatch");
  if (m.seg_to_block_row.size() != m.bit_flags.count_zeros()) {
    fail_format("segment map size mismatch");
  }
  // Full structural validation (allowing non-finite values through: the
  // writer may have been fed an allow_nonfinite matrix on purpose).
  try {
    m.validate(/*allow_nonfinite=*/true);
  } catch (const FormatInvalid& e) {
    fail_format(std::string("loaded format fails validation: ") + e.what());
  }
  // The compressed column streams and the ABFT checksum plan are derived
  // data and not part of the file format: rebuild them from the (validated)
  // arrays so a loaded format is ready for the compressed kernels and for
  // checksum-verified applies, and round-trips compare equal under
  // operator==.
  if (rebuild_derived) {
    m.build_col_streams();
    m.build_checksums();
  }
  return m;
}

void save_coo_file(const std::string& path, const fmt::Coo& m) {
  std::ofstream f(path, std::ios::binary);
  if (!f) fail_io("cannot open " + path);
  save_coo(f, m);
}

fmt::Coo load_coo_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail_io("cannot open " + path);
  return load_coo(f);
}

void save_bccoo_file(const std::string& path, const core::Bccoo& m) {
  std::ofstream f(path, std::ios::binary);
  if (!f) fail_io("cannot open " + path);
  save_bccoo(f, m);
}

core::Bccoo load_bccoo_file(const std::string& path, bool rebuild_derived) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail_io("cannot open " + path);
  return load_bccoo(f, rebuild_derived);
}

}  // namespace yaspmv::io
