#include "yaspmv/io/binary.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace yaspmv::io {

namespace {

constexpr std::uint32_t kCooMagic = 0x4F4F4359;    // "YCOO"
constexpr std::uint32_t kBccooMagic = 0x4F434359;  // "YCCO"
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("binary io: " + msg);
}

template <class T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  if (!out) fail("write failed");
}

template <class T>
T get(std::istream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) fail("truncated stream");
  return v;
}

template <class T>
void put_vec(std::ostream& out, const std::vector<T>& v) {
  put<std::uint64_t>(out, v.size());
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
    if (!out) fail("write failed");
  }
}

template <class T>
std::vector<T> get_vec(std::istream& in, std::uint64_t limit = 1ull << 33) {
  const auto n = get<std::uint64_t>(in);
  if (n * sizeof(T) > limit) fail("array size implausible (corrupt file?)");
  std::vector<T> v(n);
  if (n != 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    if (!in) fail("truncated stream");
  }
  return v;
}

void check_header(std::istream& in, std::uint32_t magic) {
  if (get<std::uint32_t>(in) != magic) fail("bad magic");
  if (get<std::uint32_t>(in) != kVersion) fail("unsupported version");
}

}  // namespace

void save_coo(std::ostream& out, const fmt::Coo& m) {
  put(out, kCooMagic);
  put(out, kVersion);
  put<std::int32_t>(out, m.rows);
  put<std::int32_t>(out, m.cols);
  put_vec(out, m.row_idx);
  put_vec(out, m.col_idx);
  put_vec(out, m.vals);
}

fmt::Coo load_coo(std::istream& in) {
  check_header(in, kCooMagic);
  fmt::Coo m;
  m.rows = get<std::int32_t>(in);
  m.cols = get<std::int32_t>(in);
  m.row_idx = get_vec<index_t>(in);
  m.col_idx = get_vec<index_t>(in);
  m.vals = get_vec<real_t>(in);
  if (m.row_idx.size() != m.col_idx.size() ||
      m.col_idx.size() != m.vals.size()) {
    fail("inconsistent COO arrays");
  }
  if (!m.is_canonical()) fail("COO not canonical");
  for (std::size_t i = 0; i < m.nnz(); ++i) {
    if (m.row_idx[i] < 0 || m.row_idx[i] >= m.rows || m.col_idx[i] < 0 ||
        m.col_idx[i] >= m.cols) {
      fail("COO index out of range");
    }
  }
  return m;
}

void save_bccoo(std::ostream& out, const core::Bccoo& m) {
  put(out, kBccooMagic);
  put(out, kVersion);
  put<std::int32_t>(out, m.rows);
  put<std::int32_t>(out, m.cols);
  put<std::int32_t>(out, m.cfg.block_w);
  put<std::int32_t>(out, m.cfg.block_h);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(m.cfg.bf_word));
  put<std::int32_t>(out, m.cfg.slices);
  put<std::int32_t>(out, m.block_rows);
  put<std::int32_t>(out, m.block_cols);
  put<std::int32_t>(out, m.stacked_block_rows);
  put<std::uint64_t>(out, m.num_blocks);
  put<std::uint64_t>(out, m.bit_flags.size());
  put_vec(out, m.bit_flags.words());
  put_vec(out, m.col_index);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(m.value_rows.size()));
  for (const auto& vr : m.value_rows) put_vec(out, vr);
  put_vec(out, m.seg_to_block_row);
  put<std::uint8_t>(out, m.identity_segments ? 1 : 0);
}

core::Bccoo load_bccoo(std::istream& in) {
  check_header(in, kBccooMagic);
  core::Bccoo m;
  m.rows = get<std::int32_t>(in);
  m.cols = get<std::int32_t>(in);
  m.cfg.block_w = get<std::int32_t>(in);
  m.cfg.block_h = get<std::int32_t>(in);
  m.cfg.bf_word = static_cast<BitFlagWord>(get<std::uint8_t>(in));
  m.cfg.slices = get<std::int32_t>(in);
  m.block_rows = get<std::int32_t>(in);
  m.block_cols = get<std::int32_t>(in);
  m.stacked_block_rows = get<std::int32_t>(in);
  m.num_blocks = get<std::uint64_t>(in);
  const auto nbits = get<std::uint64_t>(in);
  const auto words = get_vec<std::uint32_t>(in);
  if (words.size() != (nbits + 31) / 32 || nbits != m.num_blocks) {
    fail("inconsistent bit-flag array");
  }
  m.bit_flags = BitArray(nbits);
  for (std::uint64_t i = 0; i < nbits; ++i) {
    m.bit_flags.set(i, (words[i >> 5] >> (i & 31u)) & 1u);
  }
  m.col_index = get_vec<index_t>(in);
  const auto nrows_arrays = get<std::uint32_t>(in);
  if (nrows_arrays != static_cast<std::uint32_t>(m.cfg.block_h)) {
    fail("value-array count != block height");
  }
  m.value_rows.resize(nrows_arrays);
  for (auto& vr : m.value_rows) {
    vr = get_vec<real_t>(in);
    if (vr.size() != m.num_blocks * static_cast<std::size_t>(m.cfg.block_w)) {
      fail("value array size mismatch");
    }
  }
  m.seg_to_block_row = get_vec<index_t>(in);
  m.identity_segments = get<std::uint8_t>(in) != 0;
  if (m.col_index.size() != m.num_blocks) fail("col array size mismatch");
  if (m.seg_to_block_row.size() != m.bit_flags.count_zeros()) {
    fail("segment map size mismatch");
  }
  return m;
}

void save_coo_file(const std::string& path, const fmt::Coo& m) {
  std::ofstream f(path, std::ios::binary);
  if (!f) fail("cannot open " + path);
  save_coo(f, m);
}

fmt::Coo load_coo_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail("cannot open " + path);
  return load_coo(f);
}

void save_bccoo_file(const std::string& path, const core::Bccoo& m) {
  std::ofstream f(path, std::ios::binary);
  if (!f) fail("cannot open " + path);
  save_bccoo(f, m);
}

core::Bccoo load_bccoo_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail("cannot open " + path);
  return load_bccoo(f);
}

}  // namespace yaspmv::io
