// Binary (de)serialization of COO matrices and built BCCOO formats.
//
// Format conversion is the offline step of the paper's pipeline (offline
// transpose, auto-tuned format build); persisting the built format lets an
// application pay the conversion cost once.  The container is a simple
// little-endian TLV: magic, version, then the arrays with explicit sizes.
// Files are not portable across endianness (checked via the magic).
#pragma once

#include <iosfwd>
#include <string>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/formats/coo.hpp"

namespace yaspmv::io {

/// Serializes canonical COO.  Throws std::runtime_error on I/O failure.
void save_coo(std::ostream& out, const fmt::Coo& m);
fmt::Coo load_coo(std::istream& in);
void save_coo_file(const std::string& path, const fmt::Coo& m);
fmt::Coo load_coo_file(const std::string& path);

/// Serializes a built BCCOO/BCCOO+ format (everything needed to run SpMV
/// without re-deriving it from COO).  The compressed column streams and the
/// ABFT checksum plan are derived data and not part of the file format; the
/// loader rebuilds both unless `rebuild_derived` is false (tests use that to
/// exercise the kernels' ColStream::kAuto degradation on a streams-absent
/// format).
void save_bccoo(std::ostream& out, const core::Bccoo& m);
core::Bccoo load_bccoo(std::istream& in, bool rebuild_derived = true);
void save_bccoo_file(const std::string& path, const core::Bccoo& m);
core::Bccoo load_bccoo_file(const std::string& path,
                            bool rebuild_derived = true);

}  // namespace yaspmv::io
