#include "yaspmv/io/journal_io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "yaspmv/core/status.hpp"

namespace yaspmv::io {

namespace {

constexpr std::uint32_t kJournalMagic = 0x4E524A59;  // "YJRN"
constexpr std::uint32_t kJournalVersion = 1;

[[noreturn]] void fail_io(const std::string& msg) {
  throw IoError("journal io: " + msg);
}

[[noreturn]] void fail_format(const std::string& msg) {
  throw FormatInvalid("journal io: " + msg);
}

/// FNV-1a 64-bit over every payload byte between header and checksum (same
/// scheme as io/binary.cpp).
class Fnv1a {
 public:
  void update(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

template <class T>
void put(std::ostream& out, const T& v, Fnv1a& hash) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  if (!out) fail_io("write failed");
  hash.update(&v, sizeof(T));
}

template <class T>
T get(std::istream& in, Fnv1a& hash) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) fail_io("truncated stream");
  hash.update(&v, sizeof(T));
  return v;
}

}  // namespace

void save_journal(std::ostream& out, const sim::RecordedRun& run) {
  Fnv1a scratch;  // header is outside the checksum
  put(out, kJournalMagic, scratch);
  put(out, kJournalVersion, scratch);

  Fnv1a hash;
  put<std::int32_t>(out, run.num_workgroups, hash);
  put<std::int32_t>(out, run.workgroup_size, hash);
  put<std::uint32_t>(out, run.workers, hash);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(run.fault.type), hash);
  put<std::int32_t>(out, run.fault.target_wg, hash);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(run.fault.launch), hash);
  put<double>(out, run.fault.magnitude, hash);
  put<std::uint64_t>(out, run.spin_budget_override, hash);
  put<std::uint64_t>(out, run.events.size(), hash);
  // Events are written field-by-field (not memcpy'd) so struct padding never
  // leaks uninitialized bytes into the file or the checksum.
  for (const sim::Event& e : run.events) {
    put<std::uint64_t>(out, e.seq, hash);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(e.type), hash);
    put<std::uint8_t>(out, e.kind, hash);
    put<std::uint16_t>(out, e.worker, hash);
    put<std::int32_t>(out, e.wg, hash);
    put<std::int32_t>(out, e.aux, hash);
  }

  const std::uint64_t d = hash.digest();
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  if (!out) fail_io("write failed");
}

sim::RecordedRun load_journal(std::istream& in) {
  Fnv1a scratch;
  if (get<std::uint32_t>(in, scratch) != kJournalMagic) {
    fail_format("bad magic (not a journal file)");
  }
  if (get<std::uint32_t>(in, scratch) != kJournalVersion) {
    fail_format("unsupported journal version");
  }

  Fnv1a hash;
  sim::RecordedRun run;
  run.num_workgroups = get<std::int32_t>(in, hash);
  run.workgroup_size = get<std::int32_t>(in, hash);
  run.workers = get<std::uint32_t>(in, hash);
  if (run.num_workgroups < 0 || run.workgroup_size < 0) {
    fail_format("negative launch geometry");
  }
  run.fault.type = static_cast<sim::FaultType>(get<std::uint8_t>(in, hash));
  run.fault.target_wg = get<std::int32_t>(in, hash);
  run.fault.launch = static_cast<sim::LaunchKind>(get<std::uint8_t>(in, hash));
  run.fault.magnitude = get<double>(in, hash);
  run.spin_budget_override = get<std::uint64_t>(in, hash);
  const auto n = get<std::uint64_t>(in, hash);
  if (n > (1ull << 28)) fail_format("event count implausible (corrupt file?)");
  run.events.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    sim::Event e;
    e.seq = get<std::uint64_t>(in, hash);
    e.type = static_cast<sim::EventType>(get<std::uint8_t>(in, hash));
    e.kind = get<std::uint8_t>(in, hash);
    e.worker = get<std::uint16_t>(in, hash);
    e.wg = get<std::int32_t>(in, hash);
    e.aux = get<std::int32_t>(in, hash);
    run.events.push_back(e);
  }

  std::uint64_t want = 0;
  in.read(reinterpret_cast<char*>(&want), sizeof(want));
  if (!in) fail_io("truncated stream (missing checksum)");
  if (want != hash.digest()) {
    throw DataCorruption("journal io: payload checksum mismatch");
  }
  return run;
}

void save_journal_file(const std::string& path, const sim::RecordedRun& run) {
  std::ofstream f(path, std::ios::binary);
  if (!f) fail_io("cannot open " + path);
  save_journal(f, run);
}

sim::RecordedRun load_journal_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail_io("cannot open " + path);
  return load_journal(f);
}

std::string format_journal(const sim::RecordedRun& run) {
  std::ostringstream os;
  os << "journal: " << run.num_workgroups << " workgroups x "
     << run.workgroup_size << " threads, " << run.workers << " workers, "
     << run.events.size() << " events\n";
  if (run.fault.type != sim::FaultType::kNone) {
    os << "fault: " << to_string(run.fault.type) << " wg="
       << run.fault.target_wg << " launch=" << to_string(run.fault.launch)
       << " spin-budget=" << run.spin_budget_override << "\n";
  }
  for (const sim::Event& e : run.events) {
    os << "  [" << e.seq << "] "
       << to_string(static_cast<sim::LaunchKind>(e.kind)) << " w" << e.worker
       << " " << to_string(e.type);
    if (e.wg >= 0) os << " wg=" << e.wg;
    switch (e.type) {
      case sim::EventType::kLaunchBegin:
        os << " workgroups=" << e.aux;
        break;
      case sim::EventType::kPhase:
        os << " phase=" << e.aux;
        break;
      case sim::EventType::kWaitBegin:
      case sim::EventType::kWaitResolve:
      case sim::EventType::kWaitTimeout:
        os << " on=Grp_sum[" << e.aux << "]";
        break;
      case sim::EventType::kFaultFired:
        os << " fault="
           << to_string(static_cast<sim::FaultType>(e.aux));
        break;
      default:
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace yaspmv::io
