// Binary (de)serialization of recorded runs (flight-recorder journals).
//
// A journal file is the portable artifact of "debugging a hang": record a
// failing pooled run with --record, attach the file to a bug report, replay
// it anywhere with --replay.  Same container discipline as io/binary.cpp —
// little-endian TLV with a magic/version header outside a trailing FNV-1a 64
// checksum, so truncation and bit rot raise DataCorruption instead of
// deserializing garbage schedules.
#pragma once

#include <iosfwd>
#include <string>

#include "yaspmv/sim/journal.hpp"

namespace yaspmv::io {

/// Serializes a recorded run: launch geometry, the armed fault plan and spin
/// budget (needed to re-create the failing conditions), then the event log.
void save_journal(std::ostream& out, const sim::RecordedRun& run);
sim::RecordedRun load_journal(std::istream& in);
void save_journal_file(const std::string& path, const sim::RecordedRun& run);
sim::RecordedRun load_journal_file(const std::string& path);

/// Human-readable dump of an event log (one line per event) for bug reports
/// and --replay --dump output.
std::string format_journal(const sim::RecordedRun& run);

}  // namespace yaspmv::io
