#include "yaspmv/io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace yaspmv::io {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("matrix market: " + msg);
}

}  // namespace

fmt::Coo read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty stream");
  std::istringstream hdr(line);
  std::string banner, object, format, field, symmetry;
  hdr >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail("missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail("unsupported object: " + object);
  if (lower(format) != "coordinate") fail("unsupported format: " + format);
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    fail("unsupported field: " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general") {
    fail("unsupported symmetry: " + symmetry);
  }

  // Skip comments, read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sz(line);
  long rows = 0, cols = 0, entries = 0;
  if (!(sz >> rows >> cols >> entries)) fail("bad size line");
  if (rows < 0 || cols < 0 || entries < 0) fail("negative size");

  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const std::size_t reserve =
      static_cast<std::size_t>(entries) * ((symmetric || skew) ? 2 : 1);
  ri.reserve(reserve);
  ci.reserve(reserve);
  v.reserve(reserve);
  for (long k = 0; k < entries; ++k) {
    long r = 0, c = 0;
    double x = 1.0;
    if (!(in >> r >> c)) fail("truncated entry list");
    if (!pattern && !(in >> x)) fail("missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) fail("entry out of range");
    ri.push_back(static_cast<index_t>(r - 1));
    ci.push_back(static_cast<index_t>(c - 1));
    v.push_back(x);
    if ((symmetric || skew) && r != c) {
      ri.push_back(static_cast<index_t>(c - 1));
      ci.push_back(static_cast<index_t>(r - 1));
      v.push_back(skew ? -x : x);
    }
  }
  return fmt::Coo::from_triplets(static_cast<index_t>(rows),
                                 static_cast<index_t>(cols), std::move(ri),
                                 std::move(ci), std::move(v));
}

fmt::Coo read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) fail("cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const fmt::Coo& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < m.nnz(); ++i) {
    out << (m.row_idx[i] + 1) << ' ' << (m.col_idx[i] + 1) << ' ' << m.vals[i]
        << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const fmt::Coo& m) {
  std::ofstream f(path);
  if (!f) fail("cannot open " + path);
  write_matrix_market(f, m);
}

}  // namespace yaspmv::io
