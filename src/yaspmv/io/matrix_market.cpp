#include "yaspmv/io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "yaspmv/core/status.hpp"

namespace yaspmv::io {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(const std::string& msg) {
  throw FormatInvalid("matrix market: " + msg);
}

bool blank(const std::string& line) {
  return std::all_of(line.begin(), line.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

/// Largest up-front reserve we honor from an untrusted size line; beyond
/// this, vectors grow on demand so a hostile "99999999 99999999 9e15" header
/// cannot OOM the process before the (truncated) entry list is even read.
constexpr std::size_t kMaxTrustedReserve = std::size_t{1} << 24;

}  // namespace

fmt::Coo read_matrix_market(std::istream& in, const MatrixMarketOptions& opt) {
  std::string line;
  if (!std::getline(in, line)) fail("empty stream");
  std::istringstream hdr(line);
  std::string banner, object, format, field, symmetry;
  hdr >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail("missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail("unsupported object: " + object);
  if (lower(format) != "coordinate") fail("unsupported format: " + format);
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    fail("unsupported field: " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general") {
    fail("unsupported symmetry: " + symmetry);
  }

  // Skip comments/blank lines, read the size line.
  bool have_size = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%' || blank(line)) continue;
    have_size = true;
    break;
  }
  if (!have_size) fail("missing size line");
  std::istringstream sz(line);
  long long rows = 0, cols = 0, entries = 0;
  if (!(sz >> rows >> cols >> entries)) fail("bad size line");
  if (rows < 0 || cols < 0 || entries < 0) fail("negative size");
  constexpr long long kIndexMax = std::numeric_limits<index_t>::max();
  if (rows > kIndexMax || cols > kIndexMax) {
    fail("matrix dimensions overflow the 32-bit index type");
  }
  // Entry-count sanity: the stored count (doubled for the mirrored
  // symmetric/skew halves) must fit index_t, and cannot exceed the number of
  // cells in the matrix.  Both reject absurd size lines before any
  // allocation happens.
  const long long stored_max = (symmetric || skew) ? 2 * entries : entries;
  if (entries > kIndexMax || stored_max > kIndexMax) {
    fail("entry count overflows the 32-bit index type");
  }
  if (rows * cols < entries) {  // both factors <= 2^31, no int64 overflow
    fail("entry count exceeds rows * cols");
  }

  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const std::size_t reserve = std::min<std::size_t>(
      static_cast<std::size_t>(stored_max), kMaxTrustedReserve);
  ri.reserve(reserve);
  ci.reserve(reserve);
  v.reserve(reserve);
  // Line-based entry parsing: real-world .mtx files contain blank lines and
  // stray comments inside the entry list; both are tolerated.
  long long k = 0;
  while (k < entries) {
    if (!std::getline(in, line)) fail("truncated entry list");
    if (line.empty() || line[0] == '%' || blank(line)) continue;
    std::istringstream ent(line);
    long long r = 0, c = 0;
    double x = 1.0;
    if (!(ent >> r >> c)) fail("bad entry line: " + line);
    if (!pattern) {
      // istream's num_get rejects "nan"/"inf", which real .mtx files do
      // contain; parse the token with strtod so the nonfinite *policy*
      // decides, not the parser.
      std::string tok;
      if (!(ent >> tok)) fail("missing value: " + line);
      char* end = nullptr;
      x = std::strtod(tok.c_str(), &end);
      if (end == tok.c_str() || *end != '\0') fail("bad value: " + line);
    }
    if (r < 1 || r > rows || c < 1 || c > cols) fail("entry out of range");
    if (!opt.allow_nonfinite && !std::isfinite(x)) {
      fail("non-finite value at entry " + std::to_string(k + 1) +
           " (pass allow_nonfinite to accept)");
    }
    ri.push_back(static_cast<index_t>(r - 1));
    ci.push_back(static_cast<index_t>(c - 1));
    v.push_back(x);
    if ((symmetric || skew) && r != c) {
      ri.push_back(static_cast<index_t>(c - 1));
      ci.push_back(static_cast<index_t>(r - 1));
      v.push_back(skew ? -x : x);
    }
    ++k;
  }
  return fmt::Coo::from_triplets(static_cast<index_t>(rows),
                                 static_cast<index_t>(cols), std::move(ri),
                                 std::move(ci), std::move(v));
}

fmt::Coo read_matrix_market_file(const std::string& path,
                                 const MatrixMarketOptions& opt) {
  std::ifstream f(path);
  if (!f) throw IoError("matrix market: cannot open " + path);
  return read_matrix_market(f, opt);
}

void write_matrix_market(std::ostream& out, const fmt::Coo& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < m.nnz(); ++i) {
    out << (m.row_idx[i] + 1) << ' ' << (m.col_idx[i] + 1) << ' ' << m.vals[i]
        << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const fmt::Coo& m) {
  std::ofstream f(path);
  if (!f) throw IoError("matrix market: cannot open " + path);
  write_matrix_market(f, m);
}

}  // namespace yaspmv::io
