// Matrix Market (.mtx) I/O so the synthetic suite can be swapped for the
// real UF/SuiteSparse matrices when they are available.
//
// Supports the coordinate format with real/integer/pattern fields and
// general/symmetric/skew-symmetric symmetry, which covers every matrix in
// Table 2.  The reader is hardened against hostile input: entry counts that
// overflow index_t (or would drive a huge up-front reserve) are rejected,
// blank and comment lines inside the entry list are tolerated, and
// non-finite values are rejected unless explicitly opted in.
#pragma once

#include <iosfwd>
#include <string>

#include "yaspmv/formats/coo.hpp"

namespace yaspmv::io {

struct MatrixMarketOptions {
  /// Accept NaN/Inf values instead of raising FormatInvalid.  Off by
  /// default: one non-finite value silently poisons every partial sum in
  /// its segment downstream.
  bool allow_nonfinite = false;
};

/// Parses a Matrix Market stream into canonical COO.  Throws
/// yaspmv::FormatInvalid (a std::runtime_error) on malformed input or
/// unsupported variants (complex fields, array format).
fmt::Coo read_matrix_market(std::istream& in,
                            const MatrixMarketOptions& opt = {});

/// Convenience file wrapper; throws yaspmv::IoError when the file cannot
/// be opened.
fmt::Coo read_matrix_market_file(const std::string& path,
                                 const MatrixMarketOptions& opt = {});

/// Writes canonical COO as "coordinate real general".
void write_matrix_market(std::ostream& out, const fmt::Coo& m);

void write_matrix_market_file(const std::string& path, const fmt::Coo& m);

}  // namespace yaspmv::io
