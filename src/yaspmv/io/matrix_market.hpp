// Matrix Market (.mtx) I/O so the synthetic suite can be swapped for the
// real UF/SuiteSparse matrices when they are available.
//
// Supports the coordinate format with real/integer/pattern fields and
// general/symmetric/skew-symmetric symmetry, which covers every matrix in
// Table 2.
#pragma once

#include <iosfwd>
#include <string>

#include "yaspmv/formats/coo.hpp"

namespace yaspmv::io {

/// Parses a Matrix Market stream into canonical COO.  Throws
/// std::runtime_error on malformed input or unsupported variants (complex
/// fields, array format).
fmt::Coo read_matrix_market(std::istream& in);

/// Convenience file wrapper; throws std::runtime_error when the file cannot
/// be opened.
fmt::Coo read_matrix_market_file(const std::string& path);

/// Writes canonical COO as "coordinate real general".
void write_matrix_market(std::ostream& out, const fmt::Coo& m);

void write_matrix_market_file(const std::string& path, const fmt::Coo& m);

}  // namespace yaspmv::io
