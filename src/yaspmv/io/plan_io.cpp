#include "yaspmv/io/plan_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "yaspmv/core/status.hpp"

namespace yaspmv::io {

namespace {

constexpr std::uint32_t kPlanMagic = 0x4E4C5059;  // "YPLN"
// File-format version (container layout), independent of kPlanCodeVersion
// (semantic validity of the stored configs).
constexpr std::uint32_t kPlanFileVersion = 1;

[[noreturn]] void fail_io(const std::string& msg) {
  throw IoError("plan io: " + msg);
}

[[noreturn]] void fail_format(const std::string& msg) {
  throw FormatInvalid("plan io: " + msg);
}

class Fnv1a {
 public:
  void update(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

template <class T>
void put(std::ostream& out, const T& v, Fnv1a& hash) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  if (!out) fail_io("write failed");
  hash.update(&v, sizeof(T));
}

template <class T>
T get(std::istream& in, Fnv1a& hash) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) fail_io("truncated stream");
  hash.update(&v, sizeof(T));
  return v;
}

void put_string(std::ostream& out, const std::string& s, Fnv1a& hash) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()), hash);
  if (!s.empty()) {
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
    if (!out) fail_io("write failed");
    hash.update(s.data(), s.size());
  }
}

std::string get_string(std::istream& in, Fnv1a& hash) {
  const auto n = get<std::uint32_t>(in, hash);
  if (n > (1u << 16)) fail_format("string length implausible");
  std::string s(n, '\0');
  if (n != 0) {
    in.read(s.data(), n);
    if (!in) fail_io("truncated stream");
    hash.update(s.data(), n);
  }
  return s;
}

void put_candidate(std::ostream& out, const tune::Candidate& c, Fnv1a& hash) {
  put<std::int32_t>(out, c.format.block_w, hash);
  put<std::int32_t>(out, c.format.block_h, hash);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(c.format.bf_word), hash);
  put<std::int32_t>(out, c.format.slices, hash);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(c.exec.strategy), hash);
  put<std::int32_t>(out, c.exec.workgroup_size, hash);
  put<std::int32_t>(out, c.exec.thread_tile, hash);
  put<std::int32_t>(out, c.exec.shm_tile, hash);
  put<std::int32_t>(out, c.exec.result_cache_multiple, hash);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(c.exec.transpose), hash);
  std::uint8_t flags = 0;
  flags |= c.exec.use_texture ? 1u : 0u;
  flags |= c.exec.compress_col_delta ? 2u : 0u;
  flags |= c.exec.short_col_index ? 4u : 0u;
  flags |= c.exec.adjacent_sync ? 8u : 0u;
  flags |= c.exec.skip_scan_opt ? 16u : 0u;
  flags |= c.exec.logical_ids ? 32u : 0u;
  put<std::uint8_t>(out, flags, hash);
  put<std::uint32_t>(out, c.exec.workers, hash);
  put<double>(out, c.gflops, hash);
  put<std::uint64_t>(out, c.footprint, hash);
  put<double>(out, c.measured_gflops, hash);
  put<std::uint64_t>(out, c.measured_bytes, hash);
  put_string(out, c.kernel, hash);  // v2: dispatched kernel id
}

tune::Candidate get_candidate(std::istream& in, Fnv1a& hash) {
  tune::Candidate c;
  c.format.block_w = get<std::int32_t>(in, hash);
  c.format.block_h = get<std::int32_t>(in, hash);
  c.format.bf_word = static_cast<BitFlagWord>(get<std::uint8_t>(in, hash));
  c.format.slices = get<std::int32_t>(in, hash);
  c.exec.strategy = static_cast<core::Strategy>(get<std::uint8_t>(in, hash));
  c.exec.workgroup_size = get<std::int32_t>(in, hash);
  c.exec.thread_tile = get<std::int32_t>(in, hash);
  c.exec.shm_tile = get<std::int32_t>(in, hash);
  c.exec.result_cache_multiple = get<std::int32_t>(in, hash);
  c.exec.transpose = static_cast<core::Transpose>(get<std::uint8_t>(in, hash));
  const auto flags = get<std::uint8_t>(in, hash);
  c.exec.use_texture = (flags & 1u) != 0;
  c.exec.compress_col_delta = (flags & 2u) != 0;
  c.exec.short_col_index = (flags & 4u) != 0;
  c.exec.adjacent_sync = (flags & 8u) != 0;
  c.exec.skip_scan_opt = (flags & 16u) != 0;
  c.exec.logical_ids = (flags & 32u) != 0;
  c.exec.workers = get<std::uint32_t>(in, hash);
  c.gflops = get<double>(in, hash);
  c.footprint = static_cast<std::size_t>(get<std::uint64_t>(in, hash));
  c.measured_gflops = get<double>(in, hash);
  c.measured_bytes = static_cast<std::size_t>(get<std::uint64_t>(in, hash));
  c.kernel = get_string(in, hash);
  // Kernel ids are short fixed-vocabulary strings ("generic",
  // "grid/w8h4/delta", ...); anything longer is version skew or hostility.
  if (c.kernel.empty() || c.kernel.size() > 64) {
    fail_format("stored kernel id implausible");
  }
  // Plausibility gates: a plan with nonsense geometry must not reach
  // Bccoo::build / the engine even if its checksum is intact (a hostile or
  // version-skewed file could be internally consistent).
  if (c.format.block_w < 1 || c.format.block_w > 64 || c.format.block_h < 1 ||
      c.format.block_h > 64 || c.format.slices < 1 ||
      c.format.slices > 4096) {
    fail_format("stored format geometry implausible");
  }
  if (c.exec.workgroup_size < 1 || c.exec.workgroup_size > 4096 ||
      c.exec.thread_tile < 1 || c.exec.thread_tile > 4096) {
    fail_format("stored exec geometry implausible");
  }
  if (c.exec.strategy != core::Strategy::kIntermediateSums &&
      c.exec.strategy != core::Strategy::kResultCache) {
    fail_format("stored strategy out of range");
  }
  return c;
}

}  // namespace

std::uint64_t payload_checksum(const fmt::Coo& a) {
  Fnv1a h;
  const std::int32_t rows = a.rows;
  const std::int32_t cols = a.cols;
  h.update(&rows, sizeof rows);
  h.update(&cols, sizeof cols);
  const std::uint64_t nnz = a.nnz();
  h.update(&nnz, sizeof nnz);
  if (!a.row_idx.empty()) {
    h.update(a.row_idx.data(), a.row_idx.size() * sizeof(index_t));
  }
  if (!a.col_idx.empty()) {
    h.update(a.col_idx.data(), a.col_idx.size() * sizeof(index_t));
  }
  if (!a.vals.empty()) {
    h.update(a.vals.data(), a.vals.size() * sizeof(real_t));
  }
  return h.digest();
}

void save_plan(std::ostream& out, const PlanRecord& p) {
  Fnv1a scratch;  // header is outside the checksum
  put(out, kPlanMagic, scratch);
  put(out, kPlanFileVersion, scratch);
  Fnv1a hash;
  put<std::uint32_t>(out, p.code_version, hash);
  put<std::uint64_t>(out, p.payload_checksum, hash);
  put_string(out, p.device, hash);
  put_candidate(out, p.best, hash);
  put<double>(out, p.tuning_seconds, hash);
  put<std::int32_t>(out, p.evaluated, hash);
  const std::uint64_t d = hash.digest();
  out.write(reinterpret_cast<const char*>(&d), sizeof d);
  if (!out) fail_io("write failed");
}

PlanRecord load_plan(std::istream& in) {
  Fnv1a scratch;
  if (get<std::uint32_t>(in, scratch) != kPlanMagic) fail_format("bad magic");
  if (get<std::uint32_t>(in, scratch) != kPlanFileVersion) {
    fail_format("unsupported plan file version");
  }
  Fnv1a hash;
  PlanRecord p;
  p.code_version = get<std::uint32_t>(in, hash);
  // Check the code version *before* parsing the candidate: the candidate
  // layout itself changes across code versions (v2 appended the kernel id),
  // so a stale plan must fail deterministically here rather than mis-parse
  // downstream fields into a plausible-looking wrong plan.
  if (p.code_version != kPlanCodeVersion) {
    fail_format("stale plan code version " + std::to_string(p.code_version) +
                " (want " + std::to_string(kPlanCodeVersion) + ")");
  }
  p.payload_checksum = get<std::uint64_t>(in, hash);
  p.device = get_string(in, hash);
  p.best = get_candidate(in, hash);
  p.tuning_seconds = get<double>(in, hash);
  p.evaluated = get<std::int32_t>(in, hash);
  std::uint64_t want = 0;
  in.read(reinterpret_cast<char*>(&want), sizeof want);
  if (!in) fail_io("truncated stream (missing checksum)");
  if (want != hash.digest()) {
    throw DataCorruption("plan io: payload checksum mismatch");
  }
  return p;
}

void save_plan_file(const std::string& path, const PlanRecord& p) {
  std::ofstream f(path, std::ios::binary);
  if (!f) fail_io("cannot open " + path);
  save_plan(f, p);
  f.flush();
  if (!f) fail_io("flush failed for " + path);
}

PlanRecord load_plan_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail_io("cannot open " + path);
  return load_plan(f);
}

}  // namespace yaspmv::io
