// (De)serialization of tuned execution plans — the paper's compiled-kernel
// cache (Section 5) made durable.
//
// A PlanRecord freezes the outcome of one auto-tuning run: the winning
// FormatConfig/ExecConfig pair plus the metadata needed to decide whether a
// stored plan still applies.  The key has three parts and all of them are
// stored *inside* the file and re-checked on load:
//
//   * payload_checksum — FNV-1a over the matrix's canonical COO triplets
//     (shape + indices + values), so a plan never outlives its matrix;
//   * device           — the DeviceSpec the tuner modeled against;
//   * code_version     — kPlanCodeVersion, bumped whenever the tuner, the
//     formats or the kernels change meaning; stale plans load as a miss.
//
// The container is the same shape as the other YASPMV binary files: magic,
// file version, payload, trailing FNV-1a checksum.  load_plan throws typed
// SpmvErrors; the durable PlanCache (serve/plan_cache) catches them and
// treats every failure as a cache miss — a corrupt plan file re-tunes, it
// never crashes the server.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "yaspmv/formats/coo.hpp"
#include "yaspmv/tune/tuner.hpp"

namespace yaspmv::io {

/// Bump when a stored FormatConfig/ExecConfig would no longer reproduce the
/// same kernels (tuner heuristics, format layout or exec semantics changed).
/// v2: plans record the dispatched kernel id (specialization grid,
/// cpu/kernels_grid.hpp); v1 plans predate dispatch and load as a miss.
constexpr std::uint32_t kPlanCodeVersion = 2;

/// One durable auto-tuning outcome.
struct PlanRecord {
  std::uint64_t payload_checksum = 0;
  std::string device;
  std::uint32_t code_version = kPlanCodeVersion;
  tune::Candidate best;        ///< winning config + modeled/measured numbers
  double tuning_seconds = 0;   ///< what the cache hit saved
  int evaluated = 0;           ///< sweep size behind the stored plan
};

/// FNV-1a over rows, cols and the canonical triplet arrays — the identity of
/// a matrix for plan-cache purposes (same accumulation as the binary
/// container, so the id is stable across save/load round trips).
std::uint64_t payload_checksum(const fmt::Coo& a);

/// Serializes `p`.  Throws IoError on stream failure.
void save_plan(std::ostream& out, const PlanRecord& p);

/// Deserializes one PlanRecord.  Throws FormatInvalid on bad magic/version/
/// implausible fields, IoError on truncation, DataCorruption on checksum
/// mismatch.  Callers wanting miss-on-corruption semantics must catch.
PlanRecord load_plan(std::istream& in);

void save_plan_file(const std::string& path, const PlanRecord& p);
PlanRecord load_plan_file(const std::string& path);

}  // namespace yaspmv::io
