#include "yaspmv/io/stream.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>
#include <utility>

namespace yaspmv::io {

namespace detail {

thread_local ::sigjmp_buf* tl_sigbus_target = nullptr;

namespace {
void sigbus_handler(int sig) {
  if (tl_sigbus_target != nullptr) {
    siglongjmp(*tl_sigbus_target, 1);
  }
  // No guard armed on this thread: this SIGBUS is not ours.  Restore the
  // default disposition and re-raise so the process dies the normal way.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}
}  // namespace

void install_sigbus_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = sigbus_handler;
    sigemptyset(&sa.sa_mask);
    // SA_NODEFER: the handler exits via siglongjmp, never returns, so the
    // signal must not stay blocked for the next fault.
    sa.sa_flags = SA_NODEFER;
    ::sigaction(SIGBUS, &sa, nullptr);
  });
}

}  // namespace detail

namespace {

constexpr std::uint32_t kBccooMagic = 0x4F434359;  // "YCCO"
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kHeaderBytes = 8;    // magic + version
constexpr std::size_t kChecksumBytes = 8;  // trailing FNV-1a digest

[[noreturn]] void fail_format(const std::string& msg) {
  throw FormatInvalid("mapped bccoo: " + msg);
}

/// Bounds-checked forward cursor over the mapped payload.  Reads memcpy
/// out of the mapping (array starts are not aligned); skips record an
/// array's offset without touching its bytes.
struct Cursor {
  const unsigned char* base;
  std::size_t size;
  std::size_t off;

  template <class T>
  T get() {
    if (size - off < sizeof(T)) fail_format("truncated geometry");
    T v;
    std::memcpy(&v, base + off, sizeof(T));
    off += sizeof(T);
    return v;
  }

  /// Skips a put_vec-encoded array of `elem`-byte elements; returns
  /// (element count, byte offset of the first element).
  std::pair<std::uint64_t, std::size_t> skip_vec(std::size_t elem) {
    const auto n = get<std::uint64_t>();
    if (n > size / elem || size - off < n * elem) {
      fail_format("array extends past end of file (truncated?)");
    }
    const std::size_t data = off;
    off += static_cast<std::size_t>(n) * elem;
    return {n, data};
  }
};

}  // namespace

MappedBccoo::MappedBccoo(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw IoError("mapped bccoo: cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw IoError("mapped bccoo: cannot stat " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ < kHeaderBytes + kChecksumBytes) {
    ::close(fd);
    fail_format("file too small for header + checksum");
  }
  void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (p == MAP_FAILED) throw IoError("mapped bccoo: mmap failed for " + path);
  base_ = static_cast<const unsigned char*>(p);
  try {
    // The file can shrink between fstat and these reads; parse + verify
    // walk every payload byte, so arm the trap for the whole pass.
    with_sigbus_guard("mapped bccoo open", [&] { parse_and_verify(); });
  } catch (...) {
    unmap();
    throw;
  }
}

void MappedBccoo::parse_and_verify() {
  Cursor c{base_, size_ - kChecksumBytes, 0};
  if (c.get<std::uint32_t>() != kBccooMagic) fail_format("bad magic");
  if (c.get<std::uint32_t>() != kVersion) fail_format("unsupported version");

  rows_ = c.get<std::int32_t>();
  cols_ = c.get<std::int32_t>();
  block_w_ = c.get<std::int32_t>();
  block_h_ = c.get<std::int32_t>();
  c.get<std::uint8_t>();  // bf_word (simulator packing; irrelevant here)
  slices_ = c.get<std::int32_t>();
  block_rows_ = c.get<std::int32_t>();
  block_cols_ = c.get<std::int32_t>();
  stacked_block_rows_ = c.get<std::int32_t>();
  if (rows_ < 0 || cols_ < 0) fail_format("negative matrix shape");
  if (block_h_ < 1 || block_h_ > 64 || block_w_ < 1 || block_w_ > 64) {
    fail_format("implausible block dimensions");
  }
  if (block_rows_ < 0 || slices_ < 1) fail_format("implausible geometry");
  num_blocks_ = c.get<std::uint64_t>();
  const auto nbits = c.get<std::uint64_t>();
  if (nbits != num_blocks_) fail_format("bit-flag count != block count");

  const auto [nwords, bits_off] = c.skip_vec(sizeof(std::uint32_t));
  if (nwords != (nbits + 31) / 32) fail_format("inconsistent bit-flag array");
  bits_off_ = bits_off;
  bit_words_ = static_cast<std::size_t>(nwords);

  const auto [ncols, cols_off] = c.skip_vec(sizeof(index_t));
  if (ncols != num_blocks_) fail_format("col array size mismatch");
  cols_off_ = cols_off;

  const auto nrows_arrays = c.get<std::uint32_t>();
  if (nrows_arrays != static_cast<std::uint32_t>(block_h_)) {
    fail_format("value-array count != block height");
  }
  vals_off_.resize(nrows_arrays);
  for (auto& off : vals_off_) {
    const auto [nv, voff] = c.skip_vec(sizeof(real_t));
    if (nv != num_blocks_ * static_cast<std::uint64_t>(block_w_)) {
      fail_format("value array size mismatch");
    }
    off = voff;
  }

  const auto [nsegs, segmap_off] = c.skip_vec(sizeof(index_t));
  num_segments_ = static_cast<std::size_t>(nsegs);
  segmap_off_ = segmap_off;
  identity_segments_ = c.get<std::uint8_t>() != 0;
  if (c.off != c.size) fail_format("trailing bytes before checksum");

  // Segment count must equal the number of row stops (zero bits).  Bits
  // past nbits in the last word are writer-zeroed; mask them out.
  std::uint64_t ones = 0;
  for (std::size_t w = 0; w < bit_words_; ++w) {
    std::uint32_t v;
    std::memcpy(&v, base_ + bits_off_ + w * 4, 4);
    if (w == bit_words_ - 1 && (nbits & 31u) != 0) {
      v &= (1u << (nbits & 31u)) - 1u;
    }
    ones += static_cast<std::uint64_t>(std::popcount(v));
  }
  if (num_segments_ != nbits - ones) fail_format("segment map size mismatch");
  if (num_blocks_ > 0 && num_segments_ == 0) {
    fail_format("blocks present but no segment closes");
  }
  for (std::size_t s = 0; s < num_segments_; ++s) {
    const index_t r = seg_row(s);
    if (r < 0 || r >= stacked_block_rows_) {
      fail_format("segment map entry out of range");
    }
  }

  // Full payload checksum (the same FNV-1a io/binary.cpp writes): one
  // sequential pass, then the pages are dropped again so opening a huge
  // file does not charge its size to the page cache permanently.
  advise_range(0, size_, Advice::kSequential);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = kHeaderBytes; i < size_ - kChecksumBytes; ++i) {
    h ^= base_[i];
    h *= 0x100000001b3ull;
  }
  std::memcpy(&checksum_, base_ + size_ - kChecksumBytes, kChecksumBytes);
  if (h != checksum_) {
    throw DataCorruption("mapped bccoo: payload checksum mismatch in " +
                         path_);
  }
  advise_range(0, size_, Advice::kDontNeed);
}

MappedBccoo::~MappedBccoo() { unmap(); }

MappedBccoo::MappedBccoo(MappedBccoo&& o) noexcept { *this = std::move(o); }

MappedBccoo& MappedBccoo::operator=(MappedBccoo&& o) noexcept {
  if (this != &o) {
    unmap();
    path_ = std::move(o.path_);
    base_ = std::exchange(o.base_, nullptr);
    size_ = std::exchange(o.size_, 0);
    rows_ = o.rows_;
    cols_ = o.cols_;
    block_w_ = o.block_w_;
    block_h_ = o.block_h_;
    slices_ = o.slices_;
    block_rows_ = o.block_rows_;
    block_cols_ = o.block_cols_;
    stacked_block_rows_ = o.stacked_block_rows_;
    num_blocks_ = o.num_blocks_;
    num_segments_ = o.num_segments_;
    identity_segments_ = o.identity_segments_;
    checksum_ = o.checksum_;
    bits_off_ = o.bits_off_;
    bit_words_ = o.bit_words_;
    cols_off_ = o.cols_off_;
    vals_off_ = std::move(o.vals_off_);
    segmap_off_ = o.segmap_off_;
  }
  return *this;
}

void MappedBccoo::unmap() noexcept {
  if (base_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(base_), size_);
    base_ = nullptr;
    size_ = 0;
  }
}

std::uint64_t MappedBccoo::streamed_bytes() const {
  return bit_words_ * 4 + num_blocks_ * sizeof(index_t) +
         num_blocks_ * static_cast<std::uint64_t>(block_w_) *
             static_cast<std::uint64_t>(block_h_) * sizeof(real_t) +
         num_segments_ * sizeof(index_t);
}

void MappedBccoo::copy_cols(std::size_t b0, std::size_t b1,
                            index_t* dst) const {
  require(b0 <= b1 && b1 <= num_blocks_, "mapped bccoo: col range");
  std::memcpy(dst, base_ + cols_off_ + b0 * sizeof(index_t),
              (b1 - b0) * sizeof(index_t));
}

void MappedBccoo::copy_bit_words(std::size_t w0, std::size_t w1,
                                 std::uint32_t* dst) const {
  require(w0 <= w1 && w1 <= bit_words_, "mapped bccoo: bit-word range");
  std::memcpy(dst, base_ + bits_off_ + w0 * 4, (w1 - w0) * 4);
}

void MappedBccoo::copy_vals(std::size_t k, std::size_t b0, std::size_t b1,
                            real_t* dst) const {
  require(k < vals_off_.size() && b0 <= b1 && b1 <= num_blocks_,
          "mapped bccoo: value range");
  const std::size_t bw = static_cast<std::size_t>(block_w_);
  std::memcpy(dst, base_ + vals_off_[k] + b0 * bw * sizeof(real_t),
              (b1 - b0) * bw * sizeof(real_t));
}

index_t MappedBccoo::seg_row(std::size_t seg) const {
  require(seg < num_segments_, "mapped bccoo: segment index");
  index_t r;
  std::memcpy(&r, base_ + segmap_off_ + seg * sizeof(index_t),
              sizeof(index_t));
  return r;
}

void MappedBccoo::advise_range(std::size_t off, std::size_t len,
                               Advice a) const {
  if (base_ == nullptr || len == 0) return;
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  std::size_t lo = off, hi = off + len;
  if (a == Advice::kDontNeed) {
    lo = round_up(lo, page);  // inward: never drop a page someone else needs
    hi = hi / page * page;
  } else {
    lo = lo / page * page;  // outward
    hi = std::min(round_up(hi, page), size_);
  }
  if (lo >= hi) return;
  int adv = MADV_NORMAL;
  switch (a) {
    case Advice::kSequential: adv = MADV_SEQUENTIAL; break;
    case Advice::kWillNeed: adv = MADV_WILLNEED; break;
    case Advice::kDontNeed: adv = MADV_DONTNEED; break;
    default: break;
  }
  ::madvise(const_cast<unsigned char*>(base_) + lo, hi - lo, adv);
}

void MappedBccoo::advise_blocks(std::size_t b0, std::size_t b1,
                                Advice a) const {
  if (b0 >= b1 || b1 > num_blocks_) return;
  advise_range(bits_off_ + b0 / 32 * 4, ((b1 + 31) / 32 - b0 / 32) * 4, a);
  advise_range(cols_off_ + b0 * sizeof(index_t),
               (b1 - b0) * sizeof(index_t), a);
  const std::size_t bw = static_cast<std::size_t>(block_w_);
  for (std::size_t k = 0; k < vals_off_.size(); ++k) {
    advise_range(vals_off_[k] + b0 * bw * sizeof(real_t),
                 (b1 - b0) * bw * sizeof(real_t), a);
  }
}

void MappedBccoo::advise_segmap(Advice a) const {
  advise_range(segmap_off_, num_segments_ * sizeof(index_t), a);
}

}  // namespace yaspmv::io
