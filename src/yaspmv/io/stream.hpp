// Out-of-core access to the BCCOO binary container (io/binary.hpp): the
// file is memory-mapped read-only and served to the streaming engine tile
// by tile, so a matrix larger than RAM can be applied without ever
// materializing the format in memory.
//
// MappedBccoo parses the same container save_bccoo writes — geometry
// fields up front, then the bit-flag words, the raw 4-byte column index,
// the per-row value arrays and the segment map, with a trailing FNV-1a
// payload checksum.  Opening verifies the full checksum once (one
// sequential pass over the mapping, advised kSequential and dropped
// afterwards), so tampered or bit-rotted files fail typed at open instead
// of mid-apply.  The derived compressed column streams are not in the file
// (the in-memory loader rebuilds them); the streaming engine reads the raw
// index, which decodes tile-independently by construction.
//
// Array starts inside the mapping are NOT guaranteed aligned (two u8
// fields sit in the middle of the layout), so access goes through memcpy
// helpers into caller-owned scratch — which is also what keeps the
// engine's apply path free of per-apply allocations.
//
// SIGBUS: a mapped page can vanish under us (file truncated or replaced
// while mapped).  The kernel then delivers SIGBUS at the faulting load,
// which would kill a serving daemon.  with_sigbus_guard runs a callable
// with a thread-local trap armed and converts the fault into a typed
// IoError the caller's normal error handling absorbs.
#pragma once

#include <setjmp.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "yaspmv/core/status.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::io {

namespace detail {
/// Installs the process-wide SIGBUS handler once (idempotent, thread-safe).
void install_sigbus_handler();
/// The armed trap of the current thread, or null when no guard is active.
/// The handler siglongjmps here; with no trap armed it restores the default
/// disposition and re-raises (a genuine bus error elsewhere still crashes).
extern thread_local ::sigjmp_buf* tl_sigbus_target;
}  // namespace detail

/// Runs `fn` with a SIGBUS trap armed: a bus fault raised inside (a mapped
/// file shrank or was replaced under the mapping) surfaces as IoError
/// instead of terminating the process.  Guards nest per thread; the fault
/// unwinds to the innermost active guard.
template <class Fn>
void with_sigbus_guard(const char* what, Fn&& fn) {
  detail::install_sigbus_handler();
  ::sigjmp_buf buf;
  ::sigjmp_buf* const prev = detail::tl_sigbus_target;
  detail::tl_sigbus_target = &buf;
  // savemask=1: the handler's masked-signal state is rolled back too.
  if (sigsetjmp(buf, 1) != 0) {
    detail::tl_sigbus_target = prev;
    throw IoError(std::string(what) +
                  ": lost access to the mapped file (SIGBUS — truncated or "
                  "replaced while mapped)");
  }
  try {
    fn();
  } catch (...) {
    detail::tl_sigbus_target = prev;
    throw;
  }
  detail::tl_sigbus_target = prev;
}

/// madvise intent, kept abstract so <sys/mman.h> stays out of this header.
enum class Advice { kNormal, kSequential, kWillNeed, kDontNeed };

/// A BCCOO container memory-mapped read-only, exposing the geometry and
/// bounds-checked tile copies out of the raw arrays.  Move-only; the
/// mapping lives until destruction.
class MappedBccoo {
 public:
  /// Opens, maps and verifies `path`.  Throws IoError (open/map failure or
  /// a mapping that faults during verification), FormatInvalid (bad magic,
  /// version, or structurally inconsistent arrays) or DataCorruption
  /// (payload checksum mismatch).
  explicit MappedBccoo(const std::string& path);
  ~MappedBccoo();
  MappedBccoo(MappedBccoo&& o) noexcept;
  MappedBccoo& operator=(MappedBccoo&& o) noexcept;
  MappedBccoo(const MappedBccoo&) = delete;
  MappedBccoo& operator=(const MappedBccoo&) = delete;

  const std::string& path() const { return path_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::int32_t block_w() const { return block_w_; }
  std::int32_t block_h() const { return block_h_; }
  std::int32_t slices() const { return slices_; }
  std::int32_t block_rows() const { return block_rows_; }
  std::uint64_t num_blocks() const { return num_blocks_; }
  std::size_t num_segments() const { return num_segments_; }
  /// The container's stored FNV-1a payload checksum (verified at open) —
  /// a stable content id, e.g. the serve registry key.
  std::uint64_t payload_checksum() const { return checksum_; }
  /// Bytes one full apply streams off the mapping (per-block arrays plus
  /// the segment map) — the numerator of the out-of-core GB/s series.
  std::uint64_t streamed_bytes() const;

  /// Copies block columns [b0, b1) of the raw column index into `dst`
  /// (bounds-checked; the source may be unaligned).
  void copy_cols(std::size_t b0, std::size_t b1, index_t* dst) const;
  /// Copies bit-flag words [w0, w1) into `dst`.
  void copy_bit_words(std::size_t w0, std::size_t w1,
                      std::uint32_t* dst) const;
  /// Copies value row `k` of blocks [b0, b1) — (b1 - b0) * block_w reals.
  void copy_vals(std::size_t k, std::size_t b0, std::size_t b1,
                 real_t* dst) const;
  /// The stacked block row segment `seg` closes on.
  index_t seg_row(std::size_t seg) const;

  /// madvise over every per-block array's byte range for blocks [b0, b1)
  /// (page-rounded outward for kWillNeed/kSequential, inward for
  /// kDontNeed).  Advisory: errors are ignored.
  void advise_blocks(std::size_t b0, std::size_t b1, Advice a) const;
  /// madvise over the whole segment map.
  void advise_segmap(Advice a) const;

 private:
  void parse_and_verify();
  void advise_range(std::size_t off, std::size_t len, Advice a) const;
  void unmap() noexcept;

  std::string path_;
  const unsigned char* base_ = nullptr;
  std::size_t size_ = 0;

  index_t rows_ = 0, cols_ = 0;
  std::int32_t block_w_ = 1, block_h_ = 1, slices_ = 1;
  std::int32_t block_rows_ = 0, block_cols_ = 0, stacked_block_rows_ = 0;
  std::uint64_t num_blocks_ = 0;
  std::size_t num_segments_ = 0;
  bool identity_segments_ = false;
  std::uint64_t checksum_ = 0;

  // Byte offsets of the raw arrays inside the mapping.
  std::size_t bits_off_ = 0;
  std::size_t bit_words_ = 0;
  std::size_t cols_off_ = 0;
  std::vector<std::size_t> vals_off_;  ///< one per value row (block_h)
  std::size_t segmap_off_ = 0;
};

}  // namespace yaspmv::io
