#include "yaspmv/perf/model.hpp"

#include <algorithm>

namespace yaspmv::perf {

TimeBreakdown model_time(const sim::DeviceSpec& dev,
                         const sim::KernelStats& st) {
  TimeBreakdown t;
  const double bytes = static_cast<double>(st.global_load_bytes +
                                           st.global_store_bytes);
  const double bw = dev.mem_bandwidth_gbps * 1e9 * dev.mem_efficiency;
  // Warp divergence throttles the rate at which warps feed the memory
  // system, but resident-warp parallelism hides most of it: only the
  // `divergence_exposure` fraction of the slowdown is charged.
  const double f_exposed =
      1.0 + (st.divergence_factor() - 1.0) * dev.divergence_exposure;
  t.mem_s = bytes / bw * f_exposed;
  t.compute_s =
      static_cast<double>(st.flops) / (dev.peak_gflops_sp * 1e9);
  t.launch_s = static_cast<double>(st.kernel_launches) *
               dev.kernel_launch_us * 1e-6;
  t.sync_s = static_cast<double>(st.atomic_ops) * dev.atomic_op_ns * 1e-9 +
             static_cast<double>(st.spin_waits) * dev.spin_wait_ns * 1e-9;
  t.total_s = std::max(t.mem_s, t.compute_s) + t.launch_s + t.sync_s;
  return t;
}

double spmv_gflops(const sim::DeviceSpec& dev, const sim::KernelStats& st,
                   std::size_t nnz) {
  const TimeBreakdown t = model_time(dev, st);
  if (t.total_s <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(nnz) / t.total_s * 1e-9;
}

TimeBreakdown model_time_threads(const sim::DeviceSpec& dev,
                                 const sim::KernelStats& st,
                                 unsigned threads) {
  if (threads <= 1) return model_time(dev, st);
  TimeBreakdown t = model_time(dev, st);
  const double tf = static_cast<double>(threads);
  const double launches = static_cast<double>(st.kernel_launches);
  // The streamed work partitions across threads...
  t.mem_s /= tf;
  t.compute_s /= tf;
  // ...while the per-launch overhead grows with them: every launch wakes
  // (threads - 1) extra workers, and the speculative fix-up walks a
  // 4*threads-slot chunk grid (segfix.hpp's grid sizing).
  t.launch_s += launches * (tf - 1.0) * dev.thread_wake_us * 1e-6;
  t.sync_s += launches * 4.0 * tf * dev.carry_slot_ns * 1e-9;
  t.total_s = std::max(t.mem_s, t.compute_s) + t.launch_s + t.sync_s;
  return t;
}

double spmv_gflops_threads(const sim::DeviceSpec& dev,
                           const sim::KernelStats& st, std::size_t nnz,
                           unsigned threads) {
  const TimeBreakdown t = model_time_threads(dev, st, threads);
  if (t.total_s <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(nnz) / t.total_s * 1e-9;
}

TimeBreakdown model_time_dispatch(const sim::DeviceSpec& dev,
                                  const sim::KernelStats& st,
                                  unsigned threads, std::size_t blocks,
                                  bool specialized) {
  TimeBreakdown t = model_time_threads(dev, st, threads);
  if (specialized) return t;
  // Generic dispatch pays a few cycles per block for the runtime-dim
  // branches and the indirect dense-dot call; the cost sits in the
  // compute stream, so it partitions across threads like compute does.
  const double tf = static_cast<double>(threads <= 1 ? 1u : threads);
  t.compute_s +=
      static_cast<double>(blocks) * dev.block_branch_ns * 1e-9 / tf;
  t.total_s = std::max(t.mem_s, t.compute_s) + t.launch_s + t.sync_s;
  return t;
}

double spmv_gflops_dispatch(const sim::DeviceSpec& dev,
                            const sim::KernelStats& st, std::size_t nnz,
                            unsigned threads, std::size_t blocks,
                            bool specialized) {
  const TimeBreakdown t = model_time_dispatch(dev, st, threads, blocks,
                                              specialized);
  if (t.total_s <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(nnz) / t.total_s * 1e-9;
}

TimeBreakdown model_time_sharded(const sim::DeviceSpec& dev,
                                 const sim::KernelStats& st,
                                 unsigned threads, unsigned shards,
                                 std::size_t halo_bytes) {
  TimeBreakdown t = model_time_threads(dev, st, threads);
  if (shards <= 1 || dev.cross_node_gbps <= 0.0) return t;
  const double local_bw = dev.mem_bandwidth_gbps * 1e9 * dev.mem_efficiency;
  const double cross_bw = dev.cross_node_gbps * 1e9 * dev.mem_efficiency;
  if (cross_bw >= local_bw) return t;  // interconnect not the bottleneck
  // Halo bytes cross the interconnect instead of streaming locally: the
  // model already charged them at local rate inside mem_s, so only the
  // rate *difference* is added.  The halo is read concurrently by all
  // shards, hence the division — each domain pulls its own slice.
  const double halo = static_cast<double>(halo_bytes);
  t.mem_s += halo * (1.0 / cross_bw - 1.0 / local_bw) /
             static_cast<double>(shards);
  t.total_s = std::max(t.mem_s, t.compute_s) + t.launch_s + t.sync_s;
  return t;
}

double harmonic_mean(const double* v, std::size_t n) {
  if (n == 0) return 0.0;
  double inv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] <= 0.0) return 0.0;
    inv += 1.0 / v[i];
  }
  return static_cast<double>(n) / inv;
}

}  // namespace yaspmv::perf
