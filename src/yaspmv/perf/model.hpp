// Analytic performance model: KernelStats + DeviceSpec -> modeled time.
//
// SpMV is bandwidth-bound on both evaluation GPUs (machine balance ~16
// flop/byte vs SpMV's ~0.2 flop/byte), so the first-order term is DRAM
// traffic over achievable bandwidth.  Warp divergence (recorded by the
// row-parallel baselines) throttles the rate at which warps can keep the
// memory system fed, so it multiplies the memory term.  Kernel launches,
// global atomics and adjacent-sync spins add fixed overheads.
//
// The model is calibrated by construction, not fitted: all inputs are
// counted by the simulator from the actual access streams, and the device
// constants come from public datasheets.  EXPERIMENTS.md compares the
// resulting figure shapes against the paper.
#pragma once

#include <cstddef>

#include "yaspmv/sim/counters.hpp"
#include "yaspmv/sim/device.hpp"

namespace yaspmv::perf {

struct TimeBreakdown {
  double mem_s = 0;      ///< DRAM traffic term (divergence-scaled)
  double compute_s = 0;  ///< arithmetic term
  double launch_s = 0;   ///< kernel-launch overhead
  double sync_s = 0;     ///< atomics + adjacent-sync spin overhead
  double total_s = 0;
};

/// Models the execution time of the launches summarized in `st`.
TimeBreakdown model_time(const sim::DeviceSpec& dev,
                         const sim::KernelStats& st);

/// SpMV throughput in GFLOPS using the standard 2*nnz flop count (matching
/// the paper's reporting) over the modeled time.
double spmv_gflops(const sim::DeviceSpec& dev, const sim::KernelStats& st,
                   std::size_t nnz);

/// Thread-scaling variant of model_time: the memory and compute terms
/// divide across `threads` (the streams partition the non-zeros), while
/// the per-launch overhead *grows* with the requested thread count — each
/// launch wakes (threads - 1) extra workers and the speculative fix-up
/// touches a 4*threads-slot chunk grid.  `threads <= 1` returns exactly
/// model_time, so single-thread rankings are unchanged.  Candidates with
/// more launches or more bytes are penalized differently at high thread
/// counts, which is the effect `tune --rank-threads` exploits.
TimeBreakdown model_time_threads(const sim::DeviceSpec& dev,
                                 const sim::KernelStats& st,
                                 unsigned threads);

/// spmv_gflops over model_time_threads.
double spmv_gflops_threads(const sim::DeviceSpec& dev,
                           const sim::KernelStats& st, std::size_t nnz,
                           unsigned threads);

/// Dispatch-aware variant: model_time_threads plus a per-block
/// branch/indirect-call overhead term charged only when `specialized` is
/// false (the generic kernel's runtime dims, indirect dense dot, and
/// column-stream switch; see DeviceSpec::block_branch_ns).  `blocks` is the
/// format's block count — KernelStats does not carry it, so the tuner
/// passes it explicitly.  The extra work partitions across threads like the
/// compute term.  With `specialized == true` this is exactly
/// model_time_threads, so grid-dispatched rankings are unchanged.
TimeBreakdown model_time_dispatch(const sim::DeviceSpec& dev,
                                  const sim::KernelStats& st,
                                  unsigned threads, std::size_t blocks,
                                  bool specialized);

/// spmv_gflops over model_time_dispatch.
double spmv_gflops_dispatch(const sim::DeviceSpec& dev,
                            const sim::KernelStats& st, std::size_t nnz,
                            unsigned threads, std::size_t blocks,
                            bool specialized);

/// Shard-aware variant: model_time_threads plus the cross-node traffic
/// term of a `shards`-domain execution.  With shard-affine scheduling the
/// format/result streams are node-local by first touch; what crosses the
/// interconnect is the x halo — `halo_bytes` is the total bytes of x the
/// shards read outside their own column ranges per apply (the caller sums
/// it from CpuSpmv::shard_col_range overlaps).  Those bytes move at
/// `dev.cross_node_gbps` instead of local bandwidth, so the model charges
/// the *difference* between the two rates on the halo bytes only.  With
/// `shards <= 1` or `cross_node_gbps <= 0` (uniform memory) this is
/// exactly model_time_threads — single-node rankings are unchanged.
TimeBreakdown model_time_sharded(const sim::DeviceSpec& dev,
                                 const sim::KernelStats& st,
                                 unsigned threads, unsigned shards,
                                 std::size_t halo_bytes);

/// Harmonic mean of a positive sequence (the paper's average throughput).
double harmonic_mean(const double* v, std::size_t n);

/// Modeled-vs-measured bytes comparison for the compressed column streams.
///
/// The footprint model charges Table 3 *device* widths (4-byte values),
/// while the native backend measures *host* widths (8-byte doubles), so the
/// totals are not directly comparable — but the column-stream bytes are
/// (2-byte deltas / shorts and 4-byte escapes on both sides).  `ratio` is
/// measured/modeled over the full arrays; consumers should interpret a
/// ratio near 2 on the value-dominated formats as the double/float width
/// gap, not model error (EXPERIMENTS.md documents this).
struct BytesComparison {
  std::size_t modeled = 0;   ///< footprint model (device widths)
  std::size_t measured = 0;  ///< exact host bytes per native SpMV
  double ratio = 0;          ///< measured / modeled (0 when modeled == 0)
};

inline BytesComparison compare_bytes(std::size_t modeled,
                                     std::size_t measured) {
  BytesComparison c;
  c.modeled = modeled;
  c.measured = measured;
  c.ratio = modeled == 0 ? 0.0
                         : static_cast<double>(measured) /
                               static_cast<double>(modeled);
  return c;
}

}  // namespace yaspmv::perf
