// Host-side (reference) scan primitives.
//
// These are the golden implementations the simulated kernels are tested
// against, plus the helpers the format builders use (e.g. the
// first-result-entry auxiliary array of Section 2.4 is an exclusive scan
// over the bitwise inverse of the bit-flag array).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "yaspmv/util/bitops.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::scan {

/// out[i] = sum of in[0..i]  (inclusive).
template <class T>
void inclusive_scan(std::span<const T> in, std::span<T> out) {
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
}

/// out[i] = sum of in[0..i-1]  (exclusive, identity first).
template <class T>
void exclusive_scan(std::span<const T> in, std::span<T> out) {
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    const T v = in[i];
    out[i] = acc;
    acc += v;
  }
}

/// Segmented inclusive scan with *start flags*: flag[i] == 1 means element i
/// begins a new segment (Figure 7 of the paper).
template <class T>
void segmented_inclusive_scan(std::span<const T> in,
                              std::span<const std::uint8_t> start_flags,
                              std::span<T> out) {
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (start_flags[i]) acc = T{};
    acc += in[i];
    out[i] = acc;
  }
}

/// Segmented sum driven by the BCCOO *bit flags* (0 = row stop, i.e. the
/// element is the last of its segment).  Returns one sum per segment in
/// order.  A trailing unterminated segment (all-ones padding) is dropped,
/// matching the kernel semantics where padded blocks contribute nothing.
template <class T>
std::vector<T> segmented_sums_from_bitflags(std::span<const T> in,
                                            const BitArray& bit_flags) {
  std::vector<T> sums;
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    if (!bit_flags.get(i)) {
      sums.push_back(acc);
      acc = T{};
    }
  }
  return sums;
}

/// Converts BCCOO bit flags to the start flags of a conventional segmented
/// scan: element i starts a segment iff i == 0 or element i-1 was a row stop.
inline std::vector<std::uint8_t> start_flags_from_bitflags(
    const BitArray& bit_flags) {
  std::vector<std::uint8_t> start(bit_flags.size());
  for (std::size_t i = 0; i < bit_flags.size(); ++i) {
    start[i] = (i == 0 || !bit_flags.get(i - 1)) ? 1 : 0;
  }
  return start;
}

/// Reconstructs the blocked row index of every block from the bit flags
/// (lossless-compression check from Section 2.2): the row index of block i
/// is the number of row stops strictly before i.
inline std::vector<index_t> row_indices_from_bitflags(
    const BitArray& bit_flags) {
  std::vector<index_t> rows(bit_flags.size());
  index_t r = 0;
  for (std::size_t i = 0; i < bit_flags.size(); ++i) {
    rows[i] = r;
    if (!bit_flags.get(i)) ++r;
  }
  return rows;
}

}  // namespace yaspmv::scan
