// Tree-based (Blelloch-style) workgroup segmented scan — the *baseline*
// algorithm the paper replaces (Section 3.1 and Figure 14's "COO" stage).
//
// The up-sweep/down-sweep tree has 2*log2(n) barrier-separated stages, and at
// stage d only n/2^(d+1) threads are active while the whole warp stays
// resident — the load-imbalance cost the paper attributes to tree-based
// scans.  We execute the real algorithm (correct results) and charge the
// idle lanes to the divergence counters so the performance model sees the
// inefficiency.
#pragma once

#include <cstdint>
#include <span>

#include "yaspmv/sim/dispatch.hpp"

namespace yaspmv::scan {

/// In-place *inclusive* segmented scan over x[0..n) where n == wg.wg_size()
/// (must be a power of two).  `heads[i]` = 1 iff element i starts a segment.
/// `work_flags` and `input_copy` are scratch shared arrays of size n; `heads`
/// is preserved.
inline void wg_tree_segscan_inclusive(sim::WorkgroupCtx& wg,
                                      std::span<double> x,
                                      std::span<const std::uint8_t> heads,
                                      std::span<std::uint8_t> work_flags,
                                      std::span<double> input_copy) {
  const int n = wg.wg_size();
  if ((n & (n - 1)) != 0) {
    throw sim::SimError("tree segmented scan requires power-of-two workgroup");
  }

  wg.phase([&](int t) {
    const auto ti = static_cast<std::size_t>(t);
    input_copy[ti] = x[ti];
    work_flags[ti] = heads[ti];
  });

  // Up-sweep (reduce).
  for (int d = 1; d < n; d <<= 1) {
    const int active = n / (2 * d);
    wg.phase([&](int t) {
      if (t < active) {
        const std::size_t ai = static_cast<std::size_t>(d * (2 * t + 1) - 1);
        const std::size_t bi = static_cast<std::size_t>(d * (2 * t + 2) - 1);
        if (!work_flags[bi]) {
          x[bi] += x[ai];
          wg.stats().flops += 1;
        }
        work_flags[bi] = work_flags[bi] | work_flags[ai];
      }
    });
    // Charge idle lanes: the whole workgroup is resident for this stage.
    wg.stats().ideal_lanes += static_cast<std::size_t>(active);
    wg.stats().serialized_lanes += static_cast<std::size_t>(n);
  }

  // Down-sweep (exclusive scan with segment resets).
  wg.phase([&](int t) {
    if (t == 0) x[static_cast<std::size_t>(n - 1)] = 0.0;
  });
  for (int d = n / 2; d >= 1; d >>= 1) {
    const int active = n / (2 * d);
    wg.phase([&](int t) {
      if (t < active) {
        const std::size_t ai = static_cast<std::size_t>(d * (2 * t + 1) - 1);
        const std::size_t bi = static_cast<std::size_t>(d * (2 * t + 2) - 1);
        const double tmp = x[ai];
        x[ai] = x[bi];
        if (ai + 1 < static_cast<std::size_t>(n) && heads[ai + 1]) {
          x[bi] = 0.0;
        } else if (work_flags[ai]) {
          x[bi] = tmp;
        } else {
          x[bi] = tmp + x[bi];
          wg.stats().flops += 1;
        }
        work_flags[ai] = 0;
      }
    });
    wg.stats().ideal_lanes += static_cast<std::size_t>(active);
    wg.stats().serialized_lanes += static_cast<std::size_t>(n);
  }

  // Exclusive -> inclusive: add back the original inputs.
  wg.phase([&](int t) {
    const auto ti = static_cast<std::size_t>(t);
    x[ti] = (heads[ti] ? 0.0 : x[ti]) + input_copy[ti];
    wg.stats().flops += 1;
  });
}

}  // namespace yaspmv::scan
