// Workgroup-level parallel segmented scan on the simulator (the scan of the
// last_partial_sums array, Section 3.2.2; algorithm of Sengupta et al. [18]).
//
// The scanned elements are h-vectors (h = block height): thread t's last
// partial sums for the h rows inside a block-row.  We use the
// Hillis–Steele-style segmented scan: log2(n) steps, each a barrier-delimited
// phase, combining (value, start-flag) pairs.  Buffers ping-pong between two
// shared arrays so a phase never reads what it wrote.
#pragma once

#include <cstdint>
#include <span>

#include "yaspmv/sim/dispatch.hpp"

namespace yaspmv::scan {

/// In-place segmented inclusive scan over `sums` (n entries of h doubles,
/// entry t at sums[t*h .. t*h+h)) with `start_flags[t]` = 1 when entry t
/// begins a segment.  `tmp`/`tmp_flags` are scratch shared arrays of the same
/// shape.  n must equal wg.wg_size().
inline void wg_segmented_scan_hvec(sim::WorkgroupCtx& wg,
                                   std::span<double> sums,
                                   std::span<std::uint8_t> start_flags,
                                   std::span<double> tmp,
                                   std::span<std::uint8_t> tmp_flags, int h) {
  const int n = wg.wg_size();
  std::span<double> src = sums, dst = tmp;
  std::span<std::uint8_t> srcf = start_flags, dstf = tmp_flags;
  for (int d = 1; d < n; d <<= 1) {
    wg.phase([&](int t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      if (t >= d && !srcf[ti]) {
        for (int k = 0; k < h; ++k) {
          dst[ti * static_cast<std::size_t>(h) + static_cast<std::size_t>(k)] =
              src[ti * static_cast<std::size_t>(h) + static_cast<std::size_t>(k)] +
              src[(ti - static_cast<std::size_t>(d)) * static_cast<std::size_t>(h) +
                  static_cast<std::size_t>(k)];
        }
        dstf[ti] = srcf[ti - static_cast<std::size_t>(d)];
      } else {
        for (int k = 0; k < h; ++k) {
          dst[ti * static_cast<std::size_t>(h) + static_cast<std::size_t>(k)] =
              src[ti * static_cast<std::size_t>(h) + static_cast<std::size_t>(k)];
        }
        dstf[ti] = srcf[ti];
      }
      wg.stats().flops += static_cast<std::size_t>(h);
    });
    std::swap(src, dst);
    std::swap(srcf, dstf);
  }
  if (src.data() != sums.data()) {
    // Odd number of steps: copy the result back into the caller's buffer.
    wg.phase([&](int t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      for (int k = 0; k < h; ++k) {
        sums[ti * static_cast<std::size_t>(h) + static_cast<std::size_t>(k)] =
            src[ti * static_cast<std::size_t>(h) + static_cast<std::size_t>(k)];
      }
      start_flags[ti] = srcf[ti];
    });
  }
}

}  // namespace yaspmv::scan
