#include "yaspmv/serve/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "yaspmv/util/rng.hpp"

namespace yaspmv::serve {

namespace {

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw IoError("client: bad socket path '" + path + "'");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw IoError(std::string("client: socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int e = errno;
    ::close(fd);
    throw IoError("client: connect(" + path + "): " + std::strerror(e));
  }
  return fd;
}

/// Per-call jitter source: seeded from the clock, the pid and the client
/// address so N processes (or N clients in one process) rejected by the same
/// overload burst draw different backoff schedules.
SplitMix64 backoff_rng(const void* self) {
  return SplitMix64(
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (static_cast<std::uint64_t>(::getpid()) << 32) ^
      reinterpret_cast<std::uintptr_t>(self));
}

/// Uniform in [backoff/2, backoff]: keeps the exponential envelope (the
/// server still sees pressure halve per round) while decorrelating arrival
/// times — deterministic equal backoffs re-synchronize the very burst the
/// backoff was meant to spread.
int jittered_ms(int backoff, SplitMix64& rng) {
  const int half = backoff / 2;
  return half + static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(backoff - half + 1)));
}

}  // namespace

Client::Client(std::string socket_path) : path_(std::move(socket_path)) {
  fd_ = connect_unix(path_);
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::wait_for_server(const std::string& socket_path, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    try {
      Client probe(socket_path);
      return true;
    } catch (const IoError&) {
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::vector<std::uint8_t> Client::roundtrip(
    MsgType type, const std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) throw IoError("client: connection is closed");
  write_frame(fd_, type, payload);
  Frame f;
  if (!read_frame(fd_, f)) {
    throw IoError("client: server closed the connection before replying");
  }
  return std::move(f.payload);
}

RegisterResult Client::register_matrix(const fmt::Coo& a, bool force_retune) {
  WireWriter w;
  w.put<std::uint32_t>(force_retune ? 1u : 0u);
  w.put<std::int32_t>(a.rows);
  w.put<std::int32_t>(a.cols);
  w.put_vec(a.row_idx);
  w.put_vec(a.col_idx);
  w.put_vec(a.vals);
  const auto bytes = roundtrip(MsgType::kRegister, w.bytes());
  WireReader r(bytes);
  RegisterResult out;
  out.status = get_reply_status(r);
  if (out.status.status != ServeStatus::kOk) return out;
  out.matrix_id = r.get<std::uint64_t>();
  out.warm = r.get<std::uint8_t>() != 0;
  out.newly_registered = r.get<std::uint8_t>() != 0;
  out.tuning_seconds = r.get<double>();
  out.register_seconds = r.get<double>();
  out.rows = r.get<std::int32_t>();
  out.cols = r.get<std::int32_t>();
  out.evaluated = r.get<std::int32_t>();
  out.kernel = r.get_string();
  return out;
}

RegisterResult Client::register_path(const std::string& file_path) {
  WireWriter w;
  w.put<std::uint32_t>(0);  // flags (reserved)
  w.put_string(file_path);
  const auto bytes = roundtrip(MsgType::kRegisterPath, w.bytes());
  // The reply layout is handle_register's, so the parse is identical.
  WireReader r(bytes);
  RegisterResult out;
  out.status = get_reply_status(r);
  if (out.status.status != ServeStatus::kOk) return out;
  out.matrix_id = r.get<std::uint64_t>();
  out.warm = r.get<std::uint8_t>() != 0;
  out.newly_registered = r.get<std::uint8_t>() != 0;
  out.tuning_seconds = r.get<double>();
  out.register_seconds = r.get<double>();
  out.rows = r.get<std::int32_t>();
  out.cols = r.get<std::int32_t>();
  out.evaluated = r.get<std::int32_t>();
  out.kernel = r.get_string();
  return out;
}

SpmvResult Client::spmv(std::uint64_t matrix_id, std::span<const real_t> x,
                        const RequestOptions& opt) {
  WireWriter w;
  w.put<std::uint64_t>(matrix_id);
  w.put<std::uint32_t>(opt.deadline_ms);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(opt.inject));
  w.put<std::uint32_t>(opt.inject_arg);
  w.put<std::uint8_t>(opt.verified ? 1u : 0u);
  std::vector<real_t> xv(x.begin(), x.end());
  w.put_vec(xv);
  const std::vector<std::uint8_t> req = w.take();

  SpmvResult out;
  int backoff = opt.backoff_ms;
  SplitMix64 rng = backoff_rng(this);
  for (int attempt = 0;; ++attempt) {
    out.admission_attempts = attempt + 1;
    const auto bytes = roundtrip(MsgType::kSpmv, req);
    WireReader r(bytes);
    out.status = get_reply_status(r);
    if (out.status.status == ServeStatus::kOverloaded &&
        attempt < opt.retries) {
      // Backpressure: the server said "not now", not "never" — retry with
      // jittered exponential backoff so a burst spreads out instead of
      // re-arriving in lockstep.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(jittered_ms(backoff, rng)));
      backoff = std::min(backoff * 2, 1000);
      continue;
    }
    if (out.status.status != ServeStatus::kOk) return out;
    out.attempts = r.get<std::uint32_t>();
    out.ladder_step = r.get<std::uint32_t>();
    out.recovered = r.get<std::uint8_t>() != 0;
    out.verified = r.get<std::uint8_t>() != 0;
    out.path = r.get_string();
    const auto nfaults = r.get<std::uint32_t>();
    out.faults.reserve(nfaults);
    for (std::uint32_t i = 0; i < nfaults; ++i) {
      SpmvResult::Fault fr;
      fr.status = static_cast<Status>(r.get<std::uint16_t>());
      fr.path = r.get_string();
      fr.journal_file = r.get_string();
      out.faults.push_back(std::move(fr));
    }
    out.y = r.get_vec<real_t>();
    return out;
  }
}

SolveResult Client::solve(std::uint64_t matrix_id, std::span<const real_t> b,
                          int solver, double tol, std::uint32_t max_iters,
                          const RequestOptions& opt) {
  WireWriter w;
  w.put<std::uint64_t>(matrix_id);
  w.put<std::uint32_t>(opt.deadline_ms);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(opt.inject));
  w.put<std::uint32_t>(opt.inject_arg);
  w.put<std::uint8_t>(opt.verified ? 1u : 0u);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(solver));
  w.put<double>(tol);
  w.put<std::uint32_t>(max_iters);
  std::vector<real_t> bv(b.begin(), b.end());
  w.put_vec(bv);
  const std::vector<std::uint8_t> req = w.take();

  SolveResult out;
  int backoff = opt.backoff_ms;
  SplitMix64 rng = backoff_rng(this);
  for (int attempt = 0;; ++attempt) {
    out.admission_attempts = attempt + 1;
    const auto bytes = roundtrip(MsgType::kSolve, req);
    WireReader r(bytes);
    out.status = get_reply_status(r);
    if (out.status.status == ServeStatus::kOverloaded &&
        attempt < opt.retries) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(jittered_ms(backoff, rng)));
      backoff = std::min(backoff * 2, 1000);
      continue;
    }
    if (out.status.status != ServeStatus::kOk) return out;
    out.iterations = r.get<std::uint32_t>();
    out.converged = r.get<std::uint8_t>() != 0;
    out.rel_residual = r.get<double>();
    out.verified = r.get<std::uint8_t>() != 0;
    out.integrity_faults = r.get<std::uint32_t>();
    out.rollbacks = r.get<std::uint32_t>();
    out.x = r.get_vec<real_t>();
    return out;
  }
}

StatsSnapshot Client::stats() {
  const auto bytes = roundtrip(MsgType::kStats, {});
  WireReader r(bytes);
  StatsSnapshot s;
  s.status = get_reply_status(r);
  if (s.status.status != ServeStatus::kOk) return s;
  s.accepted = r.get<std::uint64_t>();
  s.completed = r.get<std::uint64_t>();
  s.overloaded = r.get<std::uint64_t>();
  s.deadline_expired = r.get<std::uint64_t>();
  s.faulted = r.get<std::uint64_t>();
  s.recovered = r.get<std::uint64_t>();
  s.protocol_errors = r.get<std::uint64_t>();
  s.disconnects = r.get<std::uint64_t>();
  s.shed_on_drain = r.get<std::uint64_t>();
  s.registered = r.get<std::uint64_t>();
  s.plan_cache_hits = r.get<std::uint64_t>();
  s.plan_cache_misses = r.get<std::uint64_t>();
  s.inflight = r.get<std::uint64_t>();
  s.verified_requests = r.get<std::uint64_t>();
  s.integrity_faults = r.get<std::uint64_t>();
  s.integrity_recovered = r.get<std::uint64_t>();
  s.executors = r.get<std::uint64_t>();
  s.apply_threads = r.get<std::uint64_t>();
  s.grid_plans = r.get<std::uint64_t>();
  s.generic_plans = r.get<std::uint64_t>();
  // Appended-last fields: absent from an older server's reply, so guard on
  // what is actually left in the frame instead of assuming.
  if (r.remaining() >= sizeof(std::uint64_t)) {
    s.stream_registered = r.get<std::uint64_t>();
  }
  if (r.remaining() >= sizeof(std::uint64_t)) {
    s.stream_applies = r.get<std::uint64_t>();
  }
  if (r.remaining() >= sizeof(std::uint64_t)) {
    s.shard_domains = r.get<std::uint64_t>();
  }
  return s;
}

ReplyStatus Client::shutdown_server() {
  const auto bytes = roundtrip(MsgType::kShutdown, {});
  WireReader r(bytes);
  return get_reply_status(r);
}

}  // namespace yaspmv::serve
