// Client side of the serving protocol: a thin synchronous library over one
// Unix-domain connection.  One Client = one connection = one outstanding
// request (the protocol is strictly request/reply per connection); it is NOT
// thread-safe — concurrent callers each open their own Client, which is also
// how they get real server-side concurrency.
//
// Error model: transport and framing problems throw typed SpmvErrors
// (IoError / FormatInvalid) — the connection is unusable afterwards.
// *Application* outcomes (overloaded, deadline expired, faulted, ...) never
// throw: they come back in the result's ReplyStatus so a caller can program
// against the taxonomy, retry, or degrade.  spmv/solve optionally retry
// kOverloaded themselves with exponential backoff (RequestOptions::retries).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "yaspmv/formats/coo.hpp"
#include "yaspmv/serve/protocol.hpp"

namespace yaspmv::serve {

struct RequestOptions {
  std::uint32_t deadline_ms = 0;  ///< 0 = no deadline
  int retries = 0;                ///< extra attempts after kOverloaded
  /// First backoff; doubles per retry up to 1s.  Each sleep is *jittered*
  /// (uniform in [backoff/2, backoff]) so clients rejected by the same
  /// overload burst spread out instead of re-arriving in lockstep.
  int backoff_ms = 10;
  Inject inject = Inject::kNone;  ///< test hook (server must enable_inject)
  std::uint32_t inject_arg = 0;
  /// Run this request checksum-verified: the apply (or every solver apply)
  /// is checked against the format's ABFT column checksums, and detected
  /// corruption is recovered or surfaced as kFaulted/kIntegrityFault —
  /// never returned as a silently wrong y.
  bool verified = false;
};

struct RegisterResult {
  ReplyStatus status;
  std::uint64_t matrix_id = 0;
  bool warm = false;              ///< plan came from the durable cache
  bool newly_registered = false;  ///< this call created the entry
  double tuning_seconds = 0;      ///< cold: spent now; warm: what was saved
  double register_seconds = 0;    ///< registration wall clock on the server
  std::int32_t rows = 0, cols = 0;
  int evaluated = 0;
  /// Kernel id the stored plan dispatches to on the native backend
  /// ("grid/..." specialization or "generic").
  std::string kernel;
};

struct SpmvResult {
  ReplyStatus status;
  std::vector<real_t> y;
  std::uint32_t attempts = 0;     ///< ladder attempts inside the engine
  std::uint32_t ladder_step = 0;
  bool recovered = false;
  bool verified = false;
  std::string path;               ///< label of the rung that produced y
  struct Fault {
    Status status = Status::kOk;
    std::string path;
    std::string journal_file;
  };
  std::vector<Fault> faults;
  int admission_attempts = 1;     ///< client-side tries incl. overload retries

  bool ok() const { return status.status == ServeStatus::kOk; }
};

struct SolveResult {
  ReplyStatus status;
  std::vector<real_t> x;
  std::uint32_t iterations = 0;
  bool converged = false;
  double rel_residual = 0;
  bool verified = false;                 ///< ran on the self-checking solvers
  std::uint32_t integrity_faults = 0;    ///< checksum mismatches caught
  std::uint32_t rollbacks = 0;           ///< checkpoint restores performed
  int admission_attempts = 1;

  bool ok() const { return status.status == ServeStatus::kOk; }
};

/// Server counters as reported by a kStats request (mirrors ServerStats
/// without pulling the server's threading machinery into client builds).
struct StatsSnapshot {
  ReplyStatus status;
  std::uint64_t accepted = 0, completed = 0, overloaded = 0,
                deadline_expired = 0, faulted = 0, recovered = 0,
                protocol_errors = 0, disconnects = 0, shed_on_drain = 0,
                registered = 0, plan_cache_hits = 0, plan_cache_misses = 0,
                inflight = 0, verified_requests = 0, integrity_faults = 0,
                integrity_recovered = 0, executors = 0, apply_threads = 0,
                grid_plans = 0, generic_plans = 0, stream_registered = 0,
                stream_applies = 0, shard_domains = 0;
};

class Client {
 public:
  /// Connects immediately; throws IoError when the socket is not there.
  explicit Client(std::string socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Polls connect() until the daemon answers or `timeout_ms` elapses —
  /// the standard "wait for the server to come up" helper for tests and
  /// scripted clients.  Returns false on timeout.
  static bool wait_for_server(const std::string& socket_path, int timeout_ms);

  /// Registers (or re-finds) a matrix; the server tunes on a cache miss.
  RegisterResult register_matrix(const fmt::Coo& a, bool force_retune = false);

  /// Registers a matrix by container *path*: the server mmaps the .bccoo
  /// file (verifying its checksum) and serves applies out-of-core, tile by
  /// tile — the matrix never loads into server memory.  The id is the
  /// file's payload checksum; kernel comes back "stream/tile".
  RegisterResult register_path(const std::string& file_path);

  /// y = A x through the server's resilient ladder.
  SpmvResult spmv(std::uint64_t matrix_id, std::span<const real_t> x,
                  const RequestOptions& opt = {});

  /// Iterative solve; `solver` is 1 = cg, 2 = bicgstab.
  SolveResult solve(std::uint64_t matrix_id, std::span<const real_t> b,
                    int solver, double tol = 1e-10,
                    std::uint32_t max_iters = 1000,
                    const RequestOptions& opt = {});

  StatsSnapshot stats();

  /// Asks the server to drain (same path as SIGTERM).  Returns the ack
  /// status; the server finishes in-flight work before exiting.
  ReplyStatus shutdown_server();

  int fd() const { return fd_; }
  /// Hard-closes the connection (mid-request disconnects in the chaos tests).
  void close();

 private:
  std::vector<std::uint8_t> roundtrip(MsgType type,
                                      const std::vector<std::uint8_t>& payload);

  std::string path_;
  int fd_ = -1;
};

}  // namespace yaspmv::serve
