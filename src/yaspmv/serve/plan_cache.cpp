#include "yaspmv/serve/plan_cache.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include <unistd.h>

#include "yaspmv/core/status.hpp"

namespace yaspmv::serve {

namespace fs = std::filesystem;

PlanCache::PlanCache(std::string dir)
    : dir_(dir.empty() ? default_dir() : std::move(dir)) {}

std::string PlanCache::default_dir() {
  if (const char* env = std::getenv("YASPMV_PLAN_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && xdg[0] != '\0') {
    return std::string(xdg) + "/yaspmv/plans";
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && home[0] != '\0') {
    return std::string(home) + "/.cache/yaspmv/plans";
  }
  return ".yaspmv/plans";
}

std::string PlanCache::path_for(std::uint64_t payload_checksum,
                                const std::string& device) const {
  // Device names come from DeviceSpec::name ("GTX680"); keep only filename-
  // safe characters so a hostile device string cannot escape the directory.
  std::string dev;
  for (const char c : device) {
    dev += std::isalnum(static_cast<unsigned char>(c))
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
               : '_';
  }
  char sum[17];
  std::snprintf(sum, sizeof sum, "%016llx",
                static_cast<unsigned long long>(payload_checksum));
  return dir_ + "/p" + sum + "-" + dev + "-v" +
         std::to_string(io::kPlanCodeVersion) + ".plan";
}

std::optional<io::PlanRecord> PlanCache::load(
    std::uint64_t payload_checksum, const std::string& device) const {
  try {
    io::PlanRecord p = io::load_plan_file(path_for(payload_checksum, device));
    // The file name encodes the key, but names can be forged or copied:
    // trust only the checksummed record contents.
    if (p.code_version != io::kPlanCodeVersion) return std::nullopt;
    if (p.payload_checksum != payload_checksum) return std::nullopt;
    if (p.device != device) return std::nullopt;
    return p;
  } catch (const SpmvError&) {
    // Missing, truncated, corrupt, wrong magic/version: all of it is a miss.
    return std::nullopt;
  }
}

bool PlanCache::store(const io::PlanRecord& p) const {
  // Unique temp name per (process, store): a concurrent writer in another
  // process — or this one — never writes the same temp file, and rename()
  // makes the last completed store win atomically.
  static std::atomic<std::uint64_t> seq{0};
  const std::string final_path = path_for(p.payload_checksum, p.device);
  const std::string tmp = final_path + ".tmp." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(seq.fetch_add(1));
  try {
    std::error_code ec;
    fs::create_directories(dir_, ec);  // ec ignored: open failure reports it
    io::save_plan_file(tmp, p);
    if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  } catch (const SpmvError&) {
    std::remove(tmp.c_str());
    return false;
  }
}

int PlanCache::sweep_stale_temps() const {
  int removed = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.find(".tmp.") == std::string::npos) continue;
    std::error_code tec;
    const auto mtime = fs::last_write_time(*it, tec);
    if (tec) continue;
    const auto age = fs::file_time_type::clock::now() - mtime;
    if (age > std::chrono::hours(1)) {
      if (fs::remove(it->path(), tec) && !tec) ++removed;
    }
  }
  return removed;
}

}  // namespace yaspmv::serve
