// Crash-safe durable plan cache: auto-tuned plans persisted across process
// restarts (the paper's Section 5 compiled-kernel cache, made durable).
//
// Layout: one file per (matrix payload checksum, device) pair under a cache
// directory (default ~/.cache/yaspmv/plans, see default_dir()).  Writes are
// atomic: the record goes to a unique temp file in the same directory and is
// renamed over the final name, so a reader — or a concurrent writer, or a
// writer killed mid-write — can never observe a half-written plan under the
// final name.  Reads re-verify everything: container checksum, code version,
// device, and the payload checksum embedded in the record; any mismatch,
// truncation or bit flip is a MISS (re-tune), never an exception out of the
// cache.  Leftover temp files from crashed writers are swept on demand.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "yaspmv/io/plan_io.hpp"

namespace yaspmv::serve {

class PlanCache {
 public:
  /// `dir` empty selects default_dir().  The directory is created lazily on
  /// the first store (a read-only consumer never mkdirs).
  explicit PlanCache(std::string dir = "");

  /// Resolution order: $YASPMV_PLAN_CACHE_DIR, $XDG_CACHE_HOME/yaspmv/plans,
  /// $HOME/.cache/yaspmv/plans, and finally ./.yaspmv/plans for processes
  /// with no home at all.
  static std::string default_dir();

  const std::string& dir() const { return dir_; }

  /// Final on-disk path for a key (exposed for tests and tooling).
  std::string path_for(std::uint64_t payload_checksum,
                       const std::string& device) const;

  /// Loads the plan for (checksum, device) at the current kPlanCodeVersion.
  /// Every failure mode — missing file, truncation, bad magic, checksum
  /// mismatch, stale code version, wrong device or matrix — returns nullopt.
  std::optional<io::PlanRecord> load(std::uint64_t payload_checksum,
                                     const std::string& device) const;

  /// Atomically persists `p` (temp file + rename).  Returns false on I/O
  /// failure (unwritable dir, disk full) instead of throwing: a server that
  /// cannot persist a plan keeps serving, it just re-tunes next boot.
  bool store(const io::PlanRecord& p) const;

  /// Removes leftover "*.tmp.*" files from writers that died mid-store.
  /// Returns the number removed.  Safe to call while other processes write:
  /// only files older than ~an hour are swept, so an in-flight temp file of
  /// a live writer is never yanked from under its rename.
  int sweep_stale_temps() const;

 private:
  std::string dir_;
};

}  // namespace yaspmv::serve
