// Wire protocol of the yaspmv serving daemon.
//
// Requests travel over a Unix-domain stream socket as length-prefixed,
// checksummed binary frames:
//
//   u32 magic 'YSRV' | u16 version | u16 type | u64 payload_len |
//   payload bytes    | u64 FNV-1a(version, type, payload_len, payload)
//
// The checksum covers everything after the magic, so a torn write, a
// truncated stream or in-flight corruption is detected before any payload
// field is interpreted.  Every request frame gets exactly one response frame
// of the same type whose payload starts with a common status block
// (ServeStatus + the library Status of the underlying SpmvError + a detail
// string); type-specific result fields follow only when the status is kOk.
// A malformed frame is answered with a kProtocolError response when the
// socket still works, and the connection is closed either way — one
// misbehaving client never takes the server down.
//
// Numbers are little-endian host order (the daemon and its clients share a
// machine by construction: the transport is a Unix socket).
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/types.h>

#include "yaspmv/core/status.hpp"
#include "yaspmv/util/common.hpp"

namespace yaspmv::serve {

constexpr std::uint32_t kFrameMagic = 0x56525359;  // "YSRV"
/// v2: per-request `verified` flag on kSpmv/kSolve, integrity counters in
/// the kStats reply, Inject::kCorruptPublish.  Versions are exact-match (the
/// daemon and its clients ship together), so v1 peers are rejected cleanly
/// at the frame layer instead of misparsing the grown payloads.
constexpr std::uint16_t kProtocolVersion = 2;
/// Default upper bound on one frame's payload (a registration carries whole
/// matrices; 1 GiB is far above any test matrix and far below "runaway").
/// Deployments front the daemon with ServerOptions::max_frame_bytes to
/// reject hostile lengths before any allocation happens.
constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

/// Request/response frame types.  A response reuses its request's type.
enum class MsgType : std::uint16_t {
  kRegister = 1,  ///< register a COO matrix; tunes (or loads) its plan
  kSpmv = 2,      ///< y = A x through the resilient degradation ladder
  kSolve = 3,     ///< iterative solve on the native pipeline
  kStats = 4,     ///< server counters (admission, faults, drain)
  kShutdown = 5,  ///< request a graceful drain (same path as SIGTERM)
  kRegisterPath = 6,  ///< register a BCCOO container by file path: the
                      ///  server mmaps it and serves applies out-of-core
                      ///  (tile streaming) without loading the matrix
};

/// Server-level outcome of a request — the error taxonomy a client programs
/// against.  kFaulted additionally carries the library `Status` of the
/// SpmvError that the degradation ladder could not absorb.
enum class ServeStatus : std::uint16_t {
  kOk = 0,
  kOverloaded = 1,       ///< admission control rejected the request
  kDeadlineExpired = 2,  ///< deadline passed while queued; dropped at dequeue
  kUnknownMatrix = 3,    ///< matrix id was never registered
  kBadRequest = 4,       ///< malformed fields (size mismatch, bad enum, ...)
  kFaulted = 5,          ///< a typed SpmvError escaped the ladder (NaN policy,
                         ///< validate() failure, injected fault)
  kShuttingDown = 6,     ///< server is draining; no new admissions
  kProtocolError = 7,    ///< unreadable frame (bad magic/checksum/length)
  kInternal = 8,         ///< unexpected non-SpmvError exception
};

inline const char* to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kOverloaded: return "overloaded";
    case ServeStatus::kDeadlineExpired: return "deadline-expired";
    case ServeStatus::kUnknownMatrix: return "unknown-matrix";
    case ServeStatus::kBadRequest: return "bad-request";
    case ServeStatus::kFaulted: return "faulted";
    case ServeStatus::kShuttingDown: return "shutting-down";
    case ServeStatus::kProtocolError: return "protocol-error";
    case ServeStatus::kInternal: return "internal";
  }
  return "unknown";
}

/// Test-only fault hooks a request may carry (honored only when the server
/// runs with `enable_inject`; rejected as kBadRequest otherwise).
enum class Inject : std::uint8_t {
  kNone = 0,
  kNan = 1,           ///< poison x[0] with NaN -> NaN-policy typed error
  kDropPublish = 2,   ///< sim fault: degrades down the ladder, recovers
  kCorruptCache = 3,  ///< sim fault: strategy fallback
  kFailMain = 4,      ///< sim fault: every simulated rung fails -> CPU rung
  kSleepMs = 5,       ///< hold the executor for `arg` ms (queue-buildup hook)
  kCorruptPublish = 6,  ///< sim fault: silently perturbed partial sums — only
                        ///< a verified request (or a verify-enabled server)
                        ///< can tell the reply went wrong
};

/// FNV-1a 64-bit, the same accumulation the binary/journal containers use.
class Fnv1a64 {
 public:
  void update(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

// ---------------------------------------------------------------------------
// Payload encoding: flat little-endian fields appended to a byte buffer.
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  template <class T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }
  void put_string(const std::string& s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  template <class T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    const auto old = buf_.size();
    buf_.resize(old + v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(buf_.data() + old, v.data(), v.size() * sizeof(T));
    }
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads the flat fields back; every getter throws IoError on truncation so
/// a short or lying payload surfaces as a classified protocol failure.
class WireReader {
 public:
  WireReader(const std::uint8_t* p, std::size_t n) : p_(p), end_(p + n) {}
  explicit WireReader(const std::vector<std::uint8_t>& b)
      : WireReader(b.data(), b.size()) {}

  template <class T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }
  std::string get_string(std::uint32_t max_len = 1u << 20) {
    const auto n = get<std::uint32_t>();
    if (n > max_len) throw IoError("wire: string length implausible");
    need(n);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }
  template <class T>
  std::vector<T> get_vec(std::uint64_t max_elems = 1ull << 28) {
    const auto n = get<std::uint64_t>();
    if (n > max_elems) throw IoError("wire: array length implausible");
    need(n * sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n != 0) {
      std::memcpy(v.data(), p_, static_cast<std::size_t>(n) * sizeof(T));
      p_ += n * sizeof(T);
    }
    return v;
  }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

 private:
  void need(std::uint64_t n) const {
    if (static_cast<std::uint64_t>(end_ - p_) < n) {
      throw IoError("wire: truncated payload");
    }
  }
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// ---------------------------------------------------------------------------
// Frame transport over a connected socket fd.
// ---------------------------------------------------------------------------

/// Writes all of `p[0..n)`, retrying on EINTR/partial writes.  MSG_NOSIGNAL:
/// a peer that vanished mid-reply produces EPIPE, never a process signal.
inline void write_all(int fd, const void* p, std::size_t n) {
  const auto* b = static_cast<const char*>(p);
  while (n > 0) {
    const ssize_t w = ::send(fd, b, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket write: ") + std::strerror(errno));
    }
    b += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes; `eof_ok` allows a clean EOF *before the first
/// byte* (returns false) so an idle peer closing between frames is not an
/// error, while EOF mid-frame always is.
inline bool read_exact(int fd, void* p, std::size_t n, bool eof_ok) {
  auto* b = static_cast<char*>(p);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, b + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket read: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw IoError("socket read: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

struct Frame {
  MsgType type = MsgType::kStats;
  std::vector<std::uint8_t> payload;
};

inline void write_frame(int fd, MsgType type,
                        const std::vector<std::uint8_t>& payload) {
  struct Header {
    std::uint32_t magic;
    std::uint16_t version;
    std::uint16_t type;
    std::uint64_t len;
  } h{kFrameMagic, kProtocolVersion, static_cast<std::uint16_t>(type),
      payload.size()};
  static_assert(sizeof(Header) == 16);
  Fnv1a64 sum;
  sum.update(&h.version, sizeof h.version);
  sum.update(&h.type, sizeof h.type);
  sum.update(&h.len, sizeof h.len);
  sum.update(payload.data(), payload.size());
  const std::uint64_t digest = sum.digest();
  write_all(fd, &h, sizeof h);
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
  write_all(fd, &digest, sizeof digest);
}

/// Reads one frame.  Returns false on clean EOF between frames.  Throws
/// IoError on transport failure and FormatInvalid on a frame that cannot be
/// trusted (bad magic/version/length/checksum) — the caller answers the
/// latter with kProtocolError and drops the connection.  `max_payload` caps
/// the declared length *before* the payload buffer is allocated: a hostile
/// or garbage length field costs the peer a rejection, never a server-side
/// allocation.
inline bool read_frame(int fd, Frame& out,
                       std::uint64_t max_payload = kMaxFramePayload) {
  struct Header {
    std::uint32_t magic;
    std::uint16_t version;
    std::uint16_t type;
    std::uint64_t len;
  } h;
  if (!read_exact(fd, &h, sizeof h, /*eof_ok=*/true)) return false;
  if (h.magic != kFrameMagic) throw FormatInvalid("frame: bad magic");
  if (h.version != kProtocolVersion) {
    throw FormatInvalid("frame: unsupported protocol version " +
                        std::to_string(h.version));
  }
  if (h.len > std::min(max_payload, kMaxFramePayload)) {
    throw FormatInvalid("frame: payload length " + std::to_string(h.len) +
                        " exceeds limit " +
                        std::to_string(std::min(max_payload,
                                                kMaxFramePayload)));
  }
  out.type = static_cast<MsgType>(h.type);
  out.payload.resize(static_cast<std::size_t>(h.len));
  if (h.len != 0) {
    read_exact(fd, out.payload.data(), out.payload.size(), /*eof_ok=*/false);
  }
  std::uint64_t want = 0;
  read_exact(fd, &want, sizeof want, /*eof_ok=*/false);
  Fnv1a64 sum;
  sum.update(&h.version, sizeof h.version);
  sum.update(&h.type, sizeof h.type);
  sum.update(&h.len, sizeof h.len);
  sum.update(out.payload.data(), out.payload.size());
  if (sum.digest() != want) {
    throw FormatInvalid("frame: checksum mismatch (corrupt or torn frame)");
  }
  return true;
}

// ---------------------------------------------------------------------------
// The common response status block every reply payload starts with.
// ---------------------------------------------------------------------------

struct ReplyStatus {
  ServeStatus status = ServeStatus::kOk;
  Status code = Status::kOk;  ///< SpmvError class when status == kFaulted
  std::string detail;
};

inline void put_reply_status(WireWriter& w, const ReplyStatus& r) {
  w.put<std::uint16_t>(static_cast<std::uint16_t>(r.status));
  w.put<std::uint16_t>(static_cast<std::uint16_t>(r.code));
  w.put_string(r.detail);
}

inline ReplyStatus get_reply_status(WireReader& r) {
  ReplyStatus out;
  out.status = static_cast<ServeStatus>(r.get<std::uint16_t>());
  out.code = static_cast<Status>(r.get<std::uint16_t>());
  out.detail = r.get_string();
  return out;
}

}  // namespace yaspmv::serve
