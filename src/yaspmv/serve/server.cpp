#include "yaspmv/serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <limits>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "yaspmv/cpu/stream_spmv.hpp"
#include "yaspmv/io/stream.hpp"
#include "yaspmv/sim/fault.hpp"
#include "yaspmv/tune/tuner.hpp"
#include "yaspmv/util/stopwatch.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string hex_id(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

/// One admitted request parked in a matrix queue.  The connection thread
/// waits on `done`; an executor (or the drain watchdog) fulfills it with the
/// fully serialized reply payload.
struct Server::Pending {
  MsgType type = MsgType::kSpmv;
  Clock::time_point arrival;
  std::uint32_t deadline_ms = 0;   ///< 0 = no deadline
  Inject inject = Inject::kNone;
  std::uint32_t inject_arg = 0;
  bool verified = false;  ///< request asked for a checksum-verified run
  // spmv fields
  std::vector<real_t> x;
  // solve fields
  std::uint8_t solver = 0;  ///< 1 = cg, 2 = bicgstab
  double tol = 1e-10;
  std::uint32_t max_iters = 1000;
  std::promise<std::vector<std::uint8_t>> done;

  bool deadline_passed(Clock::time_point now) const {
    return deadline_ms != 0 &&
           now - arrival > std::chrono::milliseconds(deadline_ms);
  }
};

struct Server::MatrixEntry {
  std::uint64_t id = 0;
  fmt::Coo a;
  tune::Candidate plan;
  bool plan_from_cache = false;
  double tuning_seconds = 0;   ///< cold: measured; warm: stored in the plan
  double register_seconds = 0; ///< wall clock of this process's registration
  int evaluated = 0;

  // Registration state, guarded by Server::reg_mu_.
  bool ready = false;
  std::string error;  ///< non-empty: registration failed, entry is a tombstone

  // Execution state.  The engine is single-threaded by design; `busy` (under
  // disp_mu_) guarantees at most one executor touches it at a time.
  std::unique_ptr<core::ResilientEngine> engine;
  std::unique_ptr<solver::CpuOperator> op;  ///< built on first solve

  // Out-of-core entries (registered by path): the matrix stays in the
  // mapped file, `a` is empty, and applies stream tile by tile.  srows/
  // scols mirror the geometry `a` would carry.
  bool streamed = false;
  std::shared_ptr<const io::MappedBccoo> mapped;
  std::unique_ptr<cpu::CpuStreamSpmv> stream;
  std::int32_t srows = 0, scols = 0;

  std::int32_t rows() const { return streamed ? srows : a.rows; }
  std::int32_t cols() const { return streamed ? scols : a.cols; }

  // Queue state, guarded by Server::disp_mu_.
  std::deque<std::unique_ptr<Pending>> queue;
  bool busy = false;
  bool in_ready = false;
};

struct Server::Connection {
  // fd is set once by the accept loop and closed by whichever side joins
  // the connection thread (reaper or stop()) — never by the connection
  // thread itself.  That keeps the fd valid for the duration of the
  // thread, so stop()'s shutdown() can never race a close()/reuse.
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)),
      dev_(opt_.device == "gtx480" ? sim::gtx480() : sim::gtx680()),
      plan_cache_(opt_.plan_cache_dir) {
  const unsigned pool_workers = WorkPool::shared().workers();
  if (opt_.executors == 0) {
    // At least two so a slow matrix cannot starve every other matrix; no
    // more than four — applies are compute-bound and anything beyond the
    // pool's parallelism only adds context switching.
    opt_.executors = std::max(2u, std::min(4u, pool_workers));
  }
  if (opt_.max_inflight == 0) {
    // Sized off the WorkPool: enough queued work to keep every worker busy
    // through a full queue/dequeue cycle, small enough that latency under
    // overload stays bounded (backpressure does the rest).
    opt_.max_inflight = static_cast<std::size_t>(4) * pool_workers;
  }
  opt_.max_inflight = std::max<std::size_t>(opt_.max_inflight, opt_.executors);
  if (opt_.apply_threads == 0) opt_.apply_threads = 1;
}

Server::~Server() { stop(); }

void Server::start() {
  require(!opt_.socket_path.empty(), "serve: socket_path is required");
  require(!running_.load(), "serve: already started");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(opt_.socket_path.size() < sizeof(addr.sun_path),
          "serve: socket path too long for AF_UNIX");
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw IoError(std::string("serve: socket: ") + std::strerror(errno));
  }
  // A stale socket file from a crashed daemon would make bind fail forever;
  // replacing it is the standard daemon idiom.  A *live* daemon on the same
  // path loses its socket — callers pick unique paths per instance.
  ::unlink(opt_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int e = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("serve: bind(" + opt_.socket_path + "): " +
                  std::strerror(e));
  }
  if (::listen(listen_fd_, 128) < 0) {
    const int e = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError(std::string("serve: listen: ") + std::strerror(e));
  }

  if (!opt_.journal_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt_.journal_dir, ec);
  }
  plan_cache_.sweep_stale_temps();

  draining_.store(false);
  stop_executors_.store(false);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  executor_threads_.reserve(opt_.executors);
  for (unsigned i = 0; i < opt_.executors; ++i) {
    executor_threads_.emplace_back([this] { executor_loop(); });
  }
}

void Server::wait() {
  while (!stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop();
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  draining_.store(true, std::memory_order_release);

  // Phase 1 — drain: wait for queued + executing work under the watchdog.
  {
    std::unique_lock<std::mutex> lk(disp_mu_);
    drain_cv_.wait_for(lk, std::chrono::milliseconds(opt_.drain_timeout_ms),
                       [&] { return inflight_ == 0; });
  }

  // Phase 2 — watchdog: shed whatever is still *queued* with a typed
  // kShuttingDown (never silence).  Applies already executing run to
  // completion below — cancellation is cooperative, never mid-apply.
  std::vector<std::shared_ptr<MatrixEntry>> entries;
  {
    std::lock_guard<std::mutex> rlk(reg_mu_);
    entries.reserve(matrices_.size());
    for (auto& [id, m] : matrices_) entries.push_back(m);
  }
  {
    std::lock_guard<std::mutex> lk(disp_mu_);
    std::size_t shed = 0;
    for (auto& m : entries) {
      while (!m->queue.empty()) {
        auto p = std::move(m->queue.front());
        m->queue.pop_front();
        p->done.set_value(error_reply(ServeStatus::kShuttingDown, Status::kOk,
                                      "server draining: request shed by the "
                                      "drain watchdog"));
        --inflight_;
        ++shed;
      }
      m->in_ready = false;
    }
    ready_.clear();
    if (shed > 0) {
      std::lock_guard<std::mutex> slk(stats_mu_);
      stats_.shed_on_drain += shed;
    }
  }
  // In-flight applies finish; executors then see stop_executors_.
  {
    std::unique_lock<std::mutex> lk(disp_mu_);
    drain_cv_.wait(lk, [&] { return inflight_ == 0; });
  }
  stop_executors_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (auto& t : executor_threads_) t.join();
  executor_threads_.clear();

  // Phase 3 — transport teardown: stop accepting, wake blocked readers.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opt_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto& c : connections_) {
      // SHUT_RD, not SHUT_RDWR: wake threads blocked in read_frame with a
      // clean EOF while letting a thread that is mid-way through writing a
      // shed kShuttingDown reply finish the write — every admitted request
      // gets its typed answer delivered, not reset.
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> victim;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      if (connections_.empty()) break;
      victim = std::move(connections_.front());
      connections_.pop_front();
    }
    if (victim->thread.joinable()) victim->thread.join();
    if (victim->fd >= 0) ::close(victim->fd);
  }

  // Phase 4 — flush the plan-cache directory: plans are written through at
  // registration (atomic rename), so the flush is garbage collection of
  // temp files from any writer that died mid-store.
  plan_cache_.sweep_stale_temps();
}

ServerStats Server::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    out = stats_;
  }
  out.executors = opt_.executors;
  out.apply_threads = opt_.apply_threads;
  out.shard_domains = default_shards();
  {
    std::lock_guard<std::mutex> lk(disp_mu_);
    out.inflight = inflight_;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Accept + connection threads
// ---------------------------------------------------------------------------

void Server::accept_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200);
    reap_finished_connections();
    if (r <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { connection_loop(raw); });
  }
}

void Server::reap_finished_connections() {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : dead) {
    if (c->thread.joinable()) c->thread.join();
    if (c->fd >= 0) ::close(c->fd);
  }
}

void Server::connection_loop(Connection* conn) {
  for (;;) {
    Frame f;
    try {
      const std::uint64_t cap =
          opt_.max_frame_bytes != 0 ? opt_.max_frame_bytes : kMaxFramePayload;
      if (!read_frame(conn->fd, f, cap)) break;  // clean EOF between frames
    } catch (const FormatInvalid& e) {
      // Unreadable frame: answer with a typed protocol error when the
      // socket still writes, then drop the connection — the stream offset
      // is unrecoverable after a framing failure.
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        stats_.protocol_errors++;
      }
      try {
        write_frame(conn->fd, MsgType::kStats,
                    error_reply(ServeStatus::kProtocolError,
                                Status::kFormatInvalid, e.what()));
      } catch (const IoError&) {
      }
      break;
    } catch (const IoError&) {
      // Peer vanished mid-frame (or transport error): nothing to answer.
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.disconnects++;
      break;
    }

    std::vector<std::uint8_t> reply;
    try {
      WireReader r(f.payload);
      switch (f.type) {
        case MsgType::kRegister:
          reply = handle_register(r);
          break;
        case MsgType::kRegisterPath:
          reply = handle_register_path(r);
          break;
        case MsgType::kSpmv:
        case MsgType::kSolve:
          reply = handle_request(f.type, r);
          break;
        case MsgType::kStats:
          reply = handle_stats();
          break;
        case MsgType::kShutdown: {
          request_stop();
          WireWriter w;
          put_reply_status(w, {ServeStatus::kOk, Status::kOk, "draining"});
          reply = w.take();
          break;
        }
        default:
          reply = error_reply(ServeStatus::kBadRequest, Status::kOk,
                              "unknown message type " +
                                  std::to_string(static_cast<int>(f.type)));
      }
    } catch (const IoError& e) {
      // Truncated/lying payload fields inside a well-framed message.
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        stats_.protocol_errors++;
      }
      reply = error_reply(ServeStatus::kProtocolError, Status::kIoError,
                          e.what());
    } catch (const std::invalid_argument& e) {
      reply = error_reply(ServeStatus::kBadRequest, Status::kOk, e.what());
    } catch (const SpmvError& e) {
      reply = error_reply(ServeStatus::kFaulted, e.code(), e.what());
    } catch (const std::exception& e) {
      reply = error_reply(ServeStatus::kInternal, Status::kOk, e.what());
    }

    try {
      write_frame(conn->fd, f.type, reply);
    } catch (const IoError&) {
      // Client disconnected before reading its reply; the work is done and
      // the server moves on.
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.disconnects++;
      break;
    }
  }
  conn->finished.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> Server::handle_register(WireReader& r) {
  if (draining_.load(std::memory_order_acquire)) {
    return error_reply(ServeStatus::kShuttingDown, Status::kOk,
                       "server draining: registration refused");
  }
  const auto flags = r.get<std::uint32_t>();
  const bool force_retune = (flags & 1u) != 0;
  const auto rows = r.get<std::int32_t>();
  const auto cols = r.get<std::int32_t>();
  auto ri = r.get_vec<index_t>();
  auto ci = r.get_vec<index_t>();
  auto vals = r.get_vec<real_t>();
  if (rows < 0 || cols < 0 || ri.size() != ci.size() ||
      ci.size() != vals.size()) {
    return error_reply(ServeStatus::kBadRequest, Status::kOk,
                       "register: inconsistent matrix arrays");
  }
  for (const real_t v : vals) {
    if (!std::isfinite(v)) {
      return error_reply(ServeStatus::kFaulted, Status::kDataCorruption,
                         "register: NaN policy violation — matrix values "
                         "must be finite");
    }
  }
  fmt::Coo a;
  try {
    a = fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                std::move(vals));
  } catch (const std::invalid_argument& e) {
    return error_reply(ServeStatus::kBadRequest, Status::kOk, e.what());
  }
  const std::uint64_t id = io::payload_checksum(a);

  std::shared_ptr<MatrixEntry> entry;
  bool creator = false;
  {
    std::unique_lock<std::mutex> lk(reg_mu_);
    auto it = matrices_.find(id);
    if (it == matrices_.end()) {
      entry = std::make_shared<MatrixEntry>();
      entry->id = id;
      entry->a = std::move(a);
      matrices_.emplace(id, entry);
      creator = true;
    } else {
      entry = it->second;
      // A concurrent registration of the same payload: wait for the
      // creator to finish tuning rather than tuning twice.
      reg_cv_.wait(lk, [&] { return entry->ready || !entry->error.empty(); });
      if (!entry->error.empty()) {
        return error_reply(ServeStatus::kInternal, Status::kOk, entry->error);
      }
    }
  }

  if (creator) {
    Stopwatch sw;
    std::string failure;
    try {
      if (opt_.tune_on_register) {
        std::optional<io::PlanRecord> cached;
        if (!force_retune) cached = plan_cache_.load(id, dev_.name);
        if (cached) {
          entry->plan = cached->best;
          entry->plan_from_cache = true;
          entry->tuning_seconds = cached->tuning_seconds;
          entry->evaluated = cached->evaluated;
        } else {
          tune::TuneOptions topt;
          topt.verify = false;  // the resilient ladder re-verifies at run time
          topt.tune_workers = opt_.tune_workers;
          // Rank candidates at the thread count applies will actually run
          // with, so launch/fix-up overhead weighs in at deploy shape.
          topt.rank_threads = opt_.apply_threads;
          Stopwatch tune_sw;
          const auto tr = tune::tune(entry->a, dev_, topt);
          entry->plan = tr.best;
          entry->tuning_seconds = tune_sw.elapsed_seconds();
          entry->evaluated = tr.evaluated;
          io::PlanRecord rec;
          rec.payload_checksum = id;
          rec.device = dev_.name;
          rec.best = tr.best;
          rec.tuning_seconds = entry->tuning_seconds;
          rec.evaluated = tr.evaluated;
          plan_cache_.store(rec);  // best effort; false = re-tune next boot
        }
      }
      core::ExecConfig ec = entry->plan.exec;
      // Request-level parallelism comes from concurrent clients by default
      // (apply_threads == 1: a single apply stays on its executor thread).
      // With --apply-threads=N each apply runs the carry-chain-free
      // N-thread path; an executor that cannot get the pool degrades
      // inline, so oversubscription cannot deadlock.
      ec.workers = opt_.apply_threads;
      core::ResilientOptions ropt;
      ropt.verify = opt_.verify;
      ropt.sample_rows = opt_.verify_sample_rows;
      ropt.verify_checksum = opt_.verified;
      if (!opt_.journal_dir.empty()) {
        ropt.journal_prefix =
            opt_.journal_dir + "/m" + hex_id(id) + ".journal";
      }
      entry->engine = std::make_unique<core::ResilientEngine>(
          entry->a, entry->plan.format, ec, dev_, ropt);
      // Pre-warm: build the fast-path format and plan now so the first
      // client request pays serve latency, not build latency.
      std::vector<real_t> x0(static_cast<std::size_t>(entry->a.cols), 0.0);
      std::vector<real_t> y0(static_cast<std::size_t>(entry->a.rows), 0.0);
      entry->engine->run(x0, y0);
    } catch (const std::exception& e) {
      failure = e.what();
    }
    entry->register_seconds = sw.elapsed_seconds();
    {
      std::lock_guard<std::mutex> lk(reg_mu_);
      if (failure.empty()) {
        entry->ready = true;
      } else {
        entry->error = failure;
        matrices_.erase(id);  // tombstone leaves the map: retry is possible
      }
      reg_cv_.notify_all();
    }
    if (!failure.empty()) {
      return error_reply(ServeStatus::kInternal, Status::kOk,
                         "register: " + failure);
    }
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.registered++;
    if (entry->plan_from_cache) {
      stats_.plan_cache_hits++;
    } else if (opt_.tune_on_register) {
      stats_.plan_cache_misses++;
    }
    // Dispatch attribution for kStats: which kernel family this matrix's
    // plan lands on (the tuner records "grid/..." ids for configs the
    // specialization grid serves, "generic" otherwise).
    if (entry->plan.kernel.rfind("grid/", 0) == 0) {
      stats_.grid_plans++;
    } else {
      stats_.generic_plans++;
    }
  }

  WireWriter w;
  put_reply_status(w, {ServeStatus::kOk, Status::kOk, ""});
  w.put<std::uint64_t>(id);
  w.put<std::uint8_t>(entry->plan_from_cache ? 1 : 0);
  w.put<std::uint8_t>(creator ? 1 : 0);
  w.put<double>(entry->tuning_seconds);
  w.put<double>(entry->register_seconds);
  w.put<std::int32_t>(entry->a.rows);
  w.put<std::int32_t>(entry->a.cols);
  w.put<std::int32_t>(entry->evaluated);
  // Appended last (wire evolution rule): the kernel id the plan dispatches
  // to; older clients reading a prefix of the frame stay compatible.
  w.put_string(entry->plan.kernel);
  return w.take();
}

std::vector<std::uint8_t> Server::handle_register_path(WireReader& r) {
  if (draining_.load(std::memory_order_acquire)) {
    return error_reply(ServeStatus::kShuttingDown, Status::kOk,
                       "server draining: registration refused");
  }
  r.get<std::uint32_t>();  // flags (reserved)
  const std::string path = r.get_string();
  if (path.empty()) {
    return error_reply(ServeStatus::kBadRequest, Status::kOk,
                       "register-path: empty path");
  }
  // Open + verify the container WITHOUT loading the matrix: the mapping is
  // the storage.  The file's own payload checksum (verified by the open)
  // is the registry id, so path- and value-registrations of different
  // content never collide.
  std::shared_ptr<const io::MappedBccoo> mapped;
  try {
    mapped = std::make_shared<const io::MappedBccoo>(path);
  } catch (const SpmvError& e) {
    return error_reply(ServeStatus::kFaulted, e.code(),
                       std::string("register-path: ") + e.what());
  }
  const std::uint64_t id = mapped->payload_checksum();

  std::shared_ptr<MatrixEntry> entry;
  bool creator = false;
  {
    std::unique_lock<std::mutex> lk(reg_mu_);
    auto it = matrices_.find(id);
    if (it == matrices_.end()) {
      entry = std::make_shared<MatrixEntry>();
      entry->id = id;
      entry->streamed = true;
      entry->mapped = std::move(mapped);
      entry->srows = entry->mapped->rows();
      entry->scols = entry->mapped->cols();
      matrices_.emplace(id, entry);
      creator = true;
    } else {
      entry = it->second;
      reg_cv_.wait(lk, [&] { return entry->ready || !entry->error.empty(); });
      if (!entry->error.empty()) {
        return error_reply(ServeStatus::kInternal, Status::kOk, entry->error);
      }
    }
  }

  if (creator) {
    Stopwatch sw;
    std::string failure;
    try {
      entry->stream = std::make_unique<cpu::CpuStreamSpmv>(entry->mapped);
      entry->plan.kernel = "stream/tile";
    } catch (const std::exception& e) {
      failure = e.what();
    }
    entry->register_seconds = sw.elapsed_seconds();
    {
      std::lock_guard<std::mutex> lk(reg_mu_);
      if (failure.empty()) {
        entry->ready = true;
      } else {
        entry->error = failure;
        matrices_.erase(id);
      }
      reg_cv_.notify_all();
    }
    if (!failure.empty()) {
      return error_reply(ServeStatus::kInternal, Status::kOk,
                         "register-path: " + failure);
    }
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.registered++;
    stats_.stream_registered++;
  }

  // Same reply layout as handle_register, so one client-side parser serves
  // both registration flavors.
  WireWriter w;
  put_reply_status(w, {ServeStatus::kOk, Status::kOk, ""});
  w.put<std::uint64_t>(id);
  w.put<std::uint8_t>(0);  // plan_from_cache: streamed entries are not tuned
  w.put<std::uint8_t>(creator ? 1 : 0);
  w.put<double>(0.0);  // tuning_seconds
  w.put<double>(entry->register_seconds);
  w.put<std::int32_t>(entry->srows);
  w.put<std::int32_t>(entry->scols);
  w.put<std::int32_t>(0);  // evaluated
  w.put_string(entry->plan.kernel);
  return w.take();
}

std::shared_ptr<Server::MatrixEntry> Server::find_matrix(std::uint64_t id) {
  std::unique_lock<std::mutex> lk(reg_mu_);
  auto it = matrices_.find(id);
  if (it == matrices_.end()) return nullptr;
  auto entry = it->second;
  reg_cv_.wait(lk, [&] { return entry->ready || !entry->error.empty(); });
  return entry->ready ? entry : nullptr;
}

// ---------------------------------------------------------------------------
// Admission + dispatch
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> Server::handle_request(MsgType type, WireReader& r) {
  auto p = std::make_unique<Pending>();
  p->type = type;
  p->arrival = Clock::now();
  const auto id = r.get<std::uint64_t>();
  p->deadline_ms = r.get<std::uint32_t>();
  p->inject = static_cast<Inject>(r.get<std::uint8_t>());
  p->inject_arg = r.get<std::uint32_t>();
  p->verified = r.get<std::uint8_t>() != 0;
  if (type == MsgType::kSpmv) {
    p->x = r.get_vec<real_t>();
  } else {
    p->solver = r.get<std::uint8_t>();
    p->tol = r.get<double>();
    p->max_iters = r.get<std::uint32_t>();
    p->x = r.get_vec<real_t>();  // the right-hand side b
  }

  if (draining_.load(std::memory_order_acquire)) {
    return error_reply(ServeStatus::kShuttingDown, Status::kOk,
                       "server draining: request refused");
  }
  if (p->inject != Inject::kNone && !opt_.enable_inject) {
    return error_reply(ServeStatus::kBadRequest, Status::kOk,
                       "inject hooks are disabled (start the server with "
                       "enable_inject / --inject to use them)");
  }
  auto m = find_matrix(id);
  if (!m) {
    return error_reply(ServeStatus::kUnknownMatrix, Status::kOk,
                       "matrix " + hex_id(id) + " is not registered");
  }
  // Fail fast on shape mismatches — before the request occupies queue space.
  const auto need = static_cast<std::size_t>(
      type == MsgType::kSpmv ? m->cols() : m->rows());
  if (p->x.size() != need) {
    return error_reply(ServeStatus::kBadRequest, Status::kOk,
                       "vector length " + std::to_string(p->x.size()) +
                           " != expected " + std::to_string(need));
  }
  if (type == MsgType::kSolve &&
      (m->streamed || m->a.rows != m->a.cols ||
       (p->solver != 1 && p->solver != 2))) {
    return error_reply(ServeStatus::kBadRequest, Status::kOk,
                       m->streamed
                           ? "solve: not supported for matrices registered "
                             "by path (streamed entries serve spmv only)"
                           : "solve: matrix must be square and solver must "
                             "be cg(1) or bicgstab(2)");
  }
  // Streamed applies bypass the ResilientEngine ladder, so only the injects
  // that make sense without it (input poison, latency) are honored.
  if (m->streamed && p->inject != Inject::kNone &&
      p->inject != Inject::kNan && p->inject != Inject::kSleepMs) {
    return error_reply(ServeStatus::kBadRequest, Status::kOk,
                       "inject: streamed matrices support only nan/sleep "
                       "hooks");
  }

  std::future<std::vector<std::uint8_t>> fut = p->done.get_future();
  {
    std::lock_guard<std::mutex> lk(disp_mu_);
    if (draining_.load(std::memory_order_acquire)) {
      return error_reply(ServeStatus::kShuttingDown, Status::kOk,
                         "server draining: request refused");
    }
    if (inflight_ >= opt_.max_inflight) {
      std::lock_guard<std::mutex> slk(stats_mu_);
      stats_.overloaded++;
      return error_reply(ServeStatus::kOverloaded, Status::kOk,
                         "global in-flight cap reached (" +
                             std::to_string(opt_.max_inflight) + ")");
    }
    if (m->queue.size() >= opt_.queue_capacity) {
      std::lock_guard<std::mutex> slk(stats_mu_);
      stats_.overloaded++;
      return error_reply(ServeStatus::kOverloaded, Status::kOk,
                         "matrix queue full (" +
                             std::to_string(opt_.queue_capacity) + ")");
    }
    m->queue.push_back(std::move(p));
    ++inflight_;
    if (!m->busy && !m->in_ready) {
      ready_.push_back(m.get());
      m->in_ready = true;
    }
    work_cv_.notify_one();
    std::lock_guard<std::mutex> slk(stats_mu_);
    stats_.accepted++;
  }
  return fut.get();
}

void Server::executor_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lk(disp_mu_);
    work_cv_.wait(lk, [&] {
      return stop_executors_.load(std::memory_order_acquire) ||
             !ready_.empty();
    });
    if (ready_.empty()) {
      if (stop_executors_.load(std::memory_order_acquire)) return;
      continue;
    }
    MatrixEntry* m = ready_.front();
    ready_.pop_front();
    m->in_ready = false;
    if (m->busy || m->queue.empty()) continue;
    m->busy = true;
    auto p = std::move(m->queue.front());
    m->queue.pop_front();
    ++executing_;
    lk.unlock();

    process(*m, *p);

    lk.lock();
    --executing_;
    --inflight_;
    m->busy = false;
    if (!m->queue.empty() && !m->in_ready) {
      ready_.push_back(m);
      m->in_ready = true;
      work_cv_.notify_one();
    }
    if (inflight_ == 0) drain_cv_.notify_all();
  }
}

void Server::process(MatrixEntry& m, Pending& p) {
  // Deadline policy: expired requests are dropped HERE, at dequeue — an
  // apply that starts always finishes (no mid-apply cancellation to corrupt
  // engine state).
  if (p.deadline_passed(Clock::now())) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.deadline_expired++;
    }
    p.done.set_value(error_reply(
        ServeStatus::kDeadlineExpired, Status::kOk,
        "deadline (" + std::to_string(p.deadline_ms) +
            " ms) expired while queued; dropped before the apply"));
    return;
  }
  try {
    // Counters are bumped BEFORE the promise is fulfilled: the client's
    // next request (e.g. kStats) must observe this one as completed.
    std::vector<std::uint8_t> reply =
        p.type == MsgType::kSpmv ? run_spmv(m, p) : run_solve(m, p);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.completed++;
    }
    p.done.set_value(std::move(reply));
  } catch (const SpmvError& e) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.completed++;
      stats_.faulted++;
    }
    p.done.set_value(error_reply(ServeStatus::kFaulted, e.code(), e.what()));
  } catch (const std::invalid_argument& e) {
    p.done.set_value(
        error_reply(ServeStatus::kBadRequest, Status::kOk, e.what()));
  } catch (const std::exception& e) {
    p.done.set_value(
        error_reply(ServeStatus::kInternal, Status::kOk, e.what()));
  }
}

std::vector<std::uint8_t> Server::run_spmv(MatrixEntry& m, Pending& p) {
  if (m.streamed) {
    // Out-of-core path: the apply streams tile-by-tile off the mapped file.
    // Admission already restricted injects to the engine-free ones.
    if (p.inject == Inject::kNan && !p.x.empty()) {
      p.x[0] = std::numeric_limits<real_t>::quiet_NaN();
    } else if (p.inject == Inject::kSleepMs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::uint32_t>(p.inject_arg, 10'000)));
    }
    for (std::size_t i = 0; i < p.x.size(); ++i) {
      if (!std::isfinite(p.x[i])) {
        throw DataCorruption("request NaN policy violation: x[" +
                             std::to_string(i) + "] is not finite");
      }
    }
    std::vector<real_t> y(static_cast<std::size_t>(m.srows));
    // An IoError/DataCorruption raised mid-stream (file truncated or
    // replaced underneath us) propagates to process()'s SpmvError catch:
    // this client gets kFaulted with the typed code, the daemon keeps going.
    m.stream->spmv(p.x, y);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.stream_applies++;
    }
    WireWriter w;
    put_reply_status(w, {ServeStatus::kOk, Status::kOk, ""});
    w.put<std::uint32_t>(1);  // attempts
    w.put<std::uint32_t>(0);  // ladder_step
    w.put<std::uint8_t>(0);   // recovered
    w.put<std::uint8_t>(0);   // verified (no ABFT partials off the stream)
    w.put_string("stream/tile");
    w.put<std::uint32_t>(0);  // faults
    w.put_vec(y);
    return w.take();
  }

  sim::FaultInjector inj;
  bool armed = false;
  switch (p.inject) {
    case Inject::kNone:
      break;
    case Inject::kNan:
      // The canonical poisoned request: the NaN-policy gate below turns it
      // into a typed error for THIS client only.
      if (!p.x.empty()) p.x[0] = std::numeric_limits<real_t>::quiet_NaN();
      break;
    case Inject::kDropPublish:
      inj.arm({sim::FaultType::kDropPublish, /*target_wg=*/1});
      inj.spin_budget_override = 10000;
      armed = true;
      break;
    case Inject::kCorruptCache:
      inj.arm({sim::FaultType::kCorruptCache, /*target_wg=*/1});
      armed = true;
      break;
    case Inject::kFailMain: {
      sim::FaultPlan plan;
      plan.type = sim::FaultType::kFailLaunch;
      plan.launch = sim::LaunchKind::kMain;
      inj.arm(plan);
      armed = true;
      break;
    }
    case Inject::kSleepMs:
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::uint32_t>(p.inject_arg, 10'000)));
      break;
    case Inject::kCorruptPublish:
      // The silent one: partial sums perturbed right before they are
      // consumed.  No classified error is raised anywhere — only a
      // checksum-verified run can tell the reply went wrong.
      inj.arm({sim::FaultType::kCorruptPublish, /*target_wg=*/1});
      armed = true;
      break;
    default:
      throw std::invalid_argument("unknown inject kind");
  }

  // NaN policy: a request carrying non-finite inputs is rejected with a
  // typed error before it can poison the engine's verification state.
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    if (!std::isfinite(p.x[i])) {
      throw DataCorruption("request NaN policy violation: x[" +
                           std::to_string(i) + "] is not finite");
    }
  }

  std::vector<real_t> y(static_cast<std::size_t>(m.a.rows));
  struct InjectorGuard {
    core::ResilientEngine* eng;
    ~InjectorGuard() { eng->set_fault_injector(nullptr); }
  } guard{m.engine.get()};
  m.engine->set_fault_injector(armed ? &inj : nullptr);
  const bool verified = p.verified || opt_.verified;
  const core::ResilientRun r = m.engine->run(p.x, y, verified);
  std::uint64_t integrity = 0;
  for (const auto& fr : r.faults) {
    if (fr.status == Status::kIntegrityFault) ++integrity;
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (r.recovered) stats_.recovered++;
    if (verified) stats_.verified_requests++;
    stats_.integrity_faults += integrity;
    // run() returned, so the reply is the ladder's verified (or reference)
    // result: every detected integrity fault on the way was recovered from.
    if (integrity > 0) stats_.integrity_recovered++;
  }

  WireWriter w;
  put_reply_status(w, {ServeStatus::kOk, Status::kOk, ""});
  w.put<std::uint32_t>(static_cast<std::uint32_t>(r.attempts));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(r.ladder_step));
  w.put<std::uint8_t>(r.recovered ? 1 : 0);
  w.put<std::uint8_t>(r.verified ? 1 : 0);
  w.put_string(r.path);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(r.faults.size()));
  for (const auto& fr : r.faults) {
    w.put<std::uint16_t>(static_cast<std::uint16_t>(fr.status));
    w.put_string(fr.path);
    w.put_string(fr.journal_file);
  }
  w.put_vec(y);
  return w.take();
}

std::vector<std::uint8_t> Server::run_solve(MatrixEntry& m, Pending& p) {
  for (std::size_t i = 0; i < p.x.size(); ++i) {
    if (!std::isfinite(p.x[i])) {
      throw DataCorruption("request NaN policy violation: b[" +
                           std::to_string(i) + "] is not finite");
    }
  }
  if (!m.op) {
    // Native fused pipeline; apply_threads per apply (see ec.workers note
    // in handle_register).  Built once, reused by later solves.
    m.op = std::make_unique<solver::CpuOperator>(m.a, core::FormatConfig{},
                                                 opt_.apply_threads);
  }
  solver::SolveOptions sopt;
  sopt.tolerance = p.tol;
  sopt.max_iterations = static_cast<int>(p.max_iters);
  sopt.threads = opt_.apply_threads;
  std::vector<real_t> x(static_cast<std::size_t>(m.a.rows), 0.0);
  const bool verified = p.verified || opt_.verified;
  solver::SolveReport rep;
  std::uint32_t integrity_faults = 0, rollbacks = 0;
  if (verified) {
    // Self-checking solvers: checksum-verified applies + checkpoint/rollback.
    solver::SelfCheckOptions copt;
    copt.solve = sopt;
    const solver::CheckedSolveReport crep =
        p.solver == 1 ? solver::cg_checked(*m.op, p.x, x, copt)
                      : solver::bicgstab_checked(*m.op, p.x, x, copt);
    rep = crep.solve;
    integrity_faults = static_cast<std::uint32_t>(crep.integrity_faults);
    rollbacks = static_cast<std::uint32_t>(crep.rollbacks);
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.verified_requests++;
    stats_.integrity_faults += integrity_faults;
    if (integrity_faults > 0 && rep.converged) stats_.integrity_recovered++;
  } else {
    rep = p.solver == 1 ? solver::cg(*m.op, p.x, x, sopt)
                        : solver::bicgstab(*m.op, p.x, x, sopt);
  }
  // Divergence is data corruption from the client's point of view: a
  // non-finite iterate must be a typed error, not a silent NaN vector.
  for (const real_t v : x) {
    if (!std::isfinite(v)) {
      throw DataCorruption(
          "solver produced non-finite iterates (matrix not SPD for cg, or "
          "ill-conditioned)");
    }
  }
  WireWriter w;
  put_reply_status(w, {ServeStatus::kOk, Status::kOk, ""});
  w.put<std::uint32_t>(static_cast<std::uint32_t>(rep.iterations));
  w.put<std::uint8_t>(rep.converged ? 1 : 0);
  w.put<double>(rep.relative_residual);
  w.put<std::uint8_t>(verified ? 1 : 0);
  w.put<std::uint32_t>(integrity_faults);
  w.put<std::uint32_t>(rollbacks);
  w.put_vec(x);
  return w.take();
}

// ---------------------------------------------------------------------------
// Stats + helpers
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> Server::handle_stats() {
  const ServerStats s = stats();
  WireWriter w;
  put_reply_status(w, {ServeStatus::kOk, Status::kOk, ""});
  w.put<std::uint64_t>(s.accepted);
  w.put<std::uint64_t>(s.completed);
  w.put<std::uint64_t>(s.overloaded);
  w.put<std::uint64_t>(s.deadline_expired);
  w.put<std::uint64_t>(s.faulted);
  w.put<std::uint64_t>(s.recovered);
  w.put<std::uint64_t>(s.protocol_errors);
  w.put<std::uint64_t>(s.disconnects);
  w.put<std::uint64_t>(s.shed_on_drain);
  w.put<std::uint64_t>(s.registered);
  w.put<std::uint64_t>(s.plan_cache_hits);
  w.put<std::uint64_t>(s.plan_cache_misses);
  w.put<std::uint64_t>(s.inflight);
  w.put<std::uint64_t>(s.verified_requests);
  w.put<std::uint64_t>(s.integrity_faults);
  w.put<std::uint64_t>(s.integrity_recovered);
  w.put<std::uint64_t>(s.executors);
  w.put<std::uint64_t>(s.apply_threads);
  w.put<std::uint64_t>(s.grid_plans);
  w.put<std::uint64_t>(s.generic_plans);
  w.put<std::uint64_t>(s.stream_registered);
  w.put<std::uint64_t>(s.stream_applies);
  w.put<std::uint64_t>(s.shard_domains);
  return w.take();
}

std::vector<std::uint8_t> Server::error_reply(ServeStatus s, Status code,
                                              const std::string& detail) {
  WireWriter w;
  put_reply_status(w, {s, code, detail});
  return w.take();
}

}  // namespace yaspmv::serve
