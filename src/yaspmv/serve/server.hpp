// The yaspmv serving daemon: a long-lived process serving spmv/solve
// requests for registered matrices over a Unix-domain socket (ROADMAP item
// 1, "SpMV-as-a-service").  Robustness is the design center:
//
//   * admission control + backpressure — a bounded per-matrix queue plus a
//     global in-flight cap sized off the shared WorkPool; a request that
//     does not fit is rejected with kOverloaded immediately, it never
//     queues unboundedly or hangs;
//   * per-request deadlines — a deadline that expires while the request is
//     queued drops it at dequeue with kDeadlineExpired; an apply that has
//     started always runs to completion (cooperative cancellation: never
//     mid-apply);
//   * fault isolation — every spmv routes through core::ResilientEngine, so
//     a poisoned request (NaN policy violation, injected fault, validate()
//     failure) degrades down the ladder or returns a typed error to *its*
//     client; the process and every other request keep going, and each
//     failed attempt dumps a flight-recorder journal when journal_dir is
//     set;
//   * durable plans — registration consults the crash-safe PlanCache before
//     tuning, so a restarted daemon skips straight to serving;
//   * graceful drain — stop() (SIGTERM in the daemon binary) stops
//     admissions, finishes queued work under a watchdog timeout (leftover
//     requests get kShuttingDown, never silence), and exits cleanly.
//
// Threading model: one accept thread, one thread per connection (the
// protocol is synchronous per connection: one outstanding request), and a
// small executor pool draining per-matrix queues.  A matrix's requests are
// serialized (its engine is single-threaded state); different matrices run
// in parallel across executors.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "yaspmv/core/resilient.hpp"
#include "yaspmv/formats/coo.hpp"
#include "yaspmv/serve/plan_cache.hpp"
#include "yaspmv/serve/protocol.hpp"
#include "yaspmv/sim/device.hpp"
#include "yaspmv/solvers/solvers.hpp"

namespace yaspmv::serve {

struct ServerOptions {
  std::string socket_path;       ///< required: Unix-domain socket to bind
  std::string plan_cache_dir;    ///< "" = PlanCache::default_dir()
  std::string journal_dir;       ///< "" = no journal dumps on failed attempts
  std::string device = "gtx680"; ///< tuning target: gtx680 | gtx480
  unsigned executors = 0;        ///< 0 = min(4, shared WorkPool workers)
  std::size_t queue_capacity = 64;  ///< bounded per-matrix queue
  std::size_t max_inflight = 0;  ///< global queued+running cap;
                                 ///< 0 = 4 * WorkPool::shared().workers()
  int drain_timeout_ms = 5000;   ///< watchdog on the graceful drain
  bool verify = false;           ///< sampled-row residual check per apply
  int verify_sample_rows = 16;
  /// Checksum-verify EVERY request (ABFT column checksums + self-checking
  /// solvers), as if each carried the protocol `verified` flag.  Individual
  /// requests can still opt in when this is off; they cannot opt out when
  /// it is on.
  bool verified = false;
  /// Per-frame payload cap enforced before any allocation; 0 = the
  /// protocol-wide kMaxFramePayload.  Deployments that never register big
  /// matrices set this low so a hostile length field is rejected outright.
  std::uint64_t max_frame_bytes = 0;
  unsigned tune_workers = 0;     ///< forwarded to tune() on a cache miss
  bool enable_inject = false;    ///< honor per-request Inject test hooks
  bool tune_on_register = true;  ///< false: skip tuning, serve default config
  /// Native-backend threads per apply.  The default 1 keeps request-level
  /// parallelism coming from concurrent executors; raising it makes each
  /// apply use the carry-chain-free multi-thread path (and tunes rank at
  /// this count on cache misses), for deployments with few large matrices
  /// and low concurrency.
  unsigned apply_threads = 1;
};

/// Monotonic counters, readable while the server runs (kStats replies and
/// in-process tests read a consistent snapshot).
struct ServerStats {
  std::uint64_t accepted = 0;          ///< requests admitted to a queue
  std::uint64_t completed = 0;         ///< applies that ran (ok or faulted)
  std::uint64_t overloaded = 0;        ///< admission rejections
  std::uint64_t deadline_expired = 0;  ///< dropped at dequeue
  std::uint64_t faulted = 0;           ///< typed errors returned to clients
  std::uint64_t recovered = 0;         ///< applies that needed the ladder
  std::uint64_t protocol_errors = 0;   ///< unreadable frames
  std::uint64_t disconnects = 0;       ///< peers gone mid-request/mid-reply
  std::uint64_t shed_on_drain = 0;     ///< queued requests answered
                                       ///< kShuttingDown by the watchdog
  std::uint64_t registered = 0;        ///< distinct matrices
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t inflight = 0;          ///< snapshot: queued + executing now
  std::uint64_t verified_requests = 0;   ///< ran under the ABFT checksum
  std::uint64_t integrity_faults = 0;    ///< checksum mismatches detected
  std::uint64_t integrity_recovered = 0; ///< requests that detected AND still
                                         ///< returned a verified-correct reply
  // Static configuration mirrored into the stats reply so serving benches
  // can correlate latency with the execution shape (appended last: older
  // clients reading a prefix of the frame stay compatible).
  std::uint64_t executors = 0;           ///< executor pool size
  std::uint64_t apply_threads = 0;       ///< native threads per apply
  // Kernel-dispatch attribution (specialization grid, cpu/kernels_grid.hpp):
  // how many registered matrices' plans dispatch to a specialized grid
  // kernel vs the generic one.  Appended last, same prefix-compatibility
  // rule as above.
  std::uint64_t grid_plans = 0;          ///< plans on a "grid/..." kernel
  std::uint64_t generic_plans = 0;       ///< plans on the generic kernel
  // Shard/streaming execution shape (appended last, same rule as above).
  std::uint64_t stream_registered = 0;   ///< matrices served out-of-core
                                         ///< (registered by path, mmapped)
  std::uint64_t stream_applies = 0;      ///< applies run off a mapped file
  std::uint64_t shard_domains = 0;       ///< NUMA locality domains probed on
                                         ///< this host (1 = single node)
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();  ///< stops (graceful drain) if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns accept + executor threads.  Throws IoError
  /// when the socket cannot be bound.
  void start();

  /// Graceful drain: stop admissions, finish queued work under the drain
  /// watchdog, flush the plan cache directory state, join every thread and
  /// close the socket.  Idempotent.
  void stop();

  /// Async-signal-safe stop request (the SIGTERM handler calls this); the
  /// thread blocked in wait() picks it up and performs the actual drain.
  void request_stop() { stop_requested_.store(true, std::memory_order_release); }
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Blocks until request_stop() (or stop()) happens, then drains.  The
  /// daemon binary's main loop.
  void wait();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const ServerOptions& options() const { return opt_; }
  const std::string& socket_path() const { return opt_.socket_path; }
  PlanCache& plan_cache() { return plan_cache_; }

  ServerStats stats() const;

 private:
  struct Pending;
  struct MatrixEntry;
  struct Connection;

  void accept_loop();
  void executor_loop();
  void connection_loop(Connection* conn);
  void reap_finished_connections();

  // Request handlers (called on connection threads).
  std::vector<std::uint8_t> handle_register(WireReader& r);
  std::vector<std::uint8_t> handle_register_path(WireReader& r);
  std::vector<std::uint8_t> handle_request(MsgType type, WireReader& r);
  std::vector<std::uint8_t> handle_stats();

  // Executor-side processing of one dequeued request.  run_spmv/run_solve
  // build the success reply but do not fulfil the promise — process() bumps
  // the stats counters first, so a client that sees the reply also sees
  // this request reflected in kStats.
  void process(MatrixEntry& m, Pending& p);
  std::vector<std::uint8_t> run_spmv(MatrixEntry& m, Pending& p);
  std::vector<std::uint8_t> run_solve(MatrixEntry& m, Pending& p);

  std::shared_ptr<MatrixEntry> find_matrix(std::uint64_t id);
  static std::vector<std::uint8_t> error_reply(ServeStatus s, Status code,
                                               const std::string& detail);

  ServerOptions opt_;
  sim::DeviceSpec dev_;
  PlanCache plan_cache_;
  int listen_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stop_executors_{false};

  // Registry of matrices (guarded by reg_mu_; entries outlive the lock via
  // shared_ptr so a request can use one while another registers).
  mutable std::mutex reg_mu_;
  std::condition_variable reg_cv_;  ///< signaled when a registration finishes
  std::map<std::uint64_t, std::shared_ptr<MatrixEntry>> matrices_;

  // Dispatch state (guarded by disp_mu_).
  mutable std::mutex disp_mu_;
  std::condition_variable work_cv_;   ///< executors wait here
  std::condition_variable drain_cv_;  ///< stop() waits for inflight == 0
  std::deque<MatrixEntry*> ready_;    ///< matrices with claimable work
  std::size_t inflight_ = 0;          ///< queued + executing
  std::size_t executing_ = 0;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  std::thread accept_thread_;
  std::vector<std::thread> executor_threads_;
  std::mutex conn_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace yaspmv::serve
