// Adjacent synchronization (Section 3.2.4; StreamScan, PPoPP'13).
//
// For dot-product segments spanning workgroup boundaries, workgroup X must
// accumulate the last partial sums of the preceding workgroups.  Instead of
// finishing the kernel and launching a second one (global synchronization),
// each workgroup publishes its last partial sum into Grp_sum[X]; a workgroup
// whose tile contains no row stop waits for Grp_sum[X-1], adds its own sum,
// and publishes the combined value, while a workgroup containing a row stop
// breaks the chain and publishes its own tail sum directly.
//
// An entry is a small vector of block_h partial sums (one per row inside a
// block-row).  The published flag uses release/acquire ordering so the pooled
// dispatcher exercises the real synchronization; under sequential in-order
// dispatch a wait on an unpublished entry is a protocol violation and throws.
//
// When a FlightRecorder is attached, publish/wait become journal sites (the
// publish claims its journal sequence number *before* releasing the ready
// flag, so every recorded log orders a publish ahead of the waits it
// satisfied) and the blocking wait becomes a watchdog: instead of blindly
// burning the full spin budget it consults the recorder's ProgressTable and
// fails fast — with attribution — the moment the owning workgroup is done or
// failed without publishing.  Under replay the same sites turn into gates
// consuming the recorded schedule.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "yaspmv/sim/counters.hpp"
#include "yaspmv/sim/dispatch.hpp"
#include "yaspmv/sim/fault.hpp"
#include "yaspmv/sim/journal.hpp"
#include "yaspmv/sim/replay.hpp"

namespace yaspmv::sim {

class AdjacentBuffer {
 public:
  /// Maximum block height supported by a Grp_sum entry.  Table 1 limits
  /// block height to 4; the extended-blocks tuning mode (the paper's noted
  /// Dense-matrix limitation, Section 6) raises it to 8.
  static constexpr int kMaxH = 8;

  /// Hard spin cap before a blocking wait is declared dead.  With a recorder
  /// attached the watchdog almost never reaches it (a dead predecessor is
  /// detected from its progress state); without one it is the only limit.
  static constexpr std::size_t kMaxSpins = 200'000'000;

  /// Spins between watchdog looks at the owner's progress state.
  static constexpr std::size_t kWatchdogInterval = 1024;

  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  AdjacentBuffer(std::size_t num_workgroups, int h, bool blocking,
                 FaultInjector* fault = nullptr,
                 FlightRecorder* recorder = nullptr,
                 LaunchKind kind = LaunchKind::kMain)
      : n_(num_workgroups),
        h_(h),
        blocking_(blocking),
        fault_(fault),
        recorder_(recorder),
        kind_(kind),
        spin_budget_(fault && fault->spin_budget_override != 0
                         ? fault->spin_budget_override
                         : kMaxSpins),
        entries_(std::make_unique<Entry[]>(num_workgroups ? num_workgroups
                                                          : 1)) {
    if (h < 1 || h > kMaxH) throw SimError("AdjacentBuffer: bad block height");
  }

  int height() const { return h_; }
  std::size_t size() const { return n_; }

  /// Publishes workgroup `wg`'s last partial sums (h values).  An armed
  /// drop/stall fault suppresses the publish (successors will time out); a
  /// corrupt fault perturbs the values before they become visible.
  void publish(std::size_t wg, std::span<const double> v) {
    Entry& e = entries_[wg];
    for (int i = 0; i < h_; ++i) {
      e.v[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(i)];
    }
    bool suppressed = false;
    if (fault_) {
      suppressed = fault_->suppress_publish(wg);
      if (!suppressed) {
        fault_->mutate_publish(
            wg, std::span<double>(e.v.data(), static_cast<std::size_t>(h_)));
      }
    }

    ReplayCoordinator* const coord = gate();
    const std::int32_t id = static_cast<std::int32_t>(wg);
    bool advance = false;
    if (coord) {
      const auto step = coord->await(id);
      if (step) {
        const EventType want = suppressed ? EventType::kPublishSuppressed
                                          : EventType::kPublish;
        if (step->type != want || step->wg != id) {
          coord->diverge(
              "workgroup " + std::to_string(wg) + " performed " +
              std::string(to_string(want)) + " but the schedule expected " +
              std::string(to_string(step->type)) + " of workgroup " +
              std::to_string(step->wg) +
              " (different fault plan or stale schedule?)");
        }
        advance = true;
      }
    }

    if (suppressed) {
      if (recorder_) {
        recorder_->record(EventType::kPublishSuppressed, kind_, id);
        recorder_->record(EventType::kFaultFired, kind_, id,
                          static_cast<std::int32_t>(fault_->plan().type));
      }
      if (advance) coord->advance();
      return;
    }
    // Causal-consistency invariant: claim the publish's journal sequence
    // number before the release store, so no waiter's resolve can be logged
    // ahead of the publish that satisfied it.
    if (recorder_) recorder_->record(EventType::kPublish, kind_, id);
    e.ready.store(1, std::memory_order_release);
    if (advance) coord->advance();
  }

  bool is_published(std::size_t wg) const {
    return entries_[wg].ready.load(std::memory_order_acquire) != 0;
  }

  /// Waits for workgroup `wg`'s entry and copies it into `out`.  Spin count
  /// is recorded in `stats`; `waiter` is the waiting workgroup (for journal
  /// events and timeout attribution — defaults to wg+1, the adjacent chain).
  ///
  /// In non-blocking (sequential-dispatch) mode the predecessor has already
  /// run, so an unpublished entry means its publish was lost (broken chain /
  /// dead workgroup).  In blocking mode the watchdog reaches the same
  /// conclusion when the owner is done/failed yet never published, or after
  /// the hard spin budget.  Both raise SyncTimeout — the trigger for the
  /// resilient engine's fallback ladder.
  void wait(std::size_t wg, std::span<double> out, KernelStats& stats,
            std::int32_t waiter = -1) const {
    if (waiter < 0) waiter = static_cast<std::int32_t>(wg) + 1;
    const Entry& e = entries_[wg];

    ReplayCoordinator* const coord = gate();
    if (coord) {
      const auto step = coord->await(waiter);
      if (step) {
        replay_wait(*coord, *step, wg, waiter, e, out);
        return;
      }
      // No steps left (minimized tail): fall through and run free.
    }

    if (recorder_) {
      recorder_->record(EventType::kWaitBegin, kind_, waiter,
                        static_cast<std::int32_t>(wg));
    }
    if (!e.ready.load(std::memory_order_acquire)) {
      if (!blocking_) {
        fail_timeout(wg, waiter,
                     "consumed before being published under in-order "
                     "dispatch");
      }
      std::size_t spins = 0;
      while (!e.ready.load(std::memory_order_acquire)) {
        if (++spins % 64 == 0) std::this_thread::yield();
        if (recorder_ && spins % kWatchdogInterval == 0) {
          const std::int32_t st =
              recorder_->progress().state(wg);
          if (st == ProgressTable::kDone || st == ProgressTable::kFailed) {
            // Re-check after the state read: the owner may have published
            // right before finishing (acquire pairs with the release store).
            if (e.ready.load(std::memory_order_acquire)) break;
            stats.spin_waits += spins;
            fail_timeout(wg, waiter, "owner will never publish");
          }
        }
        if (spins > spin_budget_) {
          stats.spin_waits += spins;
          fail_timeout(wg, waiter, "spin budget exceeded");
        }
      }
      stats.spin_waits += spins;
    }
    if (recorder_) {
      recorder_->record(EventType::kWaitResolve, kind_, waiter,
                        static_cast<std::int32_t>(wg));
    }
    for (int i = 0; i < h_; ++i) {
      out[static_cast<std::size_t>(i)] = e.v[static_cast<std::size_t>(i)];
    }
  }

 private:
  struct Entry {
    std::array<double, kMaxH> v{};
    std::atomic<std::uint32_t> ready{0};
  };

  /// The replay coordinator when one is attached *and* it replays this
  /// buffer's launch kind; nullptr otherwise (record-only or idle).
  ReplayCoordinator* gate() const {
    if (!recorder_) return nullptr;
    ReplayCoordinator* c = recorder_->coordinator();
    return (c && c->schedule().kind == kind_) ? c : nullptr;
  }

  /// Re-executes a recorded wait step: a resolve copies the (already
  /// admitted) publish; a timeout reproduces the recorded failure.
  void replay_wait(ReplayCoordinator& coord, const ScheduleStep& step,
                   std::size_t wg, std::int32_t waiter, const Entry& e,
                   std::span<double> out) const {
    if (step.wg != waiter || (step.type != EventType::kWaitResolve &&
                              step.type != EventType::kWaitTimeout)) {
      coord.diverge("workgroup " + std::to_string(waiter) +
                    " waited on Grp_sum[" + std::to_string(wg) +
                    "] but the schedule expected " +
                    std::string(to_string(step.type)) + " of workgroup " +
                    std::to_string(step.wg));
    }
    if (step.aux != static_cast<std::int32_t>(wg)) {
      coord.diverge("workgroup " + std::to_string(waiter) +
                    " waited on Grp_sum[" + std::to_string(wg) +
                    "] but the recorded wait targeted Grp_sum[" +
                    std::to_string(step.aux) + "]");
    }
    if (step.type == EventType::kWaitTimeout) {
      // Reproduce the recorded failure.  Deliberately no advance(): the
      // dispatcher's catch stores this as the first error before aborting
      // the replay, so the failing workgroup is stable across replays.
      fail_timeout(wg, waiter, "replayed wait-timeout");
    }
    // The schedule ordered the publish before this resolve, and its gate
    // released the entry before advancing the cursor — the value is there.
    if (!e.ready.load(std::memory_order_acquire)) {
      coord.diverge("replayed wait-resolve of workgroup " +
                    std::to_string(waiter) + " found Grp_sum[" +
                    std::to_string(wg) +
                    "] unpublished (schedule violates publish-before-"
                    "resolve)");
    }
    if (recorder_) {
      recorder_->record(EventType::kWaitResolve, kind_, waiter,
                        static_cast<std::int32_t>(wg));
    }
    for (int i = 0; i < h_; ++i) {
      out[static_cast<std::size_t>(i)] = e.v[static_cast<std::size_t>(i)];
    }
    coord.advance();
  }

  /// Records the timeout and raises an attributed SyncTimeout: which
  /// workgroup waited, which entry never arrived, what its owner was doing
  /// (from the progress table) and whether an armed fault swallowed the
  /// publish.
  [[noreturn]] void fail_timeout(std::size_t wg, std::int32_t waiter,
                                 const std::string& how) const {
    if (recorder_) {
      recorder_->record(EventType::kWaitTimeout, kind_, waiter,
                        static_cast<std::int32_t>(wg));
    }
    std::string msg = "workgroup " + std::to_string(waiter) +
                      " waiting on unpublished Grp_sum[" + std::to_string(wg) +
                      "] (" + how;
    if (recorder_) {
      msg += "; owner workgroup " + std::to_string(wg) + " " +
             recorder_->progress().describe(wg);
    }
    msg += ")";
    if (fault_ && fault_->suppresses_publish(wg)) {
      msg += "; its publish was suppressed by an armed " +
             std::string(to_string(fault_->plan().type)) + " fault";
    }
    throw SyncTimeout(msg);
  }

  std::size_t n_;
  int h_;
  bool blocking_;
  FaultInjector* fault_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  LaunchKind kind_ = LaunchKind::kMain;
  std::size_t spin_budget_ = kMaxSpins;
  std::unique_ptr<Entry[]> entries_;
};

}  // namespace yaspmv::sim
