// Adjacent synchronization (Section 3.2.4; StreamScan, PPoPP'13).
//
// For dot-product segments spanning workgroup boundaries, workgroup X must
// accumulate the last partial sums of the preceding workgroups.  Instead of
// finishing the kernel and launching a second one (global synchronization),
// each workgroup publishes its last partial sum into Grp_sum[X]; a workgroup
// whose tile contains no row stop waits for Grp_sum[X-1], adds its own sum,
// and publishes the combined value, while a workgroup containing a row stop
// breaks the chain and publishes its own tail sum directly.
//
// An entry is a small vector of block_h partial sums (one per row inside a
// block-row).  The published flag uses release/acquire ordering so the pooled
// dispatcher exercises the real synchronization; under sequential in-order
// dispatch a wait on an unpublished entry is a protocol violation and throws.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <thread>

#include "yaspmv/sim/counters.hpp"
#include "yaspmv/sim/dispatch.hpp"
#include "yaspmv/sim/fault.hpp"

namespace yaspmv::sim {

class AdjacentBuffer {
 public:
  /// Maximum block height supported by a Grp_sum entry.  Table 1 limits
  /// block height to 4; the extended-blocks tuning mode (the paper's noted
  /// Dense-matrix limitation, Section 6) raises it to 8.
  static constexpr int kMaxH = 8;

  /// Spin budget before a blocking wait is declared dead (prevents a hang
  /// when the publishing workgroup failed).
  static constexpr std::size_t kMaxSpins = 200'000'000;

  // NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
  AdjacentBuffer(std::size_t num_workgroups, int h, bool blocking,
                 FaultInjector* fault = nullptr)
      : n_(num_workgroups),
        h_(h),
        blocking_(blocking),
        fault_(fault),
        spin_budget_(fault && fault->spin_budget_override != 0
                         ? fault->spin_budget_override
                         : kMaxSpins),
        entries_(std::make_unique<Entry[]>(num_workgroups ? num_workgroups
                                                          : 1)) {
    if (h < 1 || h > kMaxH) throw SimError("AdjacentBuffer: bad block height");
  }

  int height() const { return h_; }
  std::size_t size() const { return n_; }

  /// Publishes workgroup `wg`'s last partial sums (h values).  An armed
  /// drop/stall fault suppresses the publish (successors will time out); a
  /// corrupt fault perturbs the values before they become visible.
  void publish(std::size_t wg, std::span<const double> v) {
    Entry& e = entries_[wg];
    for (int i = 0; i < h_; ++i) e.v[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(i)];
    if (fault_) {
      if (fault_->suppress_publish(wg)) return;
      fault_->mutate_publish(wg, std::span<double>(e.v.data(),
                                                   static_cast<std::size_t>(h_)));
    }
    e.ready.store(1, std::memory_order_release);
  }

  bool is_published(std::size_t wg) const {
    return entries_[wg].ready.load(std::memory_order_acquire) != 0;
  }

  /// Waits for workgroup `wg`'s entry and copies it into `out`.  Spin count
  /// is recorded in `stats`.  In non-blocking (sequential-dispatch) mode the
  /// predecessor has already run, so an unpublished entry means its publish
  /// was lost (broken chain / dead workgroup); in blocking mode the same
  /// conclusion is reached after the spin budget expires.  Both raise
  /// SyncTimeout — the trigger for the resilient engine's fallback ladder.
  void wait(std::size_t wg, std::span<double> out, KernelStats& stats) const {
    const Entry& e = entries_[wg];
    if (!e.ready.load(std::memory_order_acquire)) {
      if (!blocking_) {
        throw SyncTimeout(
            "Grp_sum[" + std::to_string(wg) +
            "] consumed before being published under in-order dispatch "
            "(predecessor workgroup died or its publish was dropped)");
      }
      std::size_t spins = 0;
      while (!e.ready.load(std::memory_order_acquire)) {
        if (++spins % 64 == 0) std::this_thread::yield();
        if (spins > spin_budget_) {
          throw SyncTimeout(
              "adjacent-sync wait on Grp_sum[" + std::to_string(wg) +
              "] exceeded the spin budget (predecessor workgroup died?)");
        }
      }
      stats.spin_waits += spins;
    }
    for (int i = 0; i < h_; ++i) out[static_cast<std::size_t>(i)] = e.v[static_cast<std::size_t>(i)];
  }

 private:
  struct Entry {
    std::array<double, kMaxH> v{};
    std::atomic<std::uint32_t> ready{0};
  };

  std::size_t n_;
  int h_;
  bool blocking_;
  FaultInjector* fault_ = nullptr;
  std::size_t spin_budget_ = kMaxSpins;
  std::unique_ptr<Entry[]> entries_;
};

}  // namespace yaspmv::sim
