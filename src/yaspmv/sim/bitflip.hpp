// Targeted single-bit corruption of a built BCCOO format — the at-rest half
// of the fault-injection adversary (FaultInjector::flip_partial is the
// in-flight half).  Each helper flips exactly one bit of one stored stream
// on a *mutable copy* of the format (the shared engine formats are const by
// design: a real flipped DRAM/disk bit corrupts a private replica, and the
// recovery path rebuilds from source), returning a record of what changed so
// sweeps are reproducible and reportable.
//
// Coverage semantics the integrity tests rely on:
//
//   * value-stream flips target occupied block slots (a flipped *padding
//     zero* only matters through exponent bits, and is still covered by the
//     random-bit harmless sweep); the default bit range is the significant
//     bits [44, 63] — below that a flip perturbs the result by less than the
//     apply's own rounding bound, i.e. it is undetectable by any checker
//     *and* harmless by the same inequality;
//   * column-stream flips may take any bit: the streams are discrete, so any
//     flip moves at least one decoded block-column.  A flip can push the
//     stream out of its decode contract (an escape overrun or an
//     out-of-range column) — `col_streams_in_contract` classifies that, and
//     such corruption is caught by Bccoo::validate(), which is exactly what
//     the resilient ladder runs before trusting a format again.  In-contract
//     flips produce plausible-but-wrong streams: those are the checksum
//     verifier's job.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "yaspmv/core/bccoo.hpp"
#include "yaspmv/util/common.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv::sim {

/// What a storage flip changed: `array` names the stream, `index` the
/// element, `bit` the flipped bit within that element's width.
struct FlipRecord {
  const char* array = "";
  std::size_t index = 0;
  int bit = 0;

  std::string describe() const {
    return std::string(array) + "[" + std::to_string(index) + "] bit " +
           std::to_string(bit);
  }
};

namespace detail {
template <class T>
void flip_bit(T& v, int bit) {
  std::uint64_t raw = 0;
  std::memcpy(&raw, &v, sizeof(T));
  raw ^= 1ull << (bit % (8 * static_cast<int>(sizeof(T))));
  std::memcpy(&v, &raw, sizeof(T));
}
}  // namespace detail

/// Flips one bit of one occupied value slot.  `bit` < 0 draws from the
/// significant range [44, 63]; the slot is drawn seeded, skipping padding
/// zeros (bounded scan, wrapping).
inline FlipRecord flip_value(core::Bccoo& f, std::uint64_t seed,
                             int bit = -1) {
  SplitMix64 rng(seed ^ 0xAB5EF11Full);
  const std::size_t row = rng.next_below(f.value_rows.size());
  auto& vr = f.value_rows[row];
  require(!vr.empty(), "flip_value: empty value stream");
  std::size_t idx = rng.next_below(vr.size());
  for (std::size_t tries = 0; vr[idx] == 0.0 && tries < vr.size(); ++tries) {
    idx = (idx + 1) % vr.size();
  }
  const int b = bit >= 0 ? bit & 63 : static_cast<int>(44 + rng.next_below(20));
  detail::flip_bit(vr[idx], b);
  return {"value_rows", idx, b};
}

/// Flips one bit of one int16 delta entry (any of the 16 bits).
inline FlipRecord flip_delta_col(core::Bccoo& f, std::uint64_t seed,
                                 int bit = -1) {
  require(!f.delta_cols.empty(), "flip_delta_col: no delta stream");
  SplitMix64 rng(seed ^ 0xDE17AC01ull);
  const std::size_t idx = rng.next_below(f.delta_cols.size());
  const int b = bit >= 0 ? bit & 15 : static_cast<int>(rng.next_below(16));
  detail::flip_bit(f.delta_cols[idx], b);
  return {"delta_cols", idx, b};
}

/// Flips one bit of one 4-byte escape column.
inline FlipRecord flip_delta_escape(core::Bccoo& f, std::uint64_t seed,
                                    int bit = -1) {
  require(!f.delta_escapes.empty(), "flip_delta_escape: no escapes");
  SplitMix64 rng(seed ^ 0xE5CA9E02ull);
  const std::size_t idx = rng.next_below(f.delta_escapes.size());
  const int b = bit >= 0 ? bit & 31 : static_cast<int>(rng.next_below(32));
  detail::flip_bit(f.delta_escapes[idx], b);
  return {"delta_escapes", idx, b};
}

/// Flips one bit of one u16 short column.
inline FlipRecord flip_short_col(core::Bccoo& f, std::uint64_t seed,
                                 int bit = -1) {
  require(!f.short_cols.empty(), "flip_short_col: no short stream");
  SplitMix64 rng(seed ^ 0x5C017C03ull);
  const std::size_t idx = rng.next_below(f.short_cols.size());
  const int b = bit >= 0 ? bit & 15 : static_cast<int>(rng.next_below(16));
  detail::flip_bit(f.short_cols[idx], b);
  return {"short_cols", idx, b};
}

/// True when the compressed column streams still decode without reading
/// outside their arrays and every decoded block-column is in range — the
/// memory-safety precondition of the unguarded kernels.  Corruption that
/// breaks the contract is structural, and Bccoo::validate() (the first step
/// of the resilient recovery rung) rejects it; the checksum verifier only
/// ever runs on in-contract streams.
inline bool col_streams_in_contract(const core::Bccoo& f) {
  if (!f.col_streams_built) return true;
  const std::size_t nb = f.num_blocks;
  const std::size_t nt = f.num_col_tiles();
  for (std::size_t t = 0; t < nt; ++t) {
    const std::size_t t0 = t * core::Bccoo::kColTile;
    const std::size_t t1 = std::min(t0 + core::Bccoo::kColTile, nb);
    index_t prev = 0;
    std::size_t e = f.delta_escape_start[t];
    for (std::size_t i = t0; i < t1; ++i) {
      const std::int16_t d = f.delta_cols[i];
      if (d == kDeltaEscape) {
        if (e >= f.delta_escape_start[t + 1]) return false;  // escape overrun
        prev = f.delta_escapes[e++];
      } else {
        prev += static_cast<index_t>(d);
      }
      if (prev < 0 || prev >= f.block_cols) return false;
    }
  }
  for (const std::uint16_t c : f.short_cols) {
    if (static_cast<index_t>(c) >= f.block_cols) return false;
  }
  return true;
}

}  // namespace yaspmv::sim
