// Warp-level memory-coalescing analysis.
//
// GPUs serve a warp's loads in aligned memory transactions; the number of
// distinct segments touched by the 32 lanes determines the traffic.  The
// helper below computes that count exactly from per-lane byte addresses —
// used by baselines whose access pattern depends on the data (CSR-scalar's
// lane-per-row streaming) instead of a fixed analytic stride.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>

#include "yaspmv/sim/counters.hpp"

namespace yaspmv::sim {

/// Inactive-lane marker for warp_transactions.
inline constexpr std::size_t kInactiveLane =
    std::numeric_limits<std::size_t>::max();

/// Number of `segment_bytes`-aligned transactions needed to serve one warp
/// access where lane i reads from byte address `addrs[i]` (kInactiveLane =
/// predicated off).  segment_bytes must be a power of two.
inline std::size_t warp_transactions(std::span<const std::size_t> addrs,
                                     std::size_t segment_bytes = 32) {
  // Up to 32 lanes: collect segment ids, sort, count distinct.
  std::size_t segs[64];
  std::size_t n = 0;
  for (std::size_t a : addrs) {
    if (a != kInactiveLane && n < 64) segs[n++] = a / segment_bytes;
  }
  if (n == 0) return 0;
  std::sort(segs, segs + n);
  std::size_t distinct = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (segs[i] != segs[i - 1]) ++distinct;
  }
  return distinct;
}

/// Charges one warp load: `addrs` are per-lane byte addresses; traffic is
/// distinct-segment count x segment size.
inline void charge_warp_load(KernelStats& st,
                             std::span<const std::size_t> addrs,
                             std::size_t segment_bytes = 32) {
  st.global_load_bytes += warp_transactions(addrs, segment_bytes) *
                          segment_bytes;
}

}  // namespace yaspmv::sim
