// Memory/compute counters recorded while a simulated kernel executes.
//
// Kernels account their traffic through these helpers instead of raw loads so
// that the performance model (yaspmv/perf) can translate the counts into
// modeled time on a given DeviceSpec.  Two kinds of accounting are used:
//
//  * coalesced/strided bulk accounting for the format arrays (value, column
//    index, bit flags) whose access pattern is statically known, and
//  * a per-access direct-mapped cache simulation for the multiplied-vector
//    reads, whose locality depends on the matrix structure (this is exactly
//    the effect the BCCOO+ vertical slicing targets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "yaspmv/util/common.hpp"

namespace yaspmv::sim {

/// Aggregate statistics for one kernel launch (or a sum over launches).
struct KernelStats {
  std::size_t global_load_bytes = 0;   ///< DRAM read traffic
  std::size_t global_store_bytes = 0;  ///< DRAM write traffic
  std::size_t vector_hits = 0;         ///< vector loads served by cache
  std::size_t vector_misses = 0;       ///< vector loads going to DRAM
  std::size_t flops = 0;               ///< useful floating-point ops
  std::size_t ideal_lanes = 0;   ///< sum of per-lane work items (balanced)
  std::size_t serialized_lanes = 0;  ///< sum over warps of max-lane work
  std::size_t kernel_launches = 0;
  std::size_t atomic_ops = 0;
  std::size_t spin_waits = 0;      ///< adjacent-sync waits observed
  std::size_t barriers = 0;        ///< workgroup-level barriers executed

  KernelStats& operator+=(const KernelStats& o) {
    global_load_bytes += o.global_load_bytes;
    global_store_bytes += o.global_store_bytes;
    vector_hits += o.vector_hits;
    vector_misses += o.vector_misses;
    flops += o.flops;
    ideal_lanes += o.ideal_lanes;
    serialized_lanes += o.serialized_lanes;
    kernel_launches += o.kernel_launches;
    atomic_ops += o.atomic_ops;
    spin_waits += o.spin_waits;
    barriers += o.barriers;
    return *this;
  }

  /// Records a perfectly coalesced bulk transfer of `count` elements of
  /// `elem_bytes` each (e.g. an offline-transposed value array).
  void add_coalesced_load(std::size_t count, std::size_t elem_bytes) {
    global_load_bytes += count * elem_bytes;
  }

  void add_coalesced_store(std::size_t count, std::size_t elem_bytes) {
    global_store_bytes += count * elem_bytes;
  }

  /// Records `count` loads of `elem_bytes` with a fixed stride between
  /// consecutive lanes of a warp.  The memory system fetches 128-byte
  /// transactions, so a stride larger than elem_bytes inflates traffic by
  /// min(stride, 128) / elem_bytes (this is the cost the paper's offline
  /// transpose eliminates).
  void add_strided_load(std::size_t count, std::size_t elem_bytes,
                        std::size_t stride_bytes) {
    const std::size_t eff =
        stride_bytes <= elem_bytes ? elem_bytes
                                   : (stride_bytes < 128 ? stride_bytes : 128);
    global_load_bytes += count * eff;
  }

  void add_strided_store(std::size_t count, std::size_t elem_bytes,
                         std::size_t stride_bytes) {
    const std::size_t eff =
        stride_bytes <= elem_bytes ? elem_bytes
                                   : (stride_bytes < 128 ? stride_bytes : 128);
    global_store_bytes += count * eff;
  }

  /// Records one warp's worth of divergent work: `lane_work[i]` items were
  /// executed by lane i; lockstep execution serializes the warp to the
  /// maximum.
  void add_warp_work(const std::size_t* lane_work, int lanes) {
    std::size_t mx = 0, sum = 0;
    for (int i = 0; i < lanes; ++i) {
      sum += lane_work[i];
      if (lane_work[i] > mx) mx = lane_work[i];
    }
    ideal_lanes += sum;
    serialized_lanes += mx * static_cast<std::size_t>(lanes);
  }

  /// Warp-divergence slowdown factor (>= 1).
  double divergence_factor() const {
    if (ideal_lanes == 0) return 1.0;
    const double f = static_cast<double>(serialized_lanes) /
                     static_cast<double>(ideal_lanes);
    return f < 1.0 ? 1.0 : f;
  }

  double vector_hit_rate() const {
    const std::size_t n = vector_hits + vector_misses;
    return n == 0 ? 0.0 : static_cast<double>(vector_hits) /
                              static_cast<double>(n);
  }
};

/// Direct-mapped cache simulator for multiplied-vector accesses.  Tag array
/// indexed by line; O(1) per access.  One instance models the read-only /
/// texture cache of the SM a workgroup runs on.
class VectorCacheSim {
 public:
  VectorCacheSim(std::size_t capacity_bytes, std::size_t line_bytes,
                 std::size_t elem_bytes)
      : line_elems_(line_bytes / elem_bytes),
        num_lines_(capacity_bytes / line_bytes),
        line_bytes_(line_bytes),
        tags_(num_lines_ ? num_lines_ : 1, kInvalid) {}

  /// Accesses vector element `idx`; updates `stats` hit/miss counters and
  /// DRAM traffic on a miss.
  void access(std::size_t idx, KernelStats& stats) {
    const std::size_t line = idx / line_elems_;
    const std::size_t slot = line % tags_.size();
    if (tags_[slot] == line) {
      stats.vector_hits++;
    } else {
      tags_[slot] = line;
      stats.vector_misses++;
      stats.global_load_bytes += line_bytes_;
    }
  }

  void reset() { std::fill(tags_.begin(), tags_.end(), kInvalid); }

 private:
  static constexpr std::size_t kInvalid = ~std::size_t{0};
  std::size_t line_elems_;
  std::size_t num_lines_;
  std::size_t line_bytes_;
  std::vector<std::size_t> tags_;
};

}  // namespace yaspmv::sim
