// Device descriptions for the GPU execution-model simulator.
//
// The paper evaluates on an NVIDIA GTX680 (Kepler GK104) and a GTX480
// (Fermi GF100).  We reproduce their relevant architectural parameters from
// the public datasheets; the performance model (yaspmv/perf) combines these
// with the memory/compute counters recorded by the simulator to produce
// modeled execution times.  Absolute GFLOPS will not match the authors'
// testbed, but the parameters below preserve the ratios that drive the
// paper's figures: bandwidth-to-compute ratio, shared-memory capacity,
// texture-cache capacity, and kernel-launch overhead.
#pragma once

#include <cstddef>
#include <string>

namespace yaspmv::sim {

struct DeviceSpec {
  std::string name;

  // Execution resources.
  int num_sm = 8;           ///< streaming multiprocessors
  int warp_size = 32;       ///< SIMD width; threads in a warp run in lockstep
  int max_workgroup_size = 1024;

  // Memory system.
  double mem_bandwidth_gbps = 192.0;  ///< peak DRAM bandwidth (GB/s)
  double mem_efficiency = 0.80;       ///< achievable fraction for streaming
  std::size_t shared_mem_per_workgroup = 48 * 1024;  ///< bytes
  std::size_t tex_cache_per_sm = 48 * 1024;  ///< read-only/texture cache bytes
  std::size_t cache_line_bytes = 32;  ///< texture-cache line granularity

  // Compute throughput.
  double peak_gflops_sp = 3090.0;  ///< single-precision peak

  // Overheads.
  double kernel_launch_us = 5.0;   ///< per kernel invocation
  // Global atomics and adjacent-sync spins largely overlap with other
  // resident warps; the costs below are the *exposed* per-op latencies
  // (calibrated so one logical-id atomic per workgroup stays under the
  // paper's <2% overhead observation).
  double atomic_op_ns = 1.0;       ///< global atomic (logical workgroup ids)
  double spin_wait_ns = 10.0;      ///< adjacent-sync wait when chain is cold

  // Thread-scaling terms (perf::model_time_threads): per-launch cost of
  // waking one additional pool worker, and the per-chunk cost of the
  // speculative carry fix-up (one lane-panel slot touched per chunk; the
  // chunk grid is 4 slots per requested thread).  Both charge overhead
  // that *grows* with the requested thread count, which is what lets the
  // tuner rank candidates at a serving thread count instead of at 1.
  double thread_wake_us = 2.0;     ///< per extra worker per launch
  double carry_slot_ns = 15.0;     ///< per fix-up slot (4T per launch)

  // Per-block dispatch overhead of the *generic* chunk kernel: runtime
  // block_w/block_h loop bounds, the indirect dense-dot call, and the
  // column-stream switch cost a few branch/call cycles per block that the
  // compile-time specialization grid (cpu/kernels_grid.hpp) eliminates.
  // perf::model_time_dispatch charges this only to generic-dispatched
  // candidates, so the tuner's ranking can prefer a config the grid
  // serves when two configs are otherwise modeled equal.
  double block_branch_ns = 0.6;    ///< per block, generic dispatch only

  // Cross-domain bandwidth for shard-aware execution (perf::
  // model_time_sharded): the rate at which one NUMA node reads memory
  // homed on another (interconnect-limited), vs mem_bandwidth_gbps for
  // node-local streams.  0 means uniform memory — a single-node box —
  // and the sharded model collapses to model_time_threads exactly.
  double cross_node_gbps = 0.0;  ///< remote-read bandwidth (0 = uniform)

  /// Fraction of warp-divergence slowdown that is actually *exposed*: the
  /// SM hides most of a divergent warp's idle slots behind other resident
  /// warps, so the effective memory-issue throttle is
  /// 1 + (divergence_factor - 1) * divergence_exposure.  Fermi (GTX480)
  /// has fewer resident warps to hide behind, so its exposure is higher.
  double divergence_exposure = 0.4;

  /// Total texture-cache capacity used by the vector-access cache model
  /// (workgroups are spread over all SMs, each with a private cache; we model
  /// a single cache of one SM's capacity since a workgroup only sees its own
  /// SM's cache).
  std::size_t vector_cache_bytes(bool use_texture) const {
    // Without the texture path, vector reads go through the (smaller
    // per-access-efficiency) L2 slice; modeled as half the texture capacity
    // with the same line size.
    return use_texture ? tex_cache_per_sm : tex_cache_per_sm / 2;
  }
};

/// NVIDIA GTX680 (Kepler GK104): 8 SMX, 192 GB/s, 3090 GFLOPS SP, 48 KB
/// read-only data cache per SMX.
inline DeviceSpec gtx680() {
  DeviceSpec d;
  d.name = "GTX680";
  d.num_sm = 8;
  d.mem_bandwidth_gbps = 192.3;
  d.mem_efficiency = 0.80;
  d.shared_mem_per_workgroup = 48 * 1024;
  d.tex_cache_per_sm = 48 * 1024;
  d.peak_gflops_sp = 3090.0;
  d.kernel_launch_us = 5.0;
  return d;
}

/// NVIDIA GTX480 (Fermi GF100): 15 SMs, 177 GB/s, 1345 GFLOPS SP, 12 KB
/// texture cache per SM.
inline DeviceSpec gtx480() {
  DeviceSpec d;
  d.name = "GTX480";
  d.num_sm = 15;
  d.mem_bandwidth_gbps = 177.4;
  d.mem_efficiency = 0.75;  // Fermi's coalescer is less forgiving
  d.shared_mem_per_workgroup = 48 * 1024;
  d.tex_cache_per_sm = 12 * 1024;
  d.peak_gflops_sp = 1345.0;
  d.kernel_launch_us = 7.0;
  d.divergence_exposure = 0.5;
  return d;
}

}  // namespace yaspmv::sim
