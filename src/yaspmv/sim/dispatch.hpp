// Workgroup/thread execution model.
//
// A simulated kernel is a callable invoked once per workgroup.  Inside, the
// kernel alternates between *phases*: a phase runs a thread body for every
// thread id in the workgroup, and the boundary between two phases has
// workgroup-barrier semantics (exactly how the paper's kernels use
// barrier(CLK_LOCAL_MEM_FENCE) between producing last_partial_sums and
// scanning them).  Per-thread state that must survive a barrier lives in
// arrays indexed by tid, mirroring registers spilled around a barrier.
//
// Workgroups are dispatched strictly in order — the paper's stated hardware
// assumption (Section 3.2.4) — either sequentially on the calling thread or
// on a worker pool whose workers claim workgroup ids from an ordered ticket.
// The pooled mode genuinely exercises the adjacent-synchronization spin
// chain with std::atomic acquire/release.
//
// With a FlightRecorder attached (sim/journal.hpp) every dispatch ticket and
// phase transition is journaled and heart-beaten; with a ReplayCoordinator
// attached on top (sim/replay.hpp) the launch switches to the *replay
// dispatcher*: workgroups run on the recorded worker assignment and every
// gated event is admitted in recorded order, re-executing a pooled
// interleaving deterministically.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "yaspmv/core/status.hpp"
#include "yaspmv/sim/counters.hpp"
#include "yaspmv/sim/device.hpp"
#include "yaspmv/sim/fault.hpp"
#include "yaspmv/sim/journal.hpp"
#include "yaspmv/sim/replay.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv::sim {

/// Raised when a kernel violates a device constraint (shared-memory
/// overflow, bad workgroup size, register budget, ...).  Part of the
/// SpmvError taxonomy as Status::kResourceExceeded; the adjacent-sync
/// failures raise the more specific yaspmv::SyncTimeout instead.
class SimError : public SpmvError {
 public:
  explicit SimError(const std::string& msg)
      : SpmvError(Status::kResourceExceeded, msg) {}
};

struct LaunchConfig {
  int num_workgroups = 1;
  int workgroup_size = 64;
  unsigned workers = 1;      ///< OS threads dispatching workgroups
  bool use_texture = true;   ///< route vector loads via the texture cache
  bool logical_ids = false;  ///< fetch workgroup ids via a global atomic
  FaultInjector* fault = nullptr;  ///< nullable; non-null only under injection
  LaunchKind kind = LaunchKind::kMain;  ///< which launch this is, for kFailLaunch
  FlightRecorder* recorder = nullptr;  ///< nullable; journal + watchdog + replay
};

/// Per-workgroup execution context handed to the kernel callable.
class WorkgroupCtx {
 public:
  WorkgroupCtx(const DeviceSpec& dev, const LaunchConfig& cfg, int wg_id,
               VectorCacheSim& vcache)
      : dev_(dev),
        cfg_(cfg),
        wg_id_(wg_id),
        vcache_(vcache),
        arena_(dev.shared_mem_per_workgroup * 4) {}

  int wg_id() const { return wg_id_; }
  int num_workgroups() const { return cfg_.num_workgroups; }
  int wg_size() const { return cfg_.workgroup_size; }
  const DeviceSpec& device() const { return dev_; }
  bool use_texture() const { return cfg_.use_texture; }
  KernelStats& stats() { return stats_; }

  /// Allocates a shared-memory array of `n` elements of host type T.
  /// `device_elem_bytes` is the element width charged against the device's
  /// shared-memory capacity (host doubles model device floats).  Pointers
  /// stay valid for the whole workgroup (arena is preallocated).
  template <class T>
  std::span<T> shared_array(std::size_t n, std::size_t device_elem_bytes) {
    const std::size_t host_bytes = n * sizeof(T);
    const std::size_t aligned = (arena_off_ + alignof(T) - 1) &
                                ~(alignof(T) - 1);
    if (aligned + host_bytes > arena_.size()) {
      throw SimError("simulator shared-memory arena exhausted");
    }
    device_shared_bytes_ += n * device_elem_bytes;
    if (device_shared_bytes_ > dev_.shared_mem_per_workgroup) {
      throw SimError("workgroup exceeds device shared memory: " +
                     std::to_string(device_shared_bytes_) + " > " +
                     std::to_string(dev_.shared_mem_per_workgroup));
    }
    auto* p = reinterpret_cast<T*>(arena_.data() + aligned);
    arena_off_ = aligned + host_bytes;
    std::memset(arena_.data() + aligned, 0, host_bytes);
    return {p, n};
  }

  std::size_t device_shared_bytes() const { return device_shared_bytes_; }

  /// Runs `body(tid)` for every thread of the workgroup, then acts as a
  /// workgroup barrier.  Phase boundaries double as the watchdog's progress
  /// heartbeats: a waiter diagnosing a hang can see which phase the stalled
  /// workgroup last completed.
  template <class F>
  void phase(F&& body) {
    for (int t = 0; t < cfg_.workgroup_size; ++t) body(t);
    stats_.barriers++;
    if (cfg_.recorder) {
      cfg_.recorder->progress().mark(static_cast<std::size_t>(wg_id_),
                                     phase_idx_);
      cfg_.recorder->record(EventType::kPhase, cfg_.kind, wg_id_, phase_idx_);
      phase_idx_++;
    }
  }

  /// Reads multiplied-vector element `idx` through the (texture or L2)
  /// cache model.  Returns nothing: the *value* is read by the kernel from
  /// the host array directly; this call only accounts the traffic.
  void touch_vector(std::size_t idx) { vcache_.access(idx, stats_); }

  /// Resets the context for reuse by the next workgroup on this worker.
  void begin_workgroup(int wg_id) {
    wg_id_ = wg_id;
    arena_off_ = 0;
    device_shared_bytes_ = 0;
    phase_idx_ = 0;
    stats_ = KernelStats{};
  }

 private:
  const DeviceSpec& dev_;
  const LaunchConfig& cfg_;
  int wg_id_;
  VectorCacheSim& vcache_;
  std::vector<unsigned char> arena_;
  std::size_t arena_off_ = 0;
  std::size_t device_shared_bytes_ = 0;
  std::int32_t phase_idx_ = 0;  ///< barriers completed by this workgroup
  KernelStats stats_;
};

/// Launches `kernel` over `cfg.num_workgroups` workgroups and returns the
/// aggregated statistics (with kernel_launches = 1).
template <class Kernel>
KernelStats launch(const DeviceSpec& dev, const LaunchConfig& cfg,
                   Kernel&& kernel) {
  if (cfg.workgroup_size <= 0 || cfg.workgroup_size > dev.max_workgroup_size) {
    throw SimError("invalid workgroup size " +
                   std::to_string(cfg.workgroup_size));
  }
  if (cfg.fault && cfg.fault->should_fail_launch(cfg.kind)) {
    throw LaunchFailure(std::string("injected launch failure (") +
                        to_string(cfg.kind) + " kernel)");
  }
  KernelStats total;
  total.kernel_launches = 1;
  std::mutex merge_mu;
  std::atomic<int> logical_counter{0};
  // First exception thrown by any workgroup (pooled workers must not let it
  // escape the OS thread); rethrown to the caller after the join.
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};

  FlightRecorder* const rec = cfg.recorder;
  ReplayCoordinator* const coord = rec ? rec->coordinator() : nullptr;
  // Replay gating applies only to the launch kind the schedule was recorded
  // from (the main kernel's adjacent-sync interleaving); other launches of
  // the same run execute normally.
  const bool gated = coord && coord->schedule().kind == cfg.kind;
  std::vector<std::vector<std::int32_t>> replay_lists;
  if (gated) {
    const Schedule& s = coord->schedule();
    if (s.num_workgroups != cfg.num_workgroups ||
        s.workgroup_size != cfg.workgroup_size) {
      throw ScheduleDiverged(
          "replay schedule geometry mismatch: recorded " +
          std::to_string(s.num_workgroups) + " workgroups of size " +
          std::to_string(s.workgroup_size) + ", launching " +
          std::to_string(cfg.num_workgroups) + " of size " +
          std::to_string(cfg.workgroup_size) +
          " (different matrix or config?)");
    }
    replay_lists = s.worker_wgs();
  }

  const unsigned workers =
      gated ? static_cast<unsigned>(replay_lists.size())
            : (cfg.workers == 0 ? default_workers() : cfg.workers);

  if (rec) {
    rec->progress().resize(static_cast<std::size_t>(cfg.num_workgroups));
    rec->record(EventType::kLaunchBegin, cfg.kind, -1, cfg.num_workgroups);
  }

  // Worker-local contexts (cache sim + arena) are created lazily per worker.
  // In sequential mode a single context is reused across all workgroups so
  // the vector cache carries state between consecutive workgroups, modeling
  // workgroups sharing an SM's cache over time.
  struct WorkerState {
    std::unique_ptr<VectorCacheSim> vcache;
    std::unique_ptr<WorkgroupCtx> ctx;
    KernelStats local;
  };
  std::vector<WorkerState> states(workers ? workers : 1);

  auto run_wg = [&](unsigned worker, std::size_t wg) {
    if (failed.load(std::memory_order_acquire)) return;
    WorkerState& ws = states[worker];
    if (rec) FlightRecorder::set_current_worker(
        static_cast<std::uint16_t>(worker));
    int id = static_cast<int>(wg);
    try {
    if (!ws.vcache) {
      ws.vcache = std::make_unique<VectorCacheSim>(
          dev.vector_cache_bytes(cfg.use_texture), dev.cache_line_bytes,
          bytes::kValue);
      ws.ctx = std::make_unique<WorkgroupCtx>(dev, cfg, 0, *ws.vcache);
    }
    if (cfg.logical_ids) {
      if (gated) {
        // The replay schedule already names the workgroup; the recorded
        // logical id equals the ticket under gated (serialized) begins.
        ws.local.atomic_ops++;
      } else {
        // The paper's fallback for out-of-order dispatch: a global atomic
        // fetch-and-add hands out logical ids.  Our ticket order makes the
        // result identical; we still count the atomic.
        id = logical_counter.fetch_add(1, std::memory_order_relaxed);
        ws.local.atomic_ops++;
      }
    }
    if (gated) {
      const auto step = coord->await(id);
      if (step && step->type != EventType::kWgBegin) {
        coord->diverge("workgroup " + std::to_string(id) +
                       " began, but the schedule expected " +
                       std::string(to_string(step->type)) +
                       " of workgroup " + std::to_string(step->wg));
      }
      if (rec) {
        rec->progress().mark(static_cast<std::size_t>(id), 0);
        rec->record(EventType::kWgBegin, cfg.kind, id);
      }
      if (step) coord->advance();
    } else if (rec) {
      rec->progress().mark(static_cast<std::size_t>(id), 0);
      rec->record(EventType::kWgBegin, cfg.kind, id);
    }
    ws.ctx->begin_workgroup(id);
    kernel(*ws.ctx);
    ws.local += ws.ctx->stats();
    if (rec) {
      rec->progress().mark(static_cast<std::size_t>(id),
                           ProgressTable::kDone);
      rec->record(EventType::kWgEnd, cfg.kind, id);
    }
    } catch (...) {
      if (rec) {
        rec->progress().mark(static_cast<std::size_t>(id),
                             ProgressTable::kFailed);
        rec->record(EventType::kWgFailed, cfg.kind, id);
      }
      {
        std::lock_guard<std::mutex> lk(merge_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
      // Unblock replay gates only after the first error is stored, so the
      // secondary "replay aborted" divergences never win the race to be it.
      if (coord) coord->abort_replay();
    }
  };

  if (gated) {
    // Replay dispatcher: the recorded workgroup->worker assignment, with
    // every gated event admitted in schedule order.  Workgroups absent from
    // the schedule (minimized away) do not run.
    std::vector<std::thread> pool;
    pool.reserve(replay_lists.size());
    for (std::size_t w = 1; w < replay_lists.size(); ++w) {
      pool.emplace_back([&run_wg, &replay_lists, w] {
        for (std::int32_t g : replay_lists[w]) {
          run_wg(static_cast<unsigned>(w), static_cast<std::size_t>(g));
        }
      });
    }
    if (!replay_lists.empty()) {
      for (std::int32_t g : replay_lists[0]) {
        run_wg(0, static_cast<std::size_t>(g));
      }
    }
    for (auto& t : pool) t.join();
  } else {
    parallel_for_ordered(static_cast<std::size_t>(cfg.num_workgroups),
                         workers, run_wg);
  }
  if (first_error) std::rethrow_exception(first_error);
  if (rec) rec->record(EventType::kLaunchEnd, cfg.kind, -1);

  for (auto& ws : states) {
    std::lock_guard<std::mutex> lk(merge_mu);
    total += ws.local;
  }
  return total;
}

}  // namespace yaspmv::sim
