// Deterministic fault injection for the simulated pipeline.
//
// The paper's single-kernel design leans on adjacent synchronization: one
// stalled workgroup wedges every successor spinning on Grp_sum.  To grow a
// resilient execution layer we first need a way to *cause* those failures on
// demand.  A FaultInjector carries one armed FaultPlan; the simulator's
// injection sites (AdjacentBuffer publish, the strategy-2 result cache in
// run_spmv_kernel, sim::launch) consult it through a nullable pointer, so the
// fault-free hot path costs a single null check per site.
//
// Plans are seeded and fully deterministic: the same plan against the same
// matrix/config produces the same failure, which is what the chaos tests and
// the --inject CLI mode rely on.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>

#include "yaspmv/util/rng.hpp"

namespace yaspmv::sim {

enum class FaultType : std::uint8_t {
  kNone = 0,
  kDropPublish,     ///< workgroup never publishes Grp_sum (values lost)
  kStallPublish,    ///< publish withheld past any waiter's spin budget
  kCorruptPublish,  ///< Grp_sum published with perturbed partial sums
  kCorruptCache,    ///< strategy-2 result cache entry silently perturbed
  kFailLaunch,      ///< a kernel launch fails before any workgroup runs
  kFlipPartial,     ///< single bit flip in a partial sum mid-combine
};

inline const char* to_string(FaultType t) {
  switch (t) {
    case FaultType::kNone: return "none";
    case FaultType::kDropPublish: return "drop-publish";
    case FaultType::kStallPublish: return "stall-publish";
    case FaultType::kCorruptPublish: return "corrupt-publish";
    case FaultType::kCorruptCache: return "corrupt-cache";
    case FaultType::kFailLaunch: return "fail-launch";
    case FaultType::kFlipPartial: return "flip-partial";
  }
  return "unknown";
}

/// Which launch a kFailLaunch plan targets.
enum class LaunchKind : std::uint8_t { kMain = 0, kCarry, kCombine };

inline const char* to_string(LaunchKind k) {
  switch (k) {
    case LaunchKind::kMain: return "main";
    case LaunchKind::kCarry: return "carry";
    case LaunchKind::kCombine: return "combine";
  }
  return "unknown";
}

/// One deterministic fault.  Publish/cache faults hit `target_wg` (or every
/// workgroup when it is negative); launch faults hit every launch of `launch`
/// kind.  Faults are persistent — they fire on every retry that exercises the
/// same site — so recovery must *route around* the site, exactly like a real
/// broken SM or a systematically failing kernel.
struct FaultPlan {
  FaultType type = FaultType::kNone;
  int target_wg = 0;
  LaunchKind launch = LaunchKind::kCarry;
  /// Additive perturbation for the corrupt faults; 0 derives a deterministic
  /// non-zero value from the injector seed.
  double magnitude = 0.0;
  /// Bit-flip targeting (kFlipPartial).  target_index < 0 or bit < 0 derive
  /// deterministic values from the injector seed per firing opportunity.
  std::int64_t target_index = -1;  ///< element flipped (mod the span length)
  int bit = -1;                    ///< bit flipped (0..63)
  /// Transience window: the site skips its first `fire_after` opportunities,
  /// then fires at most `max_fires` times (0 = unlimited, i.e. the default
  /// persistent-fault behavior every other site has).  A one-shot transient
  /// flip mid-solve is {fire_after = k, max_fires = 1}.
  std::uint32_t fire_after = 0;
  std::uint32_t max_fires = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5eedf417u) : seed_(seed) {}

  void arm(const FaultPlan& plan) {
    plan_ = plan;
    fired_.store(0, std::memory_order_relaxed);
    opportunities_.store(0, std::memory_order_relaxed);
  }
  void disarm() { plan_.type = FaultType::kNone; }
  bool armed() const { return plan_.type != FaultType::kNone; }
  const FaultPlan& plan() const { return plan_; }

  /// Times the armed fault actually fired at its site (across all retries).
  std::size_t fired() const { return fired_.load(std::memory_order_relaxed); }

  /// When non-zero, AdjacentBuffer uses this instead of kMaxSpins so chaos
  /// tests detect a dead predecessor in microseconds, not minutes.
  std::size_t spin_budget_override = 0;

  // ---- injection sites ----------------------------------------------------

  /// AdjacentBuffer::publish.  Returns true when the publish must be
  /// suppressed (drop keeps nothing; stall models a value computed but never
  /// made visible — identical to waiters, kept distinct for reporting).
  bool suppress_publish(std::size_t wg) {
    if ((plan_.type != FaultType::kDropPublish &&
         plan_.type != FaultType::kStallPublish) ||
        !matches_wg(wg)) {
      return false;
    }
    fired_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Side-effect-free version of suppress_publish for timeout *attribution*:
  /// would the armed plan swallow workgroup `wg`'s publish?  Used by the
  /// adjacent-sync watchdog to say "its publish was suppressed by an armed
  /// drop-publish fault" instead of guessing.
  bool suppresses_publish(std::size_t wg) const {
    return (plan_.type == FaultType::kDropPublish ||
            plan_.type == FaultType::kStallPublish) &&
           matches_wg(wg);
  }

  /// AdjacentBuffer::publish, corrupt variant: perturbs the partial sums
  /// right before they become visible to successors.
  void mutate_publish(std::size_t wg, std::span<double> v) {
    if (plan_.type != FaultType::kCorruptPublish || !matches_wg(wg)) return;
    fired_.fetch_add(1, std::memory_order_relaxed);
    for (auto& x : v) x += perturbation(wg);
  }

  /// run_spmv_kernel, after phase A filled the strategy-2 result cache.
  void corrupt_result_cache(std::size_t wg, std::span<double> cache) {
    if (plan_.type != FaultType::kCorruptCache || !matches_wg(wg) ||
        cache.empty()) {
      return;
    }
    fired_.fetch_add(1, std::memory_order_relaxed);
    cache[0] += perturbation(wg);
  }

  /// sim::launch, before dispatching any workgroup.  True = the launch must
  /// fail (the caller raises LaunchFailure).
  bool should_fail_launch(LaunchKind kind) {
    if (plan_.type != FaultType::kFailLaunch || plan_.launch != kind) {
      return false;
    }
    fired_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// CpuSpmv carry fix-up, between the parallel chunk pass and the serial
  /// combine: flips one bit of one per-chunk partial sum — the classic
  /// transient soft error an ABFT checksum must catch, since the corrupted
  /// partial folds silently into every row of its chunk's first segment.
  /// Consulted once per apply; the plan's fire_after/max_fires window makes
  /// the flip transient (a retry of the same apply sees clean hardware).
  /// Returns true when a bit was flipped.
  bool flip_partial(std::span<double> partials) {
    if (plan_.type != FaultType::kFlipPartial || partials.empty()) {
      return false;
    }
    const std::uint32_t opp =
        opportunities_.fetch_add(1, std::memory_order_relaxed);
    if (opp < plan_.fire_after) return false;
    if (plan_.max_fires != 0 && opp >= plan_.fire_after + plan_.max_fires) {
      return false;
    }
    SplitMix64 rng(seed_ ^ (0xB17F117Bull + opp));
    const std::size_t idx =
        plan_.target_index >= 0
            ? static_cast<std::size_t>(plan_.target_index) % partials.size()
            : static_cast<std::size_t>(rng.next_below(
                  static_cast<std::uint64_t>(partials.size())));
    // Seeded default bits stay in the significant range (high mantissa /
    // exponent / sign): flips below the rounding floor are indistinguishable
    // from legal rounding by *any* checker and harmless by the same bound.
    const int bit = plan_.bit >= 0
                        ? plan_.bit & 63
                        : static_cast<int>(44 + rng.next_below(19));
    std::uint64_t raw;
    std::memcpy(&raw, &partials[idx], sizeof(raw));
    raw ^= 1ull << bit;
    std::memcpy(&partials[idx], &raw, sizeof(raw));
    fired_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

 private:
  bool matches_wg(std::size_t wg) const {
    return plan_.target_wg < 0 ||
           wg == static_cast<std::size_t>(plan_.target_wg);
  }

  /// Deterministic non-zero perturbation, stable per (seed, workgroup).
  double perturbation(std::size_t wg) const {
    if (plan_.magnitude != 0.0) return plan_.magnitude;
    SplitMix64 rng(seed_ ^ (0x9e37u + wg));
    return rng.next_double(1.0, 2.0) * 1e6;
  }

  std::uint64_t seed_;
  FaultPlan plan_{};
  std::atomic<std::size_t> fired_{0};
  std::atomic<std::uint32_t> opportunities_{0};
};

}  // namespace yaspmv::sim
