// Flight recorder for the simulated device.
//
// Under the pooled dispatcher an adjacent-synchronization failure depends on
// OS-thread interleaving: the ResilientEngine can detect and recover from it,
// but the exact schedule that produced it is gone by the time the exception
// surfaces.  The flight recorder closes that gap with three cooperating
// pieces, all carried by one FlightRecorder object attached (like a
// FaultInjector) through a nullable pointer so the idle path costs a single
// null check per site:
//
//  * Journal — a lock-free bounded event log.  Every dispatch-order ticket
//    (workgroup begin/end), phase/barrier transition, AdjacentBuffer
//    publish/wait/timeout and fault firing appends one fixed-size Event,
//    sequenced by an atomic counter.  When the journal is full new events are
//    *dropped* (and counted) rather than overwriting old ones: replay needs
//    the prefix from launch start, so the oldest events are the valuable
//    ones.
//
//  * ProgressTable — per-workgroup heartbeat + phase state, updated at every
//    begin/phase/end.  The AdjacentBuffer watchdog reads it to tell a
//    predecessor that is merely slow (heartbeat advancing) from one that is
//    dead or finished-without-publishing, and to attribute a timeout:
//    "workgroup X waiting on unpublished Grp_sum[X-1] (owner stalled in
//    phase P)".
//
//  * Replay hook — when a Schedule (sim/replay.hpp) is attached, the
//    dispatcher and AdjacentBuffer gate the schedule-relevant events through
//    a ReplayCoordinator, re-executing a recorded interleaving
//    deterministically.
//
// The journal's event sequence is *causally consistent* for the adjacent
// chain: a publish event claims its sequence number before the ready flag is
// released, and a wait-resolve claims its number after the flag is acquired,
// so in every recorded log the publish precedes the waits it satisfied.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "yaspmv/sim/fault.hpp"

namespace yaspmv::sim {

class ReplayCoordinator;  // sim/replay.hpp
struct Schedule;          // sim/replay.hpp

/// What happened.  The *gated* subset (see is_gated_event) defines a
/// recorded interleaving; the rest is diagnostic context.
enum class EventType : std::uint8_t {
  kLaunchBegin = 0,      ///< sim::launch entered; aux = num_workgroups
  kLaunchEnd,            ///< sim::launch joined cleanly
  kWgBegin,              ///< a worker claimed and started a workgroup [gated]
  kWgEnd,                ///< a workgroup ran to completion
  kWgFailed,             ///< a workgroup threw; aux = Status-ish hint
  kPhase,                ///< barrier-delimited phase done; aux = phase index
  kPublish,              ///< Grp_sum[wg] became visible [gated]
  kPublishSuppressed,    ///< publish swallowed by an armed fault [gated]
  kWaitBegin,            ///< wg started waiting; aux = predecessor wg
  kWaitResolve,          ///< wait satisfied; aux = predecessor wg [gated]
  kWaitTimeout,          ///< wait gave up; aux = predecessor wg [gated]
  kFaultFired,           ///< an injected fault hit a site; aux = FaultType
};

inline const char* to_string(EventType t) {
  switch (t) {
    case EventType::kLaunchBegin: return "launch-begin";
    case EventType::kLaunchEnd: return "launch-end";
    case EventType::kWgBegin: return "wg-begin";
    case EventType::kWgEnd: return "wg-end";
    case EventType::kWgFailed: return "wg-failed";
    case EventType::kPhase: return "phase";
    case EventType::kPublish: return "publish";
    case EventType::kPublishSuppressed: return "publish-suppressed";
    case EventType::kWaitBegin: return "wait-begin";
    case EventType::kWaitResolve: return "wait-resolve";
    case EventType::kWaitTimeout: return "wait-timeout";
    case EventType::kFaultFired: return "fault-fired";
  }
  return "unknown";
}

/// Events whose cross-thread order defines the interleaving a Schedule
/// replays.  Phases and wait-begins are intra-workgroup-deterministic and
/// stay ungated (recorded for diagnosis only).
inline bool is_gated_event(EventType t) {
  return t == EventType::kWgBegin || t == EventType::kPublish ||
         t == EventType::kPublishSuppressed ||
         t == EventType::kWaitResolve || t == EventType::kWaitTimeout;
}

/// One fixed-size journal record.  `seq` is a global logical clock (the
/// order the event claimed its slot); wall-clock timestamps are deliberately
/// absent — they would make journals non-reproducible.
struct Event {
  std::uint64_t seq = 0;
  EventType type = EventType::kLaunchBegin;
  std::uint8_t kind = 0;     ///< LaunchKind of the enclosing launch
  std::uint16_t worker = 0;  ///< OS worker that recorded the event
  std::int32_t wg = -1;      ///< acting workgroup (-1 for launch events)
  std::int32_t aux = 0;      ///< type-specific payload (see EventType)

  friend bool operator==(const Event& a, const Event& b) {
    return a.seq == b.seq && a.type == b.type && a.kind == b.kind &&
           a.worker == b.worker && a.wg == b.wg && a.aux == b.aux;
  }
};

/// Lock-free bounded event log.  Appends claim a slot with one fetch_add;
/// each slot is written at most once (overflow drops the event and bumps a
/// counter), so concurrent recording is race-free by construction and the
/// log reads back in sequence order after the run quiesces.
class Journal {
 public:
  explicit Journal(std::size_t capacity = 1u << 18)
      : cap_(capacity ? capacity : 1), events_(cap_) {}

  /// Appends one event; thread-safe, wait-free.  Returns the sequence
  /// number (also stored in the event), or the would-be number if dropped.
  std::uint64_t record(Event e) {
    const std::uint64_t seq = next_.fetch_add(1, std::memory_order_acq_rel);
    if (seq >= cap_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return seq;
    }
    e.seq = seq;
    events_[seq] = e;
    // Publish the slot: snapshot() readers on other threads synchronize via
    // the thread join in sim::launch, but a release here keeps standalone
    // readers correct too.
    committed_.fetch_add(1, std::memory_order_release);
    return seq;
  }

  /// Events recorded so far, in sequence order.  Only meaningful once the
  /// writers have quiesced (after sim::launch returned/threw).
  std::vector<Event> snapshot() const {
    const std::uint64_t n =
        std::min<std::uint64_t>(next_.load(std::memory_order_acquire), cap_);
    return {events_.begin(),
            events_.begin() + static_cast<std::ptrdiff_t>(n)};
  }

  std::size_t size() const {
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(next_.load(std::memory_order_acquire), cap_));
  }
  std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return cap_; }

  void reset() {
    next_.store(0, std::memory_order_relaxed);
    committed_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  std::size_t cap_;
  std::vector<Event> events_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::size_t> dropped_{0};
};

/// Per-workgroup progress heartbeats.  `beat` advances on every observable
/// step (begin, phase, end); `state` names where the workgroup currently is.
/// The watchdog distinguishes "slow but alive" (beat advancing) from "will
/// never publish" (done/failed, or beat frozen across many checks).
class ProgressTable {
 public:
  static constexpr std::int32_t kNotStarted = -1;
  static constexpr std::int32_t kDone = -2;
  static constexpr std::int32_t kFailed = -3;

  void resize(std::size_t n) {
    if (slots_ && n <= n_) {
      for (std::size_t i = 0; i < n_; ++i) {
        slots_[i].beat.store(0, std::memory_order_relaxed);
        slots_[i].state.store(kNotStarted, std::memory_order_relaxed);
      }
      return;
    }
    slots_ = std::make_unique<Slot[]>(n ? n : 1);
    n_ = n;
  }

  std::size_t size() const { return n_; }

  void mark(std::size_t wg, std::int32_t state) {
    if (wg >= n_) return;
    slots_[wg].state.store(state, std::memory_order_release);
    slots_[wg].beat.fetch_add(1, std::memory_order_release);
  }

  std::uint64_t beat(std::size_t wg) const {
    return wg < n_ ? slots_[wg].beat.load(std::memory_order_acquire) : 0;
  }
  std::int32_t state(std::size_t wg) const {
    return wg < n_ ? slots_[wg].state.load(std::memory_order_acquire)
                   : kNotStarted;
  }

  /// Human-readable owner state for timeout attribution.
  std::string describe(std::size_t wg) const {
    const std::int32_t s = state(wg);
    if (s == kNotStarted) return "never started";
    if (s == kDone) return "finished without publishing";
    if (s == kFailed) return "failed/threw";
    return "stalled in phase " + std::to_string(s);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> beat{0};
    std::atomic<std::int32_t> state{kNotStarted};
  };
  std::unique_ptr<Slot[]> slots_;
  std::size_t n_ = 0;
};

/// Everything one recorded (or replayed) engine run carries: the launch
/// geometry and fault plan needed to re-create the failing conditions, plus
/// the event log.  io/journal_io.{hpp,cpp} serializes it with the binary
/// container's checksum scheme.
struct RecordedRun {
  std::int32_t num_workgroups = 0;
  std::int32_t workgroup_size = 0;
  std::uint32_t workers = 1;
  FaultPlan fault{};                      ///< re-armed verbatim on replay
  std::uint64_t spin_budget_override = 0;
  std::vector<Event> events;
};

/// The recorder handle the simulator sites consult.  Owns the journal and
/// the progress table; optionally carries a replay coordinator (set up by
/// the caller from a Schedule) that turns recording sites into gates.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t journal_capacity = 1u << 18)
      : journal_(journal_capacity) {}

  Journal& journal() { return journal_; }
  const Journal& journal() const { return journal_; }
  ProgressTable& progress() { return progress_; }
  const ProgressTable& progress() const { return progress_; }

  /// Attaches a replay coordinator (non-owning); nullptr returns the
  /// recorder to record-only mode.  Must not be changed mid-launch.
  void set_coordinator(ReplayCoordinator* c) { coordinator_ = c; }
  ReplayCoordinator* coordinator() const { return coordinator_; }
  bool replaying() const { return coordinator_ != nullptr; }

  /// Per-OS-thread worker id, stamped into events so the recorded schedule
  /// knows the workgroup->worker assignment.
  static void set_current_worker(std::uint16_t w) { tl_worker_ = w; }
  static std::uint16_t current_worker() { return tl_worker_; }

  std::uint64_t record(EventType t, LaunchKind kind, std::int32_t wg,
                       std::int32_t aux = 0) {
    Event e;
    e.type = t;
    e.kind = static_cast<std::uint8_t>(kind);
    e.worker = tl_worker_;
    e.wg = wg;
    e.aux = aux;
    return journal_.record(e);
  }

  /// Clears the journal and progress for the next attempt; keeps the
  /// coordinator attachment.
  void reset() {
    journal_.reset();
    progress_.resize(progress_.size());
  }

 private:
  Journal journal_;
  ProgressTable progress_;
  ReplayCoordinator* coordinator_ = nullptr;
  static thread_local std::uint16_t tl_worker_;
};

inline thread_local std::uint16_t FlightRecorder::tl_worker_ = 0;

/// First wait-timeout in an event log (the failing workgroup of a recorded
/// hang), or a negative wg if the log holds none.
inline Event first_timeout_event(std::span<const Event> events) {
  for (const Event& e : events) {
    if (e.type == EventType::kWaitTimeout) return e;
  }
  Event none;
  none.wg = -1;
  none.type = EventType::kLaunchEnd;
  return none;
}

}  // namespace yaspmv::sim
