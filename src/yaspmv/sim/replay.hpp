// Schedule replay and minimization for recorded interleavings.
//
// A Schedule is the gated-event subsequence of a journal (sim/journal.hpp):
// workgroup begins, Grp_sum publishes (or their fault suppressions) and wait
// resolutions/timeouts, in the exact order they were recorded.  The replay
// dispatcher re-executes the launch with the recorded workgroup->worker
// assignment and a ReplayCoordinator that admits gated operations one at a
// time in schedule order, so a pooled-mode race or SyncTimeout becomes a
// repeatable unit test.  Two properties make this deadlock-free:
//
//  * the schedule is consistent with each worker's program order (sequence
//    numbers are claimed in program order per thread), and
//  * a publish always precedes the waits it satisfied (the journal claims
//    the publish's sequence number before releasing the ready flag).
//
// Any mismatch between the schedule and what the re-executed kernel actually
// does — a publish where a suppression was recorded, a resolve on an entry
// that is not published, a workgroup acting with no steps left — raises
// ScheduleDiverged (Status::kScheduleDiverged) instead of silently
// reinterpreting the schedule.
//
// minimize_schedule() delta-debugs a failing schedule: truncate after the
// first timeout, then repeatedly drop whole workgroups while a caller-
// provided oracle (which replays the candidate) confirms the failure still
// reproduces.  The result is never longer than the input.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "yaspmv/core/status.hpp"
#include "yaspmv/sim/journal.hpp"

namespace yaspmv::sim {

/// One admitted step of a replayed interleaving.
struct ScheduleStep {
  EventType type = EventType::kWgBegin;
  std::int32_t wg = -1;
  std::int32_t aux = 0;       ///< predecessor wg for waits
  std::uint16_t worker = 0;   ///< executing worker (assignment, for kWgBegin)

  friend bool operator==(const ScheduleStep& a, const ScheduleStep& b) {
    return a.type == b.type && a.wg == b.wg && a.aux == b.aux &&
           a.worker == b.worker;
  }
};

/// A recorded interleaving of one launch.  Workgroups absent from the steps
/// simply do not run under replay (that is what minimization removes).
struct Schedule {
  std::int32_t num_workgroups = 0;  ///< geometry of the recorded launch
  std::int32_t workgroup_size = 0;
  std::uint32_t workers = 1;
  LaunchKind kind = LaunchKind::kMain;
  std::vector<ScheduleStep> steps;

  /// Per-worker workgroup lists in begin order — the replay dispatcher's
  /// work assignment.  Workers beyond the recorded max id get empty lists.
  std::vector<std::vector<std::int32_t>> worker_wgs() const {
    std::vector<std::vector<std::int32_t>> lists(workers ? workers : 1);
    for (const ScheduleStep& s : steps) {
      if (s.type != EventType::kWgBegin) continue;
      if (s.worker >= lists.size()) lists.resize(s.worker + 1u);
      lists[s.worker].push_back(s.wg);
    }
    return lists;
  }

  friend bool operator==(const Schedule& a, const Schedule& b) {
    return a.num_workgroups == b.num_workgroups &&
           a.workgroup_size == b.workgroup_size && a.workers == b.workers &&
           a.kind == b.kind && a.steps == b.steps;
  }
};

/// Extracts the gated schedule of `kind`-launch events from a recorded run.
inline Schedule schedule_from_journal(const RecordedRun& run,
                                      LaunchKind kind = LaunchKind::kMain) {
  Schedule s;
  s.num_workgroups = run.num_workgroups;
  s.workgroup_size = run.workgroup_size;
  s.workers = run.workers;
  s.kind = kind;
  for (const Event& e : run.events) {
    if (static_cast<LaunchKind>(e.kind) != kind || !is_gated_event(e.type)) {
      continue;
    }
    s.steps.push_back({e.type, e.wg, e.aux, e.worker});
  }
  return s;
}

/// Re-expands a schedule into a synthetic event log so minimized schedules
/// serialize through the same journal container as recorded ones.
inline RecordedRun recorded_run_from_schedule(const Schedule& s,
                                              const FaultPlan& fault,
                                              std::uint64_t spin_override) {
  RecordedRun run;
  run.num_workgroups = s.num_workgroups;
  run.workgroup_size = s.workgroup_size;
  run.workers = s.workers;
  run.fault = fault;
  run.spin_budget_override = spin_override;
  run.events.reserve(s.steps.size());
  std::uint64_t seq = 0;
  for (const ScheduleStep& st : s.steps) {
    Event e;
    e.seq = seq++;
    e.type = st.type;
    e.kind = static_cast<std::uint8_t>(s.kind);
    e.worker = st.worker;
    e.wg = st.wg;
    e.aux = st.aux;
    run.events.push_back(e);
  }
  return run;
}

/// Admits gated operations in schedule order.  Each workgroup consumes its
/// own steps strictly in sequence; the global cursor serializes across
/// threads.  Divergence and stalls raise ScheduleDiverged.
class ReplayCoordinator {
 public:
  /// Spins this many iterations waiting for a turn before declaring the
  /// replay stalled (a diverged schedule can deadlock the gates; this turns
  /// that into a classified error instead of a hang).
  static constexpr std::uint64_t kStallSpins = 200'000'000;

  explicit ReplayCoordinator(const Schedule& s) : sched_(s) {
    std::size_t max_wg = 0;
    for (const ScheduleStep& st : s.steps) {
      if (st.wg >= 0) {
        max_wg = std::max(max_wg, static_cast<std::size_t>(st.wg) + 1);
      }
    }
    per_wg_.resize(max_wg);
    next_pos_.assign(max_wg, 0);
    for (std::size_t i = 0; i < s.steps.size(); ++i) {
      if (s.steps[i].wg >= 0) {
        per_wg_[static_cast<std::size_t>(s.steps[i].wg)].push_back(i);
      }
    }
  }

  const Schedule& schedule() const { return sched_; }

  /// True when `wg` has at least one step in the schedule (workgroups
  /// without steps are skipped entirely by the replay dispatcher).
  bool scheduled(std::int32_t wg) const {
    return wg >= 0 && static_cast<std::size_t>(wg) < per_wg_.size() &&
           !per_wg_[static_cast<std::size_t>(wg)].empty();
  }

  /// Blocks until workgroup `wg`'s next step is at the cursor and returns
  /// it.  The caller performs the admitted operation and then calls
  /// advance(); until then every other gate stays blocked, which is exactly
  /// the serialization that makes the replay deterministic.
  ///
  /// A workgroup with no steps left (its tail was minimized away) blocks
  /// until every scheduled step has been admitted, then gets nullopt: it
  /// runs free, which cannot perturb the already-fixed recorded prefix.
  std::optional<ScheduleStep> await(std::int32_t wg) {
    const auto wgz = static_cast<std::size_t>(wg);
    if (wg < 0 || wgz >= per_wg_.size() ||
        next_pos_[wgz] >= per_wg_[wgz].size()) {
      wait_for_cursor(sched_.steps.size(), wg);
      return std::nullopt;
    }
    const std::size_t my_index = per_wg_[wgz][next_pos_[wgz]];
    wait_for_cursor(my_index, wg);
    next_pos_[wgz]++;
    return sched_.steps[my_index];
  }

  /// Releases the turn taken by the last await() on this thread.
  void advance() { cursor_.fetch_add(1, std::memory_order_acq_rel); }

  /// Raises ScheduleDiverged for a step whose re-execution did not match
  /// the recording.  Deliberately does *not* poison the coordinator here:
  /// the dispatcher's per-workgroup catch stores the first error and only
  /// then calls abort_replay(), so the original failure always wins the
  /// race against the secondary "replay aborted" unwinds.
  [[noreturn]] void diverge(const std::string& why) {
    throw ScheduleDiverged(why);
  }

  /// Unblocks every spinning gate after a failure elsewhere; awaiting
  /// threads throw a (secondary, swallowed) ScheduleDiverged.
  void abort_replay() { aborted_.store(true, std::memory_order_release); }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

 private:
  /// Spins until the cursor reaches `index` (== steps.size() means "all
  /// scheduled steps admitted", the free-run gate).
  void wait_for_cursor(std::size_t index, std::int32_t wg) {
    std::uint64_t spins = 0;
    while (cursor_.load(std::memory_order_acquire) < index) {
      if (aborted_.load(std::memory_order_acquire)) {
        throw ScheduleDiverged(
            "replay aborted (another workgroup failed first)");
      }
      if (++spins % 64 == 0) std::this_thread::yield();
      if (spins > kStallSpins) {
        diverge("replay stalled: workgroup " + std::to_string(wg) +
                " waited for schedule step " + std::to_string(index) +
                " but the cursor stopped at " +
                std::to_string(cursor_.load(std::memory_order_acquire)) +
                " (inconsistent or hand-edited schedule?)");
      }
    }
  }

  Schedule sched_;
  std::vector<std::vector<std::size_t>> per_wg_;  ///< step indices per wg
  std::vector<std::size_t> next_pos_;  ///< per-wg cursor (single-thread each)
  std::atomic<std::size_t> cursor_{0};
  std::atomic<bool> aborted_{false};
};

/// Oracle for minimization: replays the candidate and reports whether the
/// original failure (same class, same failing workgroup) still reproduces.
using ReplayOracle = std::function<bool(const Schedule&)>;

struct MinimizeStats {
  int candidates = 0;   ///< oracle invocations
  int accepted = 0;     ///< candidates that still reproduced
};

/// Delta-debugs a failing schedule down to a smaller one that still fails,
/// in two moves: truncate everything after the first wait-timeout, then
/// greedily drop whole workgroups (latest first) to a fixpoint.  Candidates
/// are only kept when `reproduces` confirms them, so the result always
/// reproduces and is never longer than the input.
inline Schedule minimize_schedule(const Schedule& original,
                                  const ReplayOracle& reproduces,
                                  MinimizeStats* stats = nullptr) {
  MinimizeStats local;
  MinimizeStats& st = stats ? *stats : local;
  Schedule cur = original;

  // Move 1: the failure is the first timeout; later events are noise.
  for (std::size_t i = 0; i < cur.steps.size(); ++i) {
    if (cur.steps[i].type == EventType::kWaitTimeout) {
      if (i + 1 < cur.steps.size()) {
        Schedule cand = cur;
        cand.steps.resize(i + 1);
        st.candidates++;
        if (reproduces(cand)) {
          st.accepted++;
          cur = std::move(cand);
        }
      }
      break;
    }
  }

  // Move 2: drop whole workgroups until no single removal reproduces.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::int32_t> wgs;
    for (const ScheduleStep& s : cur.steps) {
      if (s.type == EventType::kWgBegin) wgs.push_back(s.wg);
    }
    // Latest-first: workgroups far from the failure drop out early.
    for (auto it = wgs.rbegin(); it != wgs.rend(); ++it) {
      if (wgs.size() <= 1) break;  // keep at least the failing workgroup
      Schedule cand = cur;
      std::erase_if(cand.steps, [&](const ScheduleStep& s) {
        return s.wg == *it;
      });
      if (cand.steps.empty() || cand.steps.size() == cur.steps.size()) {
        continue;
      }
      st.candidates++;
      if (reproduces(cand)) {
        st.accepted++;
        cur = std::move(cand);
        changed = true;
        break;  // wg list is stale; rebuild it
      }
    }
  }
  return cur;
}

}  // namespace yaspmv::sim
