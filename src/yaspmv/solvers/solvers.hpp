// Iterative solvers on top of the SpMV backends — the downstream workloads
// (Krylov methods, eigensolvers) that motivate SpMV optimization in the
// paper's introduction.
//
// Everything is written against the `Operator` duck type:
//
//   struct Operator {
//     index_t rows() const; index_t cols() const;
//     void apply(std::span<const real_t> x, std::span<real_t> y);  // y = A*x
//   };
//
// Adapters are provided for the serial CSR reference, the native CPU
// backend and the simulated GPU engine, so a solver can be moved between
// backends with one line.
//
// The primary loops run on the fused pooled vector kernels of
// cpu/vecops.hpp: adjacent vector updates collapse into one sweep
// (x += alpha p, r -= alpha q and the next rho = r.r happen in a single
// pass over the iterate), all per-iteration state lives in buffers
// allocated once up front, and every reduction uses the kernels' fixed
// chunk/lane order — so for a fixed SIMD dispatch level a solve is bitwise
// reproducible for any thread count (the vector ops are thread-count
// invariant; combined with the SpMV apply the full iterate is reproducible
// per (thread count, level)).  If the operator exposes `threads()` the
// vector kernels follow it; `SolveOptions::threads` overrides.
//
// The pre-fusion single-threaded loops are preserved verbatim under
// `solver::serial` as the numerical reference — the solver bench and the
// determinism tests compare against them.
#pragma once

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "yaspmv/core/checksum.hpp"
#include "yaspmv/core/engine.hpp"
#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/cpu/vecops.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/sim/fault.hpp"

namespace yaspmv::solver {

// ---------------------------------------------------------------------------
// Operator adapters
// ---------------------------------------------------------------------------

/// Serial CSR reference operator.
class CsrOperator {
 public:
  explicit CsrOperator(fmt::Csr m) : m_(std::move(m)) {}
  index_t rows() const { return m_.rows; }
  index_t cols() const { return m_.cols; }
  void apply(std::span<const real_t> x, std::span<real_t> y) {
    m_.spmv(x, y);
  }
  const fmt::Csr& matrix() const { return m_; }

 private:
  fmt::Csr m_;
};

/// Native CPU-parallel BCCOO operator.  `threads` feeds the format build,
/// the SpMV executor and (via `threads()`) the solvers' vector kernels, so
/// a solver run honors a CLI `--threads` end to end; `cs` picks the column
/// stream exactly like the `spmv` front end.
class CpuOperator {
 public:
  CpuOperator(const fmt::Coo& a, core::FormatConfig fc = {},
              unsigned threads = 0,
              core::ColStream cs = core::ColStream::kAuto)
      : eng_(std::make_shared<const core::Bccoo>(
                 core::Bccoo::build(a, fc, threads)),
             threads, cs) {}
  index_t rows() const { return eng_.format().rows; }
  index_t cols() const { return eng_.format().cols; }
  unsigned threads() const { return eng_.threads(); }
  core::ColStream col_stream() const { return eng_.col_stream(); }
  void apply(std::span<const real_t> x, std::span<real_t> y) {
    eng_.spmv(x, y);
  }
  /// Checksum-verified apply (throws IntegrityFault on silent corruption) —
  /// the checked solvers pick this up through the `apply_verified` duck-type
  /// probe.
  core::ChecksumReport apply_verified(std::span<const real_t> x,
                                      std::span<real_t> y) {
    return eng_.spmv_verified(x, y);
  }
  /// Forwards the in-flight adversary to the backend (nullptr detaches).
  void set_fault_injector(sim::FaultInjector* fault) {
    eng_.set_fault_injector(fault);
  }

 private:
  cpu::CpuSpmv eng_;
};

/// Simulated-device operator (accumulates the kernel statistics so a solve
/// can be performance-modeled end to end).
class SimOperator {
 public:
  SimOperator(const fmt::Coo& a, const core::FormatConfig& fc,
              const core::ExecConfig& ec, sim::DeviceSpec dev)
      : eng_(a, fc, ec, std::move(dev)) {}
  index_t rows() const { return eng_.format().rows; }
  index_t cols() const { return eng_.format().cols; }
  void apply(std::span<const real_t> x, std::span<real_t> y) {
    stats_ += eng_.run(x, y).stats;
    applies_++;
  }
  /// Checksum-verified apply on the simulated pipeline; the pre-combine
  /// partials attribute a failure to the slice that tripped.
  core::ChecksumReport apply_verified(std::span<const real_t> x,
                                      std::span<real_t> y) {
    apply(x, y);
    return core::verify_apply_or_throw(eng_.format(), x, y, eng_.partials(),
                                       "sim verified apply");
  }
  void set_fault_injector(sim::FaultInjector* fault) {
    eng_.set_fault_injector(fault);
  }
  const sim::KernelStats& stats() const { return stats_; }
  std::size_t applies() const { return applies_; }

 private:
  core::SpmvEngine eng_;
  sim::KernelStats stats_;
  std::size_t applies_ = 0;
};

// ---------------------------------------------------------------------------
// Solver drivers
// ---------------------------------------------------------------------------

struct SolveOptions {
  double tolerance = 1e-10;  ///< relative residual target ||r||/||b||
  long max_iterations = 10000;
  /// Worker count for the pooled vector kernels; 0 = follow the operator's
  /// `threads()` when it has one, else run them serially.  (The results do
  /// not depend on this — VecOps reductions are thread-count invariant —
  /// only the wall clock does.)
  unsigned threads = 0;
};

struct SolveReport {
  bool converged = false;
  long iterations = 0;
  double relative_residual = 0;
};

namespace detail {
inline double dot(std::span<const real_t> a, std::span<const real_t> b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
inline double norm(std::span<const real_t> a) { return std::sqrt(dot(a, a)); }

/// Vector-kernel worker count for a solve: explicit request wins, then the
/// operator's own thread count, then serial.
template <class Operator>
unsigned solver_threads(const Operator& A, unsigned requested) {
  if (requested != 0) return requested;
  if constexpr (requires { A.threads(); }) {
    return A.threads();
  } else {
    (void)A;
    return 1;
  }
}
}  // namespace detail

/// Conjugate gradient for symmetric positive-definite A.  `x` is the
/// initial guess on entry, the solution on exit.  One fused sweep per
/// iteration updates x and r and produces the new r.r.
template <class Operator>
SolveReport cg(Operator& A, std::span<const real_t> b, std::span<real_t> x,
               const SolveOptions& opt = {}) {
  require(A.rows() == A.cols(), "cg: operator must be square");
  const std::size_t n = b.size();
  cpu::VecOps vo(detail::solver_threads(A, opt.threads));
  std::vector<real_t> r(n), p(n), Ap(n);
  A.apply(x, Ap);
  vo.sub_scaled(b, 1.0, Ap, r);  // r = b - A x
  p.assign(r.begin(), r.end());
  double rr = vo.dot(r, r);
  const double bnorm = std::max(vo.nrm2(b), 1e-300);
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    rep.relative_residual = std::sqrt(rr) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
    A.apply(p, Ap);
    const double alpha = rr / vo.dot(p, Ap);
    // x += alpha p, r -= alpha Ap, rr_new = r.r — one pass.
    const double rr_new = vo.cg_fused_update(alpha, p, Ap, x, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    vo.xpay(r, beta, p);  // p = r + beta p
    rep.iterations++;
  }
  rep.relative_residual = std::sqrt(rr) / bnorm;
  return rep;
}

/// Jacobi-preconditioned conjugate gradient: M = diag(A).  Converges in
/// fewer iterations than plain CG when the diagonal varies strongly.
template <class Operator>
SolveReport pcg_jacobi(Operator& A, std::span<const real_t> diag,
                       std::span<const real_t> b, std::span<real_t> x,
                       const SolveOptions& opt = {}) {
  require(A.rows() == A.cols(), "pcg: operator must be square");
  const std::size_t n = b.size();
  for (std::size_t i = 0; i < n; ++i) {
    require(diag[i] != 0.0, "pcg: zero diagonal entry");
  }
  cpu::VecOps vo(detail::solver_threads(A, opt.threads));
  std::vector<real_t> r(n), z(n), p(n), Ap(n);
  A.apply(x, Ap);
  vo.sub_scaled(b, 1.0, Ap, r);
  double rz = vo.precond_dot(r, diag, z);  // z = r / diag fused with r.z
  p.assign(z.begin(), z.end());
  double rr = vo.dot(r, r);
  const double bnorm = std::max(vo.nrm2(b), 1e-300);
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    rep.relative_residual = std::sqrt(rr) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
    A.apply(p, Ap);
    const double alpha = rz / vo.dot(p, Ap);
    rr = vo.cg_fused_update(alpha, p, Ap, x, r);
    const double rz_new = vo.precond_dot(r, diag, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    vo.xpay(z, beta, p);  // p = z + beta p
    rep.iterations++;
  }
  rep.relative_residual = std::sqrt(rr) / bnorm;
  return rep;
}

/// Extracts the diagonal of a matrix in canonical COO (helper for the
/// Jacobi-based methods).
inline std::vector<real_t> extract_diagonal(const fmt::Coo& a) {
  std::vector<real_t> d(static_cast<std::size_t>(a.rows), 0.0);
  for (std::size_t i = 0; i < a.nnz(); ++i) {
    if (a.row_idx[i] == a.col_idx[i]) {
      d[static_cast<std::size_t>(a.row_idx[i])] = a.vals[i];
    }
  }
  return d;
}

/// BiCGSTAB for general (nonsymmetric) A.  The tail update fuses
/// x += alpha p + omega s, r = s - omega t, the residual norm AND the next
/// iteration's rho = r0.r into a single sweep.
template <class Operator>
SolveReport bicgstab(Operator& A, std::span<const real_t> b,
                     std::span<real_t> x, const SolveOptions& opt = {}) {
  require(A.rows() == A.cols(), "bicgstab: operator must be square");
  const std::size_t n = b.size();
  cpu::VecOps vo(detail::solver_threads(A, opt.threads));
  std::vector<real_t> r(n), r0(n), p(n), v(n), s(n), t(n);
  A.apply(x, v);
  vo.sub_scaled(b, 1.0, v, r);
  r0.assign(r.begin(), r.end());
  double rho = 1, alpha = 1, omega = 1;
  std::fill(p.begin(), p.end(), 0.0);
  std::fill(v.begin(), v.end(), 0.0);
  const double bnorm = std::max(vo.nrm2(b), 1e-300);
  double rr = vo.dot(r, r);
  double r0r = vo.dot(r0, r);  // rho candidate; r0 == r here
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    rep.relative_residual = std::sqrt(rr) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
    const double rho_new = r0r;
    if (rho_new == 0.0) break;  // breakdown
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    vo.bicg_p_update(r, beta, omega, v, p);  // p = r + beta (p - omega v)
    A.apply(p, v);
    alpha = rho / vo.dot(r0, v);
    vo.sub_scaled(r, alpha, v, s);  // s = r - alpha v
    A.apply(s, t);
    const cpu::DotPair tt_ts = vo.dot2(t, t, s);  // (t.t, t.s) in one pass
    omega = tt_ts.ab == 0.0 ? 0.0 : tt_ts.ac / tt_ts.ab;
    // x += alpha p + omega s, r = s - omega t, plus r.r and r0.r.
    const cpu::DotPair nx = vo.bicg_fused_update(alpha, p, omega, s, t, r0,
                                                 x, r);
    rr = nx.ab;
    r0r = nx.ac;
    rep.iterations++;
    if (omega == 0.0) break;  // breakdown
  }
  rep.relative_residual = std::sqrt(rr) / bnorm;
  return rep;
}

// ---------------------------------------------------------------------------
// Self-checking solvers (checksum-verified applies + checkpoint/rollback)
// ---------------------------------------------------------------------------
//
// A silent flip inside one apply poisons every later iterate: Krylov methods
// have no self-correction for a corrupted residual.  The checked drivers
// wrap the fused CG/BiCGStab loops with three defenses, and work with any
// Operator — on operators without `apply_verified` (e.g. the CSR reference)
// they degrade gracefully to plain applies plus the divergence guard:
//
//   * every `verify_every`-th apply runs checksum-verified (apply_verified),
//     so a flip is caught inside the iteration that suffered it;
//   * the solver checkpoints (x, r, p, scalars) every `checkpoint_every`
//     iterations; an integrity fault or a residual blow-up rolls back to the
//     checkpoint instead of restarting the solve — a transient flip costs at
//     most `checkpoint_every` iterations of rework;
//   * convergence is only reported after a final verified apply recomputes
//     the *true* residual from scratch — the accumulated recurrence residual
//     is never trusted on its own.

struct SelfCheckOptions {
  SolveOptions solve;
  /// Cadence of checksum-verified applies (1 = every apply; 0 disables).
  long verify_every = 1;
  /// Cadence of (x, r, p, scalars) snapshots; rollback lands on the latest.
  long checkpoint_every = 16;
  /// Rollbacks before the solver gives up (returns converged = false rather
  /// than looping forever against a persistent fault).
  int max_rollbacks = 8;
  /// A residual this many times worse than the best seen triggers rollback —
  /// the backstop for corruption that slipped between verified applies.
  double divergence_factor = 1e4;
};

struct CheckedSolveReport {
  SolveReport solve;
  long verified_applies = 0;   ///< applies run under the checksum
  long integrity_faults = 0;   ///< checksum mismatches caught
  long rollbacks = 0;          ///< checkpoint restores (faults + divergence)
  /// True when the final true-residual recomputation ran verified.
  bool final_residual_verified = false;
};

namespace detail {
/// Runs `A.apply_verified` when the operator has one and the cadence says
/// verify, else the plain apply.  Counts verified applies in `rep`.
template <class Operator>
void checked_apply(Operator& A, std::span<const real_t> in,
                   std::span<real_t> out, bool verify,
                   CheckedSolveReport& rep) {
  if constexpr (requires { A.apply_verified(in, out); }) {
    if (verify) {
      ++rep.verified_applies;
      A.apply_verified(in, out);
      return;
    }
  }
  A.apply(in, out);
}
}  // namespace detail

/// Self-checking conjugate gradient.  Converges to the same tolerance as
/// `cg` on clean hardware; under transient bit flips it detects, rolls back
/// and re-converges instead of silently returning a poisoned x.
template <class Operator>
CheckedSolveReport cg_checked(Operator& A, std::span<const real_t> b,
                              std::span<real_t> x,
                              const SelfCheckOptions& opt = {}) {
  require(A.rows() == A.cols(), "cg_checked: operator must be square");
  const std::size_t n = b.size();
  cpu::VecOps vo(detail::solver_threads(A, opt.solve.threads));
  CheckedSolveReport rep;
  SolveReport& s = rep.solve;
  std::vector<real_t> r(n), p(n), Ap(n);
  // Checkpoint 0 is the initial guess: a fault before the first full
  // snapshot re-derives r/p from x (init = true).
  std::vector<real_t> ck_x(x.begin(), x.end()), ck_r, ck_p;
  double ck_rr = 0;
  long ck_iter = 0;
  bool ck_full = false;
  const double bnorm = std::max(vo.nrm2(b), 1e-300);
  double rr = 0;
  double best = std::numeric_limits<double>::infinity();
  bool init = true;

  auto rollback = [&](bool integrity) -> bool {
    if (integrity) ++rep.integrity_faults;
    if (++rep.rollbacks > opt.max_rollbacks) return false;
    std::copy(ck_x.begin(), ck_x.end(), x.begin());
    if (ck_full) {
      r.assign(ck_r.begin(), ck_r.end());
      p.assign(ck_p.begin(), ck_p.end());
      rr = ck_rr;
      s.iterations = ck_iter;
      init = false;
    } else {
      init = true;
    }
    return true;
  };

  while (true) {
    try {
      if (init) {
        // The bootstrap residual seeds everything downstream — always verify.
        detail::checked_apply(A, x, Ap, opt.verify_every > 0, rep);
        vo.sub_scaled(b, 1.0, Ap, r);
        p.assign(r.begin(), r.end());
        rr = vo.dot(r, r);
        init = false;
      }
      s.relative_residual = std::sqrt(rr) / bnorm;
      if (s.relative_residual <= opt.solve.tolerance) {
        s.converged = true;
        break;
      }
      if (s.iterations >= opt.solve.max_iterations) break;
      // Divergence guard (NaN-safe: a NaN residual fails the <= and rolls
      // back) — catches corruption between verified applies.
      if (best < std::numeric_limits<double>::infinity() &&
          !(s.relative_residual <= opt.divergence_factor * best)) {
        if (!rollback(false)) break;
        continue;
      }
      best = std::min(best, s.relative_residual);
      if (opt.checkpoint_every > 0 &&
          s.iterations % opt.checkpoint_every == 0) {
        ck_x.assign(x.begin(), x.end());
        ck_r.assign(r.begin(), r.end());
        ck_p.assign(p.begin(), p.end());
        ck_rr = rr;
        ck_iter = s.iterations;
        ck_full = true;
      }
      const bool verify =
          opt.verify_every > 0 && s.iterations % opt.verify_every == 0;
      detail::checked_apply(A, p, Ap, verify, rep);
      const double alpha = rr / vo.dot(p, Ap);
      const double rr_new = vo.cg_fused_update(alpha, p, Ap, x, r);
      const double beta = rr_new / rr;
      rr = rr_new;
      vo.xpay(r, beta, p);
      s.iterations++;
    } catch (const IntegrityFault&) {
      if (!rollback(true)) break;
    }
  }
  // Final gate: recompute the true residual with a verified apply before
  // confirming convergence (recurrence drift or a missed flip shows here).
  try {
    detail::checked_apply(A, x, Ap, opt.verify_every > 0, rep);
    vo.sub_scaled(b, 1.0, Ap, r);
    s.relative_residual = vo.nrm2(r) / bnorm;
    s.converged = s.converged && s.relative_residual <= 10 * opt.solve.tolerance;
    rep.final_residual_verified = opt.verify_every > 0;
  } catch (const IntegrityFault&) {
    ++rep.integrity_faults;
    s.converged = false;
  }
  return rep;
}

/// Self-checking BiCGStab: same defenses as cg_checked, with the method's
/// full recurrence state (x, r, r0, p, v, rho/alpha/omega) checkpointed.
template <class Operator>
CheckedSolveReport bicgstab_checked(Operator& A, std::span<const real_t> b,
                                    std::span<real_t> x,
                                    const SelfCheckOptions& opt = {}) {
  require(A.rows() == A.cols(), "bicgstab_checked: operator must be square");
  const std::size_t n = b.size();
  cpu::VecOps vo(detail::solver_threads(A, opt.solve.threads));
  CheckedSolveReport rep;
  SolveReport& s = rep.solve;
  std::vector<real_t> r(n), r0(n), p(n), v(n), sv(n), tv(n);
  std::vector<real_t> ck_x(x.begin(), x.end()), ck_r, ck_r0, ck_p, ck_v;
  double ck_rho = 1, ck_alpha = 1, ck_omega = 1, ck_rr = 0, ck_r0r = 0;
  long ck_iter = 0;
  bool ck_full = false;
  const double bnorm = std::max(vo.nrm2(b), 1e-300);
  double rho = 1, alpha = 1, omega = 1, rr = 0, r0r = 0;
  double best = std::numeric_limits<double>::infinity();
  bool init = true;

  auto rollback = [&](bool integrity) -> bool {
    if (integrity) ++rep.integrity_faults;
    if (++rep.rollbacks > opt.max_rollbacks) return false;
    std::copy(ck_x.begin(), ck_x.end(), x.begin());
    if (ck_full) {
      r.assign(ck_r.begin(), ck_r.end());
      r0.assign(ck_r0.begin(), ck_r0.end());
      p.assign(ck_p.begin(), ck_p.end());
      v.assign(ck_v.begin(), ck_v.end());
      rho = ck_rho;
      alpha = ck_alpha;
      omega = ck_omega;
      rr = ck_rr;
      r0r = ck_r0r;
      s.iterations = ck_iter;
      init = false;
    } else {
      init = true;
    }
    return true;
  };

  while (true) {
    try {
      if (init) {
        detail::checked_apply(A, x, v, opt.verify_every > 0, rep);
        vo.sub_scaled(b, 1.0, v, r);
        r0.assign(r.begin(), r.end());
        rho = alpha = omega = 1;
        std::fill(p.begin(), p.end(), 0.0);
        std::fill(v.begin(), v.end(), 0.0);
        rr = vo.dot(r, r);
        r0r = rr;  // r0 == r at (re)start
        init = false;
      }
      s.relative_residual = std::sqrt(rr) / bnorm;
      if (s.relative_residual <= opt.solve.tolerance) {
        s.converged = true;
        break;
      }
      if (s.iterations >= opt.solve.max_iterations) break;
      if (best < std::numeric_limits<double>::infinity() &&
          !(s.relative_residual <= opt.divergence_factor * best)) {
        if (!rollback(false)) break;
        continue;
      }
      best = std::min(best, s.relative_residual);
      if (opt.checkpoint_every > 0 &&
          s.iterations % opt.checkpoint_every == 0) {
        ck_x.assign(x.begin(), x.end());
        ck_r.assign(r.begin(), r.end());
        ck_r0.assign(r0.begin(), r0.end());
        ck_p.assign(p.begin(), p.end());
        ck_v.assign(v.begin(), v.end());
        ck_rho = rho;
        ck_alpha = alpha;
        ck_omega = omega;
        ck_rr = rr;
        ck_r0r = r0r;
        ck_iter = s.iterations;
        ck_full = true;
      }
      const double rho_new = r0r;
      if (rho_new == 0.0) break;  // breakdown
      const bool verify =
          opt.verify_every > 0 && s.iterations % opt.verify_every == 0;
      const double beta = (rho_new / rho) * (alpha / omega);
      rho = rho_new;
      vo.bicg_p_update(r, beta, omega, v, p);
      detail::checked_apply(A, p, v, verify, rep);
      alpha = rho / vo.dot(r0, v);
      vo.sub_scaled(r, alpha, v, sv);
      detail::checked_apply(A, sv, tv, verify, rep);
      const cpu::DotPair tt_ts = vo.dot2(tv, tv, sv);
      omega = tt_ts.ab == 0.0 ? 0.0 : tt_ts.ac / tt_ts.ab;
      const cpu::DotPair nx =
          vo.bicg_fused_update(alpha, p, omega, sv, tv, r0, x, r);
      rr = nx.ab;
      r0r = nx.ac;
      s.iterations++;
      if (omega == 0.0) break;  // breakdown
    } catch (const IntegrityFault&) {
      if (!rollback(true)) break;
    }
  }
  try {
    detail::checked_apply(A, x, v, opt.verify_every > 0, rep);
    vo.sub_scaled(b, 1.0, v, r);
    s.relative_residual = vo.nrm2(r) / bnorm;
    s.converged = s.converged && s.relative_residual <= 10 * opt.solve.tolerance;
    rep.final_residual_verified = opt.verify_every > 0;
  } catch (const IntegrityFault&) {
    ++rep.integrity_faults;
    s.converged = false;
  }
  return rep;
}

/// Weighted Jacobi iteration; `diag` is the matrix diagonal (must be
/// non-zero everywhere).  The sweep and the residual norm share one pass.
template <class Operator>
SolveReport jacobi(Operator& A, std::span<const real_t> diag,
                   std::span<const real_t> b, std::span<real_t> x,
                   const SolveOptions& opt = {}, double weight = 2.0 / 3.0) {
  require(A.rows() == A.cols(), "jacobi: operator must be square");
  const std::size_t n = b.size();
  cpu::VecOps vo(detail::solver_threads(A, opt.threads));
  std::vector<real_t> Ax(n);
  const double bnorm = std::max(vo.nrm2(b), 1e-300);
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    A.apply(x, Ax);
    const double rnorm2 = vo.jacobi_update(b, Ax, diag, weight, x);
    rep.iterations++;
    rep.relative_residual = std::sqrt(rnorm2) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
  }
  return rep;
}

struct EigenReport {
  double eigenvalue = 0;
  long iterations = 0;
  bool converged = false;
};

/// Power iteration: dominant eigenvalue/eigenvector of A.  `v` holds the
/// start vector on entry (must be non-zero) and the eigenvector on exit.
/// The Rayleigh quotient and the norm of the new iterate come out of one
/// fused pass; `threads` feeds the vector kernels (0 = follow the
/// operator, like SolveOptions::threads).
template <class Operator>
EigenReport power_iteration(Operator& A, std::span<real_t> v,
                            double tolerance = 1e-10,
                            long max_iterations = 10000,
                            unsigned threads = 0) {
  require(A.rows() == A.cols(), "power_iteration: operator must be square");
  const std::size_t n = v.size();
  cpu::VecOps vo(detail::solver_threads(A, threads));
  std::vector<real_t> w(n);
  double lambda = 0;
  EigenReport rep;
  const double nv = vo.nrm2(v);
  require(nv > 0, "power_iteration: start vector must be non-zero");
  vo.scale(1.0 / nv, v);
  while (rep.iterations < max_iterations) {
    A.apply(v, w);
    const cpu::DotPair d = vo.dot2(w, v, w);  // (w.v, w.w) in one pass
    const double lambda_new = d.ab;
    const double wn = std::sqrt(d.ac);
    if (wn == 0.0) break;  // A v = 0
    vo.scale_store(1.0 / wn, w, v);
    rep.iterations++;
    if (std::abs(lambda_new - lambda) <=
        tolerance * std::max(1.0, std::abs(lambda_new))) {
      rep.eigenvalue = lambda_new;
      rep.converged = true;
      return rep;
    }
    lambda = lambda_new;
  }
  rep.eigenvalue = lambda;
  return rep;
}

// ---------------------------------------------------------------------------
// Pre-fusion reference loops
// ---------------------------------------------------------------------------
//
// The original single-threaded solver bodies, kept verbatim: one serial
// scalar sweep per vector op, no fusion.  bench_solver measures the primary
// loops against these, and the determinism tests use them as the numerical
// reference.

namespace serial {

template <class Operator>
SolveReport cg(Operator& A, std::span<const real_t> b, std::span<real_t> x,
               const SolveOptions& opt = {}) {
  require(A.rows() == A.cols(), "cg: operator must be square");
  const std::size_t n = b.size();
  std::vector<real_t> r(n), p(n), Ap(n);
  A.apply(x, Ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - Ap[i];
  p.assign(r.begin(), r.end());
  double rr = detail::dot(r, r);
  const double bnorm = std::max(detail::norm(b), 1e-300);
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    rep.relative_residual = std::sqrt(rr) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
    A.apply(p, Ap);
    const double alpha = rr / detail::dot(p, Ap);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    const double rr_new = detail::dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rep.iterations++;
  }
  rep.relative_residual = std::sqrt(rr) / bnorm;
  return rep;
}

template <class Operator>
SolveReport bicgstab(Operator& A, std::span<const real_t> b,
                     std::span<real_t> x, const SolveOptions& opt = {}) {
  require(A.rows() == A.cols(), "bicgstab: operator must be square");
  const std::size_t n = b.size();
  std::vector<real_t> r(n), r0(n), p(n), v(n), s(n), t(n);
  A.apply(x, v);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - v[i];
  r0.assign(r.begin(), r.end());
  double rho = 1, alpha = 1, omega = 1;
  std::fill(p.begin(), p.end(), 0.0);
  std::fill(v.begin(), v.end(), 0.0);
  const double bnorm = std::max(detail::norm(b), 1e-300);
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    rep.relative_residual = detail::norm(r) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
    const double rho_new = detail::dot(r0, r);
    if (rho_new == 0.0) break;  // breakdown
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    A.apply(p, v);
    alpha = rho / detail::dot(r0, v);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    A.apply(s, t);
    const double tt = detail::dot(t, t);
    omega = tt == 0.0 ? 0.0 : detail::dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i] + omega * s[i];
      r[i] = s[i] - omega * t[i];
    }
    rep.iterations++;
    if (omega == 0.0) break;  // breakdown
  }
  rep.relative_residual = detail::norm(r) / bnorm;
  return rep;
}

template <class Operator>
EigenReport power_iteration(Operator& A, std::span<real_t> v,
                            double tolerance = 1e-10,
                            long max_iterations = 10000) {
  require(A.rows() == A.cols(), "power_iteration: operator must be square");
  const std::size_t n = v.size();
  std::vector<real_t> w(n);
  double lambda = 0;
  EigenReport rep;
  double nv = detail::norm(v);
  require(nv > 0, "power_iteration: start vector must be non-zero");
  for (std::size_t i = 0; i < n; ++i) v[i] /= nv;
  while (rep.iterations < max_iterations) {
    A.apply(v, w);
    const double lambda_new = detail::dot(v, w);
    const double wn = detail::norm(w);
    if (wn == 0.0) break;  // A v = 0
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / wn;
    rep.iterations++;
    if (std::abs(lambda_new - lambda) <=
        tolerance * std::max(1.0, std::abs(lambda_new))) {
      rep.eigenvalue = lambda_new;
      rep.converged = true;
      return rep;
    }
    lambda = lambda_new;
  }
  rep.eigenvalue = lambda;
  return rep;
}

}  // namespace serial

}  // namespace yaspmv::solver
