// Iterative solvers on top of the SpMV backends — the downstream workloads
// (Krylov methods, eigensolvers) that motivate SpMV optimization in the
// paper's introduction.
//
// Everything is written against the `Operator` duck type:
//
//   struct Operator {
//     index_t rows() const; index_t cols() const;
//     void apply(std::span<const real_t> x, std::span<real_t> y);  // y = A*x
//   };
//
// Adapters are provided for the serial CSR reference, the native CPU
// backend and the simulated GPU engine, so a solver can be moved between
// backends with one line.
#pragma once

#include <cmath>
#include <functional>
#include <span>
#include <vector>

#include "yaspmv/core/engine.hpp"
#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/csr.hpp"

namespace yaspmv::solver {

// ---------------------------------------------------------------------------
// Operator adapters
// ---------------------------------------------------------------------------

/// Serial CSR reference operator.
class CsrOperator {
 public:
  explicit CsrOperator(fmt::Csr m) : m_(std::move(m)) {}
  index_t rows() const { return m_.rows; }
  index_t cols() const { return m_.cols; }
  void apply(std::span<const real_t> x, std::span<real_t> y) {
    m_.spmv(x, y);
  }
  const fmt::Csr& matrix() const { return m_; }

 private:
  fmt::Csr m_;
};

/// Native CPU-parallel BCCOO operator.
class CpuOperator {
 public:
  CpuOperator(const fmt::Coo& a, core::FormatConfig fc = {},
              unsigned threads = 0)
      : eng_(std::make_shared<const core::Bccoo>(core::Bccoo::build(a, fc)),
             threads) {}
  index_t rows() const { return eng_.format().rows; }
  index_t cols() const { return eng_.format().cols; }
  void apply(std::span<const real_t> x, std::span<real_t> y) {
    eng_.spmv(x, y);
  }

 private:
  cpu::CpuSpmv eng_;
};

/// Simulated-device operator (accumulates the kernel statistics so a solve
/// can be performance-modeled end to end).
class SimOperator {
 public:
  SimOperator(const fmt::Coo& a, const core::FormatConfig& fc,
              const core::ExecConfig& ec, sim::DeviceSpec dev)
      : eng_(a, fc, ec, std::move(dev)) {}
  index_t rows() const { return eng_.format().rows; }
  index_t cols() const { return eng_.format().cols; }
  void apply(std::span<const real_t> x, std::span<real_t> y) {
    stats_ += eng_.run(x, y).stats;
    applies_++;
  }
  const sim::KernelStats& stats() const { return stats_; }
  std::size_t applies() const { return applies_; }

 private:
  core::SpmvEngine eng_;
  sim::KernelStats stats_;
  std::size_t applies_ = 0;
};

// ---------------------------------------------------------------------------
// Solver drivers
// ---------------------------------------------------------------------------

struct SolveOptions {
  double tolerance = 1e-10;  ///< relative residual target ||r||/||b||
  long max_iterations = 10000;
};

struct SolveReport {
  bool converged = false;
  long iterations = 0;
  double relative_residual = 0;
};

namespace detail {
inline double dot(std::span<const real_t> a, std::span<const real_t> b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
inline double norm(std::span<const real_t> a) { return std::sqrt(dot(a, a)); }
}  // namespace detail

/// Conjugate gradient for symmetric positive-definite A.  `x` is the
/// initial guess on entry, the solution on exit.
template <class Operator>
SolveReport cg(Operator& A, std::span<const real_t> b, std::span<real_t> x,
               const SolveOptions& opt = {}) {
  require(A.rows() == A.cols(), "cg: operator must be square");
  const std::size_t n = b.size();
  std::vector<real_t> r(n), p(n), Ap(n);
  A.apply(x, Ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - Ap[i];
  p.assign(r.begin(), r.end());
  double rr = detail::dot(r, r);
  const double bnorm = std::max(detail::norm(b), 1e-300);
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    rep.relative_residual = std::sqrt(rr) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
    A.apply(p, Ap);
    const double alpha = rr / detail::dot(p, Ap);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    const double rr_new = detail::dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rep.iterations++;
  }
  rep.relative_residual = std::sqrt(rr) / bnorm;
  return rep;
}

/// Jacobi-preconditioned conjugate gradient: M = diag(A).  Converges in
/// fewer iterations than plain CG when the diagonal varies strongly.
template <class Operator>
SolveReport pcg_jacobi(Operator& A, std::span<const real_t> diag,
                       std::span<const real_t> b, std::span<real_t> x,
                       const SolveOptions& opt = {}) {
  require(A.rows() == A.cols(), "pcg: operator must be square");
  const std::size_t n = b.size();
  for (std::size_t i = 0; i < n; ++i) {
    require(diag[i] != 0.0, "pcg: zero diagonal entry");
  }
  std::vector<real_t> r(n), z(n), p(n), Ap(n);
  A.apply(x, Ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - Ap[i];
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
  p.assign(z.begin(), z.end());
  double rz = detail::dot(r, z);
  const double bnorm = std::max(detail::norm(b), 1e-300);
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    rep.relative_residual = detail::norm(r) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
    A.apply(p, Ap);
    const double alpha = rz / detail::dot(p, Ap);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
    const double rz_new = detail::dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    rep.iterations++;
  }
  rep.relative_residual = detail::norm(r) / bnorm;
  return rep;
}

/// Extracts the diagonal of a matrix in canonical COO (helper for the
/// Jacobi-based methods).
inline std::vector<real_t> extract_diagonal(const fmt::Coo& a) {
  std::vector<real_t> d(static_cast<std::size_t>(a.rows), 0.0);
  for (std::size_t i = 0; i < a.nnz(); ++i) {
    if (a.row_idx[i] == a.col_idx[i]) {
      d[static_cast<std::size_t>(a.row_idx[i])] = a.vals[i];
    }
  }
  return d;
}

/// BiCGSTAB for general (nonsymmetric) A.
template <class Operator>
SolveReport bicgstab(Operator& A, std::span<const real_t> b,
                     std::span<real_t> x, const SolveOptions& opt = {}) {
  require(A.rows() == A.cols(), "bicgstab: operator must be square");
  const std::size_t n = b.size();
  std::vector<real_t> r(n), r0(n), p(n), v(n), s(n), t(n);
  A.apply(x, v);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - v[i];
  r0.assign(r.begin(), r.end());
  double rho = 1, alpha = 1, omega = 1;
  std::fill(p.begin(), p.end(), 0.0);
  std::fill(v.begin(), v.end(), 0.0);
  const double bnorm = std::max(detail::norm(b), 1e-300);
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    rep.relative_residual = detail::norm(r) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
    const double rho_new = detail::dot(r0, r);
    if (rho_new == 0.0) break;  // breakdown
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    A.apply(p, v);
    alpha = rho / detail::dot(r0, v);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    A.apply(s, t);
    const double tt = detail::dot(t, t);
    omega = tt == 0.0 ? 0.0 : detail::dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i] + omega * s[i];
      r[i] = s[i] - omega * t[i];
    }
    rep.iterations++;
    if (omega == 0.0) break;  // breakdown
  }
  rep.relative_residual = detail::norm(r) / bnorm;
  return rep;
}

/// Weighted Jacobi iteration; `diag` is the matrix diagonal (must be
/// non-zero everywhere).
template <class Operator>
SolveReport jacobi(Operator& A, std::span<const real_t> diag,
                   std::span<const real_t> b, std::span<real_t> x,
                   const SolveOptions& opt = {}, double weight = 2.0 / 3.0) {
  require(A.rows() == A.cols(), "jacobi: operator must be square");
  const std::size_t n = b.size();
  std::vector<real_t> Ax(n);
  const double bnorm = std::max(detail::norm(b), 1e-300);
  SolveReport rep;
  while (rep.iterations < opt.max_iterations) {
    A.apply(x, Ax);
    double rnorm = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = b[i] - Ax[i];
      rnorm += r * r;
      x[i] += weight * r / diag[i];
    }
    rep.iterations++;
    rep.relative_residual = std::sqrt(rnorm) / bnorm;
    if (rep.relative_residual <= opt.tolerance) {
      rep.converged = true;
      return rep;
    }
  }
  return rep;
}

struct EigenReport {
  double eigenvalue = 0;
  long iterations = 0;
  bool converged = false;
};

/// Power iteration: dominant eigenvalue/eigenvector of A.  `v` holds the
/// start vector on entry (must be non-zero) and the eigenvector on exit.
template <class Operator>
EigenReport power_iteration(Operator& A, std::span<real_t> v,
                            double tolerance = 1e-10,
                            long max_iterations = 10000) {
  require(A.rows() == A.cols(), "power_iteration: operator must be square");
  const std::size_t n = v.size();
  std::vector<real_t> w(n);
  double lambda = 0;
  EigenReport rep;
  double nv = detail::norm(v);
  require(nv > 0, "power_iteration: start vector must be non-zero");
  for (std::size_t i = 0; i < n; ++i) v[i] /= nv;
  while (rep.iterations < max_iterations) {
    A.apply(v, w);
    const double lambda_new = detail::dot(v, w);
    const double wn = detail::norm(w);
    if (wn == 0.0) break;  // A v = 0
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / wn;
    rep.iterations++;
    if (std::abs(lambda_new - lambda) <=
        tolerance * std::max(1.0, std::abs(lambda_new))) {
      rep.eigenvalue = lambda_new;
      rep.converged = true;
      return rep;
    }
    lambda = lambda_new;
  }
  rep.eigenvalue = lambda;
  return rep;
}

}  // namespace yaspmv::solver
