#include "yaspmv/tune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>

#include "yaspmv/core/engine.hpp"
#include "yaspmv/core/status.hpp"
#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/blocked.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/perf/model.hpp"
#include "yaspmv/util/rng.hpp"
#include "yaspmv/util/stopwatch.hpp"
#include "yaspmv/util/thread_pool.hpp"

namespace yaspmv::tune {

namespace {

/// Cache key for built formats (the "compiled kernel cache" analog).
struct FormatKey {
  index_t bw, bh, slices;
  int bf_word;
  bool operator<(const FormatKey& o) const {
    if (bw != o.bw) return bw < o.bw;
    if (bh != o.bh) return bh < o.bh;
    if (slices != o.slices) return slices < o.slices;
    return bf_word < o.bf_word;
  }
};

std::vector<real_t> make_x(index_t cols) {
  SplitMix64 rng(0x7E57);
  std::vector<real_t> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  return x;
}

bool close(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1.0});
    if (std::abs(a[i] - b[i]) > 1e-9 * scale) return false;
  }
  return true;
}

/// The column stream a candidate's exec flags select on the native backend
/// (the same mapping bench_cpu_native uses): delta beats short when both are
/// requested, mirroring the priority of the footprint model.
core::ColStream native_stream(const core::ExecConfig& ec) {
  if (ec.compress_col_delta) return core::ColStream::kDelta;
  if (ec.short_col_index) return core::ColStream::kShort;
  return core::ColStream::kRaw;
}

}  // namespace

std::vector<std::pair<index_t, index_t>> pruned_block_dims(
    const fmt::Coo& a, bool extended) {
  struct Dim {
    index_t w, h;
    std::size_t fp;
  };
  const std::vector<index_t> ws =
      extended ? std::vector<index_t>{1, 2, 4, 8} : std::vector<index_t>{1, 2, 4};
  const std::vector<index_t> hs = extended
                                      ? std::vector<index_t>{1, 2, 3, 4, 6, 8}
                                      : std::vector<index_t>{1, 2, 3, 4};
  std::vector<Dim> dims;
  for (index_t w : ws) {
    for (index_t h : hs) {
      const std::size_t blocks = fmt::BlockDecomposition::count_blocks(a, w, h);
      const std::size_t fp =
          blocks * (static_cast<std::size_t>(w) * static_cast<std::size_t>(h) *
                        bytes::kValue +
                    bytes::kShortIndex) +
          blocks / 8 + 1;
      dims.push_back({w, h, fp});
    }
  }
  std::sort(dims.begin(), dims.end(),
            [](const Dim& l, const Dim& r) { return l.fp < r.fp; });
  dims.resize(std::min<std::size_t>(dims.size(), extended ? 6 : 4));
  std::vector<std::pair<index_t, index_t>> out;
  out.reserve(dims.size());
  for (const auto& d : dims) out.emplace_back(d.w, d.h);
  return out;
}

TuneResult tune(const fmt::Coo& a, const sim::DeviceSpec& dev,
                const TuneOptions& opt) {
  require(a.rows > 0 && a.cols > 0, "tune: empty matrix");
  Stopwatch sw;
  TuneResult res;

  const auto x = make_x(a.cols);
  std::vector<real_t> y_ref(static_cast<std::size_t>(a.rows));
  fmt::Csr::from_coo(a).spmv(x, y_ref);

  // ---- enumerate the Table 1 space ---------------------------------------
  const auto block_dims = pruned_block_dims(a, opt.extended_blocks);
  const std::vector<index_t> slice_menu =
      opt.exhaustive ? std::vector<index_t>{1, 2, 4, 8, 16, 32}
                     : std::vector<index_t>{1, 4};
  const std::vector<BitFlagWord> bf_menu =
      opt.exhaustive
          ? std::vector<BitFlagWord>{BitFlagWord::kU8, BitFlagWord::kU16,
                                     BitFlagWord::kU32}
          : std::vector<BitFlagWord>{BitFlagWord::kU16};
  const std::vector<int> wg_menu =
      opt.exhaustive ? std::vector<int>{64, 128, 256, 512}
                     : std::vector<int>{64, 256};
  const std::vector<bool> tex_menu =
      opt.exhaustive ? std::vector<bool>{true, false}
                     : std::vector<bool>{true};
  const std::vector<core::Transpose> tr_menu =
      opt.exhaustive
          ? std::vector<core::Transpose>{core::Transpose::kOffline,
                                         core::Transpose::kOnline}
          : std::vector<core::Transpose>{core::Transpose::kOffline};
  const std::vector<bool> dcol_menu{false, true};
  const std::vector<int> s1_reg_menu =
      opt.exhaustive ? std::vector<int>{8, 16, 24, 32}
                     : std::vector<int>{16, 32};
  std::vector<int> s2_tile_menu = opt.exhaustive
                                      ? std::vector<int>{4, 8, 16, 32}
                                      : std::vector<int>{8, 16};
  if (opt.extended_blocks) {
    s2_tile_menu.push_back(24);
    s2_tile_menu.push_back(40);  // the paper's Dense observation
  }
  const std::vector<int> s2_cache_menu{1, 2};

  // ---- collect the candidate list (enumeration order is the merge order,
  //      so results are independent of tune_workers) ----------------------
  std::vector<std::pair<core::FormatConfig, core::ExecConfig>> cands;
  auto evaluate = [&](const core::FormatConfig& fc,
                      const core::ExecConfig& ec) {
    cands.emplace_back(fc, ec);
  };

  for (const auto& [bw, bh] : block_dims) {
    for (index_t slices : slice_menu) {
      if (slices > 1 && ceil_div(a.cols, bw) < slices) continue;
      for (BitFlagWord bfw : bf_menu) {
        core::FormatConfig fc;
        fc.block_w = bw;
        fc.block_h = bh;
        fc.bf_word = bfw;
        fc.slices = slices;
        for (int wg : wg_menu) {
          for (bool tex : tex_menu) {
            for (bool dcol : dcol_menu) {
              core::ExecConfig base;
              base.workgroup_size = wg;
              base.use_texture = tex;
              base.compress_col_delta = dcol;
              base.workers = opt.workers;
              // Strategy 1 over the register-size menu (ShM_size = 0 in the
              // pruned space, per Section 4).
              for (core::Transpose tr : tr_menu) {
                for (int reg : s1_reg_menu) {
                  core::ExecConfig ec = base;
                  ec.strategy = core::Strategy::kIntermediateSums;
                  ec.thread_tile = reg;
                  ec.shm_tile = 0;
                  ec.transpose = tr;
                  evaluate(fc, ec);
                }
              }
              // Strategy 2 over tile x cache (offline transpose required).
              for (int tile : s2_tile_menu) {
                for (int cm : s2_cache_menu) {
                  core::ExecConfig ec = base;
                  ec.strategy = core::Strategy::kResultCache;
                  ec.thread_tile = tile;
                  ec.result_cache_multiple = cm;
                  ec.transpose = core::Transpose::kOffline;
                  evaluate(fc, ec);
                }
              }
            }
          }
        }
      }
    }
  }

  // ---- prebuild the format cache in parallel -----------------------------
  // The format cache plays the role of the paper's compiled-kernel hash
  // table: one Bccoo per (block dims, slices) serves every ExecConfig.  All
  // keys are known up front, so every distinct format builds as its own pool
  // job *before* the sweep — builds are the dominant tuner cost, this phase
  // makes their wall time a first-class, per-candidate-attributable metric
  // (build_seconds), and the sweep itself then only does lookups.  A build
  // that lands on a pool worker runs its internal parallelism inline
  // (nested submits degrade), so cache entries build concurrently with each
  // other, deterministically per entry.
  struct FormatEntry {
    std::shared_ptr<const core::Bccoo> fmt;
    double build_seconds = 0;
  };
  std::map<FormatKey, FormatEntry> format_cache;
  for (const auto& cand : cands) {
    const core::FormatConfig& fc = cand.first;
    format_cache[FormatKey{fc.block_w, fc.block_h, fc.slices,
                           static_cast<int>(fc.bf_word)}];
  }
  const unsigned tune_workers =
      opt.tune_workers == 0 ? default_workers() : opt.tune_workers;
  {
    std::vector<std::pair<const FormatKey, FormatEntry>*> entries;
    entries.reserve(format_cache.size());
    for (auto& kv : format_cache) entries.push_back(&kv);
    Stopwatch build_sw;
    parallel_for_ordered(
        entries.size(), tune_workers, [&](unsigned, std::size_t i) {
          const FormatKey& k = entries[i]->first;
          core::FormatConfig fc;
          fc.block_w = k.bw;
          fc.block_h = k.bh;
          fc.slices = k.slices;
          fc.bf_word = static_cast<BitFlagWord>(k.bf_word);
          Stopwatch one;
          entries[i]->second.fmt =
              std::make_shared<const core::Bccoo>(core::Bccoo::build(a, fc));
          entries[i]->second.build_seconds = one.elapsed_seconds();
        });
    res.formats_built = static_cast<int>(entries.size());
    res.format_build_seconds = build_sw.elapsed_seconds();
  }
  auto get_entry = [&](const core::FormatConfig& fc) -> const FormatEntry& {
    return format_cache.at(FormatKey{fc.block_w, fc.block_h, fc.slices,
                                     static_cast<int>(fc.bf_word)});
  };

  struct EvalOut {
    bool ok = false;
    Candidate cand;
    std::string skip_reason;
  };
  std::vector<EvalOut> outs(cands.size());
  parallel_for_ordered(
      cands.size(), tune_workers, [&](unsigned, std::size_t ci) {
        const auto& [fc, ec] = cands[ci];
        EvalOut& o = outs[ci];
        try {
          const FormatEntry& fe = get_entry(fc);
          Stopwatch eval_sw;
          core::SpmvEngine eng(fe.fmt, ec, dev);
          std::vector<real_t> yl(static_cast<std::size_t>(a.rows));
          auto run = eng.run(x, yl);
          if (opt.verify && !close(yl, y_ref)) {
            throw DataCorruption("tuner: candidate produced wrong results");
          }
          o.cand.format = fc;
          o.cand.exec = ec;
          // Record the kernel the native backend would dispatch for this
          // config (specialization grid or generic) and charge the generic
          // path's per-block branch overhead in the modeled score, so the
          // ranking reflects what serving actually executes.
          o.cand.kernel = cpu::grid::dispatch_kernel_id(
              static_cast<int>(fc.block_w), static_cast<int>(fc.block_h),
              fe.fmt->resolve_col_stream(native_stream(ec)),
              cpu::default_segsum_mode());
          o.cand.gflops = perf::spmv_gflops_dispatch(
              dev, run.stats, a.nnz(), opt.rank_threads, fe.fmt->num_blocks,
              o.cand.kernel != "generic");
          o.cand.footprint = eng.footprint_bytes();
          o.cand.build_seconds = fe.build_seconds;
          o.cand.eval_seconds = eval_sw.elapsed_seconds();
          o.ok = true;
        } catch (const SpmvError& e) {
          // One failing candidate (resource overflow, wrong results,
          // injected fault, ...) must not abort the sweep: record it and
          // move on.
          o.skip_reason =
              fc.to_string() + " / " + ec.to_string() + ": " + e.what();
        }
      });

  // Serial merge in enumeration order: best (first strict max), top, and
  // the first kMaxSkipRecords skip reasons are exactly the serial sweep's.
  for (const EvalOut& o : outs) {
    if (o.ok) {
      res.evaluated++;
      res.top.push_back(o.cand);
      if (o.cand.gflops > res.best.gflops) res.best = o.cand;
    } else {
      res.skipped++;
      if (res.skipped_configs.size() < TuneResult::kMaxSkipRecords) {
        res.skipped_configs.push_back(o.skip_reason);
      }
    }
  }

  std::sort(res.top.begin(), res.top.end(),
            [](const Candidate& l, const Candidate& r) {
              return l.gflops > r.gflops;
            });
  if (res.top.size() > 8) res.top.resize(8);

  // ---- optional native re-timing of the top candidates -------------------
  // Serial, after the parallel sweep: the modeled ranking above stays
  // independent of tune_workers, and the timed loops don't fight each other
  // for cores.  Each candidate runs on the column stream its exec flags
  // select, so a "dcol" candidate really exercises the delta decode path.
  res.best_native = res.best;
  if (opt.measure_native && !res.top.empty()) {
    const double flops = 2.0 * static_cast<double>(a.nnz());
    std::vector<real_t> yn(static_cast<std::size_t>(a.rows));
    for (Candidate& cand : res.top) {
      const core::ColStream cs = native_stream(cand.exec);
      // kAuto dispatch: the re-timing runs the same specialized (or
      // generic) kernel serving would, and the candidate records the id
      // the engine actually resolved.
      cpu::CpuSpmv eng(get_entry(cand.format).fmt, opt.native_threads, cs);
      cand.kernel = eng.kernel_id();
      eng.spmv(x, yn);  // warm-up: faults in format + scratch
      double best_s = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < std::max(1, opt.native_reps); ++rep) {
        Stopwatch rep_sw;
        eng.spmv(x, yn);
        best_s = std::min(best_s, rep_sw.elapsed_seconds());
      }
      cand.measured_gflops = flops / best_s / 1e9;
      cand.measured_bytes = eng.format().traffic_bytes(cs);
      if (cand.format == res.best.format &&
          cand.exec.to_string() == res.best.exec.to_string()) {
        res.best.measured_gflops = cand.measured_gflops;
        res.best.measured_bytes = cand.measured_bytes;
        res.best.kernel = cand.kernel;
      }
    }
    res.best_native = *std::max_element(
        res.top.begin(), res.top.end(),
        [](const Candidate& l, const Candidate& r) {
          return l.measured_gflops < r.measured_gflops;
        });
    res.native_measured = true;
  }

  res.tuning_seconds = sw.elapsed_seconds();
  require(res.evaluated > 0, "tune: every configuration was rejected");
  return res;
}

}  // namespace yaspmv::tune
