// Auto-tuning framework (Section 4).
//
// Explores the Table 1 parameter space for a given matrix and device and
// returns the best configuration by modeled execution time.  The paper's
// accelerations are reproduced in spirit:
//   * format objects are cached per FormatConfig (the analog of caching
//     compiled kernels in a hash table),
//   * the block-dimension space is pruned to the 4 smallest memory
//     footprints (counted analytically, without materializing the format),
//   * the pruned mode fixes texture=on, transpose=offline, result cache
//     multiple in {1,2} and ShM_size=0 for strategy 1 — the same heuristics
//     as the paper; exhaustive mode sweeps everything for the
//     pruned-vs-optimal comparison the paper reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "yaspmv/core/config.hpp"
#include "yaspmv/formats/coo.hpp"
#include "yaspmv/sim/device.hpp"

namespace yaspmv::tune {

struct TuneOptions {
  bool exhaustive = false;  ///< full Table 1 sweep instead of the pruned one
  bool verify = true;       ///< check every candidate against the reference
  unsigned workers = 1;     ///< simulator dispatch threads per candidate
  /// Concurrent candidate evaluations on the shared WorkPool (0 = hardware
  /// concurrency, 1 = the serial sweep).  Tuning time is a first-class
  /// metric (Section 4 reports it); the result is identical for any value:
  /// candidates are merged in enumeration order, so best/top/skip records
  /// match the serial sweep bit for bit.
  unsigned tune_workers = 0;
  /// Extension beyond the paper (Section 6 notes Dense loses because the
  /// block height is capped at 4): widen the block menu to 8x8 and add
  /// finer thread-tile sizes (the paper observes tile = 40 helps Dense).
  bool extended_blocks = false;
  /// After the modeled sweep, re-time the top candidates on the native CPU
  /// backend (reading the column stream the candidate's exec flags select)
  /// and re-rank by *measured* GFLOPS into `best_native`.  The measured pass
  /// runs serially after the parallel sweep so the modeled ranking keeps its
  /// tune_workers-independence contract; wall-clock timings are inherently
  /// noisy, which is exactly why the model needs this validation hook.
  bool measure_native = false;
  int native_reps = 3;        ///< timed repetitions per candidate (best-of)
  unsigned native_threads = 1;  ///< native-backend threads for the re-timing
  /// Thread count the model *ranks* at (perf::spmv_gflops_threads): a
  /// serving deployment applying at T threads wants candidates scored with
  /// T-thread launch/fix-up overhead, not the 1-thread figure.  1 keeps the
  /// legacy single-thread ranking bit-for-bit.
  unsigned rank_threads = 1;
};

struct Candidate {
  core::FormatConfig format;
  core::ExecConfig exec;
  double gflops = 0;          ///< modeled (simulator) throughput
  std::size_t footprint = 0;  ///< modeled bytes (Table 3 device widths)
  double build_seconds = 0;   ///< wall time of this candidate's format build
  double eval_seconds = 0;    ///< wall time of the simulator evaluation
  // Filled by the measure_native pass (0 when it did not run):
  double measured_gflops = 0;    ///< native single-run best-of-reps
  std::size_t measured_bytes = 0;  ///< exact host-side bytes per native SpMV
  /// Stable id of the native kernel this candidate dispatches to — a
  /// specialization-grid id like "grid/w2h2/short" (cpu/kernels_grid.hpp)
  /// or "generic".  Recorded so the plan cache replays the exact dispatch
  /// the tuner ranked, and so serve's kStats can attribute plans.
  std::string kernel = "generic";

  /// Exact field equality (doubles compared bitwise-as-values) — what the
  /// durable plan cache's round-trip tests and the serving daemon's
  /// idempotent-registration check need.  Timing fields are excluded: two
  /// runs of the same sweep legitimately differ in wall clock.
  bool same_plan(const Candidate& o) const {
    return format == o.format && exec == o.exec && gflops == o.gflops &&
           footprint == o.footprint && measured_gflops == o.measured_gflops &&
           measured_bytes == o.measured_bytes && kernel == o.kernel;
  }
};

struct TuneResult {
  Candidate best;
  double tuning_seconds = 0;
  int evaluated = 0;  ///< configurations actually run
  int skipped = 0;    ///< rejected (shared memory / register budget / ...)
  std::vector<Candidate> top;  ///< best few, for the ablation benches
  /// Why the first few skipped candidates failed ("fc / ec: reason"), so a
  /// sweep that silently discards half the space is explainable.  Capped at
  /// kMaxSkipRecords; `skipped` holds the true count.
  std::vector<std::string> skipped_configs;
  static constexpr std::size_t kMaxSkipRecords = 32;
  /// Top candidate by *measured* native GFLOPS (measure_native only; equals
  /// `best` otherwise).  May disagree with `best` — that disagreement is the
  /// modeled-vs-measured signal EXPERIMENTS.md tracks.
  Candidate best_native;
  bool native_measured = false;
  /// Format-cache statistics: distinct formats built for the sweep and the
  /// wall time spent building them (parallel across cache entries).
  int formats_built = 0;
  double format_build_seconds = 0;
};

/// Tunes `a` for `dev`.  Throws only on empty/invalid input; candidate
/// failures (resource overflows) are counted in `skipped`.
TuneResult tune(const fmt::Coo& a, const sim::DeviceSpec& dev,
                const TuneOptions& opt = {});

/// The pruned block-dimension menu: the 4 (block_w, block_h) pairs from
/// Table 1's menu with the smallest analytic footprint for this matrix
/// (6 pairs from the widened menu when `extended` is set).
std::vector<std::pair<index_t, index_t>> pruned_block_dims(
    const fmt::Coo& a, bool extended = false);

}  // namespace yaspmv::tune
