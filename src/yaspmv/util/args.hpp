// Minimal --key=value command-line parser shared by the bench binaries and
// the examples (kept dependency-free on purpose).
#pragma once

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace yaspmv {

class Args {
 public:
  Args(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        auto eq = a.find('=');
        if (eq == std::string::npos) {
          kv_[a.substr(2)] = "1";
        } else {
          kv_[a.substr(2, eq - 2)] = a.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(a));
      }
    }
  }

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& def = "") const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
  }

  long get_int(const std::string& key, long def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::strtol(it->second.c_str(), nullptr, 10);
  }

  double get_double(const std::string& key, double def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace yaspmv
