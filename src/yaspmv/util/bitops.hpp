// Bit-packing utilities for the BCCOO bit-flag array (Section 2.2 of the
// paper).  The bit-flag array replaces the blocked row-index array: bit i is
// 0 when block i is the last non-zero block of its block-row (a "row stop")
// and 1 otherwise.  The array is stored packed into words whose width is one
// of the tunable parameters of Table 1 (uchar/ushort/uint).
#pragma once

#include <cstdint>
#include <vector>

#include "yaspmv/util/common.hpp"

namespace yaspmv {

/// Word widths available for the packed bit-flag array (Table 1: "Data type
/// for the bit flag array").
enum class BitFlagWord : std::uint8_t { kU8 = 8, kU16 = 16, kU32 = 32 };

inline std::size_t bits_per_word(BitFlagWord w) {
  return static_cast<std::size_t>(w);
}

/// A packed bit array with a configurable logical word size.
///
/// Physically the bits live in a uint32 vector (bit i of the array is bit
/// (i % 32) of word (i / 32)); the logical word size only affects the
/// reported footprint and the per-thread load granularity modeled by the
/// performance layer.  Bits are appended MSB-agnostic (LSB-first within each
/// physical word), which keeps get/set O(1).
class BitArray {
 public:
  BitArray() = default;

  explicit BitArray(std::size_t n, bool fill = false)
      : n_(n), words_((n + 31) / 32, fill ? ~0u : 0u) {
    if (fill) clear_tail();
  }

  /// Builds a BitArray directly from pre-packed physical words (LSB-first
  /// within each uint32, matching get/set).  Used by the parallel BCCOO
  /// builder, whose workers each assemble a disjoint word range.  Tail bits
  /// beyond `n` are cleared so equality compares are well defined.
  static BitArray from_words(std::size_t n, std::vector<std::uint32_t> words) {
    BitArray b;
    b.n_ = n;
    b.words_ = std::move(words);
    b.words_.resize((n + 31) / 32);
    b.clear_tail();
    return b;
  }

  bool operator==(const BitArray& o) const {
    return n_ == o.n_ && words_ == o.words_;
  }

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 5] >> (i & 31u)) & 1u;
  }

  void set(std::size_t i, bool v) {
    const std::uint32_t mask = 1u << (i & 31u);
    if (v) {
      words_[i >> 5] |= mask;
    } else {
      words_[i >> 5] &= ~mask;
    }
  }

  void push_back(bool v) {
    if ((n_ & 31u) == 0) words_.push_back(0);
    n_++;
    set(n_ - 1, v);
  }

  /// Appends `count` copies of `v`.
  void append(std::size_t count, bool v) {
    for (std::size_t i = 0; i < count; ++i) push_back(v);
  }

  /// Number of zero bits (row stops) in [0, end).
  std::size_t count_zeros_before(std::size_t end) const {
    std::size_t zeros = 0;
    std::size_t full_words = end >> 5;
    for (std::size_t w = 0; w < full_words; ++w) {
      zeros += 32u - static_cast<unsigned>(__builtin_popcount(words_[w]));
    }
    const std::size_t rem = end & 31u;
    if (rem != 0) {
      const std::uint32_t mask = (1u << rem) - 1u;
      zeros += rem - static_cast<unsigned>(
                         __builtin_popcount(words_[full_words] & mask));
    }
    return zeros;
  }

  std::size_t count_zeros() const { return count_zeros_before(n_); }

  /// True when any bit in [begin, end) is zero.
  bool has_zero_in(std::size_t begin, std::size_t end) const {
    for (std::size_t i = begin; i < end; ++i) {
      if (!get(i)) return true;
    }
    return false;
  }

  /// Footprint in bytes when stored with logical word type `w` (the packed
  /// length is rounded up to whole logical words, as on the device).
  std::size_t footprint_bytes(BitFlagWord w) const {
    const std::size_t bpw = bits_per_word(w);
    return ceil_div(n_, bpw) * (bpw / 8);
  }

  const std::vector<std::uint32_t>& words() const { return words_; }

 private:
  void clear_tail() {
    const std::size_t rem = n_ & 31u;
    if (rem != 0 && !words_.empty()) {
      words_.back() &= (1u << rem) - 1u;
    }
  }

  std::size_t n_ = 0;
  std::vector<std::uint32_t> words_;
};

}  // namespace yaspmv
