// Common type aliases and small helpers shared by every yaSpMV module.
//
// The paper's GPU kernels operate on 32-bit floats and 32-bit indices; we
// compute in double precision on the host simulator (so correctness tests can
// use tight tolerances) while the *footprint accounting* stays parameterized
// on the on-device element width (4 bytes by default, matching Table 3 of the
// paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace yaspmv {

/// Row/column index type used across all sparse formats (the paper uses
/// 32-bit integers for uncompressed index arrays).
using index_t = std::int32_t;

/// Host-side arithmetic type.  Device footprints are modeled separately; see
/// `bytes::kValue`.
using real_t = double;

/// On-device element widths used by the footprint model (Table 3 is computed
/// with 4-byte values and 4-byte indices).
namespace bytes {
inline constexpr std::size_t kValue = 4;       ///< float on device
inline constexpr std::size_t kIndex = 4;       ///< int   on device
inline constexpr std::size_t kShortIndex = 2;  ///< unsigned short / short
}  // namespace bytes

/// Throws std::invalid_argument with `msg` when `cond` is false.  Used for
/// public-API argument validation (always on, unlike assert).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Literal-message overload: the message is only materialized on failure,
/// so checks on hot paths (per-tile copies, per-segment lookups) stay
/// allocation-free — a contract tools/check_stream_alloc enforces for the
/// streaming apply.
inline void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Integer ceiling division for non-negative operands.
template <class T>
constexpr T ceil_div(T a, T b) {
  return static_cast<T>((a + b - 1) / b);
}

/// Rounds `a` up to the next multiple of `b` (b > 0).
template <class T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

/// True when `v` fits in a signed 16-bit delta (used by the column-index
/// compression of Section 2.2; -1 is reserved as the escape sentinel).
constexpr bool fits_short_delta(std::int64_t v) {
  return v >= std::numeric_limits<std::int16_t>::min() + 1 &&
         v <= std::numeric_limits<std::int16_t>::max();
}

/// The Section 2.2 escape sentinel in an int16 delta stream: an entry equal
/// to this marker reads its absolute column from the 4-byte side array
/// instead of adding a delta (which is also why a true delta of -1 must be
/// escaped).
inline constexpr std::int16_t kDeltaEscape = -1;

}  // namespace yaspmv
