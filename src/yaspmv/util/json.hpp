// Minimal JSON emission + validation for the machine-readable bench
// outputs (BENCH_cpu.json and friends).  Deliberately tiny: a streaming
// writer with correct string/number formatting, and a recursive-descent
// validator the bench binaries run on their own output before exiting —
// a malformed report fails the bench-smoke CI test instead of poisoning
// downstream tooling.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "yaspmv/core/status.hpp"

namespace yaspmv::json {

/// Escapes `s` as a JSON string literal (with quotes).
inline std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

/// Formats a double as a JSON number.  NaN/inf have no JSON spelling; they
/// become null so a bad measurement is visible rather than unparsable.
inline std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Streaming writer for objects/arrays: begin_object/begin_array push a
/// scope, key() names the next value inside an object, and the value
/// overloads append scalars.  Commas and indentation are managed by the
/// scope stack, so emission sites stay declarative.
class Writer {
 public:
  std::string take() {
    require(scopes_.empty(), "json::Writer: unclosed scope");
    return std::move(out_);
  }

  Writer& begin_object() { return open('{'); }
  Writer& end_object() { return close('}'); }
  Writer& begin_array() { return open('['); }
  Writer& end_array() { return close(']'); }

  Writer& key(const std::string& k) {
    comma();
    indent();
    out_ += quote(k);
    out_ += ": ";
    have_key_ = true;
    return *this;
  }

  Writer& value(const std::string& v) { return scalar(quote(v)); }
  Writer& value(const char* v) { return scalar(quote(v)); }
  Writer& value(double v) { return scalar(number(v)); }
  Writer& value(long long v) { return scalar(std::to_string(v)); }
  Writer& value(unsigned long long v) { return scalar(std::to_string(v)); }
  Writer& value(int v) { return scalar(std::to_string(v)); }
  Writer& value(unsigned v) { return scalar(std::to_string(v)); }
  Writer& value(std::size_t v) {
    return scalar(std::to_string(static_cast<unsigned long long>(v)));
  }
  Writer& value(bool v) { return scalar(v ? "true" : "false"); }

 private:
  Writer& open(char c) {
    if (!have_key_) {
      comma();
      indent();
    }
    out_ += c;
    scopes_.push_back({c, 0});
    have_key_ = false;
    return *this;
  }

  Writer& close(char c) {
    require(!scopes_.empty(), "json::Writer: close without open");
    const bool had_items = scopes_.back().items > 0;
    scopes_.pop_back();
    if (had_items) {
      out_ += '\n';
      indent_raw();
      if (!scopes_.empty()) out_ += "  ";  // match the opener's indent
    }
    out_ += c;
    return *this;
  }

  Writer& scalar(const std::string& text) {
    if (!have_key_) {
      comma();
      indent();
    }
    out_ += text;
    have_key_ = false;
    return *this;
  }

  void comma() {
    if (!scopes_.empty()) {
      if (scopes_.back().items++ > 0) out_ += ',';
    }
  }

  void indent() {
    if (!scopes_.empty()) {
      out_ += '\n';
      indent_raw();
      out_ += "  ";
    }
  }
  void indent_raw() {
    for (std::size_t i = 1; i < scopes_.size(); ++i) out_ += "  ";
  }

  struct Scope {
    char kind;
    int items;
  };
  std::string out_;
  std::vector<Scope> scopes_;
  bool have_key_ = false;
};

namespace detail {

struct Cursor {
  const char* p;
  const char* end;
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool eat(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
};

inline bool parse_value(Cursor& c, int depth);

inline bool parse_string(Cursor& c) {
  if (!c.eat('"')) return false;
  while (c.p < c.end) {
    const char ch = *c.p++;
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.p >= c.end) return false;
      const char esc = *c.p++;
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          if (c.p >= c.end || !std::isxdigit(static_cast<unsigned char>(*c.p))) {
            return false;
          }
          ++c.p;
        }
      } else if (!std::strchr("\"\\/bfnrt", esc)) {
        return false;
      }
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      return false;
    }
  }
  return false;
}

inline bool parse_number(Cursor& c) {
  const char* start = c.p;
  c.eat('-');
  if (!(c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p)))) {
    return false;
  }
  if (*c.p == '0') {
    ++c.p;  // JSON forbids leading zeros: 0 must stand alone
  } else {
    while (c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p))) ++c.p;
  }
  if (c.eat('.')) {
    if (!(c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p)))) {
      return false;
    }
    while (c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p))) ++c.p;
  }
  if (c.p < c.end && (*c.p == 'e' || *c.p == 'E')) {
    ++c.p;
    if (c.p < c.end && (*c.p == '+' || *c.p == '-')) ++c.p;
    if (!(c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p)))) {
      return false;
    }
    while (c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p))) ++c.p;
  }
  return c.p > start;
}

inline bool parse_literal(Cursor& c, const char* lit) {
  const std::size_t n = std::strlen(lit);
  if (static_cast<std::size_t>(c.end - c.p) < n) return false;
  if (std::strncmp(c.p, lit, n) != 0) return false;
  c.p += n;
  return true;
}

inline bool parse_value(Cursor& c, int depth) {
  if (depth > 64) return false;
  c.skip_ws();
  if (c.p >= c.end) return false;
  switch (*c.p) {
    case '{': {
      ++c.p;
      c.skip_ws();
      if (c.eat('}')) return true;
      for (;;) {
        c.skip_ws();
        if (!parse_string(c)) return false;
        c.skip_ws();
        if (!c.eat(':')) return false;
        if (!parse_value(c, depth + 1)) return false;
        c.skip_ws();
        if (c.eat(',')) continue;
        return c.eat('}');
      }
    }
    case '[': {
      ++c.p;
      c.skip_ws();
      if (c.eat(']')) return true;
      for (;;) {
        if (!parse_value(c, depth + 1)) return false;
        c.skip_ws();
        if (c.eat(',')) continue;
        return c.eat(']');
      }
    }
    case '"':
      return parse_string(c);
    case 't':
      return parse_literal(c, "true");
    case 'f':
      return parse_literal(c, "false");
    case 'n':
      return parse_literal(c, "null");
    default:
      return parse_number(c);
  }
}

}  // namespace detail

/// True when `text` is one well-formed JSON value (plus whitespace).
inline bool valid(const std::string& text) {
  detail::Cursor c{text.data(), text.data() + text.size()};
  if (!detail::parse_value(c, 0)) return false;
  c.skip_ws();
  return c.p == c.end;
}

}  // namespace yaspmv::json
