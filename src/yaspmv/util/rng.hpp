// Deterministic, seed-stable pseudo-random number generation for the matrix
// generators and property tests.  We avoid std::mt19937 + distributions in
// hot paths because libstdc++ distributions are not guaranteed to be
// reproducible across versions; the generators below are fully specified.
#pragma once

#include <cstdint>
#include <cmath>

namespace yaspmv {

/// splitmix64: tiny, high-quality 64-bit generator, used both directly and to
/// seed derived streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n) for n > 0 (Lemire's multiply-shift).
  std::uint64_t next_below(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Sample from a (discretized) power-law tail: returns k >= 1 with
  /// P(K >= k) ~ k^(1-alpha), alpha > 1.  Used for web-graph row lengths.
  std::uint64_t next_powerlaw(double alpha, std::uint64_t cap) {
    const double u = next_double();
    const double k = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
    auto v = static_cast<std::uint64_t>(k);
    if (v < 1) v = 1;
    if (v > cap) v = cap;
    return v;
  }

 private:
  std::uint64_t state_;
};

}  // namespace yaspmv
