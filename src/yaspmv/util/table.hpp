// Fixed-width ASCII table printer used by the bench harness to emit rows in
// the same layout as the paper's tables/figures.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace yaspmv {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    print_row(os, headers_);
    std::string sep;
    for (std::size_t i = 0; i < widths_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
      if (i + 1 < widths_.size()) sep += '+';
    }
    os << sep << '\n';
    for (const auto& r : rows_) print_row(os, r);
  }

  static std::string fmt(double v, int prec = 2) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << v;
    return ss.str();
  }

 private:
  void print_row(std::ostream& os, const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < widths_.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << ' ' << std::setw(static_cast<int>(widths_[i])) << std::left << c
         << ' ';
      if (i + 1 < widths_.size()) os << '|';
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace yaspmv
