// Persistent worker pool shared by every native execution path: the CPU
// SpMV/SpMM kernels, the parallel CSR baseline, the simulator's workgroup
// dispatcher and the parallel auto-tuner all run on the same parked OS
// threads instead of paying a std::thread spawn/join cycle per call.
//
// Two dispatch modes share the parked threads:
//
//   run_ordered    work items are claimed strictly in order from an atomic
//                  ticket counter, mirroring the paper's in-order
//                  workgroup-dispatch assumption (Section 3.2.4): the
//                  adjacent-synchronization chain cannot deadlock because
//                  workgroup X is only executed after workgroup X-1 has been
//                  *claimed* by some worker.  Every requested worker gets a
//                  real OS thread (a body may spin on another body's
//                  progress, so parking a requested worker could deadlock).
//
//   run_unordered  no claim-order guarantee: workers grab *contiguous index
//                  ranges* from an atomic cursor, in whatever order they get
//                  there.  Only valid for bodies whose result is independent
//                  of which thread runs which index (disjoint writes, no
//                  cross-body waiting) — which is exactly what lets the pool
//                  cap live threads at the hardware concurrency instead of
//                  oversubscribing to the requested count.  Callers keep
//                  deriving their decomposition from the *requested* count,
//                  so results stay bitwise reproducible per requested count
//                  while execution never pays for threads the machine does
//                  not have.
//
// The body parameter is a template (one type-erased call per *launch*, not a
// std::function indirection per index), so chunk kernels inline into the
// claim loop.  Nested submissions (a body that itself calls
// parallel_for_ordered, e.g. a tuner candidate launching the simulator) and
// concurrent submissions from a second OS thread degrade to an inline
// sequential loop — results are unchanged because every caller derives its
// work decomposition from the *requested* worker count, never from the
// number of threads that actually executed.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

// Optional libnuma backing for shard placement.  The build defines
// YASPMV_WITH_LIBNUMA only when both numa.h and the library were found
// (src/CMakeLists.txt); everything below degrades to a single locality
// domain without it, so shard-aware callers need no #ifdefs of their own.
#if defined(YASPMV_WITH_LIBNUMA)
#include <numa.h>
#endif

namespace yaspmv {

/// Default worker count for pooled dispatch (at least 1).
inline unsigned default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1u : hc;
}

/// NUMA nodes the machine actually has: the libnuma probe when compiled in
/// and the kernel exposes a topology, 1 otherwise.  Never 0.
inline unsigned numa_node_count() {
#if defined(YASPMV_WITH_LIBNUMA)
  if (numa_available() >= 0) {
    const int n = numa_num_configured_nodes();
    if (n > 1) return static_cast<unsigned>(n);
  }
#endif
  return 1;
}

/// Upper bound on shard groups a sharded launch partitions workers into
/// (per-shard claim cursors live on the launch stack, so this stays small).
inline constexpr unsigned kMaxShards = 16;

/// Default shard count for shard-aware execution: the YASPMV_NUMA override
/// when set ("0"/"off" forces one domain, a positive number forces that
/// many shard groups), otherwise the NUMA node probe.  On single-node
/// machines (or without libnuma) this is 1 and every sharded code path
/// collapses to the plain pooled one.
inline unsigned default_shards() {
  if (const char* env = std::getenv("YASPMV_NUMA")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) return 1;
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<unsigned>(
          std::min<long>(v, static_cast<long>(kMaxShards)));
    }
  }
  return std::min(numa_node_count(), kMaxShards);
}

/// A persistent pool of parked worker threads executing one job at a time
/// (ordered ticket or unordered contiguous-range claims — see the file
/// comment).  The submitting thread participates as worker 0; pool
/// threads are workers 1..N.  The pool grows on demand (up to kMaxWorkers)
/// when a launch requests more workers than are parked, so a caller asking
/// for 8 workers gets 8 OS threads even on a smaller machine — exactly what
/// the previous spawn-per-call implementation provided, which the TSan
/// suites rely on to exercise real interleavings.
class WorkPool {
 public:
  static constexpr unsigned kMaxWorkers = 256;

  explicit WorkPool(unsigned workers = 0) {
    ensure_workers(workers == 0 ? default_workers() : workers);
  }

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  ~WorkPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Workers available without growing (pool threads + the submitter).
  unsigned workers() const {
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Queue introspection for admission control: pooled launches currently
  /// executing (0 or 1 — launches are serialized by submit_mu_) plus
  /// submitters parked waiting for the pool.  A serving layer uses this to
  /// size its global in-flight cap and to observe saturation: when
  /// `active_launches() > 1` every additional compute-bound admission only
  /// deepens the queue, it cannot add parallelism.
  unsigned active_launches() const {
    return active_launches_.load(std::memory_order_relaxed);
  }

  /// The process-wide pool used by parallel_for_ordered.
  static WorkPool& shared() {
    static WorkPool pool;
    return pool;
  }

  /// True when the calling thread is currently executing a pool job (either
  /// a pool thread or a submitter inside run_ordered).  Nested submissions
  /// from such a thread run inline.
  static bool on_worker_thread() { return tl_in_job_; }

  /// Runs `body(worker, i)` for i in [0, n); indices are handed out in
  /// increasing order and at most `max_workers` threads participate (worker
  /// ids are < max_workers).  Exceptions thrown by `body` poison the launch
  /// — remaining tickets are still claimed (preserving the ordered-claim
  /// invariant) but their bodies are skipped — and the first one is
  /// rethrown on the submitting thread.
  template <class Body>
  void run_ordered(std::size_t n, unsigned max_workers, Body&& body) {
    if (n == 0) return;
    if (max_workers <= 1 || n == 1 || tl_in_job_) {
      run_inline(n, body);
      return;
    }
    active_launches_.fetch_add(1, std::memory_order_relaxed);
    struct ActiveGuard {
      std::atomic<unsigned>& n;
      ~ActiveGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
    } active_guard{active_launches_};
    std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
    if (!submit.owns_lock()) {
      // A second OS thread is mid-launch: degrade to inline execution
      // rather than blocking (callers' decompositions do not depend on the
      // executing thread count, so results are identical).
      run_inline(n, body);
      return;
    }
    if (max_workers > kMaxWorkers) max_workers = kMaxWorkers;
    ensure_workers(max_workers);

    std::atomic<std::size_t> ticket{0};
    std::atomic<bool> poisoned{false};
    std::exception_ptr first_error;
    std::mutex err_mu;

    auto runner = [&](unsigned worker) {
      for (;;) {
        const std::size_t i = ticket.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        if (poisoned.load(std::memory_order_acquire)) continue;  // drain
        try {
          body(worker, i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) first_error = std::current_exception();
          poisoned.store(true, std::memory_order_release);
        }
      }
    };
    launch(max_workers, runner);
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Runs `body(worker, i)` for i in [0, n) with NO claim-order guarantee:
  /// each participating worker grabs a contiguous batch of indices from an
  /// atomic cursor and executes it, repeating until the range is drained.
  /// Only valid for bodies whose result does not depend on which worker runs
  /// which index or in what order (disjoint writes, no cross-index waiting).
  /// Because no body can wait on another, live threads are capped at the
  /// hardware concurrency: requesting 16 workers on a 4-core box wakes 4
  /// threads (or none — max_workers <= 1 after capping runs inline), while
  /// the caller's decomposition still derives from the requested 16.
  /// Exceptions poison the launch like run_ordered.
  template <class Body>
  void run_unordered(std::size_t n, unsigned max_workers, Body&& body) {
    if (n == 0) return;
    unsigned live = std::min(max_workers, default_workers());
    if (live > kMaxWorkers) live = kMaxWorkers;
    if (live <= 1 || n == 1 || tl_in_job_) {
      run_inline(n, body);
      return;
    }
    active_launches_.fetch_add(1, std::memory_order_relaxed);
    struct ActiveGuard {
      std::atomic<unsigned>& n;
      ~ActiveGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
    } active_guard{active_launches_};
    std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
    if (!submit.owns_lock()) {
      run_inline(n, body);
      return;
    }
    ensure_workers(live);

    // ~4 batches per live worker: coarse enough that the cursor is touched
    // O(live) times per launch (vs. O(n) ticket bumps in run_ordered), fine
    // enough that a straggler batch cannot serialize the tail.
    const std::size_t batch = (n + live * 4 - 1) / (live * 4);
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> poisoned{false};
    std::exception_ptr first_error;
    std::mutex err_mu;

    auto runner = [&](unsigned worker) {
      for (;;) {
        const std::size_t lo =
            cursor.fetch_add(batch, std::memory_order_relaxed);
        if (lo >= n) return;
        const std::size_t hi = std::min(n, lo + batch);
        if (poisoned.load(std::memory_order_acquire)) continue;  // drain
        try {
          for (std::size_t i = lo; i < hi; ++i) body(worker, i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) first_error = std::current_exception();
          poisoned.store(true, std::memory_order_release);
        }
      }
    };
    launch(live, runner);
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Shard-affinity variant of run_unordered: the index range [0, n) is
  /// pre-partitioned into `nshards` contiguous shards by `shard_start`
  /// (nshards + 1 monotone boundaries with shard_start[0] == 0 and
  /// shard_start[nshards] == n).  Live workers are split into contiguous
  /// per-shard groups (worker w's home shard is w * nshards / live) and
  /// each group drains its own shard's cursor first — on a NUMA machine
  /// with bound workers this keeps every group on the pages its shard's
  /// first-touch pass faulted.  A group that drains its home shard sweeps
  /// the other shards' cursors, so every index runs exactly once for any
  /// live thread count (including live < nshards).  Pure scheduling: the
  /// body contract is run_unordered's (disjoint writes, no cross-index
  /// waiting), so output is bitwise identical to run_unordered/run_ordered
  /// at the same requested worker count.
  template <class Body>
  void run_sharded(std::size_t n, const std::size_t* shard_start,
                   unsigned nshards, unsigned max_workers, Body&& body) {
    if (n == 0) return;
    if (nshards <= 1 || nshards > kMaxShards) {
      // Out-of-bounds shard counts degrade to the unsharded schedule rather
      // than silently dropping the ranges past shard_start[kMaxShards].
      run_unordered(n, max_workers, std::forward<Body>(body));
      return;
    }
    unsigned live = std::min(max_workers, default_workers());
    if (live > kMaxWorkers) live = kMaxWorkers;
    if (live <= 1 || n == 1 || tl_in_job_) {
      run_inline(n, body);
      return;
    }
    active_launches_.fetch_add(1, std::memory_order_relaxed);
    struct ActiveGuard {
      std::atomic<unsigned>& n;
      ~ActiveGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
    } active_guard{active_launches_};
    std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
    if (!submit.owns_lock()) {
      run_inline(n, body);
      return;
    }
    ensure_workers(live);

    // Same batching economics as run_unordered, but the cursor is
    // per-shard: each shard hands out contiguous batches independently.
    const std::size_t batch = std::max<std::size_t>(
        1, (n + static_cast<std::size_t>(live) * 4 - 1) /
               (static_cast<std::size_t>(live) * 4));
    std::array<std::atomic<std::size_t>, kMaxShards> cursors{};
    std::atomic<bool> poisoned{false};
    std::exception_ptr first_error;
    std::mutex err_mu;

    auto runner = [&](unsigned worker) {
      // Round-robin home shards, matching the round-robin node binding of
      // worker_main: when nshards == numa_node_count() worker w's home
      // shard lives on the node w is bound to.
      const unsigned home = worker % nshards;
      for (unsigned k = 0; k < nshards; ++k) {
        const unsigned s = (home + k) % nshards;
        const std::size_t s_lo = shard_start[s];
        const std::size_t s_hi = shard_start[s + 1];
        for (;;) {
          const std::size_t off =
              cursors[s].fetch_add(batch, std::memory_order_relaxed);
          const std::size_t lo = s_lo + off;
          if (lo >= s_hi) break;
          const std::size_t hi = std::min(s_hi, lo + batch);
          if (poisoned.load(std::memory_order_acquire)) continue;  // drain
          try {
            for (std::size_t i = lo; i < hi; ++i) body(worker, i);
          } catch (...) {
            std::lock_guard<std::mutex> lk(err_mu);
            if (!first_error) first_error = std::current_exception();
            poisoned.store(true, std::memory_order_release);
          }
        }
      }
    };
    launch(live, runner);
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  struct Job {
    void (*invoke)(void*, unsigned) = nullptr;
    void* ctx = nullptr;
    unsigned limit = 0;  ///< workers with id >= limit skip this job
  };

  template <class Body>
  static void run_inline(std::size_t n, Body& body) {
    for (std::size_t i = 0; i < n; ++i) body(0u, i);
  }

  /// Publishes `runner` to the parked threads (workers with id >= limit skip
  /// it), runs it as worker 0 on the calling thread, and waits for the
  /// barrier.  Caller holds submit_mu_ and has already sized the pool.
  template <class Runner>
  void launch(unsigned limit, Runner& runner) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_.invoke = [](void* ctx, unsigned worker) {
        (*static_cast<Runner*>(ctx))(worker);
      };
      job_.ctx = &runner;
      job_.limit = limit;
      pending_ = static_cast<unsigned>(threads_.size());
      ++generation_;
    }
    wake_cv_.notify_all();

    tl_in_job_ = true;
    runner(0);
    tl_in_job_ = false;

    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return pending_ == 0; });
    }
  }

  /// Grows the pool so `total` workers (including the submitter) exist.
  /// Only called while no job is in flight (constructor, or under
  /// submit_mu_ before the job is published).
  void ensure_workers(unsigned total) {
    if (total > kMaxWorkers) total = kMaxWorkers;
    std::lock_guard<std::mutex> lk(mu_);
    while (threads_.size() + 1 < total) {
      const auto id = static_cast<unsigned>(threads_.size()) + 1;
      // The worker's starting generation is captured at spawn time (under
      // mu_, with no job in flight): a job published between the spawn and
      // the thread actually running must not be missed.
      const std::uint64_t seen = generation_;
      threads_.emplace_back([this, id, seen] { worker_main(id, seen); });
    }
  }

  void worker_main(unsigned id, std::uint64_t seen) {
#if defined(YASPMV_WITH_LIBNUMA)
    // Bind each pool thread to a node round-robin so sharded launches (home
    // shard = id % nshards) read the pages their shard's first-touch pass
    // placed.  Best effort: a cpuset that excludes the node simply leaves
    // the thread where the scheduler put it.
    if (const unsigned nodes = numa_node_count(); nodes > 1) {
      (void)numa_run_on_node(static_cast<int>(id % nodes));
    }
#endif
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const Job job = job_;
      lk.unlock();
      if (id < job.limit) {
        tl_in_job_ = true;
        job.invoke(job.ctx, id);
        tl_in_job_ = false;
      }
      lk.lock();
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  inline static thread_local bool tl_in_job_ = false;

  mutable std::mutex mu_;          ///< guards job_/generation_/pending_/threads_
  std::mutex submit_mu_;           ///< serializes launches (one job at a time)
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  Job job_;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  std::atomic<unsigned> active_launches_{0};
};

/// Runs `body(worker, i)` for i in [0, n) on the shared WorkPool using up to
/// `workers` threads; the first argument identifies the executing worker in
/// [0, workers).  Indices are handed out in increasing order.  `workers <= 1`
/// (or n == 1) degenerates to a plain sequential loop on the calling thread,
/// which keeps unit tests deterministic.
template <class Body>
inline void parallel_for_ordered(std::size_t n, unsigned workers, Body&& body) {
  if (n == 0) return;
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(0u, i);
    return;
  }
  WorkPool::shared().run_ordered(n, workers, std::forward<Body>(body));
}

/// Runs `body(worker, i)` for i in [0, n) on the shared WorkPool with no
/// claim-order guarantee and at most min(workers, hardware) live threads.
/// Only for bodies whose result is independent of claim order and executing
/// thread (disjoint writes, no cross-index waiting); under that contract the
/// output is bitwise identical to parallel_for_ordered at the same
/// `workers`.  `workers <= 1` (or n == 1) degenerates to a sequential loop.
template <class Body>
inline void parallel_for_unordered(std::size_t n, unsigned workers,
                                   Body&& body) {
  if (n == 0) return;
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(0u, i);
    return;
  }
  WorkPool::shared().run_unordered(n, workers, std::forward<Body>(body));
}

/// Runs `body(worker, i)` for i in [0, n) on the shared WorkPool with the
/// shard-affinity schedule of WorkPool::run_sharded: `shard_start` holds
/// nshards + 1 monotone boundaries partitioning [0, n) into contiguous
/// shards, each drained by its own worker group first.  Same body contract
/// (and bitwise output) as parallel_for_unordered at the same `workers`.
template <class Body>
inline void parallel_for_sharded(std::size_t n, const std::size_t* shard_start,
                                 unsigned nshards, unsigned workers,
                                 Body&& body) {
  if (n == 0) return;
  if (workers <= 1 || n == 1 || nshards <= 1) {
    if (workers <= 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) body(0u, i);
    } else {
      WorkPool::shared().run_unordered(n, workers, std::forward<Body>(body));
    }
    return;
  }
  WorkPool::shared().run_sharded(n, shard_start, nshards, workers,
                                 std::forward<Body>(body));
}

/// First-touch initialization: value-fills `p[0..n)` with `v`, with each
/// shard's element range [shard_start[s], shard_start[s + 1]) written by
/// that shard's worker group — on a NUMA machine with bound workers the
/// kernel's first-touch policy places each shard's pages on the node that
/// will stream them.  `p` must be freshly allocated storage that no thread
/// has written yet (e.g. `new T[n]`, NOT a resized std::vector — resize
/// value-initializes and would fault every page on the calling thread).
/// Falls back to a plain serial fill for one shard / one worker.
template <class T>
inline void first_touch_fill(T* p, std::size_t n, T v,
                             const std::size_t* shard_start, unsigned nshards,
                             unsigned workers) {
  if (n == 0) return;
  if (nshards <= 1 || nshards > kMaxShards || workers <= 1) {
    std::fill(p, p + n, v);
    return;
  }
  // One work item per shard; batch size 1, so each home group claims (and
  // faults) exactly its own shard's range.
  std::size_t identity[kMaxShards + 1];
  for (unsigned s = 0; s <= nshards; ++s) identity[s] = s;
  WorkPool::shared().run_sharded(
      nshards, identity, nshards, workers, [&](unsigned, std::size_t s) {
        std::fill(p + shard_start[s], p + shard_start[s + 1], v);
      });
}

/// Heap buffer whose pages are faulted by a sharded first-touch pass (see
/// first_touch_fill) instead of by the constructing thread.  Engines hold
/// their per-shard scratch (carry panels, slice-stacked partials) in these
/// so each NUMA group streams locally placed pages.  With one shard it is
/// just a zero-filled array — bit-for-bit the std::vector it replaces.
template <class T>
class FirstTouchBuffer {
 public:
  void init(std::size_t n, T v, const std::size_t* shard_start,
            unsigned nshards, unsigned workers) {
    // new T[n] default-initializes (trivial T: no writes), so the pages are
    // still untouched when the sharded fill claims them.
    p_.reset(n == 0 ? nullptr : new T[n]);
    n_ = n;
    if (n != 0) first_touch_fill(p_.get(), n, v, shard_start, nshards, workers);
  }
  T* data() { return p_.get(); }
  const T* data() const { return p_.get(); }
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  T& operator[](std::size_t i) { return p_[i]; }
  const T& operator[](std::size_t i) const { return p_[i]; }

 private:
  std::unique_ptr<T[]> p_;
  std::size_t n_ = 0;
};

}  // namespace yaspmv
