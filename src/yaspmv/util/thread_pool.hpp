// A small fixed-size worker pool used by the simulator's workgroup
// dispatcher.  Workgroups are claimed strictly in order (an atomic ticket
// counter), which mirrors the paper's in-order workgroup-dispatch assumption
// (Section 3.2.4) and guarantees the adjacent-synchronization chain cannot
// deadlock: workgroup X is only executed after workgroup X-1 has been
// *claimed* by some worker.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace yaspmv {

/// Runs `body(worker, i)` for i in [0, n) using `workers` OS threads; the
/// first argument identifies the executing worker in [0, workers).  Indices
/// are handed out in increasing order.  `workers == 1` (or n == 1)
/// degenerates to a plain sequential loop on the calling thread, which keeps
/// unit tests deterministic.
inline void parallel_for_ordered(
    std::size_t n, unsigned workers,
    const std::function<void(unsigned, std::size_t)>& body) {
  if (n == 0) return;
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  std::atomic<std::size_t> ticket{0};
  auto work = [&](unsigned worker) {
    for (;;) {
      const std::size_t i = ticket.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      body(worker, i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(work, w);
  work(0);
  for (auto& t : pool) t.join();
}

/// Default worker count for pooled dispatch (at least 1).
inline unsigned default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1u : hc;
}

}  // namespace yaspmv
