// Baseline kernel tests: every comparator computes the reference result and
// reports a sensible memory/divergence profile.
#include "yaspmv/baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "yaspmv/baselines/clspmv.hpp"
#include "yaspmv/baselines/coo_cusp.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

fmt::Coo random_matrix(index_t rows, index_t cols, double density,
                       std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const auto target = static_cast<std::uint64_t>(
      density * static_cast<double>(rows) * static_cast<double>(cols));
  for (std::uint64_t i = 0; i < std::max<std::uint64_t>(target, 1); ++i) {
    ri.push_back(
        static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(rows))));
    ci.push_back(
        static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(cols))));
    v.push_back(rng.next_double(-1, 1));
  }
  return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                 std::move(v));
}

struct Fixture {
  fmt::Coo A;
  fmt::Csr csr;
  std::vector<real_t> x;
  std::vector<real_t> want;
  sim::DeviceSpec dev = sim::gtx680();

  explicit Fixture(std::uint64_t seed, index_t rows = 200, index_t cols = 160,
                   double density = 0.04)
      : A(random_matrix(rows, cols, density, seed)),
        csr(fmt::Csr::from_coo(A)),
        x(static_cast<std::size_t>(cols)),
        want(static_cast<std::size_t>(rows)) {
    SplitMix64 rng(seed + 1);
    for (auto& v : x) v = rng.next_double(-1, 1);
    csr.spmv(x, want);
  }

  void check(const std::vector<real_t>& y, const std::string& what) const {
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(y[i], want[i], 1e-9 * std::max(1.0, std::abs(want[i])))
          << what << " row " << i;
    }
  }
};

TEST(Baselines, CsrScalarCorrectAndDivergent) {
  Fixture f(1);
  std::vector<real_t> y(f.want.size());
  auto r = baseline::run_csr_scalar(f.csr, f.dev, f.x, y);
  f.check(y, "csr-scalar");
  EXPECT_GE(r.stats.divergence_factor(), 1.0);
  EXPECT_GT(r.stats.global_load_bytes, f.A.nnz() * 8);  // uncoalesced
  EXPECT_EQ(r.stats.kernel_launches, 1u);
}

TEST(Baselines, CsrVectorCorrectAndCoalesced) {
  Fixture f(2);
  std::vector<real_t> y(f.want.size());
  auto r = baseline::run_csr_vector(f.csr, f.dev, f.x, y);
  f.check(y, "csr-vector");
  auto rs = baseline::run_csr_scalar(f.csr, f.dev, f.x, y);
  EXPECT_LT(r.stats.global_load_bytes, rs.stats.global_load_bytes);
}

TEST(Baselines, EllCorrect) {
  Fixture f(3);
  const auto ell = fmt::Ell::from_csr(f.csr);
  std::vector<real_t> y(f.want.size());
  auto r = baseline::run_ell(ell, f.dev, f.x, y);
  f.check(y, "ell");
  // ELL loads its padding: traffic reflects stored, not real, non-zeros.
  EXPECT_GE(r.stats.global_load_bytes, ell.nnz_stored() * 8);
}

TEST(Baselines, SellCorrect) {
  Fixture f(4);
  const auto sell = fmt::SEll::from_csr(f.csr, 32);
  std::vector<real_t> y(f.want.size());
  auto r = baseline::run_sell(sell, f.dev, f.x, y);
  f.check(y, "sell");
  const auto ell = fmt::Ell::from_csr(f.csr);
  std::vector<real_t> y2(f.want.size());
  auto re = baseline::run_ell(ell, f.dev, f.x, y2);
  EXPECT_LE(r.stats.global_load_bytes, re.stats.global_load_bytes);
}

TEST(Baselines, DiaCorrectOnBanded) {
  // Tridiagonal matrix.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < 300; ++i) {
    for (index_t d = -1; d <= 1; ++d) {
      const index_t c = i + d;
      if (c >= 0 && c < 300) {
        ri.push_back(i);
        ci.push_back(c);
        v.push_back(static_cast<real_t>(d + 2));
      }
    }
  }
  const auto A = fmt::Coo::from_triplets(300, 300, std::move(ri),
                                         std::move(ci), std::move(v));
  const auto csr = fmt::Csr::from_coo(A);
  std::vector<real_t> x(300, 1.0), want(300), y(300);
  csr.spmv(x, want);
  auto r = baseline::run_dia(fmt::Dia::from_csr(csr), sim::gtx680(), x, y);
  for (std::size_t i = 0; i < 300; ++i) ASSERT_NEAR(y[i], want[i], 1e-12);
  EXPECT_GT(r.stats.vector_hit_rate(), 0.8);  // contiguous accesses
}

TEST(Baselines, HybCorrectTwoLaunches) {
  Fixture f(5);
  const auto hyb = fmt::Hyb::from_csr(f.csr);
  std::vector<real_t> y(f.want.size());
  auto r = baseline::run_hyb(hyb, f.dev, f.x, y);
  f.check(y, "hyb");
  EXPECT_EQ(r.stats.kernel_launches, 2u);
  // Spill pass writes one RMW transaction per spill row.
  EXPECT_GT(r.stats.global_store_bytes, 0u);
}

TEST(Baselines, SbellCorrectAndSmallerThanBell) {
  // Block-structured matrix with varying block-row lengths.
  Fixture f(20, 300, 300, 0.03);
  for (auto [bw, bh] : {std::pair<index_t, index_t>{2, 2}, {1, 4}}) {
    const auto sb = fmt::SBell::from_coo(f.A, bw, bh, 8);
    std::vector<real_t> y(f.want.size());
    baseline::run_sbell(sb, f.dev, f.x, y);
    f.check(y, "sbell");
    const auto be = fmt::Bell::from_coo(f.A, bw, bh);
    EXPECT_LE(sb.footprint_bytes(), be.footprint_bytes())
        << bw << "x" << bh;
  }
}

TEST(Baselines, BdiaCorrectAndCompactOnBanded) {
  // Tridiagonal + a detached far diagonal -> exactly two bands.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < 400; ++i) {
    for (index_t d = -1; d <= 1; ++d) {
      const index_t c = i + d;
      if (c >= 0 && c < 400) {
        ri.push_back(i);
        ci.push_back(c);
        v.push_back(static_cast<real_t>(d + 2));
      }
    }
    if (i + 100 < 400) {
      ri.push_back(i);
      ci.push_back(i + 100);
      v.push_back(0.5);
    }
  }
  const auto A = fmt::Coo::from_triplets(400, 400, std::move(ri),
                                         std::move(ci), std::move(v));
  const auto csr = fmt::Csr::from_coo(A);
  const auto b = fmt::Bdia::from_csr(csr);
  EXPECT_EQ(b.num_bands(), 2);
  EXPECT_EQ(b.band_offset[0], -1);
  EXPECT_EQ(b.band_width[0], 3);
  EXPECT_EQ(b.band_offset[1], 100);
  EXPECT_EQ(b.band_width[1], 1);
  // One offset per band instead of per diagonal.
  EXPECT_LT(b.footprint_bytes(), fmt::Dia::from_csr(csr).footprint_bytes() +
                                     4 * 4);
  std::vector<real_t> x(400, 1.0), want(400), y(400);
  csr.spmv(x, want);
  baseline::run_bdia(b, sim::gtx680(), x, y);
  for (std::size_t i = 0; i < 400; ++i) ASSERT_NEAR(y[i], want[i], 1e-12);
}

TEST(Baselines, BdiaMatchesReferenceOnRandom) {
  Fixture f(21, 150, 150, 0.05);
  const auto b = fmt::Bdia::from_csr(f.csr);
  std::vector<real_t> y(f.want.size());
  baseline::run_bdia(b, f.dev, f.x, y);
  f.check(y, "bdia random");
}

TEST(Baselines, BcsrAndBellCorrect) {
  Fixture f(6);
  for (auto [bw, bh] : {std::pair<index_t, index_t>{2, 2}, {4, 3}}) {
    std::vector<real_t> y(f.want.size());
    baseline::run_bcsr(fmt::Bcsr::from_coo(f.A, bw, bh), f.dev, f.x, y);
    f.check(y, "bcsr");
    baseline::run_bell(fmt::Bell::from_coo(f.A, bw, bh), f.dev, f.x, y);
    f.check(y, "bell");
  }
}

class CooTreeShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CooTreeShapes, MatchesReference) {
  const auto [seed, wgsize] = GetParam();
  Fixture f(static_cast<std::uint64_t>(seed), 257, 129, 0.05);
  std::vector<real_t> y(f.want.size());
  auto r = baseline::run_coo_tree(f.A, f.dev, f.x, y, wgsize);
  f.check(y, "coo-tree");
  EXPECT_EQ(r.stats.kernel_launches, 2u);  // scan + carry pass
  EXPECT_GT(r.stats.divergence_factor(), 1.0);  // idle tree lanes
}

INSTANTIATE_TEST_SUITE_P(Shapes, CooTreeShapes,
                         ::testing::Combine(::testing::Values(7, 8, 9),
                                            ::testing::Values(64, 256)));

TEST(Baselines, CooTreeLongRow) {
  // Single row spanning many workgroups: the serial carry chain must
  // propagate across every block.
  std::vector<index_t> ri(5000, 0), ci(5000);
  std::vector<real_t> v(5000);
  SplitMix64 rng(10);
  for (index_t i = 0; i < 5000; ++i) {
    ci[static_cast<std::size_t>(i)] = i;
    v[static_cast<std::size_t>(i)] = rng.next_double(-1, 1);
  }
  const auto A = fmt::Coo::from_triplets(1, 5000, std::move(ri), std::move(ci),
                                         std::move(v));
  std::vector<real_t> x(5000, 1.0), want(1), y(1);
  A.spmv(x, want);
  baseline::run_coo_tree(A, sim::gtx680(), x, y, 256);
  EXPECT_NEAR(y[0], want[0], 1e-9 * std::abs(want[0]));
}

TEST(Baselines, CooTreeCarryAfterBlockEndingAtRowStop) {
  // Regression: workgroup 0 ends *exactly* at a row stop (carry out must be
  // 0), workgroup 1 has no stop, and workgroup 2 consumes the carry for a
  // segment spanning wg1+wg2.  A tail that wrongly exports the finished
  // segment sum corrupts row 1.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t c = 0; c < 4; ++c) {  // row 0: exactly one 4-wide workgroup
    ri.push_back(0);
    ci.push_back(c);
    v.push_back(1.0);
  }
  for (index_t c = 0; c < 8; ++c) {  // row 1: spans workgroups 1 and 2
    ri.push_back(1);
    ci.push_back(c);
    v.push_back(10.0);
  }
  const auto A = fmt::Coo::from_triplets(2, 8, std::move(ri), std::move(ci),
                                         std::move(v));
  std::vector<real_t> x(8, 1.0), want(2), y(2);
  A.spmv(x, want);
  baseline::run_coo_tree(A, sim::gtx680(), x, y, /*workgroup_size=*/4);
  EXPECT_NEAR(y[0], want[0], 1e-12);
  EXPECT_NEAR(y[1], want[1], 1e-12);
}

TEST(ClSpmv, SinglesAllApplicableAndSorted) {
  Fixture f(11);
  std::vector<real_t> y(f.want.size());
  auto singles = baseline::evaluate_singles(f.A, f.dev, f.x, y);
  ASSERT_GE(singles.size(), 4u);  // COO, CSR-scalar, CSR-vector, SELL, ...
  for (std::size_t i = 1; i < singles.size(); ++i) {
    EXPECT_GE(singles[i - 1].gflops, singles[i].gflops);
  }
  f.check(y, "best-single output");
  for (const auto& s : singles) {
    EXPECT_GT(s.footprint, 0u) << s.name;
    EXPECT_GT(s.gflops, 0.0) << s.name;
  }
}

TEST(ClSpmv, CocktailAtLeastAsFastAsBestSingle) {
  Fixture f(12, 400, 300, 0.02);
  std::vector<real_t> y1(f.want.size()), y2(f.want.size());
  auto single = baseline::best_single(f.A, f.dev, f.x, y1);
  auto cocktail = baseline::run_cocktail(f.A, f.dev, f.x, y2);
  f.check(y2, "cocktail output");
  EXPECT_GE(cocktail.gflops, single.gflops * 0.999);
}

TEST(ClSpmv, CusparseProxyCorrect) {
  Fixture f(13);
  std::vector<real_t> y(f.want.size());
  auto r = baseline::run_cusparse(f.A, f.dev, f.x, y);
  f.check(y, "cusparse proxy");
  EXPECT_FALSE(r.name.empty());
}

TEST(ClSpmv, EllFootprintAnalyticNaForPowerLaw) {
  // A matrix with one enormous row makes ELL inapplicable (Table 3 N/A).
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t c = 0; c < 60000; ++c) {
    ri.push_back(0);
    ci.push_back(c);
    v.push_back(1.0);
  }
  for (index_t r = 1; r < 50000; ++r) {
    ri.push_back(r);
    ci.push_back(r % 60000);
    v.push_back(1.0);
  }
  const auto A = fmt::Coo::from_triplets(50000, 60000, std::move(ri),
                                         std::move(ci), std::move(v));
  EXPECT_EQ(baseline::ell_footprint_analytic(A),
            std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace yaspmv
