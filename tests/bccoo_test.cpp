// BCCOO/BCCOO+ format builder tests, anchored on the paper's running example
// (matrix A, Eq. 1; Figures 1-4) and matrix C (Eq. 2; Figure 6).
#include "yaspmv/core/bccoo.hpp"

#include <gtest/gtest.h>

#include "yaspmv/scan/scan.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

// Matrix A of Eq. 1 with symbolic entries a..p mapped to 1..16.
//      [ 0 0 a 0 0 0 b c ]
//      [ 0 0 d e 0 0 f 0 ]
//      [ 0 0 0 0 g h i j ]
//      [ k l 0 0 m n o p ]
fmt::Coo matrix_A() {
  const double a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8, i = 9,
               j = 10, k = 11, l = 12, m = 13, n = 14, o = 15, p = 16;
  std::vector<index_t> ri = {0, 0, 0, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3};
  std::vector<index_t> ci = {2, 6, 7, 2, 3, 6, 4, 5, 6, 7, 0, 1, 4, 5, 6, 7};
  std::vector<real_t> v = {a, b, c, d, e, f, g, h, i, j, k, l, m, n, o, p};
  return fmt::Coo::from_triplets(4, 8, std::move(ri), std::move(ci),
                                 std::move(v));
}

std::vector<int> bits_of(const BitArray& b) {
  std::vector<int> out;
  for (std::size_t i = 0; i < b.size(); ++i) out.push_back(b.get(i) ? 1 : 0);
  return out;
}

TEST(Bccoo, Figure3_BccooOfMatrixA) {
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  const auto m = core::Bccoo::build(matrix_A(), fc);

  EXPECT_EQ(m.num_blocks, 5u);
  // Figure 3: Bit Flag = [1 0 1 1 0], Col_index = [1 3 0 2 3].
  EXPECT_EQ(bits_of(m.bit_flags), (std::vector<int>{1, 0, 1, 1, 0}));
  EXPECT_EQ(m.col_index, (std::vector<index_t>{1, 3, 0, 2, 3}));
  // Figure 3 value arrays: top rows [a 0 b c 0 0 g h i j],
  //                        bottom   [d e f 0 k l m n o p].
  EXPECT_EQ(m.value_rows[0],
            (std::vector<real_t>{1, 0, 2, 3, 0, 0, 7, 8, 9, 10}));
  EXPECT_EQ(m.value_rows[1],
            (std::vector<real_t>{4, 5, 6, 0, 11, 12, 13, 14, 15, 16}));
  EXPECT_TRUE(m.identity_segments);
  EXPECT_EQ(m.num_segments(), 2u);
}

TEST(Bccoo, Figure4_BccooPlusOfMatrixA) {
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  fc.slices = 2;
  const auto m = core::Bccoo::build(matrix_A(), fc);

  EXPECT_EQ(m.num_blocks, 5u);
  // Figure 4(b): Bit Flag = [0 0 0 1 0], Col_index = [1 0 3 2 3] (original
  // matrix block coordinates).
  EXPECT_EQ(bits_of(m.bit_flags), (std::vector<int>{0, 0, 0, 1, 0}));
  EXPECT_EQ(m.col_index, (std::vector<index_t>{1, 0, 3, 2, 3}));
  // Figure 4(b) value arrays: [a 0 0 0 b c g h i j] / [d e k l f 0 m n o p].
  EXPECT_EQ(m.value_rows[0],
            (std::vector<real_t>{1, 0, 0, 0, 2, 3, 7, 8, 9, 10}));
  EXPECT_EQ(m.value_rows[1],
            (std::vector<real_t>{4, 5, 11, 12, 6, 0, 13, 14, 15, 16}));
  // Stacked block-rows: 0 (slice0,brow0), 1 (slice0,brow1), 2 (slice1,brow0),
  // 3 (slice1,brow1) — all non-empty here.
  EXPECT_EQ(m.seg_to_block_row, (std::vector<index_t>{0, 1, 2, 3}));
  EXPECT_EQ(m.stacked_block_rows, 4);
}

TEST(Bccoo, RowIndexReconstructionIsLossless) {
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  const auto m = core::Bccoo::build(matrix_A(), fc);
  const auto rows = scan::row_indices_from_bitflags(m.bit_flags);
  // Figure 2: Row_index = [0 0 1 1 1].
  EXPECT_EQ(rows, (std::vector<index_t>{0, 0, 1, 1, 1}));
}

TEST(Bccoo, ReferenceSpmvMatchesCoo) {
  const auto A = matrix_A();
  std::vector<real_t> x = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<real_t> want(4), got(4);
  A.spmv(x, want);
  for (index_t bw : {1, 2, 4}) {
    for (index_t bh : {1, 2, 3, 4}) {
      for (index_t slices : {1, 2, 4}) {
        core::FormatConfig fc;
        fc.block_w = bw;
        fc.block_h = bh;
        fc.slices = slices;
        if (ceil_div(A.cols, bw) < slices) continue;
        const auto m = core::Bccoo::build(A, fc);
        m.spmv_reference(x, got);
        for (int r = 0; r < 4; ++r) {
          EXPECT_NEAR(got[static_cast<std::size_t>(r)],
                      want[static_cast<std::size_t>(r)], 1e-12)
              << "bw=" << bw << " bh=" << bh << " slices=" << slices;
        }
      }
    }
  }
}

TEST(Bccoo, FootprintAccountsAllArrays) {
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  fc.bf_word = BitFlagWord::kU8;
  const auto m = core::Bccoo::build(matrix_A(), fc);
  // 5 blocks: bit flags ceil(5/8)=1 byte; col 5*4=20; values 5*2*2*4=80.
  EXPECT_EQ(m.footprint_bytes(), 1u + 20u + 80u);
  // Short col indices: 5*2=10.
  EXPECT_EQ(m.footprint_bytes(/*short_col=*/true), 1u + 10u + 80u);
}

TEST(Bccoo, FootprintBeatsCooOnBlockedMatrix) {
  const auto A = matrix_A();
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  const auto m = core::Bccoo::build(A, fc);
  EXPECT_LT(m.footprint_bytes(true), A.footprint_bytes());
}

TEST(Bccoo, EmptyBlockRowsGetSegmentMap) {
  // Rows 2..5 empty: bit-flag reconstruction alone cannot place results.
  std::vector<index_t> ri = {0, 1, 6};
  std::vector<index_t> ci = {0, 1, 2};
  std::vector<real_t> v = {1, 2, 3};
  const auto A =
      fmt::Coo::from_triplets(7, 4, std::move(ri), std::move(ci), std::move(v));
  core::FormatConfig fc;  // 1x1 blocks
  const auto m = core::Bccoo::build(A, fc);
  EXPECT_FALSE(m.identity_segments);
  EXPECT_EQ(m.seg_to_block_row, (std::vector<index_t>{0, 1, 6}));
  std::vector<real_t> x = {1, 1, 1, 1}, y(7);
  m.spmv_reference(x, y);
  EXPECT_EQ(y, (std::vector<real_t>{1, 2, 0, 0, 0, 0, 3}));
}

TEST(Bccoo, SingleBlockMatrix) {
  std::vector<index_t> ri = {0};
  std::vector<index_t> ci = {0};
  std::vector<real_t> v = {5};
  const auto A =
      fmt::Coo::from_triplets(1, 1, std::move(ri), std::move(ci), std::move(v));
  core::FormatConfig fc;
  const auto m = core::Bccoo::build(A, fc);
  EXPECT_EQ(m.num_blocks, 1u);
  EXPECT_EQ(bits_of(m.bit_flags), (std::vector<int>{0}));
}

TEST(Bccoo, RejectsBadConfig) {
  core::FormatConfig fc;
  fc.block_w = 0;
  EXPECT_THROW(core::Bccoo::build(matrix_A(), fc), std::invalid_argument);
  fc.block_w = 2;
  fc.slices = 0;
  EXPECT_THROW(core::Bccoo::build(matrix_A(), fc), std::invalid_argument);
}

TEST(Bccoo, ToCooIsLosslessForAllConfigs) {
  const auto A = matrix_A();
  for (index_t bw : {1, 2, 4}) {
    for (index_t bh : {1, 2, 3}) {
      for (index_t slices : {1, 2}) {
        core::FormatConfig fc;
        fc.block_w = bw;
        fc.block_h = bh;
        fc.slices = slices;
        if (ceil_div(A.cols, bw) < slices) continue;
        const auto back = core::Bccoo::build(A, fc).to_coo();
        ASSERT_EQ(back.row_idx, A.row_idx) << fc.to_string();
        ASSERT_EQ(back.col_idx, A.col_idx) << fc.to_string();
        ASSERT_EQ(back.vals, A.vals) << fc.to_string();
      }
    }
  }
}

TEST(Bccoo, ToCooWithEmptyRowsAndRandomMatrices) {
  SplitMix64 rng(0x70C0);
  for (int iter = 0; iter < 10; ++iter) {
    const auto rows = static_cast<index_t>(2 + rng.next_below(80));
    const auto cols = static_cast<index_t>(2 + rng.next_below(80));
    std::vector<index_t> ri, ci;
    std::vector<real_t> v;
    const auto n = 1 + rng.next_below(200);
    for (std::uint64_t i = 0; i < n; ++i) {
      ri.push_back(static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(rows))));
      ci.push_back(static_cast<index_t>(
          rng.next_below(static_cast<std::uint64_t>(cols))));
      v.push_back(rng.next_double(0.5, 1.5));  // never exactly zero
    }
    const auto A = fmt::Coo::from_triplets(rows, cols, std::move(ri),
                                           std::move(ci), std::move(v));
    core::FormatConfig fc;
    fc.block_w = static_cast<index_t>(1 + rng.next_below(4));
    fc.block_h = static_cast<index_t>(1 + rng.next_below(4));
    fc.slices = static_cast<index_t>(1 + rng.next_below(3));
    if (ceil_div(cols, fc.block_w) < fc.slices) fc.slices = 1;
    const auto back = core::Bccoo::build(A, fc).to_coo();
    ASSERT_EQ(back.row_idx, A.row_idx) << "iter " << iter;
    ASSERT_EQ(back.col_idx, A.col_idx) << "iter " << iter;
    ASSERT_EQ(back.vals, A.vals) << "iter " << iter;
  }
}

TEST(Bccoo, RandomMatricesRoundTrip) {
  SplitMix64 rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    const auto rows = static_cast<index_t>(1 + rng.next_below(60));
    const auto cols = static_cast<index_t>(1 + rng.next_below(60));
    const auto n = 1 + rng.next_below(
                           static_cast<std::uint64_t>(rows) *
                           static_cast<std::uint64_t>(cols) / 2 + 1);
    std::vector<index_t> ri, ci;
    std::vector<real_t> v;
    for (std::uint64_t i = 0; i < n; ++i) {
      ri.push_back(static_cast<index_t>(rng.next_below(
          static_cast<std::uint64_t>(rows))));
      ci.push_back(static_cast<index_t>(rng.next_below(
          static_cast<std::uint64_t>(cols))));
      v.push_back(rng.next_double(-1, 1));
    }
    const auto A = fmt::Coo::from_triplets(rows, cols, std::move(ri),
                                           std::move(ci), std::move(v));
    std::vector<real_t> x(static_cast<std::size_t>(cols));
    for (auto& xv : x) xv = rng.next_double(-1, 1);
    std::vector<real_t> want(static_cast<std::size_t>(rows)),
        got(static_cast<std::size_t>(rows));
    A.spmv(x, want);
    core::FormatConfig fc;
    fc.block_w = static_cast<index_t>(1 + rng.next_below(4));
    fc.block_h = static_cast<index_t>(1 + rng.next_below(4));
    fc.slices = static_cast<index_t>(1 + rng.next_below(4));
    if (ceil_div(cols, fc.block_w) < fc.slices) fc.slices = 1;
    const auto m = core::Bccoo::build(A, fc);
    m.spmv_reference(x, got);
    for (std::size_t r = 0; r < got.size(); ++r) {
      ASSERT_NEAR(got[r], want[r], 1e-10)
          << "iter=" << iter << " cfg=" << fc.to_string();
    }
  }
}

}  // namespace
}  // namespace yaspmv
