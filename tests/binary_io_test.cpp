// Binary serialization tests: COO and built-BCCOO round trips, corruption
// rejection, and SpMV equivalence of a reloaded format.
#include "yaspmv/io/binary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

TEST(BinaryIo, CooRoundTrip) {
  const auto m = gen::powerlaw(300, 280, 5, 2.2, 0.4, 1);
  std::stringstream buf;
  io::save_coo(buf, m);
  const auto back = io::load_coo(buf);
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
  EXPECT_EQ(back.row_idx, m.row_idx);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.vals, m.vals);  // bitwise: binary format
}

TEST(BinaryIo, BccooRoundTripAllConfigs) {
  const auto A = gen::fem_mesh(500, 24, 3, 0.05, 2);
  for (index_t bw : {1, 2}) {
    for (index_t bh : {1, 3}) {
      for (index_t slices : {1, 4}) {
        core::FormatConfig fc;
        fc.block_w = bw;
        fc.block_h = bh;
        fc.slices = slices;
        const auto m = core::Bccoo::build(A, fc);
        std::stringstream buf;
        io::save_bccoo(buf, m);
        const auto back = io::load_bccoo(buf);
        EXPECT_EQ(back.num_blocks, m.num_blocks);
        EXPECT_EQ(back.col_index, m.col_index);
        EXPECT_EQ(back.seg_to_block_row, m.seg_to_block_row);
        EXPECT_EQ(back.identity_segments, m.identity_segments);
        for (std::size_t i = 0; i < m.bit_flags.size(); ++i) {
          ASSERT_EQ(back.bit_flags.get(i), m.bit_flags.get(i));
        }
        for (std::size_t k = 0; k < m.value_rows.size(); ++k) {
          ASSERT_EQ(back.value_rows[k], m.value_rows[k]);
        }
      }
    }
  }
}

TEST(BinaryIo, ReloadedFormatComputesSameSpmv) {
  const auto A = gen::random_scattered(400, 400, 6, 3);
  core::FormatConfig fc;
  fc.block_w = 2;
  const auto m = core::Bccoo::build(A, fc);
  std::stringstream buf;
  io::save_bccoo(buf, m);
  auto back = std::make_shared<const core::Bccoo>(io::load_bccoo(buf));

  SplitMix64 rng(4);
  std::vector<real_t> x(400), want(400), got(400);
  for (auto& v : x) v = rng.next_double(-1, 1);
  fmt::Csr::from_coo(A).spmv(x, want);
  cpu::CpuSpmv eng(back, 2);
  eng.spmv(x, got);
  for (std::size_t i = 0; i < 400; ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-9 * std::max(1.0, std::abs(want[i])));
  }
}

TEST(BinaryIo, RejectsCorruption) {
  const auto A = gen::stencil2d(10, 10, true, 5);
  const auto m = core::Bccoo::build(A, {});
  std::stringstream buf;
  io::save_bccoo(buf, m);
  std::string bytes = buf.str();

  // Wrong magic.
  {
    std::string b2 = bytes;
    b2[0] = 'X';
    std::istringstream in(b2);
    EXPECT_THROW(io::load_bccoo(in), std::runtime_error);
  }
  // Truncation.
  {
    std::istringstream in(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(io::load_bccoo(in), std::runtime_error);
  }
  // COO loader on BCCOO bytes.
  {
    std::istringstream in(bytes);
    EXPECT_THROW(io::load_coo(in), std::runtime_error);
  }
}

TEST(BinaryIo, RejectsNonCanonicalCoo) {
  fmt::Coo m;
  m.rows = 2;
  m.cols = 2;
  m.row_idx = {1, 0};  // unsorted
  m.col_idx = {0, 0};
  m.vals = {1.0, 2.0};
  std::stringstream buf;
  io::save_coo(buf, m);
  EXPECT_THROW(io::load_coo(buf), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const auto A = gen::stencil2d(12, 9, false, 6);
  const std::string path = ::testing::TempDir() + "/yaspmv_bin_test.ycoo";
  io::save_coo_file(path, A);
  const auto back = io::load_coo_file(path);
  EXPECT_EQ(back.nnz(), A.nnz());
  EXPECT_THROW(io::load_coo_file("/nonexistent/x.ycoo"), std::runtime_error);
}

}  // namespace
}  // namespace yaspmv
