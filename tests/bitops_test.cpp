#include "yaspmv/util/bitops.hpp"

#include <gtest/gtest.h>

#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

TEST(BitArray, EmptyByDefault) {
  BitArray b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count_zeros(), 0u);
}

TEST(BitArray, ConstructFilled) {
  BitArray ones(70, true);
  EXPECT_EQ(ones.size(), 70u);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(ones.get(i));
  EXPECT_EQ(ones.count_zeros(), 0u);

  BitArray zeros(70, false);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_FALSE(zeros.get(i));
  EXPECT_EQ(zeros.count_zeros(), 70u);
}

TEST(BitArray, SetGetRoundTrip) {
  BitArray b(100, true);
  b.set(0, false);
  b.set(31, false);
  b.set(32, false);
  b.set(99, false);
  EXPECT_FALSE(b.get(0));
  EXPECT_FALSE(b.get(31));
  EXPECT_FALSE(b.get(32));
  EXPECT_FALSE(b.get(99));
  EXPECT_TRUE(b.get(1));
  EXPECT_TRUE(b.get(33));
  EXPECT_EQ(b.count_zeros(), 4u);
}

TEST(BitArray, PushBackAcrossWordBoundary) {
  BitArray b;
  for (int i = 0; i < 65; ++i) b.push_back(i % 3 == 0);
  EXPECT_EQ(b.size(), 65u);
  for (int i = 0; i < 65; ++i) EXPECT_EQ(b.get(static_cast<std::size_t>(i)), i % 3 == 0);
}

TEST(BitArray, AppendExtends) {
  BitArray b(5, false);
  b.append(40, true);
  EXPECT_EQ(b.size(), 45u);
  EXPECT_EQ(b.count_zeros(), 5u);
  for (std::size_t i = 5; i < 45; ++i) EXPECT_TRUE(b.get(i));
}

TEST(BitArray, CountZerosBeforeMatchesNaive) {
  SplitMix64 rng(42);
  BitArray b;
  std::vector<bool> ref;
  for (int i = 0; i < 300; ++i) {
    const bool v = rng.next_double() < 0.7;
    b.push_back(v);
    ref.push_back(v);
  }
  for (std::size_t end = 0; end <= ref.size(); ++end) {
    std::size_t naive = 0;
    for (std::size_t i = 0; i < end; ++i) naive += ref[i] ? 0 : 1;
    EXPECT_EQ(b.count_zeros_before(end), naive) << "end=" << end;
  }
}

TEST(BitArray, HasZeroIn) {
  BitArray b(64, true);
  b.set(40, false);
  EXPECT_TRUE(b.has_zero_in(0, 64));
  EXPECT_TRUE(b.has_zero_in(40, 41));
  EXPECT_FALSE(b.has_zero_in(0, 40));
  EXPECT_FALSE(b.has_zero_in(41, 64));
  EXPECT_FALSE(b.has_zero_in(10, 10));
}

TEST(BitArray, FootprintRoundsToWordType) {
  BitArray b(17, true);
  // 17 bits -> 3 bytes as u8 words, 4 bytes as u16, 4 bytes as u32.
  EXPECT_EQ(b.footprint_bytes(BitFlagWord::kU8), 3u);
  EXPECT_EQ(b.footprint_bytes(BitFlagWord::kU16), 4u);
  EXPECT_EQ(b.footprint_bytes(BitFlagWord::kU32), 4u);
}

TEST(BitArray, CompressionRatioVsIntRowIndex) {
  // Section 2.2: "Assuming that integers are used for row indices, a
  // compression ratio of 32 is achieved".
  BitArray b(320, true);
  const std::size_t int_bytes = 320 * 4;
  EXPECT_EQ(int_bytes / b.footprint_bytes(BitFlagWord::kU32), 32u);
}

TEST(FitsShortDelta, Boundaries) {
  EXPECT_TRUE(fits_short_delta(0));
  EXPECT_TRUE(fits_short_delta(32767));
  EXPECT_FALSE(fits_short_delta(32768));
  EXPECT_TRUE(fits_short_delta(-32767));
  EXPECT_FALSE(fits_short_delta(-32768));
}

}  // namespace
}  // namespace yaspmv
