// Chaos tests: every injectable fault must be (a) detected as a classified
// SpmvError or by the sampled-row residual check, (b) recovered from by the
// ResilientEngine's degradation ladder, and (c) invisible in the final y,
// which always matches the CPU reference.  Faults are persistent at their
// site, so each test also pins *where* the ladder lands — the first rung
// that routes around the broken mechanism.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "yaspmv/core/resilient.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/sim/fault.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

/// 1024x1024 5-point stencil: ~5 blocks per row at 1x1, so every workgroup
/// holds many row stops and the adjacent-sync chain spans ~10 workgroups.
fmt::Coo test_matrix() { return gen::stencil2d(32, 32, true, 0xABCDEF); }

std::vector<real_t> make_x(index_t cols) {
  SplitMix64 rng(0x11);
  std::vector<real_t> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  return x;
}

std::vector<real_t> reference(const fmt::Coo& a,
                              const std::vector<real_t>& x) {
  std::vector<real_t> y(static_cast<std::size_t>(a.rows));
  fmt::Csr::from_coo(a).spmv(x, y);
  return y;
}

void expect_matches_reference(const std::vector<real_t>& y,
                              const std::vector<real_t>& want) {
  ASSERT_EQ(y.size(), want.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], want[i], 1e-8 * std::max(1.0, std::abs(want[i])))
        << "row " << i;
  }
}

/// Verify-everything options: exhaustive residual check so silent
/// corruption is detected deterministically.
core::ResilientOptions verifying(index_t rows) {
  core::ResilientOptions opt;
  opt.verify = true;
  opt.sample_rows = rows;  // >= rows -> exhaustive check
  return opt;
}

struct Harness {
  fmt::Coo a = test_matrix();
  std::vector<real_t> x = make_x(a.cols);
  std::vector<real_t> want = reference(a, x);
  std::vector<real_t> y = std::vector<real_t>(
      static_cast<std::size_t>(a.rows), -1e30);  // poison: must be rewritten
};

TEST(Chaos, FaultFreeFastPathSingleAttempt) {
  Harness h;
  core::ResilientEngine eng(h.a, {}, {}, sim::gtx680(), verifying(h.a.rows));
  const auto r = eng.run(h.x, h.y);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.ladder_step, 0);
  EXPECT_FALSE(r.recovered);
  EXPECT_TRUE(r.verified);
  EXPECT_TRUE(r.faults.empty());
  expect_matches_reference(h.y, h.want);
}

// The acceptance scenario: a dropped Grp_sum publish wedges the adjacent
// spin chain; the engine classifies it as SyncTimeout and falls back to the
// two-kernel global-sync carry path, which does not use Grp_sum at all.
TEST(Chaos, DropPublishRecoversViaGlobalSync) {
  Harness h;
  core::ResilientEngine eng(h.a, {}, {}, sim::gtx680(), verifying(h.a.rows));
  sim::FaultInjector inj;
  inj.arm({sim::FaultType::kDropPublish, /*target_wg=*/1});
  eng.set_fault_injector(&inj);
  const auto r = eng.run(h.x, h.y);

  EXPECT_GE(inj.fired(), 1u);  // the fault actually hit its site
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].status, Status::kSyncTimeout);
  // Timeout attribution: the message names the stalled predecessor and the
  // fault that swallowed its publish, not just "spin budget exceeded".
  EXPECT_NE(r.faults[0].detail.find(
                "workgroup 2 waiting on unpublished Grp_sum[1]"),
            std::string::npos)
      << r.faults[0].detail;
  EXPECT_NE(r.faults[0].detail.find(
                "suppressed by an armed drop-publish fault"),
            std::string::npos)
      << r.faults[0].detail;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.retries(), 1);
  EXPECT_EQ(r.ladder_step, 1);
  EXPECT_TRUE(r.recovered);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.path, "sync-fallback: global-sync carry kernel");
  expect_matches_reference(h.y, h.want);
}

TEST(Chaos, StallPublishDetectedAsSyncTimeout) {
  Harness h;
  core::ResilientEngine eng(h.a, {}, {}, sim::gtx680(), verifying(h.a.rows));
  sim::FaultInjector inj;
  inj.arm({sim::FaultType::kStallPublish, /*target_wg=*/2});
  inj.spin_budget_override = 64;  // pooled waiters would give up fast too
  eng.set_fault_injector(&inj);
  const auto r = eng.run(h.x, h.y);

  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].status, Status::kSyncTimeout);
  EXPECT_EQ(r.ladder_step, 1);
  EXPECT_TRUE(r.recovered);
  expect_matches_reference(h.y, h.want);
}

// Corrupted Grp_sum values are *silent* — no exception, wrong carries.  Only
// the residual check catches them; the global-sync path bypasses Grp_sum.
TEST(Chaos, CorruptPublishCaughtByVerification) {
  Harness h;
  core::ResilientEngine eng(h.a, {}, {}, sim::gtx680(), verifying(h.a.rows));
  sim::FaultInjector inj;
  inj.arm({sim::FaultType::kCorruptPublish, /*target_wg=*/1});
  eng.set_fault_injector(&inj);
  const auto r = eng.run(h.x, h.y);

  EXPECT_GE(inj.fired(), 1u);
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].status, Status::kDataCorruption);
  EXPECT_EQ(r.ladder_step, 1);
  EXPECT_TRUE(r.recovered);
  EXPECT_TRUE(r.verified);
  expect_matches_reference(h.y, h.want);
}

// A corrupted strategy-2 result cache survives the sync flip (rung 1 still
// uses the cache) and is only routed around by strategy 1, which keeps
// per-thread intermediate sums instead.
TEST(Chaos, CorruptCacheRecoversViaStrategyFallback) {
  Harness h;
  core::ResilientEngine eng(h.a, {}, {}, sim::gtx680(), verifying(h.a.rows));
  sim::FaultInjector inj;
  inj.arm({sim::FaultType::kCorruptCache, /*target_wg=*/1});
  eng.set_fault_injector(&inj);
  const auto r = eng.run(h.x, h.y);

  EXPECT_GE(inj.fired(), 2u);  // fired on rung 0 and rung 1
  ASSERT_EQ(r.faults.size(), 2u);
  EXPECT_EQ(r.faults[0].status, Status::kDataCorruption);
  EXPECT_EQ(r.faults[1].status, Status::kDataCorruption);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(r.ladder_step, 2);
  EXPECT_EQ(r.path, "strategy-fallback: result cache -> intermediate sums");
  EXPECT_TRUE(r.recovered);
  expect_matches_reference(h.y, h.want);
}

// Under global sync the carry kernel is a separate launch; when that launch
// systematically fails, the ladder flips to adjacent sync, which needs no
// second kernel.
TEST(Chaos, FailCarryLaunchRecoversViaAdjacentSync) {
  Harness h;
  core::ExecConfig ec;
  ec.adjacent_sync = false;  // start on the two-kernel path
  core::ResilientEngine eng(h.a, {}, ec, sim::gtx680(), verifying(h.a.rows));
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFailLaunch;
  plan.launch = sim::LaunchKind::kCarry;
  inj.arm(plan);
  eng.set_fault_injector(&inj);
  const auto r = eng.run(h.x, h.y);

  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].status, Status::kLaunchFailure);
  EXPECT_EQ(r.ladder_step, 1);
  EXPECT_EQ(r.path, "sync-fallback: adjacent-sync single kernel");
  EXPECT_TRUE(r.recovered);
  expect_matches_reference(h.y, h.want);
}

// BCCOO+ needs the combine kernel on every rung until the format fallback
// drops to one slice, which writes y directly.
TEST(Chaos, FailCombineLaunchRecoversViaSliceFallback) {
  Harness h;
  core::FormatConfig fc;
  fc.slices = 4;
  core::ResilientEngine eng(h.a, fc, {}, sim::gtx680(), verifying(h.a.rows));
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFailLaunch;
  plan.launch = sim::LaunchKind::kCombine;
  inj.arm(plan);
  eng.set_fault_injector(&inj);
  const auto r = eng.run(h.x, h.y);

  ASSERT_EQ(r.faults.size(), 3u);  // fast path, sync flip, strategy flip
  for (const auto& f : r.faults) {
    EXPECT_EQ(f.status, Status::kLaunchFailure);
  }
  EXPECT_EQ(r.attempts, 4);
  EXPECT_EQ(r.ladder_step, 3);
  EXPECT_EQ(r.path, "format-fallback: BCCOO+ -> BCCOO (slices=1)");
  EXPECT_TRUE(r.recovered);
  expect_matches_reference(h.y, h.want);
}

// When the main kernel itself cannot launch, every simulated rung fails and
// the terminal CPU baseline — which shares nothing with the simulator —
// must still produce the right answer.
TEST(Chaos, FailMainLaunchFallsBackToCpuBaseline) {
  Harness h;
  core::ResilientEngine eng(h.a, {}, {}, sim::gtx680(), verifying(h.a.rows));
  sim::FaultInjector inj;
  sim::FaultPlan plan;
  plan.type = sim::FaultType::kFailLaunch;
  plan.launch = sim::LaunchKind::kMain;
  inj.arm(plan);
  eng.set_fault_injector(&inj);
  const auto r = eng.run(h.x, h.y);

  EXPECT_EQ(r.faults.size(), 3u);
  EXPECT_EQ(r.path, "coo-cpu-baseline");
  EXPECT_EQ(r.ladder_step, 3);
  EXPECT_TRUE(r.recovered);
  EXPECT_TRUE(r.verified);
  expect_matches_reference(h.y, h.want);
}

TEST(Chaos, LadderReportsAllRungs) {
  Harness h;
  core::FormatConfig fc;
  fc.slices = 4;
  core::ResilientEngine eng(h.a, fc, {}, sim::gtx680());
  const auto rungs = eng.ladder();
  ASSERT_EQ(rungs.size(), 5u);  // fast, sync, strategy, slices, cpu
  EXPECT_EQ(rungs.back(), "coo-cpu-baseline");
}

// Faults recorded against a pooled (multi-worker) dispatch as well: the
// blocking wait path must classify a withheld publish the same way.
TEST(Chaos, StallPublishUnderPooledDispatch) {
  Harness h;
  core::ExecConfig ec;
  ec.workers = 4;
  core::ResilientEngine eng(h.a, {}, ec, sim::gtx680(), verifying(h.a.rows));
  sim::FaultInjector inj;
  inj.arm({sim::FaultType::kStallPublish, /*target_wg=*/1});
  inj.spin_budget_override = 256;  // bounded wait instead of minutes
  eng.set_fault_injector(&inj);
  const auto r = eng.run(h.x, h.y);

  ASSERT_GE(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].status, Status::kSyncTimeout);
  EXPECT_TRUE(r.recovered);
  expect_matches_reference(h.y, h.want);
}

// ---- format invariant checking (Bccoo::validate) --------------------------

TEST(Validate, AcceptsFreshlyBuiltFormats) {
  const auto a = test_matrix();
  for (index_t slices : {index_t{1}, index_t{4}}) {
    core::FormatConfig fc;
    fc.block_w = 2;
    fc.block_h = 2;
    fc.slices = slices;
    EXPECT_NO_THROW(core::Bccoo::build(a, fc).validate());
  }
}

TEST(Validate, RejectsClearedFinalRowStop) {
  const auto a = test_matrix();
  auto m = core::Bccoo::build(a, {});
  // The final block must terminate its row (bit 0 = stop, so set it to 1).
  m.bit_flags.set(m.num_blocks - 1, true);
  EXPECT_THROW(m.validate(), FormatInvalid);
}

TEST(Validate, RejectsTruncatedSegmentMap) {
  const auto a = test_matrix();
  auto m = core::Bccoo::build(a, {});
  m.seg_to_block_row.pop_back();
  EXPECT_THROW(m.validate(), FormatInvalid);
}

TEST(Validate, RejectsOutOfRangeColumnIndex) {
  const auto a = test_matrix();
  auto m = core::Bccoo::build(a, {});
  m.col_index[0] = m.block_cols;  // one past the end
  EXPECT_THROW(m.validate(), FormatInvalid);
}

TEST(Validate, RejectsNonFiniteValueUnlessOptedIn) {
  const auto a = test_matrix();
  auto m = core::Bccoo::build(a, {});
  m.value_rows[0][0] = std::numeric_limits<real_t>::quiet_NaN();
  EXPECT_THROW(m.validate(), FormatInvalid);
  // Even opted in, the in-place mutation is caught: the ABFT checksum plan
  // still pins the original value stream bit-for-bit.  A format that
  // *legitimately* carries non-finite values has a matching plan.
  EXPECT_THROW(m.validate(/*allow_nonfinite=*/true), FormatInvalid);
  m.build_checksums();
  EXPECT_NO_THROW(m.validate(/*allow_nonfinite=*/true));
}

TEST(Validate, RejectsValueArrayLengthMismatch) {
  const auto a = test_matrix();
  auto m = core::Bccoo::build(a, {});
  m.value_rows[0].pop_back();
  EXPECT_THROW(m.validate(), FormatInvalid);
}

// ---- journal dump naming under concurrency --------------------------------

// Two engines sharing one journal_prefix (the serving daemon's layout: one
// prefix per matrix, many concurrent requests) must never overwrite each
// other's dumps: every failed attempt gets a unique <prefix>.<pid>.<seq>.
TEST(Chaos, ConcurrentJournalDumpsAreUniqueFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("yaspmv-journal-uniq-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string prefix = (dir / "shared.journal").string();

  constexpr int kEngines = 2;
  constexpr int kRuns = 3;
  std::vector<std::vector<std::string>> dumps(kEngines);
  std::vector<std::thread> threads;
  for (int t = 0; t < kEngines; ++t) {
    threads.emplace_back([&, t] {
      Harness h;
      core::ResilientOptions opt;
      opt.journal_prefix = prefix;
      core::ResilientEngine eng(h.a, {}, {}, sim::gtx680(), opt);
      sim::FaultInjector inj;
      sim::FaultPlan plan;
      plan.type = sim::FaultType::kFailLaunch;
      plan.launch = sim::LaunchKind::kMain;  // every simulated rung fails
      inj.arm(plan);
      eng.set_fault_injector(&inj);
      for (int i = 0; i < kRuns; ++i) {
        const auto r = eng.run(h.x, h.y);
        EXPECT_TRUE(r.recovered);
        for (const auto& f : r.faults) {
          EXPECT_FALSE(f.journal_file.empty());
          dumps[static_cast<std::size_t>(t)].push_back(f.journal_file);
        }
        expect_matches_reference(h.y, h.want);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::string> unique;
  std::size_t total = 0;
  for (const auto& per_engine : dumps) {
    for (const auto& path : per_engine) {
      EXPECT_TRUE(fs::exists(path)) << path;
      unique.insert(path);
      ++total;
    }
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(unique.size(), total) << "journal dump paths collided";
  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace yaspmv
