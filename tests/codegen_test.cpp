// OpenCL code-generation tests: structural checks on the emitted kernels
// (parameter macros, kernel set per configuration, barrier/sync placement,
// brace balance, cache-key behavior).
#include "yaspmv/codegen/opencl.hpp"

#include <gtest/gtest.h>

namespace yaspmv {
namespace {

using codegen::generate_opencl;

bool contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

int brace_balance(const std::string& s) {
  int b = 0;
  for (char c : s) {
    if (c == '{') ++b;
    if (c == '}') --b;
  }
  return b;
}

core::FormatConfig fc_default() { return {}; }

TEST(Codegen, ParameterMacrosMatchConfig) {
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 3;
  fc.bf_word = BitFlagWord::kU8;
  core::ExecConfig ec;
  ec.workgroup_size = 128;
  ec.thread_tile = 12;
  const auto ks = generate_opencl(fc, ec, sim::gtx680());
  ASSERT_EQ(ks.size(), 1u);
  const auto& src = ks[0].source;
  EXPECT_TRUE(contains(src, "#define WG_SIZE 128"));
  EXPECT_TRUE(contains(src, "#define THREAD_TILE 12"));
  EXPECT_TRUE(contains(src, "#define BLOCK_W 2"));
  EXPECT_TRUE(contains(src, "#define BLOCK_H 3"));
  EXPECT_TRUE(contains(src, "typedef uchar bitflag_t;"));
  EXPECT_TRUE(contains(src, "__kernel void bccoo_spmv"));
}

TEST(Codegen, StrategySelectsKernelBody) {
  core::ExecConfig s1;
  s1.strategy = core::Strategy::kIntermediateSums;
  s1.thread_tile = 16;
  s1.shm_tile = 4;
  core::ExecConfig s2;
  s2.strategy = core::Strategy::kResultCache;
  s2.result_cache_multiple = 2;
  const auto k1 = generate_opencl(fc_default(), s1, sim::gtx680());
  const auto k2 = generate_opencl(fc_default(), s2, sim::gtx680());
  EXPECT_TRUE(contains(k1[0].source, "#define STRATEGY 1"));
  EXPECT_TRUE(contains(k1[0].source, "#define SHM_TILE 4"));
  EXPECT_TRUE(contains(k1[0].source, "inter_reg"));
  EXPECT_TRUE(contains(k2[0].source, "#define STRATEGY 2"));
  EXPECT_TRUE(contains(k2[0].source, "RESULT_CACHE_SIZE (2 * WG_SIZE)"));
  EXPECT_TRUE(contains(k2[0].source, "__local float cache"));
  EXPECT_FALSE(contains(k2[0].source, "inter_reg"));
}

TEST(Codegen, AdjacentSyncEmitsSpinChainSingleKernel) {
  core::ExecConfig ec;
  ec.adjacent_sync = true;
  const auto ks = generate_opencl(fc_default(), ec, sim::gtx680());
  ASSERT_EQ(ks.size(), 1u);  // the paper's single-kernel claim
  EXPECT_TRUE(contains(ks[0].source, "grp_ready[wid - 1] == 0"));
  EXPECT_TRUE(contains(ks[0].source, "mem_fence(CLK_GLOBAL_MEM_FENCE)"));
}

TEST(Codegen, GlobalSyncEmitsCarryKernel) {
  core::ExecConfig ec;
  ec.adjacent_sync = false;
  const auto ks = generate_opencl(fc_default(), ec, sim::gtx680());
  ASSERT_EQ(ks.size(), 2u);
  EXPECT_EQ(ks[1].name, "bccoo_carry");
  EXPECT_TRUE(contains(ks[0].source, "wg_tails"));
  EXPECT_FALSE(contains(ks[0].source, "grp_ready"));
}

TEST(Codegen, BccooPlusEmitsCombineKernel) {
  core::FormatConfig fc;
  fc.slices = 8;
  const auto ks = generate_opencl(fc, {}, sim::gtx680());
  ASSERT_EQ(ks.size(), 2u);
  EXPECT_EQ(ks[1].name, "bccoo_combine");
  EXPECT_TRUE(contains(ks[1].source, "#define SLICES 8"));
}

TEST(Codegen, FineGrainFlagsToggleMacros) {
  core::ExecConfig on;
  on.skip_scan_opt = true;
  on.short_col_index = true;
  core::ExecConfig off;
  off.skip_scan_opt = false;
  off.short_col_index = false;
  off.compress_col_delta = true;
  const auto a = generate_opencl(fc_default(), on, sim::gtx680());
  const auto b = generate_opencl(fc_default(), off, sim::gtx680());
  EXPECT_TRUE(contains(a[0].source, "#define SKIP_SCAN_OPT 1"));
  EXPECT_TRUE(contains(a[0].source, "#define SHORT_COL_INDEX 1"));
  EXPECT_FALSE(contains(b[0].source, "#define SKIP_SCAN_OPT"));
  EXPECT_TRUE(contains(b[0].source, "#define DELTA_COL_INDEX 1"));
}

TEST(Codegen, LogicalIdsUseAtomicCounter) {
  core::ExecConfig ec;
  ec.logical_ids = true;
  const auto ks = generate_opencl(fc_default(), ec, sim::gtx680());
  EXPECT_TRUE(contains(ks[0].source, "atomic_add(logical_counter, 1)"));
}

TEST(Codegen, EveryKernelIsBraceBalanced) {
  for (auto strat : {core::Strategy::kIntermediateSums,
                     core::Strategy::kResultCache}) {
    for (bool adj : {true, false}) {
      for (index_t slices : {1, 4}) {
        core::FormatConfig fc;
        fc.slices = slices;
        core::ExecConfig ec;
        ec.strategy = strat;
        ec.adjacent_sync = adj;
        for (const auto& k : generate_opencl(fc, ec, sim::gtx480())) {
          EXPECT_EQ(brace_balance(k.source), 0) << k.name;
          EXPECT_TRUE(contains(k.source, "__kernel void " + k.name))
              << k.name;
        }
      }
    }
  }
}

TEST(Codegen, RejectsInvalidCombination) {
  core::ExecConfig ec;
  ec.strategy = core::Strategy::kResultCache;
  ec.transpose = core::Transpose::kOnline;
  EXPECT_THROW(generate_opencl(fc_default(), ec, sim::gtx680()),
               std::invalid_argument);
}

TEST(Codegen, CacheKeyDistinguishesConfigs) {
  core::ExecConfig a;
  core::ExecConfig b;
  b.thread_tile = a.thread_tile + 8;
  core::ExecConfig c;
  c.adjacent_sync = false;
  EXPECT_EQ(codegen::cache_key(fc_default(), a),
            codegen::cache_key(fc_default(), a));
  EXPECT_NE(codegen::cache_key(fc_default(), a),
            codegen::cache_key(fc_default(), b));
  EXPECT_NE(codegen::cache_key(fc_default(), a),
            codegen::cache_key(fc_default(), c));
  core::FormatConfig fc2;
  fc2.block_w = 4;
  EXPECT_NE(codegen::cache_key(fc_default(), a), codegen::cache_key(fc2, a));
}

TEST(Codegen, CudaTranslationRemovesOpenClTokens) {
  for (auto strat : {core::Strategy::kIntermediateSums,
                     core::Strategy::kResultCache}) {
    for (bool adj : {true, false}) {
      core::FormatConfig fc;
      fc.slices = 2;
      core::ExecConfig ec;
      ec.strategy = strat;
      ec.adjacent_sync = adj;
      ec.logical_ids = true;
      const auto ks = codegen::generate_cuda(fc, ec, sim::gtx680());
      for (const auto& k : ks) {
        EXPECT_EQ(brace_balance(k.source), 0) << k.name;
        EXPECT_FALSE(contains(k.source, "__kernel")) << k.name;
        EXPECT_FALSE(contains(k.source, "__global ")) << k.name;
        EXPECT_FALSE(contains(k.source, "__local ")) << k.name;
        EXPECT_FALSE(contains(k.source, "CLK_LOCAL_MEM_FENCE")) << k.name;
        EXPECT_FALSE(contains(k.source, "get_local_id")) << k.name;
        EXPECT_FALSE(contains(k.source, "get_group_id")) << k.name;
        EXPECT_FALSE(contains(k.source, "get_global_id")) << k.name;
        EXPECT_TRUE(contains(k.source, "extern \"C\" __global__ void " +
                                           k.name))
            << k.name;
      }
      // The main kernel keeps its barrier structure.
      EXPECT_TRUE(contains(ks[0].source, "__syncthreads()"));
      EXPECT_TRUE(contains(ks[0].source, "__shared__ float lps"));
      EXPECT_TRUE(contains(ks[0].source, "atomicAdd(logical_counter, 1)"));
      if (adj) {
        EXPECT_TRUE(contains(ks[0].source, "__threadfence()"));
      }
    }
  }
}

TEST(Codegen, CudaTranslationIsTokenExact) {
  EXPECT_EQ(codegen::opencl_to_cuda("__kernel void f() { barrier(CLK_LOCAL_"
                                    "MEM_FENCE); }"),
            "// CUDA translation of the generated OpenCL kernel.\n"
            "typedef unsigned char uchar;\n"
            "typedef unsigned short ushort;\n"
            "typedef unsigned int uint;\n"
            "extern \"C\" __global__ void f() { __syncthreads(); }");
}

TEST(Codegen, DeterministicOutput) {
  const auto a = generate_opencl(fc_default(), {}, sim::gtx680());
  const auto b = generate_opencl(fc_default(), {}, sim::gtx680());
  EXPECT_EQ(a[0].source, b[0].source);
}

}  // namespace
}  // namespace yaspmv
