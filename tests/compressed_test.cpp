// Compressed column-stream tests: the materialized int16 delta / u16 short
// streams (core/bccoo) and their SIMD decode kernels (cpu/simd) must
// reproduce the raw 4-byte column indices exactly, and CpuSpmv/CpuSpmm on
// any stream must be *bitwise* identical to the raw-stream result at a
// fixed thread count and dispatch level.  Covers the delta escape paths the
// suite matrices rarely hit: a first-block column past int16 range, the
// engineered -1 delta (collides with the escape sentinel and must escape),
// and matrices wider than u16 (short degrades to raw).
#include "yaspmv/core/bccoo.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "yaspmv/cpu/simd.hpp"
#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

using cpu::simd::Level;
using core::ColStream;

struct LevelGuard {
  Level saved;
  explicit LevelGuard(Level l) : saved(cpu::simd::active()) {
    cpu::simd::set_level(l);
  }
  ~LevelGuard() { cpu::simd::set_level(saved); }
};

std::shared_ptr<const core::Bccoo> build(const fmt::Coo& A,
                                         core::FormatConfig fc = {}) {
  return std::make_shared<const core::Bccoo>(core::Bccoo::build(A, fc));
}

/// Decode the whole column stream tile by tile (as the executors do) and
/// compare with the raw indices.
void expect_streams_roundtrip(const core::Bccoo& m) {
  ASSERT_TRUE(m.col_streams_built);
  const std::size_t nb = m.num_blocks;
  std::vector<index_t> got(nb);
  std::size_t esc_used = 0;
  for (std::size_t t = 0; t < m.num_col_tiles(); ++t) {
    const std::size_t t0 = t * core::Bccoo::kColTile;
    const std::size_t t1 = std::min(t0 + core::Bccoo::kColTile, nb);
    esc_used += cpu::simd::decode_delta_portable(
        m.delta_cols.data() + t0, t1 - t0,
        m.delta_escapes.data() + m.delta_escape_start[t],
        got.data() + t0);
  }
  EXPECT_EQ(esc_used, m.delta_escapes.size());
  EXPECT_EQ(got, m.col_index);
  if (!m.short_cols.empty()) {
    std::vector<index_t> gs(nb);
    cpu::simd::decode_short_portable(m.short_cols.data(), gs.data(), nb);
    EXPECT_EQ(gs, m.col_index);
  }
}

TEST(ColStreams, RoundtripAcrossGenerators) {
  expect_streams_roundtrip(*build(gen::stencil2d(30, 30, false, 1)));
  expect_streams_roundtrip(*build(gen::powerlaw(900, 900, 6, 2.2, 0.4, 2)));
  core::FormatConfig plus;
  plus.slices = 4;
  expect_streams_roundtrip(
      *build(gen::random_scattered(700, 700, 5, 5), plus));
}

TEST(ColStreams, WideMatrixEscapesAndDegradesShort) {
  // 70000 columns: past u16 range, so short_cols must be absent, and block
  // columns past 32767 force int16-overflow escapes in the delta stream.
  const auto A = gen::random_scattered(500, 70000, 8, 17);
  const auto m = build(A);
  EXPECT_TRUE(m->short_cols.empty());
  EXPECT_GT(m->delta_escapes.size(), 0u);
  EXPECT_EQ(m->resolve_col_stream(ColStream::kShort), ColStream::kRaw);
  EXPECT_EQ(m->resolve_col_stream(ColStream::kAuto), ColStream::kDelta);
  expect_streams_roundtrip(*m);
}

TEST(ColStreams, MinusOneDeltaMustEscape) {
  // Successive rows whose single block column *decreases by one*: the true
  // delta -1 collides with the escape sentinel and must be stored escaped.
  const auto A = fmt::Coo::from_triplets(4, 8, {0, 1, 2, 3}, {5, 4, 3, 2},
                                         {1.0, 2.0, 3.0, 4.0});
  const auto m = build(A);
  ASSERT_EQ(m->num_blocks, 4u);
  EXPECT_EQ(m->delta_escapes.size(), 3u);  // blocks 1..3 all have delta -1
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(m->delta_cols[i], kDeltaEscape);
  }
  expect_streams_roundtrip(*m);
  EXPECT_NO_THROW(m->validate());
}

TEST(ColStreams, DecodeKernelsBitIdenticalAcrossLevels) {
  // Engineered delta streams: escapes at group starts, group ends, straddling
  // the 8-wide AVX2 groups, plus sub-group tails.
  SplitMix64 rng(99);
  for (std::size_t n : {1u, 7u, 8u, 9u, 64u, 200u, 511u, 512u}) {
    std::vector<std::int16_t> d(n);
    std::vector<index_t> esc;
    index_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto r = rng.next() % 100;
      if (r < 20 || i % 8 == 7 || (i > 0 && i % 13 == 0)) {
        d[i] = kDeltaEscape;
        prev = static_cast<index_t>(rng.next() % 100000);
        esc.push_back(prev);
      } else {
        const auto step = static_cast<std::int16_t>(rng.next() % 500);
        d[i] = step;
        prev += step;
      }
    }
    std::vector<index_t> a(n, 0xDEAD), b(n, 0xBEEF);
    const std::size_t ea =
        cpu::simd::decode_delta_portable(d.data(), n, esc.data(), a.data());
    const std::size_t eb =
        cpu::simd::decode_delta_avx2(d.data(), n, esc.data(), b.data());
    EXPECT_EQ(ea, esc.size()) << "n=" << n;
    EXPECT_EQ(ea, eb) << "n=" << n;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), n * sizeof(index_t)))
        << "n=" << n;

    std::vector<std::uint16_t> s(n);
    for (auto& v : s) v = static_cast<std::uint16_t>(rng.next());
    cpu::simd::decode_short_portable(s.data(), a.data(), n);
    cpu::simd::decode_short_avx2(s.data(), b.data(), n);
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), n * sizeof(index_t)))
        << "short n=" << n;
  }
}

// ---- Property sweep: slices x stream x level x threads vs CSR -----------

struct SweepParam {
  index_t slices;
  ColStream cs;
  Level level;
};

class CompressedSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CompressedSweep, MatchesCsrReference) {
  const auto [slices, cs, level] = GetParam();
  LevelGuard guard(level);
  const auto local = gen::powerlaw(800, 800, 6, 2.2, 0.4, 3);
  const auto wide = gen::random_scattered(500, 70000, 8, 17);
  for (const auto* A : {&local, &wide}) {
    core::FormatConfig fc;
    fc.slices = slices;
    const auto m = build(*A, fc);
    SplitMix64 rng(0xAB);
    std::vector<real_t> x(static_cast<std::size_t>(A->cols));
    for (auto& v : x) v = rng.next_double(-1, 1);
    std::vector<real_t> want(static_cast<std::size_t>(A->rows));
    fmt::Csr::from_coo(*A).spmv(x, want);
    for (unsigned threads : {1u, 4u}) {
      cpu::CpuSpmv eng(m, threads, cs);
      std::vector<real_t> got(want.size());
      eng.spmv(x, got);
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_NEAR(got[i], want[i],
                    1e-9 * std::max(1.0, std::abs(want[i])))
            << "slices=" << slices << " cs=" << core::to_string(cs)
            << " level=" << cpu::simd::to_string(level)
            << " threads=" << threads << " row " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SlicesStreamsLevels, CompressedSweep,
    ::testing::Values(
        SweepParam{1, ColStream::kRaw, Level::kPortable},
        SweepParam{1, ColStream::kShort, Level::kPortable},
        SweepParam{1, ColStream::kDelta, Level::kPortable},
        SweepParam{1, ColStream::kShort, Level::kAvx2},
        SweepParam{1, ColStream::kDelta, Level::kAvx2},
        SweepParam{2, ColStream::kDelta, Level::kAvx2},
        SweepParam{2, ColStream::kShort, Level::kPortable},
        SweepParam{4, ColStream::kDelta, Level::kPortable},
        SweepParam{4, ColStream::kShort, Level::kAvx2},
        SweepParam{4, ColStream::kAuto, Level::kAvx2}));

TEST(ColStreams, BitwiseIdenticalAcrossStreamsAndBuilds) {
  // At a fixed (thread count, dispatch level) the summation order is
  // defined to be identical for raw/short/delta and for serial vs parallel
  // format build: compare bit patterns.  (Levels are NOT bitwise comparable
  // to each other — AVX2 uses FMA — but each level is deterministic and the
  // *decode* kernels are integer-exact across levels, tested above.)
  const auto A = gen::fem_mesh(900, 24, 3, 0.05, 7);
  const auto m = build(A);
  const auto m_par = std::make_shared<const core::Bccoo>(
      core::Bccoo::build(A, {}, 8));
  SplitMix64 rng(5);
  std::vector<real_t> x(static_cast<std::size_t>(A.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  for (Level level : {Level::kPortable, Level::kAvx2}) {
    LevelGuard guard(level);
    for (unsigned threads : {1u, 3u}) {
      std::vector<std::vector<real_t>> ys;
      for (const auto& fmt_ptr : {m, m_par}) {
        for (ColStream cs :
             {ColStream::kRaw, ColStream::kShort, ColStream::kDelta}) {
          cpu::CpuSpmv eng(fmt_ptr, threads, cs);
          EXPECT_EQ(eng.col_stream(), cs);
          std::vector<real_t> y(static_cast<std::size_t>(A.rows));
          eng.spmv(x, y);
          eng.spmv(x, y);  // run twice: idempotent per engine
          ys.push_back(std::move(y));
        }
      }
      for (std::size_t i = 1; i < ys.size(); ++i) {
        ASSERT_EQ(0, std::memcmp(ys[0].data(), ys[i].data(),
                                 ys[0].size() * sizeof(real_t)))
            << "level=" << cpu::simd::to_string(level)
            << " threads=" << threads << " variant " << i;
      }
    }
  }
}

TEST(ColStreams, SpmmMatchesAcrossStreams) {
  const auto A = gen::powerlaw(600, 550, 5, 2.3, 0.4, 21);
  const auto m = build(A);
  const int k = 4;
  SplitMix64 rng(31);
  std::vector<real_t> X(static_cast<std::size_t>(A.cols) * k);
  for (auto& v : X) v = rng.next_double(-1, 1);
  std::vector<std::vector<real_t>> Ys;
  for (ColStream cs :
       {ColStream::kRaw, ColStream::kShort, ColStream::kDelta}) {
    cpu::CpuSpmm eng(m, 2, cs);
    std::vector<real_t> Y(static_cast<std::size_t>(A.rows) * k);
    eng.spmm(X, Y, k);
    Ys.push_back(std::move(Y));
  }
  EXPECT_EQ(Ys[0], Ys[1]);
  EXPECT_EQ(Ys[0], Ys[2]);
}

TEST(ColStreams, ParallelSliceCombineMatchesSerial) {
  // Enough rows to cross the parallel-combine threshold (kParCombineRows):
  // the chunked combine on the pool must be bitwise equal to the serial
  // gather (pure per-row sums, no cross-row dependence).
  core::FormatConfig fc;
  fc.slices = 4;
  const auto A = gen::powerlaw(6000, 5500, 5, 2.2, 0.4, 77);
  const auto m = build(A, fc);
  SplitMix64 rng(3);
  std::vector<real_t> x(static_cast<std::size_t>(A.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> want(static_cast<std::size_t>(A.rows));
  fmt::Csr::from_coo(A).spmv(x, want);
  std::vector<std::vector<real_t>> ys;
  for (unsigned threads : {1u, 4u}) {
    cpu::CpuSpmv eng(m, threads);
    std::vector<real_t> y(want.size());
    eng.spmv(x, y);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(y[i], want[i], 1e-9 * std::max(1.0, std::abs(want[i])))
          << "threads=" << threads << " row " << i;
    }
    ys.push_back(std::move(y));
  }
  // The combine itself is order-insensitive, so serial (threads=1) and
  // pooled (threads=4) runs produce one bit pattern per row... only when
  // the *segmented sum* also decomposed identically, which it does not
  // across thread counts; compare each against its own re-run instead.
  for (unsigned threads : {1u, 4u}) {
    cpu::CpuSpmv eng(m, threads);
    std::vector<real_t> y(want.size());
    eng.spmv(x, y);
    EXPECT_EQ(y, ys[threads == 1u ? 0 : 1]) << "threads=" << threads;
  }
}

TEST(ColStreams, SerialAndParallelBuildIdentical) {
  for (index_t slices : {index_t{1}, index_t{4}}) {
    core::FormatConfig fc;
    fc.slices = slices;
    const auto A = gen::powerlaw(1200, 1100, 7, 2.2, 0.4, 13);
    const auto serial = core::Bccoo::build(A, fc, 1);
    const auto parallel = core::Bccoo::build(A, fc, 8);
    EXPECT_TRUE(serial == parallel) << "slices=" << slices;
  }
}

TEST(ColStreams, ValidateRejectsTamperedStreams) {
  const auto A = gen::powerlaw(400, 400, 5, 2.2, 0.4, 9);
  {
    auto m = core::Bccoo::build(A, {});
    ASSERT_FALSE(m.delta_cols.empty());
    m.delta_cols[0] = static_cast<std::int16_t>(m.delta_cols[0] + 1);
    EXPECT_THROW(m.validate(), FormatInvalid);
  }
  {
    auto m = core::Bccoo::build(A, {});
    ASSERT_FALSE(m.short_cols.empty());
    m.short_cols[2] ^= 1;
    EXPECT_THROW(m.validate(), FormatInvalid);
  }
  {
    auto m = core::Bccoo::build(A, {});
    m.delta_escape_start.back() += 1;  // claims an escape that is not there
    EXPECT_THROW(m.validate(), FormatInvalid);
  }
}

}  // namespace
}  // namespace yaspmv
