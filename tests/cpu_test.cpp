// Native CPU-parallel backend tests: correctness across thread counts,
// chunk-boundary segment handling, determinism, and the parallel CSR
// baseline.
#include "yaspmv/cpu/spmv.hpp"

#include <gtest/gtest.h>

#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

std::shared_ptr<const core::Bccoo> build(const fmt::Coo& A,
                                         core::FormatConfig fc = {}) {
  return std::make_shared<const core::Bccoo>(core::Bccoo::build(A, fc));
}

void expect_matches(const fmt::Coo& A, core::FormatConfig fc,
                    unsigned threads, const std::string& what) {
  SplitMix64 rng(0xC0FFEE);
  std::vector<real_t> x(static_cast<std::size_t>(A.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> want(static_cast<std::size_t>(A.rows)),
      got(static_cast<std::size_t>(A.rows));
  fmt::Csr::from_coo(A).spmv(x, want);
  cpu::CpuSpmv eng(build(A, fc), threads);
  eng.spmv(x, got);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-9 * std::max(1.0, std::abs(want[i])))
        << what << " row " << i;
  }
}

class CpuThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(CpuThreads, MatchesReferenceAcrossGenerators) {
  const unsigned threads = GetParam();
  expect_matches(gen::stencil2d(20, 20, false, 1), {}, threads, "stencil");
  expect_matches(gen::powerlaw(800, 800, 5, 2.2, 0.4, 2), {}, threads,
                 "powerlaw");
  expect_matches(gen::fem_mesh(600, 30, 3, 0.05, 3), {}, threads, "fem");
  core::FormatConfig blocked;
  blocked.block_w = 2;
  blocked.block_h = 2;
  expect_matches(gen::fem_mesh(600, 30, 3, 0.05, 4), blocked, threads,
                 "fem 2x2");
  core::FormatConfig plus;
  plus.slices = 4;
  expect_matches(gen::random_scattered(700, 700, 5, 5), plus, threads,
                 "bccoo+");
}

INSTANTIATE_TEST_SUITE_P(Threads, CpuThreads,
                         ::testing::Values(1u, 2u, 3u, 8u));

TEST(Cpu, LongSegmentSpanningManyChunks) {
  // One dense row: the segment spans every chunk; only the serial fix-up
  // pass can produce the result.
  std::vector<index_t> ri(6000, 0), ci(6000);
  std::vector<real_t> v(6000);
  SplitMix64 rng(7);
  for (index_t i = 0; i < 6000; ++i) {
    ci[static_cast<std::size_t>(i)] = i;
    v[static_cast<std::size_t>(i)] = rng.next_double(-1, 1);
  }
  const auto A = fmt::Coo::from_triplets(1, 6000, std::move(ri), std::move(ci),
                                         std::move(v));
  expect_matches(A, {}, 8, "long row");
}

TEST(Cpu, ChunkEndingExactlyAtRowStop) {
  // Carefully sized rows so chunk boundaries coincide with row stops
  // (regression twin of the GPU-side carry bug).
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  index_t col = 0;
  for (index_t r = 0; r < 16; ++r) {
    for (index_t k = 0; k < 8; ++k) {  // 8 nnz per row, 128 total
      ri.push_back(r);
      ci.push_back(col++ % 64);
      v.push_back(1.0 + r);
    }
  }
  const auto A = fmt::Coo::from_triplets(16, 64, std::move(ri), std::move(ci),
                                         std::move(v));
  for (unsigned t : {1u, 2u, 4u, 16u}) {
    expect_matches(A, {}, t, "boundary stop t=" + std::to_string(t));
  }
}

TEST(Cpu, DeterministicAcrossRuns) {
  const auto A = gen::powerlaw(1000, 1000, 6, 2.2, 0.4, 11);
  cpu::CpuSpmv eng(build(A), 4);
  SplitMix64 rng(1);
  std::vector<real_t> x(1000);
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> y1(1000), y2(1000);
  eng.spmv(x, y1);
  eng.spmv(x, y2);
  EXPECT_EQ(y1, y2);  // bitwise: fixed summation order
}

TEST(Cpu, EmptyRowsProduceZero) {
  const auto A = fmt::Coo::from_triplets(10, 4, {0, 9}, {1, 2}, {3.0, 4.0});
  std::vector<real_t> x = {1, 1, 1, 1}, y(10, -1.0);
  cpu::CpuSpmv eng(build(A), 2);
  eng.spmv(x, y);
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[9], 4.0);
  for (int r = 1; r < 9; ++r) EXPECT_EQ(y[static_cast<std::size_t>(r)], 0.0);
}

// The zero-copy apply reads the caller's x directly and redirects only the
// tail block column into a padded scratch copy; a blocked format whose
// column count is not a multiple of block_w with nonzeros in the last
// column exercises exactly that redirect.
TEST(Cpu, BlockedRaggedTailColumns) {
  for (const index_t bw : {2, 4}) {
    core::FormatConfig fc;
    fc.block_w = bw;
    fc.block_h = 2;
    // cols = 13: never a multiple of bw; the last column is populated.
    std::vector<index_t> ri, ci;
    std::vector<real_t> v;
    SplitMix64 rng(0x7A11 + static_cast<std::uint64_t>(bw));
    for (index_t r = 0; r < 40; ++r) {
      ri.push_back(r), ci.push_back(12), v.push_back(rng.next_double(-1, 1));
      ri.push_back(r);
      ci.push_back(static_cast<index_t>(rng.next_below(13)));
      v.push_back(rng.next_double(-1, 1));
    }
    const auto A =
        fmt::Coo::from_triplets(40, 13, std::move(ri), std::move(ci),
                                std::move(v));
    expect_matches(A, fc, 1, "ragged tail bw=" + std::to_string(bw));
    expect_matches(A, fc, 3, "ragged tail bw=" + std::to_string(bw));
  }
}

// Targeted clearing: the apply promises y is fully owned output — every
// entry written or cleared — even when the caller hands it garbage (NaN
// would survive any accidental accumulate-into-y path), with empty rows,
// in both the direct-y (slices == 1) and the sliced combine path.
TEST(Cpu, GarbageOutputFullyOverwritten) {
  const auto A = fmt::Coo::from_triplets(
      12, 6, {0, 0, 3, 11}, {1, 5, 2, 0}, {2.0, -1.0, 4.0, 7.0});
  SplitMix64 rng(0xBAD);
  std::vector<real_t> x(6);
  for (auto& e : x) e = rng.next_double(-1, 1);
  std::vector<real_t> want(12);
  fmt::Csr::from_coo(A).spmv(x, want);
  for (const index_t slices : {1, 3}) {
    core::FormatConfig fc;
    fc.slices = slices;
    cpu::CpuSpmv eng(build(A, fc), 2);
    std::vector<real_t> y(12, std::numeric_limits<real_t>::quiet_NaN());
    eng.spmv(x, y);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], want[i]) << "slices=" << slices << " row " << i;
    }
    // Second call on the same engine: per-call state (tail pad, targeted
    // clears) must not leak between applies.
    for (auto& e : x) e = rng.next_double(-1, 1);
    fmt::Csr::from_coo(A).spmv(x, want);
    std::fill(y.begin(), y.end(), std::numeric_limits<real_t>::quiet_NaN());
    eng.spmv(x, y);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], want[i]) << "slices=" << slices << " row " << i;
    }
  }
}

// Zero-copy means x and y may not overlap; the apply must refuse aliased
// buffers instead of silently reading half-written output.
TEST(Cpu, RejectsAliasedVectors) {
  const auto A = fmt::Coo::from_triplets(4, 4, {0, 1, 2, 3}, {0, 1, 2, 3},
                                         {1.0, 1.0, 1.0, 1.0});
  cpu::CpuSpmv eng(build(A));
  std::vector<real_t> v(4, 1.0);
  EXPECT_THROW(eng.spmv(v, v), std::invalid_argument);
}

TEST(Cpu, RejectsTallBlocks) {
  core::FormatConfig fc;
  fc.block_h = 9;  // beyond even the extended menu
  const auto A = fmt::Coo::from_triplets(10, 10, {0}, {0}, {1.0});
  EXPECT_THROW(cpu::CpuSpmv(build(A, fc)), std::invalid_argument);
  fc.block_h = 8;
  EXPECT_NO_THROW(cpu::CpuSpmv(build(A, fc)));
}

TEST(Cpu, RejectsWrongVectorSizes) {
  const auto A = fmt::Coo::from_triplets(4, 4, {0}, {0}, {1.0});
  cpu::CpuSpmv eng(build(A));
  std::vector<real_t> x(3), y(4);
  EXPECT_THROW(eng.spmv(x, y), std::invalid_argument);
}

class CpuSpmmTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CpuSpmmTest, MatchesPerVectorReference) {
  const auto [k, threads] = GetParam();
  const auto A = gen::powerlaw(500, 450, 5, 2.3, 0.4, 21);
  const auto csr = fmt::Csr::from_coo(A);
  SplitMix64 rng(static_cast<std::uint64_t>(k * 131 + threads));
  const auto kz = static_cast<std::size_t>(k);
  std::vector<real_t> X(450 * kz), Y(500 * kz), want(500);
  for (auto& v : X) v = rng.next_double(-1, 1);
  cpu::CpuSpmm eng(build(A), static_cast<unsigned>(threads));
  eng.spmm(X, Y, k);
  for (std::size_t j = 0; j < kz; ++j) {
    csr.spmv(std::span<const real_t>(X).subspan(j * 450, 450), want);
    for (std::size_t r = 0; r < 500; ++r) {
      ASSERT_NEAR(Y[j * 500 + r], want[r],
                  1e-9 * std::max(1.0, std::abs(want[r])))
          << "k=" << k << " j=" << j << " row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Panels, CpuSpmmTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 4)));

TEST(Cpu, SpmmBlockedFallback) {
  const auto A = gen::fem_mesh(300, 18, 3, 0.05, 22);
  const auto csr = fmt::Csr::from_coo(A);
  core::FormatConfig fc;
  fc.block_w = 3;
  fc.block_h = 3;
  const auto n = static_cast<std::size_t>(A.rows);
  SplitMix64 rng(23);
  std::vector<real_t> X(n * 2), Y(n * 2), want(n);
  for (auto& v : X) v = rng.next_double(-1, 1);
  cpu::CpuSpmm eng(build(A, fc), 2);
  eng.spmm(X, Y, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    csr.spmv(std::span<const real_t>(X).subspan(j * n, n), want);
    for (std::size_t r = 0; r < n; ++r) {
      ASSERT_NEAR(Y[j * n + r], want[r],
                  1e-9 * std::max(1.0, std::abs(want[r])));
    }
  }
}

TEST(Cpu, SpmmRejectsBadPanel) {
  const auto A = fmt::Coo::from_triplets(4, 4, {0}, {0}, {1.0});
  cpu::CpuSpmm eng(build(A));
  std::vector<real_t> X(8), Y(7);
  EXPECT_THROW(eng.spmm(X, Y, 2), std::invalid_argument);
  EXPECT_THROW(eng.spmm(X, Y, 0), std::invalid_argument);
}

TEST(Cpu, CsrParallelMatchesSerial) {
  const auto A = gen::quantum_chem(800, 25, 9);
  const auto csr = fmt::Csr::from_coo(A);
  SplitMix64 rng(2);
  std::vector<real_t> x(800);
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> want(800), got(800);
  csr.spmv(x, want);
  for (unsigned t : {1u, 2u, 7u}) {
    cpu::spmv_csr_parallel(csr, x, got, t);
    for (std::size_t i = 0; i < 800; ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-12) << "threads=" << t;
    }
  }
}

}  // namespace
}  // namespace yaspmv
