// End-to-end tests of the simulated SpMV pipeline (SpmvEngine): every
// combination of strategy, synchronization mode, transpose, compression and
// tile shape must reproduce the serial CSR reference exactly.
#include "yaspmv/core/engine.hpp"

#include <gtest/gtest.h>

#include "yaspmv/formats/csr.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

fmt::Coo random_matrix(index_t rows, index_t cols, double density,
                       std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const auto target = static_cast<std::uint64_t>(
      density * static_cast<double>(rows) * static_cast<double>(cols));
  for (std::uint64_t i = 0; i < std::max<std::uint64_t>(target, 1); ++i) {
    ri.push_back(
        static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(rows))));
    ci.push_back(
        static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(cols))));
    v.push_back(rng.next_double(-1, 1));
  }
  return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                 std::move(v));
}

void expect_engine_matches(const fmt::Coo& A, const core::FormatConfig& fc,
                           const core::ExecConfig& ec,
                           const std::string& what) {
  SplitMix64 rng(0xBEEF);
  std::vector<real_t> x(static_cast<std::size_t>(A.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> want(static_cast<std::size_t>(A.rows)),
      got(static_cast<std::size_t>(A.rows));
  fmt::Csr::from_coo(A).spmv(x, want);
  core::SpmvEngine eng(A, fc, ec, sim::gtx680());
  eng.run(x, got);
  for (std::size_t r = 0; r < want.size(); ++r) {
    ASSERT_NEAR(got[r], want[r], 1e-9 * std::max(1.0, std::abs(want[r])))
        << what << " row " << r;
  }
}

TEST(Engine, Strategy1Basic) {
  const auto A = random_matrix(100, 80, 0.05, 1);
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.strategy = core::Strategy::kIntermediateSums;
  ec.workgroup_size = 64;
  ec.thread_tile = 4;
  expect_engine_matches(A, fc, ec, "s1 basic");
}

TEST(Engine, Strategy2Basic) {
  const auto A = random_matrix(100, 80, 0.05, 2);
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.strategy = core::Strategy::kResultCache;
  ec.workgroup_size = 64;
  ec.thread_tile = 4;
  expect_engine_matches(A, fc, ec, "s2 basic");
}

TEST(Engine, GlobalSyncMatchesAdjacentSync) {
  const auto A = random_matrix(300, 120, 0.02, 3);
  core::FormatConfig fc;
  for (auto strat : {core::Strategy::kIntermediateSums,
                     core::Strategy::kResultCache}) {
    core::ExecConfig ec;
    ec.strategy = strat;
    ec.workgroup_size = 64;
    ec.thread_tile = 2;
    ec.adjacent_sync = false;  // two-kernel carry propagation
    expect_engine_matches(A, fc, ec, "global sync");
    ec.adjacent_sync = true;
    expect_engine_matches(A, fc, ec, "adjacent sync");
  }
}

TEST(Engine, LongRowsSpanningManyWorkgroups) {
  // One row with thousands of non-zeros: its segment spans several
  // workgroups, exercising the full adjacent-sync chain.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  SplitMix64 rng(4);
  for (index_t c = 0; c < 3000; ++c) {
    ri.push_back(1);
    ci.push_back(c);
    v.push_back(rng.next_double(-1, 1));
  }
  ri.push_back(0);
  ci.push_back(5);
  v.push_back(2.5);
  ri.push_back(2);
  ci.push_back(7);
  v.push_back(-1.5);
  const auto A = fmt::Coo::from_triplets(3, 3000, std::move(ri),
                                         std::move(ci), std::move(v));
  core::FormatConfig fc;
  for (auto strat : {core::Strategy::kIntermediateSums,
                     core::Strategy::kResultCache}) {
    core::ExecConfig ec;
    ec.strategy = strat;
    ec.workgroup_size = 64;
    ec.thread_tile = 4;
    expect_engine_matches(A, fc, ec, "long row");
  }
}

TEST(Engine, WorkgroupsWithoutRowStops) {
  // Dense single row -> every interior workgroup has zero row stops and must
  // chain its sum through Grp_sum.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t c = 0; c < 2048; ++c) {
    ri.push_back(0);
    ci.push_back(c);
    v.push_back(1.0);
  }
  const auto A = fmt::Coo::from_triplets(1, 2048, std::move(ri),
                                         std::move(ci), std::move(v));
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.workgroup_size = 64;
  ec.thread_tile = 2;
  expect_engine_matches(A, fc, ec, "no-stop workgroups");
}

class EngineSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(EngineSweep, MatchesReference) {
  const auto [bw, bh, slices, wg, tile] = GetParam();
  const auto A = random_matrix(257, 193, 0.03, 42);
  core::FormatConfig fc;
  fc.block_w = bw;
  fc.block_h = bh;
  fc.slices = slices;
  if (ceil_div<index_t>(A.cols, bw) < slices) GTEST_SKIP();
  for (auto strat : {core::Strategy::kIntermediateSums,
                     core::Strategy::kResultCache}) {
    core::ExecConfig ec;
    ec.strategy = strat;
    ec.workgroup_size = wg;
    ec.thread_tile = tile;
    expect_engine_matches(A, fc, ec,
                          "sweep " + fc.to_string() + " " + ec.to_string());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),    // block_w
                       ::testing::Values(1, 2, 3),    // block_h
                       ::testing::Values(1, 4),       // slices
                       ::testing::Values(64, 128),    // workgroup size
                       ::testing::Values(1, 3, 8)));  // thread tile

TEST(Engine, OnlineTransposeStrategy1) {
  const auto A = random_matrix(200, 150, 0.04, 5);
  core::FormatConfig fc;
  fc.block_w = 2;
  fc.block_h = 2;
  core::ExecConfig ec;
  ec.strategy = core::Strategy::kIntermediateSums;
  ec.transpose = core::Transpose::kOnline;
  ec.workgroup_size = 64;
  ec.thread_tile = 4;
  expect_engine_matches(A, fc, ec, "online transpose");
}

TEST(Engine, OnlineTransposeRejectedForStrategy2) {
  const auto A = random_matrix(50, 50, 0.1, 6);
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.strategy = core::Strategy::kResultCache;
  ec.transpose = core::Transpose::kOnline;
  EXPECT_THROW(core::SpmvEngine(A, fc, ec, sim::gtx680()),
               std::invalid_argument);
}

TEST(Engine, ColumnDeltaCompression) {
  const auto A = random_matrix(150, 40000, 0.0005, 7);  // wide: big deltas
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.compress_col_delta = true;
  ec.workgroup_size = 64;
  ec.thread_tile = 4;
  expect_engine_matches(A, fc, ec, "delta compression");
}

TEST(Engine, ShortColumnIndexDisabledForWideMatrix) {
  const auto A = random_matrix(20, 70000, 0.0005, 8);
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.short_col_index = true;  // must be ignored: block_cols > 65535
  core::SpmvEngine eng(A, fc, ec, sim::gtx680());
  EXPECT_FALSE(eng.plan().col_u16_valid);
  expect_engine_matches(A, fc, ec, "wide matrix");
}

TEST(Engine, ResultCacheOverflowSpillsToGlobal) {
  // Diagonal matrix: one row stop per block -> many more segments per
  // workgroup than cache entries with multiple=1 and a big tile.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t i = 0; i < 4096; ++i) {
    ri.push_back(i);
    ci.push_back(i);
    v.push_back(static_cast<real_t>(i + 1));
  }
  const auto A = fmt::Coo::from_triplets(4096, 4096, std::move(ri),
                                         std::move(ci), std::move(v));
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.strategy = core::Strategy::kResultCache;
  ec.workgroup_size = 64;
  ec.thread_tile = 8;            // 512 stops per workgroup
  ec.result_cache_multiple = 1;  // only 64 cache entries
  expect_engine_matches(A, fc, ec, "cache overflow");
}

TEST(Engine, FineGrainOptsOffStillCorrect) {
  const auto A = random_matrix(300, 300, 0.02, 9);
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.skip_scan_opt = false;
  ec.short_col_index = false;
  ec.workgroup_size = 64;
  ec.thread_tile = 4;
  expect_engine_matches(A, fc, ec, "fine-grain off");
}

TEST(Engine, PooledDispatchMatches) {
  const auto A = random_matrix(500, 400, 0.02, 10);
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.workers = 4;  // exercises the real atomic adjacent-sync chain
  ec.workgroup_size = 64;
  ec.thread_tile = 2;
  for (int rep = 0; rep < 3; ++rep) {
    expect_engine_matches(A, fc, ec, "pooled rep " + std::to_string(rep));
  }
}

TEST(Engine, LogicalWorkgroupIdsMatch) {
  const auto A = random_matrix(200, 200, 0.03, 11);
  core::FormatConfig fc;
  core::ExecConfig ec;
  ec.logical_ids = true;
  expect_engine_matches(A, fc, ec, "logical ids");
}

TEST(Engine, EmptyRowsHandled) {
  std::vector<index_t> ri = {0, 500};
  std::vector<index_t> ci = {3, 4};
  std::vector<real_t> v = {2.0, 3.0};
  const auto A = fmt::Coo::from_triplets(501, 10, std::move(ri),
                                         std::move(ci), std::move(v));
  core::FormatConfig fc;
  core::ExecConfig ec;
  expect_engine_matches(A, fc, ec, "empty rows");
}

TEST(Engine, RejectsWrongVectorSizes) {
  const auto A = random_matrix(10, 10, 0.3, 12);
  core::SpmvEngine eng(A, {}, {}, sim::gtx680());
  std::vector<real_t> x(9), y(10);
  EXPECT_THROW(eng.run(x, y), std::invalid_argument);
}

TEST(Engine, FootprintIncludesAuxiliaryInfo) {
  const auto A = random_matrix(100, 100, 0.05, 13);
  core::SpmvEngine eng(A, {}, {}, sim::gtx680());
  EXPECT_GT(eng.footprint_bytes(),
            eng.format().footprint_bytes(true, false, 0));
}

TEST(Engine, ReusableAcrossRunsAndVectors) {
  // One engine, many SpMVs with different x (the iterative-solver usage
  // pattern): no state may leak between runs.
  const auto A = random_matrix(150, 150, 0.04, 77);
  core::FormatConfig fc;
  fc.slices = 4;  // exercises the zero-init + combine path repeatedly
  core::SpmvEngine eng(A, fc, {}, sim::gtx680());
  const auto csr = fmt::Csr::from_coo(A);
  SplitMix64 rng(78);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<real_t> x(150), want(150), got(150);
    for (auto& v : x) v = rng.next_double(-1, 1);
    csr.spmv(x, want);
    eng.run(x, got);
    for (std::size_t r = 0; r < 150; ++r) {
      ASSERT_NEAR(got[r], want[r], 1e-9 * std::max(1.0, std::abs(want[r])))
          << "rep " << rep;
    }
  }
}

TEST(Engine, Gtx480DeviceModelAlsoCorrect) {
  const auto A = random_matrix(200, 180, 0.03, 79);
  SplitMix64 rng(80);
  std::vector<real_t> x(180), want(200), got(200);
  for (auto& v : x) v = rng.next_double(-1, 1);
  fmt::Csr::from_coo(A).spmv(x, want);
  core::SpmvEngine eng(A, {}, {}, sim::gtx480());
  eng.run(x, got);
  for (std::size_t r = 0; r < 200; ++r) {
    ASSERT_NEAR(got[r], want[r], 1e-9 * std::max(1.0, std::abs(want[r])));
  }
}

TEST(Engine, LaunchCountMatchesConfiguration) {
  const auto A = random_matrix(100, 100, 0.05, 14);
  SplitMix64 rng(1);
  std::vector<real_t> x(100), y(100);
  for (auto& v : x) v = rng.next_double(-1, 1);
  {
    core::SpmvEngine eng(A, {}, {}, sim::gtx680());
    EXPECT_EQ(eng.run(x, y).launches, 1);  // single-kernel claim (Section 3)
  }
  {
    core::ExecConfig ec;
    ec.adjacent_sync = false;
    core::SpmvEngine eng(A, {}, ec, sim::gtx680());
    EXPECT_EQ(eng.run(x, y).launches, 2);
  }
  {
    core::FormatConfig fc;
    fc.slices = 4;
    core::SpmvEngine eng(A, fc, {}, sim::gtx680());
    EXPECT_EQ(eng.run(x, y).launches, 2);  // main + combine
  }
}

}  // namespace
}  // namespace yaspmv
