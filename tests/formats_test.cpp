// Baseline sparse-format tests: construction, round trips, SpMV correctness
// and exact footprint accounting.
#include <gtest/gtest.h>

#include "yaspmv/formats/bdia.hpp"
#include "yaspmv/formats/blocked.hpp"
#include "yaspmv/formats/coo.hpp"
#include "yaspmv/formats/sbell.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/formats/dia.hpp"
#include "yaspmv/formats/ell.hpp"
#include "yaspmv/formats/hyb.hpp"
#include "yaspmv/formats/sell.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

fmt::Coo random_matrix(index_t rows, index_t cols, double density,
                       std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  const auto target = static_cast<std::uint64_t>(
      density * static_cast<double>(rows) * static_cast<double>(cols));
  for (std::uint64_t i = 0; i < std::max<std::uint64_t>(target, 1); ++i) {
    ri.push_back(
        static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(rows))));
    ci.push_back(
        static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(cols))));
    v.push_back(rng.next_double(-1, 1));
  }
  return fmt::Coo::from_triplets(rows, cols, std::move(ri), std::move(ci),
                                 std::move(v));
}

std::vector<real_t> reference_y(const fmt::Coo& A,
                                const std::vector<real_t>& x) {
  std::vector<real_t> y(static_cast<std::size_t>(A.rows));
  A.spmv(x, y);
  return y;
}

// --- COO --------------------------------------------------------------------

TEST(Coo, FromTripletsSortsAndDeduplicates) {
  std::vector<index_t> ri = {1, 0, 1, 0};
  std::vector<index_t> ci = {1, 1, 1, 0};
  std::vector<real_t> v = {2, 3, 4, 5};
  const auto m =
      fmt::Coo::from_triplets(2, 2, std::move(ri), std::move(ci), std::move(v));
  EXPECT_TRUE(m.is_canonical());
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.row_idx, (std::vector<index_t>{0, 0, 1}));
  EXPECT_EQ(m.col_idx, (std::vector<index_t>{0, 1, 1}));
  EXPECT_EQ(m.vals, (std::vector<real_t>{5, 3, 6}));  // duplicates summed
}

TEST(Coo, DroppedCancellation) {
  std::vector<index_t> ri = {0, 0};
  std::vector<index_t> ci = {0, 0};
  std::vector<real_t> v = {1.0, -1.0};
  const auto m =
      fmt::Coo::from_triplets(1, 1, std::move(ri), std::move(ci), std::move(v));
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(Coo, RejectsOutOfRange) {
  EXPECT_THROW(fmt::Coo::from_triplets(2, 2, {2}, {0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(fmt::Coo::from_triplets(2, 2, {0}, {-1}, {1.0}),
               std::invalid_argument);
}

TEST(Coo, FootprintIsTwelveBytesPerNonZero) {
  const auto m = random_matrix(50, 50, 0.1, 1);
  EXPECT_EQ(m.footprint_bytes(), m.nnz() * 12u);
}

// --- CSR --------------------------------------------------------------------

TEST(Csr, RoundTripThroughCoo) {
  const auto A = random_matrix(64, 48, 0.07, 2);
  const auto csr = fmt::Csr::from_coo(A);
  const auto back = csr.to_coo();
  EXPECT_EQ(back.row_idx, A.row_idx);
  EXPECT_EQ(back.col_idx, A.col_idx);
  EXPECT_EQ(back.vals, A.vals);
}

TEST(Csr, SpmvMatchesCoo) {
  const auto A = random_matrix(80, 70, 0.05, 3);
  const auto csr = fmt::Csr::from_coo(A);
  SplitMix64 rng(3);
  std::vector<real_t> x(70);
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<real_t> y(80);
  csr.spmv(x, y);
  const auto want = reference_y(A, x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], want[i], 1e-12);
}

TEST(Csr, RowLenAndMax) {
  const auto A = fmt::Coo::from_triplets(3, 5, {0, 0, 2}, {0, 4, 1},
                                         {1.0, 2.0, 3.0});
  const auto csr = fmt::Csr::from_coo(A);
  EXPECT_EQ(csr.row_len(0), 2);
  EXPECT_EQ(csr.row_len(1), 0);
  EXPECT_EQ(csr.row_len(2), 1);
  EXPECT_EQ(csr.max_row_len(), 2);
}

// --- every format agrees with the reference --------------------------------

TEST(Formats, AllSpmvAgree) {
  const auto A = random_matrix(120, 90, 0.06, 4);
  const auto csr = fmt::Csr::from_coo(A);
  SplitMix64 rng(4);
  std::vector<real_t> x(90);
  for (auto& v : x) v = rng.next_double(-1, 1);
  const auto want = reference_y(A, x);
  std::vector<real_t> y(120);

  fmt::Ell::from_csr(csr).spmv(x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], want[i], 1e-12) << "ELL";

  fmt::EllR::from_csr(csr).spmv(x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], want[i], 1e-12) << "ELL-R";

  for (index_t sh : {1, 7, 32, 200}) {
    fmt::SEll::from_csr(csr, sh).spmv(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], want[i], 1e-12) << "SELL h=" << sh;
  }

  fmt::Dia::from_csr(csr).spmv(x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], want[i], 1e-12) << "DIA";

  for (index_t k : {0, 1, 3, -1}) {
    fmt::Hyb::from_csr(csr, k).spmv(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], want[i], 1e-12) << "HYB k=" << k;
  }

  for (auto [bw, bh] : {std::pair<index_t, index_t>{2, 2}, {4, 3}, {1, 4}}) {
    fmt::Bcsr::from_coo(A, bw, bh).spmv(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], want[i], 1e-12) << "BCSR " << bw << "x" << bh;
    fmt::Bell::from_coo(A, bw, bh).spmv(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], want[i], 1e-12) << "BELL " << bw << "x" << bh;
    for (index_t sh : {1, 4, 64}) {
      fmt::SBell::from_coo(A, bw, bh, sh).spmv(x, y);
      for (std::size_t i = 0; i < y.size(); ++i)
        ASSERT_NEAR(y[i], want[i], 1e-12)
            << "SBELL " << bw << "x" << bh << " sh=" << sh;
    }
  }

  fmt::Bdia::from_csr(csr).spmv(x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], want[i], 1e-12) << "BDIA";
}

// --- format-specific structure ----------------------------------------------

TEST(Ell, PaddingStructure) {
  const auto A = fmt::Coo::from_triplets(3, 4, {0, 0, 0, 1, 2}, {0, 1, 3, 2, 0},
                                         {1, 2, 3, 4, 5});
  const auto ell = fmt::Ell::from_csr(fmt::Csr::from_coo(A));
  EXPECT_EQ(ell.width, 3);
  EXPECT_EQ(ell.nnz_stored(), 9u);
  EXPECT_EQ(ell.footprint_bytes(), 9u * 8u);
  EXPECT_NEAR(fmt::Ell::padding_ratio(fmt::Csr::from_coo(A)), 9.0 / 5.0,
              1e-12);
}

TEST(Hyb, ChooseWidthSplitsSpill) {
  // 7 rows of length 2 and one of length 20: K should stay small and the
  // long row's tail must land in COO.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t r = 0; r < 7; ++r) {
    for (index_t c = 0; c < 2; ++c) {
      ri.push_back(r);
      ci.push_back(c + r);
      v.push_back(1.0);
    }
  }
  for (index_t c = 0; c < 20; ++c) {
    ri.push_back(7);
    ci.push_back(c);
    v.push_back(1.0);
  }
  const auto A = fmt::Coo::from_triplets(8, 30, std::move(ri), std::move(ci),
                                         std::move(v));
  const auto csr = fmt::Csr::from_coo(A);
  const index_t k = fmt::Hyb::choose_width(csr);
  EXPECT_GE(k, 1);
  EXPECT_LE(k, 2);
  const auto hyb = fmt::Hyb::from_csr(csr);
  EXPECT_GT(hyb.coo.nnz(), 0u);
  EXPECT_LT(hyb.footprint_bytes(), fmt::Ell::from_csr(csr).footprint_bytes());
}

TEST(Dia, DiagonalDetection) {
  const auto A = fmt::Coo::from_triplets(4, 4, {0, 1, 2, 3, 0, 1, 2},
                                         {0, 1, 2, 3, 1, 2, 3},
                                         {1, 1, 1, 1, 2, 2, 2});
  const auto csr = fmt::Csr::from_coo(A);
  EXPECT_EQ(fmt::Dia::count_diagonals(csr), 2);
  const auto dia = fmt::Dia::from_csr(csr);
  EXPECT_EQ(dia.offsets, (std::vector<index_t>{0, 1}));
  EXPECT_EQ(dia.footprint_bytes(), 2u * 4u * 4u + 2u * 4u);
}

TEST(Dia, RejectsTooManyDiagonals) {
  const auto A = random_matrix(200, 200, 0.05, 5);
  const auto csr = fmt::Csr::from_coo(A);
  EXPECT_THROW(fmt::Dia::from_csr(csr, 4), std::invalid_argument);
}

TEST(Blocked, CountBlocksMatchesDecomposition) {
  for (int iter = 0; iter < 10; ++iter) {
    const auto A =
        random_matrix(60, 60, 0.05, 100 + static_cast<std::uint64_t>(iter));
    for (auto [bw, bh] :
         {std::pair<index_t, index_t>{1, 1}, {2, 2}, {3, 4}, {4, 1}}) {
      const auto d = fmt::BlockDecomposition::build(A, bw, bh);
      EXPECT_EQ(fmt::BlockDecomposition::count_blocks(A, bw, bh),
                d.num_blocks);
    }
  }
}

TEST(Blocked, FillRatioDenseBlocksIsOne) {
  // Perfect 2x2 block diagonal: fill ratio exactly 1.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t b = 0; b < 10; ++b) {
    for (index_t lr = 0; lr < 2; ++lr) {
      for (index_t lc = 0; lc < 2; ++lc) {
        ri.push_back(2 * b + lr);
        ci.push_back(2 * b + lc);
        v.push_back(1.0);
      }
    }
  }
  const auto A = fmt::Coo::from_triplets(20, 20, std::move(ri), std::move(ci),
                                         std::move(v));
  EXPECT_DOUBLE_EQ(fmt::BlockDecomposition::fill_ratio(A, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(fmt::BlockDecomposition::fill_ratio(A, 1, 1), 1.0);
  EXPECT_GT(fmt::BlockDecomposition::fill_ratio(A, 4, 4), 1.0);
}

TEST(Bcsr, FootprintSmallerThanCsrOnBlockDense) {
  // Dense 4x4 blocks: BCSR amortizes one index over 16 values.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  SplitMix64 rng(7);
  for (index_t b = 0; b < 50; ++b) {
    const auto bc = static_cast<index_t>(rng.next_below(50));
    for (index_t lr = 0; lr < 4; ++lr) {
      for (index_t lc = 0; lc < 4; ++lc) {
        ri.push_back(4 * b + lr);
        ci.push_back(4 * bc + lc);
        v.push_back(1.0);
      }
    }
  }
  const auto A = fmt::Coo::from_triplets(200, 200, std::move(ri),
                                         std::move(ci), std::move(v));
  const auto bcsr = fmt::Bcsr::from_coo(A, 4, 4);
  const auto csr = fmt::Csr::from_coo(A);
  EXPECT_LT(bcsr.footprint_bytes(), csr.footprint_bytes());
}

TEST(SEll, SliceWidthsFollowRows) {
  // First 32 rows long, rest short: slice 0 wide, slice 1 narrow.
  std::vector<index_t> ri, ci;
  std::vector<real_t> v;
  for (index_t r = 0; r < 64; ++r) {
    const index_t len = r < 32 ? 10 : 2;
    for (index_t k = 0; k < len; ++k) {
      ri.push_back(r);
      ci.push_back(k);
      v.push_back(1.0);
    }
  }
  const auto A = fmt::Coo::from_triplets(64, 16, std::move(ri), std::move(ci),
                                         std::move(v));
  const auto sell = fmt::SEll::from_csr(fmt::Csr::from_coo(A), 32);
  ASSERT_EQ(sell.num_slices(), 2);
  EXPECT_EQ(sell.slice_width[0], 10);
  EXPECT_EQ(sell.slice_width[1], 2);
  EXPECT_LT(sell.footprint_bytes(),
            fmt::Ell::from_csr(fmt::Csr::from_coo(A)).footprint_bytes());
}

TEST(Formats, EdgeCaseSingleElement) {
  const auto A = fmt::Coo::from_triplets(1, 1, {0}, {0}, {3.5});
  const auto csr = fmt::Csr::from_coo(A);
  std::vector<real_t> x = {2.0}, y(1);
  fmt::Ell::from_csr(csr).spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  fmt::Dia::from_csr(csr).spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  fmt::Bcsr::from_coo(A, 4, 4).spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
}

}  // namespace
}  // namespace yaspmv
