// Randomized deep sweep ("fuzz"): random matrices from random generator
// classes x random format/exec configurations x random dispatch modes, all
// validated against the CSR reference.  Catches interaction bugs the
// directed tests miss (odd tile sizes, padding corner cases, slice counts
// that do not divide the width, pooled dispatch with adjacent sync, ...).
#include <gtest/gtest.h>

#include "yaspmv/core/engine.hpp"
#include "yaspmv/cpu/spmv.hpp"
#include "yaspmv/formats/csr.hpp"
#include "yaspmv/gen/suite.hpp"
#include "yaspmv/util/rng.hpp"

namespace yaspmv {
namespace {

fmt::Coo random_case(SplitMix64& rng) {
  switch (rng.next_below(6)) {
    case 0: {
      const auto nx = static_cast<index_t>(3 + rng.next_below(25));
      const auto ny = static_cast<index_t>(3 + rng.next_below(25));
      return gen::stencil2d(nx, ny, rng.next_double() < 0.5, rng.next());
    }
    case 1:
      return gen::fem_mesh(static_cast<index_t>(50 + rng.next_below(800)),
                           static_cast<index_t>(6 + rng.next_below(40)),
                           static_cast<index_t>(1 + rng.next_below(4)), 0.05,
                           rng.next());
    case 2:
      return gen::powerlaw(static_cast<index_t>(50 + rng.next_below(900)),
                           static_cast<index_t>(50 + rng.next_below(900)),
                           2.0 + rng.next_double() * 8.0,
                           2.05 + rng.next_double(), rng.next_double(),
                           rng.next());
    case 3:
      return gen::wide_rows(static_cast<index_t>(1 + rng.next_below(20)),
                            static_cast<index_t>(100 + rng.next_below(4000)),
                            static_cast<index_t>(10 + rng.next_below(200)),
                            rng.next());
    case 4:
      return gen::random_scattered(
          static_cast<index_t>(20 + rng.next_below(700)),
          static_cast<index_t>(20 + rng.next_below(700)),
          static_cast<index_t>(1 + rng.next_below(10)), rng.next());
    default:
      return gen::quantum_chem(static_cast<index_t>(50 + rng.next_below(400)),
                               static_cast<index_t>(5 + rng.next_below(60)),
                               rng.next());
  }
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomConfigMatchesReference) {
  SplitMix64 rng(0xF022 + static_cast<std::uint64_t>(GetParam()) * 7919);
  const auto A = random_case(rng);
  const auto csr = fmt::Csr::from_coo(A);
  std::vector<real_t> x(static_cast<std::size_t>(A.cols));
  for (auto& v : x) v = rng.next_double(-2, 2);
  std::vector<real_t> want(static_cast<std::size_t>(A.rows)),
      got(static_cast<std::size_t>(A.rows));
  csr.spmv(x, want);

  for (int round = 0; round < 4; ++round) {
    core::FormatConfig fc;
    fc.block_w = static_cast<index_t>(1 + rng.next_below(4));
    fc.block_h = static_cast<index_t>(1 + rng.next_below(4));
    fc.bf_word = std::array<BitFlagWord, 3>{
        BitFlagWord::kU8, BitFlagWord::kU16,
        BitFlagWord::kU32}[rng.next_below(3)];
    fc.slices = static_cast<index_t>(1 + rng.next_below(8));
    if (ceil_div(A.cols, fc.block_w) < fc.slices) fc.slices = 1;

    core::ExecConfig ec;
    ec.strategy = rng.next_double() < 0.5
                      ? core::Strategy::kIntermediateSums
                      : core::Strategy::kResultCache;
    ec.workgroup_size = 1 << (6 + rng.next_below(3));  // 64..256
    ec.thread_tile = static_cast<int>(1 + rng.next_below(20));
    if (ec.strategy == core::Strategy::kIntermediateSums) {
      ec.shm_tile = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(ec.thread_tile) + 1));
      ec.transpose = rng.next_double() < 0.5 ? core::Transpose::kOffline
                                             : core::Transpose::kOnline;
    } else {
      ec.result_cache_multiple = static_cast<int>(1 + rng.next_below(2));
    }
    ec.use_texture = rng.next_double() < 0.5;
    ec.compress_col_delta = rng.next_double() < 0.5;
    ec.short_col_index = rng.next_double() < 0.5;
    ec.adjacent_sync = rng.next_double() < 0.7;
    ec.skip_scan_opt = rng.next_double() < 0.7;
    ec.logical_ids = rng.next_double() < 0.2;
    ec.workers = 1 + static_cast<unsigned>(rng.next_below(4));

    const std::string what = "fuzz " + fc.to_string() + " " + ec.to_string();
    try {
      core::SpmvEngine eng(A, fc, ec, sim::gtx680());
      eng.run(x, got);
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_NEAR(got[i], want[i],
                    1e-8 * std::max(1.0, std::abs(want[i])))
            << what << " row " << i;
      }
    } catch (const SpmvError&) {
      // Resource-limit rejection (shared memory / register budget) is a
      // valid outcome for a random config; correctness violations are not.
    }

    // CPU backend under the same format (block_h <= 8 guaranteed above).
    cpu::CpuSpmv eng(std::make_shared<const core::Bccoo>(
                         core::Bccoo::build(A, fc)),
                     1 + static_cast<unsigned>(rng.next_below(6)));
    eng.spmv(x, got);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-8 * std::max(1.0, std::abs(want[i])))
          << what << " (cpu) row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace yaspmv
