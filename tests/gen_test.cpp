// Matrix-generator tests: the synthetic suite must reproduce each Table 2
// entry's statistics (dimensions, nnz/row, structure class) at any scale.
#include "yaspmv/gen/suite.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "yaspmv/formats/blocked.hpp"
#include "yaspmv/formats/csr.hpp"

namespace yaspmv {
namespace {

double nnz_per_row(const fmt::Coo& m) {
  return m.rows == 0 ? 0.0
                     : static_cast<double>(m.nnz()) /
                           static_cast<double>(m.rows);
}

double row_len_cv(const fmt::Coo& m) {
  const auto csr = fmt::Csr::from_coo(m);
  double mean = nnz_per_row(m), var = 0;
  for (index_t r = 0; r < m.rows; ++r) {
    const double d = static_cast<double>(csr.row_len(r)) - mean;
    var += d * d;
  }
  var /= std::max<double>(1.0, static_cast<double>(m.rows));
  return mean == 0 ? 0 : std::sqrt(var) / mean;
}

TEST(Gen, DenseIsDense) {
  const auto m = gen::dense(50, 40, 1);
  EXPECT_EQ(m.nnz(), 2000u);
  EXPECT_TRUE(m.is_canonical());
}

TEST(Gen, Stencil2dHasFourNeighbors) {
  const auto m = gen::stencil2d(30, 30, false, 2);
  EXPECT_EQ(m.rows, 900);
  // Interior points have exactly 4 neighbors; borders fewer.
  EXPECT_NEAR(nnz_per_row(m), 4.0, 0.3);
  // Perfect fit for DIA/ELL: tiny row-length variance.
  EXPECT_LT(row_len_cv(m), 0.2);
}

TEST(Gen, FemMeshIsBlocked) {
  const auto m = gen::fem_mesh(3000, 60, 3, 0.02, 3);
  EXPECT_NEAR(nnz_per_row(m), 60.0, 12.0);
  // dof x dof blocks: 3x3 blocking should have fill ratio ~1.
  EXPECT_LT(fmt::BlockDecomposition::fill_ratio(m, 3, 3), 1.15);
}

TEST(Gen, PowerlawHasHeavyTail) {
  const auto m = gen::powerlaw(20000, 20000, 8.0, 2.2, 0.4, 4);
  const auto csr = fmt::Csr::from_coo(m);
  EXPECT_GT(row_len_cv(m), 0.8);                    // high variance
  EXPECT_GT(csr.max_row_len(), 20 * 8);             // few huge rows
  EXPECT_NEAR(nnz_per_row(m), 8.0, 4.0);
}

TEST(Gen, WideRowsShape) {
  const auto m = gen::wide_rows(40, 20000, 500, 5);
  EXPECT_EQ(m.rows, 40);
  EXPECT_EQ(m.cols, 20000);
  EXPECT_NEAR(nnz_per_row(m), 500, 1.0);
  EXPECT_LT(row_len_cv(m), 0.05);  // uniformly heavy rows
}

TEST(Gen, RandomScatteredVariance) {
  const auto m = gen::random_scattered(5000, 5000, 6, 6);
  EXPECT_NEAR(nnz_per_row(m), 6.0, 1.5);
  EXPECT_GT(row_len_cv(m), 0.4);
}

TEST(Gen, QuantumChemClusteredRows) {
  const auto m = gen::quantum_chem(4000, 60, 7);
  EXPECT_NEAR(nnz_per_row(m), 60.0, 25.0);
  // Clustered runs: 2-wide blocking pays off (fill well under scattered).
  EXPECT_LT(fmt::BlockDecomposition::fill_ratio(m, 2, 1), 1.5);
}

TEST(Gen, SuiteHasTwentyEntriesInPaperOrder) {
  const auto& s = gen::suite();
  ASSERT_EQ(s.size(), 20u);
  EXPECT_EQ(s.front().name, "Dense");
  EXPECT_EQ(s.back().name, "Si41Ge41H72");
  EXPECT_EQ(gen::suite_entry("LP").full_cols, 1092610);
  EXPECT_THROW(gen::suite_entry("nope"), std::invalid_argument);
}

TEST(Gen, GeneratorsAreDeterministic) {
  const auto a = gen::suite_entry("Circuit").make(0.05);
  const auto b = gen::suite_entry("Circuit").make(0.05);
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.vals, b.vals);
}

class SuiteStats : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteStats, NnzPerRowTracksTable2) {
  const auto& e = gen::suite_entry(GetParam());
  const auto m = e.make(0.05);
  EXPECT_GT(m.nnz(), 0u);
  const double got = nnz_per_row(m);
  // nnz/row should track the Table 2 value within a factor ~2 at any scale
  // (generators preserve per-row statistics, not totals).
  EXPECT_GT(got, e.full_nnz_per_row * 0.4) << e.name;
  EXPECT_LT(got, e.full_nnz_per_row * 2.5) << e.name;
}

INSTANTIATE_TEST_SUITE_P(Table2, SuiteStats,
                         ::testing::Values("Protein", "FEM/Harbor", "QCD",
                                           "Economics", "Epidemiology",
                                           "Circuit", "Webbase", "mip1"));

TEST(Gen, DenseEntryMatchesAtSmallScale) {
  const auto m = gen::suite_entry("Dense").make(0.05);
  EXPECT_EQ(m.nnz(), static_cast<std::size_t>(m.rows) *
                         static_cast<std::size_t>(m.cols));
}

TEST(Gen, LpIsShortAndWide) {
  const auto m = gen::suite_entry("LP").make(0.03);
  EXPECT_LT(m.rows * 20, m.cols);  // much wider than tall
  EXPECT_GT(nnz_per_row(m), 100);
}

}  // namespace
}  // namespace yaspmv
